//===- bench/bench_incremental.cpp -----------------------------*- C++ -*-===//
//
// Experiment E13: the incremental-re-verification economics of the
// mutating-image (JIT) workload. A code cache that overwrites 64 bytes
// of a 1 MiB verified image either pays a full O(image) re-check per
// update or an O(patch) incremental re-verify (dirty chunks re-scanned,
// everything re-merged) with an identical verdict. This bench measures
// both, plus the one-time open cost, and emits one JSON line per
// quantity (appended to BENCH_incr.json when ROCKSALT_BENCH_JSON is
// set, else stdout).
//
// The acceptance line: a 64-byte patch on a 1 MiB accepted image must
// re-verify at least 5x faster than the full check — below that the
// subsystem has regressed into pointless bookkeeping.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "incr/IncrementalVerifier.h"
#include "nacl/WorkloadGen.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace rocksalt;

namespace {

constexpr uint32_t ImageBytes = 1u << 20; // 1 MiB
constexpr uint32_t PatchBytes = 64;       // two bundles

std::vector<uint8_t> makeImage() {
  nacl::WorkloadOptions WO;
  // Undershoot, then pad up to exactly 1 MiB with nops (truncating down
  // would cut an instruction mid-stream and reject the whole image).
  WO.TargetBytes = ImageBytes - 16384;
  WO.Seed = 1302;
  std::vector<uint8_t> Img = nacl::generateWorkload(WO);
  if (Img.size() > ImageBytes)
    std::abort();
  Img.resize(ImageBytes, 0x90);
  return Img;
}

/// A 64-byte patch of single-byte instructions: a nop sled or an
/// inc-eax sled. Alternating the two means consecutive visits to one
/// offset change the content (no accidental cache hits flattering the
/// number), and single-byte instructions keep every byte an instruction
/// start, so direct jumps elsewhere in the image that target the
/// patched window stay valid — the bench measures the accepted steady
/// state, the JIT workload's common case.
void fillPatch(std::vector<uint8_t> &Out, bool IncSled) {
  Out.assign(PatchBytes, IncSled ? 0x40 : 0x90); // inc eax / nop
}

template <typename F> double medianMs(F Fn, int Reps = 15) {
  std::vector<double> Ms;
  for (int I = 0; I < Reps; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    Ms.push_back(std::chrono::duration<double, std::milli>(T1 - T0).count());
  }
  std::sort(Ms.begin(), Ms.end());
  return Ms[Ms.size() / 2];
}

} // namespace

static void benchFullCheck1M(benchmark::State &State) {
  std::vector<uint8_t> Img = makeImage();
  core::RockSalt V;
  for (auto _ : State) {
    core::CheckResult R = V.check(Img);
    benchmark::DoNotOptimize(R.Ok);
  }
}
BENCHMARK(benchFullCheck1M)->Unit(benchmark::kMillisecond);

static void benchPatch64On1M(benchmark::State &State) {
  std::vector<uint8_t> Img = makeImage();
  incr::IncrementalVerifier Incr;
  incr::ImageId Id = Incr.open(Img);
  std::vector<uint8_t> Patch;
  uint32_t Slot = 0;
  for (auto _ : State) {
    uint32_t Off = (Slot * 37 % (ImageBytes / PatchBytes)) * PatchBytes;
    fillPatch(Patch, Slot & 1);
    ++Slot;
    incr::IncrResult R = Incr.patch(Id, Off, Patch.data(), PatchBytes);
    benchmark::DoNotOptimize(R.Ok);
  }
}
BENCHMARK(benchPatch64On1M)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::vector<uint8_t> Img = makeImage();
  core::RockSalt Full;
  core::CheckResult Base = Full.check(Img);
  if (!Base.Ok) {
    std::fprintf(stderr, "bench_incremental: 1 MiB workload not accepted?\n");
    return 1;
  }

  double OpenMs;
  incr::IncrementalVerifier Incr;
  {
    auto T0 = std::chrono::steady_clock::now();
    incr::IncrResult R;
    Incr.open(Img, &R);
    auto T1 = std::chrono::steady_clock::now();
    OpenMs = std::chrono::duration<double, std::milli>(T1 - T0).count();
    if (!R.Ok) {
      std::fprintf(stderr, "bench_incremental: incremental open rejected?\n");
      return 1;
    }
  }
  // The measured instance: fresh verifier, fresh cache.
  incr::IncrementalVerifier Timed;
  incr::ImageId Id = Timed.open(Img);

  double FullMs = medianMs([&] {
    core::CheckResult R = Full.check(Img);
    benchmark::DoNotOptimize(R.Ok);
  });

  std::vector<uint8_t> Patch;
  uint32_t Slot = 0;
  uint64_t Rescans = 0, Hits = 0;
  bool AllAccepted = true;
  double PatchMs = medianMs([&] {
    // Rotate bundle-aligned offsets so no rep revisits content it wrote
    // before (every timed patch is a genuine dirty-chunk re-scan).
    uint32_t Off = (Slot * 37 % (ImageBytes / PatchBytes)) * PatchBytes;
    fillPatch(Patch, Slot & 1);
    ++Slot;
    incr::IncrResult R = Timed.patch(Id, Off, Patch.data(), PatchBytes);
    Rescans += R.ChunksRescanned;
    Hits += R.ChunkCacheHits;
    AllAccepted = AllAccepted && R.Ok;
    benchmark::DoNotOptimize(R.Ok);
  });
  if (!AllAccepted) {
    // A rejected image re-verifies through the full merge by design; a
    // reject here means the bench measured the wrong path.
    std::fprintf(stderr, "bench_incremental: a bench patch was rejected\n");
    return 1;
  }
  double Speedup = PatchMs > 0 ? FullMs / PatchMs : 0;

  std::printf("\n--- E13: incremental re-verification (1 MiB image, "
              "64-byte patches, %u-byte chunks) ---\n",
              incr::IncrementalOptions{}.ChunkBytes);
  std::printf("open (initial chunked scan):   %8.3f ms\n", OpenMs);
  std::printf("full re-check per patch:       %8.3f ms\n", FullMs);
  std::printf("incremental re-verify (64 B):  %8.3f ms  (%.1fx faster; "
              "%llu chunk rescans, %llu cache hits over the run)\n",
              PatchMs, Speedup, static_cast<unsigned long long>(Rescans),
              static_cast<unsigned long long>(Hits));
  if (Speedup < 5.0)
    std::printf("*** incremental patch re-verify did NOT beat the full "
                "check by >= 5x — the incr subsystem regressed ***\n");

  std::FILE *Json = stdout;
  bool OwnFile = false;
  if (std::getenv("ROCKSALT_BENCH_JSON")) {
    Json = std::fopen("BENCH_incr.json", "a");
    OwnFile = Json != nullptr;
    if (!Json)
      Json = stdout;
  }
  auto Line = [&](const char *Metric, double V) {
    std::fprintf(Json,
                 "{\"bench\":\"incr\",\"metric\":\"%s\",\"value\":%.4f}\n",
                 Metric, V);
  };
  Line("open_1m_ms", OpenMs);
  Line("full_check_1m_ms", FullMs);
  Line("patch64_ms", PatchMs);
  Line("patch64_speedup_x", Speedup);
  std::fprintf(Json,
               "{\"bench\":\"incr\",\"metric\":\"chunk_bytes\","
               "\"value\":%u}\n",
               incr::IncrementalOptions{}.ChunkBytes);
  if (OwnFile)
    std::fclose(Json);
  return Speedup >= 5.0 ? 0 : 1;
}
