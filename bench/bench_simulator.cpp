//===- bench/bench_simulator.cpp -------------------------------*- C++ -*-===//
//
// Experiment E3 (paper section 2.5): model validation throughput. The
// paper simulated and verified >10M instruction instances in ~60 hours
// against hardware (about 46 instr/s end to end, dominated by Pin);
// our substitute validates the RTL pipeline against the independent
// direct interpreter. We report:
//   * simulator speed (RTL pipeline, grammar-decoder pipeline, and the
//     direct interpreter) in instructions/second, and
//   * differential-validation throughput (instances/second, both
//     engines + state comparison), plus a live mismatch count (expected
//     to stay 0).
//
//===----------------------------------------------------------------------===//

#include "nacl/WorkloadGen.h"
#include "sem/Cpu.h"
#include "sem/Differential.h"
#include "sem/FastInterp.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>

using namespace rocksalt;

namespace {

constexpr uint32_t CodeBase = 0x10000;
constexpr uint32_t DataBase = 0x400000;
constexpr uint32_t DataSize = 0x40000;

std::vector<uint8_t> workload() {
  nacl::WorkloadOptions Opts;
  Opts.TargetBytes = 8192;
  Opts.Seed = 99;
  Opts.MaskedJumpRate = 0; // keep control flow decodable without targets
  Opts.CallRate = 0;
  Opts.DirectJumpRate = 10;
  return nacl::generateWorkload(Opts);
}

void runSim(benchmark::State &State, sem::DecoderKind Kind) {
  std::vector<uint8_t> Code = workload();
  uint64_t Steps = 0;
  for (auto _ : State) {
    sem::Cpu C(1);
    C.Decoder = Kind;
    C.configureSandbox(CodeBase, static_cast<uint32_t>(Code.size()),
                       DataBase, DataSize, Code);
    Steps += C.run(5000);
  }
  State.counters["instr/s"] =
      benchmark::Counter(double(Steps), benchmark::Counter::kIsRate);
}

void benchRtlPipeline(benchmark::State &State) {
  runSim(State, sem::DecoderKind::Fast);
}
BENCHMARK(benchRtlPipeline);

void benchGrammarPipeline(benchmark::State &State) {
  runSim(State, sem::DecoderKind::Grammar);
}
BENCHMARK(benchGrammarPipeline)->Unit(benchmark::kMillisecond);

void benchDirectInterp(benchmark::State &State) {
  std::vector<uint8_t> Code = workload();
  uint64_t Steps = 0;
  for (auto _ : State) {
    rtl::MachineState M(1);
    sem::Cpu Setup;
    Setup.configureSandbox(CodeBase, static_cast<uint32_t>(Code.size()),
                           DataBase, DataSize, Code);
    M = Setup.M;
    for (int I = 0; I < 5000 && M.St == rtl::Status::Running; ++I) {
      sem::fastStepFetch(M);
      ++Steps;
    }
  }
  State.counters["instr/s"] =
      benchmark::Counter(double(Steps), benchmark::Counter::kIsRate);
}
BENCHMARK(benchDirectInterp);

void benchDifferentialValidation(benchmark::State &State) {
  uint64_t Instances = 0, Mismatches = 0, Seed = 1;
  for (auto _ : State) {
    sem::DiffReport R = sem::runDifferential(500, Seed++);
    Instances += R.Instances;
    Mismatches += R.Mismatches;
  }
  State.counters["instances/s"] =
      benchmark::Counter(double(Instances), benchmark::Counter::kIsRate);
  State.counters["mismatches"] = double(Mismatches);
}
BENCHMARK(benchDifferentialValidation)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // E3 summary: project the paper's 10M-instance campaign onto this
  // machine.
  auto Start = std::chrono::steady_clock::now();
  sem::DiffReport R = sem::runDifferential(20000, 0xE3);
  auto End = std::chrono::steady_clock::now();
  double Secs = std::chrono::duration<double>(End - Start).count();

  std::printf("\n--- E3: model validation (paper: >10M instances, "
              "~60 h with Pin) ---\n");
  std::printf("instances: %llu  mismatches: %llu  rate: %.0f/s\n",
              static_cast<unsigned long long>(R.Instances),
              static_cast<unsigned long long>(R.Mismatches),
              R.Instances / Secs);
  std::printf("projected wall time for the paper's 10M instances: %.1f "
              "minutes\n",
              10e6 / (R.Instances / Secs) / 60.0);
  if (R.Mismatches)
    std::printf("FIRST MISMATCH: %s\n", R.FirstMismatch.c_str());
  return R.Mismatches == 0 ? 0 : 1;
}
