//===- bench/bench_agreement.cpp -------------------------------*- C++ -*-===//
//
// Experiment E4 (paper section 3.3): checker agreement at scale. The
// paper validated agreement between RockSalt and Google's checker on
// >2000 Csmith-compiled programs plus hand-crafted unsafe programs. This
// harness measures agreement-sweep throughput and prints a live
// agreement summary across a generated+mutated corpus (expected
// disagreements: 0).
//
//===----------------------------------------------------------------------===//

#include "core/BaselineChecker.h"
#include "core/Verifier.h"
#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"

#include <benchmark/benchmark.h>

using namespace rocksalt;

static void benchAgreementSweep(benchmark::State &State) {
  core::RockSalt V;
  Rng R(4242);
  nacl::WorkloadOptions Opts;
  Opts.TargetBytes = 2048;
  uint64_t Checked = 0, Disagreements = 0, Seed = 1;
  for (auto _ : State) {
    Opts.Seed = Seed++;
    std::vector<uint8_t> Code = nacl::generateWorkload(Opts);
    for (int I = 0; I < 16; ++I) {
      std::vector<uint8_t> M = nacl::mutateRandom(Code, R);
      Disagreements += V.verify(M) != core::baselineVerify(M);
      ++Checked;
    }
  }
  State.counters["images/s"] =
      benchmark::Counter(double(Checked), benchmark::Counter::kIsRate);
  State.counters["disagreements"] = double(Disagreements);
}
BENCHMARK(benchAgreementSweep)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // E4 summary sweep: >2000 programs (positive) + mutated negatives.
  core::RockSalt V;
  Rng R(2012);
  nacl::WorkloadOptions Opts;
  Opts.TargetBytes = 1024;
  uint64_t Positives = 0, Accepted = 0, Rejected = 0, Disagree = 0;
  for (uint64_t Seed = 1; Seed <= 2100; ++Seed) {
    Opts.Seed = Seed;
    std::vector<uint8_t> Code = nacl::generateWorkload(Opts);
    bool Rs = V.verify(Code);
    bool Bl = core::baselineVerify(Code);
    Positives += Rs;
    Disagree += Rs != Bl;
    // One mutated variant per program.
    std::vector<uint8_t> M = nacl::mutateRandom(Code, R);
    bool Rs2 = V.verify(M);
    bool Bl2 = core::baselineVerify(M);
    (Rs2 ? Accepted : Rejected) += 1;
    Disagree += Rs2 != Bl2;
  }
  std::printf("\n--- E4: checker agreement (paper: >2000 programs, full "
              "agreement) ---\n");
  std::printf("compliant programs accepted by both: %llu / 2100\n",
              static_cast<unsigned long long>(Positives));
  std::printf("mutated variants: %llu accepted, %llu rejected\n",
              static_cast<unsigned long long>(Accepted),
              static_cast<unsigned long long>(Rejected));
  std::printf("disagreements: %llu (expected 0)\n",
              static_cast<unsigned long long>(Disagree));
  return Disagree == 0 ? 0 : 1;
}
