//===- bench/bench_parallel_verifier.cpp -----------------------*- C++ -*-===//
//
// Scaling of the chunk-parallel verification service: MB/s of
// ParallelVerifier at 1/2/4/8 pool threads against the sequential
// Figure-5 checker on the same image, plus batch throughput through
// VerifierPool. The custom main prints a scaling table and emits one
// JSON line per configuration (appended to BENCH_parallel_verifier.json
// when ROCKSALT_BENCH_JSON is set, else stdout) so runs can be diffed
// across PRs.
//
//===----------------------------------------------------------------------===//

#include "nacl/WorkloadGen.h"
#include "svc/ParallelVerifier.h"
#include "svc/VerifierPool.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

using namespace rocksalt;

namespace {

const std::vector<uint8_t> &imageOfSize(uint32_t Bytes) {
  static std::map<uint32_t, std::vector<uint8_t>> Cache;
  auto It = Cache.find(Bytes);
  if (It != Cache.end())
    return It->second;
  nacl::WorkloadOptions Opts;
  Opts.TargetBytes = Bytes;
  Opts.Seed = 0x5EED + Bytes;
  return Cache.emplace(Bytes, nacl::generateWorkload(Opts)).first->second;
}

void benchSequential(benchmark::State &State) {
  const std::vector<uint8_t> &Code =
      imageOfSize(static_cast<uint32_t>(State.range(0)));
  core::RockSalt V;
  for (auto _ : State) {
    bool Ok = V.verify(Code);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Code.size());
}

void benchParallel(benchmark::State &State) {
  const std::vector<uint8_t> &Code =
      imageOfSize(static_cast<uint32_t>(State.range(0)));
  unsigned Threads = static_cast<unsigned>(State.range(1));
  svc::Metrics M;
  svc::VerifierPool Pool(svc::VerifierPool::Options{Threads}, &M);
  svc::ParallelVerifier PV(Pool);
  for (auto _ : State) {
    bool Ok = PV.verify(Code.data(), uint32_t(Code.size()));
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Code.size());
  State.counters["threads"] = double(Threads);
}

/// Batch mode: many small images through the pool at once.
void benchPoolBatch(benchmark::State &State) {
  unsigned Threads = static_cast<unsigned>(State.range(0));
  std::vector<std::vector<uint8_t>> Images;
  uint64_t Bytes = 0;
  for (uint32_t I = 0; I < 64; ++I) {
    nacl::WorkloadOptions Opts;
    Opts.TargetBytes = 16384;
    Opts.Seed = 0xBA7C4 + I;
    Images.push_back(nacl::generateWorkload(Opts));
    Bytes += Images.back().size();
  }
  svc::Metrics M;
  svc::VerifierPool Pool(svc::VerifierPool::Options{Threads}, &M);
  for (auto _ : State) {
    auto Futures = Pool.submit(Images);
    for (auto &F : Futures)
      benchmark::DoNotOptimize(F.get().Ok);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(Bytes));
  State.counters["threads"] = double(Threads);
}

BENCHMARK(benchSequential)->Arg(1 << 20)->Arg(4 << 20);
BENCHMARK(benchParallel)
    ->Args({4 << 20, 1})
    ->Args({4 << 20, 2})
    ->Args({4 << 20, 4})
    ->Args({4 << 20, 8});
BENCHMARK(benchPoolBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

double timeIt(const std::function<bool()> &Fn) {
  // One warmup, then the best of 5 timed reps (min filters scheduler
  // noise, which matters for the scaling ratios).
  Fn();
  double Best = 1e100;
  for (int I = 0; I < 5; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(Fn());
    auto T1 = std::chrono::steady_clock::now();
    Best = std::min(Best, std::chrono::duration<double>(T1 - T0).count());
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  const std::vector<uint8_t> &Code = imageOfSize(4 << 20);
  double MiB = double(Code.size()) / (1 << 20);
  unsigned Hw = std::thread::hardware_concurrency();

  core::RockSalt Seq;
  double SeqSecs =
      timeIt([&] { return Seq.verify(Code.data(), uint32_t(Code.size())); });

  std::FILE *Json = stdout;
  bool OwnFile = false;
  if (std::getenv("ROCKSALT_BENCH_JSON")) {
    Json = std::fopen("BENCH_parallel_verifier.json", "a");
    OwnFile = Json != nullptr;
    if (!Json)
      Json = stdout;
  }

  std::printf("\n--- parallel verification service scaling (%.0f MiB image, "
              "%u hardware thread%s) ---\n",
              MiB, Hw, Hw == 1 ? "" : "s");
  if (Hw < 2)
    std::printf("NOTE: single-CPU host — thread scaling is capped at 1x "
                "here; the shard scan itself is embarrassingly parallel.\n");
  std::printf("%-26s %10s %10s %9s\n", "configuration", "seconds", "MB/s",
              "speedup");
  std::printf("%-26s %10.4f %10.1f %9s\n", "sequential (Figure 5)", SeqSecs,
              MiB / SeqSecs, "1.00x");
  std::fprintf(Json,
               "{\"bench\":\"parallel_verifier\",\"config\":\"sequential\","
               "\"threads\":0,\"bytes\":%zu,\"seconds\":%.6f,"
               "\"mb_per_s\":%.1f,\"speedup_vs_sequential\":1.0}\n",
               Code.size(), SeqSecs, MiB / SeqSecs);

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    svc::Metrics M;
    svc::VerifierPool Pool(svc::VerifierPool::Options{Threads}, &M);
    svc::ParallelVerifier PV(Pool);
    double Secs =
        timeIt([&] { return PV.verify(Code.data(), uint32_t(Code.size())); });
    char Label[64];
    std::snprintf(Label, sizeof(Label), "parallel, %u thread%s", Threads,
                  Threads == 1 ? "" : "s");
    std::printf("%-26s %10.4f %10.1f %8.2fx\n", Label, Secs, MiB / Secs,
                SeqSecs / Secs);
    std::fprintf(Json,
                 "{\"bench\":\"parallel_verifier\",\"config\":\"parallel\","
                 "\"threads\":%u,\"hw_threads\":%u,\"bytes\":%zu,"
                 "\"seconds\":%.6f,\"mb_per_s\":%.1f,"
                 "\"speedup_vs_sequential\":%.3f}\n",
                 Threads, Hw, Code.size(), Secs, MiB / Secs, SeqSecs / Secs);
  }
  if (OwnFile)
    std::fclose(Json);
  return 0;
}
