//===- bench/bench_checker_throughput.cpp ----------------------*- C++ -*-===//
//
// Experiment E1 (paper sections 1 and 3.3): checker speed. The paper
// reports Google's checker at 0.90 s and RockSalt at 0.24 s on a
// ~200 kLoC program, and "roughly 1M instructions per second" overall;
// the claim to reproduce is the *shape*: RockSalt is at least
// competitive with (and typically faster than) the hand-written
// ncval-style baseline, and throughput is around or above a million
// instructions per second.
//
// Experiment E16 (this repo): the fused cache-resident engine vs the
// legacy three-table engine. The fused transition array (18.75 KiB,
// 8-bit ids) plus run skipping replaces the legacy per-byte walk in
// every production path; this bench measures both engines on the same
// 1 MiB accepted image, certifies verdict lockstep on the bench corpus,
// emits the measured trajectory as JSON lines (BENCH_checker.json when
// ROCKSALT_BENCH_JSON is set), and **exits non-zero when the fused
// path stops beating the legacy path by the pinned factor** — the
// regression gate for the verify hot loop.
//
// Rows: RockSalt (fused) vs legacy vs Baseline across image sizes;
// counters report MB/s and instructions/s.
//
//===----------------------------------------------------------------------===//

#include "core/BaselineChecker.h"
#include "core/Verifier.h"
#include "nacl/WorkloadGen.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

using namespace rocksalt;

namespace {

/// The fused path must sustain at least this multiple of the legacy
/// engine's MB/s on the 1 MiB accepted image (the ISSUE-9 acceptance
/// bar). Measured headroom is far above it; the gate catches a fused
/// fast path that silently degrades to the per-byte walk.
constexpr double FusedSpeedupGate = 2.0;

/// Shared corpus across benchmark runs (one image per size).
const std::vector<uint8_t> &imageOfSize(uint32_t Bytes) {
  static std::map<uint32_t, std::vector<uint8_t>> Cache;
  auto It = Cache.find(Bytes);
  if (It != Cache.end())
    return It->second;
  nacl::WorkloadOptions Opts;
  Opts.TargetBytes = Bytes;
  Opts.Seed = 0x5EED + Bytes;
  return Cache.emplace(Bytes, nacl::generateWorkload(Opts)).first->second;
}

/// Rough instruction count of an image (for instructions/s counters).
uint64_t instrCountOf(const std::vector<uint8_t> &Code) {
  core::RockSalt V;
  core::CheckResult R = V.check(Code);
  uint64_t N = 0;
  for (uint8_t B : R.Valid)
    N += B;
  return N;
}

/// Median wall time of Fn over Reps runs, in milliseconds.
template <typename F> double medianMs(F Fn, int Reps = 15) {
  std::vector<double> Ms;
  Ms.reserve(Reps);
  for (int I = 0; I < Reps; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    Ms.push_back(std::chrono::duration<double, std::milli>(T1 - T0).count());
  }
  std::nth_element(Ms.begin(), Ms.begin() + Reps / 2, Ms.end());
  return Ms[Reps / 2];
}

void benchRockSalt(benchmark::State &State) {
  const std::vector<uint8_t> &Code =
      imageOfSize(static_cast<uint32_t>(State.range(0)));
  core::RockSalt V; // the fused production engine
  uint64_t Instrs = instrCountOf(Code);
  for (auto _ : State) {
    bool Ok = V.verify(Code);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Code.size());
  State.counters["instr/s"] = benchmark::Counter(
      double(Instrs) * State.iterations(), benchmark::Counter::kIsRate);
}

void benchLegacy(benchmark::State &State) {
  const std::vector<uint8_t> &Code =
      imageOfSize(static_cast<uint32_t>(State.range(0)));
  const core::PolicyTables &T = core::policyTables();
  uint64_t Instrs = instrCountOf(Code);
  for (auto _ : State) {
    bool Ok = core::verifyImage(T, Code.data(), uint32_t(Code.size()));
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Code.size());
  State.counters["instr/s"] = benchmark::Counter(
      double(Instrs) * State.iterations(), benchmark::Counter::kIsRate);
}

void benchBaseline(benchmark::State &State) {
  const std::vector<uint8_t> &Code =
      imageOfSize(static_cast<uint32_t>(State.range(0)));
  uint64_t Instrs = instrCountOf(Code);
  for (auto _ : State) {
    bool Ok = core::baselineVerify(Code);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Code.size());
  State.counters["instr/s"] = benchmark::Counter(
      double(Instrs) * State.iterations(), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(benchRockSalt)->Arg(4096)->Arg(65536)->Arg(1 << 20)->Arg(4 << 20);
BENCHMARK(benchLegacy)->Arg(4096)->Arg(65536)->Arg(1 << 20)->Arg(4 << 20);
BENCHMARK(benchBaseline)->Arg(4096)->Arg(65536)->Arg(1 << 20)->Arg(4 << 20);

/// The paper's headline comparison plus the fused-vs-legacy gate,
/// printed once as tables; JSON trajectory appended to
/// BENCH_checker.json when ROCKSALT_BENCH_JSON is set.
int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // --- E1: paper Table (section 3.3) reproduction -----------------------
  const std::vector<uint8_t> &Code = imageOfSize(4 << 20);
  uint64_t Instrs = instrCountOf(Code);
  core::RockSalt V;

  auto TimeIt = [&](auto &&Fn) {
    auto Start = std::chrono::steady_clock::now();
    int Reps = 8;
    for (int I = 0; I < Reps; ++I)
      benchmark::DoNotOptimize(Fn());
    auto End = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(End - Start).count() / Reps;
  };
  double RockSecs = TimeIt([&] { return V.verify(Code); });
  double LegacySecs = TimeIt([&] {
    return core::verifyImage(core::policyTables(), Code.data(),
                             uint32_t(Code.size()));
  });
  double BaseSecs = TimeIt([&] { return core::baselineVerify(Code); });

  std::printf("\n--- E1: paper Table (section 3.3) reproduction ---\n");
  std::printf("image: %.1f MiB, %llu instructions\n",
              Code.size() / 1048576.0,
              static_cast<unsigned long long>(Instrs));
  std::printf("%-22s %10s %16s\n", "checker", "seconds", "instr/sec");
  std::printf("%-22s %10.4f %16.0f\n", "rocksalt (fused DFA)", RockSecs,
              Instrs / RockSecs);
  std::printf("%-22s %10.4f %16.0f\n", "rocksalt (legacy DFA)", LegacySecs,
              Instrs / LegacySecs);
  std::printf("%-22s %10.4f %16.0f\n", "baseline (ncval-style)", BaseSecs,
              Instrs / BaseSecs);
  std::printf("speedup vs baseline: %.2fx (paper: 0.90s vs 0.24s = 3.75x)\n",
              BaseSecs / RockSecs);
  std::printf("paper claim ~1M instr/s: %s\n",
              Instrs / RockSecs >= 1e6 ? "met" : "NOT met");

  // --- E16: fused vs legacy on the 1 MiB accepted image -----------------
  const std::vector<uint8_t> &Img = imageOfSize(1 << 20);
  const core::PolicyTables &T = core::policyTables();
  const core::FusedPolicy &P = core::fusedPolicyTables();
  double MiB = Img.size() / 1048576.0;

  // Lockstep sanity first: a fused engine that got fast by deciding
  // differently must fail here, not pass the throughput gate.
  core::CheckResult FusedR = V.check(Img);
  core::CheckResult LegacyR = core::checkLegacy(T, Img.data(),
                                                uint32_t(Img.size()));
  bool Lockstep = FusedR.Ok == LegacyR.Ok && FusedR.Reason == LegacyR.Reason &&
                  FusedR.Valid == LegacyR.Valid &&
                  FusedR.Target == LegacyR.Target &&
                  FusedR.PairJmp == LegacyR.PairJmp;

  double FuseBuildMs =
      medianMs([&] { benchmark::DoNotOptimize(core::buildFusedPolicy(T)); });
  double FusedMs = medianMs([&] {
    benchmark::DoNotOptimize(
        core::verifyImage(P, Img.data(), uint32_t(Img.size())));
  });
  double FusedCheckMs = medianMs([&] {
    benchmark::DoNotOptimize(V.check(Img).Ok);
  });
  double LegacyMs = medianMs([&] {
    benchmark::DoNotOptimize(
        core::verifyImage(T, Img.data(), uint32_t(Img.size())));
  });
  double FusedMBs = MiB / (FusedMs / 1e3);
  double LegacyMBs = MiB / (LegacyMs / 1e3);
  double Speedup = LegacyMs / FusedMs;

  std::printf("\n--- E16: fused cache-resident engine vs legacy ---\n");
  std::printf("image: %.1f MiB accepted workload; fused table %.2f KiB "
              "(legacy %.1f KiB), safe bytes %u/256, run skip %s\n",
              MiB, P.F.Trans.size() / 1024.0,
              (core::NoControlFlowStates + core::DirectJumpStates +
               core::MaskedJumpStates) *
                  256 * 2 / 1024.0,
              P.SafeCount, P.RunSkip ? "on" : "off");
  std::printf("%-28s %10s %12s\n", "engine", "ms/image", "MB/s");
  std::printf("%-28s %10.3f %12.1f\n", "fused verifyImage", FusedMs, FusedMBs);
  std::printf("%-28s %10.3f %12.1f\n", "fused check (instrumented)",
              FusedCheckMs, MiB / (FusedCheckMs / 1e3));
  std::printf("%-28s %10.3f %12.1f\n", "legacy verifyImage", LegacyMs,
              LegacyMBs);
  std::printf("fused policy build: %.3f ms (once per process)\n", FuseBuildMs);
  std::printf("fused speedup: %.2fx (gate: >= %.1fx), lockstep: %s\n",
              Speedup, FusedSpeedupGate, Lockstep ? "bit-identical" : "BROKEN");

  // JSON trajectory (same convention as bench_dfa_gen).
  std::FILE *Json = stdout;
  bool OwnFile = false;
  if (std::getenv("ROCKSALT_BENCH_JSON")) {
    Json = std::fopen("BENCH_checker.json", "a");
    OwnFile = Json != nullptr;
    if (!Json)
      Json = stdout;
  }
  std::fprintf(Json,
               "{\"bench\":\"checker\",\"metric\":\"e1_4mib_secs\","
               "\"fused\":%.4f,\"legacy\":%.4f,\"baseline\":%.4f,"
               "\"instr_per_sec\":%.0f}\n",
               RockSecs, LegacySecs, BaseSecs, Instrs / RockSecs);
  std::fprintf(Json,
               "{\"bench\":\"checker\",\"metric\":\"e16_1mib\","
               "\"fused_ms\":%.3f,\"fused_check_ms\":%.3f,"
               "\"legacy_ms\":%.3f,\"fused_mb_s\":%.1f,\"legacy_mb_s\":%.1f,"
               "\"speedup\":%.2f,\"fuse_build_ms\":%.3f,"
               "\"safe_bytes\":%u,\"lockstep\":%s}\n",
               FusedMs, FusedCheckMs, LegacyMs, FusedMBs, LegacyMBs, Speedup,
               FuseBuildMs, P.SafeCount, Lockstep ? "true" : "false");
  if (OwnFile)
    std::fclose(Json);

  // --- The regression gate ---------------------------------------------
  if (!Lockstep) {
    std::fprintf(stderr, "FAIL: fused and legacy engines disagree on the "
                         "bench image\n");
    return 1;
  }
  if (Speedup < FusedSpeedupGate) {
    std::fprintf(stderr,
                 "FAIL: fused path %.2fx vs legacy, below the %.1fx gate "
                 "(fused %.1f MB/s, legacy %.1f MB/s)\n",
                 Speedup, FusedSpeedupGate, FusedMBs, LegacyMBs);
    return 1;
  }
  return 0;
}
