//===- bench/bench_checker_throughput.cpp ----------------------*- C++ -*-===//
//
// Experiment E1 (paper sections 1 and 3.3): checker speed. The paper
// reports Google's checker at 0.90 s and RockSalt at 0.24 s on a
// ~200 kLoC program, and "roughly 1M instructions per second" overall;
// the claim to reproduce is the *shape*: RockSalt is at least
// competitive with (and typically faster than) the hand-written
// ncval-style baseline, and throughput is around or above a million
// instructions per second.
//
// Rows: RockSalt vs Baseline across image sizes; counters report MB/s
// and instructions/s.
//
//===----------------------------------------------------------------------===//

#include "core/BaselineChecker.h"
#include "core/Verifier.h"
#include "nacl/WorkloadGen.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>

using namespace rocksalt;

namespace {

/// Shared corpus across benchmark runs (one image per size).
const std::vector<uint8_t> &imageOfSize(uint32_t Bytes) {
  static std::map<uint32_t, std::vector<uint8_t>> Cache;
  auto It = Cache.find(Bytes);
  if (It != Cache.end())
    return It->second;
  nacl::WorkloadOptions Opts;
  Opts.TargetBytes = Bytes;
  Opts.Seed = 0x5EED + Bytes;
  return Cache.emplace(Bytes, nacl::generateWorkload(Opts)).first->second;
}

/// Rough instruction count of an image (for instructions/s counters).
uint64_t instrCountOf(const std::vector<uint8_t> &Code) {
  core::RockSalt V;
  core::CheckResult R = V.check(Code);
  uint64_t N = 0;
  for (uint8_t B : R.Valid)
    N += B;
  return N;
}

void benchRockSalt(benchmark::State &State) {
  const std::vector<uint8_t> &Code =
      imageOfSize(static_cast<uint32_t>(State.range(0)));
  core::RockSalt V;
  uint64_t Instrs = instrCountOf(Code);
  for (auto _ : State) {
    bool Ok = V.verify(Code);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Code.size());
  State.counters["instr/s"] = benchmark::Counter(
      double(Instrs) * State.iterations(), benchmark::Counter::kIsRate);
}

void benchBaseline(benchmark::State &State) {
  const std::vector<uint8_t> &Code =
      imageOfSize(static_cast<uint32_t>(State.range(0)));
  uint64_t Instrs = instrCountOf(Code);
  for (auto _ : State) {
    bool Ok = core::baselineVerify(Code);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Code.size());
  State.counters["instr/s"] = benchmark::Counter(
      double(Instrs) * State.iterations(), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(benchRockSalt)->Arg(4096)->Arg(65536)->Arg(1 << 20)->Arg(4 << 20);
BENCHMARK(benchBaseline)->Arg(4096)->Arg(65536)->Arg(1 << 20)->Arg(4 << 20);

/// The paper's headline comparison, printed once as a table row: one
/// large image (the 200 kLoC-program stand-in), both checkers, and the
/// speedup factor (the paper reports 0.90 s / 0.24 s = 3.75x).
int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  const std::vector<uint8_t> &Code = imageOfSize(4 << 20);
  uint64_t Instrs = instrCountOf(Code);
  core::RockSalt V;

  auto TimeIt = [&](auto &&Fn) {
    auto Start = std::chrono::steady_clock::now();
    int Reps = 8;
    for (int I = 0; I < Reps; ++I)
      benchmark::DoNotOptimize(Fn());
    auto End = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(End - Start).count() / Reps;
  };
  double RockSecs = TimeIt([&] { return V.verify(Code); });
  double BaseSecs = TimeIt([&] { return core::baselineVerify(Code); });

  std::printf("\n--- E1: paper Table (section 3.3) reproduction ---\n");
  std::printf("image: %.1f MiB, %llu instructions\n",
              Code.size() / 1048576.0,
              static_cast<unsigned long long>(Instrs));
  std::printf("%-22s %10s %16s\n", "checker", "seconds", "instr/sec");
  std::printf("%-22s %10.4f %16.0f\n", "rocksalt (DFA)", RockSecs,
              Instrs / RockSecs);
  std::printf("%-22s %10.4f %16.0f\n", "baseline (ncval-style)", BaseSecs,
              Instrs / BaseSecs);
  std::printf("speedup: %.2fx (paper: 0.90s vs 0.24s = 3.75x)\n",
              BaseSecs / RockSecs);
  std::printf("paper claim ~1M instr/s: %s\n",
              Instrs / RockSecs >= 1e6 ? "met" : "NOT met");
  return 0;
}
