//===- bench/bench_tcb_report.cpp ------------------------------*- C++ -*-===//
//
// Experiment E7 (paper sections 1, 3.1, 6.2): trusted-computing-base
// size. The paper contrasts Google's ~600-statement checker with
// RockSalt's ~80 lines of Coq / <100 lines of trusted C plus generated
// tables. This (static) report counts the analogous artifacts in this
// repository:
//
//   * the run-time TCB: core/Verifier.cpp (dfaMatch + verifyImage) —
//     everything else the verdict depends on is generated DFA tables;
//   * the generator-side declarative policy: core/Policy.cpp;
//   * the hand-written comparison checker: core/BaselineChecker.cpp.
//
//===----------------------------------------------------------------------===//

#include "core/Policy.h"

#include <cstdio>
#include <fstream>
#include <string>

using namespace rocksalt;

namespace {

struct Counts {
  int Total = 0;
  int Code = 0; // non-blank, non-comment
};

Counts countFile(const std::string &Path) {
  Counts C;
  std::ifstream In(Path);
  std::string Line;
  bool InBlock = false;
  while (std::getline(In, Line)) {
    ++C.Total;
    size_t I = Line.find_first_not_of(" \t");
    if (I == std::string::npos)
      continue;
    std::string T = Line.substr(I);
    if (InBlock) {
      if (T.find("*/") != std::string::npos)
        InBlock = false;
      continue;
    }
    if (T.rfind("//", 0) == 0)
      continue;
    if (T.rfind("/*", 0) == 0) {
      if (T.find("*/") == std::string::npos)
        InBlock = true;
      continue;
    }
    ++C.Code;
  }
  return C;
}

/// Counts only the trusted-core functions of Verifier.cpp (dfaMatch and
/// verifyImage — the Figures 5/6 port), excluding the instrumented
/// `check` used by tests and monitors.
Counts countTrustedCore(const std::string &Path) {
  Counts C;
  std::ifstream In(Path);
  std::string Line;
  bool Inside = false;
  int Depth = 0;
  while (std::getline(In, Line)) {
    if (!Inside &&
        (Line.find("bool core::dfaMatch") != std::string::npos ||
         Line.find("bool extractTarget") != std::string::npos ||
         Line.find("bool core::verifyImage") != std::string::npos)) {
      Inside = true;
      Depth = 0;
    }
    if (Inside) {
      ++C.Total;
      size_t I = Line.find_first_not_of(" \t");
      if (I != std::string::npos && Line.substr(I).rfind("//", 0) != 0)
        ++C.Code;
      for (char Ch : Line) {
        if (Ch == '{')
          ++Depth;
        if (Ch == '}')
          --Depth;
      }
      if (Depth == 0 && Line.find('}') != std::string::npos)
        Inside = false;
    }
  }
  return C;
}

} // namespace

int main(int argc, char **argv) {
  std::string Root = SRC_DIR;
  (void)argc;
  (void)argv;

  Counts Core = countTrustedCore(Root + "/core/Verifier.cpp");
  Counts VerifierAll = countFile(Root + "/core/Verifier.cpp");
  Counts Policy = countFile(Root + "/core/Policy.cpp");
  Counts Baseline = countFile(Root + "/core/BaselineChecker.cpp");

  const core::PolicyTables &T = core::policyTables();
  size_t States = T.NoControlFlow.numStates() + T.DirectJump.numStates() +
                  T.MaskedJump.numStates();

  std::printf("--- E7: trusted computing base (paper: ~600 statements vs "
              "<100 lines + tables) ---\n");
  std::printf("%-44s %8s %8s\n", "artifact", "lines", "code");
  std::printf("%-44s %8d %8d\n",
              "run-time TCB (dfaMatch+extract+verifyImage)", Core.Total,
              Core.Code);
  std::printf("%-44s %8d %8d\n", "whole Verifier.cpp (incl. check())",
              VerifierAll.Total, VerifierAll.Code);
  std::printf("%-44s %8d %8d\n", "declarative policy (generator side)",
              Policy.Total, Policy.Code);
  std::printf("%-44s %8d %8d\n", "baseline checker (ncval-style)",
              Baseline.Total, Baseline.Code);
  std::printf("generated DFA tables: %zu states (~%.0f KiB)\n", States,
              States * 514.0 / 1024.0);
  std::printf("paper shape (TCB ~6x smaller than the hand checker): %s\n",
              Baseline.Code > 4 * Core.Code ? "met" : "NOT met");
  return 0;
}
