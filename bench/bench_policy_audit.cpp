//===- bench/bench_policy_audit.cpp ---------------------------*- C++ -*-===//
//
// Cost of the policy meta-audit (analysis/PolicyAudit.h), split into its
// phases: building the decoder reference DFAs (the dominant one-time
// cost), the full audit given tables + references, and the individual
// algebra passes it is made of. Establishes that the audit is cheap
// enough to run as a ctest gate on every build.
//
// After the timed benchmarks, prints the E10 report: per-policy raw vs
// minimized state counts and the audit wall-clock, i.e. the numbers
// EXPERIMENTS.md records.
//
//===----------------------------------------------------------------------===//

#include "analysis/PolicyAudit.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace rocksalt;

namespace {

void benchBuildDecoderDfas(benchmark::State &State) {
  for (auto _ : State) {
    analysis::DecoderDfas X = analysis::buildDecoderDfas();
    benchmark::DoNotOptimize(X.One.numStates() + X.Pair.numStates());
  }
}
BENCHMARK(benchBuildDecoderDfas)->Unit(benchmark::kMillisecond);

void benchFullAudit(benchmark::State &State) {
  const core::PolicyTables &T = core::policyTables();
  analysis::DecoderDfas X = analysis::buildDecoderDfas();
  for (auto _ : State) {
    analysis::AuditReport R = analysis::auditPolicy(T, X);
    benchmark::DoNotOptimize(R.Pass);
  }
}
BENCHMARK(benchFullAudit)->Unit(benchmark::kMillisecond);

void benchPairwiseDisjointness(benchmark::State &State) {
  const core::PolicyTables &T = core::policyTables();
  for (auto _ : State) {
    bool D = !re::intersectionWitness(T.MaskedJump, T.NoControlFlow) &&
             !re::intersectionWitness(T.MaskedJump, T.DirectJump) &&
             !re::intersectionWitness(T.NoControlFlow, T.DirectJump);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(benchPairwiseDisjointness)->Unit(benchmark::kMicrosecond);

void benchDecoderInclusion(benchmark::State &State) {
  const core::PolicyTables &T = core::policyTables();
  analysis::DecoderDfas X = analysis::buildDecoderDfas();
  for (auto _ : State) {
    bool I = !re::inclusionWitness(T.NoControlFlow, X.One) &&
             !re::inclusionWitness(T.DirectJump, X.One) &&
             !re::inclusionWitness(T.MaskedJump, X.Pair);
    benchmark::DoNotOptimize(I);
  }
}
BENCHMARK(benchDecoderInclusion)->Unit(benchmark::kMicrosecond);

void benchMinimizeTables(benchmark::State &State) {
  const core::PolicyTables &T = core::policyTables();
  for (auto _ : State) {
    size_t N = re::minimizeDfa(T.MaskedJump).numStates() +
               re::minimizeDfa(T.NoControlFlow).numStates() +
               re::minimizeDfa(T.DirectJump).numStates();
    benchmark::DoNotOptimize(N);
  }
}
BENCHMARK(benchMinimizeTables)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // The E10 report.
  analysis::AuditReport R = analysis::auditShippedPolicy();
  std::printf("\n%s", R.render().c_str());
  analysis::DecoderDfas X = analysis::buildDecoderDfas();
  std::printf("decoder reference: one-instruction %zu states, "
              "two-instruction %zu states\n",
              X.One.numStates(), X.Pair.numStates());
  return R.Pass ? 0 : 1;
}
