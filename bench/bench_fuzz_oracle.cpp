//===- bench/bench_fuzz_oracle.cpp -----------------------------*- C++ -*-===//
//
// Throughput of the differential fuzz harness: images/second through the
// full cross-verifier oracle (all four verdict paths, three shard
// geometries), through its cheaper subsets, and through the structured
// mutator alone. This is what sizes the CI smoke budget — the smoke gate
// pushes >=10k images, so oracle throughput directly bounds how much
// disagreement-hunting a fixed CI window buys.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Minimizer.h"
#include "fuzz/Oracle.h"
#include "fuzz/StructuredMutator.h"
#include "nacl/WorkloadGen.h"

#include <benchmark/benchmark.h>

using namespace rocksalt;

namespace {

std::vector<uint8_t> image(uint32_t Bytes) {
  nacl::WorkloadOptions Opts;
  Opts.TargetBytes = Bytes;
  Opts.Seed = 0x5EED + Bytes;
  return nacl::generateWorkload(Opts);
}

void benchOracleFull(benchmark::State &State) {
  fuzz::DifferentialOracle Oracle;
  std::vector<uint8_t> Code = image(uint32_t(State.range(0)));
  Rng R(1);
  for (auto _ : State) {
    Code = fuzz::mutateStructured(Code, R);
    benchmark::DoNotOptimize(Oracle.run(Code).agree());
  }
  State.SetItemsProcessed(State.iterations());
  State.SetBytesProcessed(int64_t(State.iterations()) * Code.size());
}

void benchOracleNoParallel(benchmark::State &State) {
  fuzz::OracleOptions O;
  O.RunParallel = false;
  fuzz::DifferentialOracle Oracle(O);
  std::vector<uint8_t> Code = image(uint32_t(State.range(0)));
  Rng R(1);
  for (auto _ : State) {
    Code = fuzz::mutateStructured(Code, R);
    benchmark::DoNotOptimize(Oracle.run(Code).agree());
  }
  State.SetItemsProcessed(State.iterations());
}

void benchMutatorOnly(benchmark::State &State) {
  std::vector<uint8_t> Code = image(uint32_t(State.range(0)));
  Rng R(1);
  for (auto _ : State) {
    Code = fuzz::mutateStructured(Code, R);
    benchmark::DoNotOptimize(Code.data());
  }
  State.SetItemsProcessed(State.iterations());
}

void benchMinimizer(benchmark::State &State) {
  // Shrink a planted violation back out of a compliant image — the cost
  // profile of one fuzz-found disagreement.
  std::vector<uint8_t> Seed = image(uint32_t(State.range(0)));
  std::vector<uint32_t> Starts = fuzz::chainPositions(Seed);
  Seed[Starts[Starts.size() / 2]] = 0xC3;
  core::RockSalt V;
  for (auto _ : State) {
    fuzz::MinimizeResult R = fuzz::minimizeImage(
        Seed, [&](const std::vector<uint8_t> &C) { return !V.verify(C); });
    benchmark::DoNotOptimize(R.Image.data());
  }
  State.SetItemsProcessed(State.iterations());
}

} // namespace

BENCHMARK(benchOracleFull)->Arg(384)->Arg(2048)->UseRealTime();
BENCHMARK(benchOracleNoParallel)->Arg(384)->Arg(2048);
BENCHMARK(benchMutatorOnly)->Arg(384)->Arg(2048);
BENCHMARK(benchMinimizer)->Arg(384);

BENCHMARK_MAIN();
