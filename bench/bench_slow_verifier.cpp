//===- bench/bench_slow_verifier.cpp ---------------------------*- C++ -*-===//
//
// Experiment E6 (paper section 1): the throughput gap between a
// theorem-prover-shaped verifier and RockSalt's table-driven one. Zhao
// et al. take ~2.5 hours for a 300-instruction program (~0.03 instr/s);
// RockSalt does ~1M instr/s — a ~10^7x gap. Our SlowVerifier re-derives
// the policy symbolically per instruction; we measure both on the same
// 300-instruction-scale program and report the ratio. The absolute gap
// here is smaller (our "prover" is still just derivative calculation),
// but the orders-of-magnitude shape is what the experiment checks.
//
//===----------------------------------------------------------------------===//

#include "core/SlowVerifier.h"
#include "core/Verifier.h"
#include "nacl/WorkloadGen.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>

using namespace rocksalt;

namespace {

std::vector<uint8_t> smallProgram() {
  nacl::WorkloadOptions Opts;
  Opts.TargetBytes = 900; // roughly 300 instructions
  Opts.Seed = 6;
  return nacl::generateWorkload(Opts);
}

void benchSlowVerifier(benchmark::State &State) {
  std::vector<uint8_t> Code = smallProgram();
  uint64_t N = 0;
  for (auto _ : State) {
    bool Ok = core::slowVerify(Code, &N);
    benchmark::DoNotOptimize(Ok);
  }
  State.counters["instr/s"] = benchmark::Counter(
      double(N) * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(benchSlowVerifier)->Unit(benchmark::kSecond)->Iterations(1);

void benchRockSaltSameProgram(benchmark::State &State) {
  std::vector<uint8_t> Code = smallProgram();
  core::RockSalt V;
  for (auto _ : State) {
    bool Ok = V.verify(Code);
    benchmark::DoNotOptimize(Ok);
  }
}
BENCHMARK(benchRockSaltSameProgram);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::vector<uint8_t> Code = smallProgram();
  core::RockSalt V;
  uint64_t Instrs = 0;

  auto Start = std::chrono::steady_clock::now();
  bool SlowOk = core::slowVerify(Code, &Instrs);
  auto Mid = std::chrono::steady_clock::now();
  // Run the fast one many times for a measurable duration.
  const int Reps = 2000;
  bool FastOk = true;
  for (int I = 0; I < Reps; ++I)
    FastOk &= V.verify(Code);
  auto End = std::chrono::steady_clock::now();

  double SlowSecs = std::chrono::duration<double>(Mid - Start).count();
  double FastSecs =
      std::chrono::duration<double>(End - Mid).count() / Reps;

  std::printf("\n--- E6: vs theorem-prover-shaped verification ---\n");
  std::printf("program: %zu bytes, %llu instructions (verdicts agree: %s)\n",
              Code.size(), static_cast<unsigned long long>(Instrs),
              SlowOk == FastOk ? "yes" : "NO");
  std::printf("%-28s %12s %14s\n", "verifier", "seconds", "instr/sec");
  std::printf("%-28s %12.3f %14.2f\n", "symbolic re-derivation", SlowSecs,
              Instrs / SlowSecs);
  std::printf("%-28s %12.6f %14.0f\n", "rocksalt (DFA tables)", FastSecs,
              Instrs / FastSecs);
  std::printf("throughput ratio: %.0fx (paper's shape: ~10^7x between "
              "ARMor at 300 instr / 2.5 h and RockSalt at ~1M instr/s)\n",
              SlowSecs / FastSecs);
  return 0;
}
