//===- bench/bench_service.cpp ---------------------------------*- C++ -*-===//
//
// Experiment E12: the serve-vs-rebuild economics of the verification
// service. A one-shot checker pays the policy-table build (~ms) on every
// process start; a client of the service instead loads the served RSTB
// blob (deserialize + hash check), and a warm client with a cached blob
// pays only the 64-byte hash negotiation. This bench measures all three
// start-up paths plus the in-process frame round-trip cost of each
// request kind, and emits one JSON line per quantity (appended to
// BENCH_service.json when ROCKSALT_BENCH_JSON is set, else stdout).
//
// The acceptance lines: load_blob_ms must beat build_tables_ms — that is
// the entire point of tables-by-hash distribution — and the 8-client
// aggregate socket throughput must be at least the single-session
// throughput (E14: the event loop must convert concurrency into
// throughput, not serialize it away).
//
//===----------------------------------------------------------------------===//

#include "core/Policy.h"
#include "core/TableRegistry.h"
#include "mips/MipsPolicy.h"
#include "nacl/WorkloadGen.h"
#include "regex/TableIO.h"
#include "svc/EventLoop.h"
#include "svc/Protocol.h"
#include "svc/Service.h"

#include <benchmark/benchmark.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace rocksalt;

static void benchBuildTables(benchmark::State &State) {
  for (auto _ : State) {
    core::PolicyTables T = core::buildPolicyTables();
    benchmark::DoNotOptimize(T.NoControlFlow.numStates());
  }
}
BENCHMARK(benchBuildTables)->Unit(benchmark::kMillisecond);

static void benchLoadServedBlob(benchmark::State &State) {
  std::vector<uint8_t> Blob =
      core::serializePolicyTables(core::policyTables());
  std::string Hash = re::blobHashHex(Blob);
  for (auto _ : State) {
    core::PolicyTables T = core::loadPolicyTables(Blob, Hash);
    benchmark::DoNotOptimize(T.NoControlFlow.numStates());
  }
}
BENCHMARK(benchLoadServedBlob)->Unit(benchmark::kMillisecond);

static void benchHashNegotiationOnly(benchmark::State &State) {
  // The warm-client path: re-hash the cached blob and compare — no
  // transfer, no deserialization.
  std::vector<uint8_t> Blob =
      core::serializePolicyTables(core::policyTables());
  for (auto _ : State) {
    std::string H = re::verifyBlobHashHex(Blob);
    benchmark::DoNotOptimize(H.size());
  }
}
BENCHMARK(benchHashNegotiationOnly)->Unit(benchmark::kMillisecond);

namespace {

template <typename F> double medianMs(F Fn, int Reps = 9) {
  std::vector<double> Ms;
  for (int I = 0; I < Reps; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    Ms.push_back(std::chrono::duration<double, std::milli>(T1 - T0).count());
  }
  std::sort(Ms.begin(), Ms.end());
  return Ms[Ms.size() / 2];
}

/// One framed request through the service shell, response discarded.
double frameRoundTripMs(svc::Service &S, svc::proto::MsgKind Kind,
                        const std::vector<uint8_t> &Body) {
  std::vector<uint8_t> Req;
  svc::proto::appendFrame(Req, Kind, Body);
  svc::proto::Frame F;
  size_t Pos = 0;
  svc::proto::parseFrame(Req.data(), Req.size(), &Pos, &F);
  return medianMs([&] {
    std::vector<uint8_t> Resp = S.handleFrame(F, nullptr);
    benchmark::DoNotOptimize(Resp.size());
  });
}

/// One client session for E14: \p Rounds verify round trips of \p Image
/// over a blocking socket, lock-step request/response.
void clientRounds(const std::string &Sock, const std::vector<uint8_t> &Image,
                  int Rounds) {
  int Fd = svc::connectUnixSocket(Sock);
  std::vector<uint8_t> Req;
  svc::proto::appendFrame(Req, svc::proto::MsgKind::VerifyRequest,
                          svc::proto::encodeImageBatch({Image}));
  std::vector<uint8_t> Buf;
  size_t Pos = 0;
  svc::proto::Frame F;
  uint8_t Tmp[16 * 1024];
  for (int R = 0; R < Rounds; ++R) {
    size_t Off = 0;
    while (Off < Req.size()) {
      ssize_t N = ::send(Fd, Req.data() + Off, Req.size() - Off, MSG_NOSIGNAL);
      if (N <= 0)
        std::abort();
      Off += size_t(N);
    }
    while (!svc::proto::parseFrame(Buf.data(), Buf.size(), &Pos, &F)) {
      if (Pos) {
        Buf.erase(Buf.begin(), Buf.begin() + long(Pos));
        Pos = 0;
      }
      ssize_t N = ::read(Fd, Tmp, sizeof(Tmp));
      if (N <= 0)
        std::abort();
      Buf.insert(Buf.end(), Tmp, Tmp + N);
    }
  }
  ::close(Fd);
}

/// E14 phase: \p Clients lock-step sessions (plus optionally one stalled
/// reader that requests work and never reads) against a fresh event-loop
/// server; returns aggregate verified MB/s.
double concurrentMbps(unsigned Clients, int RoundsPerClient, bool AddStalled) {
  char Dir[] = "/tmp/rocksalt_bench_XXXXXX";
  if (!::mkdtemp(Dir))
    std::abort();
  std::string Sock = std::string(Dir) + "/svc.sock";

  svc::Metrics Met;
  svc::Service Server(svc::ServiceOptions{2, &Met});
  svc::EventLoop Loop(Server, svc::listenUnixSocket(Sock));
  std::thread Runner([&] { Loop.run(); });

  nacl::WorkloadOptions WO;
  WO.TargetBytes = 4096;
  WO.Seed = 12000;
  std::vector<uint8_t> Image = nacl::generateWorkload(WO);

  int Stalled = -1;
  if (AddStalled) {
    Stalled = svc::connectUnixSocket(Sock);
    std::vector<uint8_t> Req;
    svc::proto::appendFrame(Req, svc::proto::MsgKind::VerifyRequest,
                            svc::proto::encodeImageBatch({Image}));
    for (int I = 0; I < 4; ++I)
      (void)!::send(Stalled, Req.data(), Req.size(), MSG_NOSIGNAL);
    // ...and never read: its queued responses must not slow anyone else.
  }

  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back(clientRounds, Sock, std::cref(Image),
                         RoundsPerClient);
  for (auto &T : Threads)
    T.join();
  auto T1 = std::chrono::steady_clock::now();

  if (Stalled >= 0)
    ::close(Stalled);
  Loop.requestStop();
  Runner.join();
  ::unlink(Sock.c_str());
  ::rmdir(Dir);

  double Secs = std::chrono::duration<double>(T1 - T0).count();
  double Bytes = double(Image.size()) * Clients * RoundsPerClient;
  return Bytes / (1024.0 * 1024.0) / Secs;
}

} // namespace

int main(int argc, char **argv) {
  std::signal(SIGPIPE, SIG_IGN); // the stalled-reader phase drops mid-stream
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::vector<uint8_t> Blob =
      core::serializePolicyTables(core::policyTables());
  std::string Hash = re::blobHashHex(Blob);

  double BuildMs = medianMs([] {
    core::PolicyTables T = core::buildPolicyTables();
    benchmark::DoNotOptimize(T.NoControlFlow.numStates());
  });
  double LoadMs = medianMs([&] {
    core::PolicyTables T = core::loadPolicyTables(Blob, Hash);
    benchmark::DoNotOptimize(T.NoControlFlow.numStates());
  });
  double NegotiateMs = medianMs([&] {
    std::string H = re::verifyBlobHashHex(Blob);
    benchmark::DoNotOptimize(H.size());
  });

  svc::Service S(svc::ServiceOptions{2, nullptr});
  std::vector<std::vector<uint8_t>> Images;
  for (uint32_t I = 0; I < 8; ++I) {
    nacl::WorkloadOptions WO;
    WO.TargetBytes = 1024;
    WO.Seed = 11000 + I;
    Images.push_back(nacl::generateWorkload(WO));
  }
  std::vector<uint8_t> Batch = svc::proto::encodeImageBatch(Images);
  double VerifyMs =
      frameRoundTripMs(S, svc::proto::MsgKind::VerifyRequest, Batch);
  double LintMs = frameRoundTripMs(S, svc::proto::MsgKind::LintRequest, Batch);
  double TablesColdMs = frameRoundTripMs(
      S, svc::proto::MsgKind::TablesRequest, svc::proto::encodeTablesRequest(""));
  double TablesWarmMs =
      frameRoundTripMs(S, svc::proto::MsgKind::TablesRequest,
                       svc::proto::encodeTablesRequest(S.tablesHashHex()));

  // The mixed-ISA negotiation phase: with the MIPS tenant registered,
  // a v2 client selects tables by ISA tag (cold = full blob transfer,
  // warm = 64-byte hash confirm), and a v1 client whose cached hash
  // names the MIPS entry gets a cross-entry hash confirmation through
  // the original wire shape — no blob, no rebuild.
  const core::TableEntry &MipsE = mips::mipsTableEntry();
  double MipsColdMs = frameRoundTripMs(
      S, svc::proto::MsgKind::TablesRequest,
      svc::proto::encodeTablesRequest("", core::IsaMips));
  double MipsWarmMs = frameRoundTripMs(
      S, svc::proto::MsgKind::TablesRequest,
      svc::proto::encodeTablesRequest(MipsE.HashHex, core::IsaMips));
  double CrossHashMs = frameRoundTripMs(
      S, svc::proto::MsgKind::TablesRequest,
      svc::proto::encodeTablesRequest(MipsE.HashHex));

  std::printf("\n--- E12: serve vs rebuild (blob %zu bytes) ---\n",
              Blob.size());
  std::printf("build tables (one-shot start):   %8.3f ms\n", BuildMs);
  std::printf("load served blob (cold client):  %8.3f ms  (%.1fx faster)\n",
              LoadMs, BuildMs / LoadMs);
  std::printf("hash negotiation (warm client):  %8.3f ms\n", NegotiateMs);
  std::printf("frame round-trip: verify(8x1KiB) %8.3f ms, lint %8.3f ms, "
              "tables cold %8.3f ms, tables warm %8.3f ms\n",
              VerifyMs, LintMs, TablesColdMs, TablesWarmMs);
  std::printf("mixed-isa tables: mips cold %8.3f ms (blob %zu bytes), "
              "mips warm %8.3f ms, v1-wire cross-hash confirm %8.3f ms\n",
              MipsColdMs, MipsE.Blob.size(), MipsWarmMs, CrossHashMs);
  if (LoadMs >= BuildMs)
    std::printf("*** load path did NOT beat the rebuild — serve-by-hash "
                "regressed ***\n");

  // E14: N concurrent lock-step clients against the event loop, equal
  // total work per phase (4 KiB verifies over a Unix socket).
  const int TotalRounds = 640;
  double Mbps1 = concurrentMbps(1, TotalRounds, false);
  double Mbps8 = concurrentMbps(8, TotalRounds / 8, false);
  double Mbps8S = concurrentMbps(8, TotalRounds / 8, true);
  std::printf("\n--- E14: concurrent sessions (event loop, 4 KiB verifies) "
              "---\n");
  std::printf("1 client:             %8.2f MB/s aggregate\n", Mbps1);
  std::printf("8 clients:            %8.2f MB/s aggregate (%.2fx)\n", Mbps8,
              Mbps8 / Mbps1);
  std::printf("8 clients + stalled:  %8.2f MB/s aggregate\n", Mbps8S);
  bool ConcurrencyRegressed = Mbps8 < Mbps1;
  if (ConcurrencyRegressed)
    std::printf("*** 8-client aggregate fell below a single session — the "
                "event loop serialized the work ***\n");

  std::FILE *Json = stdout;
  bool OwnFile = false;
  if (std::getenv("ROCKSALT_BENCH_JSON")) {
    Json = std::fopen("BENCH_service.json", "a");
    OwnFile = Json != nullptr;
    if (!Json)
      Json = stdout;
  }
  auto Line = [&](const char *Metric, double V) {
    std::fprintf(Json,
                 "{\"bench\":\"service\",\"metric\":\"%s\",\"value\":%.4f}\n",
                 Metric, V);
  };
  Line("build_tables_ms", BuildMs);
  Line("load_blob_ms", LoadMs);
  Line("hash_negotiation_ms", NegotiateMs);
  Line("frame_verify_8x1k_ms", VerifyMs);
  Line("frame_lint_8x1k_ms", LintMs);
  Line("frame_tables_cold_ms", TablesColdMs);
  Line("frame_tables_warm_ms", TablesWarmMs);
  Line("frame_tables_mips_cold_ms", MipsColdMs);
  Line("frame_tables_mips_warm_ms", MipsWarmMs);
  Line("frame_tables_cross_hash_ms", CrossHashMs);
  Line("mips_blob_bytes", double(MipsE.Blob.size()));
  Line("concurrent_1_mbps", Mbps1);
  Line("concurrent_8_mbps", Mbps8);
  Line("concurrent_8_stalled_mbps", Mbps8S);
  std::fprintf(Json,
               "{\"bench\":\"service\",\"metric\":\"blob_bytes\","
               "\"value\":%zu}\n",
               Blob.size());
  if (OwnFile)
    std::fclose(Json);
  return (LoadMs < BuildMs && !ConcurrencyRegressed) ? 0 : 1;
}
