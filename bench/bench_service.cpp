//===- bench/bench_service.cpp ---------------------------------*- C++ -*-===//
//
// Experiment E12: the serve-vs-rebuild economics of the verification
// service. A one-shot checker pays the policy-table build (~ms) on every
// process start; a client of the service instead loads the served RSTB
// blob (deserialize + hash check), and a warm client with a cached blob
// pays only the 64-byte hash negotiation. This bench measures all three
// start-up paths plus the in-process frame round-trip cost of each
// request kind, and emits one JSON line per quantity (appended to
// BENCH_service.json when ROCKSALT_BENCH_JSON is set, else stdout).
//
// The acceptance line: load_blob_ms must beat build_tables_ms — that is
// the entire point of tables-by-hash distribution.
//
//===----------------------------------------------------------------------===//

#include "core/Policy.h"
#include "nacl/WorkloadGen.h"
#include "regex/TableIO.h"
#include "svc/Protocol.h"
#include "svc/Service.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace rocksalt;

static void benchBuildTables(benchmark::State &State) {
  for (auto _ : State) {
    core::PolicyTables T = core::buildPolicyTables();
    benchmark::DoNotOptimize(T.NoControlFlow.numStates());
  }
}
BENCHMARK(benchBuildTables)->Unit(benchmark::kMillisecond);

static void benchLoadServedBlob(benchmark::State &State) {
  std::vector<uint8_t> Blob =
      core::serializePolicyTables(core::policyTables());
  std::string Hash = re::blobHashHex(Blob);
  for (auto _ : State) {
    core::PolicyTables T = core::loadPolicyTables(Blob, Hash);
    benchmark::DoNotOptimize(T.NoControlFlow.numStates());
  }
}
BENCHMARK(benchLoadServedBlob)->Unit(benchmark::kMillisecond);

static void benchHashNegotiationOnly(benchmark::State &State) {
  // The warm-client path: re-hash the cached blob and compare — no
  // transfer, no deserialization.
  std::vector<uint8_t> Blob =
      core::serializePolicyTables(core::policyTables());
  for (auto _ : State) {
    std::string H = re::verifyBlobHashHex(Blob);
    benchmark::DoNotOptimize(H.size());
  }
}
BENCHMARK(benchHashNegotiationOnly)->Unit(benchmark::kMillisecond);

namespace {

template <typename F> double medianMs(F Fn, int Reps = 9) {
  std::vector<double> Ms;
  for (int I = 0; I < Reps; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    Ms.push_back(std::chrono::duration<double, std::milli>(T1 - T0).count());
  }
  std::sort(Ms.begin(), Ms.end());
  return Ms[Ms.size() / 2];
}

/// One framed request through the service shell, response discarded.
double frameRoundTripMs(svc::Service &S, svc::proto::MsgKind Kind,
                        const std::vector<uint8_t> &Body) {
  std::vector<uint8_t> Req;
  svc::proto::appendFrame(Req, Kind, Body);
  svc::proto::Frame F;
  size_t Pos = 0;
  svc::proto::parseFrame(Req.data(), Req.size(), &Pos, &F);
  return medianMs([&] {
    std::vector<uint8_t> Resp = S.handleFrame(F, nullptr);
    benchmark::DoNotOptimize(Resp.size());
  });
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::vector<uint8_t> Blob =
      core::serializePolicyTables(core::policyTables());
  std::string Hash = re::blobHashHex(Blob);

  double BuildMs = medianMs([] {
    core::PolicyTables T = core::buildPolicyTables();
    benchmark::DoNotOptimize(T.NoControlFlow.numStates());
  });
  double LoadMs = medianMs([&] {
    core::PolicyTables T = core::loadPolicyTables(Blob, Hash);
    benchmark::DoNotOptimize(T.NoControlFlow.numStates());
  });
  double NegotiateMs = medianMs([&] {
    std::string H = re::verifyBlobHashHex(Blob);
    benchmark::DoNotOptimize(H.size());
  });

  svc::Service S(svc::ServiceOptions{2, nullptr});
  std::vector<std::vector<uint8_t>> Images;
  for (uint32_t I = 0; I < 8; ++I) {
    nacl::WorkloadOptions WO;
    WO.TargetBytes = 1024;
    WO.Seed = 11000 + I;
    Images.push_back(nacl::generateWorkload(WO));
  }
  std::vector<uint8_t> Batch = svc::proto::encodeImageBatch(Images);
  double VerifyMs =
      frameRoundTripMs(S, svc::proto::MsgKind::VerifyRequest, Batch);
  double LintMs = frameRoundTripMs(S, svc::proto::MsgKind::LintRequest, Batch);
  double TablesColdMs = frameRoundTripMs(
      S, svc::proto::MsgKind::TablesRequest, svc::proto::encodeTablesRequest(""));
  double TablesWarmMs =
      frameRoundTripMs(S, svc::proto::MsgKind::TablesRequest,
                       svc::proto::encodeTablesRequest(S.tablesHashHex()));

  std::printf("\n--- E12: serve vs rebuild (blob %zu bytes) ---\n",
              Blob.size());
  std::printf("build tables (one-shot start):   %8.3f ms\n", BuildMs);
  std::printf("load served blob (cold client):  %8.3f ms  (%.1fx faster)\n",
              LoadMs, BuildMs / LoadMs);
  std::printf("hash negotiation (warm client):  %8.3f ms\n", NegotiateMs);
  std::printf("frame round-trip: verify(8x1KiB) %8.3f ms, lint %8.3f ms, "
              "tables cold %8.3f ms, tables warm %8.3f ms\n",
              VerifyMs, LintMs, TablesColdMs, TablesWarmMs);
  if (LoadMs >= BuildMs)
    std::printf("*** load path did NOT beat the rebuild — serve-by-hash "
                "regressed ***\n");

  std::FILE *Json = stdout;
  bool OwnFile = false;
  if (std::getenv("ROCKSALT_BENCH_JSON")) {
    Json = std::fopen("BENCH_service.json", "a");
    OwnFile = Json != nullptr;
    if (!Json)
      Json = stdout;
  }
  auto Line = [&](const char *Metric, double V) {
    std::fprintf(Json,
                 "{\"bench\":\"service\",\"metric\":\"%s\",\"value\":%.4f}\n",
                 Metric, V);
  };
  Line("build_tables_ms", BuildMs);
  Line("load_blob_ms", LoadMs);
  Line("hash_negotiation_ms", NegotiateMs);
  Line("frame_verify_8x1k_ms", VerifyMs);
  Line("frame_lint_8x1k_ms", LintMs);
  Line("frame_tables_cold_ms", TablesColdMs);
  Line("frame_tables_warm_ms", TablesWarmMs);
  std::fprintf(Json,
               "{\"bench\":\"service\",\"metric\":\"blob_bytes\","
               "\"value\":%zu}\n",
               Blob.size());
  if (OwnFile)
    std::fclose(Json);
  return LoadMs < BuildMs ? 0 : 1;
}
