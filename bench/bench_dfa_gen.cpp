//===- bench/bench_dfa_gen.cpp ---------------------------------*- C++ -*-===//
//
// Experiments E2/E11 (paper section 3.2): policy DFA generation. The
// paper reports that the largest generated DFA has 61 states and that no
// minimization is needed. We report the state counts of the three policy
// DFAs (raw derivative closure vs the shipped Hopcroft-minimized form)
// and the offline generation time (which the paper performs inside Coq;
// here it is a few milliseconds of library time).
//
// The custom main prints the size table and emits one JSON line per
// measured quantity (appended to BENCH_dfa_gen.json when
// ROCKSALT_BENCH_JSON is set, else stdout) so construction time and
// table sizes can be diffed across PRs — this is the E11 trajectory.
//
//===----------------------------------------------------------------------===//

#include "core/Policy.h"
#include "regex/TableIO.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace rocksalt;
using namespace rocksalt::core;

static void benchBuildPolicyTables(benchmark::State &State) {
  for (auto _ : State) {
    PolicyTables T = buildPolicyTables();
    benchmark::DoNotOptimize(T.NoControlFlow.numStates());
  }
}
BENCHMARK(benchBuildPolicyTables)->Unit(benchmark::kMillisecond);

static void benchBuildPolicyTablesRaw(benchmark::State &State) {
  for (auto _ : State) {
    PolicyTables T = buildPolicyTablesRaw();
    benchmark::DoNotOptimize(T.NoControlFlow.numStates());
  }
}
BENCHMARK(benchBuildPolicyTablesRaw)->Unit(benchmark::kMillisecond);

static void benchBuildMaskedJumpOnly(benchmark::State &State) {
  for (auto _ : State) {
    re::Factory F;
    PolicyGrammars P = buildPolicyGrammars(F);
    re::Dfa D = re::buildDfa(F, P.MaskedJumpRe);
    benchmark::DoNotOptimize(D.numStates());
  }
}
BENCHMARK(benchBuildMaskedJumpOnly)->Unit(benchmark::kMillisecond);

static void benchSerializeTables(benchmark::State &State) {
  const PolicyTables &T = policyTables();
  for (auto _ : State) {
    std::vector<uint8_t> Blob = serializePolicyTables(T);
    benchmark::DoNotOptimize(Blob.size());
  }
}
BENCHMARK(benchSerializeTables)->Unit(benchmark::kMicrosecond);

namespace {

/// Median-of-N wall-clock of one invocation of \p Fn, in milliseconds.
template <typename F> double medianMs(F Fn, int Reps = 9) {
  std::vector<double> Ms;
  for (int I = 0; I < Reps; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    Ms.push_back(std::chrono::duration<double, std::milli>(T1 - T0).count());
  }
  std::sort(Ms.begin(), Ms.end());
  return Ms[Ms.size() / 2];
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  const PolicyTables &T = policyTables();
  PolicyTables Raw = buildPolicyTablesRaw();
  std::vector<uint8_t> Blob = serializePolicyTables(T);
  size_t TableBytes =
      (T.NoControlFlow.numStates() + T.DirectJump.numStates() +
       T.MaskedJump.numStates()) *
      (256 * sizeof(uint16_t) + 2);

  std::printf("\n--- E2: policy DFA sizes (paper: largest = 61 states) ---\n");
  std::printf("%-16s %8s %8s %8s %8s\n", "dfa", "raw", "shipped", "accepts",
              "rejects");
  auto Row = [](const char *Name, const re::Dfa &RawD, const re::Dfa &D) {
    size_t Acc = 0, Rej = 0;
    for (size_t I = 0; I < D.numStates(); ++I) {
      Acc += D.Accepts[I];
      Rej += D.Rejects[I];
    }
    std::printf("%-16s %8zu %8zu %8zu %8zu\n", Name, RawD.numStates(),
                D.numStates(), Acc, Rej);
  };
  Row("MaskedJump", Raw.MaskedJump, T.MaskedJump);
  Row("DirectJump", Raw.DirectJump, T.DirectJump);
  Row("NoControlFlow", Raw.NoControlFlow, T.NoControlFlow);
  std::printf("total table footprint: %.1f KiB (serialized: %.1f KiB, "
              "hash %s)\n",
              TableBytes / 1024.0, Blob.size() / 1024.0,
              re::blobHashHex(Blob).c_str());
  size_t Largest =
      std::max({T.NoControlFlow.numStates(), T.DirectJump.numStates(),
                T.MaskedJump.numStates()});
  std::printf("largest DFA: %zu states (paper: 61) — %s\n", Largest,
              Largest <= 64 ? "within the paper's range"
                            : "larger than the paper's");

  // E11 JSON trajectory.
  double RawMs = medianMs([] {
    PolicyTables P = buildPolicyTablesRaw();
    benchmark::DoNotOptimize(P.NoControlFlow.numStates());
  });
  double ShippedMs = medianMs([] {
    PolicyTables P = buildPolicyTables();
    benchmark::DoNotOptimize(P.NoControlFlow.numStates());
  });
  double SerializeMs = medianMs([&] {
    std::vector<uint8_t> B = serializePolicyTables(T);
    benchmark::DoNotOptimize(B.size());
  });

  std::FILE *Json = stdout;
  bool OwnFile = false;
  if (std::getenv("ROCKSALT_BENCH_JSON")) {
    Json = std::fopen("BENCH_dfa_gen.json", "a");
    OwnFile = Json != nullptr;
    if (!Json)
      Json = stdout;
  }
  std::fprintf(Json,
               "{\"bench\":\"dfa_gen\",\"metric\":\"build_raw_ms\","
               "\"value\":%.3f}\n",
               RawMs);
  std::fprintf(Json,
               "{\"bench\":\"dfa_gen\",\"metric\":\"build_minimized_ms\","
               "\"value\":%.3f}\n",
               ShippedMs);
  std::fprintf(Json,
               "{\"bench\":\"dfa_gen\",\"metric\":\"serialize_ms\","
               "\"value\":%.3f}\n",
               SerializeMs);
  std::fprintf(Json,
               "{\"bench\":\"dfa_gen\",\"metric\":\"states\","
               "\"masked_jump_raw\":%zu,\"masked_jump\":%zu,"
               "\"direct_jump_raw\":%zu,\"direct_jump\":%zu,"
               "\"no_control_flow_raw\":%zu,\"no_control_flow\":%zu,"
               "\"blob_bytes\":%zu,\"hash\":\"%s\"}\n",
               Raw.MaskedJump.numStates(), T.MaskedJump.numStates(),
               Raw.DirectJump.numStates(), T.DirectJump.numStates(),
               Raw.NoControlFlow.numStates(), T.NoControlFlow.numStates(),
               Blob.size(), re::blobHashHex(Blob).c_str());
  if (OwnFile)
    std::fclose(Json);
  return 0;
}
