//===- bench/bench_dfa_gen.cpp ---------------------------------*- C++ -*-===//
//
// Experiment E2 (paper section 3.2): policy DFA generation. The paper
// reports that the largest generated DFA has 61 states and that no
// minimization is needed. We report the state counts of the three policy
// DFAs and the offline generation time (which the paper performs inside
// Coq; here it is a few milliseconds of library time).
//
//===----------------------------------------------------------------------===//

#include "core/Policy.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

using namespace rocksalt;
using namespace rocksalt::core;

static void benchBuildPolicyTables(benchmark::State &State) {
  for (auto _ : State) {
    PolicyTables T = buildPolicyTables();
    benchmark::DoNotOptimize(T.NoControlFlow.numStates());
  }
}
BENCHMARK(benchBuildPolicyTables)->Unit(benchmark::kMillisecond);

static void benchBuildMaskedJumpOnly(benchmark::State &State) {
  for (auto _ : State) {
    re::Factory F;
    PolicyGrammars P = buildPolicyGrammars(F);
    re::Dfa D = re::buildDfa(F, P.MaskedJumpRe);
    benchmark::DoNotOptimize(D.numStates());
  }
}
BENCHMARK(benchBuildMaskedJumpOnly)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  const PolicyTables &T = policyTables();
  size_t TableBytes =
      (T.NoControlFlow.numStates() + T.DirectJump.numStates() +
       T.MaskedJump.numStates()) *
      (256 * sizeof(uint16_t) + 2);

  std::printf("\n--- E2: policy DFA sizes (paper: largest = 61 states) ---\n");
  std::printf("%-16s %8s %8s %8s\n", "dfa", "states", "accepts", "rejects");
  auto Row = [](const char *Name, const re::Dfa &D) {
    size_t Acc = 0, Rej = 0;
    for (size_t I = 0; I < D.numStates(); ++I) {
      Acc += D.Accepts[I];
      Rej += D.Rejects[I];
    }
    std::printf("%-16s %8zu %8zu %8zu\n", Name, D.numStates(), Acc, Rej);
  };
  Row("MaskedJump", T.MaskedJump);
  Row("DirectJump", T.DirectJump);
  Row("NoControlFlow", T.NoControlFlow);
  std::printf("total table footprint: %.1f KiB\n", TableBytes / 1024.0);
  size_t Largest =
      std::max({T.NoControlFlow.numStates(), T.DirectJump.numStates(),
                T.MaskedJump.numStates()});
  std::printf("largest DFA: %zu states (paper: 61) — %s\n", Largest,
              Largest <= 64 ? "within the paper's range"
                            : "larger than the paper's");
  return 0;
}
