//===- bench/bench_decoder.cpp ---------------------------------*- C++ -*-===//
//
// Decoder ablation (supports E3 and the paper's "reasonably efficient
// parser" claim in section 2.2): throughput of the derivative-based
// reference decoder vs the table-driven production decoder on the same
// instruction stream, plus the cost split of the reference path.
//
//===----------------------------------------------------------------------===//

#include "nacl/WorkloadGen.h"
#include "x86/Encoder.h"
#include "x86/FastDecoder.h"
#include "x86/GrammarDecoder.h"
#include "x86/InstrGen.h"

#include <benchmark/benchmark.h>

using namespace rocksalt;

namespace {

/// A corpus of encoded instructions (concatenated, plus an index).
struct Corpus {
  std::vector<uint8_t> Bytes;
  std::vector<uint32_t> Starts;
};

const Corpus &corpus() {
  static const Corpus C = [] {
    Corpus Out;
    Rng R(12);
    for (int I = 0; I < 2000; ++I) {
      x86::Instr Ins = x86::randomInstr(R);
      auto B = x86::encode(Ins);
      if (!B)
        continue;
      Out.Starts.push_back(static_cast<uint32_t>(Out.Bytes.size()));
      Out.Bytes.insert(Out.Bytes.end(), B->begin(), B->end());
    }
    return Out;
  }();
  return C;
}

void benchFastDecoder(benchmark::State &State) {
  const Corpus &C = corpus();
  uint64_t Decoded = 0;
  for (auto _ : State) {
    for (uint32_t S : C.Starts) {
      auto D = x86::fastDecode(C.Bytes.data() + S, C.Bytes.size() - S);
      benchmark::DoNotOptimize(D);
      ++Decoded;
    }
  }
  State.counters["instr/s"] =
      benchmark::Counter(double(Decoded), benchmark::Counter::kIsRate);
}
BENCHMARK(benchFastDecoder);

void benchGrammarDecoder(benchmark::State &State) {
  const Corpus &C = corpus();
  uint64_t Decoded = 0;
  for (auto _ : State) {
    // The reference decoder is ~1000x slower; sample every 40th site.
    for (size_t I = 0; I < C.Starts.size(); I += 40) {
      uint32_t S = C.Starts[I];
      auto D = x86::grammarDecode(C.Bytes.data() + S, C.Bytes.size() - S);
      benchmark::DoNotOptimize(D);
      ++Decoded;
    }
  }
  State.counters["instr/s"] =
      benchmark::Counter(double(Decoded), benchmark::Counter::kIsRate);
}
BENCHMARK(benchGrammarDecoder)->Unit(benchmark::kMillisecond);

void benchEncoder(benchmark::State &State) {
  Rng R(13);
  std::vector<x86::Instr> Instrs;
  for (int I = 0; I < 2000; ++I)
    Instrs.push_back(x86::randomInstr(R));
  uint64_t Encoded = 0;
  for (auto _ : State) {
    for (const x86::Instr &I : Instrs) {
      auto B = x86::encode(I);
      benchmark::DoNotOptimize(B);
      ++Encoded;
    }
  }
  State.counters["instr/s"] =
      benchmark::Counter(double(Encoded), benchmark::Counter::kIsRate);
}
BENCHMARK(benchEncoder);

void benchWorkloadGen(benchmark::State &State) {
  uint64_t Bytes = 0, Seed = 1;
  for (auto _ : State) {
    nacl::WorkloadOptions Opts;
    Opts.TargetBytes = 65536;
    Opts.Seed = Seed++;
    std::vector<uint8_t> Code = nacl::generateWorkload(Opts);
    Bytes += Code.size();
    benchmark::DoNotOptimize(Code.data());
  }
  State.SetBytesProcessed(static_cast<int64_t>(Bytes));
}
BENCHMARK(benchWorkloadGen)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
