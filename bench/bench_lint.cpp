//===- bench/bench_lint.cpp ------------------------------------*- C++ -*-===//
//
// Experiment E15: the incremental-lint economics of the mutating-image
// (JIT) workload. A code cache that overwrites 64 bytes of a 1 MiB
// accepted image either pays a full O(image) lint per update (chain
// re-scan, CFG recovery, full pass pipeline) or an O(patch window)
// incremental re-lint riding the verifier's splice windows, with a
// byte-identical report. This bench measures both, plus the one-time
// lint-state seeding cost, and emits one JSON line per quantity
// (appended to BENCH_lint.json when ROCKSALT_BENCH_JSON is set, else
// stdout).
//
// The acceptance line: a 64-byte patch on a 1 MiB accepted image must
// re-lint at least 10x faster than a fresh `lintImage` — below that the
// maintained chunk state has regressed into pointless bookkeeping.
//
//===----------------------------------------------------------------------===//

#include "analysis/CfgLint.h"
#include "analysis/Dataflow.h"
#include "core/Verifier.h"
#include "incr/IncrementalVerifier.h"
#include "nacl/WorkloadGen.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace rocksalt;

namespace {

constexpr uint32_t ImageBytes = 1u << 20; // 1 MiB
constexpr uint32_t PatchBytes = 64;       // two bundles

/// Builds the 1 MiB image and reports where its nop-padded tail starts.
/// The pad is the bench's patch arena: a JIT code cache reserves exactly
/// this kind of straight-line scratch space and overwrites it in place,
/// which is the incremental linter's fast-path shape — patching over the
/// generated workload body instead would replace control flow and
/// (correctly) force the O(nodes) middle path on every rep.
std::vector<uint8_t> makeImage(uint32_t &PadBase) {
  nacl::WorkloadOptions WO;
  // Undershoot, then pad up to exactly 1 MiB with nops (truncating down
  // would cut an instruction mid-stream and reject the whole image).
  WO.TargetBytes = ImageBytes - 16384;
  WO.Seed = 1502;
  std::vector<uint8_t> Img = nacl::generateWorkload(WO);
  if (Img.size() > ImageBytes)
    std::abort();
  // Skip a few bundles past the workload's end so a splice window that
  // widens to chunk boundaries never reaches back into real code.
  PadBase = (uint32_t(Img.size()) + 1024 + core::BundleSize - 1) &
            ~uint32_t(core::BundleSize - 1);
  Img.resize(ImageBytes, 0x90);
  return Img;
}

/// A 64-byte sled of single-byte instructions, alternating content so
/// consecutive visits to one offset are genuine changes. Single-byte
/// instructions keep the window a pure straight-line corridor — the
/// incremental linter's fast path, the JIT workload's common case.
void fillPatch(std::vector<uint8_t> &Out, bool IncSled) {
  Out.assign(PatchBytes, IncSled ? 0x40 : 0x90); // inc eax / nop
}

double medianOf(std::vector<double> Ms) {
  std::sort(Ms.begin(), Ms.end());
  return Ms[Ms.size() / 2];
}

} // namespace

static void benchFullLint1M(benchmark::State &State) {
  uint32_t PadBase = 0;
  std::vector<uint8_t> Img = makeImage(PadBase);
  const core::PolicyTables &T = core::policyTables();
  for (auto _ : State) {
    analysis::CfgLintResult L = analysis::lintImage(T, Img);
    benchmark::DoNotOptimize(L.Errors);
  }
}
BENCHMARK(benchFullLint1M)->Unit(benchmark::kMillisecond);

static void benchRelint64On1M(benchmark::State &State) {
  uint32_t PadBase = 0;
  std::vector<uint8_t> Img = makeImage(PadBase);
  const core::PolicyTables &T = core::policyTables();
  incr::IncrementalVerifier Incr;
  analysis::IncrementalLinter Linter(T);
  incr::ImageId Id = Incr.open(Img);
  Linter.open(Id, Img.data(), ImageBytes, incr::IncrementalOptions{}.ChunkBytes);
  const uint32_t Slots = (ImageBytes - PatchBytes - PadBase) / PatchBytes;
  std::vector<uint8_t> Patch;
  uint32_t Slot = 0;
  for (auto _ : State) {
    uint32_t Off = PadBase + (Slot * 37 % Slots) * PatchBytes;
    fillPatch(Patch, Slot & 1);
    ++Slot;
    incr::IncrResult R = Incr.patch(Id, Off, Patch.data(), PatchBytes);
    for (uint32_t B = 0; B < PatchBytes; ++B)
      Img[Off + B] = Patch[B];
    analysis::IncrementalLinter::Summary S =
        Linter.relint(Id, Img.data(), ImageBytes, R);
    benchmark::DoNotOptimize(S.Errors);
  }
}
BENCHMARK(benchRelint64On1M)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  uint32_t PadBase = 0;
  std::vector<uint8_t> Img = makeImage(PadBase);
  const core::PolicyTables &T = core::policyTables();
  core::RockSalt Full;
  if (!Full.check(Img).Ok) {
    std::fprintf(stderr, "bench_lint: 1 MiB workload not accepted?\n");
    return 1;
  }

  // One-time seeding: open the verifier, then capture the chunked lint
  // state with a full lint.
  incr::IncrementalVerifier Timed;
  incr::ImageId Id = Timed.open(Img);
  analysis::IncrementalLinter Linter(T);
  double OpenMs;
  {
    auto T0 = std::chrono::steady_clock::now();
    analysis::IncrementalLinter::Summary S =
        Linter.open(Id, Img.data(), ImageBytes,
                    incr::IncrementalOptions{}.ChunkBytes);
    auto T1 = std::chrono::steady_clock::now();
    OpenMs = std::chrono::duration<double, std::milli>(T1 - T0).count();
    if (S.Errors) {
      std::fprintf(stderr, "bench_lint: accepted image lints errors?\n");
      return 1;
    }
  }

  std::vector<double> FullRuns;
  for (int I = 0; I < 15; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    analysis::CfgLintResult L = analysis::lintImage(T, Img);
    auto T1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(L.Errors);
    FullRuns.push_back(
        std::chrono::duration<double, std::milli>(T1 - T0).count());
  }
  double FullMs = medianOf(FullRuns);

  // Per patch: the verifier's re-verify runs untimed (that cost is E13's
  // number); only the re-lint is measured, against the fresh full lint.
  const uint32_t Slots = (ImageBytes - PatchBytes - PadBase) / PatchBytes;
  std::vector<uint8_t> Patch;
  std::vector<double> RelintRuns;
  uint32_t Slot = 0, FastPaths = 0;
  for (int I = 0; I < 15; ++I) {
    uint32_t Off = PadBase + (Slot * 37 % Slots) * PatchBytes;
    fillPatch(Patch, Slot & 1);
    ++Slot;
    incr::IncrResult R = Timed.patch(Id, Off, Patch.data(), PatchBytes);
    for (uint32_t B = 0; B < PatchBytes; ++B)
      Img[Off + B] = Patch[B];
    if (!R.Ok) {
      std::fprintf(stderr, "bench_lint: a bench patch was rejected\n");
      return 1;
    }
    auto T0 = std::chrono::steady_clock::now();
    analysis::IncrementalLinter::Summary S =
        Linter.relint(Id, Img.data(), ImageBytes, R);
    auto T1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(S.Errors);
    FastPaths += S.FastPath ? 1 : 0;
    RelintRuns.push_back(
        std::chrono::duration<double, std::milli>(T1 - T0).count());
  }
  double RelintMs = medianOf(RelintRuns);
  double Speedup = RelintMs > 0 ? FullMs / RelintMs : 0;

  // The speed claim is only worth stating if the maintained report is
  // still the real report after all fifteen splices.
  if (Linter.render(Id) != analysis::lintImage(T, Img).render()) {
    std::fprintf(stderr,
                 "bench_lint: incremental render diverged from full lint\n");
    return 1;
  }

  std::printf("\n--- E15: incremental re-lint (1 MiB image, 64-byte "
              "patches, %u-byte chunks) ---\n",
              incr::IncrementalOptions{}.ChunkBytes);
  std::printf("lint-state seeding (full lint): %8.3f ms\n", OpenMs);
  std::printf("fresh lintImage per patch:      %8.3f ms\n", FullMs);
  std::printf("incremental re-lint (64 B):     %8.3f ms  (%.1fx faster; "
              "%u/15 fast-path windows)\n",
              RelintMs, Speedup, FastPaths);
  if (Speedup < 10.0)
    std::printf("*** incremental re-lint did NOT beat the fresh lint by "
                ">= 10x — the lint state has regressed ***\n");

  std::FILE *Json = stdout;
  bool OwnFile = false;
  if (std::getenv("ROCKSALT_BENCH_JSON")) {
    Json = std::fopen("BENCH_lint.json", "a");
    OwnFile = Json != nullptr;
    if (!Json)
      Json = stdout;
  }
  auto Line = [&](const char *Metric, double V) {
    std::fprintf(Json,
                 "{\"bench\":\"lint\",\"metric\":\"%s\",\"value\":%.4f}\n",
                 Metric, V);
  };
  Line("lint_open_1m_ms", OpenMs);
  Line("full_lint_1m_ms", FullMs);
  Line("relint64_ms", RelintMs);
  Line("relint64_speedup_x", Speedup);
  Line("relint64_fastpath_frac", FastPaths / 15.0);
  if (OwnFile)
    std::fclose(Json);
  return Speedup >= 10.0 ? 0 : 1;
}
