//===- tests/svc_parallel_equivalence_test.cpp -----------------*- C++ -*-===//
//
// The parallel verification service must be an *implementation* of the
// sequential checker, not a new checker: `ParallelVerifier::check` has
// to return bit-identical verdicts, reject reasons, and
// Valid/Target/PairJmp bitmaps to `RockSalt::check` on every input.
// This file certifies that two ways:
//
//  * crafted seam cases — masked-jump pairs and direct jumps placed so
//    they straddle 32-byte shard boundaries, jumps targeting seam
//    positions, truncated tails — the exact inputs where a naive
//    shard-and-rescan decomposition diverges from the sequential chain;
//
//  * a property sweep — WorkloadGen images put through the Mutator's
//    targeted attacks and random corruptions, checked under several
//    shard geometries and thread counts. The image count is scaled by
//    ROCKSALT_EQUIV_IMAGES (the TSan ctest flavour runs fewer; soak
//    runs set it to 100000+).
//
//===----------------------------------------------------------------------===//

#include "core/Shard.h"
#include "core/Verifier.h"
#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"
#include "svc/ParallelVerifier.h"
#include "svc/VerifierPool.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace rocksalt;

namespace {

uint64_t envImages() {
  const char *E = std::getenv("ROCKSALT_EQUIV_IMAGES");
  if (!E)
    return 100000;
  return std::strtoull(E, nullptr, 10);
}

/// Asserts bit-identical results from the sequential and parallel
/// checkers, plus agreement with the bare Figure-5 boolean.
void expectEquivalent(svc::ParallelVerifier &PV,
                      const std::vector<uint8_t> &Code) {
  core::RockSalt Seq;
  core::CheckResult S = Seq.check(Code);
  core::CheckResult P = PV.check(Code);
  ASSERT_EQ(S.Ok, P.Ok) << "verdict diverged on " << Code.size() << "B image";
  ASSERT_EQ(S.Reason, P.Reason);
  ASSERT_TRUE(S.Valid == P.Valid) << "Valid bitmap diverged";
  ASSERT_TRUE(S.Target == P.Target) << "Target bitmap diverged";
  ASSERT_TRUE(S.PairJmp == P.PairJmp) << "PairJmp bitmap diverged";
  ASSERT_EQ(S.Ok, core::verifyImage(core::policyTables(), Code.data(),
                                    uint32_t(Code.size())));
}

std::vector<uint8_t> nops(uint32_t N) { return std::vector<uint8_t>(N, 0x90); }

/// Overwrites Code[At..] with Bytes.
void patch(std::vector<uint8_t> &Code, uint32_t At,
           std::initializer_list<uint8_t> Bytes) {
  uint32_t I = At;
  for (uint8_t B : Bytes)
    Code[I++] = B;
}

/// Fine-grained geometry so even tiny images shard: every bundle its own
/// shard, spread over 4 workers.
svc::ParallelVerifierOptions fineGrained() {
  svc::ParallelVerifierOptions O;
  O.MinShardBytes = core::BundleSize;
  O.MaxShards = 64;
  return O;
}

class EquivalenceTest : public ::testing::Test {
protected:
  svc::Metrics M;
  svc::VerifierPool Pool{svc::VerifierPool::Options{4}, &M};
};

TEST_F(EquivalenceTest, CraftedSmallImages) {
  svc::ParallelVerifier PV(Pool, fineGrained());
  expectEquivalent(PV, {});                 // empty image accepts
  expectEquivalent(PV, {0x90});             // sub-bundle image
  expectEquivalent(PV, nops(31));
  expectEquivalent(PV, nops(32));
  expectEquivalent(PV, nops(33));
  expectEquivalent(PV, nops(256));
  expectEquivalent(PV, {0xC3});             // bare RET rejects (NoParse)
  expectEquivalent(PV, std::vector<uint8_t>(64, 0xC3));
}

TEST_F(EquivalenceTest, MaskedPairStraddlingSeam) {
  svc::ParallelVerifier PV(Pool, fineGrained());
  // AND ends at the seam, jump half entirely in the next shard: the
  // sequential chain matches the 5-byte pair across byte 32; shard 1's
  // fresh scan starts mid-pair. Policy-invalid (byte 32 is not an
  // instruction start) — both checkers must reject identically.
  std::vector<uint8_t> Code = nops(96);
  patch(Code, 29, {0x83, 0xE0, 0xE0, 0xFF, 0xE0}); // and eax,-32; jmp *eax
  uint64_t Before = M.SeamRescans.get();
  expectEquivalent(PV, Code);
  EXPECT_GT(M.SeamRescans.get(), Before) << "seam re-check did not trigger";

  // Pair split across the seam at the mask/jump boundary (mask at
  // 30..32 crosses; jump at 33).
  std::vector<uint8_t> Code2 = nops(96);
  patch(Code2, 30, {0x83, 0xE1, 0xE0, 0xFF, 0xE1}); // and ecx,-32; jmp *ecx
  expectEquivalent(PV, Code2);

  // Pair entirely inside one bundle but directly before the seam: valid,
  // no seam crossing; shard results splice exactly.
  std::vector<uint8_t> Code3 = nops(96);
  patch(Code3, 27, {0x83, 0xE3, 0xE0, 0xFF, 0xD3}); // and ebx,-32; call *ebx
  expectEquivalent(PV, Code3);
}

TEST_F(EquivalenceTest, DirectJumpsAcrossAndOntoSeams) {
  svc::ParallelVerifier PV(Pool, fineGrained());

  // jmp rel32 whose displacement bytes straddle the seam (instr at
  // 28..32), landing on the bundle-aligned position 64.
  std::vector<uint8_t> Code = nops(96);
  patch(Code, 28, {0xE9, 31, 0, 0, 0}); // jmp +31 → target 64
  expectEquivalent(PV, Code);

  // jmp rel8 landing exactly on a seam position that IS an instruction
  // start: accepted; same landing one byte later (mid-nop is still an
  // instruction start in a nop sled, so aim into a mov's immediate).
  std::vector<uint8_t> Code2 = nops(96);
  patch(Code2, 0, {0xEB, 30});                   // jmp → 32
  expectEquivalent(PV, Code2);

  std::vector<uint8_t> Code3 = nops(96);
  patch(Code3, 32, {0xB8, 1, 2, 3, 4});          // mov eax, imm32 at 32..36
  patch(Code3, 0, {0xEB, 32});                   // jmp → 34: mid-instruction
  expectEquivalent(PV, Code3);                   // BadTarget both sides

  // call rel32 ending exactly at the seam (instr at 27..31): no seam
  // crossing, target at 64.
  std::vector<uint8_t> Code4 = nops(96);
  patch(Code4, 27, {0xE8, 32, 0, 0, 0}); // call +32 → 64
  expectEquivalent(PV, Code4);

  // Displacement pointing outside the image: the step itself fails.
  std::vector<uint8_t> Code5 = nops(96);
  patch(Code5, 0, {0xEB, 0x7F});
  expectEquivalent(PV, Code5);
}

TEST_F(EquivalenceTest, TruncatedTailAndDesyncChains) {
  svc::ParallelVerifier PV(Pool, fineGrained());

  // Image ends mid-instruction: the final match exhausts the DFA input.
  std::vector<uint8_t> Code = nops(35);
  patch(Code, 32, {0xB8, 1, 0}); // truncated mov eax, imm32
  expectEquivalent(PV, Code);

  // A long desync: every bundle starts one byte into a 2-byte pattern,
  // so after the first seam overrun the rescan has to walk several
  // shards before resyncing (if ever).
  std::vector<uint8_t> Code2 = nops(160);
  for (uint32_t P = 31; P + 1 < 160; P += 32)
    patch(Code2, P, {0xB8}); // mov eax, imm32 eating the next 4 bytes
  expectEquivalent(PV, Code2);
}

TEST_F(EquivalenceTest, WorkloadAttackAndMutationSweep) {
  // Three shard geometries × two thread counts, rotated through the
  // sweep so seams land at different offsets relative to the code.
  svc::VerifierPool Pool2(svc::VerifierPool::Options{2}, &M);
  svc::ParallelVerifierOptions Geo[3];
  Geo[0] = fineGrained();
  Geo[1].MinShardBytes = 64;
  Geo[1].MaxShards = 7; // odd count: uneven shard sizes
  Geo[2].MinShardBytes = 256;
  svc::ParallelVerifier PVs[6] = {
      svc::ParallelVerifier(Pool, Geo[0]),
      svc::ParallelVerifier(Pool, Geo[1]),
      svc::ParallelVerifier(Pool, Geo[2]),
      svc::ParallelVerifier(Pool2, Geo[0]),
      svc::ParallelVerifier(Pool2, Geo[1]),
      svc::ParallelVerifier(Pool2, Geo[2]),
  };

  const nacl::Attack Attacks[] = {
      nacl::Attack::BareIndirectJump, nacl::Attack::InsertRet,
      nacl::Attack::InsertInt,        nacl::Attack::StripMask,
      nacl::Attack::SegmentOverride,  nacl::Attack::FarCall,
      nacl::Attack::WriteSegReg,      nacl::Attack::PrefixedBranch};

  uint64_t Budget = envImages();
  uint64_t Checked = 0;
  Rng R(0xC0FFEE);
  uint32_t Sizes[] = {256, 512, 2048, 8192};

  for (uint64_t Base = 0; Checked < Budget; ++Base) {
    nacl::WorkloadOptions WO;
    WO.TargetBytes = Sizes[Base % 4];
    WO.Seed = 0x5EED0 + Base;
    std::vector<uint8_t> Code = nacl::generateWorkload(WO);

    auto &PV = PVs[Base % 6];
    ASSERT_NO_FATAL_FAILURE(expectEquivalent(PV, Code));
    ++Checked;

    for (nacl::Attack A : Attacks) {
      if (Checked >= Budget)
        break;
      if (auto Bad = nacl::applyAttack(Code, A, R)) {
        ASSERT_NO_FATAL_FAILURE(expectEquivalent(PV, *Bad));
        ++Checked;
      }
    }
    // Random corruption: a mix of still-valid and subtly broken images.
    std::vector<uint8_t> Mut = Code;
    for (int I = 0; I < 24 && Checked < Budget; ++I) {
      Mut = nacl::mutateRandom(Mut, R);
      ASSERT_NO_FATAL_FAILURE(expectEquivalent(PVs[(Base + I) % 6], Mut));
      ++Checked;
    }
  }
  ASSERT_GE(Checked, Budget);
}

/// The merge must also behave when handed shard layouts the service
/// never produces (gaps are scanned sequentially, overlaps discarded).
TEST(ShardMergeTest, ToleratesGappyPartitions) {
  const core::PolicyTables &T = core::policyTables();
  std::vector<uint8_t> Code(128, 0x90);
  std::vector<core::ShardScan> Shards(1);
  Shards[0].reset(64, 96); // only the third bundle scanned up front
  core::scanShard(T, Code.data(), uint32_t(Code.size()), Shards[0]);
  core::CheckResult R = core::mergeShardScans(T, Code.data(),
                                              uint32_t(Code.size()), Shards);
  core::RockSalt Seq;
  core::CheckResult S = Seq.check(Code);
  EXPECT_EQ(S.Ok, R.Ok);
  EXPECT_TRUE(S.Valid == R.Valid);
}

} // namespace
