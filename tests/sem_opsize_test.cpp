//===- tests/sem_opsize_test.cpp ------------------------------*- C++ -*-===//
//
// 16-bit operand-size (0x66 prefix) semantics: the paper's prefix record
// parameterizes every translation by operand size; these tests pin the
// 16-bit behavior — partial register writes, 16-bit flags, 16-bit stack
// slots, and CBW/CWD (the 66-variants of CWDE/CDQ).
//
//===----------------------------------------------------------------------===//

#include "sem/Cpu.h"
#include "x86/Encoder.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::sem;
using namespace rocksalt::x86;
using rtl::Flag;

namespace {

constexpr uint32_t DataBase = 0x100000;

Instr movImm32(Reg R, uint32_t V) {
  Instr I;
  I.Op = Opcode::MOV;
  I.Op1 = Operand::reg(R);
  I.Op2 = Operand::imm(V);
  return I;
}

Instr op16(Opcode Op, Operand A, Operand B) {
  Instr I;
  I.Op = Op;
  I.Pfx.OpSize = true;
  I.Op1 = A;
  I.Op2 = B;
  return I;
}

Cpu runProgram(const std::vector<Instr> &Prog, uint64_t Steps = 0) {
  std::vector<uint8_t> Code;
  for (const Instr &I : Prog) {
    auto B = encodeOrDie(I);
    Code.insert(Code.end(), B.begin(), B.end());
  }
  while (Code.size() % 32)
    Code.push_back(0x90);
  Cpu C;
  C.configureSandbox(0x1000, 0x1000, DataBase, 0x10000, Code);
  C.run(Steps ? Steps : Prog.size());
  return C;
}

} // namespace

TEST(OpSize16, WritesOnlyLowHalf) {
  Cpu C = runProgram({
      movImm32(Reg::EBX, 0xAABBCCDD),
      op16(Opcode::MOV, Operand::reg(Reg::EBX), Operand::imm(0x1122)),
  });
  EXPECT_EQ(C.M.Regs[3], 0xAABB1122u);
}

TEST(OpSize16, ArithmeticWrapsAt16Bits) {
  Cpu C = runProgram({
      movImm32(Reg::EBX, 0x0001FFFF),
      op16(Opcode::ADD, Operand::reg(Reg::EBX), Operand::imm(1)),
  });
  EXPECT_EQ(C.M.Regs[3], 0x00010000u); // only AX wrapped
  EXPECT_TRUE(C.M.Flags[unsigned(Flag::CF)]);
  EXPECT_TRUE(C.M.Flags[unsigned(Flag::ZF)]);
}

TEST(OpSize16, SignedOverflowAt16Bits) {
  Cpu C = runProgram({
      movImm32(Reg::EBX, 0x7FFF),
      op16(Opcode::ADD, Operand::reg(Reg::EBX), Operand::imm(1)),
  });
  EXPECT_EQ(C.M.Regs[3], 0x8000u);
  EXPECT_TRUE(C.M.Flags[unsigned(Flag::OF)]);
  EXPECT_TRUE(C.M.Flags[unsigned(Flag::SF)]);
  EXPECT_FALSE(C.M.Flags[unsigned(Flag::CF)]);
}

TEST(OpSize16, SixteenBitPushUsesTwoBytes) {
  Instr Push;
  Push.Op = Opcode::PUSH;
  Push.Pfx.OpSize = true;
  Push.Op1 = Operand::reg(Reg::EBX);
  Cpu C = runProgram({movImm32(Reg::EBX, 0x12345678), Push});
  uint32_t Esp = C.M.Regs[4];
  EXPECT_EQ(C.M.Mem.load(DataBase + Esp, 2), 0x5678u);
  // ESP moved by 2, not 4.
  Cpu D = runProgram({movImm32(Reg::EBX, 1)});
  EXPECT_EQ(D.M.Regs[4] - Esp, 2u);
}

TEST(OpSize16, CbwSignExtendsAlIntoAx) {
  Instr Cbw;
  Cbw.Op = Opcode::CWDE;
  Cbw.Pfx.OpSize = true;
  Cpu C = runProgram({movImm32(Reg::EAX, 0xFFFF0080), Cbw});
  EXPECT_EQ(C.M.Regs[0], 0xFFFFFF80u); // AX = sext8(0x80); high half kept
}

TEST(OpSize16, CwdSignExtendsAxIntoDx) {
  Instr Cwd;
  Cwd.Op = Opcode::CDQ;
  Cwd.Pfx.OpSize = true;
  Cpu C = runProgram(
      {movImm32(Reg::EAX, 0x8000), movImm32(Reg::EDX, 0x11110000), Cwd});
  EXPECT_EQ(C.M.Regs[2], 0x1111FFFFu); // only DX written
}

TEST(OpSize16, MemoryAccessIsTwoBytes) {
  Cpu C = runProgram({
      movImm32(Reg::EBX, 0x100),
      op16(Opcode::MOV, Operand::mem(Addr::base(Reg::EBX)),
           Operand::imm(0xBEEF)),
  });
  EXPECT_EQ(C.M.Mem.load(DataBase + 0x100, 2), 0xBEEFu);
  EXPECT_EQ(C.M.Mem.load8(DataBase + 0x102), 0u); // third byte untouched
}

TEST(OpSize16, SixteenBitRotate) {
  Instr Rol;
  Rol.Op = Opcode::ROL;
  Rol.Pfx.OpSize = true;
  Rol.Op1 = Operand::reg(Reg::EBX);
  Rol.Op2 = Operand::imm(4);
  Cpu C = runProgram({movImm32(Reg::EBX, 0xFFFF1234), Rol});
  EXPECT_EQ(C.M.Regs[3], 0xFFFF2341u);
}

TEST(OpSize16, SixteenBitMulUsesDxAx) {
  Instr Mul;
  Mul.Op = Opcode::MUL;
  Mul.Pfx.OpSize = true;
  Mul.Op1 = Operand::reg(Reg::EBX);
  Cpu C = runProgram({movImm32(Reg::EAX, 0x1234), movImm32(Reg::EBX, 0x100),
                      movImm32(Reg::EDX, 0xABCD0000), Mul},
                     4);
  // 0x1234 * 0x100 = 0x123400 -> AX=0x3400, DX=0x0012.
  EXPECT_EQ(C.M.Regs[0] & 0xFFFF, 0x3400u);
  EXPECT_EQ(C.M.Regs[2] & 0xFFFF, 0x0012u);
  EXPECT_EQ(C.M.Regs[2] >> 16, 0xABCDu); // upper EDX preserved
  EXPECT_TRUE(C.M.Flags[unsigned(Flag::CF)]);
}

TEST(OpSize16, SixteenBitStringOp) {
  Instr Stos;
  Stos.Op = Opcode::STOS;
  Stos.W = true;
  Stos.Pfx.OpSize = true; // stosw
  Cpu C = runProgram({movImm32(Reg::EAX, 0xCAFE1234),
                      movImm32(Reg::EDI, 0x40), Stos},
                     3);
  EXPECT_EQ(C.M.Mem.load(DataBase + 0x40, 2), 0x1234u);
  EXPECT_EQ(C.M.Regs[7], 0x42u); // EDI advanced by 2
}

TEST(OpSize16, PopfRestoresOnly16BitImage) {
  // 66 9d pops a 16-bit flags image; OF lives in bit 11 and is included.
  Instr Push;
  Push.Op = Opcode::PUSH;
  Push.Pfx.OpSize = true;
  Push.Op1 = Operand::imm(0x0801); // OF | CF
  Instr Popf;
  Popf.Op = Opcode::POPF;
  Popf.Pfx.OpSize = true;
  Cpu C = runProgram({Push, Popf});
  EXPECT_TRUE(C.M.Flags[unsigned(Flag::CF)]);
  EXPECT_TRUE(C.M.Flags[unsigned(Flag::OF)]);
  EXPECT_FALSE(C.M.Flags[unsigned(Flag::ZF)]);
}
