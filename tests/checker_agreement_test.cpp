//===- tests/checker_agreement_test.cpp -----------------------*- C++ -*-===//
//
// Experiment E4 (paper section 3.3): the RockSalt checker and the
// ncval-style baseline checker must agree on positive corpora (generated
// compliant binaries), targeted attacks (both reject), and randomly
// mutated corpora (agree either way). Also checks SlowVerifier decision
// equivalence on small inputs.
//
//===----------------------------------------------------------------------===//

#include "core/BaselineChecker.h"
#include "core/SlowVerifier.h"
#include "core/Verifier.h"
#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::core;
using namespace rocksalt::nacl;

namespace {

std::string hexDump(const std::vector<uint8_t> &Code, size_t Around) {
  std::string S;
  size_t Lo = Around > 8 ? Around - 8 : 0;
  size_t Hi = std::min(Code.size(), Around + 8);
  char Buf[8];
  for (size_t I = Lo; I < Hi; ++I) {
    std::snprintf(Buf, sizeof(Buf), "%02x ", Code[I]);
    S += Buf;
  }
  return S;
}

} // namespace

TEST(Agreement, PositiveCorpus) {
  RockSalt V;
  WorkloadOptions Opts;
  Opts.TargetBytes = 3000;
  for (uint64_t Seed = 100; Seed < 140; ++Seed) {
    Opts.Seed = Seed;
    std::vector<uint8_t> Code = generateWorkload(Opts);
    bool R = V.verify(Code);
    bool B = baselineVerify(Code);
    EXPECT_TRUE(R) << "seed " << Seed;
    ASSERT_EQ(R, B) << "disagreement on compliant workload, seed " << Seed;
  }
}

TEST(Agreement, TargetedAttacksBothReject) {
  RockSalt V;
  Rng R(555);
  WorkloadOptions Opts;
  Opts.TargetBytes = 1500;
  static const Attack Attacks[] = {
      Attack::BareIndirectJump, Attack::InsertRet,  Attack::InsertInt,
      Attack::StripMask,        Attack::SegmentOverride, Attack::FarCall,
      Attack::WriteSegReg};

  int Applied = 0;
  for (uint64_t Seed = 200; Seed < 215; ++Seed) {
    Opts.Seed = Seed;
    std::vector<uint8_t> Code = generateWorkload(Opts);
    for (Attack A : Attacks) {
      std::optional<std::vector<uint8_t>> Bad = applyAttack(Code, A, R);
      if (!Bad)
        continue;
      ++Applied;
      bool Rs = V.verify(*Bad);
      bool Bl = baselineVerify(*Bad);
      // Note: a random overwrite can occasionally land in an immediate
      // field and stay policy-legal; both checkers must still agree.
      ASSERT_EQ(Rs, Bl) << "attack " << int(A) << " seed " << Seed;
    }
  }
  EXPECT_GT(Applied, 50);
}

TEST(Agreement, StripMaskAlwaysRejected) {
  // Unlike overwrite attacks, stripping a mask always leaves a bare
  // indirect jump, which must be rejected by both.
  RockSalt V;
  Rng R(556);
  WorkloadOptions Opts;
  Opts.TargetBytes = 2000;
  Opts.MaskedJumpRate = 80; // ensure pairs exist
  int Found = 0;
  for (uint64_t Seed = 300; Seed < 315; ++Seed) {
    Opts.Seed = Seed;
    std::vector<uint8_t> Code = generateWorkload(Opts);
    auto Bad = applyAttack(Code, Attack::StripMask, R);
    if (!Bad)
      continue;
    ++Found;
    EXPECT_FALSE(V.verify(*Bad)) << "seed " << Seed;
    EXPECT_FALSE(baselineVerify(*Bad)) << "seed " << Seed;
  }
  EXPECT_GT(Found, 10);
}

TEST(Agreement, MutatedCorpusSweep) {
  // The big agreement sweep: random single-site corruptions; the two
  // checkers must return identical verdicts on every variant.
  RockSalt V;
  Rng R(777);
  WorkloadOptions Opts;
  Opts.TargetBytes = 1024;

  int Accepted = 0, Rejected = 0;
  for (uint64_t Seed = 400; Seed < 420; ++Seed) {
    Opts.Seed = Seed;
    std::vector<uint8_t> Code = generateWorkload(Opts);
    for (int I = 0; I < 50; ++I) {
      std::vector<uint8_t> M = mutateRandom(Code, R);
      bool Rs = V.verify(M);
      bool Bl = baselineVerify(M);
      if (Rs)
        ++Accepted;
      else
        ++Rejected;
      if (Rs != Bl) {
        // Locate the corruption site for the failure message.
        size_t Site = 0;
        for (size_t J = 0; J < Code.size(); ++J)
          if (Code[J] != M[J]) {
            Site = J;
            break;
          }
        FAIL() << "disagreement (rocksalt=" << Rs << ", baseline=" << Bl
               << ") seed " << Seed << " iter " << I << " near byte "
               << Site << ": " << hexDump(M, Site);
      }
    }
  }
  // The sweep must exercise both outcomes.
  EXPECT_GT(Accepted, 20);
  EXPECT_GT(Rejected, 200);
}

TEST(Agreement, SlowVerifierDecisionEquivalent) {
  RockSalt V;
  Rng R(888);
  WorkloadOptions Opts;
  Opts.TargetBytes = 160; // keep it small: the slow verifier is slow
  for (uint64_t Seed = 500; Seed < 503; ++Seed) {
    Opts.Seed = Seed;
    std::vector<uint8_t> Code = generateWorkload(Opts);
    uint64_t N = 0;
    EXPECT_EQ(V.verify(Code), slowVerify(Code, &N)) << "seed " << Seed;
    EXPECT_GT(N, 0u);
    std::vector<uint8_t> Bad = mutateRandom(Code, R);
    EXPECT_EQ(V.verify(Bad), slowVerify(Bad)) << "seed " << Seed;
  }
}
