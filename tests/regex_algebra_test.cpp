//===- tests/regex_algebra_test.cpp ---------------------------*- C++ -*-===//
//
// Tests for the DFA algebra (regex/Algebra.h): product construction
// membership must agree with direct evaluation of the component DFAs,
// minimization must preserve the language while never growing the state
// count, witness extraction must return the shortest
// (lexicographically-least) counterexample, and the structural health
// audit must accept derivative-built tables and flag corrupted ones.
//
//===----------------------------------------------------------------------===//

#include "regex/Algebra.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace rocksalt::re;

namespace {

/// Runs \p Bytes through \p D exactly as the verifier's matcher would,
/// without early-reject bailing (acceptance of the whole string).
bool accepts(const Dfa &D, const std::vector<uint8_t> &Bytes) {
  uint16_t S = static_cast<uint16_t>(D.Start);
  for (uint8_t B : Bytes)
    S = D.step(S, B);
  return D.Accepts[S];
}

/// A literal byte-string regex.
Regex lit(Factory &F, std::initializer_list<uint8_t> Bytes) {
  Regex R = F.epsRe();
  for (uint8_t B : Bytes)
    R = F.cat(R, F.byteLit(B));
  return R;
}

std::vector<uint8_t> bytes(std::initializer_list<uint8_t> B) { return B; }

//===----------------------------------------------------------------------===//
// Product construction.
//===----------------------------------------------------------------------===//

TEST(Product, MembershipAgreesWithComponents) {
  Factory F;
  // A = (ab|ac|ad)* — three two-byte words, arbitrarily repeated.
  Regex A = F.star(F.altN({lit(F, {'a', 'b'}), lit(F, {'a', 'c'}),
                           lit(F, {'a', 'd'})}));
  // B = (ab|ae)* — shares "ab" with A.
  Regex B = F.star(F.alt(lit(F, {'a', 'b'}), lit(F, {'a', 'e'})));
  Dfa DA = buildDfa(F, A), DB = buildDfa(F, B);

  Dfa U = productDfa(DA, DB, SetOp::Union);
  Dfa I = productDfa(DA, DB, SetOp::Intersect);
  Dfa D = productDfa(DA, DB, SetOp::Difference);
  Dfa X = productDfa(DA, DB, SetOp::SymmetricDiff);

  // Sample members of both languages, plus strings in neither.
  uint64_t Rng = 42;
  std::vector<std::vector<uint8_t>> Samples = {
      {}, {'a'}, {'a', 'b'}, {'a', 'c'}, {'a', 'e'}, {'a', 'b', 'a', 'e'},
      {'a', 'c', 'a', 'b'}, {'z'}, {'a', 'b', 'a'}};
  for (int K = 0; K < 200; ++K) {
    if (auto S = F.sampleBytes(A, Rng))
      Samples.push_back(std::move(*S));
    if (auto S = F.sampleBytes(B, Rng))
      Samples.push_back(std::move(*S));
  }
  for (const auto &S : Samples) {
    bool InA = accepts(DA, S), InB = accepts(DB, S);
    EXPECT_EQ(accepts(U, S), InA || InB);
    EXPECT_EQ(accepts(I, S), InA && InB);
    EXPECT_EQ(accepts(D, S), InA && !InB);
    EXPECT_EQ(accepts(X, S), InA != InB);
  }
}

TEST(Product, IntersectionIsSubsetOfBothFactors) {
  Factory F;
  Regex A = F.star(F.alt(lit(F, {'x', 'y'}), lit(F, {'x', 'z'})));
  Regex B = F.star(F.alt(lit(F, {'x', 'y'}), F.byteLit('w')));
  Dfa DA = buildDfa(F, A), DB = buildDfa(F, B);
  Dfa I = productDfa(DA, DB, SetOp::Intersect);

  // L(A ∩ B) ⊆ L(A) and ⊆ L(B): the differences are empty.
  EXPECT_TRUE(languageEmpty(productDfa(I, DA, SetOp::Difference)));
  EXPECT_TRUE(languageEmpty(productDfa(I, DB, SetOp::Difference)));
  // And sampled members of the intersection are in both.
  uint64_t Rng = 7;
  Regex IRe = F.star(lit(F, {'x', 'y'}));
  for (int K = 0; K < 100; ++K)
    if (auto S = F.sampleBytes(IRe, Rng)) {
      EXPECT_TRUE(accepts(I, *S));
      EXPECT_TRUE(accepts(DA, *S));
      EXPECT_TRUE(accepts(DB, *S));
    }
}

//===----------------------------------------------------------------------===//
// Emptiness and witnesses.
//===----------------------------------------------------------------------===//

TEST(Witness, ShortestAndLexLeast) {
  Factory F;
  // Shortest member of b|a|cd is one byte; lexicographically least of
  // the one-byte members is 'a'.
  Dfa D = buildDfa(
      F, F.altN({F.byteLit('b'), F.byteLit('a'), lit(F, {'c', 'd'})}));
  auto W = shortestAccepted(D);
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ(*W, bytes({'a'}));
}

TEST(Witness, StarAcceptsEmptyString) {
  Factory F;
  Dfa D = buildDfa(F, F.star(F.byteLit('q')));
  auto W = shortestAccepted(D);
  ASSERT_TRUE(W.has_value());
  EXPECT_TRUE(W->empty());
}

TEST(Witness, VoidIsEmpty) {
  Factory F;
  Dfa D = buildDfa(F, F.voidRe());
  EXPECT_FALSE(shortestAccepted(D).has_value());
  EXPECT_TRUE(languageEmpty(D));
}

TEST(Witness, IntersectionWitnessFixture) {
  Factory F;
  // A = ab|ac, B = ab|ad: the only shared string is "ab".
  Dfa DA = buildDfa(F, F.alt(lit(F, {'a', 'b'}), lit(F, {'a', 'c'})));
  Dfa DB = buildDfa(F, F.alt(lit(F, {'a', 'b'}), lit(F, {'a', 'd'})));
  auto W = intersectionWitness(DA, DB);
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ(*W, bytes({'a', 'b'}));
  EXPECT_TRUE(accepts(DA, *W));
  EXPECT_TRUE(accepts(DB, *W));
}

TEST(Witness, DisjointLanguagesHaveNoWitness) {
  Factory F;
  Dfa DA = buildDfa(F, lit(F, {'a', 'b'}));
  Dfa DB = buildDfa(F, lit(F, {'c', 'd'}));
  EXPECT_FALSE(intersectionWitness(DA, DB).has_value());
}

TEST(Witness, InclusionWitnessFixture) {
  Factory F;
  // A = ab|ac, B = ab|ad: "ac" is in A but not B ("ab" is lex-smaller
  // but included, so the witness must be "ac").
  Dfa DA = buildDfa(F, F.alt(lit(F, {'a', 'b'}), lit(F, {'a', 'c'})));
  Dfa DB = buildDfa(F, F.alt(lit(F, {'a', 'b'}), lit(F, {'a', 'd'})));
  auto W = inclusionWitness(DA, DB);
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ(*W, bytes({'a', 'c'}));
  EXPECT_TRUE(accepts(DA, *W));
  EXPECT_FALSE(accepts(DB, *W));
}

TEST(Witness, InclusionHoldsForSubset) {
  Factory F;
  Dfa Sub = buildDfa(F, lit(F, {'a', 'b'}));
  Dfa Super = buildDfa(F, F.alt(lit(F, {'a', 'b'}), lit(F, {'a', 'c'})));
  EXPECT_FALSE(inclusionWitness(Sub, Super).has_value());
  // And the converse direction fails with the extra string.
  auto W = inclusionWitness(Super, Sub);
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ(*W, bytes({'a', 'c'}));
}

//===----------------------------------------------------------------------===//
// Minimization.
//===----------------------------------------------------------------------===//

TEST(Minimize, PreservesLanguageOnSampledRegexes) {
  Factory F;
  std::vector<Regex> Cases = {
      F.star(F.altN({lit(F, {'a', 'b'}), lit(F, {'a', 'c'}), F.byteLit('z')})),
      F.cat(F.star(F.byteLit('n')), lit(F, {'e', 'n', 'd'})),
      F.alt(F.epsRe(), lit(F, {'x'})),
      F.seq({F.anyByte(), F.anyByte(), F.byteLit(0x90)}),
  };
  uint64_t Rng = 99;
  for (Regex R : Cases) {
    Dfa D = buildDfa(F, R);
    Dfa Min = minimizeDfa(D);
    EXPECT_LE(Min.numStates(), D.numStates());
    // Language equality, decided exactly.
    EXPECT_FALSE(equivalenceWitness(D, Min).has_value());
    // And spot-checked on sampled members.
    for (int K = 0; K < 50; ++K)
      if (auto S = F.sampleBytes(R, Rng))
        EXPECT_TRUE(accepts(Min, *S));
  }
}

TEST(Minimize, CollapsesHandBloatedDfa) {
  // Two hand-built equivalent accept states (language: "a" on either
  // path), plus an unreachable state: minimization must fold them.
  Dfa D;
  D.Start = 0;
  D.Table.assign(5, {});
  for (auto &Row : D.Table)
    Row.fill(4); // dead sink
  D.Table[0]['a'] = 1;
  D.Table[0]['b'] = 2; // "ba" also accepted, via the twin accept state
  D.Table[2]['a'] = 3;
  D.Accepts = {0, 1, 0, 1, 0};
  D.Rejects = {0, 0, 0, 0, 1};

  Dfa Min = minimizeDfa(D);
  // {start}, {mid}, {accept twin folded}, {sink} = 4 states.
  EXPECT_EQ(Min.numStates(), 4u);
  EXPECT_FALSE(equivalenceWitness(D, Min).has_value());
  EXPECT_TRUE(accepts(Min, bytes({'a'})));
  EXPECT_TRUE(accepts(Min, bytes({'b', 'a'})));
  EXPECT_FALSE(accepts(Min, bytes({'b'})));
}

TEST(Minimize, IsIdempotent) {
  Factory F;
  Dfa D = buildDfa(
      F, F.star(F.alt(lit(F, {'a', 'b'}), lit(F, {'c', 'd'}))));
  Dfa M1 = minimizeDfa(D);
  Dfa M2 = minimizeDfa(M1);
  EXPECT_EQ(M1.numStates(), M2.numStates());
  // Canonical numbering makes the fixpoint bit-identical.
  EXPECT_EQ(M1.Start, M2.Start);
  EXPECT_EQ(M1.Table, M2.Table);
  EXPECT_EQ(M1.Accepts, M2.Accepts);
  EXPECT_EQ(M1.Rejects, M2.Rejects);
}

//===----------------------------------------------------------------------===//
// Structural health audit.
//===----------------------------------------------------------------------===//

TEST(Health, DerivativeDfaIsHealthy) {
  Factory F;
  Dfa D = buildDfa(F, F.alt(lit(F, {'a', 'b'}), lit(F, {'c'})));
  DfaHealth H = auditDfa(D);
  EXPECT_TRUE(H.ok());
  EXPECT_EQ(H.NumStates, D.numStates());
  EXPECT_EQ(H.NumDead, 1u); // the canonical Void sink, flagged
}

TEST(Health, DetectsUnflaggedDeadState) {
  Factory F;
  Dfa D = buildDfa(F, lit(F, {'a', 'b'}));
  DfaHealth Before = auditDfa(D);
  ASSERT_TRUE(Before.ok());
  // Unflag a dead state: the matcher would keep scanning hopelessly.
  for (size_t S = 0; S < D.numStates(); ++S)
    if (D.Rejects[S])
      D.Rejects[S] = 0;
  DfaHealth After = auditDfa(D);
  EXPECT_FALSE(After.ok());
  EXPECT_GT(After.DeadUnflagged, 0u);
}

TEST(Health, DetectsLiveFlaggedReject) {
  Factory F;
  Dfa D = buildDfa(F, lit(F, {'a', 'b'}));
  // Flag the start state (live) as a reject: an acceptance bug.
  D.Rejects[D.Start] = 1;
  DfaHealth H = auditDfa(D);
  EXPECT_FALSE(H.ok());
  EXPECT_GT(H.LiveFlaggedReject, 0u);
}

//===----------------------------------------------------------------------===//
// k-shortest witness enumeration.
//===----------------------------------------------------------------------===//

TEST(KShortest, LengthThenLexOrderPinned) {
  Factory F;
  // L = a(b|c)* — infinite language with a dense short prefix tree.
  Dfa D = buildDfa(F, F.cat(F.byteLit('a'),
                            F.star(F.alt(F.byteLit('b'), F.byteLit('c')))));
  auto W = kShortestAccepted(D, 7);
  ASSERT_EQ(W.size(), 7u);
  EXPECT_EQ(W[0], bytes({'a'}));
  EXPECT_EQ(W[1], bytes({'a', 'b'}));
  EXPECT_EQ(W[2], bytes({'a', 'c'}));
  EXPECT_EQ(W[3], bytes({'a', 'b', 'b'}));
  EXPECT_EQ(W[4], bytes({'a', 'b', 'c'}));
  EXPECT_EQ(W[5], bytes({'a', 'c', 'b'}));
  EXPECT_EQ(W[6], bytes({'a', 'c', 'c'}));
  // Every witness is a member, the first equals shortestAccepted, and
  // the list is strictly increasing in (length, lex) order — hence
  // pairwise distinct.
  auto First = shortestAccepted(D);
  ASSERT_TRUE(First.has_value());
  EXPECT_EQ(W[0], *First);
  for (size_t I = 0; I < W.size(); ++I) {
    EXPECT_TRUE(accepts(D, W[I])) << "witness " << I;
    if (I) {
      bool Ordered = W[I - 1].size() < W[I].size() ||
                     (W[I - 1].size() == W[I].size() && W[I - 1] < W[I]);
      EXPECT_TRUE(Ordered) << "witness " << I;
    }
  }
}

TEST(KShortest, FiniteLanguageDrainsBelowK) {
  Factory F;
  // |L| = 3: enumeration must stop at 3 no matter how many were asked.
  Dfa D = buildDfa(F, F.altN({lit(F, {'x'}), lit(F, {'y', 'z'}),
                              lit(F, {'y', 'y', 'y'})}));
  auto W = kShortestAccepted(D, 100);
  ASSERT_EQ(W.size(), 3u);
  EXPECT_EQ(W[0], bytes({'x'}));
  EXPECT_EQ(W[1], bytes({'y', 'z'}));
  EXPECT_EQ(W[2], bytes({'y', 'y', 'y'}));
}

TEST(KShortest, EmptyLanguageAndZeroK) {
  Factory F;
  Dfa Empty = buildDfa(F, F.voidRe());
  EXPECT_TRUE(kShortestAccepted(Empty, 5).empty());
  Dfa D = buildDfa(F, lit(F, {'a'}));
  EXPECT_TRUE(kShortestAccepted(D, 0).empty());
}

TEST(KShortest, EpsilonIsTheShortestMember) {
  Factory F;
  Dfa D = buildDfa(F, F.star(F.byteLit('q')));
  auto W = kShortestAccepted(D, 3);
  ASSERT_EQ(W.size(), 3u);
  EXPECT_TRUE(W[0].empty()); // the empty string
  EXPECT_EQ(W[1], bytes({'q'}));
  EXPECT_EQ(W[2], bytes({'q', 'q'}));
}

TEST(Product, OversizedProductThrows) {
  // Two DFAs whose reachable product would exceed the uint16_t id space
  // cannot be represented; the construction must refuse, not wrap.
  // (Cheap proxy: 300 x 300 byte-counting DFAs modulo coprime lengths.)
  auto CounterDfa = [](uint32_t Mod) {
    Dfa D;
    D.Start = 0;
    D.Table.assign(Mod, {});
    for (uint32_t S = 0; S < Mod; ++S)
      D.Table[S].fill(static_cast<uint16_t>((S + 1) % Mod));
    D.Accepts.assign(Mod, 0);
    D.Accepts[0] = 1;
    D.Rejects.assign(Mod, 0);
    return D;
  };
  Dfa A = CounterDfa(331), B = CounterDfa(317);
  EXPECT_THROW(productDfa(A, B, SetOp::Intersect), std::length_error);
}

} // namespace
