//===- tests/safety_property_test.cpp -------------------------*- C++ -*-===//
//
// The paper's Theorem 1 as a dynamic property: every checker-accepted
// binary, executed from a locally-safe initial state, keeps the sandbox
// invariants at every step (segments unchanged, code immutable, PC on
// validated positions, all memory traffic inside the data segments). The
// SandboxMonitor checks Definitions 1-3 after each instruction.
//
//===----------------------------------------------------------------------===//

#include "core/SandboxMonitor.h"
#include "nacl/Assembler.h"
#include "nacl/WorkloadGen.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::core;
using namespace rocksalt::nacl;
using x86::Instr;
using x86::Opcode;
using x86::Operand;
using x86::Reg;

namespace {

constexpr uint32_t CodeBase = 0x10000;
constexpr uint32_t DataBase = 0x400000;
constexpr uint32_t DataSize = 0x10000;

/// Verifies, loads, and monitors a binary; returns the violation if any.
std::optional<SandboxMonitor::Violation>
runAccepted(const std::vector<uint8_t> &Code, uint64_t MaxSteps,
            uint64_t OracleSeed = 7) {
  RockSalt V;
  CheckResult R = V.check(Code);
  EXPECT_TRUE(R.Ok) << "binary must be accepted first";
  sem::Cpu C(OracleSeed);
  C.configureSandbox(CodeBase, static_cast<uint32_t>(Code.size()), DataBase,
                     DataSize, Code);
  SandboxMonitor Mon(C, std::move(R), CodeBase,
                     static_cast<uint32_t>(Code.size()));
  return Mon.runMonitored(MaxSteps);
}

} // namespace

TEST(SafetyProperty, StraightLineProgramStaysSafe) {
  Assembler A;
  Instr I;
  I.Op = Opcode::MOV;
  I.Op1 = Operand::reg(Reg::EAX);
  I.Op2 = Operand::imm(0x100);
  A.emit(I);
  I.Op1 = Operand::mem(x86::Addr::base(Reg::EAX, 4));
  I.Op2 = Operand::reg(Reg::EAX);
  A.emit(I);
  A.hlt();
  auto V = runAccepted(A.finish(), 100);
  EXPECT_FALSE(V.has_value()) << V->What;
}

TEST(SafetyProperty, MaskedJumpLandsOnBundle) {
  // Compute a (deliberately misaligned) target; the mask must force it
  // to a bundle boundary where execution continues safely.
  Assembler A;
  Instr I;
  I.Op = Opcode::MOV;
  I.Op1 = Operand::reg(Reg::EBX);
  I.Op2 = Operand::imm(67); // misaligned: masks down to 64
  A.emit(I);
  A.maskedJump(Reg::EBX);
  A.padToBundle(); // bundle 1 (32..63) is all NOPs
  A.padToBundle();
  // Bundle at 64: halt.
  while (A.here() < 64)
    A.emit(Instr{});
  A.hlt();
  auto V = runAccepted(A.finish(), 100);
  EXPECT_FALSE(V.has_value()) << V->What;
}

TEST(SafetyProperty, ComputedLoopRunsSafely) {
  // A small loop: ecx counts down with a conditional backward jump.
  Assembler A;
  Instr I;
  I.Op = Opcode::MOV;
  I.Op1 = Operand::reg(Reg::ECX);
  I.Op2 = Operand::imm(10);
  A.emit(I);
  A.alignedLabel("loop");
  Instr Dec;
  Dec.Op = Opcode::DEC;
  Dec.Op1 = Operand::reg(Reg::ECX);
  A.emit(Dec);
  A.jccTo(x86::Cond::NE, "loop");
  A.hlt();
  auto V = runAccepted(A.finish(), 1000);
  EXPECT_FALSE(V.has_value()) << V->What;
}

TEST(SafetyProperty, GeneratedWorkloadsRunSafely) {
  // The headline sweep: random compliant binaries execute under the
  // monitor with arbitrary register states and never violate the
  // invariants, whatever they do (fault/halt are safe outcomes).
  WorkloadOptions Opts;
  Opts.TargetBytes = 1024;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    Opts.Seed = Seed;
    std::vector<uint8_t> Code = generateWorkload(Opts);
    auto V = runAccepted(Code, 2000, /*OracleSeed=*/Seed);
    EXPECT_FALSE(V.has_value())
        << "seed " << Seed << " step " << V->Step << ": " << V->What;
  }
}

TEST(SafetyProperty, MonitorCatchesUncheckedBinary) {
  // Sanity for the monitor itself: running a *rejected* binary (bare
  // indirect jump to a wild target) must trip an invariant — the monitor
  // is not vacuous.
  std::vector<uint8_t> Code = {
      0xB8, 0x0D, 0x00, 0x00, 0x00, // mov eax, 13 (misaligned target)
      0xFF, 0xE0,                   // jmp *eax  (unmasked!)
  };
  while (Code.size() % 32)
    Code.push_back(0x90);

  RockSalt V;
  EXPECT_FALSE(V.verify(Code));

  // Execute it anyway with a fabricated "all valid" result the checker
  // would never produce, except PairJmp/Valid reflect the real parse; the
  // jump lands at 13, which is not a validated position.
  CheckResult Fake;
  Fake.Ok = true;
  Fake.Valid.assign(Code.size(), 0);
  Fake.Valid[0] = Fake.Valid[5] = 1; // the two real instructions
  for (size_t I = 16; I < Code.size(); ++I)
    Fake.Valid[I] = 1; // padding nops; the jump target 13 stays invalid
  Fake.Target.assign(Code.size(), 0);
  Fake.PairJmp.assign(Code.size(), 0);

  sem::Cpu C(3);
  C.configureSandbox(CodeBase, static_cast<uint32_t>(Code.size()), DataBase,
                     DataSize, Code);
  SandboxMonitor Mon(C, Fake, CodeBase, static_cast<uint32_t>(Code.size()));
  auto Violation = Mon.runMonitored(100);
  ASSERT_TRUE(Violation.has_value());
  EXPECT_NE(Violation->What.find("not a validated position"),
            std::string::npos);
}

TEST(SafetyProperty, MonitorCatchesSegmentEscape) {
  // If segment-tampering code were ever accepted, the monitor would
  // catch the changed segment registers.
  std::vector<uint8_t> Code = {
      0xB8, 0x10, 0x00, 0x00, 0x00, // mov eax, 0x10
      0x8E, 0xD8,                   // mov ds, eax
      0xF4,                         // hlt
  };
  while (Code.size() % 32)
    Code.push_back(0x90);

  CheckResult Fake;
  Fake.Ok = true;
  Fake.Valid.assign(Code.size(), 1);
  Fake.Target.assign(Code.size(), 0);
  Fake.PairJmp.assign(Code.size(), 0);

  sem::Cpu C(3);
  C.configureSandbox(CodeBase, static_cast<uint32_t>(Code.size()), DataBase,
                     DataSize, Code);
  SandboxMonitor Mon(C, Fake, CodeBase, static_cast<uint32_t>(Code.size()));
  auto Violation = Mon.runMonitored(100);
  ASSERT_TRUE(Violation.has_value());
  EXPECT_NE(Violation->What.find("segment register"), std::string::npos);
}

TEST(SafetyProperty, DataWritesStayInDataSegment) {
  // Every write a compliant program performs must land in the data
  // region; we watch physical writes directly.
  WorkloadOptions Opts;
  Opts.TargetBytes = 512;
  for (uint64_t Seed = 60; Seed < 70; ++Seed) {
    Opts.Seed = Seed;
    std::vector<uint8_t> Code = generateWorkload(Opts);
    RockSalt V;
    CheckResult R = V.check(Code);
    ASSERT_TRUE(R.Ok);

    sem::Cpu C(Seed);
    C.configureSandbox(CodeBase, static_cast<uint32_t>(Code.size()),
                       DataBase, DataSize, Code);
    bool BadWrite = false;
    C.Hooks.OnWrite = [&](uint32_t Phys, uint8_t, uint8_t) {
      if (Phys < DataBase || Phys >= DataBase + DataSize)
        BadWrite = true;
    };
    C.run(1500);
    EXPECT_FALSE(BadWrite) << "seed " << Seed;
  }
}
