//===- tests/x86_roundtrip_test.cpp ---------------------------*- C++ -*-===//
//
// Round-trip properties tying the encoder, the grammar (reference)
// decoder, and the table-driven fast decoder together:
//
//   decode(encode(i)) == i      for both decoders
//   fastDecode(bytes) == grammarDecode(bytes)  on random byte streams
//
// This is the repo's stand-in for the paper's hardware validation
// (section 2.5): two independently written implementations are compared
// on generatively fuzzed encodings.
//
//===----------------------------------------------------------------------===//

#include "x86/Encoder.h"
#include "x86/FastDecoder.h"
#include "x86/GrammarDecoder.h"
#include "x86/InstrGen.h"
#include "x86/Printer.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::x86;

namespace {

std::string bytesToHex(const std::vector<uint8_t> &Bytes) {
  std::string S;
  char Buf[4];
  for (uint8_t B : Bytes) {
    std::snprintf(Buf, sizeof(Buf), "%02x ", B);
    S += Buf;
  }
  return S;
}

} // namespace

TEST(RoundTrip, HandPickedInstructions) {
  std::vector<Instr> Cases;
  {
    Instr I;
    I.Op = Opcode::ADD;
    I.Op1 = Operand::reg(Reg::ECX);
    I.Op2 = Operand::imm(0xFFFFFFE0);
    Cases.push_back(I);
  }
  {
    Instr I;
    I.Op = Opcode::MOV;
    I.Op1 = Operand::mem(Addr::baseIndex(Reg::EBX, Reg::ESI, Scale::S8, 16));
    I.Op2 = Operand::reg(Reg::EDX);
    Cases.push_back(I);
  }
  {
    Instr I;
    I.Op = Opcode::JMP;
    I.Near = true;
    I.Absolute = true;
    I.Op1 = Operand::reg(Reg::EDI);
    Cases.push_back(I);
  }
  {
    Instr I;
    I.Op = Opcode::LEA;
    I.Op1 = Operand::reg(Reg::ESP);
    I.Op2 = Operand::mem(Addr::base(Reg::ESP, 0xFFFFFFF8));
    Cases.push_back(I);
  }
  {
    Instr I;
    I.Op = Opcode::CMPXCHG;
    I.Pfx.Lock = true;
    I.Op1 = Operand::mem(Addr::base(Reg::EBP, 8));
    I.Op2 = Operand::reg(Reg::EAX);
    Cases.push_back(I);
  }

  for (const Instr &I : Cases) {
    auto Bytes = encode(I);
    ASSERT_TRUE(Bytes.has_value()) << printInstr(I);
    auto G = grammarDecode(*Bytes);
    ASSERT_TRUE(G.has_value()) << printInstr(I) << " = " << bytesToHex(*Bytes);
    EXPECT_EQ(G->I, I) << "grammar: " << printInstr(G->I) << " vs "
                       << printInstr(I);
    EXPECT_EQ(G->Length, Bytes->size());
    auto F = fastDecode(*Bytes);
    ASSERT_TRUE(F.has_value()) << printInstr(I);
    EXPECT_EQ(F->I, I) << "fast: " << printInstr(F->I);
    EXPECT_EQ(F->Length, Bytes->size());
  }
}

/// The big generative sweep: random instructions across all families must
/// round-trip through both decoders, and the decoders must agree with
/// each other byte for byte.
TEST(RoundTrip, GenerativeSweepAllFamilies) {
  Rng R(20120616); // PLDI'12
  int Encoded = 0;
  for (int Iter = 0; Iter < 4000; ++Iter) {
    Instr I = randomInstr(R);
    auto Bytes = encode(I);
    ASSERT_TRUE(Bytes.has_value())
        << "generator produced unencodable instr: " << printInstr(I);
    ++Encoded;

    auto F = fastDecode(*Bytes);
    ASSERT_TRUE(F.has_value())
        << printInstr(I) << " = " << bytesToHex(*Bytes);
    ASSERT_EQ(F->I, I) << "fast decoder disagrees on " << bytesToHex(*Bytes)
                       << "\n  want: " << printInstr(I)
                       << "\n  got:  " << printInstr(F->I);
    ASSERT_EQ(size_t(F->Length), Bytes->size())
        << bytesToHex(*Bytes) << " for " << printInstr(I);
  }
  EXPECT_EQ(Encoded, 4000);
}

/// Same sweep through the (slower) grammar decoder on a reduced count.
TEST(RoundTrip, GenerativeSweepGrammarDecoder) {
  Rng R(0xA0C5);
  for (int Iter = 0; Iter < 600; ++Iter) {
    Instr I = randomInstr(R);
    auto Bytes = encode(I);
    ASSERT_TRUE(Bytes.has_value());
    auto G = grammarDecode(*Bytes);
    ASSERT_TRUE(G.has_value())
        << printInstr(I) << " = " << bytesToHex(*Bytes);
    ASSERT_EQ(G->I, I) << "grammar decoder disagrees on "
                       << bytesToHex(*Bytes) << "\n  want: " << printInstr(I)
                       << "\n  got:  " << printInstr(G->I);
    ASSERT_EQ(G->Length, Bytes->size());
  }
}

/// Differential fuzzing on raw random bytes: both decoders must agree on
/// accept/reject, instruction, and length (the Martignoni et al. CPU
/// emulator testing recipe the paper cites).
TEST(RoundTrip, DecoderDifferentialOnRandomBytes) {
  Rng R(777);
  int Accepted = 0;
  for (int Iter = 0; Iter < 1500; ++Iter) {
    std::vector<uint8_t> Bytes(16);
    for (auto &B : Bytes)
      B = static_cast<uint8_t>(R.next());
    // Bias the first byte toward common opcodes so acceptance happens.
    if (R.flip())
      Bytes[0] = static_cast<uint8_t>(R.below(0x40) | 0x80);

    auto G = grammarDecode(Bytes);
    auto F = fastDecode(Bytes);
    ASSERT_EQ(G.has_value(), F.has_value())
        << "accept/reject mismatch on " << bytesToHex(Bytes)
        << " grammar=" << G.has_value() << " fast=" << F.has_value();
    if (!G)
      continue;
    ++Accepted;
    ASSERT_EQ(G->Length, F->Length) << bytesToHex(Bytes);
    ASSERT_EQ(G->I, F->I) << bytesToHex(Bytes)
                          << "\n  grammar: " << printInstr(G->I)
                          << "\n  fast:    " << printInstr(F->I);
  }
  EXPECT_GT(Accepted, 100); // the fuzz must actually exercise decodes
}

/// Prefix-order agreement: the canonical order parses; non-canonical
/// orders are rejected by both decoders alike.
TEST(RoundTrip, PrefixOrderAgreement) {
  std::vector<std::vector<uint8_t>> Streams = {
      {0xF0, 0x3E, 0x66, 0x01, 0x03}, // lock ds: opsize add — canonical
      {0x66, 0xF0, 0x01, 0x03},       // opsize before lock — rejected
      {0x3E, 0xF0, 0x01, 0x03},       // seg before lock — rejected
      {0x66, 0x3E, 0x01, 0x03},       // opsize before seg — rejected
      {0xF3, 0xF3, 0xA4},             // duplicated rep — rejected
  };
  for (const auto &Bytes : Streams) {
    auto G = grammarDecode(Bytes);
    auto F = fastDecode(Bytes);
    ASSERT_EQ(G.has_value(), F.has_value()) << bytesToHex(Bytes);
    if (G) {
      EXPECT_EQ(G->I, F->I) << bytesToHex(Bytes);
      EXPECT_EQ(G->Length, F->Length);
    }
  }
}

/// Alternate encodings of the same instruction must decode to the same
/// abstract syntax even though the encoder would not produce them.
TEST(RoundTrip, AlternateEncodingsNormalize) {
  // add eax, ebx via 01 d8 (rm=eax) and 03 c3 (reg=eax).
  auto A = fastDecode(std::vector<uint8_t>{0x01, 0xD8});
  auto B = fastDecode(std::vector<uint8_t>{0x03, 0xC3});
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->I.Op, B->I.Op);
  // Operands are mirrored but denote the same operation; at least the
  // register sets must match.
  EXPECT_TRUE(A->I.Op1.isReg() && B->I.Op1.isReg());

  // mov eax, [0x10] via modrm (8b 05) and moffs (a1).
  auto C = fastDecode(std::vector<uint8_t>{0x8B, 0x05, 0x10, 0, 0, 0});
  auto D = fastDecode(std::vector<uint8_t>{0xA1, 0x10, 0, 0, 0});
  ASSERT_TRUE(C && D);
  EXPECT_EQ(C->I, D->I); // both canonicalize to mov eax, [disp]
}

/// Instruction length is the number of bytes consumed — never more than
/// the x86 architectural limit of 15.
TEST(RoundTrip, LengthBounded) {
  Rng R(31337);
  for (int Iter = 0; Iter < 2000; ++Iter) {
    Instr I = randomInstr(R);
    auto Bytes = encode(I);
    ASSERT_TRUE(Bytes.has_value());
    ASSERT_LE(Bytes->size(), 15u) << printInstr(I);
  }
}
