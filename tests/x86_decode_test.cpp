//===- tests/x86_decode_test.cpp ------------------------------*- C++ -*-===//
//
// Byte-level decode checks against the Intel manual, exercised through
// the grammar (reference) decoder. Each test feeds literal machine-code
// bytes and checks the produced abstract syntax.
//
//===----------------------------------------------------------------------===//

#include "x86/GrammarDecoder.h"
#include "x86/Printer.h"

#include <gtest/gtest.h>

using namespace rocksalt::x86;

namespace {

Decoded mustDecode(std::initializer_list<uint8_t> Bytes) {
  std::vector<uint8_t> V(Bytes);
  auto D = grammarDecode(V);
  EXPECT_TRUE(D.has_value());
  return D.value_or(Decoded{});
}

void mustReject(std::initializer_list<uint8_t> Bytes) {
  std::vector<uint8_t> V(Bytes);
  EXPECT_FALSE(grammarDecode(V).has_value());
}

} // namespace

TEST(GrammarDecode, Nop) {
  Decoded D = mustDecode({0x90});
  EXPECT_EQ(D.Length, 1);
  EXPECT_EQ(D.I.Op, Opcode::NOP);
}

TEST(GrammarDecode, AddRegReg) {
  // 01 d8: add eax, ebx (rm=eax, reg=ebx).
  Decoded D = mustDecode({0x01, 0xD8});
  EXPECT_EQ(D.Length, 2);
  EXPECT_EQ(D.I.Op, Opcode::ADD);
  EXPECT_TRUE(D.I.W);
  EXPECT_EQ(D.I.Op1, Operand::reg(Reg::EAX));
  EXPECT_EQ(D.I.Op2, Operand::reg(Reg::EBX));
}

TEST(GrammarDecode, AddByteForm) {
  // 00 c8: add al, cl.
  Decoded D = mustDecode({0x00, 0xC8});
  EXPECT_EQ(D.I.Op, Opcode::ADD);
  EXPECT_FALSE(D.I.W);
  EXPECT_EQ(D.I.Op1, Operand::reg(Reg::EAX));
  EXPECT_EQ(D.I.Op2, Operand::reg(Reg::ECX));
}

TEST(GrammarDecode, AddEaxImm32) {
  // 05 78 56 34 12: add eax, 0x12345678.
  Decoded D = mustDecode({0x05, 0x78, 0x56, 0x34, 0x12});
  EXPECT_EQ(D.Length, 5);
  EXPECT_EQ(D.I.Op, Opcode::ADD);
  EXPECT_EQ(D.I.Op2, Operand::imm(0x12345678));
}

TEST(GrammarDecode, AndImm8SignExtended) {
  // 83 e0 e0: and eax, 0xffffffe0 — the NaCl mask instruction.
  Decoded D = mustDecode({0x83, 0xE0, 0xE0});
  EXPECT_EQ(D.Length, 3);
  EXPECT_EQ(D.I.Op, Opcode::AND);
  EXPECT_EQ(D.I.Op1, Operand::reg(Reg::EAX));
  EXPECT_EQ(D.I.Op2, Operand::imm(0xFFFFFFE0));
}

TEST(GrammarDecode, MemBaseOnly) {
  // 8b 03: mov eax, [ebx].
  Decoded D = mustDecode({0x8B, 0x03});
  EXPECT_EQ(D.I.Op, Opcode::MOV);
  EXPECT_EQ(D.I.Op1, Operand::reg(Reg::EAX));
  EXPECT_EQ(D.I.Op2, Operand::mem(Addr::base(Reg::EBX)));
}

TEST(GrammarDecode, MemDisp8) {
  // 8b 43 fc: mov eax, [ebx-4] (disp8 sign-extended).
  Decoded D = mustDecode({0x8B, 0x43, 0xFC});
  EXPECT_EQ(D.I.Op2, Operand::mem(Addr::base(Reg::EBX, 0xFFFFFFFC)));
}

TEST(GrammarDecode, MemDisp32) {
  // 8b 83 44 33 22 11: mov eax, [ebx+0x11223344].
  Decoded D = mustDecode({0x8B, 0x83, 0x44, 0x33, 0x22, 0x11});
  EXPECT_EQ(D.I.Op2, Operand::mem(Addr::base(Reg::EBX, 0x11223344)));
}

TEST(GrammarDecode, MemAbsolute) {
  // 8b 05 10 00 00 00: mov eax, [0x10].
  Decoded D = mustDecode({0x8B, 0x05, 0x10, 0x00, 0x00, 0x00});
  EXPECT_EQ(D.I.Op2, Operand::mem(Addr::disp(0x10)));
}

TEST(GrammarDecode, SibScaledIndex) {
  // 8b 04 8b: mov eax, [ebx + 4*ecx].
  Decoded D = mustDecode({0x8B, 0x04, 0x8B});
  EXPECT_EQ(D.I.Op2,
            Operand::mem(Addr::baseIndex(Reg::EBX, Reg::ECX, Scale::S4)));
}

TEST(GrammarDecode, SibNoBaseDisp32) {
  // 8b 04 8d 04 00 00 00: mov eax, [4*ecx + 4].
  Decoded D = mustDecode({0x8B, 0x04, 0x8D, 0x04, 0x00, 0x00, 0x00});
  EXPECT_EQ(D.I.Op2,
            Operand::mem(Addr::indexOnly(Reg::ECX, Scale::S4, 4)));
}

TEST(GrammarDecode, SibEspBase) {
  // 8b 44 24 08: mov eax, [esp+8].
  Decoded D = mustDecode({0x8B, 0x44, 0x24, 0x08});
  EXPECT_EQ(D.I.Op2, Operand::mem(Addr::base(Reg::ESP, 8)));
}

TEST(GrammarDecode, SibNoIndex) {
  // SIB with index=100 means no index register.
  // 8b 04 24: mov eax, [esp].
  Decoded D = mustDecode({0x8B, 0x04, 0x24});
  EXPECT_EQ(D.I.Op2, Operand::mem(Addr::base(Reg::ESP)));
}

TEST(GrammarDecode, MovImmToReg) {
  // b8 2a 00 00 00: mov eax, 42.
  Decoded D = mustDecode({0xB8, 0x2A, 0x00, 0x00, 0x00});
  EXPECT_EQ(D.I.Op, Opcode::MOV);
  EXPECT_EQ(D.I.Op1, Operand::reg(Reg::EAX));
  EXPECT_EQ(D.I.Op2, Operand::imm(42));
  // b3 7f: mov bl, 0x7f.
  Decoded D2 = mustDecode({0xB3, 0x7F});
  EXPECT_FALSE(D2.I.W);
  EXPECT_EQ(D2.I.Op1, Operand::reg(Reg::EBX));
}

TEST(GrammarDecode, MovMoffs) {
  // a1 44 33 22 11: mov eax, [0x11223344].
  Decoded D = mustDecode({0xA1, 0x44, 0x33, 0x22, 0x11});
  EXPECT_EQ(D.I.Op, Opcode::MOV);
  EXPECT_EQ(D.I.Op1, Operand::reg(Reg::EAX));
  EXPECT_EQ(D.I.Op2, Operand::mem(Addr::disp(0x11223344)));
  // a2 ...: mov [moffs], al.
  Decoded D2 = mustDecode({0xA2, 0x44, 0x33, 0x22, 0x11});
  EXPECT_FALSE(D2.I.W);
  EXPECT_EQ(D2.I.Op1, Operand::mem(Addr::disp(0x11223344)));
}

TEST(GrammarDecode, CallFormsOfFigure2) {
  // The four CALL alternatives from the paper's Figure 2.
  // e8 rel32.
  Decoded A = mustDecode({0xE8, 0x10, 0x00, 0x00, 0x00});
  EXPECT_EQ(A.I.Op, Opcode::CALL);
  EXPECT_TRUE(A.I.Near);
  EXPECT_FALSE(A.I.Absolute);
  EXPECT_EQ(A.I.Op1, Operand::imm(0x10));

  // ff d3: call *ebx (ff /2).
  Decoded B = mustDecode({0xFF, 0xD3});
  EXPECT_TRUE(B.I.Near);
  EXPECT_TRUE(B.I.Absolute);
  EXPECT_EQ(B.I.Op1, Operand::reg(Reg::EBX));

  // 9a off32 sel16: far direct call.
  Decoded C = mustDecode({0x9A, 1, 0, 0, 0, 0x23, 0x00});
  EXPECT_FALSE(C.I.Near);
  EXPECT_FALSE(C.I.Absolute);
  ASSERT_TRUE(C.I.Sel.has_value());
  EXPECT_EQ(*C.I.Sel, 0x23);

  // ff 1b: far indirect call through [ebx] (ff /3).
  Decoded E = mustDecode({0xFF, 0x1B});
  EXPECT_FALSE(E.I.Near);
  EXPECT_TRUE(E.I.Absolute);
  EXPECT_EQ(E.I.Op1, Operand::mem(Addr::base(Reg::EBX)));
}

TEST(GrammarDecode, FarIndirectThroughRegisterIsIllegal) {
  mustReject({0xFF, 0xDB}); // ff /3 with mod=11
  mustReject({0xFF, 0xEB}); // ff /5 with mod=11
}

TEST(GrammarDecode, JmpForms) {
  Decoded A = mustDecode({0xEB, 0xFE}); // jmp -2 (self)
  EXPECT_EQ(A.I.Op, Opcode::JMP);
  EXPECT_EQ(A.I.Op1, Operand::imm(0xFFFFFFFE));
  Decoded B = mustDecode({0xE9, 0x00, 0x01, 0x00, 0x00});
  EXPECT_EQ(B.I.Op1, Operand::imm(0x100));
  Decoded C = mustDecode({0xFF, 0xE0}); // jmp *eax
  EXPECT_TRUE(C.I.Absolute);
  EXPECT_EQ(C.I.Op1, Operand::reg(Reg::EAX));
}

TEST(GrammarDecode, JccBothWidths) {
  Decoded A = mustDecode({0x74, 0x05}); // je +5
  EXPECT_EQ(A.I.Op, Opcode::Jcc);
  EXPECT_EQ(A.I.CC, Cond::E);
  EXPECT_EQ(A.I.Op1, Operand::imm(5));
  Decoded B = mustDecode({0x0F, 0x8C, 0x00, 0x02, 0x00, 0x00}); // jl +512
  EXPECT_EQ(B.I.CC, Cond::L);
  EXPECT_EQ(B.I.Op1, Operand::imm(512));
}

TEST(GrammarDecode, PushPopForms) {
  EXPECT_EQ(mustDecode({0x55}).I.Op, Opcode::PUSH); // push ebp
  EXPECT_EQ(mustDecode({0x5D}).I.Op, Opcode::POP);  // pop ebp
  Decoded A = mustDecode({0x6A, 0xFF});             // push -1
  EXPECT_EQ(A.I.Op1, Operand::imm(0xFFFFFFFF));
  Decoded B = mustDecode({0x68, 0x00, 0x01, 0x00, 0x00});
  EXPECT_EQ(B.I.Op1, Operand::imm(0x100));
  Decoded C = mustDecode({0xFF, 0x75, 0x08}); // push [ebp+8]
  EXPECT_EQ(C.I.Op, Opcode::PUSH);
  EXPECT_EQ(C.I.Op1, Operand::mem(Addr::base(Reg::EBP, 8)));
}

TEST(GrammarDecode, SegmentStackOps) {
  EXPECT_EQ(mustDecode({0x1E}).I.Op, Opcode::PUSHSR);
  EXPECT_EQ(mustDecode({0x1E}).I.Seg, SegReg::DS);
  EXPECT_EQ(mustDecode({0x07}).I.Seg, SegReg::ES);
  Decoded Fs = mustDecode({0x0F, 0xA0});
  EXPECT_EQ(Fs.I.Op, Opcode::PUSHSR);
  EXPECT_EQ(Fs.I.Seg, SegReg::FS);
}

TEST(GrammarDecode, MovSegForms) {
  // 8c d8: mov eax, ds.
  Decoded A = mustDecode({0x8C, 0xD8});
  EXPECT_EQ(A.I.Op, Opcode::MOVSR);
  EXPECT_EQ(A.I.Seg, SegReg::DS);
  EXPECT_EQ(A.I.Op1, Operand::reg(Reg::EAX));
  // 8e d8: mov ds, eax.
  Decoded B = mustDecode({0x8E, 0xD8});
  EXPECT_EQ(B.I.Seg, SegReg::DS);
  EXPECT_EQ(B.I.Op2, Operand::reg(Reg::EAX));
  // sreg encodings 6/7 are invalid.
  mustReject({0x8C, 0xF0});
  mustReject({0x8E, 0xF8});
}

TEST(GrammarDecode, LeaRequiresMemory) {
  Decoded A = mustDecode({0x8D, 0x44, 0x24, 0x04}); // lea eax, [esp+4]
  EXPECT_EQ(A.I.Op, Opcode::LEA);
  mustReject({0x8D, 0xC0}); // lea eax, eax is illegal
}

TEST(GrammarDecode, ShiftForms) {
  Decoded A = mustDecode({0xC1, 0xE0, 0x04}); // shl eax, 4
  EXPECT_EQ(A.I.Op, Opcode::SHL);
  EXPECT_EQ(A.I.Op2, Operand::imm(4));
  Decoded B = mustDecode({0xD1, 0xF8}); // sar eax, 1
  EXPECT_EQ(B.I.Op, Opcode::SAR);
  EXPECT_EQ(B.I.Op2, Operand::imm(1));
  Decoded C = mustDecode({0xD3, 0xE8}); // shr eax, cl
  EXPECT_EQ(C.I.Op, Opcode::SHR);
  EXPECT_EQ(C.I.Op2, Operand::reg(Reg::ECX));
  mustReject({0xC1, 0xF0, 0x01}); // /6 is not in the modeled subset
}

TEST(GrammarDecode, UnaryGroup) {
  EXPECT_EQ(mustDecode({0xF7, 0xD8}).I.Op, Opcode::NEG);
  EXPECT_EQ(mustDecode({0xF7, 0xD0}).I.Op, Opcode::NOT);
  EXPECT_EQ(mustDecode({0xF7, 0xE3}).I.Op, Opcode::MUL);
  EXPECT_EQ(mustDecode({0xF7, 0xF3}).I.Op, Opcode::DIV);
  EXPECT_EQ(mustDecode({0xF7, 0xFB}).I.Op, Opcode::IDIV);
  EXPECT_EQ(mustDecode({0xF7, 0xEB}).I.Op, Opcode::IMUL);
  // f7 /1 is invalid.
  mustReject({0xF7, 0xC8});
}

TEST(GrammarDecode, TestForms) {
  Decoded A = mustDecode({0x85, 0xC0}); // test eax, eax
  EXPECT_EQ(A.I.Op, Opcode::TEST);
  Decoded B = mustDecode({0xA9, 1, 0, 0, 0}); // test eax, 1
  EXPECT_EQ(B.I.Op2, Operand::imm(1));
  Decoded C = mustDecode({0xF7, 0xC3, 2, 0, 0, 0}); // test ebx, 2
  EXPECT_EQ(C.I.Op1, Operand::reg(Reg::EBX));
  EXPECT_EQ(C.I.Op2, Operand::imm(2));
}

TEST(GrammarDecode, TwoByteOpcodes) {
  Decoded A = mustDecode({0x0F, 0xAF, 0xC3}); // imul eax, ebx
  EXPECT_EQ(A.I.Op, Opcode::IMUL);
  Decoded B = mustDecode({0x0F, 0xB6, 0xC1}); // movzx eax, cl
  EXPECT_EQ(B.I.Op, Opcode::MOVZX);
  EXPECT_FALSE(B.I.W);
  Decoded C = mustDecode({0x0F, 0xBF, 0xC1}); // movsx eax, cx
  EXPECT_EQ(C.I.Op, Opcode::MOVSX);
  EXPECT_TRUE(C.I.W);
  Decoded D = mustDecode({0x0F, 0x94, 0xC0}); // sete al
  EXPECT_EQ(D.I.Op, Opcode::SETcc);
  EXPECT_EQ(D.I.CC, Cond::E);
  Decoded E = mustDecode({0x0F, 0x44, 0xC8}); // cmove ecx, eax
  EXPECT_EQ(E.I.Op, Opcode::CMOVcc);
  Decoded F = mustDecode({0x0F, 0xC8}); // bswap eax
  EXPECT_EQ(F.I.Op, Opcode::BSWAP);
  Decoded G = mustDecode({0x0F, 0xBA, 0xE0, 0x05}); // bt eax, 5
  EXPECT_EQ(G.I.Op, Opcode::BT);
  EXPECT_EQ(G.I.Op2, Operand::imm(5));
}

TEST(GrammarDecode, PrefixParsing) {
  // f3 a4: rep movsb.
  Decoded A = mustDecode({0xF3, 0xA4});
  EXPECT_EQ(A.I.Op, Opcode::MOVS);
  EXPECT_EQ(A.I.Pfx.Rep, Prefix::RepKind::Rep);
  EXPECT_FALSE(A.I.W);

  // f0 01 03: lock add [ebx], eax.
  Decoded B = mustDecode({0xF0, 0x01, 0x03});
  EXPECT_TRUE(B.I.Pfx.Lock);

  // 65 8b 00: mov eax, gs:[eax].
  Decoded C = mustDecode({0x65, 0x8B, 0x00});
  ASSERT_TRUE(C.I.Pfx.SegOverride.has_value());
  EXPECT_EQ(*C.I.Pfx.SegOverride, SegReg::GS);

  // 66 05 34 12: add ax, 0x1234 (16-bit immediate).
  Decoded D = mustDecode({0x66, 0x05, 0x34, 0x12});
  EXPECT_EQ(D.Length, 4);
  EXPECT_TRUE(D.I.Pfx.OpSize);
  EXPECT_EQ(D.I.Op2, Operand::imm(0x1234));
}

TEST(GrammarDecode, StringAndFlagOps) {
  EXPECT_EQ(mustDecode({0xAB}).I.Op, Opcode::STOS);
  EXPECT_EQ(mustDecode({0xAC}).I.Op, Opcode::LODS);
  EXPECT_EQ(mustDecode({0xAE}).I.Op, Opcode::SCAS);
  EXPECT_EQ(mustDecode({0xA6}).I.Op, Opcode::CMPS);
  EXPECT_EQ(mustDecode({0xFC}).I.Op, Opcode::CLD);
  EXPECT_EQ(mustDecode({0xF5}).I.Op, Opcode::CMC);
  EXPECT_EQ(mustDecode({0xF4}).I.Op, Opcode::HLT);
}

TEST(GrammarDecode, RetForms) {
  EXPECT_TRUE(mustDecode({0xC3}).I.Near);
  Decoded A = mustDecode({0xC2, 0x08, 0x00});
  EXPECT_EQ(A.I.Op1, Operand::imm(8));
  EXPECT_FALSE(mustDecode({0xCB}).I.Near);
}

TEST(GrammarDecode, UnsupportedOpcodesRejected) {
  mustReject({0x62, 0x00});       // bound (not modeled)
  mustReject({0x63, 0x00});       // arpl (not modeled)
  mustReject({0xD6});             // salc (undocumented)
  mustReject({0x0F, 0x05});       // syscall
  mustReject({0x0F, 0x31});       // rdtsc (not modeled)
  mustReject({0xDB, 0xE3});       // x87 (out of scope, as in the paper)
}

TEST(GrammarDecode, TruncatedInputRejected) {
  mustReject({0x05, 0x01, 0x02});       // add eax, imm32 cut short
  mustReject({0x8B});                   // bare opcode needing modrm
  mustReject({0x8B, 0x84});             // modrm promising sib+disp32
  mustReject({0x66});                   // bare prefix
  mustReject({0xF0});                   // bare lock
}

TEST(GrammarDecode, PicksShortestInstruction) {
  // The stream "90 90" must decode one 1-byte NOP, not something longer.
  std::vector<uint8_t> V = {0x90, 0x90};
  auto D = grammarDecode(V);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Length, 1);
}

TEST(GrammarDecode, XchgEaxFormsDoNotShadowNop) {
  // 90 is NOP; 91-97 are xchg eax, r.
  EXPECT_EQ(mustDecode({0x90}).I.Op, Opcode::NOP);
  Decoded A = mustDecode({0x93});
  EXPECT_EQ(A.I.Op, Opcode::XCHG);
  EXPECT_EQ(A.I.Op2, Operand::reg(Reg::EBX));
}

TEST(GrammarDecode, PrinterSmokeTest) {
  Decoded D = mustDecode({0xF0, 0x01, 0x44, 0x8B, 0x10});
  std::string S = printInstr(D.I);
  EXPECT_NE(S.find("lock"), std::string::npos);
  EXPECT_NE(S.find("add"), std::string::npos);
  EXPECT_NE(S.find("ebx"), std::string::npos);
}
