//===- tests/x86_ambiguity_test.cpp ---------------------------*- C++ -*-===//
//
// Experiment E5: decoder determinism. The paper proves the x86 grammar
// unambiguous via the generalized derivative of section 4.1 and reports
// that the check caught a flipped bit in a rarely used MOV encoding that
// made it overlap another instruction. We reproduce both directions:
//
//  * every pair of instruction-form regexes is prefix-disjoint;
//  * deliberately flipping the 8C (mov r/m, sreg) opcode bit to 8D makes
//    the grammar collide with LEA, and the analysis detects it.
//
//===----------------------------------------------------------------------===//

#include "regex/Regex.h"
#include "x86/Grammars.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::x86;

TEST(Ambiguity, AllInstructionFormsPairwisePrefixDisjoint) {
  re::Factory F;
  const X86Grammars &G = x86Grammars();

  std::vector<std::pair<std::string, re::Regex>> Res;
  Res.reserve(G.Forms.size());
  for (const NamedGrammar &NG : G.Forms)
    Res.emplace_back(NG.Name, NG.G.strip(F));

  for (size_t I = 0; I < Res.size(); ++I) {
    for (size_t J = I + 1; J < Res.size(); ++J) {
      std::optional<bool> Ok =
          F.prefixDisjoint(Res[I].second, Res[J].second);
      ASSERT_TRUE(Ok.has_value())
          << Res[I].first << " vs " << Res[J].first << ": star in operand";
      ASSERT_TRUE(*Ok) << "overlapping instruction encodings: "
                       << Res[I].first << " vs " << Res[J].first;
    }
  }
}

TEST(Ambiguity, EachFormIsInternallyUnambiguous) {
  re::Factory F;
  const X86Grammars &G = x86Grammars();
  for (const NamedGrammar &NG : G.Forms) {
    auto Rep = F.checkUnambiguous(NG.G.strip(F));
    EXPECT_TRUE(Rep.Unambiguous) << NG.Name << ": " << Rep.Detail;
  }
}

TEST(Ambiguity, FlippedMovBitIsCaught) {
  // The paper: "we had flipped a bit in an infrequently used encoding of
  // the MOV instruction, causing it to overlap with another instruction."
  re::Factory F;
  gram::Grammar<Instr> Bad = buggyMovBody();
  const X86Grammars &G = x86Grammars();

  // Locate the LEA form and the (sabotaged) MOVSR form inside the buggy
  // grammar by reconstructing the pairwise check over the good forms with
  // the flipped regex substituted.
  re::Regex BadBody = Bad.strip(F);
  re::Regex GoodBody = G.Body.strip(F);

  // The good body must pass the whole-grammar ambiguity check at the Alt
  // level; the sabotaged one must fail it.
  auto GoodRep = F.checkUnambiguous(GoodBody);
  EXPECT_TRUE(GoodRep.Unambiguous) << GoodRep.Detail;

  auto BadRep = F.checkUnambiguous(BadBody);
  EXPECT_FALSE(BadRep.Unambiguous);
  EXPECT_FALSE(BadRep.Detail.empty());
}

TEST(Ambiguity, PrefixBytesNeverStartAnInstruction) {
  // Prefix handling is layered in front of the instruction body; decoding
  // stays deterministic because no instruction body begins with a prefix
  // byte. (0x66, 0xF0, 0xF2, 0xF3 and the segment overrides.)
  re::Factory F;
  const X86Grammars &G = x86Grammars();
  re::Regex Body = G.Body.strip(F);

  for (uint8_t P : {0xF0, 0xF2, 0xF3, 0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65,
                    0x66}) {
    re::Regex D = F.derivByte(Body, P);
    EXPECT_EQ(D, F.voidRe()) << "instruction body may start with prefix 0x"
                             << std::hex << int(P);
  }
}
