//===- tests/integration_programs_test.cpp --------------------*- C++ -*-===//
//
// End-to-end integration: real little programs assembled by the
// NaCl-izer, accepted by the checker, executed on the model under the
// sandbox monitor, with results read back from data memory. This is the
// "compile real applications and run them through the simulator" claim
// of paper section 6.1, at the scale this substrate supports.
//
//===----------------------------------------------------------------------===//

#include "core/SandboxMonitor.h"
#include "core/Verifier.h"
#include "nacl/Assembler.h"
#include "sem/Cpu.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::nacl;
using x86::Addr;
using x86::Cond;
using x86::Instr;
using x86::Opcode;
using x86::Operand;
using x86::Reg;

namespace {

constexpr uint32_t CodeBase = 0x10000;
constexpr uint32_t DataBase = 0x400000;
constexpr uint32_t DataSize = 0x10000;

Instr movImm(Reg R, uint32_t V) {
  Instr I;
  I.Op = Opcode::MOV;
  I.Op1 = Operand::reg(R);
  I.Op2 = Operand::imm(V);
  return I;
}
Instr binop(Opcode Op, Operand A, Operand B) {
  Instr I;
  I.Op = Op;
  I.Op1 = A;
  I.Op2 = B;
  return I;
}
Instr unop(Opcode Op, Operand A) {
  Instr I;
  I.Op = Op;
  I.Op1 = A;
  return I;
}

/// Verifies + runs under the monitor; asserts acceptance and safety.
sem::Cpu runVerified(Assembler &A, uint64_t MaxSteps,
                     std::function<void(sem::Cpu &)> Setup = {}) {
  std::vector<uint8_t> Code = A.finish();
  core::RockSalt V;
  core::CheckResult R = V.check(Code);
  EXPECT_TRUE(R.Ok);

  sem::Cpu C;
  C.configureSandbox(CodeBase, static_cast<uint32_t>(Code.size()), DataBase,
                     DataSize, Code);
  if (Setup)
    Setup(C);
  core::SandboxMonitor Mon(C, std::move(R), CodeBase,
                           static_cast<uint32_t>(Code.size()));
  auto Violation = Mon.runMonitored(MaxSteps);
  EXPECT_FALSE(Violation.has_value())
      << "step " << Violation->Step << ": " << Violation->What;
  return C;
}

} // namespace

TEST(Programs, MemcpyViaRepMovs) {
  Assembler A;
  A.emit(movImm(Reg::ESI, 0x100));
  A.emit(movImm(Reg::EDI, 0x200));
  A.emit(movImm(Reg::ECX, 64));
  Instr Cld;
  Cld.Op = Opcode::CLD;
  A.emit(Cld);
  Instr Movs;
  Movs.Op = Opcode::MOVS;
  Movs.W = false;
  Movs.Pfx.Rep = x86::Prefix::RepKind::Rep;
  A.emit(Movs);
  A.hlt();

  sem::Cpu C = runVerified(A, 1000, [](sem::Cpu &Cpu) {
    for (int I = 0; I < 64; ++I)
      Cpu.M.Mem.store8(DataBase + 0x100 + I, uint8_t(I * 3 + 1));
  });
  for (int I = 0; I < 64; ++I)
    ASSERT_EQ(C.M.Mem.load8(DataBase + 0x200 + I), uint8_t(I * 3 + 1));
}

TEST(Programs, StrlenViaRepneScas) {
  Assembler A;
  A.emit(movImm(Reg::EDI, 0x300));
  A.emit(movImm(Reg::ECX, 0xFFFF));
  A.emit(movImm(Reg::EAX, 0)); // scan for NUL
  Instr Cld;
  Cld.Op = Opcode::CLD;
  A.emit(Cld);
  Instr Scas;
  Scas.Op = Opcode::SCAS;
  Scas.W = false;
  Scas.Pfx.Rep = x86::Prefix::RepKind::RepNe;
  A.emit(Scas);
  // length = 0xFFFF - ecx - 1; computed into EBX.
  A.emit(movImm(Reg::EBX, 0xFFFF));
  A.emit(binop(Opcode::SUB, Operand::reg(Reg::EBX), Operand::reg(Reg::ECX)));
  A.emit(unop(Opcode::DEC, Operand::reg(Reg::EBX)));
  A.hlt();

  const char *Str = "better, faster, stronger";
  sem::Cpu C = runVerified(A, 1000, [Str](sem::Cpu &Cpu) {
    for (size_t I = 0; Str[I]; ++I)
      Cpu.M.Mem.store8(DataBase + 0x300 + uint32_t(I), uint8_t(Str[I]));
  });
  EXPECT_EQ(C.M.Regs[3], strlen(Str));
}

TEST(Programs, BubbleSort) {
  // Sort 16 dwords at data offset 0x400 (classic nested loops with
  // conditional branches and scaled-index addressing).
  Assembler A;
  constexpr uint32_t N = 16;
  A.emit(movImm(Reg::EDX, 0)); // i = 0
  A.alignedLabel("outer");
  A.emit(movImm(Reg::ECX, 0)); // j = 0
  A.alignedLabel("inner");
  // eax = arr[j]; ebx = arr[j+1]
  A.emit(binop(Opcode::MOV, Operand::reg(Reg::EAX),
               Operand::mem(Addr::indexOnly(Reg::ECX, x86::Scale::S4,
                                            0x400))));
  A.emit(binop(Opcode::MOV, Operand::reg(Reg::EBX),
               Operand::mem(Addr::indexOnly(Reg::ECX, x86::Scale::S4,
                                            0x404))));
  A.emit(binop(Opcode::CMP, Operand::reg(Reg::EAX),
               Operand::reg(Reg::EBX)));
  A.jccTo(Cond::BE, "noswap");
  A.emit(binop(Opcode::MOV,
               Operand::mem(Addr::indexOnly(Reg::ECX, x86::Scale::S4,
                                            0x400)),
               Operand::reg(Reg::EBX)));
  A.emit(binop(Opcode::MOV,
               Operand::mem(Addr::indexOnly(Reg::ECX, x86::Scale::S4,
                                            0x404)),
               Operand::reg(Reg::EAX)));
  A.label("noswap");
  A.emit(unop(Opcode::INC, Operand::reg(Reg::ECX)));
  A.emit(binop(Opcode::CMP, Operand::reg(Reg::ECX),
               Operand::imm(N - 1)));
  A.jccTo(Cond::B, "inner");
  A.emit(unop(Opcode::INC, Operand::reg(Reg::EDX)));
  A.emit(binop(Opcode::CMP, Operand::reg(Reg::EDX), Operand::imm(N)));
  A.jccTo(Cond::B, "outer");
  A.hlt();

  sem::Cpu C = runVerified(A, 100000, [](sem::Cpu &Cpu) {
    // A descending array — worst case.
    for (uint32_t I = 0; I < N; ++I)
      Cpu.M.Mem.store(DataBase + 0x400 + 4 * I, 4, 1000 - I * 13);
  });
  for (uint32_t I = 0; I + 1 < N; ++I)
    ASSERT_LE(C.M.Mem.load(DataBase + 0x400 + 4 * I, 4),
              C.M.Mem.load(DataBase + 0x400 + 4 * (I + 1), 4))
        << I;
}

TEST(Programs, ChecksumWithFunctionCall) {
  // A call/masked-return idiom: caller pushes, callee sums an array and
  // "returns" by popping into a register and nacljmp-ing through it (the
  // NaCl replacement for RET).
  Assembler A;
  A.emit(movImm(Reg::ESI, 0x500)); // array base
  A.emit(movImm(Reg::ECX, 8));     // count
  A.callToAligned("sum"); // ends on a bundle boundary: exact return
  A.label("after");
  // Result arrives in EAX; store to 0x600.
  A.emit(binop(Opcode::MOV, Operand::mem(Addr::disp(0x600)),
               Operand::reg(Reg::EAX)));
  A.hlt();

  A.alignedLabel("sum");
  A.emit(movImm(Reg::EAX, 0));
  A.alignedLabel("sumloop");
  A.emit(binop(Opcode::ADD, Operand::reg(Reg::EAX),
               Operand::mem(Addr::base(Reg::ESI))));
  A.emit(binop(Opcode::ADD, Operand::reg(Reg::ESI), Operand::imm(4)));
  A.emit(unop(Opcode::DEC, Operand::reg(Reg::ECX)));
  A.jccTo(Cond::NE, "sumloop");
  // NaCl return: pop the return address and masked-jump through it.
  A.emit(unop(Opcode::POP, Operand::reg(Reg::EBX)));
  A.maskedJump(Reg::EBX);

  sem::Cpu C = runVerified(A, 10000, [](sem::Cpu &Cpu) {
    for (uint32_t I = 0; I < 8; ++I)
      Cpu.M.Mem.store(DataBase + 0x500 + 4 * I, 4, I + 1);
  });
  EXPECT_EQ(C.M.Mem.load(DataBase + 0x600, 4), 36u); // 1+...+8
  EXPECT_EQ(C.M.St, rtl::Status::Halted);
}

TEST(Programs, CollatzIterations) {
  // Count Collatz steps for n=27 (111 steps) using div-free arithmetic:
  // test parity with TEST, n/2 via SHR, 3n+1 via LEA.
  Assembler A;
  A.emit(movImm(Reg::EAX, 27)); // n
  A.emit(movImm(Reg::ECX, 0));  // steps
  A.alignedLabel("loop");
  A.emit(binop(Opcode::CMP, Operand::reg(Reg::EAX), Operand::imm(1)));
  A.jccTo(Cond::E, "done");
  A.emit(binop(Opcode::TEST, Operand::reg(Reg::EAX), Operand::imm(1)));
  A.jccTo(Cond::NE, "odd");
  // even: n >>= 1
  {
    Instr Shr;
    Shr.Op = Opcode::SHR;
    Shr.Op1 = Operand::reg(Reg::EAX);
    Shr.Op2 = Operand::imm(1);
    A.emit(Shr);
  }
  A.jmpTo("next");
  A.alignedLabel("odd");
  // odd: n = 3n + 1 = lea eax, [eax + 2*eax + 1]
  {
    Instr Lea;
    Lea.Op = Opcode::LEA;
    Lea.Op1 = Operand::reg(Reg::EAX);
    Lea.Op2 = Operand::mem(
        Addr::baseIndex(Reg::EAX, Reg::EAX, x86::Scale::S2, 1));
    A.emit(Lea);
  }
  A.label("next");
  A.emit(unop(Opcode::INC, Operand::reg(Reg::ECX)));
  A.jmpTo("loop");
  A.alignedLabel("done");
  A.hlt();

  sem::Cpu C = runVerified(A, 100000);
  EXPECT_EQ(C.M.Regs[1], 111u);
  EXPECT_EQ(C.M.Regs[0], 1u);
}

TEST(Programs, RepeatedCallsWithMaskedReturns) {
  // 64 calls through the NaCl call/masked-return idiom; every return
  // address is bundle-aligned (callToAligned), so control returns
  // exactly and the counter reaches 64.
  Assembler A;
  A.emit(movImm(Reg::EDX, 0));
  A.emit(movImm(Reg::ECX, 64));
  A.alignedLabel("spin");
  A.callToAligned("level");
  A.emit(unop(Opcode::DEC, Operand::reg(Reg::ECX)));
  A.jccTo(Cond::NE, "spin");
  A.hlt();
  A.alignedLabel("level");
  A.emit(unop(Opcode::INC, Operand::reg(Reg::EDX)));
  A.emit(unop(Opcode::POP, Operand::reg(Reg::EBX)));
  A.maskedJump(Reg::EBX);

  sem::Cpu C = runVerified(A, 10000);
  EXPECT_EQ(C.M.Regs[2], 64u);
  EXPECT_EQ(C.M.Regs[1], 0u);
  EXPECT_EQ(C.M.St, rtl::Status::Halted);
}
