//===- tests/fuzz_corpus_test.cpp -----------------------------*- C++ -*-===//
//
// Replays the regression corpus (tests/corpus/*.bin) through the full
// differential oracle. The corpus holds two kinds of file:
//
//  * hand-seeded edge images, named accept-*/reject-* after their
//    expected reference verdict (bundle-straddling pairs, prefixed
//    branches, truncated tails);
//  * fuzz-found reproducers (disagree-*), written by fuzz_differential
//    --minimize after a cross-verifier disagreement. Once the underlying
//    bug is fixed the image stays here so all four verdict paths keep
//    agreeing on it forever.
//
// Either way, every entry must be verdict-agreed by every path, under
// every shard geometry — a corpus entry failing here means a fixed bug
// has come back.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Oracle.h"

#include <gtest/gtest.h>

#ifndef ROCKSALT_CORPUS_DIR
#error "build must define ROCKSALT_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

using namespace rocksalt;
using namespace rocksalt::fuzz;

namespace {

std::string baseName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? Path : Path.substr(Slash + 1);
}

} // namespace

TEST(Corpus, SeedEntriesExist) {
  // The hand-seeded images are committed; an empty corpus means the
  // build is replaying the wrong directory.
  auto Entries = loadCorpus(ROCKSALT_CORPUS_DIR);
  EXPECT_GE(Entries.size(), 7u) << "corpus dir: " << ROCKSALT_CORPUS_DIR;
}

TEST(Corpus, EveryEntryIsVerdictAgreedByAllPaths) {
  DifferentialOracle Oracle;
  auto Entries = loadCorpus(ROCKSALT_CORPUS_DIR);
  for (const auto &E : Entries) {
    ASSERT_FALSE(E.Code.empty()) << E.Path;
    OracleReport Rep = Oracle.run(E.Code);
    EXPECT_TRUE(Rep.agree())
        << baseName(E.Path) << ": " << Rep.Disagreements[0].Path << " — "
        << Rep.Disagreements[0].Detail;

    // The name prefix pins the reference verdict for seeded entries.
    std::string Name = baseName(E.Path);
    if (Name.rfind("accept-", 0) == 0)
      EXPECT_TRUE(Rep.Reference.Ok) << Name;
    else if (Name.rfind("reject-", 0) == 0)
      EXPECT_FALSE(Rep.Reference.Ok) << Name;
  }
}
