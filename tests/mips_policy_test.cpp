//===- tests/mips_policy_test.cpp -----------------------------*- C++ -*-===//
//
// The second registry tenant end to end: the MIPS NaCl policy tables
// (mips/MipsPolicy.h) — masked-jump discipline through $t9/$t6, direct
// jump target extraction, 16-byte bundle alignment — plus the tagged
// RSTB round-trip and the full 13-obligation meta-audit over the MIPS
// tables (the same analysis::auditPolicy the x86 CI gate runs).
//
//===----------------------------------------------------------------------===//

#include "analysis/PolicyAudit.h"
#include "core/TableRegistry.h"
#include "mips/Mips.h"
#include "mips/MipsPolicy.h"

#include <gtest/gtest.h>

#include <vector>

using namespace rocksalt;
using namespace rocksalt::mips;

namespace {

/// Appends one instruction word big-endian (the byte order the MIPS
/// grammars consume).
void putWord(std::vector<uint8_t> &Img, uint32_t W) {
  Img.push_back(uint8_t(W >> 24));
  Img.push_back(uint8_t(W >> 16));
  Img.push_back(uint8_t(W >> 8));
  Img.push_back(uint8_t(W));
}

uint32_t adduWord(uint8_t Rd = 3, uint8_t Rs = 1, uint8_t Rt = 2) {
  Instr I;
  I.Opc = Op::ADDU;
  I.Rs = Rs;
  I.Rt = Rt;
  I.Rd = Rd;
  return encode(I);
}

/// `and $t9, $t9, $t6` — the mask half of the MIPS nacljmp.
uint32_t maskWord() {
  Instr I;
  I.Opc = Op::AND;
  I.Rs = MipsJumpReg;
  I.Rt = MipsMaskReg;
  I.Rd = MipsJumpReg;
  return encode(I);
}

/// `jr $t9` — the jump half.
uint32_t jrWord(uint8_t Rs = MipsJumpReg) {
  Instr I;
  I.Opc = Op::JR;
  I.Rs = Rs;
  return encode(I);
}

uint32_t beqWord(uint16_t Imm) {
  Instr I;
  I.Opc = Op::BEQ;
  I.Rs = 1;
  I.Rt = 2;
  I.Imm = Imm;
  return encode(I);
}

uint32_t jWord(uint32_t Target26) {
  Instr I;
  I.Opc = Op::J;
  I.Target = Target26;
  return encode(I);
}

/// An all-NCF image of \p Words addu instructions.
std::vector<uint8_t> nops(uint32_t Words) {
  std::vector<uint8_t> Img;
  for (uint32_t I = 0; I < Words; ++I)
    putWord(Img, adduWord());
  return Img;
}

core::CheckResult check(const std::vector<uint8_t> &Img) {
  return checkMips(Img.data(), uint32_t(Img.size()));
}

TEST(MipsPolicy, CompliantStraightLineAccepted) {
  std::vector<uint8_t> Img = nops(8); // two 16-byte bundles
  core::CheckResult R = check(Img);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Reason, core::RejectReason::None);
  for (uint32_t I = 0; I < Img.size(); ++I)
    EXPECT_EQ(R.Valid[I] != 0, I % 4 == 0) << "offset " << I;
}

TEST(MipsPolicy, MaskedJumpPairAccepted) {
  // Bundle: addu addu and($t9,$t6) jr($t9) — the pair sits inside one
  // 16-byte bundle, jump half at offset 12.
  std::vector<uint8_t> Img;
  putWord(Img, adduWord());
  putWord(Img, adduWord());
  putWord(Img, maskWord());
  putWord(Img, jrWord());
  core::CheckResult R = check(Img);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.PairJmp[12], 1); // jump half flagged
  EXPECT_EQ(R.Valid[8], 1);    // pair starts at the mask
  EXPECT_EQ(R.Valid[12], 0);   // mid-pair: not an instruction start
}

TEST(MipsPolicy, NakedIndirectJumpRejected) {
  // `jr $t9` without the preceding mask is exactly what the sandbox
  // forbids — jr is carved out of NoControlFlow entirely.
  std::vector<uint8_t> Img = nops(3);
  putWord(Img, jrWord());
  core::CheckResult R = check(Img);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Reason, core::RejectReason::NoParse);
}

TEST(MipsPolicy, JrThroughWrongRegisterRejected) {
  std::vector<uint8_t> Img = nops(2);
  putWord(Img, maskWord());
  putWord(Img, jrWord(/*Rs=*/8)); // jr $t0: not the sandboxed register
  core::CheckResult R = check(Img);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Reason, core::RejectReason::NoParse);
}

TEST(MipsPolicy, MaskAloneIsJustAnAluOp) {
  // The mask half on its own is a plain `and` — NoControlFlow accepts
  // it once the longer MaskedJump match fails.
  std::vector<uint8_t> Img = nops(2);
  putWord(Img, maskWord());
  putWord(Img, adduWord());
  EXPECT_TRUE(check(Img).Ok);
}

TEST(MipsPolicy, PairStraddlingBundleBoundaryRejected) {
  // Mask at offset 12, jr at 16: the pair crosses the bundle seam, so
  // offset 16 (a bundle start) is mid-match and the alignment sweep
  // rejects — the classic halfway-jump attack surface.
  std::vector<uint8_t> Img = nops(3);
  putWord(Img, maskWord());
  putWord(Img, jrWord());
  while (Img.size() % MipsBundleSize)
    putWord(Img, adduWord());
  core::CheckResult R = check(Img);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Reason, core::RejectReason::UnalignedBundle);
}

TEST(MipsPolicy, DirectJumpToInstructionStartAccepted) {
  // j to word index 0 — an absolute jump to the image base.
  std::vector<uint8_t> Img;
  putWord(Img, jWord(0));
  for (uint32_t I = 0; I < 3; ++I)
    putWord(Img, adduWord());
  core::CheckResult R = check(Img);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Target[0], 1);
}

TEST(MipsPolicy, BranchIntoPairInteriorRejected) {
  // beq at 0 with imm 2: dest = 4 + 2*4 = 12, the jump half of the
  // masked pair — a Target bit on a non-Valid byte (BadTarget).
  std::vector<uint8_t> Img;
  putWord(Img, beqWord(2));
  putWord(Img, adduWord());
  putWord(Img, maskWord());
  putWord(Img, jrWord());
  core::CheckResult R = check(Img);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Reason, core::RejectReason::BadTarget);
}

TEST(MipsPolicy, JumpPastImageEndRejected) {
  std::vector<uint8_t> Img;
  putWord(Img, jWord(64)); // dest 256, way outside a 16-byte image
  for (uint32_t I = 0; I < 3; ++I)
    putWord(Img, adduWord());
  core::CheckResult R = check(Img);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Reason, core::RejectReason::NoParse);
}

TEST(MipsPolicy, BackwardBranchInRangeAccepted) {
  // bne-shaped beq at offset 8 with imm -2: dest = 12 - 8 = 4.
  std::vector<uint8_t> Img = nops(2);
  putWord(Img, beqWord(uint16_t(-2)));
  putWord(Img, adduWord());
  core::CheckResult R = check(Img);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Target[4], 1);
}

TEST(MipsPolicy, TruncatedTrailingWordRejected) {
  std::vector<uint8_t> Img = nops(4);
  Img.push_back(0x00);
  Img.push_back(0x22); // half an instruction
  core::CheckResult R = check(Img);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Reason, core::RejectReason::NoParse);
}

//===----------------------------------------------------------------------===//
// Registry entry + tagged serialization.
//===----------------------------------------------------------------------===//

TEST(MipsPolicy, RegistryEntryMatchesPinnedShape) {
  const core::TableEntry &E = mipsTableEntry();
  EXPECT_EQ(E.Key.Isa, core::IsaMips);
  EXPECT_EQ(E.Key.PolicySet, core::PolicySetNacl);
  EXPECT_EQ(E.Tables->NoControlFlow.numStates(), MipsNoControlFlowStates);
  EXPECT_EQ(E.Tables->DirectJump.numStates(), MipsDirectJumpStates);
  EXPECT_EQ(E.Tables->MaskedJump.numStates(), MipsMaskedJumpStates);
  EXPECT_NE(E.Fused, nullptr);
  EXPECT_EQ(E.HashHex.size(), 64u);
  EXPECT_NE(E.HashHex, core::defaultTableEntry().HashHex);
}

TEST(MipsPolicy, TaggedBlobRoundTripsAndRejectsX86Expectation) {
  const core::TableEntry &E = mipsTableEntry();
  core::PolicyTables Back = core::deserializePolicyTables(
      E.Blob, core::IsaMips, core::PolicySetNacl);
  EXPECT_EQ(core::serializePolicyTables(Back, core::IsaMips,
                                        core::PolicySetNacl),
            E.Blob);
  // An x86 consumer must reject the blob at the header.
  EXPECT_THROW(core::deserializePolicyTables(E.Blob), std::runtime_error);
  EXPECT_THROW(core::loadPolicyTables(E.Blob, E.HashHex), std::runtime_error);
  // The hash check itself is tag-independent (content address).
  EXPECT_EQ(re::verifyBlobHashHex(E.Blob), E.HashHex);
}

TEST(MipsPolicy, RawAndMinimizedDecideIdentically) {
  core::PolicyTables Raw = buildMipsPolicyTablesRaw();
  const core::PolicyTables &Min = *mipsTableEntry().Tables;
  // Fixed-width ISA: minimization should change nothing, and the
  // verdicts must agree on every probe image in this file.
  std::vector<std::vector<uint8_t>> Probes;
  Probes.push_back(nops(8));
  {
    std::vector<uint8_t> Img = nops(2);
    putWord(Img, maskWord());
    putWord(Img, jrWord());
    Probes.push_back(std::move(Img));
  }
  {
    std::vector<uint8_t> Img = nops(3);
    putWord(Img, jrWord());
    Probes.push_back(std::move(Img));
  }
  for (const auto &Img : Probes) {
    core::CheckResult A = checkMips(Raw, Img.data(), uint32_t(Img.size()));
    core::CheckResult B = checkMips(Min, Img.data(), uint32_t(Img.size()));
    EXPECT_EQ(A.Ok, B.Ok);
    EXPECT_EQ(A.Reason, B.Reason);
    EXPECT_EQ(A.Valid, B.Valid);
    EXPECT_EQ(A.Target, B.Target);
    EXPECT_EQ(A.PairJmp, B.PairJmp);
  }
}

//===----------------------------------------------------------------------===//
// The 13-obligation meta-audit over the MIPS tables.
//===----------------------------------------------------------------------===//

TEST(MipsPolicy, MetaAuditDischargesAllThirteenObligations) {
  analysis::AuditReport R = analysis::auditMipsPolicy();
  EXPECT_TRUE(R.Pass) << R.render();
  EXPECT_EQ(R.Findings.size(), 13u);
  for (const analysis::AuditFinding &F : R.Findings)
    EXPECT_TRUE(F.Pass) << F.Check << ": " << F.Detail;
  EXPECT_LE(R.LargestMinimized, analysis::PaperMaxPolicyStates);
  // Spot-check the obligations by name — same set as the x86 gate.
  EXPECT_NE(R.find("disjoint(MaskedJump,NoControlFlow)"), nullptr);
  EXPECT_NE(R.find("decodes(MaskedJump)"), nullptr);
  EXPECT_NE(R.find("state-bound"), nullptr);
}

} // namespace
