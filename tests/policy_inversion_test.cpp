//===- tests/policy_inversion_test.cpp ------------------------*- C++ -*-===//
//
// The inversion principles of paper section 4.1, checked generatively:
// for each policy regex, random members of its language are sampled (by
// derivative walks) and decoded; the resulting abstract syntax must fall
// in exactly the class the correctness proof assumes:
//
//   * DirectJump matches only (near) JMP, Jcc, or CALL with an
//     immediate operand;
//   * MaskedJump matches only AND r, $-32 immediately followed by
//     JMP/CALL through the same register r (r != ESP);
//   * NoControlFlow matches only instructions that neither touch the
//     PC (beyond fall-through) nor the segment registers — checked
//     against the RTL translation itself: no SetLoc to PC/SegVal/
//     SegBase/SegLimit other than the final fall-through PC update.
//
// Also: every policy language is contained in the instruction grammar's
// language (the "language containment" lemma of section 4.1).
//
//===----------------------------------------------------------------------===//

#include "core/Policy.h"
#include "sem/Translate.h"
#include "x86/FastDecoder.h"
#include "x86/GrammarDecoder.h"
#include "x86/Printer.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::core;
using x86::Opcode;

namespace {

std::string hexOf(const std::vector<uint8_t> &B) {
  std::string S;
  char Buf[4];
  for (uint8_t X : B) {
    std::snprintf(Buf, sizeof(Buf), "%02x ", X);
    S += Buf;
  }
  return S;
}

/// Samples N byte strings from a policy regex.
std::vector<std::vector<uint8_t>> sampleCorpus(re::Factory &F, re::Regex R,
                                               int N, uint64_t Seed) {
  std::vector<std::vector<uint8_t>> Out;
  uint64_t State = Seed;
  for (int I = 0; I < N * 3 && int(Out.size()) < N; ++I) {
    auto B = F.sampleBytes(R, State);
    if (B && !B->empty())
      Out.push_back(std::move(*B));
  }
  return Out;
}

} // namespace

TEST(PolicyInversion, DirectJumpClass) {
  re::Factory F;
  PolicyGrammars P = buildPolicyGrammars(F);
  auto Corpus = sampleCorpus(F, P.DirectJumpRe, 300, 11);
  ASSERT_GT(Corpus.size(), 100u);
  for (const auto &Bytes : Corpus) {
    auto D = x86::fastDecode(Bytes);
    ASSERT_TRUE(D.has_value()) << hexOf(Bytes);
    ASSERT_EQ(size_t(D->Length), Bytes.size()) << hexOf(Bytes);
    // (near) JMP, Jcc, or CALL with an immediate (pc-relative) operand.
    EXPECT_TRUE(D->I.Op == Opcode::JMP || D->I.Op == Opcode::Jcc ||
                D->I.Op == Opcode::CALL)
        << x86::printInstr(D->I);
    EXPECT_TRUE(D->I.Near);
    EXPECT_FALSE(D->I.Absolute);
    EXPECT_TRUE(D->I.Op1.isImm());
  }
}

TEST(PolicyInversion, MaskedJumpClass) {
  re::Factory F;
  PolicyGrammars P = buildPolicyGrammars(F);
  auto Corpus = sampleCorpus(F, P.MaskedJumpRe, 200, 22);
  ASSERT_GT(Corpus.size(), 50u);
  for (const auto &Bytes : Corpus) {
    ASSERT_EQ(Bytes.size(), 5u) << hexOf(Bytes);
    // First instruction: AND r, 0xFFFFFFE0.
    auto Mask = x86::fastDecode(Bytes.data(), 3);
    ASSERT_TRUE(Mask && Mask->Length == 3) << hexOf(Bytes);
    EXPECT_EQ(Mask->I.Op, Opcode::AND);
    ASSERT_TRUE(Mask->I.Op1.isReg());
    x86::Reg R = Mask->I.Op1.R;
    EXPECT_NE(R, x86::Reg::ESP);
    EXPECT_EQ(Mask->I.Op2, x86::Operand::imm(0xFFFFFFE0));
    // Second: JMP or CALL through the same register.
    auto Jmp = x86::fastDecode(Bytes.data() + 3, 2);
    ASSERT_TRUE(Jmp && Jmp->Length == 2) << hexOf(Bytes);
    EXPECT_TRUE(Jmp->I.Op == Opcode::JMP || Jmp->I.Op == Opcode::CALL);
    EXPECT_TRUE(Jmp->I.Near);
    EXPECT_TRUE(Jmp->I.Absolute);
    EXPECT_EQ(Jmp->I.Op1, x86::Operand::reg(R)) << hexOf(Bytes);
  }
}

TEST(PolicyInversion, NoControlFlowClassViaRtl) {
  // Strongest form: the RTL translation of every sampled NoControlFlow
  // member writes neither the segment locations nor the PC (except the
  // final fall-through update) — properties (1) and (3) of the paper's
  // case analysis, checked on the semantics itself.
  re::Factory F;
  PolicyGrammars P = buildPolicyGrammars(F);
  auto Corpus = sampleCorpus(F, P.NoControlFlowRe, 500, 33);
  ASSERT_GT(Corpus.size(), 200u);

  for (const auto &Bytes : Corpus) {
    auto D = x86::fastDecode(Bytes);
    ASSERT_TRUE(D.has_value()) << hexOf(Bytes);
    ASSERT_EQ(size_t(D->Length), Bytes.size()) << hexOf(Bytes);

    sem::Translation T = sem::translate(D->I, D->Length);
    int PcWrites = 0;
    bool SegWrites = false, HitError = false, HasFault = false;
    for (const rtl::RtlInstr &I : T.Prog) {
      if (I.K == rtl::RtlInstr::Kind::SetLoc) {
        switch (I.Location.K) {
        case rtl::Loc::Kind::PC:
          ++PcWrites;
          break;
        case rtl::Loc::Kind::SegVal:
        case rtl::Loc::Kind::SegBase:
        case rtl::Loc::Kind::SegLimit:
          SegWrites = true;
          break;
        default:
          break;
        }
      }
      if (I.K == rtl::RtlInstr::Kind::Error)
        HitError = true;
      if (I.K == rtl::RtlInstr::Kind::Fault)
        HasFault = true;
    }
    EXPECT_FALSE(SegWrites) << x86::printInstr(D->I);
    EXPECT_FALSE(HitError)
        << "policy admits an instruction without semantics: "
        << x86::printInstr(D->I);
    // Exactly the fall-through PC update (instructions that surely fault,
    // like `aam 0`, may end before reaching it).
    EXPECT_TRUE(PcWrites == 1 || (HasFault && PcWrites == 0))
        << x86::printInstr(D->I);
    if (!T.Prog.empty() && D->I.Op != Opcode::HLT) {
      const rtl::RtlInstr &Last = T.Prog.back();
      bool LastIsPc = Last.K == rtl::RtlInstr::Kind::SetLoc &&
                      Last.Location.K == rtl::Loc::Kind::PC;
      EXPECT_TRUE(LastIsPc || D->I.Pfx.Rep != x86::Prefix::RepKind::None)
          << x86::printInstr(D->I);
    }
  }
}

TEST(PolicyInversion, LanguageContainment) {
  // Every string of every policy language must be accepted by the full
  // instruction grammar (as a sequence of 1-2 instructions) — the
  // "subsets of x86grammar" lemma.
  re::Factory F;
  PolicyGrammars P = buildPolicyGrammars(F);

  for (re::Regex R : {P.NoControlFlowRe, P.DirectJumpRe}) {
    auto Corpus = sampleCorpus(F, R, 200, 44);
    ASSERT_GT(Corpus.size(), 80u);
    for (const auto &Bytes : Corpus) {
      auto G = x86::grammarDecode(Bytes);
      ASSERT_TRUE(G.has_value()) << hexOf(Bytes);
      EXPECT_EQ(size_t(G->Length), Bytes.size()) << hexOf(Bytes);
    }
  }
  // MaskedJump members are two consecutive grammar instructions.
  auto Pairs = sampleCorpus(F, P.MaskedJumpRe, 100, 55);
  for (const auto &Bytes : Pairs) {
    auto First = x86::grammarDecode(Bytes);
    ASSERT_TRUE(First.has_value()) << hexOf(Bytes);
    auto Second = x86::grammarDecode(Bytes.data() + First->Length,
                                     Bytes.size() - First->Length);
    ASSERT_TRUE(Second.has_value()) << hexOf(Bytes);
    EXPECT_EQ(size_t(First->Length + Second->Length), Bytes.size());
  }
}

TEST(PolicyInversion, SampledMembersReAccepted) {
  // Round trip: everything sampled from a policy regex must be accepted
  // by that policy's DFA (sampling and tables agree).
  re::Factory F;
  PolicyGrammars P = buildPolicyGrammars(F);
  const PolicyTables &T = policyTables();

  struct Case {
    re::Regex R;
    const re::Dfa *D;
  } Cases[] = {{P.NoControlFlowRe, &T.NoControlFlow},
               {P.DirectJumpRe, &T.DirectJump},
               {P.MaskedJumpRe, &T.MaskedJump}};
  for (const Case &C : Cases) {
    auto Corpus = sampleCorpus(F, C.R, 150, 66);
    ASSERT_GT(Corpus.size(), 50u);
    for (const auto &Bytes : Corpus) {
      uint16_t S = static_cast<uint16_t>(C.D->Start);
      bool Rejected = false, Accepted = false;
      for (uint8_t B : Bytes) {
        S = C.D->step(S, B);
        if (C.D->Rejects[S]) {
          Rejected = true;
          break;
        }
      }
      Accepted = !Rejected && C.D->Accepts[S];
      EXPECT_TRUE(Accepted) << hexOf(Bytes);
    }
  }
}
