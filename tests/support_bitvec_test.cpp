//===- tests/support_bitvec_test.cpp --------------------------*- C++ -*-===//
//
// Unit and property tests for the width-indexed bit-vector library.
//
//===----------------------------------------------------------------------===//

#include "support/Bitvec.h"
#include "support/Oracle.h"

#include <gtest/gtest.h>

using rocksalt::Bitvec;
using rocksalt::Rng;

TEST(Bitvec, ConstructionMasksToWidth) {
  EXPECT_EQ(Bitvec(8, 0x1FF).bits(), 0xFFu);
  EXPECT_EQ(Bitvec(1, 2).bits(), 0u);
  EXPECT_EQ(Bitvec(32, 0x1'0000'0001ull).bits(), 1u);
  EXPECT_EQ(Bitvec(64, ~uint64_t(0)).bits(), ~uint64_t(0));
}

TEST(Bitvec, SignedInterpretation) {
  EXPECT_EQ(Bitvec(8, 0xFF).toSigned(), -1);
  EXPECT_EQ(Bitvec(8, 0x80).toSigned(), -128);
  EXPECT_EQ(Bitvec(8, 0x7F).toSigned(), 127);
  EXPECT_EQ(Bitvec(32, 0xFFFFFFFF).toSigned(), -1);
  EXPECT_EQ(Bitvec(1, 1).toSigned(), -1);
  EXPECT_EQ(Bitvec(64, ~uint64_t(0)).toSigned(), -1);
}

TEST(Bitvec, FromSignedRoundTrips) {
  for (int64_t V : {-128, -1, 0, 1, 127}) {
    EXPECT_EQ(Bitvec::fromSigned(8, V).toSigned(), V) << V;
  }
  EXPECT_EQ(Bitvec::fromSigned(32, -32).bits(), 0xFFFFFFE0u);
}

TEST(Bitvec, AddWrapsModulo) {
  EXPECT_EQ(Bitvec(8, 0xFF).add(Bitvec(8, 1)).bits(), 0u);
  EXPECT_EQ(Bitvec(32, 0xFFFFFFFF).add(Bitvec(32, 2)).bits(), 1u);
}

TEST(Bitvec, SubWrapsModulo) {
  EXPECT_EQ(Bitvec(8, 0).sub(Bitvec(8, 1)).bits(), 0xFFu);
}

TEST(Bitvec, NegIsTwosComplement) {
  EXPECT_EQ(Bitvec(8, 1).neg().bits(), 0xFFu);
  EXPECT_EQ(Bitvec(8, 0x80).neg().bits(), 0x80u); // INT_MIN fixpoint
  EXPECT_EQ(Bitvec(8, 0).neg().bits(), 0u);
}

TEST(Bitvec, MulWraps) {
  EXPECT_EQ(Bitvec(8, 16).mul(Bitvec(8, 16)).bits(), 0u);
  EXPECT_EQ(Bitvec(16, 255).mul(Bitvec(16, 255)).bits(), 65025u);
}

TEST(Bitvec, UnsignedDivision) {
  EXPECT_EQ(Bitvec(8, 100).divu(Bitvec(8, 7)).bits(), 14u);
  EXPECT_EQ(Bitvec(8, 100).modu(Bitvec(8, 7)).bits(), 2u);
}

TEST(Bitvec, SignedDivisionTruncatesTowardZero) {
  // x86 IDIV truncates toward zero: -7 / 2 = -3 rem -1.
  Bitvec N = Bitvec::fromSigned(8, -7);
  Bitvec D = Bitvec(8, 2);
  EXPECT_EQ(N.divs(D).toSigned(), -3);
  EXPECT_EQ(N.mods(D).toSigned(), -1);
  // 7 / -2 = -3 rem 1.
  EXPECT_EQ(Bitvec(8, 7).divs(Bitvec::fromSigned(8, -2)).toSigned(), -3);
  EXPECT_EQ(Bitvec(8, 7).mods(Bitvec::fromSigned(8, -2)).toSigned(), 1);
}

TEST(Bitvec, ShiftBasics) {
  EXPECT_EQ(Bitvec(8, 0x81).shl(Bitvec(8, 1)).bits(), 0x02u);
  EXPECT_EQ(Bitvec(8, 0x81).shru(Bitvec(8, 1)).bits(), 0x40u);
  EXPECT_EQ(Bitvec(8, 0x81).shrs(Bitvec(8, 1)).bits(), 0xC0u);
  EXPECT_EQ(Bitvec(8, 1).shl(Bitvec(8, 8)).bits(), 0u);  // overshift
  EXPECT_EQ(Bitvec(8, 0x80).shrs(Bitvec(8, 200)).bits(), 0xFFu);
}

TEST(Bitvec, RotateBasics) {
  EXPECT_EQ(Bitvec(8, 0x81).rol(Bitvec(8, 1)).bits(), 0x03u);
  EXPECT_EQ(Bitvec(8, 0x81).ror(Bitvec(8, 1)).bits(), 0xC0u);
  EXPECT_EQ(Bitvec(8, 0x5A).rol(Bitvec(8, 8)).bits(), 0x5Au);
  EXPECT_EQ(Bitvec(32, 0x80000001).rol(Bitvec(32, 4)).bits(), 0x18u);
}

TEST(Bitvec, Comparisons) {
  EXPECT_TRUE(Bitvec(8, 1).ltu(Bitvec(8, 0xFF)));
  EXPECT_FALSE(Bitvec(8, 1).lts(Bitvec(8, 0xFF))); // 1 < -1 is false
  EXPECT_TRUE(Bitvec(8, 0xFF).lts(Bitvec(8, 1)));
  EXPECT_TRUE(Bitvec(8, 5).eq(Bitvec(8, 5)));
}

TEST(Bitvec, Extensions) {
  EXPECT_EQ(Bitvec(8, 0xFF).zext(32).bits(), 0xFFu);
  EXPECT_EQ(Bitvec(8, 0xFF).sext(32).bits(), 0xFFFFFFFFu);
  EXPECT_EQ(Bitvec(8, 0x7F).sext(32).bits(), 0x7Fu);
  EXPECT_EQ(Bitvec(32, 0x1234ABCD).zext(8).bits(), 0xCDu);
  EXPECT_EQ(Bitvec(32, 0x1234ABCD).sext(16).bits(), 0xABCDu);
}

TEST(Bitvec, Concat) {
  Bitvec Hi(8, 0x12), Lo(8, 0x34);
  Bitvec C = Hi.concat(Lo);
  EXPECT_EQ(C.width(), 16u);
  EXPECT_EQ(C.bits(), 0x1234u);
}

TEST(Bitvec, Parity8) {
  EXPECT_TRUE(Bitvec(8, 0x00).parity8());  // zero bits set: even
  EXPECT_FALSE(Bitvec(8, 0x01).parity8()); // one bit
  EXPECT_TRUE(Bitvec(8, 0x03).parity8());  // two bits
  EXPECT_TRUE(Bitvec(32, 0xFFFFFF00).parity8()); // only low 8 bits count
}

TEST(Bitvec, MsbLsbBit) {
  Bitvec V(8, 0x82);
  EXPECT_TRUE(V.msb());
  EXPECT_FALSE(V.lsb());
  EXPECT_TRUE(V.bit(1));
  EXPECT_FALSE(V.bit(2));
}

//===----------------------------------------------------------------------===//
// Algebraic property sweeps across widths.
//===----------------------------------------------------------------------===//

class BitvecProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitvecProperty, AddCommutesAndAssociates) {
  uint32_t W = GetParam();
  Rng R(1234 + W);
  for (int I = 0; I < 200; ++I) {
    Bitvec A(W, R.next()), B(W, R.next()), C(W, R.next());
    EXPECT_EQ(A.add(B), B.add(A));
    EXPECT_EQ(A.add(B).add(C), A.add(B.add(C)));
  }
}

TEST_P(BitvecProperty, SubIsAddOfNeg) {
  uint32_t W = GetParam();
  Rng R(99 + W);
  for (int I = 0; I < 200; ++I) {
    Bitvec A(W, R.next()), B(W, R.next());
    EXPECT_EQ(A.sub(B), A.add(B.neg()));
  }
}

TEST_P(BitvecProperty, DeMorgan) {
  uint32_t W = GetParam();
  Rng R(7 + W);
  for (int I = 0; I < 200; ++I) {
    Bitvec A(W, R.next()), B(W, R.next());
    EXPECT_EQ(A.logand(B).lognot(), A.lognot().logor(B.lognot()));
    EXPECT_EQ(A.logor(B).lognot(), A.lognot().logand(B.lognot()));
  }
}

TEST_P(BitvecProperty, XorSelfIsZero) {
  uint32_t W = GetParam();
  Rng R(31 + W);
  for (int I = 0; I < 100; ++I) {
    Bitvec A(W, R.next());
    EXPECT_TRUE(A.logxor(A).isZero());
    EXPECT_EQ(A.logxor(Bitvec::zero(W)), A);
  }
}

TEST_P(BitvecProperty, RotateInverses) {
  uint32_t W = GetParam();
  Rng R(55 + W);
  for (int I = 0; I < 100; ++I) {
    Bitvec A(W, R.next());
    Bitvec K(W, R.below(2 * W));
    EXPECT_EQ(A.rol(K).ror(K), A);
    EXPECT_EQ(A.ror(K).rol(K), A);
  }
}

TEST_P(BitvecProperty, DivModReconstructs) {
  uint32_t W = GetParam();
  Rng R(77 + W);
  for (int I = 0; I < 200; ++I) {
    Bitvec A(W, R.next());
    Bitvec B(W, R.next());
    if (B.isZero())
      continue;
    EXPECT_EQ(A.divu(B).mul(B).add(A.modu(B)), A);
    // Signed reconstruction, avoiding the INT_MIN/-1 edge at width 64.
    if (W < 64) {
      EXPECT_EQ(A.divs(B).mul(B).add(A.mods(B)), A);
    }
  }
}

TEST_P(BitvecProperty, ZextPreservesUnsignedSextPreservesSigned) {
  uint32_t W = GetParam();
  if (W >= 64)
    return;
  Rng R(13 + W);
  for (int I = 0; I < 100; ++I) {
    Bitvec A(W, R.next());
    EXPECT_EQ(A.zext(64).bits(), A.bits());
    EXPECT_EQ(A.sext(64).toSigned(), A.toSigned());
    EXPECT_EQ(A.zext(W), A);
    EXPECT_EQ(A.sext(W), A);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitvecProperty,
                         ::testing::Values(1u, 8u, 16u, 32u, 64u));

//===----------------------------------------------------------------------===//
// Rng sanity.
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicForSeed) {
  Rng A(5), B(5);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, BelowStaysInBounds) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng R(11);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    uint64_t V = R.range(3, 6);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 6u);
    SawLo |= (V == 3);
    SawHi |= (V == 6);
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Oracle, ChooseWidthAndAccounting) {
  rocksalt::Oracle O(3);
  Bitvec V = O.choose(5);
  EXPECT_EQ(V.width(), 5u);
  O.choose(32);
  EXPECT_EQ(O.bitsConsumed(), 37u);
}

TEST(Oracle, ReproducibleAcrossInstances) {
  rocksalt::Oracle A(21), B(21);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(A.choose(32), B.choose(32));
}
