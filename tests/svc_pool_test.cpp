//===- tests/svc_pool_test.cpp ---------------------------------*- C++ -*-===//
//
// VerifierPool and Metrics behavior: batch submission resolves every
// future with the sequential checker's verdict, task groups join via
// help (so nested fan-out on a single-threaded pool cannot deadlock),
// steals happen under imbalance, and the metrics layer counts what
// actually happened.
//
//===----------------------------------------------------------------------===//

#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"
#include "svc/Metrics.h"
#include "svc/ParallelVerifier.h"
#include "svc/VerifierPool.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace rocksalt;

namespace {

TEST(MetricsTest, HistogramBucketsAndQuantiles) {
  svc::Histogram H;
  for (uint64_t V : {0ull, 1ull, 2ull, 3ull, 100ull, 1000ull, 1000000ull})
    H.record(V);
  EXPECT_EQ(H.count(), 7u);
  EXPECT_EQ(H.sum(), 1001106u);
  EXPECT_EQ(H.max(), 1000000u);
  EXPECT_EQ(H.bucket(0), 1u); // the single zero
  EXPECT_EQ(H.bucket(1), 1u); // 1
  EXPECT_EQ(H.bucket(2), 2u); // 2, 3
  EXPECT_LE(H.quantile(0.5), H.quantile(0.99));
  EXPECT_GE(H.quantile(1.0), 100u);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.quantile(0.5), 0u);
}

TEST(MetricsTest, DumpExposesEveryFamily) {
  svc::Metrics M;
  M.ImagesVerified.add(3);
  M.QueueDepth.add(2);
  M.VerifyNanos.record(12345);
  std::string D = M.dump();
  EXPECT_NE(D.find("images_verified 3"), std::string::npos);
  EXPECT_NE(D.find("queue_depth 2"), std::string::npos);
  EXPECT_NE(D.find("verify_nanos_count 1"), std::string::npos);
  EXPECT_NE(D.find("verify_nanos_bucket{le="), std::string::npos);
  EXPECT_NE(D.find("seam_rescans 0"), std::string::npos);
}

TEST(VerifierPoolTest, TaskGroupRunsEverything) {
  svc::Metrics M;
  svc::VerifierPool Pool(svc::VerifierPool::Options{4}, &M);
  std::atomic<uint32_t> Hits{0};
  svc::VerifierPool::TaskGroup G;
  for (int I = 0; I < 1000; ++I)
    Pool.run(G, [&Hits] { Hits.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait(G);
  EXPECT_EQ(Hits.load(), 1000u);
  EXPECT_TRUE(G.done());
  EXPECT_GE(M.TasksRun.get(), 1000u);
  EXPECT_EQ(M.QueueDepth.get(), 0);
}

TEST(VerifierPoolTest, NestedFanOutOnOneThreadDoesNotDeadlock) {
  // A pool job that itself fans out and waits: with a single worker this
  // only terminates because wait() helps drain the queue.
  svc::Metrics M;
  svc::VerifierPool Pool(svc::VerifierPool::Options{1}, &M);
  std::atomic<uint32_t> Inner{0};
  svc::VerifierPool::TaskGroup Outer;
  Pool.run(Outer, [&] {
    svc::VerifierPool::TaskGroup G;
    for (int I = 0; I < 16; ++I)
      Pool.run(G, [&Inner] { Inner.fetch_add(1); });
    Pool.wait(G);
  });
  Pool.wait(Outer);
  EXPECT_EQ(Inner.load(), 16u);
}

TEST(VerifierPoolTest, ChunkParallelInsidePoolJob) {
  // ParallelVerifier used from within a pool job (the service's nested
  // shape: batch across images, shards within an image).
  svc::Metrics M;
  svc::VerifierPool Pool(svc::VerifierPool::Options{2}, &M);
  nacl::WorkloadOptions WO;
  WO.TargetBytes = 16384;
  std::vector<uint8_t> Code = nacl::generateWorkload(WO);
  core::RockSalt Seq;
  bool Expect = Seq.check(Code).Ok;

  std::atomic<int> Verdict{-1};
  svc::VerifierPool::TaskGroup G;
  Pool.run(G, [&] {
    svc::ParallelVerifier PV(Pool);
    Verdict.store(PV.verify(Code) ? 1 : 0);
  });
  Pool.wait(G);
  EXPECT_EQ(Verdict.load(), Expect ? 1 : 0);
}

TEST(VerifierPoolTest, BatchSubmitMatchesSequentialVerdicts) {
  svc::Metrics M;
  svc::VerifierPool Pool(svc::VerifierPool::Options{4}, &M);
  core::RockSalt Seq;
  Rng R(99);

  std::vector<std::vector<uint8_t>> Images;
  uint64_t Bytes = 0;
  for (uint32_t I = 0; I < 48; ++I) {
    nacl::WorkloadOptions WO;
    WO.TargetBytes = 512 + 128 * (I % 5);
    WO.Seed = 1000 + I;
    std::vector<uint8_t> Img = nacl::generateWorkload(WO);
    if (I % 3 == 1)
      Img = nacl::mutateRandom(Img, R);
    if (I % 3 == 2)
      if (auto Bad = nacl::applyAttack(Img, nacl::Attack::InsertRet, R))
        Img = *Bad;
    Bytes += Img.size();
    Images.push_back(std::move(Img));
  }

  auto Futures = Pool.submit(Images);
  ASSERT_EQ(Futures.size(), Images.size());
  uint64_t Accepted = 0, Rejected = 0;
  for (size_t I = 0; I < Futures.size(); ++I) {
    core::CheckResult R2 = Futures[I].get();
    core::CheckResult S = Seq.check(Images[I]);
    EXPECT_EQ(R2.Ok, S.Ok) << "image " << I;
    EXPECT_EQ(R2.Reason, S.Reason) << "image " << I;
    (R2.Ok ? Accepted : Rejected)++;
  }

  EXPECT_EQ(M.ImagesSubmitted.get(), Images.size());
  EXPECT_EQ(M.ImagesVerified.get(), Images.size());
  EXPECT_EQ(M.ImagesAccepted.get(), Accepted);
  EXPECT_EQ(M.ImagesRejected.get(), Rejected);
  EXPECT_EQ(M.BytesVerified.get(), Bytes);
  EXPECT_EQ(M.VerifyNanos.count(), Images.size());
  EXPECT_EQ(M.BatchImages.count(), 1u);
  EXPECT_EQ(M.QueueDepth.get(), 0);
  EXPECT_GT(Rejected, 0u); // the attacked images really exercised rejects
}

// Regression for the submitOne lifetime bug: the raw-pointer overload
// captured Code into the deferred task, so a caller whose buffer died
// before the worker ran handed the verifier freed memory. The owned
// overloads pin the payload inside the task; this test frees every
// source buffer before forcing the futures — under ASan the old code
// is a guaranteed heap-use-after-free.
TEST(VerifierPoolTest, SubmitOneOwnedOutlivesCallerBuffer) {
  svc::Metrics M;
  svc::VerifierPool Pool(svc::VerifierPool::Options{2}, &M);
  nacl::WorkloadOptions WO;
  WO.TargetBytes = 2048;
  core::RockSalt Seq;
  core::CheckResult Expect = Seq.check(nacl::generateWorkload(WO));

  std::vector<std::future<core::CheckResult>> Futures;
  for (int I = 0; I < 32; ++I) {
    std::vector<uint8_t> Img = nacl::generateWorkload(WO);
    Futures.push_back(Pool.submitOne(std::move(Img)));
    // Img is moved-from here and destroyed at scope end, before get().
  }
  for (auto &F : Futures) {
    core::CheckResult R = F.get();
    EXPECT_EQ(R.Ok, Expect.Ok);
    EXPECT_EQ(R.Reason, Expect.Reason);
  }
}

TEST(VerifierPoolTest, SubmitOneSharedPtrKeepsPayloadAlive) {
  svc::Metrics M;
  svc::VerifierPool Pool(svc::VerifierPool::Options{2}, &M);
  nacl::WorkloadOptions WO;
  WO.TargetBytes = 1024;
  core::RockSalt Seq;

  std::future<core::CheckResult> F;
  core::CheckResult Expect;
  {
    auto Img = std::make_shared<const std::vector<uint8_t>>(
        nacl::generateWorkload(WO));
    Expect = Seq.check(*Img);
    F = Pool.submitOne(Img);
    // The caller's reference drops here; the task's copy must keep the
    // image alive until the verdict resolves.
  }
  core::CheckResult R = F.get();
  EXPECT_EQ(R.Ok, Expect.Ok);
  EXPECT_EQ(R.Reason, Expect.Reason);
}

TEST(VerifierPoolTest, SubmitOwnedBatchOutlivesCallerBuffers) {
  svc::Metrics M;
  svc::VerifierPool Pool(svc::VerifierPool::Options{4}, &M);
  core::RockSalt Seq;
  Rng R(5);

  std::vector<core::CheckResult> Expect;
  std::vector<std::future<core::CheckResult>> Futures;
  {
    std::vector<std::vector<uint8_t>> Images;
    for (uint32_t I = 0; I < 24; ++I) {
      nacl::WorkloadOptions WO;
      WO.TargetBytes = 512;
      WO.Seed = 7000 + I;
      std::vector<uint8_t> Img = nacl::generateWorkload(WO);
      if (I & 1)
        Img = nacl::mutateRandom(Img, R);
      Expect.push_back(Seq.check(Img));
      Images.push_back(std::move(Img));
    }
    Futures = Pool.submitOwned(std::move(Images));
    // Images (the caller's handle) is destroyed here — the exact shape
    // of a service session whose socket buffer dies per-request.
  }
  ASSERT_EQ(Futures.size(), Expect.size());
  for (size_t I = 0; I < Futures.size(); ++I) {
    core::CheckResult Got = Futures[I].get();
    EXPECT_EQ(Got.Ok, Expect[I].Ok) << "image " << I;
    EXPECT_EQ(Got.Reason, Expect[I].Reason) << "image " << I;
  }
  EXPECT_EQ(M.ImagesVerified.get(), Expect.size());
}

// Regression for the external-waiter spin: a non-worker thread in
// wait() used to busy-yield until the group drained. It now blocks on
// the completion cv; this test drives many group joins from external
// threads concurrently — under TSan it also certifies the cv handoff.
TEST(VerifierPoolTest, ExternalThreadsBlockInWaitUntilGroupDrains) {
  svc::Metrics M;
  svc::VerifierPool Pool(svc::VerifierPool::Options{2}, &M);
  std::atomic<uint32_t> Done{0};
  std::vector<std::thread> Waiters;
  for (int W = 0; W < 4; ++W)
    Waiters.emplace_back([&] {
      for (int Round = 0; Round < 50; ++Round) {
        svc::VerifierPool::TaskGroup G;
        std::atomic<uint32_t> Hits{0};
        for (int I = 0; I < 8; ++I)
          Pool.run(G, [&Hits] { Hits.fetch_add(1); });
        Pool.wait(G);
        ASSERT_EQ(Hits.load(), 8u);
        ASSERT_TRUE(G.done());
        Done.fetch_add(1);
      }
    });
  for (auto &T : Waiters)
    T.join();
  EXPECT_EQ(Done.load(), 200u);
}

TEST(VerifierPoolTest, ConcurrentSubmitters) {
  svc::Metrics M;
  svc::VerifierPool Pool(svc::VerifierPool::Options{4}, &M);
  nacl::WorkloadOptions WO;
  WO.TargetBytes = 1024;
  std::vector<std::vector<uint8_t>> Images(8, nacl::generateWorkload(WO));

  std::vector<std::thread> Clients;
  std::atomic<uint32_t> OkCount{0};
  for (int C = 0; C < 4; ++C)
    Clients.emplace_back([&] {
      auto Futures = Pool.submit(Images);
      for (auto &F : Futures)
        if (F.get().Ok)
          OkCount.fetch_add(1);
    });
  for (auto &T : Clients)
    T.join();
  EXPECT_EQ(M.ImagesVerified.get(), 32u);
  EXPECT_EQ(OkCount.load(), 32u); // generated workloads all accept
}

} // namespace
