//===- tests/support_memory_test.cpp --------------------------*- C++ -*-===//

#include "support/Memory.h"
#include "support/Oracle.h"

#include <gtest/gtest.h>

using rocksalt::Memory;
using rocksalt::Rng;

TEST(Memory, UnwrittenReadsZero) {
  Memory M;
  EXPECT_EQ(M.load8(0), 0);
  EXPECT_EQ(M.load8(0xFFFFFFFF), 0);
  EXPECT_EQ(M.load(0x1234, 4), 0u);
  EXPECT_EQ(M.residentPages(), 0u);
}

TEST(Memory, ByteRoundTrip) {
  Memory M;
  M.store8(100, 0xAB);
  EXPECT_EQ(M.load8(100), 0xAB);
  EXPECT_EQ(M.load8(101), 0);
  EXPECT_EQ(M.residentPages(), 1u);
}

TEST(Memory, LittleEndianMultiByte) {
  Memory M;
  M.store(0x1000, 4, 0xDEADBEEF);
  EXPECT_EQ(M.load8(0x1000), 0xEF);
  EXPECT_EQ(M.load8(0x1001), 0xBE);
  EXPECT_EQ(M.load8(0x1002), 0xAD);
  EXPECT_EQ(M.load8(0x1003), 0xDE);
  EXPECT_EQ(M.load(0x1000, 4), 0xDEADBEEFu);
  EXPECT_EQ(M.load(0x1001, 2), 0xADBEu);
}

TEST(Memory, CrossPageAccess) {
  Memory M;
  uint32_t Addr = Memory::PageSize - 2;
  M.store(Addr, 4, 0x11223344);
  EXPECT_EQ(M.load(Addr, 4), 0x11223344u);
  EXPECT_EQ(M.residentPages(), 2u);
}

TEST(Memory, AddressWrapAround) {
  Memory M;
  M.store(0xFFFFFFFE, 4, 0xCAFEBABE);
  EXPECT_EQ(M.load8(0xFFFFFFFE), 0xBE);
  EXPECT_EQ(M.load8(0xFFFFFFFF), 0xBA);
  EXPECT_EQ(M.load8(0x00000000), 0xFE);
  EXPECT_EQ(M.load8(0x00000001), 0xCA);
  EXPECT_EQ(M.load(0xFFFFFFFE, 4), 0xCAFEBABEu);
}

TEST(Memory, BulkStoreLoad) {
  Memory M;
  std::vector<uint8_t> Data = {1, 2, 3, 4, 5, 6, 7, 8};
  M.storeBytes(0x2000, Data);
  EXPECT_EQ(M.loadBytes(0x2000, 8), Data);
  EXPECT_EQ(M.loadBytes(0x2004, 2), (std::vector<uint8_t>{5, 6}));
}

TEST(Memory, ClearDropsAllPages) {
  Memory M;
  M.store8(0, 1);
  M.store8(0x80000000, 2);
  M.clear();
  EXPECT_EQ(M.residentPages(), 0u);
  EXPECT_EQ(M.load8(0), 0);
}

TEST(Memory, RandomizedStoreLoadAgainstModel) {
  Memory M;
  std::unordered_map<uint32_t, uint8_t> Model;
  Rng R(2024);
  for (int I = 0; I < 5000; ++I) {
    uint32_t Addr = static_cast<uint32_t>(R.next());
    // Keep addresses in a few clusters so collisions actually happen.
    Addr &= 0x0003FFFF;
    uint8_t Val = static_cast<uint8_t>(R.next());
    if (R.flip()) {
      M.store8(Addr, Val);
      Model[Addr] = Val;
    } else {
      auto It = Model.find(Addr);
      uint8_t Expected = It == Model.end() ? 0 : It->second;
      ASSERT_EQ(M.load8(Addr), Expected) << "addr " << Addr;
    }
  }
}

TEST(Memory, WideLoadMatchesByteLoads) {
  Memory M;
  Rng R(7);
  for (int I = 0; I < 500; ++I) {
    uint32_t Addr = static_cast<uint32_t>(R.next());
    uint32_t N = static_cast<uint32_t>(R.range(1, 8));
    uint64_t V = R.next();
    M.store(Addr, N, V);
    uint64_t Got = 0;
    for (uint32_t J = 0; J < N; ++J)
      Got |= uint64_t(M.load8(Addr + J)) << (8 * J);
    uint64_t Mask = N == 8 ? ~uint64_t(0) : ((uint64_t(1) << (8 * N)) - 1);
    ASSERT_EQ(Got, V & Mask);
    ASSERT_EQ(M.load(Addr, N), V & Mask);
  }
}
