//===- tests/grammar_test.cpp ---------------------------------*- C++ -*-===//
//
// Tests for the typed grammar combinators (paper section 2.1/2.2):
// derivative-based parsing, semantic actions, extraction, the CALL-style
// multi-alternative grammar from Figure 2, and strip() agreement with the
// untyped regex layer.
//
//===----------------------------------------------------------------------===//

#include "grammar/Grammar.h"
#include "support/Oracle.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::gram;

TEST(Grammar, EpsExtractsUnit) {
  EXPECT_EQ(eps().extract().size(), 1u);
}

TEST(Grammar, VoidExtractsNothing) {
  EXPECT_TRUE(voidG<int>().extract().empty());
  EXPECT_TRUE(voidG<int>().isVoid());
}

TEST(Grammar, PureYieldsItsValue) {
  auto G = pure<int>(42);
  auto V = G.extract();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], 42);
  EXPECT_TRUE(G.derivBit(false).isVoid());
}

TEST(Grammar, BitLitMatchesOnlyItsBit) {
  auto G = bitLit(true);
  EXPECT_TRUE(G.extract().empty());
  EXPECT_FALSE(G.derivBit(true).isVoid());
  EXPECT_FALSE(G.derivBit(true).extract().empty());
  EXPECT_TRUE(G.derivBit(false).isVoid());
}

TEST(Grammar, AnyBitCapturesTheBit) {
  auto G = anyBit();
  auto V1 = G.derivBit(true).extract();
  ASSERT_EQ(V1.size(), 1u);
  EXPECT_TRUE(V1[0]);
  auto V0 = G.derivBit(false).extract();
  ASSERT_EQ(V0.size(), 1u);
  EXPECT_FALSE(V0[0]);
}

TEST(Grammar, CatPairsValues) {
  auto G = cat(anyBit(), anyBit());
  auto D = G.derivBit(true).derivBit(false);
  auto V = D.extract();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_TRUE(V[0].first);
  EXPECT_FALSE(V[0].second);
}

TEST(Grammar, AltTakesEitherBranch) {
  auto G = alt(mapWith(bitsG("10"), [](Unit) { return 1; }),
               mapWith(bitsG("01"), [](Unit) { return 2; }));
  auto A = G.derivBit(true).derivBit(false).extract();
  ASSERT_EQ(A.size(), 1u);
  EXPECT_EQ(A[0], 1);
  auto B = G.derivBit(false).derivBit(true).extract();
  ASSERT_EQ(B.size(), 1u);
  EXPECT_EQ(B[0], 2);
  EXPECT_TRUE(G.derivBit(true).derivBit(true).isVoid());
}

TEST(Grammar, MapTransformsValues) {
  auto G = mapWith(field(4), [](uint32_t V) { return V * 10; });
  Grammar<uint32_t> D = G;
  for (bool B : {true, false, false, true}) // 1001 = 9
    D = D.derivBit(B);
  auto V = D.extract();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], 90u);
}

TEST(Grammar, StarCollectsRepetitions) {
  auto G = star(mapWith(bitsG("1"), [](Unit) { return 7; }));
  EXPECT_EQ(G.extract().size(), 1u); // empty list
  auto D = G.derivBit(true).derivBit(true);
  auto V = D.extract();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], (std::vector<int>{7, 7}));
  EXPECT_TRUE(G.derivBit(false).isVoid());
}

TEST(Grammar, FieldIsMsbFirst) {
  auto G = field(8);
  auto D = G.derivByte(0xA5);
  auto V = D.extract();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], 0xA5u);
}

TEST(Grammar, HalfwordIsLittleEndian) {
  auto G = halfwordLE();
  auto D = G.derivByte(0x34).derivByte(0x12);
  auto V = D.extract();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], 0x1234u);
}

TEST(Grammar, WordIsLittleEndian) {
  auto G = wordLE();
  auto D = G.derivByte(0x78).derivByte(0x56).derivByte(0x34).derivByte(0x12);
  auto V = D.extract();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], 0x12345678u);
}

TEST(Grammar, ThenDropsLeft) {
  auto G = then(bitsG("1110"), field(4));
  auto D = G.derivByte(0xE9);
  auto V = D.extract();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], 9u);
}

TEST(Grammar, ParsePrefixFindsShortestMatch) {
  // Figure 2 in miniature: two-alternative CALL-like grammar where one
  // form is 1 byte + word and the other is 1 byte.
  struct MiniInstr {
    int Kind = 0;
    uint32_t Imm = 0;
  };
  auto CallRel = mapWith(then(bitsG("11101000"), wordLE()), [](uint32_t W) {
    return MiniInstr{1, W};
  });
  auto Nop =
      mapWith(bitsG("10010000"), [](Unit) { return MiniInstr{2, 0}; });
  auto G = alt(CallRel, Nop);

  uint8_t Code1[] = {0xE8, 0x01, 0x00, 0x00, 0x00, 0x90};
  auto R1 = parsePrefix(G, Code1, sizeof(Code1));
  ASSERT_TRUE(R1.Matched);
  EXPECT_EQ(R1.Length, 5u);
  EXPECT_EQ(R1.Value.Kind, 1);
  EXPECT_EQ(R1.Value.Imm, 1u);

  uint8_t Code2[] = {0x90, 0xE8};
  auto R2 = parsePrefix(G, Code2, sizeof(Code2));
  ASSERT_TRUE(R2.Matched);
  EXPECT_EQ(R2.Length, 1u);
  EXPECT_EQ(R2.Value.Kind, 2);

  uint8_t Code3[] = {0xCC};
  auto R3 = parsePrefix(G, Code3, sizeof(Code3));
  EXPECT_FALSE(R3.Matched);
}

TEST(Grammar, ParsePrefixFailsOnTruncatedInput) {
  auto G = then(bitsG("11101000"), wordLE());
  uint8_t Code[] = {0xE8, 0x01, 0x02};
  auto R = parsePrefix(G, Code, sizeof(Code));
  EXPECT_FALSE(R.Matched);
}

TEST(Grammar, MatchesExactly) {
  auto G = then(bitsG("10010000"), eps());
  EXPECT_TRUE(matchesExactly(G, {0x90}));
  EXPECT_FALSE(matchesExactly(G, {0x90, 0x90}));
  EXPECT_FALSE(matchesExactly(G, {}));
  EXPECT_FALSE(matchesExactly(G, {0x91}));
}

TEST(Grammar, StripAgreesWithTypedMatching) {
  // For a representative grammar, the stripped regex and the typed
  // grammar must accept exactly the same byte strings.
  re::Factory F;
  auto G = alt(then(bitsG("11101000"), mapWith(wordLE(), [](uint32_t) {
                      return Unit{};
                    })),
               bitsG("10010000"));
  re::Regex R = G.strip(F);

  rocksalt::Rng Rand(777);
  for (int I = 0; I < 500; ++I) {
    size_t Len = Rand.below(7);
    std::vector<uint8_t> Bytes(Len);
    for (auto &B : Bytes)
      B = Rand.flip() ? (Rand.flip() ? 0xE8 : 0x90)
                      : static_cast<uint8_t>(Rand.next());

    bool TypedAccepts = matchesExactly(G, Bytes);
    re::Regex Cur = R;
    bool RegexAccepts = true;
    for (uint8_t B : Bytes) {
      Cur = F.derivByte(Cur, B);
      if (Cur == F.voidRe()) {
        RegexAccepts = false;
        break;
      }
    }
    if (RegexAccepts)
      RegexAccepts = F.nullable(Cur);
    ASSERT_EQ(TypedAccepts, RegexAccepts);
  }
}

TEST(Grammar, DerivativePreservesSemanticsProperty) {
  // (b::s, v) in [[g]]  iff  (s, v) in [[deriv_b g]] — checked on the
  // field(12) grammar whose values are easy to predict.
  auto G = field(12);
  rocksalt::Rng Rand(31);
  for (int I = 0; I < 200; ++I) {
    uint32_t Val = static_cast<uint32_t>(Rand.below(1 << 12));
    Grammar<uint32_t> Cur = G;
    for (int Bit = 11; Bit >= 0; --Bit)
      Cur = Cur.derivBit((Val >> Bit) & 1);
    auto V = Cur.extract();
    ASSERT_EQ(V.size(), 1u);
    ASSERT_EQ(V[0], Val);
  }
}
