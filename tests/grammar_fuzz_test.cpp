//===- tests/grammar_fuzz_test.cpp ----------------------------*- C++ -*-===//
//
// Grammar-directed fuzzing (paper section 2.5): "Using our generative
// grammar, we randomly produce byte sequences that correspond to
// instructions we have specified. This lets us exercise unusual forms of
// all the instructions we define." We sample byte strings from each
// instruction-form regex and require that
//
//   * both decoders accept the exact string and agree on the result;
//   * instructions with semantics execute identically on the RTL
//     pipeline and the direct interpreter (per-form differential, which
//     reaches encodings the encoder-driven fuzz never emits — moffs
//     forms, redundant modrm encodings, etc.);
//   * every form is exercised (coverage check — the fourteen-flavor
//     ADC problem from the paper).
//
//===----------------------------------------------------------------------===//

#include "sem/Cpu.h"
#include "sem/Differential.h"
#include "sem/FastInterp.h"
#include "sem/Translate.h"
#include "x86/FastDecoder.h"
#include "x86/GrammarDecoder.h"
#include "x86/Grammars.h"
#include "x86/Printer.h"

#include <gtest/gtest.h>

using namespace rocksalt;

namespace {

std::string hexOf(const std::vector<uint8_t> &B) {
  std::string S;
  char Buf[4];
  for (uint8_t X : B) {
    std::snprintf(Buf, sizeof(Buf), "%02x ", X);
    S += Buf;
  }
  return S;
}

} // namespace

TEST(GrammarFuzz, EveryFormSamplesDecodeAndAgree) {
  re::Factory F;
  const x86::X86Grammars &G = x86::x86Grammars();
  uint64_t State = 0xF002;
  int Sampled = 0;

  for (const x86::NamedGrammar &NG : G.Forms) {
    re::Regex R = NG.G.strip(F);
    int FormSamples = 0;
    for (int Try = 0; Try < 12 && FormSamples < 4; ++Try) {
      auto Bytes = F.sampleBytes(R, State);
      if (!Bytes || Bytes->empty())
        continue;
      ++FormSamples;
      ++Sampled;

      auto Fast = x86::fastDecode(*Bytes);
      ASSERT_TRUE(Fast.has_value()) << NG.Name << ": " << hexOf(*Bytes);
      ASSERT_EQ(size_t(Fast->Length), Bytes->size())
          << NG.Name << ": " << hexOf(*Bytes);

      auto Gram = x86::grammarDecode(*Bytes);
      ASSERT_TRUE(Gram.has_value()) << NG.Name << ": " << hexOf(*Bytes);
      ASSERT_EQ(Gram->I, Fast->I)
          << NG.Name << ": " << hexOf(*Bytes) << "\n  grammar: "
          << x86::printInstr(Gram->I)
          << "\n  fast:    " << x86::printInstr(Fast->I);
    }
    EXPECT_GT(FormSamples, 0) << "form never sampled: " << NG.Name;
  }
  EXPECT_GT(Sampled, 600);
}

TEST(GrammarFuzz, SampledInstructionsExecuteIdentically) {
  // The per-form differential: reach the encodings the canonical encoder
  // never produces (redundant modrm forms, moffs, alternate ALU forms).
  re::Factory F;
  const x86::X86Grammars &G = x86::x86Grammars();
  uint64_t State = 0xF003;
  Rng R(0xF004);
  int Executed = 0, Skipped = 0;

  for (const x86::NamedGrammar &NG : G.Forms) {
    re::Regex Re = NG.G.strip(F);
    for (int Try = 0; Try < 6; ++Try) {
      auto Bytes = F.sampleBytes(Re, State);
      if (!Bytes || Bytes->empty())
        continue;
      auto D = x86::fastDecode(*Bytes);
      ASSERT_TRUE(D.has_value()) << NG.Name;
      if (!sem::hasSemantics(D->I)) {
        ++Skipped;
        continue;
      }

      rtl::MachineState Proto;
      sem::randomizeState(Proto, R);
      Proto.Mem.storeBytes(Proto.SegBase[1] /* CS base */, *Bytes);

      sem::Cpu Rtl;
      Rtl.M = Proto;
      Rtl.step();
      rtl::MachineState Direct = Proto;
      sem::fastStepFetch(Direct);

      std::string Diff = sem::diffStates(Rtl.M, Direct);
      ASSERT_TRUE(Diff.empty())
          << NG.Name << " (" << hexOf(*Bytes)
          << " = " << x86::printInstr(D->I) << "): " << Diff;
      ++Executed;
    }
  }
  EXPECT_GT(Executed, 700);
  // Only the deliberately unmodeled families should be skipped.
  EXPECT_LT(Skipped, Executed / 3);
}

TEST(GrammarFuzz, FullGrammarSamplesRoundTrip) {
  // Sample from the whole top-level grammar (prefixes included): every
  // member must decode to exactly its own length by both decoders.
  re::Factory F;
  const x86::X86Grammars &G = x86::x86Grammars();
  re::Regex Full = G.Full.strip(F);
  uint64_t State = 0xF005;
  int N = 0;
  for (int Try = 0; Try < 1500 && N < 600; ++Try) {
    auto Bytes = F.sampleBytes(Full, State);
    if (!Bytes || Bytes->empty())
      continue;
    ++N;
    auto Fast = x86::fastDecode(*Bytes);
    auto Gram = x86::grammarDecode(*Bytes);
    ASSERT_TRUE(Fast.has_value()) << hexOf(*Bytes);
    ASSERT_TRUE(Gram.has_value()) << hexOf(*Bytes);
    ASSERT_EQ(Fast->I, Gram->I) << hexOf(*Bytes);
    ASSERT_EQ(size_t(Fast->Length), Bytes->size()) << hexOf(*Bytes);
  }
  EXPECT_GE(N, 600);
}
