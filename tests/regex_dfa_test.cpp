//===- tests/regex_dfa_test.cpp -------------------------------*- C++ -*-===//
//
// Tests for derivative-based DFA construction (paper section 3.2): the
// DFA must agree with the regex denotation on all inputs, accept/reject
// classifications must be correct, and construction must terminate with a
// small number of states for the kinds of patterns the checker uses.
//
//===----------------------------------------------------------------------===//

#include "regex/Dfa.h"
#include "support/Oracle.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace rocksalt::re;
using rocksalt::Rng;

namespace {

/// Regex-side matcher over whole bytes.
bool reMatches(Factory &F, Regex R, const std::vector<uint8_t> &Bytes) {
  for (uint8_t B : Bytes) {
    R = F.derivByte(R, B);
    if (R == F.voidRe())
      return false;
  }
  return F.nullable(R);
}

/// DFA-side matcher over whole bytes.
bool dfaMatches(const Dfa &D, const std::vector<uint8_t> &Bytes) {
  uint16_t S = static_cast<uint16_t>(D.Start);
  for (uint8_t B : Bytes) {
    S = D.step(S, B);
    if (D.Rejects[S])
      return false;
  }
  return D.Accepts[S];
}

} // namespace

TEST(Dfa, SingleByteLiteral) {
  Factory F;
  Dfa D = buildDfa(F, F.byteLit(0x90));
  EXPECT_TRUE(dfaMatches(D, {0x90}));
  EXPECT_FALSE(dfaMatches(D, {0x91}));
  EXPECT_FALSE(dfaMatches(D, {}));
  EXPECT_FALSE(dfaMatches(D, {0x90, 0x90}));
}

TEST(Dfa, RejectStatesAreSink) {
  Factory F;
  Dfa D = buildDfa(F, F.byteLit(0x90));
  // Find a rejecting state and check all its transitions self-loop into
  // rejecting states.
  bool FoundReject = false;
  for (size_t S = 0; S < D.numStates(); ++S) {
    if (!D.Rejects[S])
      continue;
    FoundReject = true;
    for (unsigned B = 0; B < 256; ++B)
      EXPECT_TRUE(D.Rejects[D.step(static_cast<uint16_t>(S),
                                   static_cast<uint8_t>(B))]);
  }
  EXPECT_TRUE(FoundReject);
}

TEST(Dfa, AcceptAndRejectAreDisjoint) {
  Factory F;
  Regex G = F.alt(F.cat(F.byteLit(0x0F), F.anyByte()), F.byteLit(0x90));
  Dfa D = buildDfa(F, G);
  for (size_t S = 0; S < D.numStates(); ++S)
    EXPECT_FALSE(D.Accepts[S] && D.Rejects[S]);
}

TEST(Dfa, TwoByteSequence) {
  Factory F;
  Dfa D = buildDfa(F, F.cat(F.byteLit(0x0F), F.byteLit(0xAF)));
  EXPECT_TRUE(dfaMatches(D, {0x0F, 0xAF}));
  EXPECT_FALSE(dfaMatches(D, {0x0F}));
  EXPECT_FALSE(dfaMatches(D, {0x0F, 0xAE}));
  EXPECT_FALSE(dfaMatches(D, {0xAF, 0x0F}));
}

TEST(Dfa, StarOfByte) {
  Factory F;
  Dfa D = buildDfa(F, F.star(F.byteLit(0x90)));
  EXPECT_TRUE(dfaMatches(D, {}));
  EXPECT_TRUE(dfaMatches(D, {0x90}));
  EXPECT_TRUE(dfaMatches(D, {0x90, 0x90, 0x90}));
  EXPECT_FALSE(dfaMatches(D, {0x90, 0x91}));
}

TEST(Dfa, AgreesWithRegexOnRandomInputs) {
  Factory F;
  // A pattern shaped like the checker's: opcode byte, a modrm-ish field
  // byte, then a 2-byte immediate; or a 1-byte opcode.
  Regex G = F.altN({
      F.seq({F.byteLit(0x83), F.cat(F.bits("11100"), F.anyBits(3)),
             F.anyByte()}),
      F.byteLit(0x90),
      F.seq({F.byteLit(0xE9), F.anyByte(), F.anyByte()}),
  });
  Dfa D = buildDfa(F, G);
  Rng R(404);
  for (int I = 0; I < 3000; ++I) {
    size_t Len = R.below(5);
    std::vector<uint8_t> Bytes(Len);
    for (auto &B : Bytes) {
      // Bias toward the opcode bytes so positives occur.
      switch (R.below(4)) {
      case 0:
        B = 0x83;
        break;
      case 1:
        B = 0x90;
        break;
      case 2:
        B = 0xE9;
        break;
      default:
        B = static_cast<uint8_t>(R.next());
      }
    }
    ASSERT_EQ(dfaMatches(D, Bytes), reMatches(F, G, Bytes));
  }
}

TEST(Dfa, StateCountIsSmallForPolicyShapedPatterns) {
  Factory F;
  // AND r, imm8 ; JMP *r for all 8 registers — the nacljmp shape.
  std::vector<Regex> Alts;
  for (unsigned RegNum = 0; RegNum < 8; ++RegNum) {
    std::string RegBits;
    for (int B = 2; B >= 0; --B)
      RegBits += ((RegNum >> B) & 1) ? '1' : '0';
    Regex Mask = F.seq({F.byteLit(0x83), F.bits("11100"), F.bits(RegBits),
                        F.byteLit(0xE0)});
    Regex Jmp = F.seq({F.byteLit(0xFF), F.bits("11100"), F.bits(RegBits)});
    Alts.push_back(F.cat(Mask, Jmp));
  }
  Dfa D = buildDfa(F, F.altN(std::move(Alts)));
  // The paper reports 61 states for its largest DFA; this fragment must
  // be of the same order.
  EXPECT_LE(D.numStates(), 64u);
  EXPECT_GE(D.numStates(), 5u);

  // And it must work.
  EXPECT_TRUE(dfaMatches(D, {0x83, 0xE0, 0xE0, 0xFF, 0xE0})); // eax
  EXPECT_TRUE(dfaMatches(D, {0x83, 0xE1, 0xE0, 0xFF, 0xE1})); // ecx
  // Mask of eax followed by jump through ecx must NOT match.
  EXPECT_FALSE(dfaMatches(D, {0x83, 0xE0, 0xE0, 0xFF, 0xE1}));
  // Wrong mask constant must not match.
  EXPECT_FALSE(dfaMatches(D, {0x83, 0xE0, 0xF0, 0xFF, 0xE0}));
}

TEST(Dfa, DeterministicConstruction) {
  Factory F1, F2;
  Regex G1 = F1.alt(F1.byteLit(0x01), F1.cat(F1.byteLit(0x02), F1.anyByte()));
  Regex G2 = F2.alt(F2.byteLit(0x01), F2.cat(F2.byteLit(0x02), F2.anyByte()));
  Dfa D1 = buildDfa(F1, G1);
  Dfa D2 = buildDfa(F2, G2);
  ASSERT_EQ(D1.numStates(), D2.numStates());
  EXPECT_EQ(D1.Start, D2.Start);
  for (size_t S = 0; S < D1.numStates(); ++S) {
    EXPECT_EQ(D1.Accepts[S], D2.Accepts[S]);
    EXPECT_EQ(D1.Rejects[S], D2.Rejects[S]);
    for (unsigned B = 0; B < 256; ++B)
      EXPECT_EQ(D1.Table[S][B], D2.Table[S][B]);
  }
}

// Regression: the MaxStates bound used to be an assert, compiled away in
// release builds — buildDfa would happily generate tables whose state
// count overflows the uint16_t ids the verifier's transition table (and
// core::dfaMatch) traffic in. It must be a real throw in every build.
TEST(Dfa, OversizedTableIsRejectedNotTruncated) {
  Factory F;
  // A chain of 300 counted anyBytes needs ~300 live states; with a
  // MaxStates bound of 100 construction must abort, not keep going.
  Regex R = F.epsRe();
  for (int I = 0; I < 300; ++I)
    R = F.cat(F.anyByte(), R);
  EXPECT_THROW(buildDfa(F, R, 100), std::length_error);
}

TEST(Dfa, CallerBoundIsClampedToTheUint16IdRange) {
  Factory F;
  // Asking for more states than uint16_t ids can name must not disable
  // the check: the hard MaxDfaStates ceiling still applies. (The chain is
  // far below the ceiling, so this build succeeds — the point is that the
  // permissive caller bound is accepted and clamped, not trusted.)
  Regex R = F.epsRe();
  for (int I = 0; I < 40; ++I)
    R = F.cat(F.anyByte(), R);
  Dfa D = buildDfa(F, R, size_t(1) << 32);
  EXPECT_LE(D.numStates(), MaxDfaStates);
  EXPECT_GE(D.numStates(), 40u);
}
