//===- tests/mips_test.cpp ------------------------------------*- C++ -*-===//
//
// The DSL-reusability claim (paper section 1): the decoder DSL, the
// derivative machinery, and the ambiguity analysis are architecture
// independent. This suite instantiates them for a MIPS-I subset:
// decode checks against the MIPS manual, encode/decode round trips,
// grammar unambiguity via the same generalized-derivative analysis used
// for the x86, DFA generation over the MIPS grammar, and a small program
// run end to end.
//
//===----------------------------------------------------------------------===//

#include "mips/Mips.h"
#include "regex/Dfa.h"
#include "support/Oracle.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::mips;

TEST(Mips, DecodeRType) {
  // addu $3, $1, $2 = 000000 00001 00010 00011 00000 100001.
  auto D = decode(0x00221821);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Opc, Op::ADDU);
  EXPECT_EQ(D->Rs, 1);
  EXPECT_EQ(D->Rt, 2);
  EXPECT_EQ(D->Rd, 3);
}

TEST(Mips, DecodeIType) {
  // addiu $5, $4, -1 = 001001 00100 00101 1111111111111111.
  auto D = decode(0x2485FFFF);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Opc, Op::ADDIU);
  EXPECT_EQ(D->Rs, 4);
  EXPECT_EQ(D->Rt, 5);
  EXPECT_EQ(D->Imm, 0xFFFF);
}

TEST(Mips, DecodeJType) {
  auto D = decode(0x0810000A); // j 0x40028
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Opc, Op::J);
  EXPECT_EQ(D->Target, 0x10000Au);
}

TEST(Mips, DecodeShift) {
  // sll $2, $3, 4 = funct 0, rd=2, rt=3, shamt=4.
  auto D = decode(0x00031100);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Opc, Op::SLL);
  EXPECT_EQ(D->Rd, 2);
  EXPECT_EQ(D->Rt, 3);
  EXPECT_EQ(D->Shamt, 4);
}

TEST(Mips, RejectsUnknownOpcodes) {
  EXPECT_FALSE(decode(0xFC000000).has_value()); // opcode 0x3F
  EXPECT_FALSE(decode(0x0000003F).has_value()); // R-type funct 0x3F
}

TEST(Mips, EncodeDecodeRoundTrip) {
  Rng R(31);
  const MipsGrammars &G = mipsGrammars();
  for (int Iter = 0; Iter < 2000; ++Iter) {
    Instr I;
    I.Opc = static_cast<Op>(R.below(25));
    I.Rs = uint8_t(R.below(32));
    I.Rt = uint8_t(R.below(32));
    I.Rd = uint8_t(R.below(32));
    I.Shamt = uint8_t(R.below(32));
    I.Imm = uint16_t(R.next());
    I.Target = uint32_t(R.next()) & 0x03FFFFFF;
    // Zero the fields the format does not carry (so equality is exact).
    switch (I.Opc) {
    case Op::J: case Op::JAL:
      I.Rs = I.Rt = I.Rd = I.Shamt = 0;
      I.Imm = 0;
      break;
    case Op::SLL: case Op::SRL: case Op::SRA: case Op::JR:
    case Op::ADDU: case Op::SUBU: case Op::AND: case Op::OR:
    case Op::XOR: case Op::NOR: case Op::SLT: case Op::SLTU:
      I.Imm = 0;
      I.Target = 0;
      break;
    default:
      I.Rd = I.Shamt = 0;
      I.Target = 0;
      break;
    }
    uint32_t W = encode(I);
    auto D = decode(W);
    ASSERT_TRUE(D.has_value()) << printInstr(I);
    EXPECT_EQ(*D, I) << printInstr(I) << " vs " << printInstr(*D);
  }
  (void)G;
}

TEST(Mips, GrammarIsUnambiguous) {
  // The same section-4.1 analysis that checks the x86 grammar.
  re::Factory F;
  const MipsGrammars &G = mipsGrammars();
  std::vector<std::pair<std::string, re::Regex>> Res;
  for (const auto &[Name, Gr] : G.Forms)
    Res.emplace_back(Name, Gr.strip(F));
  for (size_t I = 0; I < Res.size(); ++I)
    for (size_t J = I + 1; J < Res.size(); ++J) {
      auto Ok = F.prefixDisjoint(Res[I].second, Res[J].second);
      ASSERT_TRUE(Ok.has_value());
      EXPECT_TRUE(*Ok) << Res[I].first << " overlaps " << Res[J].first;
    }
}

TEST(Mips, DfaGenerationWorksOnMipsToo) {
  // Strip the full grammar and build a DFA with the same machinery the
  // x86 checker uses; it must accept exactly the decodable words.
  re::Factory F;
  re::Regex R = mipsGrammars().Full.strip(F);
  re::Dfa D = re::buildDfa(F, R);
  EXPECT_GT(D.numStates(), 4u);

  Rng Rand(55);
  for (int I = 0; I < 2000; ++I) {
    uint32_t W = uint32_t(Rand.next());
    uint8_t Bytes[4] = {uint8_t(W >> 24), uint8_t(W >> 16), uint8_t(W >> 8),
                        uint8_t(W)};
    uint16_t S = uint16_t(D.Start);
    bool Rejected = false;
    for (uint8_t B : Bytes) {
      S = D.step(S, B);
      if (D.Rejects[S]) {
        Rejected = true;
        break;
      }
    }
    bool DfaAccepts = !Rejected && D.Accepts[S];
    EXPECT_EQ(DfaAccepts, decode(W).has_value()) << std::hex << W;
  }
}

TEST(Mips, GrammarSamplingCoversAllForms) {
  re::Factory F;
  uint64_t State = 0x115;
  for (const auto &[Name, Gr] : mipsGrammars().Forms) {
    re::Regex R = Gr.strip(F);
    auto Bytes = F.sampleBytes(R, State);
    ASSERT_TRUE(Bytes.has_value()) << Name;
    ASSERT_EQ(Bytes->size(), 4u) << Name;
    uint32_t W = (uint32_t((*Bytes)[0]) << 24) |
                 (uint32_t((*Bytes)[1]) << 16) |
                 (uint32_t((*Bytes)[2]) << 8) | (*Bytes)[3];
    EXPECT_TRUE(decode(W).has_value()) << Name;
  }
}

//===----------------------------------------------------------------------===//
// The interpreter.
//===----------------------------------------------------------------------===//

namespace {

uint32_t asmI(Op O, uint8_t Rs, uint8_t Rt, uint16_t Imm) {
  Instr I;
  I.Opc = O;
  I.Rs = Rs;
  I.Rt = Rt;
  I.Imm = Imm;
  return encode(I);
}
uint32_t asmR(Op O, uint8_t Rd, uint8_t Rs, uint8_t Rt) {
  Instr I;
  I.Opc = O;
  I.Rd = Rd;
  I.Rs = Rs;
  I.Rt = Rt;
  return encode(I);
}

} // namespace

TEST(MipsMachine, ArithmeticBasics) {
  Machine M;
  M.loadProgram({
      asmI(Op::ADDIU, 0, 1, 6),    // $1 = 6
      asmI(Op::ADDIU, 0, 2, 7),    // $2 = 7
      asmR(Op::ADDU, 3, 1, 2),     // $3 = 13
      asmR(Op::SUBU, 4, 2, 1),     // $4 = 1
      asmR(Op::SLT, 5, 1, 2),      // $5 = 1 (6 < 7)
      encode(Instr{Op::JR, 0, 0, 0, 0, 0, 0}), // halt
  });
  M.run(100);
  EXPECT_EQ(M.Regs[3], 13u);
  EXPECT_EQ(M.Regs[4], 1u);
  EXPECT_EQ(M.Regs[5], 1u);
}

TEST(MipsMachine, ZeroRegisterIsHardwired) {
  Machine M;
  M.loadProgram({
      asmI(Op::ADDIU, 0, 0, 99), // attempt to write $zero
      encode(Instr{Op::JR, 0, 0, 0, 0, 0, 0}),
  });
  M.run(10);
  EXPECT_EQ(M.Regs[0], 0u);
}

TEST(MipsMachine, LoadStoreWords) {
  Machine M;
  M.loadProgram({
      asmI(Op::ADDIU, 0, 1, 0x100),  // $1 = 0x100
      asmI(Op::ADDIU, 0, 2, 0x1234), // $2 = 0x1234
      asmI(Op::SW, 1, 2, 8),         // mem[$1+8] = $2
      asmI(Op::LW, 1, 3, 8),         // $3 = mem[$1+8]
      encode(Instr{Op::JR, 0, 0, 0, 0, 0, 0}),
  });
  M.run(10);
  EXPECT_EQ(M.Regs[3], 0x1234u);
  EXPECT_EQ(M.loadWord(0x108), 0x1234u);
}

TEST(MipsMachine, FibonacciLoop) {
  // Compute fib(10) = 55 with a BNE loop.
  Machine M;
  M.loadProgram({
      asmI(Op::ADDIU, 0, 1, 0),  // a = 0
      asmI(Op::ADDIU, 0, 2, 1),  // b = 1
      asmI(Op::ADDIU, 0, 3, 10), // n = 10
      // loop:
      asmR(Op::ADDU, 4, 1, 2),   // t = a + b
      asmR(Op::ADDU, 1, 0, 2),   // a = b
      asmR(Op::ADDU, 2, 0, 4),   // b = t
      asmI(Op::ADDIU, 3, 3, 0xFFFF), // n -= 1
      asmI(Op::BNE, 3, 0, 0xFFFB),   // back to loop (-5 words)
      encode(Instr{Op::JR, 0, 0, 0, 0, 0, 0}),
  });
  M.run(1000);
  EXPECT_TRUE(M.Halted);
  EXPECT_EQ(M.Regs[1], 55u); // fib(10)
}

TEST(MipsMachine, JalLinksReturnAddress) {
  Machine M;
  M.loadProgram({
      encode(Instr{Op::JAL, 0, 0, 0, 0, 0, 3}), // jal word 3
      asmI(Op::ADDIU, 0, 5, 1), // (delay-slot-free model: skipped)
      encode(Instr{Op::JR, 0, 0, 0, 0, 0, 0}),
      asmI(Op::ADDIU, 0, 6, 42), // function body
      asmR(Op::JR, 0, 31, 0),    // return through $ra
  });
  M.run(100);
  EXPECT_EQ(M.Regs[31], 4u);
  EXPECT_EQ(M.Regs[6], 42u);
}

TEST(MipsMachine, UndecodableWordHalts) {
  Machine M;
  M.loadProgram({0xFC000000});
  EXPECT_FALSE(M.step());
  EXPECT_TRUE(M.Halted);
}
