//===- tests/checker_test.cpp ---------------------------------*- C++ -*-===//
//
// Tests for the RockSalt verifier (paper Figures 5/6 + section 3.2):
// policy DFA construction, acceptance of compliant code, and rejection
// of each policy violation class via hand-crafted attacks.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "nacl/Assembler.h"
#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::core;
using namespace rocksalt::nacl;
using x86::Cond;
using x86::Instr;
using x86::Opcode;
using x86::Operand;
using x86::Reg;

namespace {

std::vector<uint8_t> pad32(std::vector<uint8_t> V) {
  while (V.size() % 32)
    V.push_back(0x90);
  return V;
}

} // namespace

TEST(PolicyTables, BuildAndSizes) {
  const PolicyTables &T = policyTables();
  // The shipped tables are minimized and canonically numbered, so the
  // sizes are exact and pinned by the named constants in core/Policy.h
  // (the paper's largest DFA had 61 states; all three stay below that).
  EXPECT_EQ(T.MaskedJump.numStates(), MaskedJumpStates);
  EXPECT_EQ(T.DirectJump.numStates(), DirectJumpStates);
  EXPECT_EQ(T.NoControlFlow.numStates(), NoControlFlowStates);
  // Canonical BFS numbering always places the start state first.
  EXPECT_EQ(T.MaskedJump.Start, 0u);
  EXPECT_EQ(T.DirectJump.Start, 0u);
  EXPECT_EQ(T.NoControlFlow.Start, 0u);
}

TEST(RockSaltChecker, EmptyImageIsValid) {
  RockSalt V;
  EXPECT_TRUE(V.verify(std::vector<uint8_t>{}));
}

TEST(RockSaltChecker, NopSledIsValid) {
  RockSalt V;
  EXPECT_TRUE(V.verify(std::vector<uint8_t>(64, 0x90)));
}

TEST(RockSaltChecker, SimpleStraightLineCode) {
  RockSalt V;
  // mov eax, 1 ; add eax, 2 ; nop padding.
  std::vector<uint8_t> Code = {0xB8, 1, 0, 0, 0, 0x83, 0xC0, 2};
  EXPECT_TRUE(V.verify(pad32(Code)));
}

TEST(RockSaltChecker, MaskedJumpAccepted) {
  RockSalt V;
  // and ebx, -32 ; jmp *ebx — then padding.
  std::vector<uint8_t> Code = {0x83, 0xE3, 0xE0, 0xFF, 0xE3};
  EXPECT_TRUE(V.verify(pad32(Code)));
  // and ecx, -32 ; call *ecx.
  std::vector<uint8_t> Code2 = {0x83, 0xE1, 0xE0, 0xFF, 0xD1};
  EXPECT_TRUE(V.verify(pad32(Code2)));
}

TEST(RockSaltChecker, BareIndirectJumpRejected) {
  RockSalt V;
  std::vector<uint8_t> Code = {0xFF, 0xE3}; // jmp *ebx, unmasked
  EXPECT_FALSE(V.verify(pad32(Code)));
  std::vector<uint8_t> Code2 = {0xFF, 0xD0}; // call *eax, unmasked
  EXPECT_FALSE(V.verify(pad32(Code2)));
}

TEST(RockSaltChecker, MaskThroughDifferentRegisterRejected) {
  RockSalt V;
  // and eax, -32 ; jmp *ebx — mask protects the wrong register.
  std::vector<uint8_t> Code = {0x83, 0xE0, 0xE0, 0xFF, 0xE3};
  EXPECT_FALSE(V.verify(pad32(Code)));
}

TEST(RockSaltChecker, WrongMaskConstantRejected) {
  RockSalt V;
  // and ebx, -16 (0xF0) ; jmp *ebx — insufficient alignment.
  std::vector<uint8_t> Code = {0x83, 0xE3, 0xF0, 0xFF, 0xE3};
  EXPECT_FALSE(V.verify(pad32(Code)));
}

TEST(RockSaltChecker, MaskedJumpThroughEspRejected) {
  RockSalt V;
  std::vector<uint8_t> Code = {0x83, 0xE4, 0xE0, 0xFF, 0xE4};
  EXPECT_FALSE(V.verify(pad32(Code)));
}

TEST(RockSaltChecker, InterveningInstructionBreaksPair) {
  RockSalt V;
  // and ebx, -32 ; nop ; jmp *ebx — the mask no longer guards the jump.
  std::vector<uint8_t> Code = {0x83, 0xE3, 0xE0, 0x90, 0xFF, 0xE3};
  EXPECT_FALSE(V.verify(pad32(Code)));
}

TEST(RockSaltChecker, RetRejected) {
  RockSalt V;
  EXPECT_FALSE(V.verify(pad32({0xC3})));
  EXPECT_FALSE(V.verify(pad32({0xC2, 0x08, 0x00})));
}

TEST(RockSaltChecker, SyscallsRejected) {
  RockSalt V;
  EXPECT_FALSE(V.verify(pad32({0xCD, 0x80}))); // int 0x80
  EXPECT_FALSE(V.verify(pad32({0xCC})));       // int3
  EXPECT_FALSE(V.verify(pad32({0xCE})));       // into
  EXPECT_FALSE(V.verify(pad32({0xCF})));       // iret
}

TEST(RockSaltChecker, SegmentTamperingRejected) {
  RockSalt V;
  EXPECT_FALSE(V.verify(pad32({0x8E, 0xD8})));       // mov ds, eax
  EXPECT_FALSE(V.verify(pad32({0x1F})));             // pop ds
  EXPECT_FALSE(V.verify(pad32({0x0F, 0xA1})));       // pop fs
  EXPECT_FALSE(V.verify(pad32({0xC5, 0x03})));       // lds eax, [ebx]
  EXPECT_FALSE(V.verify(pad32({0x0F, 0xB2, 0x03}))); // lss
}

TEST(RockSaltChecker, SegmentOverridePrefixRejected) {
  RockSalt V;
  // ds: mov eax, [eax] — overrides are never allowed.
  EXPECT_FALSE(V.verify(pad32({0x3E, 0x8B, 0x00})));
  EXPECT_FALSE(V.verify(pad32({0x65, 0x8B, 0x00}))); // gs:
}

TEST(RockSaltChecker, IoAndPrivilegedRejected) {
  RockSalt V;
  EXPECT_FALSE(V.verify(pad32({0xE4, 0x60})));  // in al, 0x60
  EXPECT_FALSE(V.verify(pad32({0xEE})));        // out dx, al
  EXPECT_FALSE(V.verify(pad32({0xFA})));        // cli
  EXPECT_FALSE(V.verify(pad32({0xFB})));        // sti
}

TEST(RockSaltChecker, FarTransfersRejected) {
  RockSalt V;
  EXPECT_FALSE(V.verify(pad32({0x9A, 0, 0, 0, 0, 0x23, 0})));
  EXPECT_FALSE(V.verify(pad32({0xEA, 0, 0, 0, 0, 0x23, 0})));
  EXPECT_FALSE(V.verify(pad32({0xFF, 0x1B}))); // call far [ebx]
}

TEST(RockSaltChecker, DirectJumpToInstructionStartAccepted) {
  RockSalt V;
  // jmp +3 over a 3-byte instruction to a valid boundary.
  // e9 03 00 00 00 ; 83 c0 01 (add eax,1) ; 90...
  std::vector<uint8_t> Code = {0xE9, 3, 0, 0, 0, 0x83, 0xC0, 1};
  EXPECT_TRUE(V.verify(pad32(Code)));
}

TEST(RockSaltChecker, DirectJumpIntoInstructionMiddleRejected) {
  RockSalt V;
  // jmp +1 lands inside the add.
  std::vector<uint8_t> Code = {0xE9, 1, 0, 0, 0, 0x83, 0xC0, 1};
  EXPECT_FALSE(V.verify(pad32(Code)));
}

TEST(RockSaltChecker, DirectJumpOutsideImageRejected) {
  RockSalt V;
  std::vector<uint8_t> Code = {0xE9, 0x00, 0x10, 0, 0}; // way past the end
  EXPECT_FALSE(V.verify(pad32(Code)));
  // Backward out of the image.
  std::vector<uint8_t> Code2 = {0xE9, 0x00, 0xFF, 0xFF, 0xFF};
  EXPECT_FALSE(V.verify(pad32(Code2)));
}

TEST(RockSaltChecker, DirectJumpOntoUnguardedIndirectRejected) {
  // A direct jump that targets the *jump half* of a masked pair would
  // bypass the mask (policy requirement 5).
  RockSalt V;
  // 0: e9 03 00 00 00   jmp +3 -> offset 8 (the FF E3)
  // 5: 83 e3 e0         and ebx, -32
  // 8: ff e3            jmp *ebx
  std::vector<uint8_t> Code = {0xE9, 3, 0, 0, 0, 0x83, 0xE3, 0xE0,
                               0xFF, 0xE3};
  EXPECT_FALSE(V.verify(pad32(Code)));
}

TEST(RockSaltChecker, MisalignedBundleRejected) {
  RockSalt V;
  // A 5-byte instruction at offset 28 straddles the 32-byte boundary.
  std::vector<uint8_t> Code(28, 0x90);
  Code.insert(Code.end(), {0xB8, 1, 0, 0, 0}); // mov eax, 1 crosses 32
  EXPECT_FALSE(V.verify(pad32(Code)));
}

TEST(RockSaltChecker, PairStraddlingBundleRejected) {
  RockSalt V;
  // Masked pair starting at 29 straddles the boundary at 32.
  std::vector<uint8_t> Code(29, 0x90);
  Code.insert(Code.end(), {0x83, 0xE3, 0xE0, 0xFF, 0xE3});
  EXPECT_FALSE(V.verify(pad32(Code)));
}

TEST(RockSaltChecker, TruncatedTrailingInstructionRejected) {
  RockSalt V;
  std::vector<uint8_t> Code(27, 0x90);
  Code.insert(Code.end(), {0xB8, 1, 0, 0}); // mov eax, imm32 cut short
  EXPECT_FALSE(V.verify(Code.data(), static_cast<uint32_t>(Code.size())));
}

TEST(RockSaltChecker, PrefixDiscipline) {
  RockSalt V;
  EXPECT_TRUE(V.verify(pad32({0x66, 0x05, 0x34, 0x12})));  // add ax, imm16
  EXPECT_TRUE(V.verify(pad32({0xF3, 0xA4})));              // rep movsb
  EXPECT_TRUE(V.verify(pad32({0xF2, 0xAE})));              // repne scasb
  EXPECT_TRUE(V.verify(pad32({0xF0, 0x01, 0x03})));        // lock add
  EXPECT_FALSE(V.verify(pad32({0xF3, 0x90})));             // rep nop
  EXPECT_FALSE(V.verify(pad32({0x66, 0xF3, 0xA5})));       // stacked
  EXPECT_FALSE(V.verify(pad32({0xF0, 0x8B, 0x03})));       // lock mov
  EXPECT_FALSE(V.verify(pad32({0x66, 0xE9, 0x00, 0x00}))); // 66 jmp
}

TEST(RockSaltChecker, GeneratedWorkloadsAccepted) {
  RockSalt V;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    WorkloadOptions Opts;
    Opts.Seed = Seed;
    Opts.TargetBytes = 2048;
    std::vector<uint8_t> Code = generateWorkload(Opts);
    EXPECT_TRUE(V.verify(Code)) << "seed " << Seed;
  }
}

TEST(RockSaltChecker, AssemblerKeepsPairsInBundles) {
  // Force a masked jump right before a bundle boundary; the assembler
  // must pad so the pair stays within one bundle.
  Assembler A;
  for (int I = 0; I < 30; ++I)
    A.emit(Instr{}); // 30 NOPs
  A.maskedJump(Reg::EBX);
  std::vector<uint8_t> Code = A.finish();
  RockSalt V;
  EXPECT_TRUE(V.verify(Code));
}

TEST(RockSaltChecker, CheckResultMarksPositions) {
  RockSalt V;
  // 0: nop ; 1: and ebx,-32 ; 4: jmp *ebx ; pad.
  std::vector<uint8_t> Code = pad32({0x90, 0x83, 0xE3, 0xE0, 0xFF, 0xE3});
  CheckResult R = V.check(Code);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.Valid[0]);
  EXPECT_TRUE(R.Valid[1]);  // pair start
  EXPECT_FALSE(R.Valid[4]); // middle of the pair is not a boundary
  EXPECT_TRUE(R.PairJmp[4]);
  EXPECT_TRUE(R.Valid[6]); // first pad nop
}

TEST(RockSaltChecker, CheckMatchesVerify) {
  RockSalt V;
  Rng R(99);
  WorkloadOptions Opts;
  Opts.TargetBytes = 1024;
  for (uint64_t Seed = 50; Seed < 60; ++Seed) {
    Opts.Seed = Seed;
    std::vector<uint8_t> Code = generateWorkload(Opts);
    // Also check some mutated variants.
    for (int I = 0; I < 10; ++I) {
      std::vector<uint8_t> M = nacl::mutateRandom(Code, R);
      EXPECT_EQ(V.verify(M), V.check(M).Ok);
      Code = std::move(M);
    }
  }
}
