//===- tests/svc_eventloop_test.cpp ----------------------------*- C++ -*-===//
//
// The event-driven multi-session serve loop (svc/EventLoop.h): two
// interleaved socket sessions with pipelined frames, image handles that
// must not leak across sessions, a stalled reader that must not block
// anyone else, backpressure pauses on the per-session byte budget, a
// client killed between request and reply (the SIGPIPE regression), an
// EMFILE-starved accept loop that must recover after backoff, graceful
// drain on shutdown, and the metrics scrape. Each test runs a real
// EventLoop on a real Unix socket in a background thread — this is the
// concurrency gate, and it is wired into the TSan tree like every other
// test.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"
#include "svc/EventLoop.h"

#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

using namespace rocksalt;
using svc::proto::Frame;
using svc::proto::MsgKind;

namespace {

std::vector<uint8_t> compliantImage(uint32_t Seed, uint32_t Bytes = 384) {
  nacl::WorkloadOptions WO;
  WO.TargetBytes = Bytes;
  WO.Seed = Seed;
  return nacl::generateWorkload(WO);
}

void sendFrame(int Fd, MsgKind Kind, const std::vector<uint8_t> &Body) {
  std::vector<uint8_t> Out;
  svc::proto::appendFrame(Out, Kind, Body);
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = ::send(Fd, Out.data() + Off, Out.size() - Off, MSG_NOSIGNAL);
    ASSERT_GE(N, 0) << "send failed";
    Off += size_t(N);
  }
}

/// Blocking client-side frame reassembly (test half of the wire).
class FrameReader {
public:
  explicit FrameReader(int Fd) : Fd(Fd) {}

  Frame next() {
    Frame F;
    while (!svc::proto::parseFrame(Buf.data(), Buf.size(), &Pos, &F)) {
      if (Pos) {
        Buf.erase(Buf.begin(), Buf.begin() + long(Pos));
        Pos = 0;
      }
      uint8_t Tmp[64 * 1024];
      ssize_t N = ::read(Fd, Tmp, sizeof(Tmp));
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        throw std::runtime_error("server closed the connection");
      Buf.insert(Buf.end(), Tmp, Tmp + N);
    }
    return F;
  }

private:
  int Fd;
  std::vector<uint8_t> Buf;
  size_t Pos = 0;
};

/// A Service + EventLoop on a private socket, run()ing in a background
/// thread until the fixture tears down (via ShutdownRequest or
/// requestStop()).
class LoopFixture {
public:
  explicit LoopFixture(svc::EventLoopOptions LO = {}, unsigned Threads = 2)
      : Server(svc::ServiceOptions{Threads, &Met}) {
    char Dir[] = "/tmp/rocksalt_evl_XXXXXX";
    EXPECT_NE(::mkdtemp(Dir), nullptr);
    SockPath = std::string(Dir) + "/svc.sock";
    DirPath = Dir;
    Loop = std::make_unique<svc::EventLoop>(
        Server, svc::listenUnixSocket(SockPath), LO);
    Runner = std::thread([this] { Result = Loop->run(); });
  }

  ~LoopFixture() {
    if (Runner.joinable()) {
      Loop->requestStop();
      Runner.join();
    }
    Loop.reset();
    ::unlink(SockPath.c_str());
    ::rmdir(DirPath.c_str());
  }

  int connect() {
    try {
      return svc::connectUnixSocket(SockPath);
    } catch (const std::exception &) {
      return -1; // e.g. the listener is gone after a drain
    }
  }
  void join() { Runner.join(); }

  svc::Metrics Met;
  svc::Service Server;
  std::unique_ptr<svc::EventLoop> Loop;
  std::thread Runner;
  svc::EventLoop::Status Result = svc::EventLoop::Status::Stopped;
  std::string SockPath, DirPath;
};

/// Spins until \p Pred holds or ~5s elapse (counters are bumped on the
/// loop/pool threads, so tests observing them must wait, not assert).
template <typename P> bool eventually(P Pred) {
  for (int I = 0; I < 500; ++I) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Pred();
}

} // namespace

// Two sessions, each pipelining several verify requests before reading
// anything back: responses must come back in order per session, with
// verdicts identical to the one-shot checker, while the sessions overlap
// in time.
TEST(EventLoopTest, InterleavedPipelinedSessions) {
  LoopFixture L;
  int A = L.connect(), B = L.connect();
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);

  Rng R(11);
  std::vector<std::vector<uint8_t>> ImgsA, ImgsB;
  for (uint32_t I = 0; I < 4; ++I) {
    ImgsA.push_back(compliantImage(500 + I));
    std::vector<uint8_t> Bad = compliantImage(600 + I);
    if (auto Mut = nacl::applyAttack(Bad, nacl::Attack::InsertRet, R))
      Bad = *Mut;
    ImgsB.push_back(std::move(Bad));
  }
  // Interleave the sends: A, B, A, B, ... with no reads in between.
  for (uint32_t I = 0; I < 4; ++I) {
    sendFrame(A, MsgKind::VerifyRequest,
              svc::proto::encodeImageBatch({ImgsA[I]}));
    sendFrame(B, MsgKind::VerifyRequest,
              svc::proto::encodeImageBatch({ImgsB[I]}));
  }

  core::RockSalt Local;
  FrameReader RdA(A), RdB(B);
  for (uint32_t I = 0; I < 4; ++I) {
    Frame FA = RdA.next();
    ASSERT_EQ(FA.Kind, MsgKind::VerifyResponse);
    auto VA = svc::proto::decodeVerifyResponse(FA.Body);
    ASSERT_EQ(VA.size(), 1u);
    EXPECT_EQ(VA[0].Ok, Local.check(ImgsA[I]).Ok) << "A response " << I;

    Frame FB = RdB.next();
    ASSERT_EQ(FB.Kind, MsgKind::VerifyResponse);
    auto VB = svc::proto::decodeVerifyResponse(FB.Body);
    ASSERT_EQ(VB.size(), 1u);
    EXPECT_EQ(VB[0].Ok, Local.check(ImgsB[I]).Ok) << "B response " << I;
  }
  ::close(A);
  ::close(B);
  EXPECT_TRUE(eventually([&] { return L.Met.SvcSessions.get() >= 2; }));
}

// Image handles are session-scoped: a handle opened on session A must be
// unknown to session B (an ErrorResponse, not a patch of A's image),
// while A keeps patching it successfully.
TEST(EventLoopTest, ImageHandlesDoNotLeakAcrossSessions) {
  LoopFixture L;
  int A = L.connect(), B = L.connect();
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);
  FrameReader RdA(A), RdB(B);

  std::vector<uint8_t> Img = compliantImage(700);
  sendFrame(A, MsgKind::ImageOpenRequest,
            svc::proto::encodeImageOpenRequest(Img));
  Frame FO = RdA.next();
  ASSERT_EQ(FO.Kind, MsgKind::ImageOpenResponse);
  svc::proto::ImageOpenReply Open =
      svc::proto::decodeImageOpenResponse(FO.Body);
  ASSERT_TRUE(Open.V.Ok);

  // B tries to patch A's handle: its own session has never opened it.
  svc::proto::PatchRequestBody P;
  P.Image = Open.Image;
  P.Offset = 0;
  P.Bytes = {0x90};
  sendFrame(B, MsgKind::PatchRequest, svc::proto::encodePatchRequest(P));
  EXPECT_EQ(RdB.next().Kind, MsgKind::ErrorResponse);

  // A's handle is untouched and still patchable.
  sendFrame(A, MsgKind::PatchRequest, svc::proto::encodePatchRequest(P));
  Frame FP = RdA.next();
  ASSERT_EQ(FP.Kind, MsgKind::PatchResponse);
  EXPECT_TRUE(svc::proto::decodePatchResponse(FP.Body).V.Ok);

  ::close(A);
  ::close(B);
}

// A session that requests work and then never reads its socket must not
// delay anyone else: a second session's round trips complete while the
// first one's responses sit queued.
TEST(EventLoopTest, StalledReaderDoesNotBlockOtherSessions) {
  LoopFixture L;
  int Stalled = L.connect(), Live = L.connect();
  ASSERT_GE(Stalled, 0);
  ASSERT_GE(Live, 0);

  std::vector<uint8_t> Img = compliantImage(800);
  for (int I = 0; I < 8; ++I)
    sendFrame(Stalled, MsgKind::VerifyRequest,
              svc::proto::encodeImageBatch({Img}));
  // Never read Stalled. The live session must keep making progress.
  FrameReader Rd(Live);
  for (int I = 0; I < 8; ++I) {
    sendFrame(Live, MsgKind::VerifyRequest,
              svc::proto::encodeImageBatch({Img}));
    Frame F = Rd.next();
    ASSERT_EQ(F.Kind, MsgKind::VerifyResponse);
    EXPECT_TRUE(svc::proto::decodeVerifyResponse(F.Body)[0].Ok);
  }
  ::close(Live);
  // Drain the stalled session only now — the responses were computed
  // while it dawdled, not on demand.
  FrameReader RdS(Stalled);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(RdS.next().Kind, MsgKind::VerifyResponse);
  ::close(Stalled);
}

// With a tiny per-session budget, pipelined cold tables fetches (each
// reply is a ~38 KiB blob) must trip the backpressure pause at least
// once — and every reply must still arrive intact once the client reads.
TEST(EventLoopTest, BackpressurePausesOnBudget) {
  svc::EventLoopOptions LO;
  LO.SessionBudgetBytes = 1024; // far below one tables reply
  LoopFixture L(LO);
  int Fd = L.connect();
  ASSERT_GE(Fd, 0);

  const int Requests = 6;
  for (int I = 0; I < Requests; ++I)
    sendFrame(Fd, MsgKind::TablesRequest, svc::proto::encodeTablesRequest(""));
  // Let the server hit the budget before we start draining.
  EXPECT_TRUE(
      eventually([&] { return L.Met.SvcBackpressurePauses.get() >= 1; }));

  FrameReader Rd(Fd);
  for (int I = 0; I < Requests; ++I) {
    Frame F = Rd.next();
    ASSERT_EQ(F.Kind, MsgKind::TablesResponse);
    svc::proto::TablesReply R = svc::proto::decodeTablesResponse(F.Body);
    EXPECT_FALSE(R.Blob.empty()) << "reply " << I;
    EXPECT_EQ(R.HashHex, L.Server.tablesHashHex());
  }
  ::close(Fd);
}

// The SIGPIPE regression: a client that sends a request and exits before
// the reply lands must cost exactly its own session (svc_peer_drops),
// never the process — other sessions keep round-tripping.
TEST(EventLoopTest, ClientKilledMidReplyOnlyDropsItsSession) {
  LoopFixture L;
  int Doomed = L.connect();
  ASSERT_GE(Doomed, 0);
  std::vector<uint8_t> Img = compliantImage(900, 2048);
  sendFrame(Doomed, MsgKind::VerifyRequest,
            svc::proto::encodeImageBatch({Img, Img, Img}));
  ::close(Doomed); // dead before the reply: the server's send gets EPIPE

  int Live = L.connect();
  ASSERT_GE(Live, 0);
  FrameReader Rd(Live);
  sendFrame(Live, MsgKind::VerifyRequest, svc::proto::encodeImageBatch({Img}));
  EXPECT_EQ(Rd.next().Kind, MsgKind::VerifyResponse);
  // The doomed session must be reaped as a peer drop (EPIPE on send or
  // reset on read), not crash the loop.
  EXPECT_TRUE(eventually([&] { return L.Met.SvcPeerDrops.get() >= 1; }));
  ::close(Live);
}

// Accept-side EMFILE resilience: with the fd soft limit clamped to the
// table's current size, an incoming connection parks in the backlog and
// accept4 fails EMFILE. The loop must log + back off (svc_accept_backoffs)
// instead of dying, and serve the connection once the limit is restored.
TEST(EventLoopTest, AcceptRecoversFromEmfile) {
  svc::EventLoopOptions LO;
  LO.AcceptBackoffMs = 20;
  LoopFixture L(LO);

  // Reserve the client socket *before* clamping the limit.
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);

  rlimit Old{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &Old), 0);
  int Next = ::dup(0); // the lowest fd a successful accept4 would return
  ASSERT_GE(Next, 0);
  ::close(Next);
  rlimit Clamped = Old;
  Clamped.rlim_cur = rlim_t(Next);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &Clamped), 0);

  // connect(2) completes against the listen backlog without an accept.
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  ASSERT_LT(L.SockPath.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, L.SockPath.c_str(), L.SockPath.size() + 1);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);

  bool BackedOff =
      eventually([&] { return L.Met.SvcAcceptBackoffs.get() >= 1; });
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &Old), 0); // restore before asserting
  EXPECT_TRUE(BackedOff);

  // After the backoff expires the same connection must be served.
  FrameReader Rd(Fd);
  sendFrame(Fd, MsgKind::AuditRequest, {});
  EXPECT_EQ(Rd.next().Kind, MsgKind::AuditResponse);
  EXPECT_GE(L.Met.SvcAcceptErrors.get(), 1u);
  ::close(Fd);
}

// Graceful drain: a ShutdownRequest on one session stops the listener
// and flushes every other session's queued responses before run()
// returns Status::Shutdown.
TEST(EventLoopTest, ShutdownDrainsInFlightSessions) {
  LoopFixture L;
  int Worker = L.connect(), Ctl = L.connect();
  ASSERT_GE(Worker, 0);
  ASSERT_GE(Ctl, 0);

  std::vector<uint8_t> Img = compliantImage(1000);
  FrameReader RdW(Worker);
  for (int I = 0; I < 4; ++I)
    sendFrame(Worker, MsgKind::VerifyRequest,
              svc::proto::encodeImageBatch({Img}));
  // Confirm the worker session is live and being served before the
  // shutdown races in.
  EXPECT_EQ(RdW.next().Kind, MsgKind::VerifyResponse);

  FrameReader RdCtl(Ctl);
  sendFrame(Ctl, MsgKind::ShutdownRequest, {});
  EXPECT_EQ(RdCtl.next().Kind, MsgKind::ShutdownResponse);

  // In-flight frames finish and their responses flush before the drain
  // closes the session; frames still parked in the parse buffer are
  // dropped — so read until EOF and accept any prefix of the remaining
  // three responses.
  try {
    for (int I = 0; I < 3; ++I)
      EXPECT_EQ(RdW.next().Kind, MsgKind::VerifyResponse);
  } catch (const std::runtime_error &) {
    // EOF: the drain closed the session after flushing what was done.
  }

  L.join();
  EXPECT_EQ(L.Result, svc::EventLoop::Status::Shutdown);
  EXPECT_EQ(L.connect(), -1); // listener is gone after the drain
  ::close(Worker);
  ::close(Ctl);
}

// requestStop() from another thread: run() returns Status::Stopped after
// draining, without any client involvement.
TEST(EventLoopTest, RequestStopStopsTheLoop) {
  LoopFixture L;
  int Fd = L.connect();
  ASSERT_GE(Fd, 0);
  FrameReader Rd(Fd);
  sendFrame(Fd, MsgKind::AuditRequest, {});
  EXPECT_EQ(Rd.next().Kind, MsgKind::AuditResponse);
  L.Loop->requestStop();
  L.join();
  EXPECT_EQ(L.Result, svc::EventLoop::Status::Stopped);
  ::close(Fd);
}

// The metrics scrape over the wire: the exposition must reflect the very
// requests this session made, and the active-session gauge must count
// this connection.
TEST(EventLoopTest, MetricsScrapeReflectsSession) {
  LoopFixture L;
  int Fd = L.connect();
  ASSERT_GE(Fd, 0);
  FrameReader Rd(Fd);

  std::vector<uint8_t> Img = compliantImage(1100);
  sendFrame(Fd, MsgKind::VerifyRequest, svc::proto::encodeImageBatch({Img}));
  ASSERT_EQ(Rd.next().Kind, MsgKind::VerifyResponse);

  sendFrame(Fd, MsgKind::MetricsRequest, {});
  Frame F = Rd.next();
  ASSERT_EQ(F.Kind, MsgKind::MetricsResponse);
  std::string Expo = svc::proto::decodeMetricsResponse(F.Body);
  EXPECT_NE(Expo.find("svc_verify_requests 1\n"), std::string::npos) << Expo;
  EXPECT_NE(Expo.find("svc_sessions_active 1\n"), std::string::npos) << Expo;
  EXPECT_NE(Expo.find("svc_metrics_requests 1\n"), std::string::npos);

  // A nonempty body is a malformed request, answered without killing
  // the session.
  sendFrame(Fd, MsgKind::MetricsRequest, {0x01});
  EXPECT_EQ(Rd.next().Kind, MsgKind::ErrorResponse);
  sendFrame(Fd, MsgKind::MetricsRequest, {});
  EXPECT_EQ(Rd.next().Kind, MsgKind::MetricsResponse);
  ::close(Fd);
}
