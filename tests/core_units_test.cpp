//===- tests/core_units_test.cpp ------------------------------*- C++ -*-===//
//
// Focused unit tests for the trusted core's pieces (paper Figure 6
// semantics of `match`), the NaCl assembler, the workload generator, the
// mutator, and the trusted runtime.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "nacl/Assembler.h"
#include "nacl/Mutator.h"
#include "nacl/TrustedRuntime.h"
#include "nacl/WorkloadGen.h"
#include "x86/FastDecoder.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::core;
using namespace rocksalt::nacl;

//===----------------------------------------------------------------------===//
// dfaMatch — the exact contract of Figure 6.
//===----------------------------------------------------------------------===//

namespace {

/// A tiny DFA accepting "AB" or "A" built by hand through the regex
/// pipeline.
re::Dfa twoStringDfa(re::Factory &F) {
  return re::buildDfa(
      F, F.alt(F.byteLit('A'), F.cat(F.byteLit('B'), F.byteLit('C'))));
}

} // namespace

TEST(DfaMatch, AdvancesPosExactlyPastShortestAccept) {
  re::Factory F;
  re::Dfa D = twoStringDfa(F);
  const uint8_t Code[] = {'A', 'X', 'Y'};
  uint32_t Pos = 0;
  ASSERT_TRUE(dfaMatch(D, Code, &Pos, 3));
  EXPECT_EQ(Pos, 1u);
}

TEST(DfaMatch, LeavesPosUnchangedOnFailure) {
  re::Factory F;
  re::Dfa D = twoStringDfa(F);
  const uint8_t Code[] = {'Z', 'A'};
  uint32_t Pos = 0;
  EXPECT_FALSE(dfaMatch(D, Code, &Pos, 2));
  EXPECT_EQ(Pos, 0u);
  // But matching at position 1 succeeds.
  Pos = 1;
  EXPECT_TRUE(dfaMatch(D, Code, &Pos, 2));
  EXPECT_EQ(Pos, 2u);
}

TEST(DfaMatch, StopsAtRejectState) {
  re::Factory F;
  re::Dfa D = twoStringDfa(F);
  const uint8_t Code[] = {'B', 'X', 'C'}; // diverges after B
  uint32_t Pos = 0;
  EXPECT_FALSE(dfaMatch(D, Code, &Pos, 3));
  EXPECT_EQ(Pos, 0u);
}

TEST(DfaMatch, RunsOutOfInputWithoutAccepting) {
  re::Factory F;
  re::Dfa D = twoStringDfa(F);
  const uint8_t Code[] = {'B'};
  uint32_t Pos = 0;
  EXPECT_FALSE(dfaMatch(D, Code, &Pos, 1));
}

TEST(DfaMatch, EmptyInputNeverMatches) {
  re::Factory F;
  re::Dfa D = twoStringDfa(F);
  uint32_t Pos = 0;
  EXPECT_FALSE(dfaMatch(D, nullptr, &Pos, 0));
}

//===----------------------------------------------------------------------===//
// Assembler.
//===----------------------------------------------------------------------===//

TEST(Assembler, PadsBeforeStraddlingInstruction) {
  Assembler A;
  for (int I = 0; I < 30; ++I)
    A.emit(x86::Instr{}); // 30 one-byte NOPs
  // A 5-byte mov would straddle the 32-byte boundary; the assembler must
  // pad to offset 32 first.
  x86::Instr Mov;
  Mov.Op = x86::Opcode::MOV;
  Mov.Op1 = x86::Operand::reg(x86::Reg::EAX);
  Mov.Op2 = x86::Operand::imm(0x11223344);
  A.emit(Mov);
  std::vector<uint8_t> Code = A.finish();
  EXPECT_EQ(Code[30], 0x90);
  EXPECT_EQ(Code[31], 0x90);
  EXPECT_EQ(Code[32], 0xB8); // mov eax, imm32 at the bundle start
}

TEST(Assembler, ForwardAndBackwardFixups) {
  Assembler A;
  A.jmpTo("fwd");
  A.label("back");
  A.emit(x86::Instr{});
  A.label("fwd");
  A.jmpTo("back");
  std::vector<uint8_t> Code = A.finish();

  // First jump: at 0, 5 bytes, targets offset 6.
  auto J1 = x86::fastDecode(Code);
  ASSERT_TRUE(J1);
  EXPECT_EQ(J1->I.Op1.ImmVal, 1u); // 6 - 5
  // Second jump: at 6, targets offset 5 (disp = 5 - 11 = -6).
  auto J2 = x86::fastDecode(Code.data() + 6, Code.size() - 6);
  ASSERT_TRUE(J2);
  EXPECT_EQ(static_cast<int32_t>(J2->I.Op1.ImmVal), -6);
}

TEST(Assembler, AlignedLabelIsBundleAligned) {
  Assembler A;
  A.emit(x86::Instr{});
  A.alignedLabel("entry");
  uint32_t Here = A.here();
  EXPECT_EQ(Here % BundleSize, 0u);
  EXPECT_NE(Here, 0u);
  A.hlt();
  (void)A.finish();
}

TEST(Assembler, FinishPadsToWholeBundles) {
  Assembler A;
  A.emit(x86::Instr{});
  std::vector<uint8_t> Code = A.finish();
  EXPECT_EQ(Code.size() % BundleSize, 0u);
}

TEST(Assembler, MaskedFormsVerify) {
  RockSalt V;
  for (x86::Reg R : {x86::Reg::EAX, x86::Reg::ECX, x86::Reg::EDX,
                     x86::Reg::EBX, x86::Reg::EBP, x86::Reg::ESI,
                     x86::Reg::EDI}) {
    Assembler A;
    A.maskedJump(R);
    A.maskedCall(R);
    EXPECT_TRUE(V.verify(A.finish())) << x86::regName(R);
  }
}

//===----------------------------------------------------------------------===//
// WorkloadGen / Mutator.
//===----------------------------------------------------------------------===//

TEST(WorkloadGen, RespectsTargetSizeRoughly) {
  WorkloadOptions Opts;
  Opts.TargetBytes = 4096;
  Opts.Seed = 5;
  std::vector<uint8_t> Code = generateWorkload(Opts);
  EXPECT_GE(Code.size(), 4096u);
  EXPECT_LE(Code.size(), 4096u + 512u);
  EXPECT_EQ(Code.size() % BundleSize, 0u);
}

TEST(WorkloadGen, DeterministicPerSeed) {
  WorkloadOptions Opts;
  Opts.TargetBytes = 1024;
  Opts.Seed = 9;
  EXPECT_EQ(generateWorkload(Opts), generateWorkload(Opts));
  WorkloadOptions Other = Opts;
  Other.Seed = 10;
  EXPECT_NE(generateWorkload(Opts), generateWorkload(Other));
}

TEST(WorkloadGen, SafeInstrsAreAlwaysEncodable) {
  Rng R(77);
  for (int I = 0; I < 2000; ++I) {
    x86::Instr Ins = randomSafeInstr(R);
    EXPECT_TRUE(x86::encode(Ins).has_value());
  }
}

TEST(Mutator, TargetedAttacksChangeTheImage) {
  WorkloadOptions Opts;
  Opts.TargetBytes = 512;
  Opts.Seed = 3;
  Opts.MaskedJumpRate = 100;
  std::vector<uint8_t> Code = generateWorkload(Opts);
  Rng R(4);
  for (Attack A :
       {Attack::BareIndirectJump, Attack::InsertRet, Attack::InsertInt,
        Attack::StripMask, Attack::SegmentOverride, Attack::FarCall,
        Attack::WriteSegReg, Attack::PrefixedBranch}) {
    auto Bad = applyAttack(Code, A, R);
    if (!Bad)
      continue;
    EXPECT_NE(*Bad, Code) << int(A);
    EXPECT_EQ(Bad->size(), Code.size());
  }
}

TEST(Mutator, RandomMutationFlipsExactlyOneSite) {
  std::vector<uint8_t> Code(128, 0x90);
  Rng R(5);
  for (int I = 0; I < 100; ++I) {
    std::vector<uint8_t> M = mutateRandom(Code, R);
    int Diffs = 0;
    for (size_t J = 0; J < Code.size(); ++J)
      Diffs += Code[J] != M[J];
    EXPECT_LE(Diffs, 1);
  }
}

//===----------------------------------------------------------------------===//
// TrustedRuntime.
//===----------------------------------------------------------------------===//

namespace {

sem::Cpu loadProgram(const std::vector<uint8_t> &Code) {
  sem::Cpu C;
  C.configureSandbox(0x10000, static_cast<uint32_t>(Code.size()), 0x400000,
                     0x10000, Code);
  return C;
}

} // namespace

TEST(TrustedRuntime, ExitServiceStopsWithCode) {
  Assembler A;
  x86::Instr MovEax;
  MovEax.Op = x86::Opcode::MOV;
  MovEax.Op1 = x86::Operand::reg(x86::Reg::EAX);
  MovEax.Op2 = x86::Operand::imm(TrustedRuntime::SvcExit);
  x86::Instr MovEbx = MovEax;
  MovEbx.Op1 = x86::Operand::reg(x86::Reg::EBX);
  MovEbx.Op2 = x86::Operand::imm(7);
  A.emit(MovEbx);
  A.emit(MovEax);
  A.hlt();
  sem::Cpu C = loadProgram(A.finish());
  TrustedRuntime RT;
  auto R = RT.run(C, 1000);
  EXPECT_TRUE(R.Exited);
  EXPECT_EQ(R.ExitCode, 7u);
}

TEST(TrustedRuntime, WriteServiceCopiesFromDataSegment) {
  Assembler A;
  auto Mov = [](x86::Reg R, uint32_t V) {
    x86::Instr I;
    I.Op = x86::Opcode::MOV;
    I.Op1 = x86::Operand::reg(R);
    I.Op2 = x86::Operand::imm(V);
    return I;
  };
  A.emit(Mov(x86::Reg::EAX, TrustedRuntime::SvcWrite));
  A.emit(Mov(x86::Reg::EBX, 0x80)); // data offset
  A.emit(Mov(x86::Reg::ECX, 5));    // length
  A.hlt();
  A.emit(Mov(x86::Reg::EAX, TrustedRuntime::SvcExit));
  A.emit(Mov(x86::Reg::EBX, 0));
  A.hlt();
  sem::Cpu C = loadProgram(A.finish());
  const char *Msg = "hello";
  for (int I = 0; I < 5; ++I)
    C.M.Mem.store8(0x400000 + 0x80 + I, Msg[I]);
  TrustedRuntime RT;
  auto R = RT.run(C, 1000);
  EXPECT_EQ(R.Output, "hello");
  EXPECT_TRUE(R.Exited);
}

TEST(TrustedRuntime, FaultTerminatesWithoutExit) {
  // A program that jumps outside the code segment: the runtime reports
  // the fault rather than an exit.
  std::vector<uint8_t> Code = {0xB8, 0x00, 0x10, 0x00, 0x00, // mov eax,4096
                               0x83, 0xE0, 0xE0,             // and eax,-32
                               0xFF, 0xE0};                  // jmp *eax
  while (Code.size() % 32)
    Code.push_back(0x90);
  sem::Cpu C = loadProgram(Code);
  TrustedRuntime RT;
  auto R = RT.run(C, 1000);
  EXPECT_FALSE(R.Exited);
  EXPECT_EQ(R.Final, rtl::Status::Fault);
}

//===----------------------------------------------------------------------===//
// MaskedJump shape guard — the PairJmp bitmap derivation.
//===----------------------------------------------------------------------===//

// The checker marks the jump half of a masked pair at
// (end of match) - MaskedJumpHalfLen. That derivation is correct for any
// mask-half length, but MaskedJumpHalfLen itself hard-codes that the
// jump half is exactly two bytes. This test walks the compiled
// MaskedJump DFA and fails if the grammar ever accepts a string whose
// length is not mask(3) + jump(2) = 5 — i.e. if someone grows the
// grammar without revisiting the PairJmp positions.
TEST(Policy, MaskedJumpAcceptsOnlyFiveByteStrings) {
  const re::Dfa &D = policyTables().MaskedJump;
  // Breadth-first reachability: Reach[d] = states reachable by some
  // d-byte string. Depth-cap far above any plausible pair encoding.
  constexpr unsigned MaxDepth = 24;
  std::vector<uint8_t> Reach(D.numStates(), 0), Next;
  Reach[D.Start] = 1;
  std::vector<unsigned> AcceptDepths;
  for (unsigned Depth = 0; Depth <= MaxDepth; ++Depth) {
    for (size_t S = 0; S < D.numStates(); ++S)
      if (Reach[S] && D.Accepts[S])
        AcceptDepths.push_back(Depth);
    Next.assign(D.numStates(), 0);
    for (size_t S = 0; S < D.numStates(); ++S) {
      if (!Reach[S] || D.Rejects[S])
        continue;
      for (unsigned B = 0; B < 256; ++B)
        Next[D.step(uint16_t(S), uint8_t(B))] = 1;
    }
    Reach.swap(Next);
  }
  ASSERT_EQ(AcceptDepths.size(), 1u)
      << "MaskedJump accepts strings of several lengths; the PairJmp "
         "derivation in check/scanShard/mergeShardScans must be revisited";
  EXPECT_EQ(AcceptDepths[0], 3u + MaskedJumpHalfLen);
}

// The other half of the guard: every sampled MaskedJump string really
// ends in a two-byte FF-group jump, so (end - MaskedJumpHalfLen) is the
// jump half's first byte.
TEST(Policy, MaskedJumpMatchesEndInTwoByteJumpHalf) {
  re::Factory F;
  PolicyGrammars P = buildPolicyGrammars(F);
  uint64_t RngState = 1234;
  unsigned Sampled = 0;
  for (int I = 0; I < 200; ++I) {
    auto Bytes = F.sampleBytes(P.MaskedJumpRe, RngState);
    if (!Bytes)
      continue;
    ++Sampled;
    ASSERT_GE(Bytes->size(), MaskedJumpHalfLen);
    size_t Jmp = Bytes->size() - MaskedJumpHalfLen;
    EXPECT_EQ((*Bytes)[Jmp], 0xFF);
    uint8_t Group = (*Bytes)[Jmp + 1] & 0xF8;
    EXPECT_TRUE(Group == 0xE0 || Group == 0xD0)
        << "modrm " << unsigned((*Bytes)[Jmp + 1]);
  }
  EXPECT_GE(Sampled, 50u);
}
