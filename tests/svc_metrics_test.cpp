//===- tests/svc_metrics_test.cpp -----------------------------*- C++ -*-===//
//
// Tests for the lock-free metrics layer, pinning two contracts the fuzz
// harness leans on: the histogram's last bucket is a true overflow
// bucket (values clamped into it must never be reported under a finite
// upper edge), and dump() renders histograms in the Prometheus
// exposition shape — cumulative le-labeled buckets with an +Inf
// terminator equal to the total count.
//
//===----------------------------------------------------------------------===//

#include "svc/Metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

using namespace rocksalt::svc;

namespace {

/// The parsed `name_bucket{le="..."} value` lines of one histogram, in
/// dump order.
struct BucketLine {
  std::string Le; // "+Inf" or a decimal edge
  uint64_t Count;
};

std::vector<BucketLine> bucketLines(const std::string &Dump,
                                    const std::string &Name) {
  std::vector<BucketLine> Lines;
  std::istringstream In(Dump);
  std::string L;
  const std::string Prefix = Name + "_bucket{le=\"";
  while (std::getline(In, L)) {
    if (L.rfind(Prefix, 0) != 0)
      continue;
    size_t Close = L.find('"', Prefix.size());
    if (Close == std::string::npos) {
      ADD_FAILURE() << "malformed bucket line: " << L;
      continue;
    }
    BucketLine B;
    B.Le = L.substr(Prefix.size(), Close - Prefix.size());
    B.Count = std::stoull(L.substr(L.find(' ', Close)));
    Lines.push_back(std::move(B));
  }
  return Lines;
}

} // namespace

TEST(Histogram, OverflowValuesLandInTheLastBucket) {
  Histogram H;
  H.record(uint64_t(1) << 63); // bit_width 64: no finite bucket fits
  H.record(UINT64_MAX);
  EXPECT_EQ(H.bucket(Histogram::NumBuckets - 1), 2u);
  EXPECT_EQ(H.count(), 2u);
  EXPECT_EQ(H.max(), UINT64_MAX);
}

// Regression: quantiles that land in the overflow bucket used to be
// reported as the bucket's nominal power-of-two edge (2^63 - 1), below
// the recorded values. The observed max is the only tight upper bound
// the overflow bucket has.
TEST(Histogram, QuantileInOverflowBucketReportsObservedMax) {
  Histogram H;
  H.record(1);
  H.record(UINT64_MAX);
  EXPECT_EQ(H.quantile(1.0), UINT64_MAX);
  // The half that falls in a finite bucket is still edge-reported.
  EXPECT_EQ(H.quantile(0.5), 1u);
}

TEST(Histogram, QuantileEdgesForFiniteBuckets) {
  Histogram H;
  for (uint64_t V : {0ull, 1ull, 5ull, 200ull})
    H.record(V);
  EXPECT_EQ(H.quantile(0.25), 0u);   // bucket 0: exactly zero
  EXPECT_EQ(H.quantile(0.5), 1u);    // bucket 1 edge
  EXPECT_EQ(H.quantile(0.75), 7u);   // 5 lands in bucket 3, edge 7
  EXPECT_EQ(H.quantile(1.0), 255u);  // 200 lands in bucket 8, edge 255
}

TEST(MetricsDump, HistogramBucketsAreCumulativeWithInfTerminator) {
  Metrics M;
  for (uint64_t V : {1ull, 1ull, 100ull, 5000ull})
    M.VerifyNanos.record(V);
  auto Lines = bucketLines(M.dump(), "verify_nanos");
  ASSERT_GE(Lines.size(), 2u);

  // Exactly one +Inf line, last, equal to the total count.
  EXPECT_EQ(Lines.back().Le, "+Inf");
  EXPECT_EQ(Lines.back().Count, 4u);
  for (size_t I = 0; I + 1 < Lines.size(); ++I)
    EXPECT_NE(Lines[I].Le, "+Inf");

  // Cumulative: non-decreasing counts, strictly increasing finite edges.
  for (size_t I = 0; I + 1 < Lines.size(); ++I) {
    EXPECT_LE(Lines[I].Count, Lines[I + 1].Count);
    if (Lines[I + 1].Le != "+Inf") {
      EXPECT_LT(std::stoull(Lines[I].Le), std::stoull(Lines[I + 1].Le));
    }
  }
}

// Regression: overflow values used to be printed under the fabricated
// finite edge 2^63 - 1. They may only be counted by the +Inf line.
TEST(MetricsDump, OverflowBucketHasNoFiniteEdge) {
  Metrics M;
  M.VerifyNanos.record(7);
  M.VerifyNanos.record(UINT64_MAX);
  auto Lines = bucketLines(M.dump(), "verify_nanos");
  ASSERT_GE(Lines.size(), 2u);
  ASSERT_EQ(Lines.back().Le, "+Inf");
  EXPECT_EQ(Lines.back().Count, 2u);
  // Every finite-edge line must exclude the overflow observation.
  for (size_t I = 0; I + 1 < Lines.size(); ++I) {
    EXPECT_LE(Lines[I].Count, 1u) << "le=" << Lines[I].Le;
    EXPECT_LT(std::stoull(Lines[I].Le), uint64_t(1) << 63);
  }
}

// Regression: out-of-domain quantile arguments. Q <= 0 used to index
// before the first observation and Q > 1 past the last; both now clamp
// into (0, 1], and NaN (which used to fall through every comparison and
// report max()) is rejected.
TEST(Histogram, QuantileClampsOutOfDomainArguments) {
  Histogram H;
  for (uint64_t V : {1ull, 5ull, 200ull})
    H.record(V);
  // Q <= 0 clamps to the first observation's bucket edge, not below it.
  EXPECT_EQ(H.quantile(0.0), H.quantile(1e-9));
  EXPECT_EQ(H.quantile(-3.0), H.quantile(1e-9));
  EXPECT_EQ(H.quantile(0.0), 1u); // 1 lands in bucket 1, edge 1
  // Q > 1 clamps to the maximum observation's bucket edge.
  EXPECT_EQ(H.quantile(2.0), H.quantile(1.0));
  EXPECT_EQ(H.quantile(2.0), 255u); // 200 lands in bucket 8, edge 255
}

TEST(Histogram, QuantileOnEmptyHistogramIsZero) {
  Histogram H;
  EXPECT_EQ(H.quantile(0.5), 0u);
  EXPECT_EQ(H.quantile(1.0), 0u);
  EXPECT_EQ(H.quantile(-1.0), 0u);
}

#ifdef NDEBUG
// In release builds the NaN assert is compiled out and the documented
// fallback applies: 0, never a fabricated statistic. (In debug builds
// the same call trips an assert, which is the intended loud failure.)
TEST(Histogram, QuantileNaNReturnsZeroWhenAssertsAreOff) {
  Histogram H;
  H.record(42);
  EXPECT_EQ(H.quantile(std::nan("")), 0u);
}
#endif

TEST(MetricsDump, FuzzCountersAppearAndReset) {
  Metrics M;
  M.OracleRuns.add(3);
  M.OracleDisagreements.add();
  M.ShrinkSteps.add(17);
  std::string D = M.dump();
  EXPECT_NE(D.find("fuzz_oracle_runs 3\n"), std::string::npos);
  EXPECT_NE(D.find("fuzz_disagreements 1\n"), std::string::npos);
  EXPECT_NE(D.find("fuzz_shrink_steps 17\n"), std::string::npos);
  M.reset();
  EXPECT_EQ(M.OracleRuns.get(), 0u);
  EXPECT_EQ(M.OracleDisagreements.get(), 0u);
  EXPECT_EQ(M.ShrinkSteps.get(), 0u);
}
