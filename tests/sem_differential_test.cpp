//===- tests/sem_differential_test.cpp ------------------------*- C++ -*-===//
//
// Experiment E3 (model validation, paper section 2.5): the RTL pipeline
// and the independent direct interpreter are run on generatively fuzzed
// instruction instances from identical randomized states; the full
// machine state (registers, flags, segments, PC, memory, status) must
// agree after every instance. The paper validated >10M instances against
// hardware; the checked-in test runs a smaller sweep per configuration
// and the bench (bench_simulator) scales it up.
//
//===----------------------------------------------------------------------===//

#include "sem/Differential.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::sem;

TEST(Differential, FullMixAgrees) {
  DiffReport R = runDifferential(4000, /*Seed=*/1);
  EXPECT_EQ(R.Instances, 4000u);
  EXPECT_EQ(R.Mismatches, 0u) << R.FirstMismatch;
}

TEST(Differential, ComputeOnlyMixAgrees) {
  x86::GenOptions Opts;
  Opts.AllowControlFlow = false;
  Opts.AllowSegmentOps = false;
  Opts.AllowPrivileged = false;
  DiffReport R = runDifferential(4000, /*Seed=*/2, Opts);
  EXPECT_EQ(R.Mismatches, 0u) << R.FirstMismatch;
}

TEST(Differential, ControlFlowMixAgrees) {
  x86::GenOptions Opts;
  Opts.MemOperands = false;
  DiffReport R = runDifferential(3000, /*Seed=*/3, Opts);
  EXPECT_EQ(R.Mismatches, 0u) << R.FirstMismatch;
}

TEST(Differential, StringHeavyMixAgrees) {
  x86::GenOptions Opts;
  Opts.AllowControlFlow = false;
  Opts.AllowPrivileged = false;
  DiffReport R = runDifferential(3000, /*Seed=*/4, Opts);
  EXPECT_EQ(R.Mismatches, 0u) << R.FirstMismatch;
}

TEST(Differential, DiffStatesDetectsEachComponent) {
  rtl::MachineState A, B;
  EXPECT_TRUE(diffStates(A, B).empty());
  B.Regs[3] = 7;
  EXPECT_NE(diffStates(A, B).find("ebx"), std::string::npos);
  B = A;
  B.Pc = 4;
  EXPECT_NE(diffStates(A, B).find("pc"), std::string::npos);
  B = A;
  B.Flags[0] = true;
  EXPECT_NE(diffStates(A, B).find("CF"), std::string::npos);
  B = A;
  B.SegLimit[2] = 9;
  EXPECT_NE(diffStates(A, B).find("segment"), std::string::npos);
  B = A;
  B.Mem.store8(100, 1);
  EXPECT_NE(diffStates(A, B).find("memory"), std::string::npos);
  B = A;
  B.St = rtl::Status::Fault;
  EXPECT_NE(diffStates(A, B).find("status"), std::string::npos);
}
