//===- tests/tables_adopt_test.cpp ----------------------------*- C++ -*-===//
//
// Adoption semantics end to end, through the public core/Policy.h
// surface: tables adopted before first use become *the* process tables
// (legacy accessor AND fused fast path — the two can no longer be
// cached apart), adopting the same content later is an idempotent
// success, and adopting different content after first use hard-fails.
// The fused/legacy lockstep sweep over a mutated workload corpus pins
// the fuse-on-register invariant behaviorally: the fused engine the
// adoption installed must decide bit-for-bit like the legacy tables it
// was fused from.
//
// Test order matters in a shared-process run: AdoptBeforeFirstUseWins
// must be the first table access in this binary. Under ctest each TEST
// runs in its own process (gtest_discover_tests), which is the real
// gate.
//
//===----------------------------------------------------------------------===//

#include "core/TableRegistry.h"
#include "core/Verifier.h"
#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace rocksalt;
using namespace rocksalt::core;

namespace {

/// Bit-for-bit comparison of two instrumented results.
void expectSameResult(const CheckResult &A, const CheckResult &B,
                      uint32_t Seed, uint32_t Step) {
  EXPECT_EQ(A.Ok, B.Ok) << "seed " << Seed << " step " << Step;
  EXPECT_EQ(A.Reason, B.Reason) << "seed " << Seed << " step " << Step;
  EXPECT_EQ(A.Valid, B.Valid) << "seed " << Seed << " step " << Step;
  EXPECT_EQ(A.Target, B.Target) << "seed " << Seed << " step " << Step;
  EXPECT_EQ(A.PairJmp, B.PairJmp) << "seed " << Seed << " step " << Step;
}

TEST(TableAdoption, AdoptBeforeFirstUseWins) {
  // Nothing in this process has touched the default entry yet, so the
  // raw (unminimized) tables must win the key outright…
  PolicyTables Raw = buildPolicyTablesRaw();
  uint32_t RawNcfStates = uint32_t(Raw.NoControlFlow.numStates());
  ASSERT_NE(RawNcfStates, uint32_t(NoControlFlowStates))
      << "raw tables unexpectedly minimal — this test needs distinct sets";
  EXPECT_TRUE(adoptPolicyTables(std::move(Raw)));

  // …and every accessor must now serve the adopted set, fused included.
  EXPECT_EQ(policyTables().NoControlFlow.numStates(), RawNcfStates);
  const TableEntry &E = defaultTableEntry();
  EXPECT_EQ(E.Tables, &policyTables());
  EXPECT_EQ(E.Fused, &fusedPolicyTables());

  // Building the normal (minimized) tables now and adopting them must
  // hard-fail: the adopted raw set is in use.
  EXPECT_THROW(adoptPolicyTables(buildPolicyTables()), std::runtime_error);

  // The fused form was derived from the adopted tables at registration.
  // Drive both engines across a mutated corpus and demand bit-identical
  // instrumented results — the divergence the old second singleton
  // allowed after adoption.
  RockSalt Fast(*E.Fused);
  for (uint32_t Seed = 1; Seed <= 6; ++Seed) {
    nacl::WorkloadOptions WO;
    WO.TargetBytes = 512;
    WO.Seed = 1000 + Seed;
    std::vector<uint8_t> Img = nacl::generateWorkload(WO);
    Rng R(Seed);
    for (uint32_t Step = 0; Step < 40; ++Step) {
      CheckResult Legacy =
          checkLegacy(*E.Tables, Img.data(), uint32_t(Img.size()));
      CheckResult Fused = Fast.check(Img.data(), uint32_t(Img.size()));
      expectSameResult(Legacy, Fused, WO.Seed, Step);
      Img = nacl::mutateRandom(Img, R);
    }
  }
}

TEST(TableAdoption, AdoptAfterFirstUseOfSameContentSucceeds) {
  (void)policyTables(); // force first use
  // Adopt whichever build matches the live content so this test is
  // order-independent in a shared process (an earlier test may have
  // installed the raw set).
  std::string LiveHash = defaultTableEntry().HashHex;
  PolicyTables Same = buildPolicyTables();
  if (policyTableHashHex(Same) != LiveHash)
    Same = buildPolicyTablesRaw();
  ASSERT_EQ(policyTableHashHex(Same), LiveHash);
  EXPECT_TRUE(adoptPolicyTables(std::move(Same)));
  EXPECT_EQ(defaultTableEntry().HashHex, LiveHash);
}

TEST(TableAdoption, AdoptAfterFirstUseOfDifferentContentThrows) {
  (void)policyTables(); // force first use
  // Whatever is live, pick the candidate that differs from it so this
  // test is order-independent within a shared process.
  std::string LiveHash = defaultTableEntry().HashHex;
  PolicyTables Minimized = buildPolicyTables();
  PolicyTables Raw = buildPolicyTablesRaw();
  PolicyTables Other = policyTableHashHex(Minimized) == LiveHash
                           ? std::move(Raw)
                           : std::move(Minimized);
  ASSERT_NE(policyTableHashHex(Other), LiveHash);
  EXPECT_THROW(adoptPolicyTables(std::move(Other)), std::runtime_error);
  // The live tables survive the failed adoption untouched.
  EXPECT_EQ(defaultTableEntry().HashHex, LiveHash);
}

} // namespace
