//===- tests/analysis_cfglint_test.cpp ------------------------*- C++ -*-===//
//
// Tests for the sandbox CFG lint (analysis/CfgLint.h). The contract
// under test: error-severity diagnostics NEVER fire on an accepted
// image (they are policy violations, localized); warnings and notes are
// advisory and must fire exactly on the hand-assembled hazards below;
// rejected-but-parseable images get an error diagnostic pinpointing the
// reject cause.
//
//===----------------------------------------------------------------------===//

#include "analysis/CfgLint.h"

#include "nacl/Assembler.h"
#include "nacl/WorkloadGen.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace rocksalt;
using namespace rocksalt::analysis;

namespace {

const core::PolicyTables &tables() { return core::policyTables(); }

uint32_t countKind(const CfgLintResult &R, LintKind K) {
  uint32_t N = 0;
  for (const LintDiag &D : R.Diags)
    N += D.Kind == K ? 1 : 0;
  return N;
}

const LintDiag *firstOfKind(const CfgLintResult &R, LintKind K) {
  for (const LintDiag &D : R.Diags)
    if (D.Kind == K)
      return &D;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Accepted images: no errors, severity bookkeeping coherent.
//===----------------------------------------------------------------------===//

TEST(CfgLint, AcceptedWorkloadsHaveZeroErrors) {
  core::RockSalt V;
  for (uint64_t Seed : {1, 7, 23, 99}) {
    nacl::WorkloadOptions O;
    O.TargetBytes = 1024;
    O.Seed = Seed;
    std::vector<uint8_t> Img = nacl::generateWorkload(O);
    ASSERT_TRUE(V.verify(Img)) << "seed " << Seed;
    CfgLintResult R = lintImage(tables(), Img);
    EXPECT_TRUE(R.ParseComplete);
    EXPECT_EQ(R.Errors, 0u) << "seed " << Seed << "\n" << R.render();
    // Node spans tile the image exactly.
    uint32_t Pos = 0;
    for (const CfgNode &N : R.Nodes) {
      EXPECT_EQ(N.Begin, Pos);
      EXPECT_GT(N.End, N.Begin);
      Pos = N.End;
    }
    EXPECT_EQ(Pos, Img.size());
    // Severity counters match the diags.
    uint32_t E = 0, W = 0, Nt = 0;
    for (const LintDiag &D : R.Diags) {
      EXPECT_EQ(D.Sev, lintKindSeverity(D.Kind));
      (D.Sev == LintSeverity::Error ? E
       : D.Sev == LintSeverity::Warning ? W
                                        : Nt)++;
    }
    EXPECT_EQ(E, R.Errors);
    EXPECT_EQ(W, R.Warnings);
    EXPECT_EQ(Nt, R.Notes);
  }
}

TEST(CfgLint, CorpusAcceptImagesHaveZeroErrors) {
  core::RockSalt V;
  for (const char *Name : {"accept-jmp-seam.bin", "accept-maskedpair.bin"}) {
    std::string Path = std::string(ROCKSALT_CORPUS_DIR) + "/" + Name;
    std::ifstream In(Path, std::ios::binary);
    ASSERT_TRUE(In) << Path;
    std::vector<uint8_t> Img((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
    ASSERT_TRUE(V.verify(Img)) << Name;
    CfgLintResult R = lintImage(tables(), Img);
    EXPECT_TRUE(R.ParseComplete) << Name;
    EXPECT_EQ(R.Errors, 0u) << Name << "\n" << R.render();
  }
}

//===----------------------------------------------------------------------===//
// Error diagnostics localize reject causes.
//===----------------------------------------------------------------------===//

TEST(CfgLint, BranchIntoMaskedPairInterior) {
  // jmp +2 lands on the AND's immediate inside the masked pair starting
  // at offset 2: the checker rejects BadTarget, the lint says exactly
  // which pair was entered and where.
  std::vector<uint8_t> Img = {0xEB, 0x02,              // jmp .+2 -> offset 4
                              0x83, 0xE0, 0xE0,        // and eax, -32
                              0xFF, 0xE0};             // jmp *eax
  Img.resize(32, 0x90);

  core::CheckResult C = core::RockSalt().check(Img);
  ASSERT_FALSE(C.Ok);
  ASSERT_EQ(C.Reason, core::RejectReason::BadTarget);

  CfgLintResult R = lintImage(tables(), Img);
  EXPECT_TRUE(R.ParseComplete);
  const LintDiag *D = firstOfKind(R, LintKind::BranchIntoMaskedPair);
  ASSERT_NE(D, nullptr) << R.render();
  EXPECT_EQ(D->Sev, LintSeverity::Error);
  EXPECT_EQ(D->Offset, 0u); // anchored at the offending branch
  EXPECT_EQ(countKind(R, LintKind::BranchIntoInterior), 0u);
}

TEST(CfgLint, BranchIntoPlainInterior) {
  // jmp .+1 lands inside the mov imm32 that follows — an interior, but
  // not a masked pair's.
  std::vector<uint8_t> Img = {0xEB, 0x01,                    // jmp -> offset 3
                              0xB8, 0x11, 0x22, 0x33, 0x44}; // mov eax, imm32
  Img.resize(32, 0x90);

  core::CheckResult C = core::RockSalt().check(Img);
  ASSERT_FALSE(C.Ok);
  ASSERT_EQ(C.Reason, core::RejectReason::BadTarget);

  CfgLintResult R = lintImage(tables(), Img);
  const LintDiag *D = firstOfKind(R, LintKind::BranchIntoInterior);
  ASSERT_NE(D, nullptr) << R.render();
  EXPECT_EQ(D->Offset, 0u);
  EXPECT_EQ(countKind(R, LintKind::BranchIntoMaskedPair), 0u);
}

TEST(CfgLint, UnalignedBundleBoundary) {
  // 31 NOPs then a two-byte instruction straddling the bundle seam:
  // offset 32 is mid-instruction.
  std::vector<uint8_t> Img(31, 0x90);
  Img.push_back(0x89); // mov eax, eax spans [31, 33)
  Img.push_back(0xC0);
  Img.resize(64, 0x90);

  core::CheckResult C = core::RockSalt().check(Img);
  ASSERT_FALSE(C.Ok);
  ASSERT_EQ(C.Reason, core::RejectReason::UnalignedBundle);

  CfgLintResult R = lintImage(tables(), Img);
  EXPECT_TRUE(R.ParseComplete);
  const LintDiag *D = firstOfKind(R, LintKind::UnalignedBundleStart);
  ASSERT_NE(D, nullptr) << R.render();
  EXPECT_EQ(D->Offset, 32u);
}

TEST(CfgLint, ParseStuckOnUnsafeByte) {
  // RET is in no policy grammar: the chain jams immediately.
  std::vector<uint8_t> Img(32, 0x90);
  Img[10] = 0xC3;

  core::CheckResult C = core::RockSalt().check(Img);
  ASSERT_FALSE(C.Ok);
  ASSERT_EQ(C.Reason, core::RejectReason::NoParse);

  CfgLintResult R = lintImage(tables(), Img);
  EXPECT_FALSE(R.ParseComplete);
  const LintDiag *D = firstOfKind(R, LintKind::ParseStuck);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Offset, 10u);
  EXPECT_EQ(R.Nodes.size(), 10u); // the ten NOPs before the jam
}

//===----------------------------------------------------------------------===//
// Warning/note diagnostics on accepted images.
//===----------------------------------------------------------------------===//

TEST(CfgLint, CallRetSeamDiscipline) {
  // callTo leaves the return point mid-bundle -> warning; callToAligned
  // pads so the call ends exactly on the seam -> no warning.
  auto Build = [](bool Aligned) {
    nacl::Assembler A;
    if (Aligned)
      A.callToAligned("fn");
    else
      A.callTo("fn");
    A.hlt();
    A.padToBundle();
    A.alignedLabel("fn");
    A.hlt();
    return A.finish();
  };

  std::vector<uint8_t> Sloppy = Build(false), Disciplined = Build(true);
  ASSERT_TRUE(core::RockSalt().verify(Sloppy));
  ASSERT_TRUE(core::RockSalt().verify(Disciplined));

  CfgLintResult RS = lintImage(tables(), Sloppy);
  CfgLintResult RD = lintImage(tables(), Disciplined);
  EXPECT_EQ(RS.Errors, 0u);
  EXPECT_EQ(RD.Errors, 0u);
  const LintDiag *D = firstOfKind(RS, LintKind::CallRetNotSeam);
  ASSERT_NE(D, nullptr) << RS.render();
  EXPECT_EQ(D->Sev, LintSeverity::Warning);
  EXPECT_EQ(countKind(RD, LintKind::CallRetNotSeam), 0u) << RD.render();
}

TEST(CfgLint, DeadMaskedPairAndUnreachableBundle) {
  // Bundle 0 jumps straight to bundle 2; bundle 1 holds a masked jump
  // that no direct flow reaches.
  nacl::Assembler A;
  A.jmpTo("end");
  A.padToBundle();
  A.maskedJump(x86::Reg::EAX); // bundle 1: dead pair
  A.hlt();
  A.padToBundle();
  A.alignedLabel("end");
  A.hlt();
  std::vector<uint8_t> Img = A.finish();
  ASSERT_TRUE(core::RockSalt().verify(Img));

  CfgLintResult R = lintImage(tables(), Img);
  EXPECT_EQ(R.Errors, 0u) << R.render();
  const LintDiag *Dead = firstOfKind(R, LintKind::DeadMaskedPair);
  ASSERT_NE(Dead, nullptr) << R.render();
  EXPECT_EQ(Dead->Offset, 32u); // the pair opens bundle 1
  const LintDiag *Unr = firstOfKind(R, LintKind::UnreachableBundle);
  ASSERT_NE(Unr, nullptr);
  EXPECT_EQ(Unr->Offset, 32u);
}

TEST(CfgLint, FullyReachableStraightLineIsQuiet) {
  // One bundle of NOPs: nothing to say at any severity.
  std::vector<uint8_t> Img(32, 0x90);
  ASSERT_TRUE(core::RockSalt().verify(Img));
  CfgLintResult R = lintImage(tables(), Img);
  EXPECT_TRUE(R.Diags.empty()) << R.render();
  EXPECT_EQ(R.ReachableNodes, R.Nodes.size());
}

//===----------------------------------------------------------------------===//
// Metrics and rendering.
//===----------------------------------------------------------------------===//

TEST(CfgLint, CountsIntoMetrics) {
  svc::Metrics M;
  std::vector<uint8_t> Img(32, 0x90);
  Img[10] = 0xC3; // one error (parse-stuck)
  lintImage(tables(), Img, &M);
  lintImage(tables(), std::vector<uint8_t>(32, 0x90), &M);
  EXPECT_EQ(M.LintImages.get(), 2u);
  EXPECT_EQ(M.LintErrors.get(), 1u);
  // The dump exposes the counters under stable names.
  std::string Dump = M.dump();
  EXPECT_NE(Dump.find("lint_images 2"), std::string::npos);
  EXPECT_NE(Dump.find("lint_errors 1"), std::string::npos);
  EXPECT_NE(Dump.find("lint_warnings 0"), std::string::npos);
  EXPECT_NE(Dump.find("lint_notes 0"), std::string::npos);
}

TEST(CfgLint, RenderIncludesKindNamesAndSummary) {
  std::vector<uint8_t> Img = {0xEB, 0x02, 0x83, 0xE0, 0xE0, 0xFF, 0xE0};
  Img.resize(32, 0x90);
  CfgLintResult R = lintImage(tables(), Img);
  std::string Text = R.render();
  EXPECT_NE(Text.find("branch-into-masked-pair"), std::string::npos);
  EXPECT_NE(Text.find("error"), std::string::npos);
  EXPECT_NE(Text.find("lint:"), std::string::npos);
}

TEST(CfgLint, EmptyImage) {
  CfgLintResult R = lintImage(tables(), std::vector<uint8_t>{});
  EXPECT_TRUE(R.ParseComplete);
  EXPECT_TRUE(R.Nodes.empty());
  EXPECT_TRUE(R.Diags.empty());
}

} // namespace
