//===- tests/svc_service_test.cpp ------------------------------*- C++ -*-===//
//
// The long-running verification service: every request kind's response
// must be bit-identical to the one-shot path it wraps (verify vs
// core::RockSalt::check, lint vs analysis::lintImage, audit vs
// analysis::auditShippedPolicy, tables vs core::serializePolicyTables),
// the framed codec must reject every malformed shape loudly, the
// tables-by-hash negotiation must short-circuit the blob transfer, and
// a serveFd session must survive malformed bodies while dying on
// malformed framing.
//
//===----------------------------------------------------------------------===//

#include "analysis/CfgLint.h"
#include "analysis/PolicyAudit.h"
#include "core/Policy.h"
#include "core/Verifier.h"
#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"
#include "svc/Protocol.h"
#include "svc/Service.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

using namespace rocksalt;
using svc::proto::Frame;
using svc::proto::MsgKind;
using svc::proto::ProtocolError;

namespace {

/// A mixed accept/reject batch: compliant workloads, random mutations,
/// and a targeted attack.
std::vector<std::vector<uint8_t>> mixedImages(uint32_t N, uint32_t Seed) {
  Rng R(Seed);
  std::vector<std::vector<uint8_t>> Images;
  for (uint32_t I = 0; I < N; ++I) {
    nacl::WorkloadOptions WO;
    WO.TargetBytes = 384 + 64 * (I % 4);
    WO.Seed = Seed + I;
    std::vector<uint8_t> Img = nacl::generateWorkload(WO);
    if (I % 3 == 1)
      Img = nacl::mutateRandom(Img, R);
    if (I % 3 == 2)
      if (auto Bad = nacl::applyAttack(Img, nacl::Attack::InsertRet, R))
        Img = *Bad;
    Images.push_back(std::move(Img));
  }
  return Images;
}

/// AuditReport::render() ends with "audit: PASS (1.2 ms)\n" — the wall
/// time is the only nondeterministic byte in the report, so identity
/// comparisons strip the final line.
std::string stripTimingLine(const std::string &Render) {
  size_t End = Render.rfind("\naudit: ");
  return End == std::string::npos ? Render : Render.substr(0, End + 1);
}

/// Round-trips a request through the framed shell and decodes the
/// expected response kind.
Frame dispatch(svc::Service &S, MsgKind Kind, const std::vector<uint8_t> &Body,
               bool *ShutdownOut = nullptr) {
  std::vector<uint8_t> Req;
  svc::proto::appendFrame(Req, Kind, Body);
  Frame In;
  size_t Pos = 0;
  EXPECT_TRUE(svc::proto::parseFrame(Req.data(), Req.size(), &Pos, &In));
  std::vector<uint8_t> Resp = S.handleFrame(In, ShutdownOut);
  Frame Out;
  Pos = 0;
  EXPECT_TRUE(svc::proto::parseFrame(Resp.data(), Resp.size(), &Pos, &Out));
  EXPECT_EQ(Pos, Resp.size());
  return Out;
}

// --- In-process API: bit-identity with the one-shot paths --------------

TEST(ServiceTest, VerifyMatchesOneShotChecker) {
  svc::Service S(svc::ServiceOptions{2, nullptr});
  std::vector<std::vector<uint8_t>> Images = mixedImages(18, 300);
  core::RockSalt Seq;

  std::vector<svc::proto::VerifyVerdict> V = S.verify(Images); // copies in
  ASSERT_EQ(V.size(), Images.size());
  uint32_t Rejects = 0;
  for (size_t I = 0; I < Images.size(); ++I) {
    core::CheckResult R = Seq.check(Images[I]);
    EXPECT_EQ(V[I].Ok, R.Ok) << "image " << I;
    EXPECT_EQ(V[I].Reason, R.Reason) << "image " << I;
    Rejects += V[I].Ok ? 0 : 1;
  }
  EXPECT_GT(Rejects, 0u); // the batch genuinely exercised the reject path
  EXPECT_EQ(S.metrics().ImagesVerified.get(), Images.size());
}

TEST(ServiceTest, LintMatchesOneShotLintBitIdentically) {
  svc::Service S(svc::ServiceOptions{2, nullptr});
  std::vector<std::vector<uint8_t>> Images = mixedImages(8, 900);

  std::vector<svc::proto::LintReport> Reports = S.lint(Images);
  ASSERT_EQ(Reports.size(), Images.size());
  for (size_t I = 0; I < Images.size(); ++I) {
    analysis::CfgLintResult L =
        analysis::lintImage(core::policyTables(), Images[I]);
    EXPECT_EQ(Reports[I].Render, L.render()) << "image " << I;
    EXPECT_EQ(Reports[I].ParseComplete, L.ParseComplete);
    EXPECT_EQ(Reports[I].Errors, L.Errors);
    EXPECT_EQ(Reports[I].Warnings, L.Warnings);
    EXPECT_EQ(Reports[I].Notes, L.Notes);
  }
  EXPECT_EQ(S.metrics().LintImages.get(), Images.size());
}

TEST(ServiceTest, AuditMatchesOneShotAudit) {
  svc::Service S;
  svc::proto::AuditVerdict Served = S.audit();
  analysis::AuditReport Local = analysis::auditShippedPolicy();
  EXPECT_TRUE(Served.Pass);
  EXPECT_EQ(Served.Pass, Local.Pass);
  // Identical up to the wall-clock line — same findings, same stats.
  EXPECT_EQ(stripTimingLine(Served.Render), stripTimingLine(Local.render()));
  EXPECT_EQ(S.metrics().SvcAuditRequests.get(), 0u); // in-process API
}

TEST(ServiceTest, TablesColdFetchIsBitIdenticalAndLoadable) {
  svc::Service S;
  svc::proto::TablesReply R = S.tables("");
  EXPECT_FALSE(R.HashMatched);
  EXPECT_EQ(R.HashHex, S.tablesHashHex());
  EXPECT_EQ(R.Blob, core::serializePolicyTables(core::policyTables()));

  // The served blob loads (with hash enforcement) into tables whose
  // re-serialization is bit-identical — the full distribution loop.
  core::PolicyTables T = core::loadPolicyTables(R.Blob, R.HashHex);
  EXPECT_EQ(core::serializePolicyTables(T), R.Blob);
  EXPECT_EQ(core::policyTableHashHex(T), R.HashHex);
}

TEST(ServiceTest, TablesHashMatchShortCircuitsTransfer) {
  svc::Service S;
  svc::proto::TablesReply Warm = S.tables(S.tablesHashHex());
  EXPECT_TRUE(Warm.HashMatched);
  EXPECT_TRUE(Warm.Blob.empty());
  EXPECT_EQ(Warm.HashHex, S.tablesHashHex());
  EXPECT_EQ(S.metrics().SvcTablesHashHits.get(), 1u);

  // A stale (well-formed but different) hash still gets the blob.
  std::string Stale(64, '0');
  svc::proto::TablesReply Cold = S.tables(Stale);
  EXPECT_FALSE(Cold.HashMatched);
  EXPECT_FALSE(Cold.Blob.empty());
}

TEST(ServiceTest, LoadPolicyTablesRejectsHashMismatch) {
  svc::Service S;
  svc::proto::TablesReply R = S.tables("");
  EXPECT_THROW(core::loadPolicyTables(R.Blob, std::string(64, '0')),
               std::runtime_error);
  // And a tampered blob no longer matches its own claimed hash.
  std::vector<uint8_t> Tampered = R.Blob;
  Tampered[Tampered.size() / 2] ^= 1;
  EXPECT_THROW(core::loadPolicyTables(Tampered, R.HashHex),
               std::exception);
}

// --- Framed shell: dispatch + counters ---------------------------------

TEST(ServiceTest, HandleFrameDispatchesAllFourKinds) {
  svc::Metrics M;
  svc::Service S(svc::ServiceOptions{2, &M});
  std::vector<std::vector<uint8_t>> Images = mixedImages(6, 4500);
  core::RockSalt Seq;

  Frame V = dispatch(S, MsgKind::VerifyRequest,
                     svc::proto::encodeImageBatch(Images));
  ASSERT_EQ(V.Kind, MsgKind::VerifyResponse);
  std::vector<svc::proto::VerifyVerdict> Verdicts =
      svc::proto::decodeVerifyResponse(V.Body);
  ASSERT_EQ(Verdicts.size(), Images.size());
  for (size_t I = 0; I < Images.size(); ++I) {
    core::CheckResult R = Seq.check(Images[I]);
    EXPECT_EQ(Verdicts[I].Ok, R.Ok);
    EXPECT_EQ(Verdicts[I].Reason, R.Reason);
  }

  Frame L = dispatch(S, MsgKind::LintRequest,
                     svc::proto::encodeImageBatch(Images));
  ASSERT_EQ(L.Kind, MsgKind::LintResponse);
  std::vector<svc::proto::LintReport> Reports =
      svc::proto::decodeLintResponse(L.Body);
  ASSERT_EQ(Reports.size(), Images.size());
  for (size_t I = 0; I < Images.size(); ++I)
    EXPECT_EQ(Reports[I].Render,
              analysis::lintImage(core::policyTables(), Images[I]).render());

  Frame A = dispatch(S, MsgKind::AuditRequest, {});
  ASSERT_EQ(A.Kind, MsgKind::AuditResponse);
  EXPECT_TRUE(svc::proto::decodeAuditResponse(A.Body).Pass);

  Frame T = dispatch(S, MsgKind::TablesRequest,
                     svc::proto::encodeTablesRequest(""));
  ASSERT_EQ(T.Kind, MsgKind::TablesResponse);
  EXPECT_EQ(svc::proto::decodeTablesResponse(T.Body).Blob, S.tablesBlob());

  EXPECT_EQ(M.SvcVerifyRequests.get(), 1u);
  EXPECT_EQ(M.SvcLintRequests.get(), 1u);
  EXPECT_EQ(M.SvcAuditRequests.get(), 1u);
  EXPECT_EQ(M.SvcTablesRequests.get(), 1u);
  EXPECT_EQ(M.SvcErrors.get(), 0u);
  EXPECT_EQ(M.SvcRequestNanos.count(), 4u);
}

TEST(ServiceTest, MalformedBodiesAnswerWithErrorResponse) {
  svc::Metrics M;
  svc::Service S(svc::ServiceOptions{1, &M});
  struct Case {
    MsgKind Kind;
    std::vector<uint8_t> Body;
    const char *What;
  };
  const Case Cases[] = {
      {MsgKind::VerifyRequest, {0xFF, 0xFF}, "truncated batch count"},
      {MsgKind::VerifyRequest,
       {9, 0, 0, 0}, // count 9, no image records
       "batch count exceeds body"},
      {MsgKind::LintRequest,
       {1, 0, 0, 0, 8, 0, 0, 0, 0xC3}, // claims 8 bytes, carries 1
       "truncated image payload"},
      {MsgKind::VerifyRequest,
       {0, 0, 0, 0, 0xAA}, // empty batch + trailing byte
       "trailing bytes"},
      {MsgKind::AuditRequest, {0x00}, "non-empty audit body"},
      {MsgKind::ShutdownRequest, {0x01}, "non-empty shutdown body"},
      {MsgKind::TablesRequest,
       {3, 0, 0, 0, 'a', 'b', 'c'}, // hash length not 0/64
       "bad hash length"},
      {MsgKind::VerifyResponse, {}, "response kind as request"},
  };
  uint64_t Errors = 0;
  for (const Case &C : Cases) {
    bool Shutdown = true;
    Frame R = dispatch(S, C.Kind, C.Body, &Shutdown);
    EXPECT_EQ(R.Kind, MsgKind::ErrorResponse) << C.What;
    EXPECT_FALSE(Shutdown) << C.What;
    EXPECT_FALSE(svc::proto::decodeErrorResponse(R.Body).empty()) << C.What;
    EXPECT_EQ(M.SvcErrors.get(), ++Errors) << C.What;
  }
  // A 64-char hash with uppercase hex is rejected (hashes are canonical
  // lowercase), as is one with non-hex characters.
  for (char Bad : {'A', 'g', ' '}) {
    std::string Hash(64, 'a');
    Hash[10] = Bad;
    std::vector<uint8_t> Body = {64, 0, 0, 0};
    Body.insert(Body.end(), Hash.begin(), Hash.end());
    Frame R = dispatch(S, MsgKind::TablesRequest, Body);
    EXPECT_EQ(R.Kind, MsgKind::ErrorResponse) << "hash char " << int(Bad);
  }
}

// --- Frame parsing: the transport-level rejection matrix ----------------

TEST(ProtocolTest, ParseFrameRejectsMalformedFraming) {
  Frame F;
  size_t Pos = 0;
  // Bad magic: rejected from the very first wrong byte.
  std::vector<uint8_t> BadMagic = {'X'};
  EXPECT_THROW(svc::proto::parseFrame(BadMagic.data(), BadMagic.size(), &Pos,
                                      &F),
               ProtocolError);
  // Bad version.
  std::vector<uint8_t> BadVer = {'R', 'S', 'V', 'C', 99};
  Pos = 0;
  EXPECT_THROW(svc::proto::parseFrame(BadVer.data(), BadVer.size(), &Pos, &F),
               ProtocolError);
  // Unknown kind.
  std::vector<uint8_t> BadKind = {'R', 'S', 'V', 'C', 1, 42};
  Pos = 0;
  EXPECT_THROW(
      svc::proto::parseFrame(BadKind.data(), BadKind.size(), &Pos, &F),
      ProtocolError);
  // Hostile length (> MaxFrameBody): rejected before any allocation.
  std::vector<uint8_t> Huge = {'R',  'S',  'V',  'C',  1,
                               1, // VerifyRequest
                               0xFF, 0xFF, 0xFF, 0xFF};
  Pos = 0;
  EXPECT_THROW(svc::proto::parseFrame(Huge.data(), Huge.size(), &Pos, &F),
               ProtocolError);
}

TEST(ProtocolTest, ParseFrameReportsIncompleteNotMalformed) {
  // A valid prefix that simply hasn't all arrived yet returns false and
  // leaves Pos alone — the session reads more bytes, nothing is lost.
  std::vector<uint8_t> Full;
  svc::proto::appendFrame(Full, MsgKind::AuditRequest, {});
  for (size_t Cut = 0; Cut < Full.size(); ++Cut) {
    Frame F;
    size_t Pos = 0;
    EXPECT_FALSE(svc::proto::parseFrame(Full.data(), Cut, &Pos, &F))
        << "cut at " << Cut;
    EXPECT_EQ(Pos, 0u);
  }
  Frame F;
  size_t Pos = 0;
  EXPECT_TRUE(svc::proto::parseFrame(Full.data(), Full.size(), &Pos, &F));
  EXPECT_EQ(Pos, Full.size());
  EXPECT_EQ(F.Kind, MsgKind::AuditRequest);
}

TEST(ProtocolTest, DecodersRejectNonBooleanFlags) {
  // VerifyResponse with Ok = 2.
  std::vector<uint8_t> V = {1, 0, 0, 0, 2, 0};
  EXPECT_THROW(svc::proto::decodeVerifyResponse(V), ProtocolError);
  // VerifyResponse with an unknown reject reason.
  std::vector<uint8_t> R = {1, 0, 0, 0, 0, 250};
  EXPECT_THROW(svc::proto::decodeVerifyResponse(R), ProtocolError);
  // AuditResponse with Pass = 7.
  std::vector<uint8_t> A = {7, 0, 0, 0, 0};
  EXPECT_THROW(svc::proto::decodeAuditResponse(A), ProtocolError);
  // TablesResponse claiming a hash match while carrying a blob.
  svc::proto::TablesReply T;
  T.HashMatched = true;
  T.HashHex = std::string(64, 'a');
  std::vector<uint8_t> Enc = svc::proto::encodeTablesResponse(T);
  T.HashMatched = false;
  T.Blob = {1, 2, 3};
  std::vector<uint8_t> WithBlob = svc::proto::encodeTablesResponse(T);
  WithBlob[0] = 1; // flip HashMatched back on over the blob-carrying body
  EXPECT_THROW(svc::proto::decodeTablesResponse(WithBlob), ProtocolError);
  EXPECT_NO_THROW(svc::proto::decodeTablesResponse(Enc));
}

TEST(ProtocolTest, ImageBatchRoundTrips) {
  std::vector<std::vector<uint8_t>> Images = {
      {}, {0xC3}, {0x90, 0x90, 0x90}, std::vector<uint8_t>(4096, 0x90)};
  std::vector<uint8_t> Body = svc::proto::encodeImageBatch(Images);
  EXPECT_EQ(svc::proto::decodeImageBatch(Body), Images);
}

TEST(ProtocolTest, MetricsResponseRoundTripsAndRejectsGarbage) {
  std::string Expo = "svc_sessions 3\nsvc_bytes_in 12345\n";
  std::vector<uint8_t> Body = svc::proto::encodeMetricsResponse(Expo);
  EXPECT_EQ(svc::proto::decodeMetricsResponse(Body), Expo);
  EXPECT_EQ(svc::proto::decodeMetricsResponse(
                svc::proto::encodeMetricsResponse("")),
            "");
  // Truncated length prefix, truncated payload, and trailing junk.
  EXPECT_THROW(svc::proto::decodeMetricsResponse({1, 0, 0}), ProtocolError);
  std::vector<uint8_t> Short(Body.begin(), Body.end() - 1);
  EXPECT_THROW(svc::proto::decodeMetricsResponse(Short), ProtocolError);
  std::vector<uint8_t> Long = Body;
  Long.push_back(0x00);
  EXPECT_THROW(svc::proto::decodeMetricsResponse(Long), ProtocolError);
}

TEST(ServiceTest, MetricsRequestReturnsLiveExposition) {
  svc::Service S(svc::ServiceOptions{2, nullptr});
  std::vector<std::vector<uint8_t>> Images = mixedImages(3, 1200);
  dispatch(S, MsgKind::VerifyRequest, svc::proto::encodeImageBatch(Images));

  Frame F = dispatch(S, MsgKind::MetricsRequest, {});
  ASSERT_EQ(F.Kind, MsgKind::MetricsResponse);
  std::string Expo = svc::proto::decodeMetricsResponse(F.Body);
  EXPECT_NE(Expo.find("svc_verify_requests 1\n"), std::string::npos);
  EXPECT_NE(Expo.find("images_verified 3\n"), std::string::npos);
  // The request itself is counted before the render, so the scrape
  // observes itself.
  EXPECT_NE(Expo.find("svc_metrics_requests 1\n"), std::string::npos);

  // A nonempty body is malformed: ErrorResponse, session survives.
  Frame E = dispatch(S, MsgKind::MetricsRequest, {0xAB});
  EXPECT_EQ(E.Kind, MsgKind::ErrorResponse);
}

// --- serveFd: a full session over a socketpair --------------------------

TEST(ServiceTest, ServeFdSessionSurvivesBadBodiesAndShutsDownCleanly) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);

  svc::Metrics M;
  svc::Service S(svc::ServiceOptions{2, &M});
  svc::Service::ServeStatus Status = svc::Service::ServeStatus::PeerClosed;
  std::thread Server([&] { Status = S.serveFd(Fds[0], Fds[0]); });

  auto Send = [&](MsgKind K, const std::vector<uint8_t> &Body) {
    std::vector<uint8_t> Out;
    svc::proto::appendFrame(Out, K, Body);
    ASSERT_EQ(::write(Fds[1], Out.data(), Out.size()), ssize_t(Out.size()));
  };
  std::vector<uint8_t> Buf;
  auto Recv = [&]() -> Frame {
    Frame F;
    size_t Pos = 0;
    while (!svc::proto::parseFrame(Buf.data(), Buf.size(), &Pos, &F)) {
      uint8_t Tmp[4096];
      ssize_t N = ::read(Fds[1], Tmp, sizeof(Tmp));
      if (N <= 0)
        throw std::runtime_error("server hung up");
      Buf.insert(Buf.end(), Tmp, Tmp + N);
    }
    Buf.erase(Buf.begin(), Buf.begin() + long(Pos));
    return F;
  };

  std::vector<std::vector<uint8_t>> Images = mixedImages(5, 60);
  Send(MsgKind::VerifyRequest, svc::proto::encodeImageBatch(Images));
  Frame V = Recv();
  ASSERT_EQ(V.Kind, MsgKind::VerifyResponse);
  EXPECT_EQ(svc::proto::decodeVerifyResponse(V.Body).size(), Images.size());

  // A malformed body is answered with ErrorResponse; the session lives.
  Send(MsgKind::VerifyRequest, {0xDE, 0xAD});
  EXPECT_EQ(Recv().Kind, MsgKind::ErrorResponse);

  Send(MsgKind::TablesRequest, svc::proto::encodeTablesRequest(""));
  Frame T = Recv();
  ASSERT_EQ(T.Kind, MsgKind::TablesResponse);
  EXPECT_EQ(svc::proto::decodeTablesResponse(T.Body).Blob, S.tablesBlob());

  Send(MsgKind::ShutdownRequest, {});
  EXPECT_EQ(Recv().Kind, MsgKind::ShutdownResponse);
  Server.join();
  EXPECT_EQ(Status, svc::Service::ServeStatus::Shutdown);
  EXPECT_EQ(M.SvcSessions.get(), 1u);
  EXPECT_EQ(M.SvcErrors.get(), 1u);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(ServiceTest, ServeFdPeerCloseAtBoundaryEndsSessionQuietly) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  svc::Service S(svc::ServiceOptions{1, nullptr});
  std::thread Server([&] {
    EXPECT_EQ(S.serveFd(Fds[0], Fds[0]),
              svc::Service::ServeStatus::PeerClosed);
  });
  ::close(Fds[1]); // immediate EOF at a frame boundary
  Server.join();
  ::close(Fds[0]);
}

TEST(ServiceTest, ServeFdMidFrameEofIsAnError) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  svc::Service S(svc::ServiceOptions{1, nullptr});
  std::thread Server([&] {
    EXPECT_THROW(S.serveFd(Fds[0], Fds[0]), ProtocolError);
  });
  // Half a frame, then hang up.
  std::vector<uint8_t> Full;
  svc::proto::appendFrame(Full, MsgKind::AuditRequest, {});
  ASSERT_EQ(::write(Fds[1], Full.data(), 4), 4);
  ::close(Fds[1]);
  Server.join();
  ::close(Fds[0]);
}

} // namespace
