//===- tests/policy_table_format_test.cpp ---------------------*- C++ -*-===//
//
// The versioned policy-table format (regex/TableIO.h) as a CI gate:
// round-trip bit-identity, the pinned golden content hash, rejection of
// corrupted/truncated blobs, the RSTB v2 ISA/policy-set tag discipline
// (mismatches rejected at the header, legacy v1 blobs pinned by a
// golden-hash writer), and the differential gate proving the minimized
// shipped tables decide exactly as the legacy raw tables on every image
// in the fuzz reproducer corpus.
//
//===----------------------------------------------------------------------===//

#include "core/Policy.h"
#include "fuzz/Corpus.h"
#include "regex/Algebra.h"
#include "regex/TableIO.h"
#include "support/Sha256.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string_view>

#ifndef ROCKSALT_CORPUS_DIR
#error "build must define ROCKSALT_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

using namespace rocksalt;
using namespace rocksalt::core;

namespace {

/// The content-address of the shipped tables. The serialized form is a
/// pure function of the policy grammars, the canonical numbering, and
/// the format version, so this only moves when one of those changes.
/// To refresh after an intentional grammar/format change:
///   ./build/examples/validator_cli --dump-tables
/// and copy the printed hash here (and into the EXPECTED_HASH of the
/// table_hash_drift ctest gate in tests/CMakeLists.txt).
constexpr const char *GoldenHash =
    "05fc276c046e485711f8203340f0ab5273f312d054bbdb48a2e148eb0417e8db";

/// The content-address the same tables carried in RSTB v1 (no identity
/// tags in the hashed payload). Pinned so the v1-reading compatibility
/// path — blobs produced by pre-registry builds — can never silently
/// drift: WriteV1Blob below re-derives a v1 blob from the shipped
/// tables and must land on exactly this hash.
constexpr const char *GoldenHashV1 =
    "604048c7dfe681dbbaef0aa6e60650ec1387d6cc69cec9c1e0f90e2312bc571b";

const PolicyTables &shipped() { return policyTables(); }

std::vector<uint8_t> shippedBlob() { return serializePolicyTables(shipped()); }

bool sameDfa(const re::Dfa &A, const re::Dfa &B) {
  return A.Start == B.Start && A.Table == B.Table && A.Accepts == B.Accepts &&
         A.Rejects == B.Rejects;
}

/// A from-scratch RSTB v1 writer: the pre-registry format — same record
/// layout, version 1, and *no* identity tags in the hashed payload.
/// Lives here (not in TableIO) so the shipped reader's v1 path is
/// exercised against an independent producer, exactly like a blob from
/// an old build.
std::vector<uint8_t> writeV1Blob(const PolicyTables &T) {
  auto PutU32 = [](std::vector<uint8_t> &Out, uint32_t V) {
    Out.push_back(uint8_t(V));
    Out.push_back(uint8_t(V >> 8));
    Out.push_back(uint8_t(V >> 16));
    Out.push_back(uint8_t(V >> 24));
  };
  const std::pair<const char *, const re::Dfa *> Tables[] = {
      {"NoControlFlow", &T.NoControlFlow},
      {"DirectJump", &T.DirectJump},
      {"MaskedJump", &T.MaskedJump}};

  std::vector<uint8_t> Out = {'R', 'S', 'T', 'B'};
  PutU32(Out, 1); // RSTB v1
  PutU32(Out, 3);
  Out.resize(44); // 32-byte hash placeholder at offset 12
  for (const auto &[Name, D] : Tables) {
    std::string_view N(Name);
    PutU32(Out, uint32_t(N.size()));
    Out.insert(Out.end(), N.begin(), N.end());
    PutU32(Out, D->Start);
    PutU32(Out, uint32_t(D->numStates()));
    for (const auto &Row : D->Table)
      for (uint16_t Target : Row) {
        Out.push_back(uint8_t(Target));
        Out.push_back(uint8_t(Target >> 8));
      }
    for (uint8_t A : D->Accepts)
      Out.push_back(A ? 1 : 0);
    for (uint8_t R : D->Rejects)
      Out.push_back(R ? 1 : 0);
  }
  auto Digest = support::Sha256::hash(Out.data() + 44, Out.size() - 44);
  std::copy(Digest.begin(), Digest.end(), Out.begin() + 12);
  return Out;
}

//===----------------------------------------------------------------------===//
// SHA-256 building block (FIPS 180-4 vectors).
//===----------------------------------------------------------------------===//

TEST(Sha256, FipsVectors) {
  auto Hex = [](std::string_view S) {
    return support::Sha256::hex(support::Sha256::hash(S.data(), S.size()));
  };
  EXPECT_EQ(Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, StreamingMatchesOneShot) {
  std::string M(1000, 'x');
  support::Sha256 S;
  for (size_t I = 0; I < M.size(); I += 7)
    S.update(M.data() + I, std::min<size_t>(7, M.size() - I));
  EXPECT_EQ(support::Sha256::hex(S.digest()),
            support::Sha256::hex(support::Sha256::hash(M.data(), M.size())));
}

//===----------------------------------------------------------------------===//
// Round-trip and determinism.
//===----------------------------------------------------------------------===//

TEST(TableFormat, RoundTripBitIdentical) {
  std::vector<uint8_t> Blob = shippedBlob();
  PolicyTables T2 = deserializePolicyTables(Blob);
  EXPECT_TRUE(sameDfa(T2.NoControlFlow, shipped().NoControlFlow));
  EXPECT_TRUE(sameDfa(T2.DirectJump, shipped().DirectJump));
  EXPECT_TRUE(sameDfa(T2.MaskedJump, shipped().MaskedJump));
  EXPECT_EQ(serializePolicyTables(T2), Blob);
}

TEST(TableFormat, SerializationIsDeterministic) {
  // Two independent clean builds from the grammars: identical bytes,
  // identical hash. This is the cacheability claim — no iteration-order
  // or address-dependent artifact may leak into the encoding.
  std::vector<uint8_t> A = serializePolicyTables(buildPolicyTables());
  std::vector<uint8_t> B = serializePolicyTables(buildPolicyTables());
  EXPECT_EQ(A, B);
  EXPECT_EQ(re::blobHashHex(A), re::blobHashHex(B));
}

TEST(TableFormat, GoldenContentHash) {
  EXPECT_EQ(policyTableHashHex(shipped()), GoldenHash)
      << "policy tables drifted — if the grammar change is intentional, "
         "refresh GoldenHash per the comment above";
}

TEST(TableFormat, HeaderFieldsAndShippedSizes) {
  re::TableBundle Bundle = re::deserializeTables(shippedBlob());
  EXPECT_EQ(Bundle.Version, re::TableFormatVersion);
  EXPECT_EQ(Bundle.HashHex, GoldenHash);
  EXPECT_EQ(Bundle.Isa, re::TableV1ImpliedIsa);
  EXPECT_EQ(Bundle.PolicySet, re::TableV1ImpliedPolicySet);
  ASSERT_EQ(Bundle.Tables.size(), 3u);
  EXPECT_EQ(Bundle.Tables[0].first, "NoControlFlow");
  EXPECT_EQ(Bundle.Tables[0].second.numStates(), NoControlFlowStates);
  EXPECT_EQ(Bundle.Tables[1].first, "DirectJump");
  EXPECT_EQ(Bundle.Tables[1].second.numStates(), DirectJumpStates);
  EXPECT_EQ(Bundle.Tables[2].first, "MaskedJump");
  EXPECT_EQ(Bundle.Tables[2].second.numStates(), MaskedJumpStates);
}

//===----------------------------------------------------------------------===//
// Corruption is rejected, never silently parsed.
//===----------------------------------------------------------------------===//

TEST(TableFormat, BadMagicRejected) {
  std::vector<uint8_t> Blob = shippedBlob();
  Blob[0] ^= 0xFF;
  EXPECT_THROW(re::deserializeTables(Blob), std::runtime_error);
}

TEST(TableFormat, UnsupportedVersionRejected) {
  std::vector<uint8_t> Blob = shippedBlob();
  Blob[4] += 1; // version is LE u32 at offset 4
  EXPECT_THROW(re::deserializeTables(Blob), std::runtime_error);
}

TEST(TableFormat, PayloadBitFlipFailsHashCheck) {
  std::vector<uint8_t> Blob = shippedBlob();
  Blob[Blob.size() / 2] ^= 0x01;
  EXPECT_THROW(re::deserializeTables(Blob), std::runtime_error);
}

TEST(TableFormat, StoredHashBitFlipRejected) {
  std::vector<uint8_t> Blob = shippedBlob();
  Blob[12] ^= 0x01; // first byte of the stored hash
  EXPECT_THROW(re::deserializeTables(Blob), std::runtime_error);
}

TEST(TableFormat, TruncationRejectedAtEveryBoundary) {
  std::vector<uint8_t> Blob = shippedBlob();
  // Representative truncation points: inside the header, at the end of
  // the header, mid-payload, and one byte short of complete.
  for (size_t Keep : {size_t(0), size_t(3), size_t(11), size_t(44),
                      Blob.size() / 3, Blob.size() - 1})
    EXPECT_THROW(re::deserializeTables(
                     std::vector<uint8_t>(Blob.begin(), Blob.begin() + Keep)),
                 std::runtime_error)
        << "kept " << Keep << " bytes";
}

TEST(TableFormat, TrailingBytesRejected) {
  std::vector<uint8_t> Blob = shippedBlob();
  Blob.push_back(0x00);
  EXPECT_THROW(re::deserializeTables(Blob), std::runtime_error);
}

//===----------------------------------------------------------------------===//
// RSTB v2 identity tags: mismatches die at the header, v1 blobs imply
// x86/nacl and stay readable bit-for-bit (pinned by a golden hash).
//===----------------------------------------------------------------------===//

TEST(TableFormat, IsaTagMismatchRejectedAtHeader) {
  // The same tables serialized under a different ISA tag: an x86 load
  // must reject it with a diagnostic naming both sides, and must do so
  // from the header alone — before any table record is parsed.
  std::vector<uint8_t> Blob = serializePolicyTables(shipped(), "mips", "nacl");
  try {
    deserializePolicyTables(Blob); // default expectation: x86/nacl
    FAIL() << "wrong-ISA blob was accepted";
  } catch (const std::runtime_error &E) {
    EXPECT_NE(std::string(E.what()).find("tagged for ISA 'mips'"),
              std::string::npos)
        << E.what();
    EXPECT_NE(std::string(E.what()).find("'x86'"), std::string::npos)
        << E.what();
  }
  // The right expectation reads it back fine.
  PolicyTables T2 = deserializePolicyTables(Blob, "mips", "nacl");
  EXPECT_TRUE(sameDfa(T2.MaskedJump, shipped().MaskedJump));
}

TEST(TableFormat, PolicySetTagMismatchRejected) {
  std::vector<uint8_t> Blob = serializePolicyTables(shipped(), "x86", "strict");
  EXPECT_THROW(deserializePolicyTables(Blob), std::runtime_error);
  PolicyTables T2 = deserializePolicyTables(Blob, "x86", "strict");
  EXPECT_TRUE(sameDfa(T2.NoControlFlow, shipped().NoControlFlow));
}

TEST(TableFormat, BadTagRejectedAtSerialization) {
  EXPECT_THROW(serializePolicyTables(shipped(), "X86", "nacl"),
               std::runtime_error); // uppercase outside the tag charset
  EXPECT_THROW(serializePolicyTables(shipped(), "", "nacl"),
               std::runtime_error);
  EXPECT_THROW(serializePolicyTables(shipped(),
                                     std::string(re::MaxTableTagLen + 1, 'a'),
                                     "nacl"),
               std::runtime_error);
}

TEST(TableFormat, V1GoldenBlobStillReads) {
  // A v1 blob written by an independent local writer from the shipped
  // tables: the pre-registry format. Its content hash is pinned — the
  // v1 layout may never drift — and the reader must accept it, implying
  // the x86/nacl identity, with bit-identical tables.
  std::vector<uint8_t> V1 = writeV1Blob(shipped());
  EXPECT_EQ(re::blobHashHex(V1), GoldenHashV1);
  EXPECT_EQ(re::verifyBlobHashHex(V1), GoldenHashV1);

  re::TableBundle Bundle = re::deserializeTables(V1);
  EXPECT_EQ(Bundle.Version, re::TableFormatV1);
  EXPECT_EQ(Bundle.Isa, "x86");
  EXPECT_EQ(Bundle.PolicySet, "nacl");
  ASSERT_EQ(Bundle.Tables.size(), 3u);
  EXPECT_TRUE(sameDfa(Bundle.Tables[0].second, shipped().NoControlFlow));
  EXPECT_TRUE(sameDfa(Bundle.Tables[1].second, shipped().DirectJump));
  EXPECT_TRUE(sameDfa(Bundle.Tables[2].second, shipped().MaskedJump));

  // The core loader path too: a v1 blob satisfies an x86/nacl
  // expectation (implied tags) but can never satisfy a mips one.
  PolicyTables T2 = loadPolicyTables(V1, GoldenHashV1);
  EXPECT_TRUE(sameDfa(T2.MaskedJump, shipped().MaskedJump));
  EXPECT_THROW(loadPolicyTables(V1, GoldenHashV1, "mips", "nacl"),
               std::runtime_error);
}

//===----------------------------------------------------------------------===//
// Minimized vs legacy: no verdict may change.
//===----------------------------------------------------------------------===//

TEST(TableFormat, MinimizedAndLegacyTablesLanguageEqual) {
  PolicyTables Raw = buildPolicyTablesRaw();
  EXPECT_EQ(re::equivalenceWitness(Raw.NoControlFlow,
                                   shipped().NoControlFlow),
            std::nullopt);
  EXPECT_EQ(re::equivalenceWitness(Raw.DirectJump, shipped().DirectJump),
            std::nullopt);
  EXPECT_EQ(re::equivalenceWitness(Raw.MaskedJump, shipped().MaskedJump),
            std::nullopt);
}

TEST(TableFormat, MinimizedAndLegacyDecideCorpusIdentically) {
  PolicyTables Raw = buildPolicyTablesRaw();
  auto Entries = fuzz::loadCorpus(ROCKSALT_CORPUS_DIR);
  ASSERT_GE(Entries.size(), 7u) << "corpus dir: " << ROCKSALT_CORPUS_DIR;

  auto CheckPair = [](const re::Dfa &A, const re::Dfa &B,
                      const std::vector<uint8_t> &Code,
                      const std::string &Path, const char *Table) {
    // Walk both tables in lockstep; the accept/reject classification
    // must agree after every prefix, not just at the end — the checker
    // consults both flags mid-image (paper Figure 6).
    uint16_t SA = uint16_t(A.Start), SB = uint16_t(B.Start);
    for (size_t I = 0; I < Code.size(); ++I) {
      SA = A.step(SA, Code[I]);
      SB = B.step(SB, Code[I]);
      EXPECT_EQ(A.Accepts[SA] != 0, B.Accepts[SB] != 0)
          << Table << " accept skew at byte " << I << " of " << Path;
      EXPECT_EQ(A.Rejects[SA] != 0, B.Rejects[SB] != 0)
          << Table << " reject skew at byte " << I << " of " << Path;
    }
  };

  for (const auto &E : Entries) {
    CheckPair(Raw.NoControlFlow, shipped().NoControlFlow, E.Code, E.Path,
              "NoControlFlow");
    CheckPair(Raw.DirectJump, shipped().DirectJump, E.Code, E.Path,
              "DirectJump");
    CheckPair(Raw.MaskedJump, shipped().MaskedJump, E.Code, E.Path,
              "MaskedJump");
  }
}

} // namespace
