//===- tests/sem_flags_test.cpp -------------------------------*- C++ -*-===//
//
// Precise flag semantics, checked against hand-computed vectors from the
// Intel manual's flag definitions. These are independent of both
// interpreter implementations (the differential suite proves the two
// implementations agree; this suite pins them to the architecture).
//
//===----------------------------------------------------------------------===//

#include "sem/Cpu.h"
#include "x86/Encoder.h"
#include "x86/Printer.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::sem;
using namespace rocksalt::x86;
using rtl::Flag;

namespace {

/// One flag-vector case: run `Op dst_reg, imm` (at width W) with the
/// given input and incoming CF, and compare result + all six arithmetic
/// flags. -1 means "don't check".
struct FlagCase {
  Opcode Op;
  bool W; // false = 8-bit
  uint32_t A;
  uint32_t B;
  int CfIn; // -1: none
  uint32_t Result;
  int CF, OF, SF, ZF, AF, PF;
};

class FlagVector : public ::testing::TestWithParam<FlagCase> {};

Cpu runCase(const FlagCase &C) {
  Cpu Cpu;
  std::vector<uint8_t> Code;

  // Seed EBX with the input value.
  Instr Seed;
  Seed.Op = Opcode::MOV;
  Seed.Op1 = Operand::reg(Reg::EBX);
  Seed.Op2 = Operand::imm(C.A);
  auto B0 = encodeOrDie(Seed);
  Code.insert(Code.end(), B0.begin(), B0.end());

  // The operation under test: op bl/ebx, imm (or unary on bl/ebx).
  Instr I;
  I.Op = C.Op;
  I.W = C.W;
  I.Op1 = Operand::reg(Reg::EBX);
  if (C.Op != Opcode::NOT && C.Op != Opcode::NEG && C.Op != Opcode::INC &&
      C.Op != Opcode::DEC)
    I.Op2 = Operand::imm(C.B);
  auto B1 = encodeOrDie(I);
  Code.insert(Code.end(), B1.begin(), B1.end());
  while (Code.size() % 32)
    Code.push_back(0x90);

  Cpu.configureSandbox(0x1000, 0x1000, 0x100000, 0x10000, Code);
  Cpu.step(); // mov
  if (C.CfIn >= 0)
    Cpu.M.Flags[static_cast<unsigned>(Flag::CF)] = C.CfIn;
  Cpu.step(); // the op
  return Cpu;
}

} // namespace

TEST_P(FlagVector, MatchesIntelManual) {
  const FlagCase &C = GetParam();
  Cpu Cpu = runCase(C);

  uint32_t Mask = C.W ? 0xFFFFFFFF : 0xFF;
  EXPECT_EQ(Cpu.M.Regs[3] & Mask, C.Result & Mask);
  auto Fl = [&](Flag F) { return int(Cpu.M.Flags[unsigned(F)]); };
  struct Check {
    int Expected;
    Flag F;
    const char *Name;
  } Checks[] = {{C.CF, Flag::CF, "CF"}, {C.OF, Flag::OF, "OF"},
                {C.SF, Flag::SF, "SF"}, {C.ZF, Flag::ZF, "ZF"},
                {C.AF, Flag::AF, "AF"}, {C.PF, Flag::PF, "PF"}};
  for (const Check &K : Checks) {
    if (K.Expected >= 0) {
      EXPECT_EQ(Fl(K.F), K.Expected) << K.Name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Add, FlagVector,
    ::testing::Values(
        // op      W     A           B         cf  result      CF OF SF ZF AF PF
        FlagCase{Opcode::ADD, true, 1, 1, -1, 2, 0, 0, 0, 0, 0, 0},
        FlagCase{Opcode::ADD, true, 0xFFFFFFFF, 1, -1, 0, 1, 0, 0, 1, 1, 1},
        FlagCase{Opcode::ADD, true, 0x7FFFFFFF, 1, -1, 0x80000000, 0, 1, 1,
                 0, 1, 1},
        FlagCase{Opcode::ADD, true, 0x0F, 1, -1, 0x10, 0, 0, 0, 0, 1, 0},
        FlagCase{Opcode::ADD, false, 0x80, 0x80, -1, 0x00, 1, 1, 0, 1, 0,
                 1},
        FlagCase{Opcode::ADD, false, 0x7F, 0x01, -1, 0x80, 0, 1, 1, 0, 1,
                 0}));

INSTANTIATE_TEST_SUITE_P(
    Sub, FlagVector,
    ::testing::Values(
        FlagCase{Opcode::SUB, true, 5, 3, -1, 2, 0, 0, 0, 0, 0, 0},
        FlagCase{Opcode::SUB, true, 3, 5, -1, 0xFFFFFFFE, 1, 0, 1, 0, 1,
                 0},
        FlagCase{Opcode::SUB, true, 0x80000000, 1, -1, 0x7FFFFFFF, 0, 1, 0,
                 0, 1, 1},
        FlagCase{Opcode::SUB, true, 7, 7, -1, 0, 0, 0, 0, 1, 0, 1},
        FlagCase{Opcode::CMP, true, 3, 5, -1, 3 /*unchanged*/, 1, 0, 1, 0,
                 1, 0}));

INSTANTIATE_TEST_SUITE_P(
    CarryChains, FlagVector,
    ::testing::Values(
        FlagCase{Opcode::ADC, true, 0xFFFFFFFF, 0, 1, 0, 1, 0, 0, 1, 1, 1},
        FlagCase{Opcode::ADC, true, 1, 1, 1, 3, 0, 0, 0, 0, 0, 1},
        FlagCase{Opcode::SBB, true, 0, 0, 1, 0xFFFFFFFF, 1, 0, 1, 0, 1, 1},
        FlagCase{Opcode::SBB, true, 5, 2, 1, 2, 0, 0, 0, 0, 0, 0},
        FlagCase{Opcode::ADC, false, 0xFF, 0xFF, 1, 0xFF, 1, 0, 1, 0, 1,
                 1}));

INSTANTIATE_TEST_SUITE_P(
    Logic, FlagVector,
    ::testing::Values(
        FlagCase{Opcode::AND, true, 0xFF00FF00, 0x0F0F0F0F, -1, 0x0F000F00,
                 0, 0, 0, 0, 0, 1},
        FlagCase{Opcode::OR, true, 0, 0, -1, 0, 0, 0, 0, 1, 0, 1},
        FlagCase{Opcode::XOR, true, 0xAAAAAAAA, 0xAAAAAAAA, -1, 0, 0, 0, 0,
                 1, 0, 1},
        FlagCase{Opcode::TEST, true, 0x80000000, 0x80000000, -1,
                 0x80000000 /*unchanged*/, 0, 0, 1, 0, 0, 1}));

INSTANTIATE_TEST_SUITE_P(
    IncDecNeg, FlagVector,
    ::testing::Values(
        // INC/DEC preserve CF (seeded via CfIn and checked unchanged).
        FlagCase{Opcode::INC, false, 0xFF, 0, 1, 0x00, 1, 0, 0, 1, 1, 1},
        FlagCase{Opcode::INC, false, 0x7F, 0, 0, 0x80, 0, 1, 1, 0, 1, 0},
        FlagCase{Opcode::DEC, false, 0x00, 0, 0, 0xFF, 0, 0, 1, 0, 1, 1},
        FlagCase{Opcode::DEC, false, 0x80, 0, 1, 0x7F, 1, 1, 0, 0, 1, 0},
        FlagCase{Opcode::NEG, true, 1, 0, -1, 0xFFFFFFFF, 1, 0, 1, 0, 1,
                 1},
        FlagCase{Opcode::NEG, true, 0, 0, -1, 0, 0, 0, 0, 1, 0, 1},
        FlagCase{Opcode::NEG, true, 0x80000000, 0, -1, 0x80000000, 1, 1, 1,
                 0, 0, 1}));

INSTANTIATE_TEST_SUITE_P(
    Shifts, FlagVector,
    ::testing::Values(
        FlagCase{Opcode::SHL, true, 0x80000001, 1, -1, 0x00000002, 1, 1, 0,
                 0, -1, 0},
        FlagCase{Opcode::SHL, true, 0x40000000, 1, -1, 0x80000000, 0, 1, 1,
                 0, -1, 1},
        FlagCase{Opcode::SHR, true, 0x00000003, 1, -1, 0x00000001, 1, 0, 0,
                 0, -1, 0},
        FlagCase{Opcode::SHR, true, 0x80000000, 1, -1, 0x40000000, 0, 1, 0,
                 0, -1, 1},
        FlagCase{Opcode::SAR, true, 0x80000000, 1, -1, 0xC0000000, 0, 0, 1,
                 0, -1, 1},
        FlagCase{Opcode::SAR, true, 0x00000003, 1, -1, 0x00000001, 1, 0, 0,
                 0, -1, 0},
        // Rotates: only CF/OF change (SF/ZF/PF untouched => unchecked).
        FlagCase{Opcode::ROL, true, 0x80000000, 1, -1, 0x00000001, 1, 1,
                 -1, -1, -1, -1},
        FlagCase{Opcode::ROR, true, 0x00000001, 1, -1, 0x80000000, 1, 1,
                 -1, -1, -1, -1},
        FlagCase{Opcode::RCL, false, 0x80, 1, 1, 0x01, 1, 1, -1, -1, -1,
                 -1},
        // RCR result 0x80: OF = msb ^ msb-1 of the result = 1.
        FlagCase{Opcode::RCR, false, 0x01, 1, 1, 0x80, 1, 1, -1, -1, -1,
                 -1}));

//===----------------------------------------------------------------------===//
// Non-parameterizable flag scenarios.
//===----------------------------------------------------------------------===//

namespace {

Instr movImm(Reg R, uint32_t V) {
  Instr I;
  I.Op = Opcode::MOV;
  I.Op1 = Operand::reg(R);
  I.Op2 = Operand::imm(V);
  return I;
}

Cpu runProgram(const std::vector<Instr> &Prog) {
  std::vector<uint8_t> Code;
  for (const Instr &I : Prog) {
    auto B = encodeOrDie(I);
    Code.insert(Code.end(), B.begin(), B.end());
  }
  while (Code.size() % 32)
    Code.push_back(0x90);
  Cpu C;
  C.configureSandbox(0x1000, 0x1000, 0x100000, 0x10000, Code);
  C.run(Prog.size());
  return C;
}

} // namespace

TEST(FlagScenarios, MulSetsCarryIffHighHalfNonZero) {
  Instr Mul;
  Mul.Op = Opcode::MUL;
  Mul.W = false;
  Mul.Op1 = Operand::reg(Reg::EBX); // BL
  Cpu C = runProgram({movImm(Reg::EAX, 200), movImm(Reg::EBX, 2), Mul});
  EXPECT_EQ(C.M.Regs[0] & 0xFFFF, 400u);
  EXPECT_TRUE(C.M.Flags[0]); // CF
  EXPECT_TRUE(C.M.Flags[8]); // OF

  Cpu D = runProgram({movImm(Reg::EAX, 10), movImm(Reg::EBX, 3), Mul});
  EXPECT_EQ(D.M.Regs[0] & 0xFFFF, 30u);
  EXPECT_FALSE(D.M.Flags[0]);
  EXPECT_FALSE(D.M.Flags[8]);
}

TEST(FlagScenarios, ImulTwoOperandOverflow) {
  Instr Imul;
  Imul.Op = Opcode::IMUL;
  Imul.Op1 = Operand::reg(Reg::EBX);
  Imul.Op2 = Operand::reg(Reg::ECX);
  Cpu C = runProgram(
      {movImm(Reg::EBX, 0x10000), movImm(Reg::ECX, 0x10000), Imul});
  EXPECT_EQ(C.M.Regs[3], 0u);
  EXPECT_TRUE(C.M.Flags[0]);
  EXPECT_TRUE(C.M.Flags[8]);

  Cpu D = runProgram({movImm(Reg::EBX, 3), movImm(Reg::ECX, 4), Imul});
  EXPECT_EQ(D.M.Regs[3], 12u);
  EXPECT_FALSE(D.M.Flags[0]);
}

TEST(FlagScenarios, DaaDecimalAdjust) {
  // AL = 0x9C, CF=AF=0: DAA gives AL=0x02, CF=1, AF=1.
  Instr MovAl;
  MovAl.Op = Opcode::MOV;
  MovAl.W = false;
  MovAl.Op1 = Operand::reg(Reg::EAX);
  MovAl.Op2 = Operand::imm(0x9C);
  Instr Clc;
  Clc.Op = Opcode::CLC;
  Instr Daa;
  Daa.Op = Opcode::DAA;
  Cpu C = runProgram({MovAl, Clc, Daa});
  EXPECT_EQ(C.M.Regs[0] & 0xFF, 0x02u);
  EXPECT_TRUE(C.M.Flags[0]); // CF
  EXPECT_TRUE(C.M.Flags[2]); // AF
}

TEST(FlagScenarios, AaaAsciiAdjust) {
  // AL = 0x0F: AAA gives AL=5, AH+=1, CF=AF=1.
  Instr MovAx;
  MovAx.Op = Opcode::MOV;
  MovAx.Pfx.OpSize = true; // mov ax, 0x000F
  MovAx.Op1 = Operand::reg(Reg::EAX);
  MovAx.Op2 = Operand::imm(0x000F);
  Instr Aaa;
  Aaa.Op = Opcode::AAA;
  Cpu C = runProgram({MovAx, Aaa});
  EXPECT_EQ(C.M.Regs[0] & 0xFF, 0x05u);
  EXPECT_EQ((C.M.Regs[0] >> 8) & 0xFF, 0x01u);
  EXPECT_TRUE(C.M.Flags[0]);
  EXPECT_TRUE(C.M.Flags[2]);
}

TEST(FlagScenarios, AamSplitsDigits) {
  Instr MovAl;
  MovAl.Op = Opcode::MOV;
  MovAl.W = false;
  MovAl.Op1 = Operand::reg(Reg::EAX);
  MovAl.Op2 = Operand::imm(123);
  Instr Aam;
  Aam.Op = Opcode::AAM;
  Aam.Op1 = Operand::imm(10);
  Cpu C = runProgram({MovAl, Aam});
  EXPECT_EQ(C.M.Regs[0] & 0xFF, 3u);         // AL = 123 % 10
  EXPECT_EQ((C.M.Regs[0] >> 8) & 0xFF, 12u); // AH = 123 / 10
  EXPECT_TRUE(C.M.Flags[1]);                 // PF of 3 (two bits, even)
  EXPECT_FALSE(C.M.Flags[3]);                // ZF
}

TEST(FlagScenarios, BtFamilySetsCarryFromBit) {
  Instr Bt;
  Bt.Op = Opcode::BT;
  Bt.Op1 = Operand::reg(Reg::EBX);
  Bt.Op2 = Operand::imm(4);
  Cpu C = runProgram({movImm(Reg::EBX, 0x10), Bt});
  EXPECT_TRUE(C.M.Flags[0]);

  Instr Btc = Bt;
  Btc.Op = Opcode::BTC;
  Cpu D = runProgram({movImm(Reg::EBX, 0x10), Btc});
  EXPECT_TRUE(D.M.Flags[0]);
  EXPECT_EQ(D.M.Regs[3], 0u); // bit toggled off

  // Register bit index is taken modulo the width.
  Instr BtReg;
  BtReg.Op = Opcode::BT;
  BtReg.Op1 = Operand::reg(Reg::EBX);
  BtReg.Op2 = Operand::reg(Reg::ECX);
  Cpu E = runProgram(
      {movImm(Reg::EBX, 0x10), movImm(Reg::ECX, 36 /* = 4 mod 32 */),
       BtReg});
  EXPECT_TRUE(E.M.Flags[0]);
}

TEST(FlagScenarios, ShldCountZeroTouchesNothing) {
  Instr Stc;
  Stc.Op = Opcode::STC;
  Instr Shld;
  Shld.Op = Opcode::SHLD;
  Shld.Op1 = Operand::reg(Reg::EBX);
  Shld.Op2 = Operand::reg(Reg::ECX);
  Shld.Op3 = Operand::imm(0);
  Cpu C = runProgram({movImm(Reg::EBX, 0x1234), movImm(Reg::ECX, 0xFFFF),
                      Stc, Shld});
  EXPECT_EQ(C.M.Regs[3], 0x1234u);
  EXPECT_TRUE(C.M.Flags[0]); // CF untouched
}

TEST(FlagScenarios, ShldShiftsInFromSource) {
  Instr Shld;
  Shld.Op = Opcode::SHLD;
  Shld.Op1 = Operand::reg(Reg::EBX);
  Shld.Op2 = Operand::reg(Reg::ECX);
  Shld.Op3 = Operand::imm(8);
  Cpu C = runProgram({movImm(Reg::EBX, 0x12345678),
                      movImm(Reg::ECX, 0xABCDEF01), Shld});
  EXPECT_EQ(C.M.Regs[3], 0x345678ABu);

  Instr Shrd = Shld;
  Shrd.Op = Opcode::SHRD;
  Cpu D = runProgram({movImm(Reg::EBX, 0x12345678),
                      movImm(Reg::ECX, 0xABCDEF01), Shrd});
  EXPECT_EQ(D.M.Regs[3], 0x01123456u);
}

TEST(FlagScenarios, CmcTogglesCldDfDirection) {
  Instr Stc;
  Stc.Op = Opcode::STC;
  Instr Cmc;
  Cmc.Op = Opcode::CMC;
  Cpu C = runProgram({Stc, Cmc});
  EXPECT_FALSE(C.M.Flags[0]);

  Instr Std;
  Std.Op = Opcode::STD;
  Cpu D = runProgram({Std});
  EXPECT_TRUE(D.M.Flags[7]); // DF
}
