//===- tests/rtl_test.cpp -------------------------------------*- C++ -*-===//
//
// Unit tests for the RTL language and its interpreter: arithmetic, casts,
// guards, location access, segmented memory with limit faulting, choose,
// and the terminal instructions.
//
//===----------------------------------------------------------------------===//

#include "rtl/Interp.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::rtl;

namespace {

/// Tiny builder for tests.
struct P {
  RtlProgram Prog;
  Var Next = 0;
  Var imm(uint32_t W, uint64_t V) {
    Prog.push_back(RtlInstr::imm(Next, W, V));
    return Next++;
  }
  Var arith(ArithOp Op, Var A, Var B) {
    Prog.push_back(RtlInstr::arith(Op, Next, A, B));
    return Next++;
  }
  Var test(TestOp Op, Var A, Var B) {
    Prog.push_back(RtlInstr::test(Op, Next, A, B));
    return Next++;
  }
  Var getLoc(Loc L) {
    Prog.push_back(RtlInstr::getLoc(Next, L));
    return Next++;
  }
  void setLoc(Loc L, Var V) { Prog.push_back(RtlInstr::setLoc(L, V)); }
  Var getByte(uint8_t S, Var A) {
    Prog.push_back(RtlInstr::getByte(Next, S, A));
    return Next++;
  }
  void setByte(uint8_t S, Var A, Var V) {
    Prog.push_back(RtlInstr::setByte(S, A, V));
  }
  Var castU(uint32_t W, Var V) {
    Prog.push_back(RtlInstr::castU(Next, W, V));
    return Next++;
  }
  Var castS(uint32_t W, Var V) {
    Prog.push_back(RtlInstr::castS(Next, W, V));
    return Next++;
  }
  Var select(Var C, Var A, Var B) {
    Prog.push_back(RtlInstr::select(Next, C, A, B));
    return Next++;
  }
  Var choose(uint32_t W) {
    Prog.push_back(RtlInstr::choose(Next, W));
    return Next++;
  }
  Status run(MachineState &M) {
    return execProgram(M, Prog, Next, {});
  }
};

} // namespace

TEST(RtlInterp, ImmAndSetLoc) {
  MachineState M;
  P B;
  Var V = B.imm(32, 0x12345678);
  B.setLoc(Loc::reg(0), V);
  EXPECT_EQ(B.run(M), Status::Running);
  EXPECT_EQ(M.Regs[0], 0x12345678u);
}

TEST(RtlInterp, ArithmeticWidths) {
  MachineState M;
  P B;
  Var A = B.imm(8, 0xF0);
  Var C = B.imm(8, 0x20);
  Var S = B.arith(ArithOp::Add, A, C); // wraps to 0x10
  B.setLoc(Loc::reg(1), B.castU(32, S));
  B.run(M);
  EXPECT_EQ(M.Regs[1], 0x10u);
}

TEST(RtlInterp, TestOpsProduceOneBit) {
  MachineState M;
  P B;
  Var A = B.imm(32, 5);
  Var C = B.imm(32, 7);
  Var L = B.test(TestOp::Ltu, A, C);
  B.setLoc(Loc::flag(Flag::CF), L);
  B.run(M);
  EXPECT_TRUE(M.Flags[0]);
}

TEST(RtlInterp, SignedVsUnsignedComparison) {
  MachineState M;
  P B;
  Var A = B.imm(32, 0xFFFFFFFF); // -1 signed, max unsigned
  Var C = B.imm(32, 1);
  B.setLoc(Loc::flag(Flag::CF), B.test(TestOp::Ltu, A, C));
  B.setLoc(Loc::flag(Flag::SF), B.test(TestOp::Lts, A, C));
  B.run(M);
  EXPECT_FALSE(M.Flags[0]); // not unsigned-less
  EXPECT_TRUE(M.Flags[4]);  // signed-less
}

TEST(RtlInterp, CastsExtendAndTruncate) {
  MachineState M;
  P B;
  Var A = B.imm(8, 0x80);
  B.setLoc(Loc::reg(0), B.castU(32, A));
  B.setLoc(Loc::reg(1), B.castS(32, A));
  B.run(M);
  EXPECT_EQ(M.Regs[0], 0x80u);
  EXPECT_EQ(M.Regs[1], 0xFFFFFF80u);
}

TEST(RtlInterp, SelectPicksByCondition) {
  MachineState M;
  P B;
  Var T = B.imm(1, 1);
  Var A = B.imm(32, 111);
  Var C = B.imm(32, 222);
  B.setLoc(Loc::reg(0), B.select(T, A, C));
  Var F = B.imm(1, 0);
  B.setLoc(Loc::reg(1), B.select(F, A, C));
  B.run(M);
  EXPECT_EQ(M.Regs[0], 111u);
  EXPECT_EQ(M.Regs[1], 222u);
}

TEST(RtlInterp, GuardSkipsInstruction) {
  MachineState M;
  P B;
  Var Zero = B.imm(1, 0);
  Var One = B.imm(1, 1);
  Var V1 = B.imm(32, 11);
  Var V2 = B.imm(32, 22);
  B.Prog.push_back(RtlInstr::setLoc(Loc::reg(0), V1).withGuard(Zero));
  B.Prog.push_back(RtlInstr::setLoc(Loc::reg(1), V2).withGuard(One));
  B.run(M);
  EXPECT_EQ(M.Regs[0], 0u);
  EXPECT_EQ(M.Regs[1], 22u);
}

TEST(RtlInterp, GuardedTerminalInstructions) {
  {
    MachineState M;
    P B;
    Var Zero = B.imm(1, 0);
    B.Prog.push_back(RtlInstr::error().withGuard(Zero));
    EXPECT_EQ(B.run(M), Status::Running); // skipped
  }
  {
    MachineState M;
    P B;
    Var One = B.imm(1, 1);
    B.Prog.push_back(RtlInstr::fault().withGuard(One));
    EXPECT_EQ(B.run(M), Status::Fault);
  }
}

TEST(RtlInterp, MemoryThroughSegment) {
  MachineState M;
  M.SegBase[3] = 0x5000; // DS
  M.SegLimit[3] = 0xFF;
  M.Mem.store8(0x5010, 0xAB);
  P B;
  Var A = B.imm(32, 0x10);
  Var V = B.getByte(3, A);
  B.setLoc(Loc::reg(0), B.castU(32, V));
  Var W = B.imm(8, 0xCD);
  Var A2 = B.imm(32, 0x20);
  B.setByte(3, A2, W);
  EXPECT_EQ(B.run(M), Status::Running);
  EXPECT_EQ(M.Regs[0], 0xABu);
  EXPECT_EQ(M.Mem.load8(0x5020), 0xCD);
}

TEST(RtlInterp, SegmentLimitFaultsOnLoad) {
  MachineState M;
  M.SegBase[3] = 0x5000;
  M.SegLimit[3] = 0xFF;
  P B;
  Var A = B.imm(32, 0x100); // one past the limit
  B.getByte(3, A);
  EXPECT_EQ(B.run(M), Status::Fault);
}

TEST(RtlInterp, SegmentLimitFaultsOnStore) {
  MachineState M;
  M.SegLimit[2] = 0x0F; // SS
  P B;
  Var A = B.imm(32, 0x10);
  Var V = B.imm(8, 1);
  B.setByte(2, A, V);
  EXPECT_EQ(B.run(M), Status::Fault);
  EXPECT_EQ(M.Mem.load8(0x10), 0); // nothing written
}

TEST(RtlInterp, AccessHooksFire) {
  MachineState M;
  M.SegBase[3] = 0x1000;
  M.SegLimit[3] = 0xFF;
  std::vector<uint32_t> Reads, Writes;
  AccessHooks H;
  H.OnRead = [&](uint32_t Phys, uint8_t) { Reads.push_back(Phys); };
  H.OnWrite = [&](uint32_t Phys, uint8_t, uint8_t) {
    Writes.push_back(Phys);
  };
  RtlProgram Prog;
  Prog.push_back(RtlInstr::imm(0, 32, 4));
  Prog.push_back(RtlInstr::getByte(1, 3, 0));
  Prog.push_back(RtlInstr::imm(2, 8, 9));
  Prog.push_back(RtlInstr::setByte(3, 0, 2));
  execProgram(M, Prog, 3, H);
  ASSERT_EQ(Reads.size(), 1u);
  EXPECT_EQ(Reads[0], 0x1004u);
  ASSERT_EQ(Writes.size(), 1u);
  EXPECT_EQ(Writes[0], 0x1004u);
}

TEST(RtlInterp, ChooseDrawsFromOracle) {
  MachineState M1(7), M2(7);
  P B1, B2;
  B1.setLoc(Loc::reg(0), B1.choose(32));
  B2.setLoc(Loc::reg(0), B2.choose(32));
  B1.run(M1);
  B2.run(M2);
  EXPECT_EQ(M1.Regs[0], M2.Regs[0]); // same seed, same draw
  EXPECT_EQ(M1.Orc.bitsConsumed(), 32u);
}

TEST(RtlInterp, TrapHalts) {
  MachineState M;
  RtlProgram Prog = {RtlInstr::trap()};
  EXPECT_EQ(execProgram(M, Prog, 0, {}), Status::Halted);
}

TEST(RtlInterp, ErrorStopsExecution) {
  MachineState M;
  RtlProgram Prog;
  Prog.push_back(RtlInstr::error());
  Prog.push_back(RtlInstr::imm(0, 32, 1));
  Prog.push_back(RtlInstr::setLoc(Loc::reg(0), 0));
  EXPECT_EQ(execProgram(M, Prog, 1, {}), Status::Error);
  EXPECT_EQ(M.Regs[0], 0u); // nothing after the error ran
}

TEST(RtlInterp, LocationWidths) {
  EXPECT_EQ(Loc::pc().width(), 32u);
  EXPECT_EQ(Loc::reg(3).width(), 32u);
  EXPECT_EQ(Loc::segVal(1).width(), 16u);
  EXPECT_EQ(Loc::segBase(1).width(), 32u);
  EXPECT_EQ(Loc::flag(Flag::OF).width(), 1u);
}

TEST(RtlInterp, PrinterCoversAllKinds) {
  RtlProgram Prog = {
      RtlInstr::imm(0, 32, 5),
      RtlInstr::arith(ArithOp::Add, 1, 0, 0),
      RtlInstr::test(TestOp::Eq, 2, 0, 1),
      RtlInstr::getLoc(3, Loc::reg(0)),
      RtlInstr::setLoc(Loc::pc(), 3),
      RtlInstr::getByte(4, 3, 0),
      RtlInstr::setByte(3, 0, 4),
      RtlInstr::castU(5, 8, 0),
      RtlInstr::castS(6, 64, 0),
      RtlInstr::select(7, 2, 0, 1),
      RtlInstr::choose(8, 16),
      RtlInstr::error(),
      RtlInstr::fault(),
      RtlInstr::trap(),
  };
  std::string S = printRtlProgram(Prog);
  EXPECT_NE(S.find("choose"), std::string::npos);
  EXPECT_NE(S.find("fault"), std::string::npos);
  EXPECT_EQ(std::count(S.begin(), S.end(), '\n'),
            static_cast<long>(Prog.size()));
}
