//===- tests/incr_test.cpp -------------------------------------*- C++ -*-===//
//
// The incremental re-verification subsystem: every verdict an
// IncrementalVerifier produces — after open, after any sequence of
// patches, across chunk geometries, cache pressure, and accept/reject
// flips — must be bit-identical to a full RockSalt::check of the
// image's current bytes (verdict, reject reason, and all three
// bitmaps). Plus the ChunkCache's LRU/counter contract, the scan-read
// bound's sanity, and the loud failure of every invalid request.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "incr/IncrementalVerifier.h"
#include "nacl/WorkloadGen.h"
#include "support/Oracle.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

using namespace rocksalt;

namespace {

/// Full-check cross-check: the subsystem's core promise.
void expectBitIdentical(incr::IncrementalVerifier &V, incr::ImageId Id,
                        const std::vector<uint8_t> &Bytes, const char *What) {
  core::RockSalt Full;
  core::CheckResult F = Full.check(Bytes);
  const core::CheckResult &I = V.lastCheck(Id);
  EXPECT_EQ(I.Ok, F.Ok) << What;
  EXPECT_EQ(I.Reason, F.Reason) << What;
  EXPECT_EQ(I.Valid, F.Valid) << What;
  EXPECT_EQ(I.Target, F.Target) << What;
  EXPECT_EQ(I.PairJmp, F.PairJmp) << What;
}

std::vector<uint8_t> workload(uint32_t Bytes, uint64_t Seed) {
  nacl::WorkloadOptions WO;
  WO.TargetBytes = Bytes;
  WO.Seed = Seed;
  return nacl::generateWorkload(WO);
}

// --- Scan-read bound and cache keys ------------------------------------

TEST(IncrTest, MaxScanReadBytesIsSane) {
  uint32_t MaxRead = incr::maxScanReadBytes(core::policyTables());
  // Multi-byte instructions exist, and no policy instruction is longer
  // than a bundle — the dirty-card arithmetic and the chunk-skip
  // argument both lean on MaxRead < ChunkBytes (>= BundleSize).
  EXPECT_GE(MaxRead, 2u);
  EXPECT_LE(MaxRead, core::BundleSize);
}

TEST(IncrTest, ChunkKeyCoversGeometryAndContent) {
  std::vector<uint8_t> A(256, 0x90);
  uint32_t MR = 8;
  incr::ChunkKey K = incr::chunkKey(A.data(), 256, 0, 64, MR);
  // Same window bytes at a different absolute position: different key
  // (positions and jump targets are absolute).
  EXPECT_NE(K, incr::chunkKey(A.data(), 256, 64, 128, MR));
  // Same geometry, different image size: different key (dfaMatch
  // exhaustion and the target range check read the size).
  EXPECT_NE(K, incr::chunkKey(A.data(), 128, 0, 64, MR));
  // A byte outside the scan window [Begin, End-1+MaxRead): same key.
  std::vector<uint8_t> B = A;
  B[64 + MR - 1] = 0xC3;
  EXPECT_EQ(K, incr::chunkKey(B.data(), 256, 0, 64, MR));
  // A byte inside the window overhang: different key.
  std::vector<uint8_t> C = A;
  C[64 + MR - 2] = 0xC3;
  EXPECT_NE(K, incr::chunkKey(C.data(), 256, 0, 64, MR));
}

// --- ChunkCache contract ------------------------------------------------

std::shared_ptr<const core::ShardScan> dummyScan(uint32_t Begin) {
  auto S = std::make_shared<core::ShardScan>();
  S->reset(Begin, Begin + 32);
  return S;
}

incr::ChunkKey keyOf(uint8_t Tag) {
  incr::ChunkKey K{};
  K[0] = Tag;
  return K;
}

TEST(IncrTest, ChunkCacheLruEvictionAndCounters) {
  svc::Metrics M;
  incr::ChunkCacheOptions O;
  O.MaxEntries = 2;
  incr::ChunkCache C(O, &M);

  EXPECT_EQ(C.lookup(keyOf(1)), nullptr); // miss
  C.insert(keyOf(1), dummyScan(0));
  C.insert(keyOf(2), dummyScan(32));
  EXPECT_NE(C.lookup(keyOf(1)), nullptr); // hit; 1 now most recent
  C.insert(keyOf(3), dummyScan(64));      // evicts 2 (LRU), not 1
  EXPECT_EQ(C.size(), 2u);
  EXPECT_NE(C.lookup(keyOf(1)), nullptr);
  EXPECT_EQ(C.lookup(keyOf(2)), nullptr);
  EXPECT_NE(C.lookup(keyOf(3)), nullptr);

  EXPECT_EQ(C.hits(), 3u);
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.evictions(), 1u);
  // Mirrored into the service metrics.
  EXPECT_EQ(M.IncrChunkHits.get(), 3u);
  EXPECT_EQ(M.IncrChunkMisses.get(), 2u);
  EXPECT_EQ(M.IncrChunkEvictions.get(), 1u);

  C.clear();
  EXPECT_EQ(C.size(), 0u);
  EXPECT_EQ(C.hits(), 3u); // counters keep their totals
}

TEST(IncrTest, ChunkCacheByteBudgetEvicts) {
  incr::ChunkCacheOptions O;
  O.MaxBytes = 1; // any entry overflows: at most one survives insertion
  incr::ChunkCache C(O);
  C.insert(keyOf(1), dummyScan(0));
  auto Held = C.insert(keyOf(2), dummyScan(32));
  EXPECT_LE(C.size(), 1u);
  EXPECT_GE(C.evictions(), 1u);
  // Shared ownership: the caller's pointer survives eviction.
  EXPECT_NE(Held, nullptr);
  EXPECT_EQ(Held->Begin, 32u);
}

// --- Open/patch equivalence --------------------------------------------

TEST(IncrTest, OpenMatchesFullCheckOnMixedImages) {
  incr::IncrementalVerifier V;
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    std::vector<uint8_t> Img = workload(700, Seed);
    if (Seed % 2 == 0)
      Img[Img.size() / 3] = 0xC3; // break half of them
    incr::IncrResult R;
    incr::ImageId Id = V.open(Img, &R);
    EXPECT_EQ(R.ChunksRescanned + R.ChunkCacheHits,
              V.store().get(Id)->numChunks());
    expectBitIdentical(V, Id, Img, "open");
    // A reverify with no dirty cards must not change the verdict.
    incr::IncrResult R2 = V.reverify(Id);
    EXPECT_EQ(R2.ChunksRescanned, 0u);
    EXPECT_EQ(R2.Ok, R.Ok);
    expectBitIdentical(V, Id, Img, "idle reverify");
  }
}

TEST(IncrTest, PatchAtOffsetZero) {
  std::vector<uint8_t> Img(256, 0x90);
  incr::IncrementalVerifier V;
  incr::ImageId Id = V.open(Img);
  ASSERT_TRUE(V.lastCheck(Id).Ok);

  Img[0] = 0x40; // inc eax
  incr::IncrResult R = V.patch(Id, 0, Img.data(), 1);
  EXPECT_TRUE(R.Ok);
  expectBitIdentical(V, Id, Img, "patch at 0");
}

TEST(IncrTest, PatchInFinalPartialChunk) {
  // 1000 bytes with 512-byte chunks: the last chunk is 488 bytes and
  // the image tail is not bundle-aligned.
  std::vector<uint8_t> Img(1000, 0x90);
  incr::IncrementalOptions IO;
  IO.ChunkBytes = 512;
  incr::IncrementalVerifier V(IO);
  incr::ImageId Id = V.open(Img);
  ASSERT_TRUE(V.lastCheck(Id).Ok);

  Img[999] = 0x40;
  V.patch(Id, 999, &Img[999], 1);
  expectBitIdentical(V, Id, Img, "patch last byte");

  Img[511] = 0x40; // straddles the chunk seam's scan window
  V.patch(Id, 511, &Img[511], 1);
  expectBitIdentical(V, Id, Img, "patch at seam");
}

TEST(IncrTest, AcceptRejectAcceptFlipRehitsCache) {
  std::vector<uint8_t> Img(512, 0x90);
  incr::IncrementalVerifier V;
  incr::ImageId Id = V.open(Img);
  ASSERT_TRUE(V.lastCheck(Id).Ok);

  // ret parses under no grammar of the aligned policy: reject.
  uint8_t Ret = 0xC3, Orig = 0x90;
  Img[100] = Ret;
  incr::IncrResult R1 = V.patch(Id, 100, &Ret, 1);
  EXPECT_FALSE(R1.Ok);
  EXPECT_EQ(R1.Reason, core::RejectReason::NoParse);
  expectBitIdentical(V, Id, Img, "reject flip");

  // Revert: the chunk's original-content scan is still cached.
  Img[100] = Orig;
  incr::IncrResult R2 = V.patch(Id, 100, &Orig, 1);
  EXPECT_TRUE(R2.Ok);
  EXPECT_GE(R2.ChunkCacheHits, 1u);
  EXPECT_EQ(R2.ChunksRescanned, 0u);
  expectBitIdentical(V, Id, Img, "revert flip");
}

TEST(IncrTest, RandomPatchSequencesStayBitIdentical) {
  // Edge-geometry sweep: one-bundle chunks maximize seams; a tail-
  // truncated image keeps the final partial chunk in the loop.
  for (uint32_t CB : {32u, 128u}) {
    std::vector<uint8_t> Img = workload(900, 7 + CB);
    Img.resize(Img.size() - 13); // non-bundle-multiple tail
    incr::IncrementalOptions IO;
    IO.ChunkBytes = CB;
    incr::IncrementalVerifier V(IO);
    incr::ImageId Id = V.open(Img);
    expectBitIdentical(V, Id, Img, "open");

    Rng R(1234 + CB);
    for (int Step = 0; Step < 60; ++Step) {
      uint32_t Len = 1 + uint32_t(R.below(12));
      if (Len > Img.size())
        Len = uint32_t(Img.size());
      uint32_t Off = uint32_t(R.below(Img.size() - Len + 1));
      std::vector<uint8_t> Patch(Len);
      for (auto &B : Patch)
        B = R.below(4) ? uint8_t(0x90) : uint8_t(R.next());
      for (uint32_t I = 0; I < Len; ++I)
        Img[Off + I] = Patch[I];
      V.patch(Id, Off, Patch);
      expectBitIdentical(V, Id, Img, "random step");
    }
    V.close(Id);
  }
}

TEST(IncrTest, IdenticalChunksShareAcrossImages) {
  std::vector<uint8_t> Img(2048, 0x90);
  incr::IncrementalVerifier V;
  incr::ImageId A = V.open(Img);
  incr::IncrResult R;
  incr::ImageId B = V.open(Img, &R);
  EXPECT_NE(A, B);
  EXPECT_EQ(V.store().count(), 2u);
  // Every chunk of the second image is already cached (same content,
  // same geometry), including by the first image's own interior chunks.
  EXPECT_EQ(R.ChunksRescanned, 0u);
  EXPECT_EQ(R.ChunkCacheHits, V.store().get(B)->numChunks());

  V.close(A);
  EXPECT_EQ(V.store().count(), 1u);
  uint8_t X = 0x40;
  Img[5] = X;
  V.patch(B, 5, &X, 1); // survivor still verifies after the close
  expectBitIdentical(V, B, Img, "after sibling close");
}

// --- Invalid requests fail loudly --------------------------------------

TEST(IncrTest, InvalidRequestsThrow) {
  incr::IncrementalOptions Bad;
  Bad.ChunkBytes = core::BundleSize + 1; // not a bundle multiple
  EXPECT_THROW(incr::IncrementalVerifier{Bad}, std::invalid_argument);
  Bad.ChunkBytes = 0;
  EXPECT_THROW(incr::IncrementalVerifier{Bad}, std::invalid_argument);

  incr::IncrementalVerifier V;
  std::vector<uint8_t> Img(64, 0x90);
  incr::ImageId Id = V.open(Img);
  uint8_t B = 0x90;

  EXPECT_THROW(V.patch(Id, 0, &B, 0), std::invalid_argument);  // zero-length
  EXPECT_THROW(V.patch(Id, 64, &B, 1), std::invalid_argument); // off the end
  EXPECT_THROW(V.patch(Id, 60, &B, 5), std::invalid_argument); // leaves image
  EXPECT_THROW(V.patch(Id + 1, 0, &B, 1), std::invalid_argument);
  EXPECT_THROW(V.reverify(Id + 1), std::invalid_argument);
  EXPECT_THROW(V.lastCheck(Id + 1), std::invalid_argument);
  EXPECT_THROW(V.close(Id + 1), std::invalid_argument);

  // The failed calls left the image intact.
  EXPECT_TRUE(V.lastCheck(Id).Ok);
  V.close(Id);
  EXPECT_THROW(V.close(Id), std::invalid_argument); // double close
  EXPECT_EQ(V.store().count(), 0u);
}

TEST(IncrTest, EmptyImageOpensAndAccepts) {
  incr::IncrementalVerifier V;
  incr::IncrResult R;
  incr::ImageId Id = V.open({}, &R);
  EXPECT_TRUE(R.Ok);
  std::vector<uint8_t> Empty;
  expectBitIdentical(V, Id, Empty, "empty image");
  uint8_t B = 0x90;
  EXPECT_THROW(V.patch(Id, 0, &B, 1), std::invalid_argument);
  V.close(Id);
}

} // namespace
