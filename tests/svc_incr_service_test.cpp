//===- tests/svc_incr_service_test.cpp -------------------------*- C++ -*-===//
//
// The incremental (image-handle) request kinds of the verification
// service: the codecs must round-trip and reject every malformed body
// shape at the decoder (zero handle, zero-length patch, u32 overflow,
// truncation, trailing bytes), a stateful session's open/patch/close
// verdicts must match a full RockSalt::check of the mutated bytes, bad
// handles and out-of-range patches must answer with ErrorResponse while
// the session's other handles stay live, handles must be invisible
// across sessions, the stateless handleFrame must refuse the stateful
// kinds, and a serveFd socketpair session must run the whole
// open -> patch -> close protocol over the wire.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "nacl/WorkloadGen.h"
#include "svc/Protocol.h"
#include "svc/Service.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <thread>
#include <vector>

using namespace rocksalt;
using svc::proto::Frame;
using svc::proto::MsgKind;
using svc::proto::ProtocolError;

namespace {

std::vector<uint8_t> workload(uint32_t Bytes, uint64_t Seed) {
  nacl::WorkloadOptions WO;
  WO.TargetBytes = Bytes;
  WO.Seed = Seed;
  return nacl::generateWorkload(WO);
}

/// Round-trips a request through the stateful framed shell.
Frame dispatch(svc::Service &S, svc::Service::Session *Sess, MsgKind Kind,
               const std::vector<uint8_t> &Body) {
  std::vector<uint8_t> Req;
  svc::proto::appendFrame(Req, Kind, Body);
  Frame In;
  size_t Pos = 0;
  EXPECT_TRUE(svc::proto::parseFrame(Req.data(), Req.size(), &Pos, &In));
  std::vector<uint8_t> Resp = S.handleFrame(In, Sess, nullptr);
  Frame Out;
  Pos = 0;
  EXPECT_TRUE(svc::proto::parseFrame(Resp.data(), Resp.size(), &Pos, &Out));
  EXPECT_EQ(Pos, Resp.size());
  return Out;
}

// --- Codec round-trips --------------------------------------------------

TEST(SvcIncrTest, IncrCodecsRoundTrip) {
  std::vector<uint8_t> Img = {0x90, 0x40, 0x90};
  EXPECT_EQ(svc::proto::decodeImageOpenRequest(
                svc::proto::encodeImageOpenRequest(Img)),
            Img);

  svc::proto::ImageOpenReply O;
  O.Image = 7;
  O.V = {false, core::RejectReason::BadTarget};
  svc::proto::ImageOpenReply O2 = svc::proto::decodeImageOpenResponse(
      svc::proto::encodeImageOpenResponse(O));
  EXPECT_EQ(O2.Image, 7u);
  EXPECT_FALSE(O2.V.Ok);
  EXPECT_EQ(O2.V.Reason, core::RejectReason::BadTarget);

  svc::proto::PatchRequestBody P;
  P.Image = 3;
  P.Offset = 96;
  P.Bytes = {0x40, 0x48};
  svc::proto::PatchRequestBody P2 =
      svc::proto::decodePatchRequest(svc::proto::encodePatchRequest(P));
  EXPECT_EQ(P2.Image, 3u);
  EXPECT_EQ(P2.Offset, 96u);
  EXPECT_EQ(P2.Bytes, P.Bytes);
  EXPECT_FALSE(P2.WantLint);
  P.WantLint = true;
  EXPECT_TRUE(
      svc::proto::decodePatchRequest(svc::proto::encodePatchRequest(P))
          .WantLint);

  svc::proto::PatchReply R;
  R.V = {true, core::RejectReason::None};
  R.ChunksRescanned = 2;
  R.ChunkCacheHits = 1;
  svc::proto::PatchReply R2 =
      svc::proto::decodePatchResponse(svc::proto::encodePatchResponse(R));
  EXPECT_TRUE(R2.V.Ok);
  EXPECT_EQ(R2.ChunksRescanned, 2u);
  EXPECT_EQ(R2.ChunkCacheHits, 1u);
  EXPECT_FALSE(R2.HasLint);

  // The optional lint report round-trips when attached.
  R.HasLint = true;
  R.Lint.ParseComplete = true;
  R.Lint.Errors = 0;
  R.Lint.Warnings = 1;
  R.Lint.Notes = 2;
  R.Lint.Render = "  lint: ...\n";
  svc::proto::PatchReply R3 =
      svc::proto::decodePatchResponse(svc::proto::encodePatchResponse(R));
  ASSERT_TRUE(R3.HasLint);
  EXPECT_TRUE(R3.Lint.ParseComplete);
  EXPECT_EQ(R3.Lint.Warnings, 1u);
  EXPECT_EQ(R3.Lint.Notes, 2u);
  EXPECT_EQ(R3.Lint.Render, R.Lint.Render);

  EXPECT_EQ(svc::proto::decodeImageCloseRequest(
                svc::proto::encodeImageCloseRequest(9)),
            9u);
}

TEST(SvcIncrTest, IncrDecodersRejectMalformedBodies) {
  // Zero handles can never be valid: the server never assigns 0.
  EXPECT_THROW(svc::proto::decodeImageCloseRequest(
                   svc::proto::encodeImageCloseRequest(0)),
               ProtocolError);
  svc::proto::PatchRequestBody P;
  P.Image = 0;
  P.Offset = 0;
  P.Bytes = {0x90};
  EXPECT_THROW(svc::proto::decodePatchRequest(svc::proto::encodePatchRequest(P)),
               ProtocolError);

  // Zero-length patch: encode by hand (the struct encoder would emit
  // Len 0 too, but being explicit keeps the byte shape in view).
  P.Image = 1;
  std::vector<uint8_t> ZeroLen = svc::proto::encodePatchRequest(P);
  ZeroLen.resize(12); // Image, Offset, Len — then chop the payload
  ZeroLen[8] = ZeroLen[9] = ZeroLen[10] = ZeroLen[11] = 0;
  EXPECT_THROW(svc::proto::decodePatchRequest(ZeroLen), ProtocolError);

  // Offset + length past the 32-bit image space.
  P.Offset = UINT32_MAX - 1;
  P.Bytes = {0x90, 0x90, 0x90};
  EXPECT_THROW(svc::proto::decodePatchRequest(svc::proto::encodePatchRequest(P)),
               ProtocolError);

  // Truncated and oversized bodies.
  P.Offset = 0;
  std::vector<uint8_t> Good = svc::proto::encodePatchRequest(P);
  std::vector<uint8_t> Short(Good.begin(), Good.end() - 1);
  EXPECT_THROW(svc::proto::decodePatchRequest(Short), ProtocolError);
  std::vector<uint8_t> Long = Good;
  Long.push_back(0);
  EXPECT_THROW(svc::proto::decodePatchRequest(Long), ProtocolError);
  EXPECT_THROW(svc::proto::decodeImageOpenRequest({1, 0, 0}), ProtocolError);
  EXPECT_THROW(svc::proto::decodeImageCloseRequest({1, 2, 3}), ProtocolError);

  // A response with an out-of-range reject reason.
  svc::proto::ImageOpenReply O;
  O.Image = 1;
  std::vector<uint8_t> Resp = svc::proto::encodeImageOpenResponse(O);
  Resp[5] = 0xEE;
  EXPECT_THROW(svc::proto::decodeImageOpenResponse(Resp), ProtocolError);
}

// --- Stateful session behavior -----------------------------------------

TEST(SvcIncrTest, SessionOpenPatchCloseMatchesFullCheck) {
  svc::Metrics M;
  svc::Service S(svc::ServiceOptions{2, &M});
  svc::Service::Session Sess(S);

  std::vector<uint8_t> Img = workload(800, 41);
  core::RockSalt Full;

  Frame OpenResp = dispatch(S, &Sess, MsgKind::ImageOpenRequest,
                            svc::proto::encodeImageOpenRequest(Img));
  ASSERT_EQ(OpenResp.Kind, MsgKind::ImageOpenResponse);
  svc::proto::ImageOpenReply O =
      svc::proto::decodeImageOpenResponse(OpenResp.Body);
  EXPECT_NE(O.Image, 0u);
  EXPECT_EQ(O.V.Ok, Full.check(Img).Ok);

  // A run of patches, each re-verified against the mutated bytes.
  for (uint32_t Step = 0; Step < 8; ++Step) {
    svc::proto::PatchRequestBody P;
    P.Image = O.Image;
    P.Offset = 32 * Step;
    P.Bytes.assign(4, Step % 2 ? 0x40 : 0xC3); // inc-sled or ret (reject)
    for (uint32_t I = 0; I < P.Bytes.size(); ++I)
      Img[P.Offset + I] = P.Bytes[I];
    Frame PatchResp = dispatch(S, &Sess, MsgKind::PatchRequest,
                               svc::proto::encodePatchRequest(P));
    ASSERT_EQ(PatchResp.Kind, MsgKind::PatchResponse);
    svc::proto::PatchReply R =
        svc::proto::decodePatchResponse(PatchResp.Body);
    core::CheckResult F = Full.check(Img);
    EXPECT_EQ(R.V.Ok, F.Ok) << "step " << Step;
    EXPECT_EQ(R.V.Reason, F.Reason) << "step " << Step;
  }

  Frame CloseResp = dispatch(S, &Sess, MsgKind::ImageCloseRequest,
                             svc::proto::encodeImageCloseRequest(O.Image));
  EXPECT_EQ(CloseResp.Kind, MsgKind::ImageCloseResponse);

  EXPECT_EQ(M.SvcImageOpenRequests.get(), 1u);
  EXPECT_EQ(M.SvcPatchRequests.get(), 8u);
  EXPECT_EQ(M.SvcImageCloseRequests.get(), 1u);
  EXPECT_EQ(M.SvcPatchNanos.count(), 8u);
  EXPECT_GT(M.IncrChunkMisses.get(), 0u);
}

TEST(SvcIncrTest, PatchWithWantLintCarriesFreshIdenticalReport) {
  svc::Metrics M;
  svc::Service S(svc::ServiceOptions{2, &M});
  svc::Service::Session Sess(S);

  std::vector<uint8_t> Img = workload(800, 77);
  svc::proto::ImageOpenReply O = svc::proto::decodeImageOpenResponse(
      dispatch(S, &Sess, MsgKind::ImageOpenRequest,
               svc::proto::encodeImageOpenRequest(Img))
          .Body);
  ASSERT_TRUE(O.V.Ok);

  // Two lint-carrying patches: the first seeds the session's lint state
  // (a full lint), the second goes through the incremental relint. Both
  // reports must be byte-identical to a fresh lintImage of the mutated
  // bytes.
  for (uint32_t Step = 0; Step < 2; ++Step) {
    svc::proto::PatchRequestBody P;
    P.Image = O.Image;
    P.Offset = 64 + 8 * Step;
    P.Bytes.assign(4, 0x90);
    P.WantLint = true;
    for (uint32_t I = 0; I < P.Bytes.size(); ++I)
      Img[P.Offset + I] = P.Bytes[I];
    svc::proto::PatchReply R = svc::proto::decodePatchResponse(
        dispatch(S, &Sess, MsgKind::PatchRequest,
                 svc::proto::encodePatchRequest(P))
            .Body);
    ASSERT_TRUE(R.HasLint) << "step " << Step;
    analysis::CfgLintResult Fresh = analysis::lintImage(S.policyTables(), Img);
    EXPECT_EQ(R.Lint.Render, Fresh.render()) << "step " << Step;
    EXPECT_EQ(R.Lint.Errors, Fresh.Errors) << "step " << Step;
    EXPECT_EQ(R.Lint.Warnings, Fresh.Warnings) << "step " << Step;
    EXPECT_EQ(R.Lint.Notes, Fresh.Notes) << "step " << Step;
    EXPECT_EQ(R.Lint.ParseComplete, Fresh.ParseComplete) << "step " << Step;
  }
  EXPECT_EQ(M.LintIncrRelints.get(), 1u); // only the second patch relints

  // A lint-less patch attaches no report.
  svc::proto::PatchRequestBody P;
  P.Image = O.Image;
  P.Offset = 0;
  P.Bytes = {0x90};
  Img[0] = 0x90;
  EXPECT_FALSE(svc::proto::decodePatchResponse(
                   dispatch(S, &Sess, MsgKind::PatchRequest,
                            svc::proto::encodePatchRequest(P))
                       .Body)
                   .HasLint);

  dispatch(S, &Sess, MsgKind::ImageCloseRequest,
           svc::proto::encodeImageCloseRequest(O.Image));
}

TEST(SvcIncrTest, BadHandleAndBadRangeAnswerErrorAndSessionSurvives) {
  svc::Metrics M;
  svc::Service S(svc::ServiceOptions{2, &M});
  svc::Service::Session Sess(S);

  std::vector<uint8_t> Img(128, 0x90);
  svc::proto::ImageOpenReply O = svc::proto::decodeImageOpenResponse(
      dispatch(S, &Sess, MsgKind::ImageOpenRequest,
               svc::proto::encodeImageOpenRequest(Img))
          .Body);
  ASSERT_TRUE(O.V.Ok);

  // Unknown handle: decodes fine, dies in the incr layer -> ErrorResponse.
  svc::proto::PatchRequestBody P;
  P.Image = O.Image + 99;
  P.Offset = 0;
  P.Bytes = {0x90};
  EXPECT_EQ(dispatch(S, &Sess, MsgKind::PatchRequest,
                     svc::proto::encodePatchRequest(P))
                .Kind,
            MsgKind::ErrorResponse);

  // In-range handle, out-of-range patch window.
  P.Image = O.Image;
  P.Offset = 127;
  P.Bytes = {0x90, 0x90};
  EXPECT_EQ(dispatch(S, &Sess, MsgKind::PatchRequest,
                     svc::proto::encodePatchRequest(P))
                .Kind,
            MsgKind::ErrorResponse);
  EXPECT_EQ(dispatch(S, &Sess, MsgKind::ImageCloseRequest,
                     svc::proto::encodeImageCloseRequest(O.Image + 99))
                .Kind,
            MsgKind::ErrorResponse);
  EXPECT_EQ(M.SvcErrors.get(), 3u);

  // The session and its handle survived all three errors.
  P.Offset = 5;
  P.Bytes = {0x40};
  Frame R = dispatch(S, &Sess, MsgKind::PatchRequest,
                     svc::proto::encodePatchRequest(P));
  ASSERT_EQ(R.Kind, MsgKind::PatchResponse);
  EXPECT_TRUE(svc::proto::decodePatchResponse(R.Body).V.Ok);
}

TEST(SvcIncrTest, HandlesAreInvisibleAcrossSessions) {
  svc::Service S(svc::ServiceOptions{2, nullptr});
  svc::Service::Session A(S), B(S);

  std::vector<uint8_t> Img(64, 0x90);
  svc::proto::ImageOpenReply O = svc::proto::decodeImageOpenResponse(
      dispatch(S, &A, MsgKind::ImageOpenRequest,
               svc::proto::encodeImageOpenRequest(Img))
          .Body);
  ASSERT_TRUE(O.V.Ok);

  // Session B never opened this handle.
  svc::proto::PatchRequestBody P;
  P.Image = O.Image;
  P.Offset = 0;
  P.Bytes = {0x90};
  EXPECT_EQ(dispatch(S, &B, MsgKind::PatchRequest,
                     svc::proto::encodePatchRequest(P))
                .Kind,
            MsgKind::ErrorResponse);
  // Session A still owns it.
  EXPECT_EQ(dispatch(S, &A, MsgKind::PatchRequest,
                     svc::proto::encodePatchRequest(P))
                .Kind,
            MsgKind::PatchResponse);
}

TEST(SvcIncrTest, StatelessHandleFrameRefusesStatefulKinds) {
  svc::Metrics M;
  svc::Service S(svc::ServiceOptions{2, &M});

  auto StatelessError = [&](MsgKind K, const std::vector<uint8_t> &Body) {
    std::vector<uint8_t> Req;
    svc::proto::appendFrame(Req, K, Body);
    Frame In;
    size_t Pos = 0;
    ASSERT_TRUE(svc::proto::parseFrame(Req.data(), Req.size(), &Pos, &In));
    std::vector<uint8_t> Resp = S.handleFrame(In, nullptr); // 2-arg shell
    Frame Out;
    Pos = 0;
    ASSERT_TRUE(svc::proto::parseFrame(Resp.data(), Resp.size(), &Pos, &Out));
    EXPECT_EQ(Out.Kind, MsgKind::ErrorResponse);
  };
  StatelessError(MsgKind::ImageOpenRequest,
                 svc::proto::encodeImageOpenRequest({0x90}));
  svc::proto::PatchRequestBody P;
  P.Image = 1;
  P.Offset = 0;
  P.Bytes = {0x90};
  StatelessError(MsgKind::PatchRequest, svc::proto::encodePatchRequest(P));
  StatelessError(MsgKind::ImageCloseRequest,
                 svc::proto::encodeImageCloseRequest(1));
  EXPECT_EQ(M.SvcErrors.get(), 3u);
  // The stateful kinds were still counted as requests.
  EXPECT_EQ(M.SvcImageOpenRequests.get(), 1u);
  EXPECT_EQ(M.SvcPatchRequests.get(), 1u);
  EXPECT_EQ(M.SvcImageCloseRequests.get(), 1u);
}

// --- serveFd: the full protocol over a socketpair ----------------------

TEST(SvcIncrTest, ServeFdRunsOpenPatchCloseSession) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);

  svc::Metrics M;
  svc::Service S(svc::ServiceOptions{2, &M});
  std::thread Server([&] { S.serveFd(Fds[0], Fds[0]); });

  auto Send = [&](MsgKind K, const std::vector<uint8_t> &Body) {
    std::vector<uint8_t> Out;
    svc::proto::appendFrame(Out, K, Body);
    ASSERT_EQ(::write(Fds[1], Out.data(), Out.size()), ssize_t(Out.size()));
  };
  std::vector<uint8_t> Buf;
  auto Recv = [&]() -> Frame {
    Frame F;
    size_t Pos = 0;
    while (!svc::proto::parseFrame(Buf.data(), Buf.size(), &Pos, &F)) {
      uint8_t Tmp[4096];
      ssize_t N = ::read(Fds[1], Tmp, sizeof(Tmp));
      if (N <= 0)
        throw std::runtime_error("server hung up");
      Buf.insert(Buf.end(), Tmp, Tmp + N);
    }
    Buf.erase(Buf.begin(), Buf.begin() + long(Pos));
    return F;
  };

  std::vector<uint8_t> Img = workload(700, 77);
  core::RockSalt Full;

  Send(MsgKind::ImageOpenRequest, svc::proto::encodeImageOpenRequest(Img));
  Frame OpenResp = Recv();
  ASSERT_EQ(OpenResp.Kind, MsgKind::ImageOpenResponse);
  svc::proto::ImageOpenReply O =
      svc::proto::decodeImageOpenResponse(OpenResp.Body);
  EXPECT_EQ(O.V.Ok, Full.check(Img).Ok);

  svc::proto::PatchRequestBody P;
  P.Image = O.Image;
  P.Offset = 64;
  P.Bytes.assign(8, 0x40);
  for (uint32_t I = 0; I < P.Bytes.size(); ++I)
    Img[P.Offset + I] = P.Bytes[I];
  Send(MsgKind::PatchRequest, svc::proto::encodePatchRequest(P));
  Frame PatchResp = Recv();
  ASSERT_EQ(PatchResp.Kind, MsgKind::PatchResponse);
  svc::proto::PatchReply R = svc::proto::decodePatchResponse(PatchResp.Body);
  core::CheckResult F = Full.check(Img);
  EXPECT_EQ(R.V.Ok, F.Ok);
  EXPECT_EQ(R.V.Reason, F.Reason);

  Send(MsgKind::ImageCloseRequest,
       svc::proto::encodeImageCloseRequest(O.Image));
  EXPECT_EQ(Recv().Kind, MsgKind::ImageCloseResponse);

  Send(MsgKind::ShutdownRequest, {});
  EXPECT_EQ(Recv().Kind, MsgKind::ShutdownResponse);
  Server.join();
  EXPECT_EQ(M.SvcPatchRequests.get(), 1u);
  EXPECT_EQ(M.SvcPatchNanos.count(), 1u);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

} // namespace
