//===- tests/core_registry_test.cpp ---------------------------*- C++ -*-===//
//
// The multi-ISA table registry (core/TableRegistry.h): keyed and
// content-addressed lookup, fuse-on-register identity (an entry's
// Tables/Fused/Blob/HashHex can never disagree), adoption semantics
// (idempotent on equal content, hard failure on conflict — never a
// silent loss), and thread-safety of the whole surface under concurrent
// first use. The concurrency test doubles as the TSan-tree gate
// (registry_concurrent_under_tsan in tests/CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#include "core/TableRegistry.h"
#include "mips/MipsPolicy.h"
#include "regex/TableIO.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace rocksalt;
using namespace rocksalt::core;

namespace {

int CountedBuilds = 0;
PolicyTables countedBuild() {
  ++CountedBuilds;
  return mips::buildMipsPolicyTables();
}

TEST(TableRegistry, DefaultEntryIsTheX86Tenant) {
  const TableEntry &E = defaultTableEntry();
  EXPECT_EQ(E.Key.Isa, IsaX86);
  EXPECT_EQ(E.Key.PolicySet, PolicySetNacl);
  EXPECT_EQ(E.Key.Format, re::TableFormatVersion);

  // The legacy singleton accessors are now views of this entry, so the
  // fused fast path and the per-table form can never diverge again.
  EXPECT_EQ(E.Tables, &policyTables());
  EXPECT_EQ(E.Fused, &fusedPolicyTables());

  // Blob and hash were derived from the same tables at registration.
  EXPECT_EQ(E.HashHex, re::blobHashHex(E.Blob));
  EXPECT_EQ(E.HashHex, re::verifyBlobHashHex(E.Blob));
  EXPECT_EQ(E.Blob, serializePolicyTables(*E.Tables));

  EXPECT_EQ(TableRegistry::instance().byKey(IsaX86, PolicySetNacl), &E);
  EXPECT_EQ(TableRegistry::instance().byHash(E.HashHex), &E);
}

TEST(TableRegistry, MipsEntryRegistersBesideX86) {
  const TableEntry &M = mips::mipsTableEntry();
  const TableEntry &X = defaultTableEntry();
  EXPECT_EQ(M.Key.Isa, IsaMips);
  EXPECT_EQ(M.Key.PolicySet, PolicySetNacl);
  EXPECT_NE(&M, &X);
  EXPECT_NE(M.HashHex, X.HashHex);
  EXPECT_EQ(TableRegistry::instance().byKey(IsaMips, PolicySetNacl), &M);
  EXPECT_EQ(TableRegistry::instance().byHash(M.HashHex), &M);

  // The mips blob carries mips identity tags.
  re::TableBundle B = re::deserializeTables(M.Blob);
  EXPECT_EQ(B.Isa, IsaMips);
  EXPECT_EQ(B.PolicySet, PolicySetNacl);
}

TEST(TableRegistry, GetOrBuildBuildsExactlyOnce) {
  TableKey K{IsaMips, "idempotence-probe", re::TableFormatVersion};
  CountedBuilds = 0;
  const TableEntry &A = TableRegistry::instance().getOrBuild(K, countedBuild);
  const TableEntry &B = TableRegistry::instance().getOrBuild(K, countedBuild);
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(CountedBuilds, 1);
  EXPECT_EQ(TableRegistry::instance().byKey(IsaMips, "idempotence-probe"), &A);
}

TEST(TableRegistry, ByHashResolvesEveryEntry) {
  (void)defaultTableEntry();
  (void)mips::mipsTableEntry();
  std::vector<const TableEntry *> All = TableRegistry::instance().entries();
  ASSERT_GE(All.size(), 2u);
  std::set<std::string> Hashes;
  for (const TableEntry *E : All) {
    EXPECT_EQ(TableRegistry::instance().byHash(E->HashHex), E);
    Hashes.insert(E->HashHex);
  }
  // Content addresses are unique across the registry.
  EXPECT_EQ(Hashes.size(), All.size());
  EXPECT_EQ(TableRegistry::instance().byHash(std::string(64, '0')), nullptr);
}

TEST(TableRegistry, AdoptIsIdempotentOnEqualContent) {
  const TableEntry &Live = defaultTableEntry();
  // Re-adopting tables with the live entry's exact content is a no-op
  // returning the existing entry — a --tables-from of the blob the
  // process already runs must not fail.
  const TableEntry &Again = TableRegistry::instance().adopt(
      TableKey{IsaX86, PolicySetNacl, re::TableFormatVersion},
      buildPolicyTables());
  EXPECT_EQ(&Again, &Live);
  EXPECT_EQ(&policyTables(), Live.Tables);
}

TEST(TableRegistry, AdoptConflictThrowsNamingBothHashes) {
  const TableEntry &Live = defaultTableEntry();
  // The unminimized tables serialize to a different canonical blob, so
  // adopting them after first use is the exact bug the old singleton
  // hid (it returned false and kept verifying with the built tables).
  PolicyTables Raw = buildPolicyTablesRaw();
  std::string RawHash = policyTableHashHex(Raw);
  ASSERT_NE(RawHash, Live.HashHex);
  try {
    TableRegistry::instance().adopt(
        TableKey{IsaX86, PolicySetNacl, re::TableFormatVersion},
        std::move(Raw));
    FAIL() << "conflicting adoption did not throw";
  } catch (const std::runtime_error &E) {
    std::string What = E.what();
    EXPECT_NE(What.find(Live.HashHex), std::string::npos) << What;
    EXPECT_NE(What.find(RawHash), std::string::npos) << What;
  }
  // The live entry is untouched by the failed adoption.
  EXPECT_EQ(&defaultTableEntry(), &Live);
  EXPECT_EQ(TableRegistry::instance().byKey(IsaX86, PolicySetNacl), &Live);
}

TEST(TableRegistry, AdoptUnderFreshKeyInsertsFullEntry) {
  const TableEntry &E = TableRegistry::instance().adopt(
      TableKey{IsaX86, "raw-probe", re::TableFormatVersion},
      buildPolicyTablesRaw());
  EXPECT_NE(E.Tables, nullptr);
  EXPECT_NE(E.Fused, nullptr); // fused at registration, not on demand
  EXPECT_EQ(E.HashHex, re::blobHashHex(E.Blob));
  // The blob is tagged with the adopted identity.
  re::TableBundle B = re::deserializeTables(E.Blob, IsaX86, "raw-probe");
  EXPECT_EQ(B.Isa, IsaX86);
  EXPECT_EQ(B.PolicySet, "raw-probe");
  EXPECT_EQ(TableRegistry::instance().byKey(IsaX86, "raw-probe"), &E);
}

// The race-certification gate (run under ROCKSALT_SANITIZE=thread as
// registry_concurrent_under_tsan): many threads hammer first-time
// registration, keyed/hash lookup, the legacy accessors, and
// idempotent adoption at once. Every thread must observe the same
// immortal entry pointers, and TSan must see no races on the way.
TEST(TableRegistry, ConcurrentFirstUseAndLookupIsRaceFree) {
  constexpr int Threads = 8, Iters = 25;
  std::atomic<const TableEntry *> X86Seen{nullptr}, MipsSeen{nullptr};
  std::atomic<int> Failures{0};

  auto Work = [&](int Tid) {
    for (int I = 0; I < Iters; ++I) {
      const TableEntry &X = defaultTableEntry();
      const TableEntry &M = mips::mipsTableEntry();

      const TableEntry *PrevX = X86Seen.exchange(&X);
      const TableEntry *PrevM = MipsSeen.exchange(&M);
      if ((PrevX && PrevX != &X) || (PrevM && PrevM != &M))
        ++Failures;

      if (&policyTables() != X.Tables || &fusedPolicyTables() != X.Fused)
        ++Failures;
      if (TableRegistry::instance().byHash(M.HashHex) != &M ||
          TableRegistry::instance().byKey(IsaX86, PolicySetNacl) != &X)
        ++Failures;
      if (TableRegistry::instance().entries().size() < 2)
        ++Failures;

      // Odd threads also exercise the idempotent-adopt path while the
      // others read — the lock must serialize hash derivation against
      // lookups without ever returning a second entry for the key.
      if ((Tid & 1) && I % 8 == 0) {
        const TableEntry &A = TableRegistry::instance().adopt(
            TableKey{IsaX86, PolicySetNacl, re::TableFormatVersion},
            buildPolicyTables());
        if (&A != &X)
          ++Failures;
      }
    }
  };

  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back(Work, T);
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

} // namespace
