//===- tests/fuzz_differential_test.cpp -----------------------*- C++ -*-===//
//
// Units for the differential fuzz harness: the cross-verifier oracle
// (all four verdict paths must agree on compliant workloads, attack
// images, and the 0x66-prefixed direct branches NaCl's policy rejects),
// the grammar-directed mutator, and the delta-debugging minimizer.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Oracle.h"
#include "fuzz/StructuredMutator.h"
#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

using namespace rocksalt;
using namespace rocksalt::fuzz;

namespace {

/// One shared oracle for the whole suite: its pools and DFA tables are
/// the expensive part, and reuse is exactly how the fuzz driver runs it.
DifferentialOracle &oracle() {
  static DifferentialOracle O;
  return O;
}

std::vector<uint8_t> workload(uint64_t Seed, uint32_t Bytes = 256) {
  nacl::WorkloadOptions WO;
  WO.TargetBytes = Bytes;
  WO.Seed = Seed;
  return nacl::generateWorkload(WO);
}

/// Pads with NOPs to a whole number of bundles.
std::vector<uint8_t> padded(std::vector<uint8_t> Code) {
  while (Code.size() % core::BundleSize)
    Code.push_back(0x90);
  return Code;
}

} // namespace

//===----------------------------------------------------------------------===//
// DifferentialOracle
//===----------------------------------------------------------------------===//

TEST(Oracle, AllPathsAcceptCompliantWorkloads) {
  for (uint64_t Seed : {7u, 8u, 9u}) {
    OracleReport Rep = oracle().run(workload(Seed));
    EXPECT_TRUE(Rep.Reference.Ok) << "seed " << Seed;
    EXPECT_TRUE(Rep.agree()) << "seed " << Seed << ": "
                             << Rep.Disagreements[0].Path << " — "
                             << Rep.Disagreements[0].Detail;
  }
}

TEST(Oracle, AllPathsAgreeOnTargetedAttacks) {
  // A random attack placement is not always a violation (FF E0 written
  // right after an existing AND forms a *legal* pair), so the invariant
  // is agreement on every image plus rejection of most of the sweep.
  Rng R(99);
  std::vector<uint8_t> Base = workload(11);
  unsigned Rejected = 0, Total = 0;
  for (uint64_t Round = 0; Round < 8; ++Round) {
    for (nacl::Attack A :
         {nacl::Attack::BareIndirectJump, nacl::Attack::InsertRet,
          nacl::Attack::InsertInt, nacl::Attack::StripMask,
          nacl::Attack::PrefixedBranch}) {
      auto Img = nacl::applyAttack(Base, A, R);
      ASSERT_TRUE(Img.has_value());
      OracleReport Rep = oracle().run(*Img);
      EXPECT_TRUE(Rep.agree()) << Rep.Disagreements[0].Path << " — "
                               << Rep.Disagreements[0].Detail;
      ++Total;
      Rejected += !Rep.Reference.Ok;
    }
  }
  EXPECT_GE(Rejected, Total / 2);
}

TEST(Oracle, SurvivesStructuredMutationStorm) {
  Rng R(2026);
  std::vector<uint8_t> Img = workload(21, 128);
  for (int I = 0; I < 200; ++I) {
    Img = mutateStructured(Img, R);
    OracleReport Rep = oracle().run(Img);
    ASSERT_TRUE(Rep.agree()) << "iter " << I << ": "
                             << Rep.Disagreements[0].Path << " — "
                             << Rep.Disagreements[0].Detail;
  }
}

TEST(Oracle, CountsRunsIntoMetrics) {
  svc::Metrics M;
  OracleOptions O;
  O.M = &M;
  O.RunParallel = false; // keep this one cheap: no pools spun up
  DifferentialOracle Local(O);
  Local.run(workload(31, 64));
  Local.run(workload(32, 64));
  EXPECT_EQ(M.OracleRuns.get(), 2u);
  EXPECT_EQ(M.OracleDisagreements.get(), 0u);
}

// Satellite: NaCl's policy forbids operand-size-prefixed direct
// branches (a 0x66 jump has a 16-bit displacement, truncating EIP in a
// way the sandbox proof does not cover). The baseline decoder has an
// explicit carve-out rejecting them; all four paths must agree — on the
// verdict AND on where the parse chain died.
TEST(Oracle, PrefixedDirectBranchesRejectedByAllPaths) {
  struct Case {
    const char *Name;
    std::vector<uint8_t> Prefix;
  } Cases[] = {
      {"66 E9 (jmp rel16)", {0x66, 0xE9, 0x00, 0x00}},
      {"66 EB (jmp rel8)", {0x66, 0xEB, 0x00}},
      {"66 0F 84 (je rel16)", {0x66, 0x0F, 0x84, 0x00, 0x00}},
      {"66 0F 8D (jge rel16)", {0x66, 0x0F, 0x8D, 0x00, 0x00}},
      {"66 E8 (call rel16)", {0x66, 0xE8, 0x00, 0x00}},
  };
  for (const auto &C : Cases) {
    std::vector<uint8_t> Img = padded(C.Prefix);
    OracleReport Rep = oracle().run(Img);
    EXPECT_FALSE(Rep.Reference.Ok) << C.Name;
    EXPECT_EQ(Rep.Reference.Reason, core::RejectReason::NoParse) << C.Name;
    EXPECT_TRUE(Rep.agree()) << C.Name << ": " << Rep.Disagreements[0].Path
                             << " — " << Rep.Disagreements[0].Detail;
    // And mid-image, where the prefix also desynchronizes the chain.
    std::vector<uint8_t> Mid(core::BundleSize, 0x90);
    for (uint8_t B : C.Prefix)
      Mid.push_back(B);
    Mid = padded(std::move(Mid));
    Rep = oracle().run(Mid);
    EXPECT_FALSE(Rep.Reference.Ok) << C.Name << " mid-image";
    EXPECT_TRUE(Rep.agree()) << C.Name << " mid-image";
  }
}

//===----------------------------------------------------------------------===//
// StructuredMutator
//===----------------------------------------------------------------------===//

TEST(StructuredMutator, ChainPositionsMatchTheFigure5Walk) {
  // nop; mov eax, imm32; nacljmp eax — starts at 0, 1, 6; the pair is
  // one chain step.
  std::vector<uint8_t> Img = padded({0x90, 0xB8, 1, 2, 3, 4, //
                                     0x83, 0xE0, 0xE0, 0xFF, 0xE0});
  std::vector<uint32_t> P = chainPositions(Img);
  ASSERT_GE(P.size(), 4u);
  EXPECT_EQ(P[0], 0u);
  EXPECT_EQ(P[1], 1u);
  EXPECT_EQ(P[2], 6u);
  EXPECT_EQ(P[3], 11u);
}

TEST(StructuredMutator, DeterministicPerRngSeed) {
  std::vector<uint8_t> Base = workload(41, 128);
  for (uint64_t Seed = 1; Seed < 20; ++Seed) {
    Rng A(Seed), B(Seed);
    EXPECT_EQ(mutateStructured(Base, A), mutateStructured(Base, B));
  }
}

TEST(StructuredMutator, MutationsPreserveImageSize) {
  std::vector<uint8_t> Base = workload(42, 160);
  Rng R(7);
  std::vector<uint8_t> Img = Base;
  for (int I = 0; I < 100; ++I) {
    Img = mutateStructured(Img, R);
    EXPECT_EQ(Img.size(), Base.size());
  }
}

TEST(StructuredMutator, PrefixInjectChangesTheImage) {
  std::vector<uint8_t> Base(2 * core::BundleSize, 0x90);
  Rng R(5);
  auto Out = applyGrammarMutation(Base, GrammarMutation::PrefixInject, R);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(Out->size(), Base.size());
  EXPECT_NE(*Out, Base);
}

TEST(StructuredMutator, MaskedPairCorruptNeedsAPair) {
  std::vector<uint8_t> NoPair(core::BundleSize, 0x90);
  Rng R(6);
  EXPECT_FALSE(
      applyGrammarMutation(NoPair, GrammarMutation::MaskedPairCorrupt, R)
          .has_value());

  std::vector<uint8_t> Pair =
      padded({0x83, 0xE3, 0xE0, 0xFF, 0xE3}); // nacljmp ebx
  bool Changed = false;
  for (uint64_t Seed = 1; Seed <= 10 && !Changed; ++Seed) {
    Rng R2(Seed);
    auto Out =
        applyGrammarMutation(Pair, GrammarMutation::MaskedPairCorrupt, R2);
    ASSERT_TRUE(Out.has_value());
    Changed = *Out != Pair;
  }
  EXPECT_TRUE(Changed);
}

TEST(StructuredMutator, SeamSpliceStraddlesABundleBoundary) {
  std::vector<uint8_t> Base(4 * core::BundleSize, 0x90);
  unsigned Straddles = 0;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    Rng R(Seed);
    auto Out = applyGrammarMutation(Base, GrammarMutation::SeamSplice, R);
    ASSERT_TRUE(Out.has_value());
    // The spliced instruction's head (non-NOP bytes) must sit in the
    // last 5 bytes before some bundle boundary, i.e. it continues past
    // the boundary.
    bool Found = false;
    for (uint32_t Seam = core::BundleSize; Seam < Out->size() && !Found;
         Seam += core::BundleSize)
      for (uint32_t B = Seam - 5; B < Seam && !Found; ++B)
        Found = (*Out)[B] != 0x90;
    if (Found)
      ++Straddles;
  }
  EXPECT_GE(Straddles, 25u);
}

//===----------------------------------------------------------------------===//
// Minimizer
//===----------------------------------------------------------------------===//

TEST(Minimizer, ShrinksToTheInterestingByte) {
  std::vector<uint8_t> Seed(256, 0x90);
  Seed[137] = 0xC3;
  auto Pred = [](const std::vector<uint8_t> &C) {
    return std::find(C.begin(), C.end(), 0xC3) != C.end();
  };
  MinimizeResult R = minimizeImage(Seed, Pred);
  ASSERT_EQ(R.Image.size(), 1u);
  EXPECT_EQ(R.Image[0], 0xC3);
  EXPECT_EQ(R.BytesRemoved, 255u);
  EXPECT_GT(R.Evals, 0u);
}

TEST(Minimizer, CanonicalizesNonEssentialBytes) {
  // Predicate pins only the size and the first byte; everything else
  // must come out as filler.
  std::vector<uint8_t> Seed = {0xAA, 0x11, 0x22, 0x33};
  auto Pred = [](const std::vector<uint8_t> &C) {
    return C.size() == 4 && C[0] == 0xAA;
  };
  MinimizeResult R = minimizeImage(Seed, Pred);
  ASSERT_EQ(R.Image.size(), 4u);
  EXPECT_EQ(R.Image[0], 0xAA);
  EXPECT_EQ(R.Image[1], 0x90);
  EXPECT_EQ(R.Image[2], 0x90);
  EXPECT_EQ(R.Image[3], 0x90);
}

TEST(Minimizer, CountsShrinkStepsAndHonorsTheBudget) {
  svc::Metrics M;
  MinimizeOptions O;
  O.M = &M;
  O.MaxEvals = 10;
  std::vector<uint8_t> Seed(512, 0x90);
  MinimizeResult R = minimizeImage(
      Seed, [](const std::vector<uint8_t> &) { return true; }, O);
  EXPECT_LE(R.Evals, 10u);
  EXPECT_EQ(M.ShrinkSteps.get(), R.Evals);
}

TEST(Minimizer, OracleRejectPredicateShrinksAnAttackImage) {
  // End-to-end: minimize "RockSalt rejects with the same reason" — the
  // exact predicate validator_cli --explain uses.
  std::vector<uint8_t> Img = workload(55, 256);
  // Plant a ret (never policy-legal) at an instruction start mid-image.
  std::vector<uint32_t> Starts = chainPositions(Img);
  ASSERT_GT(Starts.size(), 10u);
  Img[Starts[Starts.size() / 2]] = 0xC3;
  core::RockSalt RS;
  core::CheckResult Full = RS.check(Img);
  ASSERT_FALSE(Full.Ok);
  auto Pred = [&](const std::vector<uint8_t> &C) {
    core::CheckResult R = RS.check(C);
    return !R.Ok && R.Reason == Full.Reason;
  };
  MinimizeResult R = minimizeImage(Img, Pred);
  EXPECT_LT(R.Image.size(), 8u); // a lone ret (plus filler at most)
  EXPECT_TRUE(Pred(R.Image));
}

//===----------------------------------------------------------------------===//
// Corpus
//===----------------------------------------------------------------------===//

TEST(Corpus, HashIsStableAndContentSensitive) {
  std::vector<uint8_t> A = {1, 2, 3}, B = {1, 2, 4};
  EXPECT_EQ(imageHash(A), imageHash(A));
  EXPECT_NE(imageHash(A), imageHash(B));
  EXPECT_EQ(imageHash({}), 0xcbf29ce484222325ULL); // FNV-1a offset basis
}

TEST(Corpus, WriteThenLoadRoundTrips) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / "rocksalt_corpus_test")
          .string();
  std::filesystem::remove_all(Dir);
  std::vector<uint8_t> Img = workload(61, 96);
  std::string Path = writeReproducer(Dir, "disagree", Img);
  ASSERT_FALSE(Path.empty());
  EXPECT_NE(Path.find("disagree-"), std::string::npos);
  auto Entries = loadCorpus(Dir);
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0].Path, Path);
  EXPECT_EQ(Entries[0].Code, Img);
  // Same bytes, same name: idempotent.
  EXPECT_EQ(writeReproducer(Dir, "disagree", Img), Path);
  EXPECT_EQ(loadCorpus(Dir).size(), 1u);
  std::filesystem::remove_all(Dir);
}

TEST(Corpus, MissingDirectoryIsAnEmptyCorpus) {
  EXPECT_TRUE(loadCorpus("/nonexistent/rocksalt/corpus").empty());
}
