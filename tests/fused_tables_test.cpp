//===- tests/fused_tables_test.cpp ----------------------------*- C++ -*-===//
//
// The fused cache-resident policy DFA (regex/FusedTables.h +
// core::FusedPolicy) against the legacy three-table engine it replaces
// in production. The tentpole claim is bit-identity: every fused
// decision — per-prefix matches, chain steps, whole-image checks, and
// the shard scan/merge — must equal the legacy engine's, on accepted
// and rejected images alike. The tests here pin the fused layout, prove
// the safe-byte and skip-chain derivations against the source tables,
// and run the lockstep on structured corpora including the boundary
// shapes run skipping is most likely to get wrong (shard seams, image
// tails, truncated instructions).
//
//===----------------------------------------------------------------------===//

#include "core/Shard.h"
#include "core/Verifier.h"
#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::core;

namespace {

const PolicyTables &tables() { return policyTables(); }
const FusedPolicy &fused() { return fusedPolicyTables(); }

/// The sub-DFAs in fusion order, paired with their source tables.
struct SubDfa {
  unsigned Sub;
  const re::Dfa *Src;
};
std::vector<SubDfa> subDfas() {
  const PolicyTables &T = tables();
  return {{FusedMaskedJump, &T.MaskedJump},
          {FusedNoControlFlow, &T.NoControlFlow},
          {FusedDirectJump, &T.DirectJump}};
}

/// Full fused-vs-legacy comparison of instrumented results.
void expectSameCheck(const CheckResult &Fus, const CheckResult &Leg,
                     const char *What) {
  EXPECT_EQ(Fus.Ok, Leg.Ok) << What;
  EXPECT_EQ(int(Fus.Reason), int(Leg.Reason)) << What;
  EXPECT_EQ(Fus.Valid, Leg.Valid) << What;
  EXPECT_EQ(Fus.Target, Leg.Target) << What;
  EXPECT_EQ(Fus.PairJmp, Leg.PairJmp) << What;
}

/// A deterministic mixed corpus: accepted workloads plus attack-mutated
/// variants (most of which the checker rejects).
std::vector<std::vector<uint8_t>> corpus(uint32_t Bytes, unsigned Workloads,
                                         unsigned MutantsPer) {
  std::vector<std::vector<uint8_t>> C;
  for (unsigned S = 1; S <= Workloads; ++S) {
    nacl::WorkloadOptions WO;
    WO.TargetBytes = Bytes;
    WO.Seed = S;
    std::vector<uint8_t> W = nacl::generateWorkload(WO);
    C.push_back(W);
    Rng R(S * 0x9E3779B9ull + 7);
    for (unsigned M = 0; M < MutantsPer; ++M)
      C.push_back(nacl::mutateRandom(W, R));
  }
  return C;
}

//===----------------------------------------------------------------------===//
// Fused layout: states, offsets, flags mirror the source tables.
//===----------------------------------------------------------------------===//

TEST(FusedTables, LayoutMirrorsSourceTables) {
  const FusedPolicy &P = fused();
  EXPECT_EQ(P.F.NumStates,
            MaskedJumpStates + NoControlFlowStates + DirectJumpStates);
  ASSERT_EQ(P.F.Offsets.size(), 3u);
  ASSERT_EQ(P.F.Starts.size(), 3u);
  ASSERT_EQ(P.F.Ids.size(), P.F.NumStates);
  EXPECT_EQ(P.F.Offsets[FusedMaskedJump], 0u);
  EXPECT_EQ(P.F.Offsets[FusedNoControlFlow], MaskedJumpStates);
  EXPECT_EQ(P.F.Offsets[FusedDirectJump],
            MaskedJumpStates + NoControlFlowStates);
  EXPECT_EQ(P.F.Trans.size(), size_t(P.F.NumStates) * 256);
  EXPECT_EQ(P.F.Flags.size(), P.F.NumStates);
  EXPECT_LE(P.F.AcceptBase, P.F.RejectBase);
  EXPECT_LE(P.F.RejectBase, P.F.NumStates);

  // The id map is a permutation of the fused id space.
  std::vector<uint32_t> Seen(P.F.NumStates, 0);
  for (uint8_t Id : P.F.Ids) {
    ASSERT_LT(Id, P.F.NumStates);
    ++Seen[Id];
  }
  for (uint32_t S = 0; S < P.F.NumStates; ++S)
    ASSERT_EQ(Seen[S], 1u) << "fused id " << S;

  for (const SubDfa &D : subDfas()) {
    EXPECT_EQ(P.F.Starts[D.Sub], P.F.id(D.Sub, D.Src->Start));
    for (uint32_t S = 0; S < D.Src->numStates(); ++S) {
      uint8_t Fid = P.F.id(D.Sub, S);
      // Behavioral classes under the id map: reject wins ties (matching
      // dfaMatch's reject-first check), and both the class-range
      // accessors and the raw flag mirror must agree with the source.
      EXPECT_EQ(P.F.rejects(Fid), bool(D.Src->Rejects[S]));
      EXPECT_EQ(P.F.accepts(Fid),
                bool(D.Src->Accepts[S]) && !D.Src->Rejects[S]);
      EXPECT_EQ(P.F.Flags[Fid],
                uint8_t((D.Src->Accepts[S] ? re::FusedAccept : 0) |
                        (D.Src->Rejects[S] ? re::FusedReject : 0)));
      if (P.F.accepts(Fid)) {
        // Accept states carry restart rows (a copy of the sub-DFA's
        // start row) — their source rows are unreachable by any
        // matcher, which returns on accept before stepping again.
        for (uint32_t B = 0; B < 256; ++B)
          ASSERT_EQ(P.F.step(Fid, uint8_t(B)),
                    P.F.step(P.F.Starts[D.Sub], uint8_t(B)));
      } else {
        for (uint32_t B = 0; B < 256; ++B)
          ASSERT_EQ(P.F.step(Fid, uint8_t(B)),
                    P.F.id(D.Sub, D.Src->Table[S][B]));
      }
    }
  }
}

TEST(FusedTables, FuseDfasValidatesInputs) {
  const PolicyTables &T = tables();
  EXPECT_THROW(re::fuseDfas({nullptr}), std::invalid_argument);
  EXPECT_THROW(re::fuseDfas({}), std::invalid_argument);
  // 6 x 42 + 25 = 277 states: overflows the 8-bit fused id space.
  EXPECT_THROW(re::fuseDfas({&T.NoControlFlow, &T.NoControlFlow,
                             &T.NoControlFlow, &T.NoControlFlow,
                             &T.NoControlFlow, &T.NoControlFlow,
                             &T.MaskedJump}),
               std::length_error);
}

//===----------------------------------------------------------------------===//
// Per-prefix lockstep: fusedMatch == dfaMatch from every position.
//===----------------------------------------------------------------------===//

TEST(FusedTables, PerPrefixMatchLockstep) {
  const FusedPolicy &P = fused();
  for (const std::vector<uint8_t> &Img : corpus(192, 6, 3)) {
    uint32_t Size = uint32_t(Img.size());
    for (uint32_t Pos = 0; Pos <= Size; ++Pos) {
      for (const SubDfa &D : subDfas()) {
        uint32_t LegPos = Pos, FusPos = Pos;
        bool Leg = dfaMatch(*D.Src, Img.data(), &LegPos, Size);
        bool Fus = re::fusedMatch(P.F, D.Sub, Img.data(), &FusPos, Size);
        ASSERT_EQ(Fus, Leg) << "sub " << D.Sub << " at " << Pos;
        ASSERT_EQ(FusPos, LegPos) << "sub " << D.Sub << " at " << Pos;
      }
      // And the full chain step.
      uint32_t LegPos = Pos, FusPos = Pos, LegTgt = 0, FusTgt = 0;
      StepKind Leg = verifyStep(tables(), Img.data(), &LegPos, Size, &LegTgt);
      StepKind Fus = verifyStep(P, Img.data(), &FusPos, Size, &FusTgt);
      ASSERT_EQ(int(Fus), int(Leg)) << "step at " << Pos;
      ASSERT_EQ(FusPos, LegPos) << "step at " << Pos;
      if (Leg == StepKind::DirectJump)
        ASSERT_EQ(FusTgt, LegTgt) << "target at " << Pos;
    }
  }
}

TEST(FusedTables, SingleByteRejectMatrixAgrees) {
  // All 256 one-byte images: the fused first transition must agree with
  // the source table's on accept/reject/continue, for every policy.
  const FusedPolicy &P = fused();
  for (uint32_t B = 0; B < 256; ++B) {
    uint8_t Img[1] = {uint8_t(B)};
    for (const SubDfa &D : subDfas()) {
      uint32_t LegPos = 0, FusPos = 0;
      ASSERT_EQ(re::fusedMatch(P.F, D.Sub, Img, &FusPos, 1),
                dfaMatch(*D.Src, Img, &LegPos, 1))
          << "byte " << B << " sub " << D.Sub;
      ASSERT_EQ(FusPos, LegPos) << "byte " << B << " sub " << D.Sub;
    }
  }
}

//===----------------------------------------------------------------------===//
// The safe-byte class: exactness against the legacy chain.
//===----------------------------------------------------------------------===//

TEST(FusedTables, SafeByteImpliesOneByteNcfStepForAnySuffix) {
  const PolicyTables &T = tables();
  const FusedPolicy &P = fused();
  // Suffixes deliberately include jump starts, mask prefixes, and
  // garbage: safety must not depend on what follows.
  const std::vector<std::vector<uint8_t>> Suffixes = {
      {}, {0x00}, {0xE9, 1, 0, 0, 0}, {0x83, 0xE0, 0xE0, 0xFF, 0xE0},
      {0xFF, 0xFF, 0xFF, 0xFF}, {0x0F, 0x0B}};
  uint32_t SafeSeen = 0;
  for (uint32_t B = 0; B < 256; ++B) {
    if (!P.SafeByte[B])
      continue;
    ++SafeSeen;
    for (const std::vector<uint8_t> &Suf : Suffixes) {
      std::vector<uint8_t> Img;
      Img.push_back(uint8_t(B));
      Img.insert(Img.end(), Suf.begin(), Suf.end());
      uint32_t Pos = 0, Tgt = 0;
      StepKind K =
          verifyStep(T, Img.data(), &Pos, uint32_t(Img.size()), &Tgt);
      ASSERT_EQ(int(K), int(StepKind::NoControlFlow)) << "byte " << B;
      ASSERT_EQ(Pos, 1u) << "byte " << B;
    }
  }
  EXPECT_EQ(SafeSeen, P.SafeCount);
}

TEST(FusedTables, ChainClassCountsAreSane) {
  const FusedPolicy &P = fused();
  // The single-byte NoControlFlow instructions (push/pop/inc/dec, nop,
  // ...) put well over RunSkipMinSafeBytes byte values in the safe
  // class, so run skipping must be engaged on the shipped tables.
  EXPECT_GE(P.SafeCount, RunSkipMinSafeBytes);
  EXPECT_TRUE(P.RunSkip);
  EXPECT_LT(P.SafeCount, 256u);
  // Only the masked-jump mask prefixes keep the MaskedJump DFA alive on
  // the first byte — a handful of byte values, never most of them.
  EXPECT_GE(P.MjAliveCount, 1u);
  EXPECT_LT(P.MjAliveCount, 64u);
  // The classes are derived from the fused start rows — spot-check the
  // definition directly.
  const re::FusedTables &F = P.F;
  for (uint32_t B = 0; B < 256; ++B) {
    bool MjDead = F.rejects(F.step(F.Starts[FusedMaskedJump], uint8_t(B)));
    uint8_t N = F.step(F.Starts[FusedNoControlFlow], uint8_t(B));
    bool NcfOne = !F.rejects(N) && F.accepts(N);
    ASSERT_EQ(bool(P.SafeByte[B]), MjDead && NcfOne) << "byte " << B;
    ASSERT_EQ(bool(P.MjAliveByte[B]), !MjDead) << "byte " << B;
    // Exceptional iff MaskedJump or DirectJump could still win the
    // Figure-5 step (safe bytes excepted: the one-byte NoControlFlow
    // accept outranks DirectJump).
    bool DjDead = F.rejects(F.step(F.Starts[FusedDirectJump], uint8_t(B)));
    ASSERT_EQ(P.ExcByte[B] != 0, !MjDead || (!DjDead && !P.SafeByte[B]))
        << "byte " << B;
    if (P.ExcByte[B] == 2) {
      // Second-byte-resolvable: DirectJump-only, landing in the shared
      // Exc2State, and at least one second byte kills the jump there.
      ASSERT_FALSE(P.MjAliveByte[B]) << "byte " << B;
      uint8_t D1 = F.step(F.Starts[FusedDirectJump], uint8_t(B));
      ASSERT_EQ(uint32_t(D1), P.Exc2State) << "byte " << B;
      ASSERT_TRUE(!F.accepts(D1) && !F.rejects(D1)) << "byte " << B;
    }
  }
  if (P.Exc2Count) {
    ASSERT_LT(P.Exc2State, uint32_t(re::MaxFusedStates));
    for (uint32_t B1 = 0; B1 < 256; ++B1)
      ASSERT_EQ(bool(P.Exc2Dead[B1]),
                F.rejects(F.step(uint8_t(P.Exc2State), uint8_t(B1))))
          << "second byte " << B1;
  }
  // The shipped tables' two-byte-opcode escape (0F followed by anything
  // but a jump) must be live, or the sweep bails on a quarter of all
  // instruction starts.
  EXPECT_GE(P.Exc2Count, 1u);
  EXPECT_EQ(P.ExcByte[0x0F], 2u);
}

//===----------------------------------------------------------------------===//
// Skip chains: exact collapses of row-constant payload states.
//===----------------------------------------------------------------------===//

TEST(FusedTables, SkipChainsAreExact) {
  const re::FusedTables &F = fused().F;
  uint32_t Multi = 0;
  for (uint32_t S = 0; S < F.NumStates; ++S) {
    uint32_t K = F.SkipLen[S];
    if (!K)
      continue;
    if (K >= 2)
      ++Multi;
    // Walk the chain byte-independently: every intermediate must be
    // row-constant and pure-continue, and the landing state must match
    // SkipNext whatever bytes are consumed.
    for (uint8_t Probe : {uint8_t(0x00), uint8_t(0x5A), uint8_t(0xFF)}) {
      uint32_t Cur = S;
      for (uint32_t I = 0; I < K; ++I) {
        if (I) {
          // Intermediates (states after the first hop, before landing)
          // are pure-continue.
          ASSERT_EQ(F.Flags[Cur], 0u) << "state " << S << " hop " << I;
        }
        uint8_t Next = F.step(uint8_t(Cur), Probe);
        for (uint32_t B = 0; B < 256; ++B)
          ASSERT_EQ(F.step(uint8_t(Cur), uint8_t(B)), Next)
              << "state " << S << " hop " << I;
        Cur = Next;
      }
      ASSERT_EQ(Cur, F.SkipNext[S]) << "state " << S;
    }
  }
  // imm32/disp32 payloads compile to runs of row-constant states: the
  // shipped tables must contain at least one multi-byte chain or the
  // optimization is dead code.
  EXPECT_GE(Multi, 1u);
}

//===----------------------------------------------------------------------===//
// Run-skip boundary shapes.
//===----------------------------------------------------------------------===//

TEST(FusedTables, SafeRunEndRespectsLimitAndClass) {
  const FusedPolicy &P = fused();
  uint8_t Safe = 0, Unsafe = 0;
  for (uint32_t B = 1; B < 256 && !Safe; ++B)
    if (P.SafeByte[B])
      Safe = uint8_t(B);
  for (uint32_t B = 1; B < 256 && !Unsafe; ++B)
    if (!P.SafeByte[B])
      Unsafe = uint8_t(B);
  ASSERT_NE(Safe, 0u);
  ASSERT_NE(Unsafe, 0u);

  for (uint32_t Len = 0; Len <= 40; ++Len) {
    // A safe sled of Len bytes followed by an unsafe byte.
    std::vector<uint8_t> Img(Len + 1, Safe);
    Img[Len] = Unsafe;
    EXPECT_EQ(safeRunEnd(P, Img.data(), 0, uint32_t(Img.size())), Len);
    // Clamped below the unsafe byte: stops exactly at the limit.
    for (uint32_t Lim : {Len / 2, Len}) {
      EXPECT_EQ(safeRunEnd(P, Img.data(), 0, Lim), Lim);
    }
    // Starting mid-run.
    if (Len >= 2)
      EXPECT_EQ(safeRunEnd(P, Img.data(), Len / 2, uint32_t(Img.size())),
                Len);
  }
}

TEST(FusedTables, BoundaryImagesLockstep) {
  const PolicyTables &T = tables();
  RockSalt Fus; // default ctor: the fused singleton
  const FusedPolicy &P = fused();
  uint8_t Safe = 0;
  for (uint32_t B = 1; B < 256 && !Safe; ++B)
    if (P.SafeByte[B])
      Safe = uint8_t(B);
  ASSERT_NE(Safe, 0u);

  // Safe sleds of every length 0..40 (crossing the 8-wide and 32-byte
  // bundle boundaries), alone and with jump/masked tails.
  const std::vector<std::vector<uint8_t>> Tails = {
      {},
      {0xEB, 0xFE},                   // jmp rel8 back into the sled
      {0x83, 0xE0, 0xE0, 0xFF, 0xE0}, // masked jump pair
      {0xE8, 0x00, 0x00},             // truncated call rel32 -> reject
      {0xCC},                         // int3: not policy-legal
  };
  for (uint32_t Len = 0; Len <= 40; ++Len) {
    for (const std::vector<uint8_t> &Tail : Tails) {
      std::vector<uint8_t> Img(Len, Safe);
      Img.insert(Img.end(), Tail.begin(), Tail.end());
      expectSameCheck(Fus.check(Img),
                      checkLegacy(T, Img.data(), uint32_t(Img.size())),
                      "sled+tail");
    }
  }

  // Tiny images 0..9 bytes of every repeated byte value: the wide-load
  // guards must never matter at these sizes.
  for (uint32_t Len = 0; Len <= 9; ++Len)
    for (uint32_t B = 0; B < 256; B += 17) {
      std::vector<uint8_t> Img(Len, uint8_t(B));
      expectSameCheck(Fus.check(Img),
                      checkLegacy(T, Img.data(), uint32_t(Img.size())),
                      "tiny");
    }
}

//===----------------------------------------------------------------------===//
// Whole-image and shard lockstep on mixed corpora.
//===----------------------------------------------------------------------===//

TEST(FusedTables, WholeImageLockstepOnMixedCorpus) {
  const PolicyTables &T = tables();
  RockSalt Fus;
  for (const std::vector<uint8_t> &Img : corpus(640, 8, 4)) {
    uint32_t Size = uint32_t(Img.size());
    CheckResult Leg = checkLegacy(T, Img.data(), Size);
    expectSameCheck(Fus.check(Img), Leg, "check");
    EXPECT_EQ(verifyImage(fused(), Img.data(), Size), Leg.Ok);
    EXPECT_EQ(verifyImage(T, Img.data(), Size), Leg.Ok);
  }
}

TEST(FusedTables, ShardScanMergeLockstepAcrossSeams) {
  const PolicyTables &T = tables();
  const FusedPolicy &P = fused();
  std::vector<ShardScan> Shards;
  for (const std::vector<uint8_t> &Img : corpus(512, 5, 3)) {
    uint32_t Size = uint32_t(Img.size());
    CheckResult Leg = checkLegacy(T, Img.data(), Size);
    for (uint32_t N : {1u, 2u, 3u, 5u, 8u}) {
      partitionShards(Size, N, Shards);
      for (ShardScan &S : Shards)
        scanShard(P, Img.data(), Size, S);
      expectSameCheck(mergeShardScans(P, Img.data(), Size, Shards), Leg,
                      "fused shard merge");
      // Fused and legacy scans mark identical positions per shard.
      std::vector<ShardScan> LegacyShards;
      partitionShards(Size, N, LegacyShards);
      for (size_t I = 0; I < Shards.size(); ++I) {
        scanShard(T, Img.data(), Size, LegacyShards[I]);
        ASSERT_EQ(Shards[I].ValidPos, LegacyShards[I].ValidPos);
        ASSERT_EQ(Shards[I].TargetPos, LegacyShards[I].TargetPos);
        ASSERT_EQ(Shards[I].PairJmpPos, LegacyShards[I].PairJmpPos);
        ASSERT_EQ(Shards[I].StopPos, LegacyShards[I].StopPos);
        ASSERT_EQ(Shards[I].Failed, LegacyShards[I].Failed);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// The process-wide fused singleton.
//===----------------------------------------------------------------------===//

TEST(FusedTables, SingletonIsStableAndMatchesFreshBuild) {
  const FusedPolicy &A = fusedPolicyTables();
  const FusedPolicy &B = fusedPolicyTables();
  EXPECT_EQ(&A, &B);
  FusedPolicy Fresh = buildFusedPolicy(policyTables());
  EXPECT_EQ(A.F.Trans, Fresh.F.Trans);
  EXPECT_EQ(A.F.Flags, Fresh.F.Flags);
  EXPECT_EQ(A.F.SkipLen, Fresh.F.SkipLen);
  EXPECT_EQ(A.F.SkipNext, Fresh.F.SkipNext);
  EXPECT_EQ(A.SafeCount, Fresh.SafeCount);
  EXPECT_EQ(A.MjAliveCount, Fresh.MjAliveCount);
}

} // namespace
