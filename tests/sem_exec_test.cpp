//===- tests/sem_exec_test.cpp --------------------------------*- C++ -*-===//
//
// Per-instruction semantic tests: assemble a short program, run it on the
// RTL pipeline (Cpu), and check registers, flags, memory, and status
// against hand-computed expectations from the Intel manual.
//
//===----------------------------------------------------------------------===//

#include "sem/Cpu.h"
#include "x86/Encoder.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::sem;
using namespace rocksalt::x86;
using rtl::Flag;
using rtl::Status;

namespace {

constexpr uint32_t CodeBase = 0x1000;
constexpr uint32_t DataBase = 0x100000;
constexpr uint32_t DataSize = 0x10000;

/// Builds a Cpu with a standard sandbox and the given instruction
/// sequence loaded at CS:0.
Cpu makeCpu(const std::vector<Instr> &Program) {
  std::vector<uint8_t> Code;
  for (const Instr &I : Program) {
    auto B = encode(I);
    EXPECT_TRUE(B.has_value());
    Code.insert(Code.end(), B->begin(), B->end());
  }
  Cpu C;
  C.configureSandbox(CodeBase, 0x1000, DataBase, DataSize, Code);
  return C;
}

Instr movRegImm(Reg R, uint32_t V) {
  Instr I;
  I.Op = Opcode::MOV;
  I.Op1 = Operand::reg(R);
  I.Op2 = Operand::imm(V);
  return I;
}

Instr binop(Opcode Op, Operand A, Operand B, bool W = true) {
  Instr I;
  I.Op = Op;
  I.W = W;
  I.Op1 = A;
  I.Op2 = B;
  return I;
}

bool flag(const Cpu &C, Flag F) {
  return C.M.Flags[static_cast<unsigned>(F)];
}

} // namespace

TEST(SemExec, MovImmediateToRegister) {
  Cpu C = makeCpu({movRegImm(Reg::EBX, 0xDEADBEEF)});
  EXPECT_EQ(C.step(), Status::Running);
  EXPECT_EQ(C.M.Regs[3], 0xDEADBEEFu);
  EXPECT_EQ(C.M.Pc, 5u);
}

TEST(SemExec, AddSetsCarryAndOverflow) {
  Cpu C = makeCpu({
      movRegImm(Reg::EAX, 0xFFFFFFFF),
      binop(Opcode::ADD, Operand::reg(Reg::EAX), Operand::imm(1)),
  });
  C.run(2);
  EXPECT_EQ(C.M.Regs[0], 0u);
  EXPECT_TRUE(flag(C, Flag::CF));
  EXPECT_TRUE(flag(C, Flag::ZF));
  EXPECT_FALSE(flag(C, Flag::OF)); // -1 + 1 does not overflow signed
  EXPECT_TRUE(flag(C, Flag::AF));  // carry out of bit 3
  EXPECT_TRUE(flag(C, Flag::PF));  // zero has even parity
}

TEST(SemExec, SignedOverflow) {
  Cpu C = makeCpu({
      movRegImm(Reg::EAX, 0x7FFFFFFF),
      binop(Opcode::ADD, Operand::reg(Reg::EAX), Operand::imm(1)),
  });
  C.run(2);
  EXPECT_EQ(C.M.Regs[0], 0x80000000u);
  EXPECT_TRUE(flag(C, Flag::OF));
  EXPECT_FALSE(flag(C, Flag::CF));
  EXPECT_TRUE(flag(C, Flag::SF));
}

TEST(SemExec, SubBorrow) {
  Cpu C = makeCpu({
      movRegImm(Reg::ECX, 3),
      binop(Opcode::SUB, Operand::reg(Reg::ECX), Operand::imm(5)),
  });
  C.run(2);
  EXPECT_EQ(C.M.Regs[1], 0xFFFFFFFEu);
  EXPECT_TRUE(flag(C, Flag::CF));
  EXPECT_TRUE(flag(C, Flag::SF));
  EXPECT_FALSE(flag(C, Flag::ZF));
}

TEST(SemExec, AdcChainsCarry) {
  Cpu C = makeCpu({
      movRegImm(Reg::EAX, 0xFFFFFFFF),
      binop(Opcode::ADD, Operand::reg(Reg::EAX), Operand::imm(1)), // CF=1
      movRegImm(Reg::EBX, 10),
      binop(Opcode::ADC, Operand::reg(Reg::EBX), Operand::imm(5)),
  });
  C.run(4);
  EXPECT_EQ(C.M.Regs[3], 16u); // 10 + 5 + carry
}

TEST(SemExec, SbbUsesBorrow) {
  Cpu C = makeCpu({
      movRegImm(Reg::EAX, 0),
      binop(Opcode::CMP, Operand::reg(Reg::EAX), Operand::imm(1)), // CF=1
      movRegImm(Reg::EBX, 10),
      binop(Opcode::SBB, Operand::reg(Reg::EBX), Operand::imm(3)),
  });
  C.run(4);
  EXPECT_EQ(C.M.Regs[3], 6u); // 10 - 3 - 1
}

TEST(SemExec, LogicOpsClearCarry) {
  Cpu C = makeCpu({
      movRegImm(Reg::EAX, 0xF0F0F0F0),
      binop(Opcode::AND, Operand::reg(Reg::EAX), Operand::imm(0x0F0F00FF)),
  });
  C.run(2);
  EXPECT_EQ(C.M.Regs[0], 0x000000F0u);
  EXPECT_FALSE(flag(C, Flag::CF));
  EXPECT_FALSE(flag(C, Flag::OF));
}

TEST(SemExec, XorSelfZeroes) {
  Cpu C = makeCpu({
      movRegImm(Reg::EDX, 1234),
      binop(Opcode::XOR, Operand::reg(Reg::EDX), Operand::reg(Reg::EDX)),
  });
  C.run(2);
  EXPECT_EQ(C.M.Regs[2], 0u);
  EXPECT_TRUE(flag(C, Flag::ZF));
}

TEST(SemExec, IncPreservesCarry) {
  Cpu C = makeCpu({
      movRegImm(Reg::EAX, 0xFFFFFFFF),
      binop(Opcode::ADD, Operand::reg(Reg::EAX), Operand::imm(1)), // CF=1
      [] {
        Instr I;
        I.Op = Opcode::INC;
        I.Op1 = Operand::reg(Reg::EBX);
        return I;
      }(),
  });
  C.run(3);
  EXPECT_EQ(C.M.Regs[3], 1u);
  EXPECT_TRUE(flag(C, Flag::CF)); // INC must not clobber CF
}

TEST(SemExec, ByteOperationsUseSubRegisters) {
  // mov bl, 0x7F ; add bl, 1 — only BL changes, flags per 8-bit op.
  Instr MovBl;
  MovBl.Op = Opcode::MOV;
  MovBl.W = false;
  MovBl.Op1 = Operand::reg(Reg::EBX);
  MovBl.Op2 = Operand::imm(0x7F);
  Cpu C = makeCpu({
      movRegImm(Reg::EBX, 0xAABBCC00),
      MovBl,
      binop(Opcode::ADD, Operand::reg(Reg::EBX), Operand::imm(1), false),
  });
  C.run(3);
  EXPECT_EQ(C.M.Regs[3], 0xAABBCC80u);
  EXPECT_TRUE(flag(C, Flag::OF)); // 0x7F + 1 overflows signed byte
  EXPECT_TRUE(flag(C, Flag::SF));
}

TEST(SemExec, HighByteRegisters) {
  // Encoding 7 with W=0 is BH: mov bh, 0x5A.
  Instr MovBh;
  MovBh.Op = Opcode::MOV;
  MovBh.W = false;
  MovBh.Op1 = Operand::reg(Reg::EDI); // encoding 7 = BH in byte mode
  MovBh.Op2 = Operand::imm(0x5A);
  Cpu C = makeCpu({movRegImm(Reg::EBX, 0x11223344), MovBh});
  C.run(2);
  EXPECT_EQ(C.M.Regs[3], 0x11225A44u);
  EXPECT_EQ(C.M.Regs[7], 0u); // EDI untouched
}

TEST(SemExec, MemoryStoreAndLoad) {
  Cpu C = makeCpu({
      movRegImm(Reg::EAX, 0xCAFEBABE),
      movRegImm(Reg::EBX, 0x100),
      binop(Opcode::MOV, Operand::mem(Addr::base(Reg::EBX, 4)),
            Operand::reg(Reg::EAX)),
      binop(Opcode::MOV, Operand::reg(Reg::ECX),
            Operand::mem(Addr::base(Reg::EBX, 4))),
  });
  C.run(4);
  EXPECT_EQ(C.M.Regs[1], 0xCAFEBABEu);
  EXPECT_EQ(C.M.Mem.load(DataBase + 0x104, 4), 0xCAFEBABEu);
}

TEST(SemExec, ScaledIndexAddressing) {
  Cpu C = makeCpu({
      movRegImm(Reg::EBX, 0x200),
      movRegImm(Reg::ESI, 3),
      movRegImm(Reg::EAX, 0x77),
      binop(Opcode::MOV,
            Operand::mem(Addr::baseIndex(Reg::EBX, Reg::ESI, Scale::S4, 8)),
            Operand::reg(Reg::EAX)),
  });
  C.run(4);
  EXPECT_EQ(C.M.Mem.load8(DataBase + 0x200 + 12 + 8), 0x77);
}

TEST(SemExec, OutOfSegmentStoreFaults) {
  Cpu C = makeCpu({
      movRegImm(Reg::EBX, DataSize + 0x100), // beyond the limit
      binop(Opcode::MOV, Operand::mem(Addr::base(Reg::EBX)),
            Operand::imm(1)),
  });
  C.run(2);
  EXPECT_EQ(C.M.St, Status::Fault);
}

TEST(SemExec, PushPopRoundTrip) {
  Instr Push;
  Push.Op = Opcode::PUSH;
  Push.Op1 = Operand::reg(Reg::EAX);
  Instr Pop;
  Pop.Op = Opcode::POP;
  Pop.Op1 = Operand::reg(Reg::EBX);
  Cpu C = makeCpu({movRegImm(Reg::EAX, 0x1234), Push, Pop});
  uint32_t Esp0 = C.M.Regs[4];
  C.run(3);
  EXPECT_EQ(C.M.Regs[3], 0x1234u);
  EXPECT_EQ(C.M.Regs[4], Esp0);
}

TEST(SemExec, MulProducesWideResult) {
  Instr Mul;
  Mul.Op = Opcode::MUL;
  Mul.Op1 = Operand::reg(Reg::EBX);
  Cpu C = makeCpu({
      movRegImm(Reg::EAX, 0x10000),
      movRegImm(Reg::EBX, 0x10000),
      Mul,
  });
  C.run(3);
  EXPECT_EQ(C.M.Regs[0], 0u);  // low word
  EXPECT_EQ(C.M.Regs[2], 1u);  // high word in EDX
  EXPECT_TRUE(flag(C, Flag::CF));
  EXPECT_TRUE(flag(C, Flag::OF));
}

TEST(SemExec, DivComputesQuotientRemainder) {
  Instr Div;
  Div.Op = Opcode::DIV;
  Div.Op1 = Operand::reg(Reg::EBX);
  Cpu C = makeCpu({
      movRegImm(Reg::EDX, 0),
      movRegImm(Reg::EAX, 100),
      movRegImm(Reg::EBX, 7),
      Div,
  });
  C.run(4);
  EXPECT_EQ(C.M.Regs[0], 14u);
  EXPECT_EQ(C.M.Regs[2], 2u);
}

TEST(SemExec, DivideByZeroFaults) {
  Instr Div;
  Div.Op = Opcode::DIV;
  Div.Op1 = Operand::reg(Reg::EBX);
  Cpu C = makeCpu({movRegImm(Reg::EBX, 0), Div});
  C.run(2);
  EXPECT_EQ(C.M.St, Status::Fault);
}

TEST(SemExec, IdivSignedSemantics) {
  Instr Idiv;
  Idiv.Op = Opcode::IDIV;
  Idiv.Op1 = Operand::reg(Reg::EBX);
  Cpu C = makeCpu({
      movRegImm(Reg::EDX, 0xFFFFFFFF), // sign extension of -7
      movRegImm(Reg::EAX, static_cast<uint32_t>(-7)),
      movRegImm(Reg::EBX, 2),
      Idiv,
  });
  C.run(4);
  EXPECT_EQ(static_cast<int32_t>(C.M.Regs[0]), -3);
  EXPECT_EQ(static_cast<int32_t>(C.M.Regs[2]), -1);
}

TEST(SemExec, ShlShiftsAndSetsCarry) {
  Instr Shl;
  Shl.Op = Opcode::SHL;
  Shl.Op1 = Operand::reg(Reg::EAX);
  Shl.Op2 = Operand::imm(4);
  Cpu C = makeCpu({movRegImm(Reg::EAX, 0x90000001), Shl});
  C.run(2);
  EXPECT_EQ(C.M.Regs[0], 0x00000010u);
  EXPECT_TRUE(flag(C, Flag::CF)); // bit 28 of the original was 1
}

TEST(SemExec, ShiftByZeroChangesNothing) {
  Instr Shl;
  Shl.Op = Opcode::SHL;
  Shl.Op1 = Operand::reg(Reg::EAX);
  Shl.Op2 = Operand::imm(0);
  Cpu C = makeCpu({
      movRegImm(Reg::EAX, 0xFFFFFFFF),
      binop(Opcode::ADD, Operand::reg(Reg::EAX), Operand::imm(1)), // CF=1
      movRegImm(Reg::EAX, 0x42),
      Shl,
  });
  C.run(4);
  EXPECT_EQ(C.M.Regs[0], 0x42u);
  EXPECT_TRUE(flag(C, Flag::CF)); // untouched
}

TEST(SemExec, SarIsArithmetic) {
  Instr Sar;
  Sar.Op = Opcode::SAR;
  Sar.Op1 = Operand::reg(Reg::EAX);
  Sar.Op2 = Operand::imm(4);
  Cpu C = makeCpu({movRegImm(Reg::EAX, 0x80000000), Sar});
  C.run(2);
  EXPECT_EQ(C.M.Regs[0], 0xF8000000u);
}

TEST(SemExec, RolRotates) {
  Instr Rol;
  Rol.Op = Opcode::ROL;
  Rol.Op1 = Operand::reg(Reg::EAX);
  Rol.Op2 = Operand::imm(8);
  Cpu C = makeCpu({movRegImm(Reg::EAX, 0x12345678), Rol});
  C.run(2);
  EXPECT_EQ(C.M.Regs[0], 0x34567812u);
}

TEST(SemExec, JccTakenAndNotTaken) {
  // cmp eax, 5 ; je +2 ; mov ebx, 1 ; (target) mov ecx, 2
  Instr Je;
  Je.Op = Opcode::Jcc;
  Je.CC = Cond::E;
  Je.Op1 = Operand::imm(5); // skip the 5-byte mov ebx
  Cpu C = makeCpu({
      movRegImm(Reg::EAX, 5),
      binop(Opcode::CMP, Operand::reg(Reg::EAX), Operand::imm(5)),
      Je,
      movRegImm(Reg::EBX, 1),
      movRegImm(Reg::ECX, 2),
  });
  C.run(4); // mov, cmp, je (taken), mov ecx
  EXPECT_EQ(C.M.Regs[3], 0u); // skipped
  EXPECT_EQ(C.M.Regs[1], 2u);
}

TEST(SemExec, CallPushesReturnAndRetReturns) {
  // call +5 ; (skipped) mov ebx, 1 ; (target) ret-like check.
  Instr Call;
  Call.Op = Opcode::CALL;
  Call.Op1 = Operand::imm(5);
  Cpu C = makeCpu({
      Call,
      movRegImm(Reg::EBX, 1),
      movRegImm(Reg::ECX, 2),
  });
  uint32_t Esp0 = C.M.Regs[4];
  C.step();
  EXPECT_EQ(C.M.Pc, 10u); // 5 (after call) + 5 (skip mov)
  EXPECT_EQ(C.M.Regs[4], Esp0 - 4);
  EXPECT_EQ(C.M.Mem.load(DataBase + Esp0 - 4, 4), 5u); // return address
  C.step();
  EXPECT_EQ(C.M.Regs[1], 2u);
}

TEST(SemExec, IndirectJumpThroughRegister) {
  Instr Jmp;
  Jmp.Op = Opcode::JMP;
  Jmp.Absolute = true;
  Jmp.Op1 = Operand::reg(Reg::EAX);
  Cpu C = makeCpu({movRegImm(Reg::EAX, 7), Jmp, movRegImm(Reg::ECX, 9)});
  C.run(2);
  EXPECT_EQ(C.M.Pc, 7u); // the mov ecx at offset 5+2
  C.step();
  EXPECT_EQ(C.M.Regs[1], 9u);
}

TEST(SemExec, JumpOutsideCodeSegmentFaults) {
  Instr Jmp;
  Jmp.Op = Opcode::JMP;
  Jmp.Absolute = true;
  Jmp.Op1 = Operand::reg(Reg::EAX);
  Cpu C = makeCpu({movRegImm(Reg::EAX, 0x5000), Jmp});
  C.run(3);
  EXPECT_EQ(C.M.St, Status::Fault); // fetch beyond the CS limit
}

TEST(SemExec, SetccWritesByte) {
  Instr Setz;
  Setz.Op = Opcode::SETcc;
  Setz.W = false;
  Setz.CC = Cond::E;
  Setz.Op1 = Operand::reg(Reg::EBX); // BL
  Cpu C = makeCpu({
      binop(Opcode::CMP, Operand::reg(Reg::EAX), Operand::reg(Reg::EAX)),
      Setz,
  });
  C.run(2);
  EXPECT_EQ(C.M.Regs[3] & 0xFF, 1u);
}

TEST(SemExec, CmovMovesOnlyWhenTrue) {
  Instr Cmove;
  Cmove.Op = Opcode::CMOVcc;
  Cmove.CC = Cond::E;
  Cmove.Op1 = Operand::reg(Reg::EBX);
  Cmove.Op2 = Operand::reg(Reg::EAX);
  Cpu C = makeCpu({
      movRegImm(Reg::EAX, 7),
      binop(Opcode::CMP, Operand::reg(Reg::EAX), Operand::imm(8)), // ZF=0
      Cmove,
  });
  C.run(3);
  EXPECT_EQ(C.M.Regs[3], 0u); // not moved
}

TEST(SemExec, MovzxMovsx) {
  Instr Movzx;
  Movzx.Op = Opcode::MOVZX;
  Movzx.W = false; // 8-bit source
  Movzx.Op1 = Operand::reg(Reg::EBX);
  Movzx.Op2 = Operand::reg(Reg::EAX); // AL
  Instr Movsx = Movzx;
  Movsx.Op = Opcode::MOVSX;
  Movsx.Op1 = Operand::reg(Reg::ECX);
  Cpu C = makeCpu({movRegImm(Reg::EAX, 0x80), Movzx, Movsx});
  C.run(3);
  EXPECT_EQ(C.M.Regs[3], 0x80u);
  EXPECT_EQ(C.M.Regs[1], 0xFFFFFF80u);
}

TEST(SemExec, LoopDecrementsAndBranches) {
  // mov ecx, 3 ; (L) loop L — spins until ECX is 0.
  Instr Loop;
  Loop.Op = Opcode::LOOP;
  Loop.Op1 = Operand::imm(static_cast<uint32_t>(-2)); // to itself
  Cpu C = makeCpu({movRegImm(Reg::ECX, 3), Loop});
  C.run(4); // mov + three loop iterations
  EXPECT_EQ(C.M.Regs[1], 0u);
  EXPECT_EQ(C.M.Pc, 7u);
}

TEST(SemExec, RepStosFillsMemory) {
  Instr Stos;
  Stos.Op = Opcode::STOS;
  Stos.W = false;
  Stos.Pfx.Rep = Prefix::RepKind::Rep;
  Cpu C = makeCpu({
      movRegImm(Reg::EAX, 0xAB),
      movRegImm(Reg::ECX, 16),
      movRegImm(Reg::EDI, 0x40),
      Stos,
  });
  C.run(3 + 16 + 1);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(C.M.Mem.load8(DataBase + 0x40 + I), 0xAB) << I;
  EXPECT_EQ(C.M.Regs[1], 0u);
  EXPECT_EQ(C.M.Regs[7], 0x50u);
  EXPECT_EQ(C.M.St, Status::Running);
}

TEST(SemExec, RepMovsCopies) {
  Instr Movs;
  Movs.Op = Opcode::MOVS;
  Movs.W = true;
  Movs.Pfx.Rep = Prefix::RepKind::Rep;
  Cpu C = makeCpu({
      movRegImm(Reg::ECX, 4),
      movRegImm(Reg::ESI, 0x10),
      movRegImm(Reg::EDI, 0x80),
      Movs,
  });
  C.M.Mem.store(DataBase + 0x10, 4, 0x11111111);
  C.M.Mem.store(DataBase + 0x14, 4, 0x22222222);
  C.M.Mem.store(DataBase + 0x18, 4, 0x33333333);
  C.M.Mem.store(DataBase + 0x1C, 4, 0x44444444);
  C.run(3 + 4 + 1);
  EXPECT_EQ(C.M.Mem.load(DataBase + 0x80, 4), 0x11111111u);
  EXPECT_EQ(C.M.Mem.load(DataBase + 0x8C, 4), 0x44444444u);
}

TEST(SemExec, HltHaltsSafely) {
  Instr Hlt;
  Hlt.Op = Opcode::HLT;
  Cpu C = makeCpu({Hlt});
  EXPECT_EQ(C.step(), Status::Halted);
  EXPECT_EQ(C.M.Pc, 1u);
}

TEST(SemExec, UnmodeledInstructionIsError) {
  Instr In;
  In.Op = Opcode::IN;
  In.W = false;
  In.Op1 = Operand::reg(Reg::EAX);
  In.Op2 = Operand::imm(0x60);
  Cpu C = makeCpu({In});
  EXPECT_EQ(C.step(), Status::Error);
}

TEST(SemExec, SegmentRegisterWriteEscapesSandbox) {
  // mov ds, ax — modeled as the segment losing its protection; the
  // selector value changes and the limit becomes 2^32-1.
  Instr MovDs;
  MovDs.Op = Opcode::MOVSR;
  MovDs.Seg = SegReg::DS;
  MovDs.Op2 = Operand::reg(Reg::EAX);
  Cpu C = makeCpu({movRegImm(Reg::EAX, 0x7777), MovDs});
  C.run(2);
  uint8_t Ds = static_cast<uint8_t>(SegReg::DS);
  EXPECT_EQ(C.M.SegVal[Ds], 0x7777u);
  EXPECT_EQ(C.M.SegLimit[Ds], 0xFFFFFFFFu);
  EXPECT_EQ(C.M.SegBase[Ds], 0u);
}

TEST(SemExec, BsfBsrFindBits) {
  Instr Bsf;
  Bsf.Op = Opcode::BSF;
  Bsf.Op1 = Operand::reg(Reg::EBX);
  Bsf.Op2 = Operand::reg(Reg::EAX);
  Instr Bsr = Bsf;
  Bsr.Op = Opcode::BSR;
  Bsr.Op1 = Operand::reg(Reg::ECX);
  Cpu C = makeCpu({movRegImm(Reg::EAX, 0x00840000), Bsf, Bsr});
  C.run(3);
  EXPECT_EQ(C.M.Regs[3], 18u);
  EXPECT_EQ(C.M.Regs[1], 23u);
  EXPECT_FALSE(flag(C, Flag::ZF));
}

TEST(SemExec, PushfPopfRoundTripsFlags) {
  Instr Pushf;
  Pushf.Op = Opcode::PUSHF;
  Instr Popf;
  Popf.Op = Opcode::POPF;
  Cpu C = makeCpu({
      movRegImm(Reg::EAX, 0xFFFFFFFF),
      binop(Opcode::ADD, Operand::reg(Reg::EAX), Operand::imm(1)),
      Pushf,
      movRegImm(Reg::EBX, 0),
      binop(Opcode::ADD, Operand::reg(Reg::EBX), Operand::imm(1)), // CF=0
      Popf,
  });
  C.run(6);
  EXPECT_TRUE(flag(C, Flag::CF)); // restored
  EXPECT_TRUE(flag(C, Flag::ZF));
}

TEST(SemExec, XchgSwaps) {
  Instr Xchg;
  Xchg.Op = Opcode::XCHG;
  Xchg.Op1 = Operand::reg(Reg::EAX);
  Xchg.Op2 = Operand::reg(Reg::EBX);
  Cpu C = makeCpu({movRegImm(Reg::EAX, 1), movRegImm(Reg::EBX, 2), Xchg});
  C.run(3);
  EXPECT_EQ(C.M.Regs[0], 2u);
  EXPECT_EQ(C.M.Regs[3], 1u);
}

TEST(SemExec, CmpxchgBothOutcomes) {
  Instr Cx;
  Cx.Op = Opcode::CMPXCHG;
  Cx.Op1 = Operand::reg(Reg::EBX);
  Cx.Op2 = Operand::reg(Reg::ECX);
  {
    Cpu C = makeCpu({movRegImm(Reg::EAX, 5), movRegImm(Reg::EBX, 5),
                     movRegImm(Reg::ECX, 9), Cx});
    C.run(4);
    EXPECT_EQ(C.M.Regs[3], 9u); // swapped in
    EXPECT_TRUE(flag(C, Flag::ZF));
  }
  {
    Cpu C = makeCpu({movRegImm(Reg::EAX, 4), movRegImm(Reg::EBX, 5),
                     movRegImm(Reg::ECX, 9), Cx});
    C.run(4);
    EXPECT_EQ(C.M.Regs[3], 5u); // unchanged
    EXPECT_EQ(C.M.Regs[0], 5u); // EAX = dest
    EXPECT_FALSE(flag(C, Flag::ZF));
  }
}

TEST(SemExec, LeaveUnwindsFrame) {
  Instr Enter;
  Enter.Op = Opcode::ENTER;
  Enter.Op1 = Operand::imm(0x20);
  Enter.Op2 = Operand::imm(0);
  Instr Leave;
  Leave.Op = Opcode::LEAVE;
  Cpu C = makeCpu({movRegImm(Reg::EBP, 0x1111), Enter, Leave});
  uint32_t Esp0 = C.M.Regs[4];
  C.run(3);
  EXPECT_EQ(C.M.Regs[4], Esp0);
  EXPECT_EQ(C.M.Regs[5], 0x1111u);
}

TEST(SemExec, GrammarDecoderDrivesTheSameSemantics) {
  // The Cpu must behave identically under the reference decoder.
  Cpu A = makeCpu({
      movRegImm(Reg::EAX, 41),
      binop(Opcode::ADD, Operand::reg(Reg::EAX), Operand::imm(1)),
  });
  Cpu B = makeCpu({
      movRegImm(Reg::EAX, 41),
      binop(Opcode::ADD, Operand::reg(Reg::EAX), Operand::imm(1)),
  });
  B.Decoder = DecoderKind::Grammar;
  A.run(2);
  B.run(2);
  EXPECT_EQ(A.M.Regs[0], 42u);
  EXPECT_EQ(B.M.Regs[0], 42u);
  EXPECT_EQ(A.M.Pc, B.M.Pc);
}
