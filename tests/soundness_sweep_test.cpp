//===- tests/soundness_sweep_test.cpp -------------------------*- C++ -*-===//
//
// The end-to-end soundness property as a parameterized sweep: for each
// seed, generate a compliant binary, require both checkers to accept it,
// run it under the sandbox monitor from several oracle-seeded machine
// states, and require zero invariant violations. Each seed is its own
// test instance so a failure pinpoints the offending workload.
//
//===----------------------------------------------------------------------===//

#include "core/BaselineChecker.h"
#include "core/SandboxMonitor.h"
#include "core/Verifier.h"
#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::core;
using namespace rocksalt::nacl;

namespace {

constexpr uint32_t CodeBase = 0x20000;
constexpr uint32_t DataBase = 0x800000;
constexpr uint32_t DataSize = 0x8000;

class SoundnessSweep : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(SoundnessSweep, AcceptedBinaryRunsSafely) {
  uint64_t Seed = GetParam();
  WorkloadOptions Opts;
  Opts.Seed = Seed;
  Opts.TargetBytes = 1536;
  // Vary the construct mix with the seed so the sweep covers different
  // shapes (branch-heavy, indirect-heavy, straight-line).
  Opts.DirectJumpRate = 20 + (Seed % 5) * 25;
  Opts.MaskedJumpRate = (Seed % 3) * 20;
  Opts.CallRate = (Seed % 4) * 15;
  std::vector<uint8_t> Code = generateWorkload(Opts);

  RockSalt V;
  CheckResult R = V.check(Code);
  ASSERT_TRUE(R.Ok);
  ASSERT_TRUE(baselineVerify(Code));

  // Several runs from different machine states: registers (and thus
  // indirect-jump targets and memory traffic) differ each time.
  for (uint64_t OracleSeed : {Seed * 3 + 1, Seed * 7 + 2, Seed * 11 + 3}) {
    sem::Cpu C;
    C.configureSandbox(CodeBase, static_cast<uint32_t>(Code.size()),
                       DataBase, DataSize, Code);
    Rng Rand(OracleSeed);
    for (int I = 0; I < 8; ++I)
      if (I != 4) // keep ESP sane
        C.M.Regs[I] = static_cast<uint32_t>(Rand.next());
    SandboxMonitor Mon(C, R, CodeBase, static_cast<uint32_t>(Code.size()));
    auto Violation = Mon.runMonitored(1500);
    ASSERT_FALSE(Violation.has_value())
        << "oracle " << OracleSeed << " step " << Violation->Step << ": "
        << Violation->What;
  }
}

TEST_P(SoundnessSweep, MutatedVariantNeverViolatesWhenAccepted) {
  // The stronger statement: even a *mutated* binary, as long as the
  // checker still accepts it, must run safely. This is the soundness
  // property on adversarial inputs rather than generator outputs.
  uint64_t Seed = GetParam();
  WorkloadOptions Opts;
  Opts.Seed = Seed + 1000;
  Opts.TargetBytes = 768;
  std::vector<uint8_t> Code = generateWorkload(Opts);

  RockSalt V;
  Rng Rand(Seed * 13 + 5);
  int AcceptedMutants = 0;
  for (int I = 0; I < 40; ++I) {
    std::vector<uint8_t> M = mutateRandom(Code, Rand);
    CheckResult R = V.check(M);
    if (!R.Ok)
      continue;
    ++AcceptedMutants;
    sem::Cpu C(Seed + I);
    C.configureSandbox(CodeBase, static_cast<uint32_t>(M.size()), DataBase,
                       DataSize, M);
    SandboxMonitor Mon(C, std::move(R), CodeBase,
                       static_cast<uint32_t>(M.size()));
    auto Violation = Mon.runMonitored(1000);
    ASSERT_FALSE(Violation.has_value())
        << "mutant " << I << " step " << Violation->Step << ": "
        << Violation->What;
    Code = std::move(M); // walk the mutation chain
  }
  // Most single-byte mutations of immediates stay legal, so the property
  // must actually have been exercised.
  EXPECT_GT(AcceptedMutants, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessSweep,
                         ::testing::Range<uint64_t>(1, 21));
