//===- tests/analysis_dataflow_test.cpp -----------------------*- C++ -*-===//
//
// Tests for the whole-image dataflow engine (analysis/Dataflow.h): the
// generic worklist solver over hand-built graphs, the concrete passes
// (extended reachability through the computed-transfer hub, reaching
// masks, call-graph recovery), adversarial CFG shapes, and the contract
// that all three lint front ends — sequential chain re-scan, shard
// bitmaps, and the incremental linter's maintained chain — produce
// bit-identical verdicts, with error-severity diagnostics never firing
// on an accepted image.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "incr/IncrementalVerifier.h"
#include "nacl/Assembler.h"
#include "nacl/WorkloadGen.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace rocksalt;
using namespace rocksalt::analysis;

namespace {

const core::PolicyTables &tables() { return core::policyTables(); }

uint32_t countKind(const CfgLintResult &R, LintKind K) {
  uint32_t N = 0;
  for (const LintDiag &D : R.Diags)
    N += D.Kind == K ? 1 : 0;
  return N;
}

/// Full structural equality between two lint results — fields, per-node
/// analysis values, diagnostics, and the rendered text. The assertion
/// form the differential contract (sequential == shards == incremental)
/// is checked in.
void expectLintEqual(const CfgLintResult &A, const CfgLintResult &B,
                     const char *What) {
  EXPECT_EQ(A.ParseComplete, B.ParseComplete) << What;
  EXPECT_EQ(A.Errors, B.Errors) << What;
  EXPECT_EQ(A.Warnings, B.Warnings) << What;
  EXPECT_EQ(A.Notes, B.Notes) << What;
  EXPECT_EQ(A.ReachableNodes, B.ReachableNodes) << What;
  EXPECT_EQ(A.ExtReachableNodes, B.ExtReachableNodes) << What;
  EXPECT_EQ(A.LiveIndirectOuts, B.LiveIndirectOuts) << What;
  EXPECT_EQ(A.Procs, B.Procs) << What;
  EXPECT_EQ(A.ReachableProcs, B.ReachableProcs) << What;
  ASSERT_EQ(A.Nodes.size(), B.Nodes.size()) << What;
  for (size_t I = 0; I < A.Nodes.size(); ++I) {
    const CfgNode &X = A.Nodes[I], &Y = B.Nodes[I];
    EXPECT_EQ(X.Begin, Y.Begin) << What << " node " << I;
    EXPECT_EQ(X.End, Y.End) << What << " node " << I;
    EXPECT_EQ(X.Kind, Y.Kind) << What << " node " << I;
    EXPECT_EQ(X.Fallthrough, Y.Fallthrough) << What << " node " << I;
    EXPECT_EQ(X.HasTarget, Y.HasTarget) << What << " node " << I;
    if (X.HasTarget && Y.HasTarget)
      EXPECT_EQ(X.Target, Y.Target) << What << " node " << I;
    EXPECT_EQ(X.IndirectOut, Y.IndirectOut) << What << " node " << I;
    EXPECT_EQ(X.IsCall, Y.IsCall) << What << " node " << I;
  }
  EXPECT_EQ(A.Reachable, B.Reachable) << What;
  EXPECT_EQ(A.ExtReachable, B.ExtReachable) << What;
  EXPECT_EQ(A.Guard, B.Guard) << What;
  ASSERT_EQ(A.Diags.size(), B.Diags.size()) << What << "\n--- A:\n"
                                            << A.render() << "--- B:\n"
                                            << B.render();
  for (size_t I = 0; I < A.Diags.size(); ++I) {
    EXPECT_EQ(A.Diags[I].Kind, B.Diags[I].Kind) << What << " diag " << I;
    EXPECT_EQ(A.Diags[I].Sev, B.Diags[I].Sev) << What << " diag " << I;
    EXPECT_EQ(A.Diags[I].Offset, B.Diags[I].Offset) << What << " diag " << I;
    EXPECT_EQ(A.Diags[I].Detail, B.Diags[I].Detail) << What << " diag " << I;
  }
  EXPECT_EQ(A.render(), B.render()) << What;
}

/// Hand-built straight-line / branch nodes for engine unit tests (no
/// image behind them; the engine only reads the edge-shape fields).
CfgNode node(uint32_t Begin, uint32_t End, bool Fallthrough,
             bool HasTarget = false, uint32_t Target = 0) {
  CfgNode N;
  N.Begin = Begin;
  N.End = End;
  N.Kind = HasTarget ? core::StepKind::DirectJump
                     : core::StepKind::NoControlFlow;
  N.Fallthrough = Fallthrough;
  N.HasTarget = HasTarget;
  N.Target = Target;
  return N;
}

/// Bit-set reach lattice: boundary seeds one node, join is OR, transfer
/// is the identity — forward gives "reachable from seed", backward
/// gives "can reach seed".
struct SeedLattice {
  using Value = uint8_t;
  uint32_t Seed;
  Value bottom() { return 0; }
  Value boundary(uint32_t I) { return I == Seed ? 1 : 0; }
  bool join(Value &Dst, Value Src) {
    if ((Dst | Src) == Dst)
      return false;
    Dst |= Src;
    return true;
  }
  Value transfer(uint32_t, Value In) { return In; }
};

//===----------------------------------------------------------------------===//
// The generic engine
//===----------------------------------------------------------------------===//

TEST(DataflowEngine, ForwardReachOnDiamond) {
  // 0 branches to 2 and falls through to 1; both rejoin at 2's
  // fallthrough 3 — wait, diamond: 0 -> {1, 2} -> 3.
  std::vector<CfgNode> Nodes = {
      node(0, 2, true, true, 4), // 0: jcc -> node 2, ft -> node 1
      node(2, 4, true),          // 1: ft -> node 2
      node(4, 6, true),          // 2: ft -> node 3
      node(6, 8, false),         // 3: terminal
  };
  CfgGraph G(Nodes, 8);
  SeedLattice L{0};
  DataflowResult<SeedLattice> R = runDataflow(G, L, DataflowDir::Forward);
  EXPECT_EQ(R.Out, (std::vector<uint8_t>{1, 1, 1, 1}));
  EXPECT_GE(R.Steps, 4u);

  // Predecessors mirror the successor edges.
  auto [P, E] = G.preds(2);
  EXPECT_EQ(E - P, 2); // from 0 (branch) and 1 (fallthrough)
}

TEST(DataflowEngine, ForwardReachSkipsDeadCode) {
  std::vector<CfgNode> Nodes = {
      node(0, 2, true),           // 0: ft -> 1
      node(2, 4, false, true, 6), // 1: jmp -> 3, no ft
      node(4, 6, true),           // 2: dead (skipped by the jmp)
      node(6, 8, false),          // 3: terminal
  };
  CfgGraph G(Nodes, 8);
  SeedLattice L{0};
  DataflowResult<SeedLattice> R = runDataflow(G, L, DataflowDir::Forward);
  EXPECT_EQ(R.Out, (std::vector<uint8_t>{1, 1, 0, 1}));
}

TEST(DataflowEngine, BackwardCanReachQuery) {
  // Same graph: only node 2 itself "can reach node 2" — 1 jumps over it
  // and nothing re-enters.
  std::vector<CfgNode> Nodes = {
      node(0, 2, true),
      node(2, 4, false, true, 6),
      node(4, 6, true),
      node(6, 8, false),
  };
  CfgGraph G(Nodes, 8);
  SeedLattice L{2};
  DataflowResult<SeedLattice> R = runDataflow(G, L, DataflowDir::Backward);
  EXPECT_EQ(R.Out, (std::vector<uint8_t>{0, 0, 1, 0}));
}

TEST(DataflowEngine, BranchToNonNodeStartContributesNoEdge) {
  // Target 3 is the interior of node 1: succs(0) must report only the
  // fallthrough, and the fixpoint must not invent reachability.
  std::vector<CfgNode> Nodes = {
      node(0, 2, false, true, 3), // jmp into 1's interior, no ft
      node(2, 4, true),
      node(4, 6, false),
  };
  CfgGraph G(Nodes, 6);
  uint32_t Fan[2];
  EXPECT_EQ(G.succs(0, Fan), 0u);
  EXPECT_EQ(G.nodeAt(3), CfgGraph::kNoNode);
  SeedLattice L{0};
  DataflowResult<SeedLattice> R = runDataflow(G, L, DataflowDir::Forward);
  EXPECT_EQ(R.Out, (std::vector<uint8_t>{1, 0, 0}));
}

TEST(DataflowEngine, EmptyGraph) {
  std::vector<CfgNode> Nodes;
  CfgGraph G(Nodes, 0);
  SeedLattice L{0};
  DataflowResult<SeedLattice> R = runDataflow(G, L, DataflowDir::Forward);
  EXPECT_TRUE(R.In.empty());
  EXPECT_TRUE(R.Out.empty());
  EXPECT_EQ(R.Steps, 0u);
}

//===----------------------------------------------------------------------===//
// Concrete passes, observed through lintImage's result fields
//===----------------------------------------------------------------------===//

TEST(DataflowPasses, HubClosureLiftsBundleStartsToExtReachable) {
  // Bundle 0 holds a live masked jump, then jumps over bundle 1. Bundle
  // 1 is direct-unreachable but the computed transfer may enter it, so
  // the hub closure marks its start ext-reachable and the note says a
  // live transfer may enter.
  nacl::Assembler A;
  A.maskedJump(x86::Reg::EAX);
  A.jmpTo("end");
  A.padToBundle();
  A.hlt(); // bundle 1: direct-unreachable
  A.padToBundle();
  A.alignedLabel("end");
  A.hlt();
  std::vector<uint8_t> Img = A.finish();
  ASSERT_TRUE(core::RockSalt().verify(Img));

  CfgLintResult R = lintImage(tables(), Img);
  EXPECT_EQ(R.Errors, 0u) << R.render();
  EXPECT_EQ(R.LiveIndirectOuts, 1u);
  EXPECT_GT(R.ExtReachableNodes, R.ReachableNodes);
  // The node opening bundle 1 is ext-reachable but not direct-reachable.
  bool Found = false;
  for (size_t I = 0; I < R.Nodes.size(); ++I)
    if (R.Nodes[I].Begin == core::BundleSize) {
      Found = true;
      EXPECT_FALSE(R.Reachable[I]);
      EXPECT_TRUE(R.ExtReachable[I]);
    }
  ASSERT_TRUE(Found);
  // The pair in bundle 0 is live, so no dead-pair warning; the masked
  // jump does not fall through, so both later bundles (the skipped one
  // AND "end") are direct-unreachable, and each note mentions the live
  // transfer count.
  EXPECT_EQ(countKind(R, LintKind::DeadMaskedPair), 0u) << R.render();
  ASSERT_EQ(countKind(R, LintKind::UnreachableBundle), 2u) << R.render();
  for (const LintDiag &D : R.Diags)
    if (D.Kind == LintKind::UnreachableBundle)
      EXPECT_NE(D.Detail.find("1 live computed transfer"), std::string::npos)
          << D.Detail;
}

TEST(DataflowPasses, NoLiveIndirectMeansDeadCodeNote) {
  // Same shape without the masked jump: bundle 1 is genuinely dead and
  // the note must say so.
  nacl::Assembler A;
  A.jmpTo("end");
  A.padToBundle();
  A.hlt();
  A.padToBundle();
  A.alignedLabel("end");
  A.hlt();
  std::vector<uint8_t> Img = A.finish();
  ASSERT_TRUE(core::RockSalt().verify(Img));

  CfgLintResult R = lintImage(tables(), Img);
  EXPECT_EQ(R.LiveIndirectOuts, 0u);
  EXPECT_EQ(R.ExtReachableNodes, R.ReachableNodes);
  ASSERT_EQ(countKind(R, LintKind::UnreachableBundle), 1u) << R.render();
  for (const LintDiag &D : R.Diags)
    if (D.Kind == LintKind::UnreachableBundle)
      EXPECT_NE(D.Detail.find("dead code"), std::string::npos) << D.Detail;
}

TEST(DataflowPasses, ReachingMaskTracksGuardThenMeetsAtBundleStart) {
  // A masked CALL pair at offset 0 installs guard 0 and falls through;
  // the straight-line tail of bundle 0 keeps the guard; bundle 1's
  // start meets in the unguarded computed entry (the pair is live) and
  // degrades to Many, which the rest of bundle 1 inherits.
  std::vector<uint8_t> Img = {0x83, 0xE0, 0xE0,  // and eax, -32
                              0xFF, 0xD0};       // call *eax
  Img.resize(64, 0x90);
  ASSERT_TRUE(core::RockSalt().verify(Img));

  CfgLintResult R = lintImage(tables(), Img);
  ASSERT_EQ(R.Guard.size(), R.Nodes.size());
  for (size_t I = 0; I < R.Nodes.size(); ++I) {
    if (R.Nodes[I].Begin == 0)
      EXPECT_EQ(R.Guard[I], 0u) << "the pair installs its own Begin";
    else if (R.Nodes[I].Begin < core::BundleSize)
      EXPECT_EQ(R.Guard[I], 0u) << "node " << I << " keeps the guard";
    else
      EXPECT_EQ(R.Guard[I], kGuardMany)
          << "node " << I << " meets the unguarded computed entry";
  }
}

TEST(DataflowPasses, GuardStaysNoneWithoutAnyPair) {
  std::vector<uint8_t> Img(64, 0x90);
  ASSERT_TRUE(core::RockSalt().verify(Img));
  CfgLintResult R = lintImage(tables(), Img);
  for (uint32_t V : R.Guard)
    EXPECT_EQ(V, kGuardNone);
}

TEST(DataflowPasses, CallGraphRecoversProceduresAndLiveness) {
  // Entry proc calls "fn": procedures are the address partition cut at
  // direct-call targets (entry + fn here), and the call edge makes
  // both interprocedurally live.
  nacl::Assembler A;
  A.callToAligned("fn");
  A.jmpTo("done");
  A.padToBundle();
  A.alignedLabel("fn");
  A.hlt();
  A.padToBundle();
  A.alignedLabel("done");
  A.hlt();
  std::vector<uint8_t> Img = A.finish();
  ASSERT_TRUE(core::RockSalt().verify(Img));

  CfgLintResult R = lintImage(tables(), Img);
  EXPECT_EQ(R.Errors, 0u) << R.render();
  EXPECT_EQ(R.Procs, 2u);          // entry + fn
  EXPECT_EQ(R.ReachableProcs, 2u); // the call makes fn live
  EXPECT_EQ(countKind(R, LintKind::UnreachableBundle), 0u) << R.render();
}

TEST(DataflowPasses, MutuallyRecursiveCallsCondenseToOneLiveScc) {
  // a calls b, b calls a: one SCC, both live from the entry.
  nacl::Assembler A;
  A.callToAligned("b");
  A.hlt();
  A.padToBundle();
  A.alignedLabel("b");
  A.callToAligned("a");
  A.hlt();
  A.padToBundle();
  A.alignedLabel("a");
  A.jmpTo("b");
  A.padToBundle();
  std::vector<uint8_t> Img = A.finish();
  ASSERT_TRUE(core::RockSalt().verify(Img));

  CfgLintResult R = lintImage(tables(), Img);
  EXPECT_EQ(R.Errors, 0u) << R.render();
  EXPECT_EQ(R.Procs, R.ReachableProcs) << R.render();
  EXPECT_GE(R.Procs, 2u);
}

//===----------------------------------------------------------------------===//
// Adversarial CFG shapes
//===----------------------------------------------------------------------===//

TEST(AdversarialCfg, OverlappingBranchesIntoSamePairInterior) {
  // Two distinct branches land inside the same masked pair: one
  // diagnostic per offending source, both naming the pair.
  std::vector<uint8_t> Img = {0xEB, 0x04,             // 0: jmp -> 6
                              0xEB, 0x02,             // 2: jmp -> 6
                              0x83, 0xE0, 0xE0,       // 4: and eax, -32
                              0xFF, 0xE0};            // 7: jmp *eax
  Img.resize(32, 0x90);
  core::CheckResult C = core::RockSalt().check(Img);
  ASSERT_FALSE(C.Ok);
  ASSERT_EQ(C.Reason, core::RejectReason::BadTarget);

  CfgLintResult R = lintImage(tables(), Img);
  EXPECT_TRUE(R.ParseComplete);
  ASSERT_EQ(countKind(R, LintKind::BranchIntoMaskedPair), 2u) << R.render();
  std::vector<uint32_t> Anchors;
  for (const LintDiag &D : R.Diags)
    if (D.Kind == LintKind::BranchIntoMaskedPair)
      Anchors.push_back(D.Offset);
  EXPECT_EQ(Anchors, (std::vector<uint32_t>{0, 2}));
}

TEST(AdversarialCfg, CallInFinalBundle) {
  // A call whose return point is mid-bundle warns; a call ending
  // exactly at the image end returns onto the (virtual) seam and must
  // not warn — and the missing fallthrough node must not trip the
  // passes.
  auto Build = [](uint32_t CallAt) {
    std::vector<uint8_t> Img(64, 0x90);
    Img[0] = 0xF4; // hlt entry
    Img[CallAt] = 0xE8;
    int32_t Rel = -int32_t(CallAt + 5); // back to offset 0 (aligned)
    std::memcpy(&Img[CallAt + 1], &Rel, 4);
    return Img;
  };

  std::vector<uint8_t> Mid = Build(32); // returns to 37: off-seam
  std::vector<uint8_t> End = Build(59); // returns to 64 == Size: seam
  ASSERT_TRUE(core::RockSalt().verify(Mid));
  ASSERT_TRUE(core::RockSalt().verify(End));

  CfgLintResult RM = lintImage(tables(), Mid);
  CfgLintResult RE = lintImage(tables(), End);
  EXPECT_EQ(RM.Errors, 0u) << RM.render();
  EXPECT_EQ(RE.Errors, 0u) << RE.render();
  EXPECT_EQ(countKind(RM, LintKind::CallRetNotSeam), 1u) << RM.render();
  EXPECT_EQ(countKind(RE, LintKind::CallRetNotSeam), 0u) << RE.render();
  // The final node is the call; its fallthrough edge leaves the image.
  ASSERT_FALSE(RE.Nodes.empty());
  const CfgNode &Last = RE.Nodes.back();
  EXPECT_TRUE(Last.IsCall);
  EXPECT_EQ(Last.End, 64u);
}

TEST(AdversarialCfg, BackEdgeLoopStaysQuiet) {
  // A self-loop bundle: jmp back to its own aligned start. The
  // worklist must converge on the cycle; the pad after the jmp is
  // unreachable but shares the reachable bundle start, so there is no
  // note to emit.
  nacl::Assembler A;
  A.alignedLabel("top");
  A.hlt();
  A.jmpTo("top");
  A.padToBundle();
  std::vector<uint8_t> Img = A.finish();
  ASSERT_TRUE(core::RockSalt().verify(Img));
  CfgLintResult R = lintImage(tables(), Img);
  EXPECT_EQ(R.Errors, 0u) << R.render();
  EXPECT_EQ(countKind(R, LintKind::UnreachableBundle), 0u) << R.render();
  EXPECT_EQ(R.ReachableNodes, 2u); // the hlt and the jmp
}

//===----------------------------------------------------------------------===//
// Differential: shard-derived lint is bit-identical to sequential
//===----------------------------------------------------------------------===//

TEST(DifferentialLint, ShardsMatchSequentialOnHandImages) {
  std::vector<std::pair<const char *, std::vector<uint8_t>>> Cases;
  {
    std::vector<uint8_t> I = {0xEB, 0x04, 0xEB, 0x02, 0x83,
                              0xE0, 0xE0, 0xFF, 0xE0};
    I.resize(96, 0x90);
    Cases.emplace_back("overlapping-branches", std::move(I));
  }
  {
    std::vector<uint8_t> I(96, 0x90);
    I[40] = 0xC3; // parse jams mid-image
    Cases.emplace_back("parse-stuck", std::move(I));
  }
  {
    std::vector<uint8_t> I(31, 0x90);
    I.push_back(0x89); // straddles the bundle seam
    I.push_back(0xC0);
    I.resize(96, 0x90);
    Cases.emplace_back("unaligned-bundle", std::move(I));
  }
  {
    std::vector<uint8_t> I = {0x83, 0xE0, 0xE0, 0xFF, 0xE0};
    I.resize(96, 0x90);
    Cases.emplace_back("live-pair", std::move(I));
  }

  for (auto &[Name, Img] : Cases) {
    CfgLintResult Seq = lintImage(tables(), Img);
    for (uint32_t Shards : {1u, 2u, 5u}) {
      CfgLintResult Par = lintImageFromShards(
          tables(), Img.data(), uint32_t(Img.size()), Shards);
      expectLintEqual(Seq, Par,
                      (std::string(Name) + " shards=" +
                       std::to_string(Shards)).c_str());
    }
  }
}

TEST(DifferentialLint, ShardsMatchSequentialOnWorkloads) {
  for (uint64_t Seed : {3, 17, 41}) {
    nacl::WorkloadOptions O;
    O.TargetBytes = 2048;
    O.Seed = Seed;
    std::vector<uint8_t> Img = nacl::generateWorkload(O);
    CfgLintResult Seq = lintImage(tables(), Img);
    EXPECT_EQ(Seq.Errors, 0u);
    for (uint32_t Shards : {1u, 3u, 8u}) {
      CfgLintResult Par = lintImageFromShards(
          tables(), Img.data(), uint32_t(Img.size()), Shards);
      expectLintEqual(Seq, Par, ("workload seed " + std::to_string(Seed) +
                                 " shards=" + std::to_string(Shards))
                                    .c_str());
    }
  }
}

//===----------------------------------------------------------------------===//
// Incremental lint: bit-identity to fresh, across chunk geometries
//===----------------------------------------------------------------------===//

class IncrementalFixture {
public:
  IncrementalFixture(std::vector<uint8_t> Img, uint32_t ChunkBytes)
      : Opts(makeOpts(ChunkBytes)), V(tables(), Opts), L(tables()) {
    incr::IncrResult R0;
    Id = V.open(std::move(Img), &R0);
    LastOk = R0.Ok;
    const incr::ImageEntry *E = V.store().get(Id);
    L.open(Id, E->Bytes.data(), E->size(), ChunkBytes);
  }

  /// Applies a patch through the verifier + linter and asserts the
  /// maintained lint is bit-identical to a fresh lint of the current
  /// bytes (snapshot fields and rendered text).
  IncrementalLinter::Summary patchAndCheck(uint32_t Off,
                                           const std::vector<uint8_t> &Bytes,
                                           const char *What) {
    incr::IncrResult R = V.patch(Id, Off, Bytes);
    LastOk = R.Ok;
    const incr::ImageEntry *E = V.store().get(Id);
    IncrementalLinter::Summary S =
        L.relint(Id, E->Bytes.data(), E->size(), R);
    CfgLintResult Fresh = lintImage(tables(), E->Bytes);
    CfgLintResult Snap = L.snapshot(Id);
    expectLintEqual(Fresh, Snap, What);
    EXPECT_EQ(L.render(Id), Fresh.render()) << What;
    EXPECT_EQ(S.Errors, Fresh.Errors) << What;
    EXPECT_EQ(S.Warnings, Fresh.Warnings) << What;
    EXPECT_EQ(S.Notes, Fresh.Notes) << What;
    EXPECT_EQ(S.ParseComplete, Fresh.ParseComplete) << What;
    return S;
  }

  bool lastOk() const { return LastOk; }

private:
  static incr::IncrementalOptions makeOpts(uint32_t ChunkBytes) {
    incr::IncrementalOptions O;
    O.ChunkBytes = ChunkBytes;
    return O;
  }
  incr::IncrementalOptions Opts;
  incr::IncrementalVerifier V;
  IncrementalLinter L;
  incr::ImageId Id = 0;
  bool LastOk = false;
};

TEST(IncrementalLint, MaskedPairAtChunkSeamGeometries) {
  // Masked pairs ending exactly on the 32- and 128-byte chunk seams;
  // patches land on both sides of each seam and must keep the
  // maintained lint bit-identical to fresh under both geometries.
  std::vector<uint8_t> Base(256, 0x90);
  auto PutPair = [&](uint32_t At) {
    const uint8_t Pair[5] = {0x83, 0xE0, 0xE0, 0xFF, 0xE0};
    std::memcpy(&Base[At], Pair, 5);
  };
  PutPair(27);  // ends at 32: the first 32-byte (and 128-byte interior) seam
  PutPair(123); // ends at 128: the first 128-byte seam
  ASSERT_TRUE(core::RockSalt().verify(Base));

  for (uint32_t ChunkBytes : {32u, 128u}) {
    SCOPED_TRACE("ChunkBytes=" + std::to_string(ChunkBytes));
    IncrementalFixture F(Base, ChunkBytes);

    // NCF corridor patch just after the first seam (fast-path shape).
    F.patchAndCheck(33, {0xF4}, "hlt after seam");
    EXPECT_TRUE(F.lastOk());
    // Patch in the same chunk as the pair: the window swallows the
    // pair, so the corridor precondition fails and the relint must
    // take a heavier path — verdicts still identical.
    F.patchAndCheck(20, {0xF4, 0xF4}, "patch before pair");
    EXPECT_TRUE(F.lastOk());
    // Overwrite the pair itself with straight-line code...
    F.patchAndCheck(27, {0x90, 0x90, 0x90, 0x90, 0x90}, "erase pair");
    EXPECT_TRUE(F.lastOk());
    // ...and restore it.
    F.patchAndCheck(27, {0x83, 0xE0, 0xE0, 0xFF, 0xE0}, "restore pair");
    EXPECT_TRUE(F.lastOk());
    // Break the image (mid-bundle RET): rejected patches fall back to
    // the full path and must still match fresh lint of the bad bytes.
    F.patchAndCheck(200, {0xC3}, "break with ret");
    EXPECT_FALSE(F.lastOk());
    // Heal it again.
    F.patchAndCheck(200, {0x90}, "heal");
    EXPECT_TRUE(F.lastOk());
  }
}

TEST(IncrementalLint, PureCorridorPatchTakesFastPath) {
  std::vector<uint8_t> Img(512, 0x90);
  IncrementalFixture F(Img, 128);
  IncrementalLinter::Summary S =
      F.patchAndCheck(260, {0xF4, 0xF4, 0xF4}, "nop->hlt corridor");
  EXPECT_TRUE(F.lastOk());
  EXPECT_TRUE(S.FastPath);
}

TEST(IncrementalLint, BranchPatchLeavesFastPath) {
  // Writing a branch into the window makes it a non-corridor: the
  // relint may not use the O(window) path, and must still agree.
  std::vector<uint8_t> Img(512, 0x90);
  IncrementalFixture F(Img, 128);
  // jmp -2 -> targets its own bundle start (accepted: 256 is aligned).
  IncrementalLinter::Summary S =
      F.patchAndCheck(256, {0xEB, 0xFE}, "self-loop jmp");
  EXPECT_TRUE(F.lastOk());
  EXPECT_FALSE(S.FastPath);
}

//===----------------------------------------------------------------------===//
// Property: error-severity diagnostics never fire on accepted images,
// on the sequential, shard, and incremental paths alike.
//===----------------------------------------------------------------------===//

TEST(LintProperty, ErrorsNeverFireOnAcceptedImages) {
  core::RockSalt V;
  for (uint64_t Seed : {2, 5, 11, 29, 47, 83}) {
    nacl::WorkloadOptions O;
    O.TargetBytes = 1536;
    O.Seed = Seed;
    std::vector<uint8_t> Img = nacl::generateWorkload(O);
    ASSERT_TRUE(V.verify(Img)) << "seed " << Seed;

    CfgLintResult Seq = lintImage(tables(), Img);
    EXPECT_EQ(Seq.Errors, 0u) << "seed " << Seed << "\n" << Seq.render();
    CfgLintResult Par =
        lintImageFromShards(tables(), Img.data(), uint32_t(Img.size()), 4);
    EXPECT_EQ(Par.Errors, 0u) << "seed " << Seed;

    // Incremental path: identity patches and a bundle-aligned NOP-sled
    // overwrite keep exercising relint; whenever the verifier accepts,
    // the maintained lint must hold zero errors too (and stay
    // bit-identical to fresh throughout, accepted or not).
    IncrementalFixture F(Img, 128);
    std::vector<uint8_t> Same(Img.begin() + 64, Img.begin() + 64 + 16);
    IncrementalLinter::Summary S1 =
        F.patchAndCheck(64, Same, "identity patch");
    EXPECT_TRUE(F.lastOk()) << "seed " << Seed;
    EXPECT_EQ(S1.Errors, 0u) << "seed " << Seed;

    uint32_t SledAt = (uint32_t(Img.size()) / 2) & ~31u;
    IncrementalLinter::Summary S2 =
        F.patchAndCheck(SledAt, std::vector<uint8_t>(32, 0x90), "nop sled");
    if (F.lastOk())
      EXPECT_EQ(S2.Errors, 0u) << "seed " << Seed;
  }
}

} // namespace
