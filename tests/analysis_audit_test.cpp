//===- tests/analysis_audit_test.cpp --------------------------*- C++ -*-===//
//
// The policy meta-verifier (analysis/PolicyAudit.h) as a CI gate: the
// shipped tables must discharge every obligation, and deliberately
// corrupted grammars must fail the right obligation with a byte-exact
// counterexample witness — proving the analyses decide the properties,
// not merely rubber-stamp them.
//
//===----------------------------------------------------------------------===//

#include "analysis/PolicyAudit.h"

#include "core/Verifier.h"

#include <gtest/gtest.h>

using namespace rocksalt;
using namespace rocksalt::analysis;

namespace {

/// Whole-string acceptance under a policy table.
bool accepts(const re::Dfa &D, const std::vector<uint8_t> &Bytes) {
  uint16_t S = static_cast<uint16_t>(D.Start);
  for (uint8_t B : Bytes)
    S = D.step(S, B);
  return D.Accepts[S];
}

/// The decoder references, built once for the whole suite (the audit
/// itself is milliseconds; the decoder strip dominates).
const DecoderDfas &decoders() {
  static DecoderDfas X = buildDecoderDfas();
  return X;
}

//===----------------------------------------------------------------------===//
// The gate: shipped tables discharge every obligation.
//===----------------------------------------------------------------------===//

TEST(PolicyAudit, ShippedTablesPass) {
  AuditReport R = auditPolicy(core::policyTables(), decoders());
  EXPECT_TRUE(R.Pass) << R.render();
  // Every individual obligation present and passing.
  for (const char *Check :
       {"disjoint(MaskedJump,NoControlFlow)", "disjoint(MaskedJump,DirectJump)",
        "disjoint(NoControlFlow,DirectJump)", "decodes(NoControlFlow)",
        "decodes(DirectJump)", "decodes(MaskedJump)", "health(MaskedJump)",
        "health(NoControlFlow)", "health(DirectJump)",
        "minimize-preserves(MaskedJump)", "minimize-preserves(NoControlFlow)",
        "minimize-preserves(DirectJump)", "state-bound"}) {
    const AuditFinding *F = R.find(Check);
    ASSERT_NE(F, nullptr) << Check;
    EXPECT_TRUE(F->Pass) << Check << ": " << F->Detail;
  }
  ASSERT_EQ(R.Tables.size(), 3u);
  // The shipped tables are already minimized (core/Policy.cpp), so the
  // audit's raw and minimized counts coincide at the pinned constants.
  EXPECT_EQ(R.Tables[0].RawStates, core::MaskedJumpStates);
  EXPECT_EQ(R.Tables[1].RawStates, core::NoControlFlowStates);
  EXPECT_EQ(R.Tables[2].RawStates, core::DirectJumpStates);
  EXPECT_EQ(R.Tables[0].MinStates, core::MaskedJumpStates);
  EXPECT_EQ(R.Tables[1].MinStates, core::NoControlFlowStates);
  EXPECT_EQ(R.Tables[2].MinStates, core::DirectJumpStates);
  EXPECT_LE(R.LargestMinimized, PaperMaxPolicyStates);
}

TEST(PolicyAudit, ShippedEntryPointMatches) {
  AuditReport R = auditShippedPolicy();
  EXPECT_TRUE(R.Pass) << R.render();
  EXPECT_FALSE(R.render().empty());
}

//===----------------------------------------------------------------------===//
// Corrupted grammars fail the right obligation, with a real witness.
//===----------------------------------------------------------------------===//

TEST(PolicyAudit, OverlapCorruptionYieldsByteExactWitness) {
  // Corrupt NoControlFlow to also contain all of DirectJump: the
  // disjoint(NoControlFlow,DirectJump) obligation must fail, and the
  // witness must be the shortest lexicographically-least shared string —
  // jcc rel8 with the smallest opcode and displacement: 70 00.
  re::Factory F;
  core::PolicyGrammars G = core::buildPolicyGrammars(F);
  core::PolicyTables T;
  T.MaskedJump = re::buildDfa(F, G.MaskedJumpRe);
  T.NoControlFlow =
      re::buildDfa(F, F.alt(G.NoControlFlowRe, G.DirectJumpRe));
  T.DirectJump = re::buildDfa(F, G.DirectJumpRe);

  AuditReport R = auditPolicy(T, decoders());
  EXPECT_FALSE(R.Pass);
  const AuditFinding *D = R.find("disjoint(NoControlFlow,DirectJump)");
  ASSERT_NE(D, nullptr);
  EXPECT_FALSE(D->Pass);
  ASSERT_EQ(D->Witness.size(), 2u) << D->Detail;
  EXPECT_EQ(D->Witness[0], 0x70u);
  EXPECT_EQ(D->Witness[1], 0x00u);
  // The witness really is in both languages — replay it.
  EXPECT_TRUE(accepts(T.NoControlFlow, D->Witness));
  EXPECT_TRUE(accepts(T.DirectJump, D->Witness));
  // The counterexample family enumerates the violation class: the first
  // member is the witness itself and every member replays in both
  // languages.
  ASSERT_FALSE(D->Family.empty());
  EXPECT_EQ(D->Family[0], D->Witness);
  for (const std::vector<uint8_t> &S : D->Family) {
    EXPECT_TRUE(accepts(T.NoControlFlow, S));
    EXPECT_TRUE(accepts(T.DirectJump, S));
  }
  EXPECT_NE(D->Detail.find("family:"), std::string::npos) << D->Detail;
  // The untouched obligations still pass.
  const AuditFinding *M = R.find("disjoint(MaskedJump,DirectJump)");
  ASSERT_NE(M, nullptr);
  EXPECT_TRUE(M->Pass);
}

TEST(PolicyAudit, DecoderDriftYieldsWitness) {
  // Extend NoControlFlow with a byte the decoder grammar does not know
  // (0xF1, ICEBP — absent from the modeled subset): decodes() must fail
  // and the witness must be exactly that byte.
  re::Factory F;
  core::PolicyGrammars G = core::buildPolicyGrammars(F);
  core::PolicyTables T;
  T.MaskedJump = re::buildDfa(F, G.MaskedJumpRe);
  T.NoControlFlow = re::buildDfa(F, F.alt(G.NoControlFlowRe, F.byteLit(0xF1)));
  T.DirectJump = re::buildDfa(F, G.DirectJumpRe);

  AuditReport R = auditPolicy(T, decoders());
  EXPECT_FALSE(R.Pass);
  const AuditFinding *D = R.find("decodes(NoControlFlow)");
  ASSERT_NE(D, nullptr);
  EXPECT_FALSE(D->Pass);
  ASSERT_EQ(D->Witness.size(), 1u) << D->Detail;
  EXPECT_EQ(D->Witness[0], 0xF1u);
  EXPECT_TRUE(accepts(T.NoControlFlow, D->Witness));
  EXPECT_FALSE(accepts(decoders().One, D->Witness));
  // Every family member is policy-accepted yet undecodable (here the
  // injected byte is the entire difference language).
  ASSERT_FALSE(D->Family.empty());
  EXPECT_EQ(D->Family[0], D->Witness);
  for (const std::vector<uint8_t> &S : D->Family) {
    EXPECT_TRUE(accepts(T.NoControlFlow, S));
    EXPECT_FALSE(accepts(decoders().One, S));
  }
}

TEST(PolicyAudit, DeadStateCorruptionFailsHealth) {
  // Unflag the dead sink in a copy of the shipped DirectJump table: the
  // health obligation must notice the dead-unflagged state.
  core::PolicyTables T;
  {
    re::Factory F;
    core::PolicyGrammars G = core::buildPolicyGrammars(F);
    T.MaskedJump = re::buildDfa(F, G.MaskedJumpRe);
    T.NoControlFlow = re::buildDfa(F, G.NoControlFlowRe);
    T.DirectJump = re::buildDfa(F, G.DirectJumpRe);
  }
  for (size_t S = 0; S < T.DirectJump.numStates(); ++S)
    T.DirectJump.Rejects[S] = 0;

  AuditReport R = auditPolicy(T, decoders());
  EXPECT_FALSE(R.Pass);
  const AuditFinding *H = R.find("health(DirectJump)");
  ASSERT_NE(H, nullptr);
  EXPECT_FALSE(H->Pass);
  // Health of the untouched tables is unaffected.
  const AuditFinding *H2 = R.find("health(NoControlFlow)");
  ASSERT_NE(H2, nullptr);
  EXPECT_TRUE(H2->Pass);
}

TEST(PolicyAudit, RenderMentionsEveryFinding) {
  AuditReport R = auditPolicy(core::policyTables(), decoders());
  std::string Text = R.render();
  for (const AuditFinding &F : R.Findings)
    EXPECT_NE(Text.find(F.Check), std::string::npos) << F.Check;
  EXPECT_NE(Text.find("PASS"), std::string::npos);
}

TEST(PolicyAudit, HexBytesRendering) {
  EXPECT_EQ(hexBytes({}), "");
  EXPECT_EQ(hexBytes({0x70, 0x00}), "70 00");
  EXPECT_EQ(hexBytes({0xFF, 0xE0}), "ff e0");
}

} // namespace
