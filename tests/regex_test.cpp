//===- tests/regex_test.cpp -----------------------------------*- C++ -*-===//
//
// Tests for the hash-consed bit-level regex library: smart-constructor
// reductions, derivatives, the generalized Deriv of section 4.1, and the
// canonical-Void emptiness property the DFA builder relies on.
//
//===----------------------------------------------------------------------===//

#include "regex/Regex.h"
#include "support/Oracle.h"

#include <gtest/gtest.h>

#include <set>

using namespace rocksalt::re;
using rocksalt::Rng;

namespace {

/// Reference matcher: runs the derivative pipeline bit by bit. Used as the
/// executable denotation for property tests.
bool matches(Factory &F, Regex R, const std::vector<bool> &Bits) {
  for (bool B : Bits) {
    R = F.deriv(R, B);
    if (R == F.voidRe())
      return false;
  }
  return F.nullable(R);
}

std::vector<bool> randomBits(Rng &R, size_t Len) {
  std::vector<bool> Out(Len);
  for (size_t I = 0; I < Len; ++I)
    Out[I] = R.flip();
  return Out;
}

} // namespace

TEST(Regex, SmartConstructorReductions) {
  Factory F;
  Regex A = F.bits("1010");
  EXPECT_EQ(F.cat(A, F.epsRe()), A);
  EXPECT_EQ(F.cat(F.epsRe(), A), A);
  EXPECT_EQ(F.cat(A, F.voidRe()), F.voidRe());
  EXPECT_EQ(F.cat(F.voidRe(), A), F.voidRe());
  EXPECT_EQ(F.alt(A, F.voidRe()), A);
  EXPECT_EQ(F.alt(F.voidRe(), A), A);
  EXPECT_EQ(F.alt(A, A), A);
  EXPECT_EQ(F.star(F.star(A)), F.star(A));
  EXPECT_EQ(F.star(F.voidRe()), F.epsRe());
  EXPECT_EQ(F.star(F.epsRe()), F.epsRe());
}

TEST(Regex, HashConsingGivesPointerEquality) {
  Factory F;
  Regex A = F.cat(F.bit(true), F.bit(false));
  Regex B = F.cat(F.bit(true), F.bit(false));
  EXPECT_EQ(A, B);
  Regex C = F.alt(F.bits("01"), F.bits("10"));
  Regex D = F.alt(F.bits("10"), F.bits("01")); // Alt is commutative
  EXPECT_EQ(C, D);
}

TEST(Regex, CatIsRightNested) {
  Factory F;
  Regex A = F.cat(F.cat(F.bit(true), F.bit(false)), F.bit(true));
  Regex B = F.cat(F.bit(true), F.cat(F.bit(false), F.bit(true)));
  EXPECT_EQ(A, B);
}

TEST(Regex, NullableBasics) {
  Factory F;
  EXPECT_TRUE(F.nullable(F.epsRe()));
  EXPECT_FALSE(F.nullable(F.voidRe()));
  EXPECT_FALSE(F.nullable(F.bit(true)));
  EXPECT_FALSE(F.nullable(F.any()));
  EXPECT_TRUE(F.nullable(F.star(F.bit(true))));
  EXPECT_TRUE(F.nullable(F.alt(F.bit(false), F.epsRe())));
  EXPECT_FALSE(F.nullable(F.cat(F.bit(true), F.star(F.any()))));
  EXPECT_TRUE(
      F.nullable(F.cat(F.star(F.bit(true)), F.star(F.bit(false)))));
}

TEST(Regex, DerivativeOfLiteral) {
  Factory F;
  Regex R = F.bits("101");
  R = F.deriv(R, true);
  EXPECT_NE(R, F.voidRe());
  R = F.deriv(R, false);
  R = F.deriv(R, true);
  EXPECT_TRUE(F.nullable(R));
  EXPECT_EQ(F.deriv(R, true), F.voidRe());
}

TEST(Regex, DerivativeMismatchIsVoid) {
  Factory F;
  EXPECT_EQ(F.deriv(F.bits("11"), false), F.voidRe());
}

TEST(Regex, ByteLitMatchesExactlyItsByte) {
  Factory F;
  Regex R = F.byteLit(0xE8);
  for (unsigned B = 0; B < 256; ++B) {
    Regex D = F.derivByte(R, static_cast<uint8_t>(B));
    if (B == 0xE8)
      EXPECT_TRUE(F.nullable(D));
    else
      EXPECT_EQ(D, F.voidRe()) << B;
  }
}

TEST(Regex, MatchesAgainstHandExamples) {
  Factory F;
  // (01)* — even-length alternating strings starting 0.
  Regex R = F.star(F.bits("01"));
  EXPECT_TRUE(matches(F, R, {}));
  EXPECT_TRUE(matches(F, R, {false, true}));
  EXPECT_TRUE(matches(F, R, {false, true, false, true}));
  EXPECT_FALSE(matches(F, R, {false}));
  EXPECT_FALSE(matches(F, R, {true, false}));
}

TEST(Regex, AnyBitsLengthCheck) {
  Factory F;
  Regex R = F.anyBits(5);
  Rng Rand(3);
  EXPECT_FALSE(matches(F, R, randomBits(Rand, 4)));
  EXPECT_TRUE(matches(F, R, randomBits(Rand, 5)));
  EXPECT_FALSE(matches(F, R, randomBits(Rand, 6)));
}

TEST(Regex, CanonicalVoidMeansEmptyLanguage) {
  // Composite non-Void canonical regexes always accept something; this is
  // the invariant the DFA reject-state detection relies on. We test it by
  // generating random regexes and checking that non-Void ones match at
  // least one string found by guided search.
  Factory F;
  Rng R(17);

  std::function<Regex(int)> Gen = [&](int Depth) -> Regex {
    if (Depth == 0) {
      switch (R.below(4)) {
      case 0:
        return F.epsRe();
      case 1:
        return F.bit(R.flip());
      case 2:
        return F.any();
      default:
        return F.voidRe();
      }
    }
    switch (R.below(4)) {
    case 0:
      return F.cat(Gen(Depth - 1), Gen(Depth - 1));
    case 1:
      return F.alt(Gen(Depth - 1), Gen(Depth - 1));
    case 2:
      return F.star(Gen(Depth - 1));
    default:
      return Gen(Depth - 1);
    }
  };

  // Exact emptiness test: BFS over the (finite) derivative graph looking
  // for any nullable state.
  auto FindWitness = [&](Regex Root) -> bool {
    std::vector<Regex> Queue = {Root};
    std::set<Regex> Seen(Queue.begin(), Queue.end());
    for (size_t I = 0; I < Queue.size() && I < 10000; ++I) {
      Regex Cur = Queue[I];
      if (F.nullable(Cur))
        return true;
      for (bool B : {false, true}) {
        Regex D = F.deriv(Cur, B);
        if (D != F.voidRe() && Seen.insert(D).second)
          Queue.push_back(D);
      }
    }
    return false;
  };

  for (int I = 0; I < 300; ++I) {
    Regex G = Gen(4);
    if (G == F.voidRe())
      continue;
    EXPECT_TRUE(FindWitness(G)) << Factory::print(G);
  }
}

TEST(Regex, DerivAgreesWithDenotationRandomly) {
  // For random regexes g and random strings s: s in [[g]] iff the
  // iterated derivative is nullable, and (b::s) in [[g]] iff s in
  // [[deriv_b g]] — the defining property of derivatives.
  Factory F;
  Rng R(23);
  Regex G = F.alt(F.cat(F.bits("10"), F.star(F.any())),
                  F.cat(F.star(F.bits("01")), F.bits("11")));
  for (int I = 0; I < 500; ++I) {
    std::vector<bool> S = randomBits(R, R.below(10));
    bool B = R.flip();
    std::vector<bool> BS;
    BS.push_back(B);
    BS.insert(BS.end(), S.begin(), S.end());
    EXPECT_EQ(matches(F, G, BS), matches(F, F.deriv(G, B), S));
  }
}

//===----------------------------------------------------------------------===//
// Generalized Deriv (section 4.1) and prefix-disjointness.
//===----------------------------------------------------------------------===//

TEST(RegexDeriv, EpsIsIdentity) {
  Factory F;
  Regex G = F.bits("1100");
  EXPECT_EQ(F.derivRe(G, F.epsRe()).value(), G);
}

TEST(RegexDeriv, LiteralPrefixPeelsOff) {
  Factory F;
  Regex G = F.bits("1100");
  Regex D = F.derivRe(G, F.bits("11")).value();
  EXPECT_EQ(D, F.bits("00"));
}

TEST(RegexDeriv, DisjointLiteralsGiveVoid) {
  Factory F;
  EXPECT_EQ(F.derivRe(F.bits("1100"), F.bits("10")).value(), F.voidRe());
}

TEST(RegexDeriv, AnyUnionsBothBranches) {
  Factory F;
  // Deriv (0.|1.) Any should match any single remaining bit.
  Regex G = F.alt(F.cat(F.bit(false), F.any()), F.cat(F.bit(true), F.any()));
  Regex D = F.derivRe(G, F.any()).value();
  EXPECT_TRUE(matches(F, D, {true}));
  EXPECT_TRUE(matches(F, D, {false}));
  EXPECT_FALSE(matches(F, D, {}));
}

TEST(RegexDeriv, StarOperandUnsupported) {
  Factory F;
  EXPECT_FALSE(F.derivRe(F.bits("1"), F.star(F.bit(true))).has_value());
}

TEST(RegexDeriv, DetectsPrefixOverlap) {
  Factory F;
  // "10" is a prefix of "101".
  EXPECT_FALSE(F.prefixDisjoint(F.bits("101"), F.bits("10")).value());
  EXPECT_FALSE(F.prefixDisjoint(F.bits("10"), F.bits("101")).value());
  // Identical patterns overlap.
  EXPECT_FALSE(F.prefixDisjoint(F.bits("10"), F.bits("10")).value());
  // Genuinely disjoint.
  EXPECT_TRUE(F.prefixDisjoint(F.bits("10"), F.bits("01")).value());
  EXPECT_TRUE(F.prefixDisjoint(F.bits("1"), F.bits("0")).value());
}

TEST(RegexDeriv, FieldOverlapDetected) {
  Factory F;
  // A 2-bit field overlaps any specific 2-bit literal.
  EXPECT_FALSE(F.prefixDisjoint(F.anyBits(2), F.bits("01")).value());
  // Two 8-bit byte literals with different values are disjoint.
  EXPECT_TRUE(F.prefixDisjoint(F.byteLit(0x00), F.byteLit(0x01)).value());
}

TEST(RegexDeriv, CheckUnambiguousAcceptsDisjointAlt) {
  Factory F;
  Regex G = F.altN({F.byteLit(1), F.byteLit(2), F.byteLit(3)});
  EXPECT_TRUE(F.checkUnambiguous(G).Unambiguous);
}

TEST(RegexDeriv, CheckUnambiguousRejectsOverlap) {
  Factory F;
  // Simulates the paper's flipped-MOV-bit bug: two alternatives that share
  // an encoding.
  Regex G = F.altN({F.cat(F.byteLit(0x88), F.anyByte()),
                    F.cat(F.byteLit(0x88), F.anyBits(8))});
  // These are the same language; hash-consing may collapse them, so build
  // a subtler overlap: a literal and a field.
  Regex H = F.altN({F.cat(F.byteLit(0x88), F.byteLit(0x01)),
                    F.cat(F.byteLit(0x88), F.anyByte())});
  auto Rep = F.checkUnambiguous(H);
  EXPECT_FALSE(Rep.Unambiguous);
  EXPECT_FALSE(Rep.Detail.empty());
  (void)G;
}

TEST(RegexDeriv, VariableLengthAlternativesDisjointByTagBits) {
  Factory F;
  // Mimics modrm: tag 00 + 3 bits vs tag 11 + 8 bits — different lengths
  // but distinguished by the leading tag, so unambiguous.
  Regex A = F.cat(F.bits("00"), F.anyBits(3));
  Regex B = F.cat(F.bits("11"), F.anyBits(8));
  EXPECT_TRUE(F.prefixDisjoint(A, B).value());
}

TEST(Regex, PrintProducesSomethingReadable) {
  Factory F;
  Regex G = F.alt(F.bits("10"), F.star(F.any()));
  std::string S = Factory::print(G);
  EXPECT_FALSE(S.empty());
}
