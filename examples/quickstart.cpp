//===- examples/quickstart.cpp ---------------------------------*- C++ -*-===//
//
// Quickstart: the whole RockSalt pipeline in one page.
//
//  1. Assemble a small sandbox-compliant program with the NaCl-izing
//     assembler (bundles, masked jumps, label fixups).
//  2. Verify it with the RockSalt checker (DFA tables + <100-line core).
//  3. Load it into the segmented x86 model and execute it under the
//     trusted runtime, which services hypercalls (HLT + EAX).
//
// Build & run:  ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "nacl/Assembler.h"
#include "nacl/TrustedRuntime.h"
#include "sem/Cpu.h"

#include <cstdio>

using namespace rocksalt;
using x86::Addr;
using x86::Instr;
using x86::Opcode;
using x86::Operand;
using x86::Reg;

namespace {

Instr movImm(Reg R, uint32_t V) {
  Instr I;
  I.Op = Opcode::MOV;
  I.Op1 = Operand::reg(R);
  I.Op2 = Operand::imm(V);
  return I;
}

Instr binop(Opcode Op, Operand A, Operand B) {
  Instr I;
  I.Op = Op;
  I.Op1 = A;
  I.Op2 = B;
  return I;
}

/// emit "putchar(C)": mov eax, 1 ; mov ebx, C ; hlt.
void putChar(nacl::Assembler &A, char C) {
  A.emit(movImm(Reg::EAX, nacl::TrustedRuntime::SvcPutChar));
  A.emit(movImm(Reg::EBX, static_cast<uint8_t>(C)));
  A.hlt();
}

} // namespace

int main() {
  // --- 1. assemble ---------------------------------------------------------
  nacl::Assembler A;

  // Compute 6 * 7 into EDX the long way (a loop), then print "42\n" by
  // converting the two digits.
  A.emit(movImm(Reg::EDX, 0)); // accumulator
  A.emit(movImm(Reg::ECX, 6)); // counter
  A.alignedLabel("loop");
  A.emit(binop(Opcode::ADD, Operand::reg(Reg::EDX), Operand::imm(7)));
  {
    Instr Dec;
    Dec.Op = Opcode::DEC;
    Dec.Op1 = Operand::reg(Reg::ECX);
    A.emit(Dec);
  }
  A.jccTo(x86::Cond::NE, "loop");

  // Save 42 to data memory, then print its decimal digits.
  A.emit(binop(Opcode::MOV, Operand::mem(Addr::disp(0x100)),
               Operand::reg(Reg::EDX)));
  putChar(A, '0' + 4); // (we know the digits; a real program would divide)
  putChar(A, '0' + 2);
  putChar(A, '\n');

  // exit(42): mov eax, 0 ; mov ebx, edx... ebx must hold the code.
  A.emit(binop(Opcode::MOV, Operand::reg(Reg::EBX),
               Operand::mem(Addr::disp(0x100))));
  A.emit(movImm(Reg::EAX, nacl::TrustedRuntime::SvcExit));
  A.hlt();

  std::vector<uint8_t> Code = A.finish();
  std::printf("assembled %zu bytes (%zu bundles)\n", Code.size(),
              Code.size() / core::BundleSize);

  // --- 2. verify ------------------------------------------------------------
  core::RockSalt Checker;
  bool Ok = Checker.verify(Code);
  std::printf("rocksalt verdict: %s\n", Ok ? "ACCEPT" : "REJECT");
  if (!Ok)
    return 1;

  // --- 3. execute in the sandbox --------------------------------------------
  sem::Cpu Cpu;
  Cpu.configureSandbox(/*CodeBase=*/0x10000,
                       static_cast<uint32_t>(Code.size()),
                       /*DataBase=*/0x400000, /*DataSize=*/0x10000, Code);

  nacl::TrustedRuntime Runtime;
  nacl::TrustedRuntime::RunResult R = Runtime.run(Cpu, 100000);

  std::printf("program output: %s", R.Output.c_str());
  std::printf("exit code: %u after %llu instructions\n", R.ExitCode,
              static_cast<unsigned long long>(R.Steps));
  return R.Exited && R.ExitCode == 42 ? 0 : 1;
}
