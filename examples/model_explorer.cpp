//===- examples/model_explorer.cpp -----------------------------*- C++ -*-===//
//
// A window into the x86 model (paper section 2): give it hex bytes and
// it shows every stage of the pipeline —
//
//   bytes --decoder--> abstract syntax --translator--> RTL --interp--> state
//
// Usage:
//   ./examples/model_explorer                # demo instructions
//   ./examples/model_explorer 83 e0 e0       # your own bytes
//
//===----------------------------------------------------------------------===//

#include "sem/Cpu.h"
#include "sem/Translate.h"
#include "x86/FastDecoder.h"
#include "x86/GrammarDecoder.h"
#include "x86/Printer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace rocksalt;

namespace {

void explore(const std::vector<uint8_t> &Bytes) {
  std::printf("bytes:");
  for (uint8_t B : Bytes)
    std::printf(" %02x", B);
  std::printf("\n");

  // Stage 1: both decoders.
  auto G = x86::grammarDecode(Bytes);
  auto F = x86::fastDecode(Bytes);
  if (!G || !F) {
    std::printf("  decode: %s\n\n",
                (!G && !F) ? "rejected by both decoders (not in the model)"
                           : "DECODER DISAGREEMENT — please file a bug");
    return;
  }
  std::printf("  grammar decoder: %s  (%u bytes)\n",
              x86::printInstr(G->I).c_str(), G->Length);
  std::printf("  fast decoder:    %s  (%s)\n", x86::printInstr(F->I).c_str(),
              G->I == F->I ? "agrees" : "DISAGREES");

  // Stage 2: RTL translation.
  sem::Translation T = sem::translate(G->I, G->Length);
  std::printf("  rtl (%zu ops, %u locals):\n", T.Prog.size(), T.NumVars);
  std::string Rtl = rtl::printRtlProgram(T.Prog);
  // Indent each line.
  size_t Start = 0;
  int Shown = 0;
  while (Start < Rtl.size() && Shown < 24) {
    size_t End = Rtl.find('\n', Start);
    std::printf("    %s\n", Rtl.substr(Start, End - Start).c_str());
    Start = End + 1;
    ++Shown;
  }
  if (Start < Rtl.size())
    std::printf("    ... (%zu more)\n",
                std::count(Rtl.begin() + Start, Rtl.end(), '\n'));

  // Stage 3: execute against a scratch machine.
  sem::Cpu C;
  C.configureSandbox(0x1000, 0x1000, 0x100000, 0x10000, Bytes);
  C.M.Regs[0] = 0x11111111;
  C.M.Regs[3] = 0x00000040;
  rtl::Status St = C.step();
  std::printf("  after one step: eax=%08x ebx=%08x esp=%08x pc=%x "
              "CF=%d ZF=%d SF=%d OF=%d status=%s\n\n",
              C.M.Regs[0], C.M.Regs[3], C.M.Regs[4], C.M.Pc, C.M.Flags[0],
              C.M.Flags[3], C.M.Flags[4], C.M.Flags[8],
              St == rtl::Status::Running  ? "running"
              : St == rtl::Status::Fault  ? "fault"
              : St == rtl::Status::Halted ? "halted"
                                          : "error");
}

} // namespace

int main(int argc, char **argv) {
  if (argc > 1) {
    std::vector<uint8_t> Bytes;
    for (int I = 1; I < argc; ++I)
      Bytes.push_back(
          static_cast<uint8_t>(std::strtoul(argv[I], nullptr, 16)));
    explore(Bytes);
    return 0;
  }

  std::printf("=== the RockSalt x86 model, stage by stage ===\n\n");
  // The NaCl mask instruction.
  explore({0x83, 0xE0, 0xE0});
  // An ALU op with a scaled-index memory operand (Figure 4 territory).
  explore({0x01, 0x44, 0x9B, 0x10});
  // A conditional move.
  explore({0x0F, 0x44, 0xC3});
  // rep movsd — the guarded-iteration translation.
  explore({0xF3, 0xA5});
  // A division (guarded #DE fault).
  explore({0xF7, 0xF3});
  // Something outside the model.
  explore({0x0F, 0x31}); // rdtsc
  return 0;
}
