//===- examples/attack_gallery.cpp -----------------------------*- C++ -*-===//
//
// A gallery of sandbox-escape attempts against the aligned NaCl policy
// (paper sections 1 and 3), each one a real exploit pattern:
//
//   * the overlapping-instruction attack that motivates requirement 2
//     (variable-length decoding lets bytes parse differently mid-stream);
//   * unmasked indirect jumps, stripped masks, wrong-register masks;
//   * RET (an indirect jump through memory the attacker controls);
//   * direct jumps over the mask of a masked pair;
//   * segment-register tampering and system-call insertion.
//
// For each exhibit the RockSalt checker must reject; for one of them we
// also *execute* the attack under the sandbox monitor (pretending the
// checker had accepted it) to show the policy violation actually happen.
//
//===----------------------------------------------------------------------===//

#include "core/SandboxMonitor.h"
#include "core/Verifier.h"
#include "x86/FastDecoder.h"
#include "x86/Printer.h"

#include <cstdio>

using namespace rocksalt;

namespace {

struct Exhibit {
  const char *Name;
  const char *Story;
  std::vector<uint8_t> Code;
};

std::vector<uint8_t> pad32(std::vector<uint8_t> V) {
  while (V.size() % 32)
    V.push_back(0x90);
  return V;
}

void disassembleAround(const std::vector<uint8_t> &Code, uint32_t Pos,
                       int Count) {
  uint32_t P = Pos;
  for (int I = 0; I < Count && P < Code.size(); ++I) {
    auto D = x86::fastDecode(Code.data() + P, Code.size() - P);
    if (!D) {
      std::printf("    %04x: (undecodable)\n", P);
      return;
    }
    std::printf("    %04x: %s\n", P, x86::printInstr(D->I).c_str());
    P += D->Length;
  }
}

} // namespace

int main() {
  std::vector<Exhibit> Gallery;

  // 1. The classic hidden-instruction attack: an immediate that, parsed
  // from the middle, is an `int 0x80`. The initial parse is innocent; a
  // return-address overwrite into the middle would not be.
  Gallery.push_back(
      {"hidden syscall in an immediate",
       "mov eax, 0x80CD9090 contains 'int 0x80' at offset +3; jumping "
       "into the middle of the mov would execute it. The aligned policy "
       "kills this by construction: the direct jump below targets the "
       "interior, so the image is rejected.",
       pad32({
           0xE9, 0x03, 0x00, 0x00, 0x00, // jmp +3 => byte 8, inside the mov
           0xB8, 0x90, 0x90, 0xCD, 0x80, // mov eax, 0x80CD9090
       })});

  // 2. Bare indirect jump.
  Gallery.push_back({"unmasked computed jump",
                     "jmp *eax with no mask: the target is any address "
                     "the untrusted code chooses.",
                     pad32({0xB8, 0x0D, 0x00, 0x00, 0x00, 0xFF, 0xE0})});

  // 3. Mask of the wrong register.
  Gallery.push_back({"mask/jump register mismatch",
                     "and eax, -32 guards nothing when the jump goes "
                     "through ebx.",
                     pad32({0x83, 0xE0, 0xE0, 0xFF, 0xE3})});

  // 4. Jump over the mask.
  Gallery.push_back(
      {"skip the mask",
       "a direct jump targets the jmp half of a masked pair, bypassing "
       "the AND (policy requirement 5).",
       pad32({0xE9, 3, 0, 0, 0, 0x83, 0xE3, 0xE0, 0xFF, 0xE3})});

  // 5. RET.
  Gallery.push_back({"return-address hijack",
                     "ret is an indirect jump through attacker-writable "
                     "stack memory; NaCl code must pop+mask instead.",
                     pad32({0x58, 0xC3})}); // pop eax ; ret

  // 6. Segment tampering.
  Gallery.push_back({"segment reload",
                     "mov ds, ax retargets every subsequent data access; "
                     "the checker must never let a segment register "
                     "change.",
                     pad32({0x66, 0xB8, 0x18, 0x00, 0x8E, 0xD8})});

  // 7. Straddling pair.
  Gallery.push_back({"masked pair across a bundle boundary",
                     "if the pair straddles the 32-byte boundary, an "
                     "aligned indirect jump can land between the mask "
                     "and the jump.",
                     [] {
                       std::vector<uint8_t> C(29, 0x90);
                       C.insert(C.end(), {0x83, 0xE3, 0xE0, 0xFF, 0xE3});
                       return pad32(C);
                     }()});

  core::RockSalt Checker;
  int Rejected = 0;
  for (size_t I = 0; I < Gallery.size(); ++I) {
    const Exhibit &E = Gallery[I];
    bool Ok = Checker.verify(E.Code);
    std::printf("[%zu] %s — %s\n", I + 1, E.Name,
                Ok ? "ACCEPTED (!!)" : "rejected");
    std::printf("    %s\n", E.Story);
    disassembleAround(E.Code, 0, 3);
    if (!Ok)
      ++Rejected;
    std::printf("\n");
  }
  std::printf("%d/%zu attacks rejected by the checker\n\n", Rejected,
              Gallery.size());

  // Now show what exhibit 2 would *do* if a (buggy) checker accepted it:
  // the monitor catches the unaligned transfer the instant it happens.
  const Exhibit &Attack = Gallery[1];
  core::CheckResult Fake;
  Fake.Ok = true;
  Fake.Valid.assign(Attack.Code.size(), 0);
  Fake.Valid[0] = Fake.Valid[5] = 1;
  for (size_t I = 7; I < Attack.Code.size(); I += 1)
    Fake.Valid[I] = (I % 32) == 0; // only bundle starts
  Fake.Target.assign(Attack.Code.size(), 0);
  Fake.PairJmp.assign(Attack.Code.size(), 0);

  sem::Cpu C;
  C.configureSandbox(0x10000, static_cast<uint32_t>(Attack.Code.size()),
                     0x400000, 0x10000, Attack.Code);
  core::SandboxMonitor Mon(C, Fake, 0x10000,
                           static_cast<uint32_t>(Attack.Code.size()));
  auto V = Mon.runMonitored(100);
  if (V)
    std::printf("monitor (simulating a buggy checker that accepted #2): "
                "violation at step %llu: %s\n",
                static_cast<unsigned long long>(V->Step), V->What.c_str());
  else
    std::printf("monitor: no violation (unexpected)\n");

  return Rejected == int(Gallery.size()) && V ? 0 : 1;
}
