//===- examples/validator_cli.cpp ------------------------------*- C++ -*-===//
//
// An ncval-style command-line validator — the form RockSalt ships in
// for the NaCl runtime (paper section 3.3 modified the ncval tool to
// call RockSalt's verifier). Reads raw code images and reports the
// verdicts of the verifiers in this repository, with optional
// disassembly of the checker's parse.
//
// With --jobs N the verification routes through the service layer: a
// VerifierPool of N workers batch-verifies multiple images, and a
// single image is chunk-parallelized by ParallelVerifier. --stats dumps
// the service metrics (counters and histograms) after the run.
//
// --explain shrinks a rejected image to the minimal byte sequence that
// is still rejected for the same reason (the fuzz harness's
// delta-debugging minimizer) and prints it — the offending construct on
// a nop sled instead of a needle in a 4 KB image — followed by the
// violation families: the k shortest strings each policy table *does*
// accept (regex kShortestAccepted), so the rejection sits next to the
// nearest constructs the policy would have allowed.
//
// --lint recovers the control-flow graph the policy implies for each
// image and prints severity-graded diagnostics (see analysis/CfgLint.h);
// --lint-json prints the same diagnostics machine-readably, one JSON
// object per line (kind, severity, offset, containing CFG node span and
// reaching guard), for editor and CI integration.
// --audit runs the policy meta-verifier over the shipped DFA tables
// (disjointness, decoder inclusion, health, minimization) and exits
// nonzero if any obligation fails.
//
// --isa x86|mips selects which registry entry (core/TableRegistry.h)
// the table-facing modes operate on: --isa mips checks images with the
// MIPS policy checker (mips/MipsPolicy.h), audits the MIPS tables under
// the same 13 obligations, and dumps/loads MIPS-tagged RSTB blobs.
// x86-only diagnostics (--disassemble, --explain, --lint) are rejected
// under --isa mips.
//
// --dump-tables serializes the selected ISA's tables into the versioned
// "RSTB" format (regex/TableIO.h), verifies the in-process round-trip
// is bit-identical, and prints per-table stats plus the content hash.
// --tables-out FILE also writes the blob; --expect-hash HEX exits
// nonzero unless the content hash matches — the CI drift gate. --raw
// dumps the unminimized tables instead (a distinct content hash, used
// by the late-adoption regression gate).
//
// --serve turns the process into the long-running verification service
// (svc/Service.h): framed verify/lint/audit/tables requests over
// stdin/stdout, or over a Unix-domain socket with --socket PATH, where
// the event loop (svc/EventLoop.h) serves every connected client
// concurrently until one sends Shutdown. --connect PATH is the matching
// client: it routes verification (or --lint, --audit, --metrics,
// --shutdown) of the given images through a running server. --tables-from PATH fetches
// the server's policy tables by content hash — with --tables-cache FILE
// a hash match skips the transfer entirely — and adopts them in-process,
// skipping the per-process table rebuild for the rest of the run. When
// PATH is a regular file instead of a socket, the RSTB blob is loaded
// straight from disk (same tag/hash discipline, no server needed); with
// --isa mips either source resolves the MIPS registry entry. Adoption
// happens through the table registry: adopting a table set that differs
// from one already in use is a hard error, never a silent no-op.
// --serve-smoke forks a server child on a private socket, drives a
// mixed verify/lint/audit/tables/malformed-frame session against it,
// cross-checks every response against the in-process one-shot paths,
// and shuts it down cleanly — the CI service gate.
//
// --patch OFF:HEX (repeatable) switches an image into the incremental
// path (src/incr): the image is opened as a mutable handle, each patch
// overwrites bytes in place and re-verifies only the invalidated
// chunks. Locally every incremental verdict is cross-checked against a
// full re-check with both timings printed; with --connect the patches
// are driven through a running server's image-open/patch/image-close
// requests instead. Adding --lint maintains the incremental linter
// beside the verifier: each patch re-lints in O(patch window), locally
// cross-checked against a fresh full lint (both timings printed), and
// over the wire via the patch request's want-lint flag.
//
// Usage:
//   validator_cli <image.bin>... [--disassemble] [--explain] [--lint]
//                                [--lint-json] [--jobs N] [--stats]
//   validator_cli <image.bin>... --patch OFF:HEX [--patch OFF:HEX...]
//                                [--lint] [--stats]
//   validator_cli --selftest [--lint] [--jobs N] [--stats]
//   validator_cli --audit [--isa x86|mips]
//   validator_cli --dump-tables [--isa x86|mips] [--raw]
//                                [--tables-out FILE] [--expect-hash HEX]
//   validator_cli --serve [--socket PATH] [--jobs N] [--stats]
//   validator_cli --connect PATH [<image.bin>...] [--lint] [--audit]
//                                [--patch OFF:HEX...] [--metrics]
//                                [--shutdown]
//   validator_cli --tables-from PATH|FILE [--isa x86|mips]
//                                [--tables-cache FILE] [--expect-hash HEX]
//                                [<image.bin>...]
//   validator_cli --serve-smoke
//
//===----------------------------------------------------------------------===//

#include "analysis/CfgLint.h"
#include "analysis/Dataflow.h"
#include "analysis/PolicyAudit.h"
#include "core/BaselineChecker.h"
#include "core/TableRegistry.h"
#include "core/Verifier.h"
#include "incr/IncrementalVerifier.h"
#include "mips/MipsPolicy.h"
#include "regex/Algebra.h"
#include "regex/TableIO.h"
#include "fuzz/Minimizer.h"
#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"
#include "svc/EventLoop.h"
#include "svc/ParallelVerifier.h"
#include "svc/Protocol.h"
#include "svc/Service.h"
#include "svc/VerifierPool.h"
#include "x86/FastDecoder.h"
#include "x86/Printer.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace rocksalt;

namespace {

struct CliOptions {
  std::vector<std::string> Files;
  unsigned Jobs = 0; ///< 0: sequential; >= 1: route through VerifierPool
  bool Stats = false;
  bool Disasm = false;
  bool Explain = false; ///< minimize rejected images to their core
  bool Lint = false;    ///< recover + lint the implied CFG per image
  bool LintJson = false; ///< same diagnostics, one JSON object per line
  bool Audit = false;   ///< meta-verify the shipped policy tables
  std::string Isa = "x86"; ///< registry entry the table modes act on
  bool DumpTables = false; ///< serialize + round-trip the shipped tables
  bool RawTables = false;  ///< with --dump-tables: the unminimized tables
  std::string TablesOut;   ///< optional output path for the blob
  std::string ExpectHash;  ///< optional pinned content hash (CI gate)
  bool Selftest = false;
  bool Serve = false;       ///< run the framed verification service
  std::string SocketPath;   ///< with --serve: listen here instead of stdio
  std::string ConnectPath;  ///< client mode: a running server's socket
  bool MetricsReq = false;  ///< with --connect: scrape the server's metrics
  bool ShutdownServer = false; ///< with --connect: stop the server after
  std::string TablesFrom;   ///< fetch + adopt policy tables from a server
  std::string TablesCache;  ///< local blob cache for the hash negotiation
  bool ServeSmoke = false;  ///< fork a server and drive a mixed session
  std::vector<std::string> PatchSpecs; ///< OFF:HEX overwrites, in order
};

/// One parsed --patch OFF:HEX operand.
struct PatchSpec {
  uint32_t Offset = 0;
  std::vector<uint8_t> Bytes;
};

bool parsePatchSpec(const std::string &S, PatchSpec &Out) {
  size_t Colon = S.find(':');
  if (Colon == std::string::npos || Colon == 0 || Colon + 1 == S.size())
    return false;
  char *End = nullptr;
  unsigned long long Off = std::strtoull(S.c_str(), &End, 0);
  if (End != S.c_str() + Colon || Off > UINT32_MAX)
    return false;
  Out.Offset = uint32_t(Off);
  std::string Hex = S.substr(Colon + 1);
  if (Hex.empty() || Hex.size() % 2)
    return false;
  auto Nibble = [](char C) -> int {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    if (C >= 'A' && C <= 'F')
      return C - 'A' + 10;
    return -1;
  };
  Out.Bytes.clear();
  for (size_t I = 0; I < Hex.size(); I += 2) {
    int Hi = Nibble(Hex[I]), Lo = Nibble(Hex[I + 1]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out.Bytes.push_back(uint8_t(Hi << 4 | Lo));
  }
  return true;
}

// --- Service transport helpers (Unix-domain sockets + framing) ----------

int connectUnix(const std::string &Path) {
  try {
    return svc::connectUnixSocket(Path);
  } catch (const std::exception &) {
    return -1;
  }
}

void writeAllFd(int Fd, const std::vector<uint8_t> &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      throw std::runtime_error("write error on service socket");
    }
    Off += size_t(N);
  }
}

void sendFrame(int Fd, svc::proto::MsgKind Kind,
               const std::vector<uint8_t> &Body) {
  std::vector<uint8_t> Out;
  svc::proto::appendFrame(Out, Kind, Body);
  writeAllFd(Fd, Out);
}

/// Client-side frame reassembly over a blocking fd.
class FrameReader {
public:
  explicit FrameReader(int Fd) : Fd(Fd) {}

  svc::proto::Frame next() {
    svc::proto::Frame F;
    while (!svc::proto::parseFrame(Buf.data(), Buf.size(), &Pos, &F)) {
      if (Pos) {
        Buf.erase(Buf.begin(), Buf.begin() + long(Pos));
        Pos = 0;
      }
      uint8_t Tmp[64 * 1024];
      ssize_t N = ::read(Fd, Tmp, sizeof(Tmp));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        throw std::runtime_error("read error on service socket");
      }
      if (N == 0)
        throw std::runtime_error("server closed the connection");
      Buf.insert(Buf.end(), Tmp, Tmp + N);
    }
    return F;
  }

private:
  int Fd;
  std::vector<uint8_t> Buf;
  size_t Pos = 0;
};

/// Receives one frame and insists on \p Want, surfacing server-side
/// ErrorResponse text in the exception.
svc::proto::Frame expectFrame(FrameReader &In, svc::proto::MsgKind Want) {
  svc::proto::Frame F = In.next();
  if (F.Kind == svc::proto::MsgKind::ErrorResponse &&
      Want != svc::proto::MsgKind::ErrorResponse)
    throw std::runtime_error("server error: " +
                             svc::proto::decodeErrorResponse(F.Body));
  if (F.Kind != Want)
    throw std::runtime_error(std::string("expected ") +
                             svc::proto::msgKindName(Want) + ", got " +
                             svc::proto::msgKindName(F.Kind));
  return F;
}

bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign((std::istreambuf_iterator<char>(In)),
             std::istreambuf_iterator<char>());
  return true;
}

/// Serializes the selected ISA's tables, proves the round-trip is
/// bit-identical in-process, prints stats + content hash, optionally
/// writes the blob and enforces a pinned hash. Returns a process exit
/// code. With --raw the unminimized tables are dumped instead — a
/// distinct content hash from the registry entry's, which the
/// late-adoption regression gate relies on.
int dumpTables(const CliOptions &Opts) {
  const bool Mips = Opts.Isa == core::IsaMips;
  core::PolicyTables Raw;
  const core::PolicyTables *T;
  std::vector<uint8_t> Blob;
  std::string RegistryHash;
  if (Opts.RawTables) {
    Raw = Mips ? mips::buildMipsPolicyTablesRaw() : core::buildPolicyTablesRaw();
    T = &Raw;
    Blob = core::serializePolicyTables(Raw, Opts.Isa, core::PolicySetNacl);
  } else {
    const core::TableEntry &E =
        Mips ? mips::mipsTableEntry() : core::defaultTableEntry();
    T = E.Tables;
    Blob = E.Blob;
    RegistryHash = E.HashHex;
  }

  core::PolicyTables Back =
      core::deserializePolicyTables(Blob, Opts.Isa, core::PolicySetNacl);
  std::vector<uint8_t> Blob2 =
      core::serializePolicyTables(Back, Opts.Isa, core::PolicySetNacl);
  if (Blob != Blob2) {
    std::fprintf(stderr,
                 "error: serialize/deserialize round-trip is not "
                 "bit-identical (%zu vs %zu bytes)\n",
                 Blob.size(), Blob2.size());
    return 1;
  }

  std::string Hash = re::blobHashHex(Blob);
  if (!RegistryHash.empty() && Hash != RegistryHash) {
    std::fprintf(stderr,
                 "error: registry entry hash %s disagrees with the "
                 "recomputed blob hash %s\n",
                 RegistryHash.c_str(), Hash.c_str());
    return 1;
  }
  std::printf("format:  RSTB v%u, %zu bytes (%s/%s%s)\n",
              re::TableFormatVersion, Blob.size(), Opts.Isa.c_str(),
              core::PolicySetNacl, Opts.RawTables ? ", raw" : "");
  std::printf("tables:  NoControlFlow %zu states, DirectJump %zu states, "
              "MaskedJump %zu states\n",
              T->NoControlFlow.numStates(), T->DirectJump.numStates(),
              T->MaskedJump.numStates());
  std::printf("hash:    %s\n", Hash.c_str());
  std::printf("roundtrip: bit-identical\n");

  if (!Opts.TablesOut.empty()) {
    std::ofstream Out(Opts.TablesOut, std::ios::binary);
    if (!Out ||
        !Out.write(reinterpret_cast<const char *>(Blob.data()), Blob.size())) {
      std::fprintf(stderr, "error: cannot write %s\n", Opts.TablesOut.c_str());
      return 1;
    }
    std::printf("wrote:   %s\n", Opts.TablesOut.c_str());
  }

  if (!Opts.ExpectHash.empty() && Opts.ExpectHash != Hash) {
    std::fprintf(stderr,
                 "error: content hash drift\n  expected %s\n  actual   %s\n"
                 "(intentional grammar/format change? refresh the pinned "
                 "hash in tests/CMakeLists.txt and "
                 "tests/policy_table_format_test.cpp)\n",
                 Opts.ExpectHash.c_str(), Hash.c_str());
    return 1;
  }
  return 0;
}

void disassemble(const std::vector<uint8_t> &Code,
                 const core::CheckResult &R) {
  uint32_t Pos = 0;
  while (Pos < Code.size()) {
    if (R.PairJmp.size() > Pos && R.PairJmp[Pos])
      std::printf("        %04x:   (jump half of the masked pair)\n", Pos);
    auto D = x86::fastDecode(Code.data() + Pos, Code.size() - Pos);
    const char *Mark = (Pos % core::BundleSize == 0) ? "|" : " ";
    if (!D) {
      std::printf("      %s %04x:   .byte 0x%02x   <- not decodable\n",
                  Mark, Pos, Code[Pos]);
      Pos += 1;
      continue;
    }
    std::printf("      %s %04x:   %s\n", Mark, Pos,
                x86::printInstr(D->I).c_str());
    Pos += D->Length;
  }
}

/// Escapes \p S into a JSON string literal body.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  return Out;
}

/// The machine-readable twin of CfgLintResult::render(): one JSON
/// object per diagnostic per line — kind, severity, byte offset, the
/// containing CFG node's span with its reaching-mask guard (null when
/// the offset falls outside every recovered node), and the detail text.
std::string lintJsonLines(const analysis::CfgLintResult &L) {
  std::string Out;
  char Buf[96];
  for (const analysis::LintDiag &D : L.Diags) {
    Out += "{\"kind\":\"";
    Out += analysis::lintKindName(D.Kind);
    Out += "\",\"severity\":\"";
    Out += analysis::lintSeverityName(D.Sev);
    std::snprintf(Buf, sizeof(Buf), "\",\"offset\":%u,", D.Offset);
    Out += Buf;
    const analysis::CfgNode *N = nullptr;
    for (const analysis::CfgNode &C : L.Nodes)
      if (C.Begin <= D.Offset && D.Offset < C.End) {
        N = &C;
        break;
      }
    if (N) {
      std::snprintf(Buf, sizeof(Buf), "\"node\":{\"begin\":%u,\"end\":%u",
                    N->Begin, N->End);
      Out += Buf;
      size_t Idx = size_t(N - L.Nodes.data());
      uint32_t G =
          Idx < L.Guard.size() ? L.Guard[Idx] : analysis::kGuardUnknown;
      Out += ",\"guard\":";
      if (G == analysis::kGuardUnknown)
        Out += "null";
      else if (G == analysis::kGuardNone)
        Out += "\"none\"";
      else if (G == analysis::kGuardMany)
        Out += "\"many\"";
      else {
        std::snprintf(Buf, sizeof(Buf), "%u", G);
        Out += Buf;
      }
      Out += "},";
    } else {
      Out += "\"node\":null,";
    }
    Out += "\"detail\":\"" + jsonEscape(D.Detail) + "\"}\n";
  }
  return Out;
}

/// The violation families: per policy table, the k shortest strings the
/// table *accepts* in length-then-lex order — shown next to a minimized
/// rejection so the offending bytes sit beside the nearest constructs
/// the policy would have allowed.
void printAcceptedFamilies(unsigned K) {
  const core::PolicyTables &T = core::policyTables();
  const struct {
    const char *Name;
    const re::Dfa *D;
  } Tables[] = {{"NoControlFlow", &T.NoControlFlow},
                {"DirectJump", &T.DirectJump},
                {"MaskedJump", &T.MaskedJump}};
  std::printf("  accepted families (%u shortest per policy table):\n", K);
  for (const auto &N : Tables) {
    std::vector<std::vector<uint8_t>> W = re::kShortestAccepted(*N.D, K);
    std::printf("    %-14s", N.Name);
    for (size_t I = 0; I < W.size(); ++I) {
      std::printf("%s", I ? "  |" : " ");
      for (uint8_t B : W[I])
        std::printf(" %02x", B);
    }
    std::printf("\n");
  }
}

/// Shrinks a rejected image to the smallest byte sequence RockSalt still
/// rejects for the same reason, and shows it.
void explainRejection(const std::vector<uint8_t> &Code,
                      const core::CheckResult &Full) {
  core::RockSalt V;
  fuzz::MinimizeResult MR = fuzz::minimizeImage(
      Code, [&](const std::vector<uint8_t> &C) {
        core::CheckResult R = V.check(C);
        return !R.Ok && R.Reason == Full.Reason;
      });
  std::printf("  minimal %s reproducer (%zu bytes, from %zu; %llu checks):\n",
              core::rejectReasonName(Full.Reason), MR.Image.size(),
              Code.size(), static_cast<unsigned long long>(MR.Evals));
  std::printf("   ");
  for (uint8_t B : MR.Image)
    std::printf(" %02x", B);
  std::printf("\n");
  disassemble(MR.Image, V.check(MR.Image));
  printAcceptedFamilies(3);
}

/// One image through RockSalt (sequential or chunk-parallel) plus the
/// ncval-style baseline, with timings.
int validate(const std::vector<uint8_t> &Code, const CliOptions &Opts,
             svc::ParallelVerifier *PV, svc::Metrics *M) {
  auto T0 = std::chrono::steady_clock::now();
  core::CheckResult R;
  if (PV) {
    R = PV->check(Code);
  } else {
    core::RockSalt V;
    R = V.check(Code);
  }
  auto T1 = std::chrono::steady_clock::now();
  bool Baseline = core::baselineVerify(Code);
  auto T2 = std::chrono::steady_clock::now();

  double RockMs = std::chrono::duration<double, std::milli>(T1 - T0).count();
  double BaseMs = std::chrono::duration<double, std::milli>(T2 - T1).count();

  std::printf("image: %zu bytes (%zu bundles)\n", Code.size(),
              Code.size() / core::BundleSize);
  std::printf("  rocksalt%s:  %s  (%.3f ms)%s%s\n", PV ? " (parallel)" : "",
              R.Ok ? "ACCEPT" : "REJECT", RockMs,
              R.Ok ? "" : "  reason: ",
              R.Ok ? "" : core::rejectReasonName(R.Reason));
  std::printf("  baseline:  %s  (%.3f ms)\n",
              Baseline ? "ACCEPT" : "REJECT", BaseMs);
  if (R.Ok != Baseline)
    std::printf("  *** CHECKER DISAGREEMENT — please report ***\n");
  if (Opts.Disasm && !Code.empty())
    disassemble(Code, R);
  if (Opts.Explain && !R.Ok && !Code.empty())
    explainRejection(Code, R);
  if ((Opts.Lint || Opts.LintJson) && !Code.empty()) {
    analysis::CfgLintResult L =
        analysis::lintImage(core::policyTables(), Code, M);
    if (Opts.Lint)
      std::printf("%s", L.render().c_str());
    if (Opts.LintJson)
      std::printf("%s", lintJsonLines(L).c_str());
  }
  return R.Ok ? 0 : 1;
}

/// One image through the MIPS policy checker (mips/MipsPolicy.h): the
/// same Figure-5 walk as validate(), against the registry's MIPS entry
/// with the 16-byte bundle finalize. The x86-only diagnostics
/// (disassembly, explain, lint) do not apply here.
int validateMips(const std::vector<uint8_t> &Code) {
  auto T0 = std::chrono::steady_clock::now();
  core::CheckResult R = mips::checkMips(Code.data(), uint32_t(Code.size()));
  auto T1 = std::chrono::steady_clock::now();
  double Ms = std::chrono::duration<double, std::milli>(T1 - T0).count();
  std::printf("image: %zu bytes (%zu bundles, mips)\n", Code.size(),
              Code.size() / mips::MipsBundleSize);
  std::printf("  rocksalt (mips):  %s  (%.3f ms)%s%s\n",
              R.Ok ? "ACCEPT" : "REJECT", Ms, R.Ok ? "" : "  reason: ",
              R.Ok ? "" : core::rejectReasonName(R.Reason));
  return R.Ok ? 0 : 1;
}

/// --patch without --connect: open the image with the in-process
/// incremental verifier, apply each patch with an O(patch) re-verify,
/// cross-check every verdict (and its bitmaps) against a full
/// sequential re-check, and print both timings side by side. With
/// \p Lint the incremental linter rides along: every patch re-lints in
/// O(patch window) and the report is cross-checked byte-for-byte
/// against a fresh full lint of the patched image.
int runPatchesLocal(const std::string &Path, std::vector<uint8_t> Code,
                    const std::vector<PatchSpec> &Specs, bool Lint,
                    svc::Metrics *M) {
  core::RockSalt Full;
  incr::IncrementalVerifier Incr(incr::IncrementalOptions{}, M);
  analysis::IncrementalLinter Linter(core::policyTables(), M);

  auto MsBetween = [](std::chrono::steady_clock::time_point A,
                      std::chrono::steady_clock::time_point B) {
    return std::chrono::duration<double, std::milli>(B - A).count();
  };

  incr::IncrResult Open;
  auto T0 = std::chrono::steady_clock::now();
  incr::ImageId Id = Incr.open(Code, &Open);
  auto T1 = std::chrono::steady_clock::now();
  std::printf("%s: opened %zu bytes as image #%u: %s%s%s  (%.3f ms, %u "
              "chunks scanned)\n",
              Path.c_str(), Code.size(), Id, Open.Ok ? "ACCEPT" : "REJECT",
              Open.Ok ? "" : "  reason: ",
              Open.Ok ? "" : core::rejectReasonName(Open.Reason),
              MsBetween(T0, T1), Open.ChunksRescanned);
  if (Lint) {
    Linter.open(Id, Code.data(), uint32_t(Code.size()),
                incr::IncrementalOptions{}.ChunkBytes);
    std::printf("%s", Linter.render(Id).c_str());
  }

  int Rc = Open.Ok ? 0 : 1;
  for (size_t I = 0; I < Specs.size(); ++I) {
    const PatchSpec &P = Specs[I];
    T0 = std::chrono::steady_clock::now();
    incr::IncrResult R;
    try {
      R = Incr.patch(Id, P.Offset, P.Bytes.data(), uint32_t(P.Bytes.size()));
    } catch (const std::invalid_argument &E) {
      std::fprintf(stderr, "  patch %zu at %u: error: %s\n", I + 1, P.Offset,
                   E.what());
      return 2;
    }
    T1 = std::chrono::steady_clock::now();
    for (size_t B = 0; B < P.Bytes.size(); ++B)
      Code[P.Offset + B] = P.Bytes[B];
    auto T2 = std::chrono::steady_clock::now();
    core::CheckResult FullR = Full.check(Code);
    auto T3 = std::chrono::steady_clock::now();

    const core::CheckResult &IR = Incr.lastCheck(Id);
    bool Agree = IR.Ok == FullR.Ok && IR.Reason == FullR.Reason &&
                 IR.Valid == FullR.Valid && IR.Target == FullR.Target &&
                 IR.PairJmp == FullR.PairJmp;
    std::printf("  patch %zu at %u (%zu bytes): %s%s%s  (incremental %.3f ms "
                "/ full %.3f ms; %u rescanned, %u cache hits)%s\n",
                I + 1, P.Offset, P.Bytes.size(),
                R.Ok ? "ACCEPT" : "REJECT", R.Ok ? "" : "  reason: ",
                R.Ok ? "" : core::rejectReasonName(R.Reason),
                MsBetween(T0, T1), MsBetween(T2, T3), R.ChunksRescanned,
                R.ChunkCacheHits,
                Agree ? "" : "  *** DIVERGED FROM FULL CHECK ***");
    if (!Agree)
      return 1;
    if (Lint) {
      T0 = std::chrono::steady_clock::now();
      analysis::IncrementalLinter::Summary LS =
          Linter.relint(Id, Code.data(), uint32_t(Code.size()), R);
      T1 = std::chrono::steady_clock::now();
      T2 = std::chrono::steady_clock::now();
      analysis::CfgLintResult FullL =
          analysis::lintImage(core::policyTables(), Code);
      T3 = std::chrono::steady_clock::now();
      bool LintAgree = Linter.render(Id) == FullL.render();
      std::printf("    lint: %u errors, %u warnings, %u notes  (incremental "
                  "%.3f ms%s / full %.3f ms)%s\n",
                  LS.Errors, LS.Warnings, LS.Notes, MsBetween(T0, T1),
                  LS.FastPath ? ", fast path" : "", MsBetween(T2, T3),
                  LintAgree ? "" : "  *** LINT DIVERGED FROM FULL LINT ***");
      if (!LintAgree)
        return 1;
    }
    Rc = R.Ok ? 0 : 1;
  }
  if (Lint)
    Linter.close(Id);
  Incr.close(Id);
  return Rc;
}

int selftest(const CliOptions &Opts, svc::VerifierPool *Pool,
             svc::ParallelVerifier *PV, svc::Metrics *M) {
  nacl::WorkloadOptions WOpts;
  WOpts.TargetBytes = 512;
  WOpts.Seed = 42;
  std::vector<uint8_t> Code = nacl::generateWorkload(WOpts);
  std::printf("== generated compliant workload ==\n");
  CliOptions Inner = Opts;
  Inner.Disasm = true;
  int Rc = validate(Code, Inner, PV, M);

  Rng R(7);
  auto Bad = nacl::applyAttack(Code, nacl::Attack::InsertRet, R);
  if (Bad) {
    std::printf("\n== after inserting a RET ==\n");
    Inner.Disasm = false;
    validate(*Bad, Inner, PV, M);
  }

  if (Pool) {
    // Exercise the batch path too: a mixed accept/reject batch.
    std::printf("\n== pool batch: 16 generated + mutated images ==\n");
    std::vector<std::vector<uint8_t>> Batch;
    for (uint32_t I = 0; I < 16; ++I) {
      WOpts.Seed = 100 + I;
      Batch.push_back(nacl::generateWorkload(WOpts));
      if (I & 1)
        Batch.back() = nacl::mutateRandom(Batch.back(), R);
    }
    auto Futures = Pool->submit(Batch);
    uint32_t Accepted = 0;
    for (auto &F : Futures)
      Accepted += F.get().Ok ? 1 : 0;
    std::printf("accepted %u / 16\n", Accepted);
  }
  return Rc;
}

/// --serve: the long-running verification service. Without --socket the
/// single session runs over stdin/stdout (all diagnostics go to stderr);
/// with --socket PATH the event loop (svc/EventLoop.h) multiplexes every
/// connected client concurrently until one sends Shutdown.
int runServer(const CliOptions &Opts) {
  // The stdio transport writes with plain write(); without this a client
  // that exits mid-reply would kill the server with SIGPIPE instead of
  // an EPIPE the serve loop can survive. The socket path additionally
  // sends with MSG_NOSIGNAL (belt and braces for any fd it misses).
  std::signal(SIGPIPE, SIG_IGN);
  // Register the second ISA before serving: the tables endpoint serves
  // any registry entry, so a multi-ISA server must populate the
  // registry up front (clients asking for an unregistered ISA get an
  // ErrorResponse, not a lazily built table set).
  mips::mipsTableEntry();
  svc::Metrics M;
  svc::Service Server(svc::ServiceOptions{Opts.Jobs, &M});
  int Rc = 0;
  if (Opts.SocketPath.empty()) {
    try {
      Server.serveFd(STDIN_FILENO, STDOUT_FILENO);
    } catch (const std::exception &E) {
      std::fprintf(stderr, "session error: %s\n", E.what());
      Rc = 1;
    }
  } else {
    try {
      int Listen = svc::listenUnixSocket(Opts.SocketPath,
                                         Server.options().Backlog);
      std::fprintf(stderr, "serving on %s (%u workers, tables %s)\n",
                   Opts.SocketPath.c_str(), Server.pool().threadCount(),
                   Server.tablesHashHex().c_str());
      svc::EventLoop Loop(Server, Listen);
      Loop.run();
    } catch (const std::exception &E) {
      std::fprintf(stderr, "error: %s\n", E.what());
      Rc = 2;
    }
    ::unlink(Opts.SocketPath.c_str());
  }
  if (Opts.Stats)
    std::fprintf(stderr, "--- service metrics ---\n%s", M.dump().c_str());
  return Rc;
}

/// --connect: route verify/lint/audit of the given images through a
/// running server, printing the same shapes as the local one-shot paths.
int runClient(const CliOptions &Opts) {
  using svc::proto::MsgKind;
  int Fd = connectUnix(Opts.ConnectPath);
  if (Fd < 0) {
    std::fprintf(stderr, "error: cannot connect to %s\n",
                 Opts.ConnectPath.c_str());
    return 2;
  }
  FrameReader In(Fd);
  int Rc = 0;
  try {
    if (Opts.Audit) {
      sendFrame(Fd, MsgKind::AuditRequest, {});
      svc::proto::AuditVerdict V = svc::proto::decodeAuditResponse(
          expectFrame(In, MsgKind::AuditResponse).Body);
      std::printf("%s", V.Render.c_str());
      Rc = V.Pass ? 0 : 1;
    }
    if (!Opts.Files.empty()) {
      std::vector<std::vector<uint8_t>> Images;
      for (const std::string &Path : Opts.Files) {
        Images.emplace_back();
        if (!readFile(Path, Images.back())) {
          std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
          ::close(Fd);
          return 2;
        }
      }
      std::vector<uint8_t> Batch = svc::proto::encodeImageBatch(Images);
      if (!Opts.PatchSpecs.empty()) {
        // Incremental mode: image-open / patch… / image-close per file.
        std::vector<PatchSpec> Specs(Opts.PatchSpecs.size());
        for (size_t I = 0; I < Opts.PatchSpecs.size(); ++I)
          if (!parsePatchSpec(Opts.PatchSpecs[I], Specs[I])) {
            std::fprintf(stderr, "error: bad --patch spec %s\n",
                         Opts.PatchSpecs[I].c_str());
            ::close(Fd);
            return 2;
          }
        for (size_t F = 0; F < Images.size(); ++F) {
          sendFrame(Fd, MsgKind::ImageOpenRequest,
                    svc::proto::encodeImageOpenRequest(Images[F]));
          svc::proto::ImageOpenReply Open = svc::proto::decodeImageOpenResponse(
              expectFrame(In, MsgKind::ImageOpenResponse).Body);
          std::printf("%s: opened %zu bytes as image #%u: %s%s%s\n",
                      Opts.Files[F].c_str(), Images[F].size(), Open.Image,
                      Open.V.Ok ? "ACCEPT" : "REJECT",
                      Open.V.Ok ? "" : "  reason: ",
                      Open.V.Ok ? ""
                                : core::rejectReasonName(Open.V.Reason));
          Rc |= Open.V.Ok ? 0 : 1;
          for (size_t I = 0; I < Specs.size(); ++I) {
            svc::proto::PatchRequestBody B;
            B.Image = Open.Image;
            B.Offset = Specs[I].Offset;
            B.Bytes = Specs[I].Bytes;
            B.WantLint = Opts.Lint;
            sendFrame(Fd, MsgKind::PatchRequest,
                      svc::proto::encodePatchRequest(B));
            svc::proto::PatchReply R = svc::proto::decodePatchResponse(
                expectFrame(In, MsgKind::PatchResponse).Body);
            std::printf("  patch %zu at %u (%zu bytes): %s%s%s  "
                        "(%u rescanned, %u cache hits)\n",
                        I + 1, B.Offset, B.Bytes.size(),
                        R.V.Ok ? "ACCEPT" : "REJECT",
                        R.V.Ok ? "" : "  reason: ",
                        R.V.Ok ? "" : core::rejectReasonName(R.V.Reason),
                        R.ChunksRescanned, R.ChunkCacheHits);
            if (R.HasLint)
              std::printf("%s", R.Lint.Render.c_str());
            Rc |= R.V.Ok ? 0 : 1;
          }
          sendFrame(Fd, MsgKind::ImageCloseRequest,
                    svc::proto::encodeImageCloseRequest(Open.Image));
          expectFrame(In, MsgKind::ImageCloseResponse);
        }
      } else if (Opts.Lint) {
        sendFrame(Fd, MsgKind::LintRequest, Batch);
        std::vector<svc::proto::LintReport> Reports =
            svc::proto::decodeLintResponse(
                expectFrame(In, MsgKind::LintResponse).Body);
        for (size_t I = 0; I < Reports.size(); ++I) {
          std::printf("%s:\n%s", Opts.Files[I].c_str(),
                      Reports[I].Render.c_str());
          Rc |= Reports[I].Errors ? 1 : 0;
        }
      } else {
        sendFrame(Fd, MsgKind::VerifyRequest, Batch);
        std::vector<svc::proto::VerifyVerdict> Verdicts =
            svc::proto::decodeVerifyResponse(
                expectFrame(In, MsgKind::VerifyResponse).Body);
        for (size_t I = 0; I < Verdicts.size(); ++I) {
          std::printf("%-40s %s%s%s  (%zu bytes)\n", Opts.Files[I].c_str(),
                      Verdicts[I].Ok ? "ACCEPT" : "REJECT",
                      Verdicts[I].Ok ? "" : "  reason: ",
                      Verdicts[I].Ok
                          ? ""
                          : core::rejectReasonName(Verdicts[I].Reason),
                      Images[I].size());
          Rc |= Verdicts[I].Ok ? 0 : 1;
        }
      }
    }
    if (Opts.MetricsReq) {
      sendFrame(Fd, MsgKind::MetricsRequest, {});
      std::printf("%s", svc::proto::decodeMetricsResponse(
                            expectFrame(In, MsgKind::MetricsResponse).Body)
                            .c_str());
    }
    if (Opts.ShutdownServer) {
      sendFrame(Fd, MsgKind::ShutdownRequest, {});
      expectFrame(In, MsgKind::ShutdownResponse);
      std::printf("server shut down\n");
    }
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    Rc = 2;
  }
  ::close(Fd);
  return Rc;
}

/// Loads + adopts a table blob into the registry under Opts.Isa and
/// prints what happened. The load enforces the blob's ISA/policy-set
/// tag (an x86 run rejects a mips-tagged blob at the header) and the
/// adoption either takes effect or throws — an adopted set can never
/// silently lose to a table set already in use. Returns <0 on success,
/// else an exit code.
int adoptBlob(const CliOptions &Opts, const std::vector<uint8_t> &Blob,
              const std::string &ExpectHash, const char *Source) {
  try {
    auto T0 = std::chrono::steady_clock::now();
    core::PolicyTables T =
        core::loadPolicyTables(Blob, ExpectHash, Opts.Isa,
                               core::PolicySetNacl);
    auto T1 = std::chrono::steady_clock::now();
    core::adoptPolicyTables(std::move(T), Opts.Isa, core::PolicySetNacl);
    const core::TableEntry *E =
        core::TableRegistry::instance().byKey(Opts.Isa, core::PolicySetNacl);
    std::string FileHash = re::blobHashHex(Blob);
    std::printf("tables: loaded %s blob in %.3f ms, adopted as %s/%s "
                "(registry hash %s%s)\n",
                Source,
                std::chrono::duration<double, std::milli>(T1 - T0).count(),
                Opts.Isa.c_str(), core::PolicySetNacl,
                E ? E->HashHex.c_str() : "?",
                E && E->HashHex == FileHash
                    ? ", bit-identical round-trip"
                    : "");
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return 1;
  }
  return -1;
}

/// --tables-from: fetch the server's policy tables by content hash and
/// adopt them process-wide, skipping the local grammar rebuild. With
/// --tables-cache FILE the cached blob's hash is offered first, so a
/// match costs a 74-byte negotiation instead of a ~34 KiB transfer.
/// When the operand is a regular file rather than a socket, the blob is
/// read straight from disk — the offline half of the distribution path,
/// same tag and hash discipline. Returns <0 on success (the caller
/// continues into normal validation), else a process exit code.
int fetchTables(const CliOptions &Opts) {
  using svc::proto::MsgKind;

  struct stat St;
  if (::stat(Opts.TablesFrom.c_str(), &St) == 0 && S_ISREG(St.st_mode)) {
    std::vector<uint8_t> Blob;
    if (!readFile(Opts.TablesFrom, Blob)) {
      std::fprintf(stderr, "error: cannot read %s\n", Opts.TablesFrom.c_str());
      return 2;
    }
    return adoptBlob(Opts, Blob, Opts.ExpectHash, Opts.TablesFrom.c_str());
  }

  std::vector<uint8_t> CachedBlob;
  std::string CachedHash;
  if (!Opts.TablesCache.empty() && readFile(Opts.TablesCache, CachedBlob)) {
    try {
      CachedHash = re::verifyBlobHashHex(CachedBlob);
    } catch (const std::exception &E) {
      std::fprintf(stderr, "note: ignoring corrupt tables cache %s (%s)\n",
                   Opts.TablesCache.c_str(), E.what());
      CachedBlob.clear();
    }
  }

  int Fd = connectUnix(Opts.TablesFrom);
  if (Fd < 0) {
    std::fprintf(stderr, "error: cannot connect to %s\n",
                 Opts.TablesFrom.c_str());
    return 2;
  }
  int Rc = -1;
  try {
    FrameReader In(Fd);
    // The default ISA keeps the original wire shape (no selector field)
    // so this client stays byte-compatible with pre-registry servers.
    sendFrame(Fd, MsgKind::TablesRequest,
              svc::proto::encodeTablesRequest(
                  CachedHash, Opts.Isa == core::IsaX86 ? "" : Opts.Isa));
    svc::proto::TablesReply Reply = svc::proto::decodeTablesResponse(
        expectFrame(In, MsgKind::TablesResponse).Body);

    const std::vector<uint8_t> *Blob;
    if (Reply.HashMatched) {
      std::printf("tables: hash %s matched — cache hit, no transfer\n",
                  Reply.HashHex.c_str());
      Blob = &CachedBlob;
    } else {
      std::printf("tables: fetched %zu bytes, hash %s\n", Reply.Blob.size(),
                  Reply.HashHex.c_str());
      Blob = &Reply.Blob;
      if (!Opts.TablesCache.empty()) {
        std::ofstream Out(Opts.TablesCache, std::ios::binary);
        if (Out.write(reinterpret_cast<const char *>(Reply.Blob.data()),
                      long(Reply.Blob.size())))
          std::printf("tables: cached to %s\n", Opts.TablesCache.c_str());
      }
    }
    if (!Opts.ExpectHash.empty() && Reply.HashHex != Opts.ExpectHash) {
      std::fprintf(stderr,
                   "error: served tables hash drift\n  expected %s\n"
                   "  actual   %s\n",
                   Opts.ExpectHash.c_str(), Reply.HashHex.c_str());
      ::close(Fd);
      return 1;
    }

    Rc = adoptBlob(Opts, *Blob, Reply.HashHex, "served");
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    Rc = 2;
  }
  ::close(Fd);
  return Rc;
}

/// --serve-smoke: fork a server child on a private socket and drive a
/// mixed verify/lint/audit/tables/patch-lint/malformed session against
/// it, cross-checking every response against the in-process one-shot
/// paths.
/// The CI service gate: exits 0 only if everything agreed and the
/// server shut down cleanly.
int serveSmoke() {
  using svc::proto::MsgKind;
  char Dir[] = "/tmp/rocksalt_smoke_XXXXXX";
  if (!::mkdtemp(Dir)) {
    std::fprintf(stderr, "error: mkdtemp failed\n");
    return 2;
  }
  std::string Sock = std::string(Dir) + "/svc.sock";

  pid_t Child = ::fork(); // before any threads exist in this process
  if (Child < 0) {
    std::fprintf(stderr, "error: fork failed\n");
    return 2;
  }
  if (Child == 0) {
    CliOptions ServerOpts;
    ServerOpts.SocketPath = Sock;
    ServerOpts.Jobs = 2;
    ::_exit(runServer(ServerOpts));
  }

  auto Fail = [&](const char *What) {
    std::fprintf(stderr, "serve-smoke FAILED: %s\n", What);
    ::kill(Child, SIGKILL);
    ::waitpid(Child, nullptr, 0);
    ::unlink(Sock.c_str());
    ::rmdir(Dir);
    return 1;
  };

  // The child creates the socket; retry the connect until it is up.
  int Fd = -1;
  for (int I = 0; I < 200 && Fd < 0; ++I) {
    Fd = connectUnix(Sock);
    if (Fd < 0)
      ::usleep(25 * 1000);
  }
  if (Fd < 0)
    return Fail("server socket never came up");

  int Rc = 0;
  try {
    FrameReader In(Fd);

    // A mixed batch: compliant, mutated, and attacked images.
    Rng R(7);
    std::vector<std::vector<uint8_t>> Images;
    for (uint32_t I = 0; I < 12; ++I) {
      nacl::WorkloadOptions WO;
      WO.TargetBytes = 512 + 96 * (I % 4);
      WO.Seed = 4200 + I;
      std::vector<uint8_t> Img = nacl::generateWorkload(WO);
      if (I % 3 == 1)
        Img = nacl::mutateRandom(Img, R);
      if (I % 3 == 2)
        if (auto Bad = nacl::applyAttack(Img, nacl::Attack::InsertRet, R))
          Img = *Bad;
      Images.push_back(std::move(Img));
    }

    // 1. verify — every verdict must equal the local sequential checker.
    sendFrame(Fd, MsgKind::VerifyRequest,
              svc::proto::encodeImageBatch(Images));
    std::vector<svc::proto::VerifyVerdict> Verdicts =
        svc::proto::decodeVerifyResponse(
            expectFrame(In, MsgKind::VerifyResponse).Body);
    core::RockSalt Local;
    if (Verdicts.size() != Images.size())
      return Fail("verify verdict count mismatch");
    for (size_t I = 0; I < Images.size(); ++I) {
      core::CheckResult CR = Local.check(Images[I]);
      if (Verdicts[I].Ok != CR.Ok || Verdicts[I].Reason != CR.Reason)
        return Fail("served verify verdict diverged from one-shot check");
    }
    std::printf("smoke: verify ok (%zu images)\n", Images.size());

    // 2. lint — rendered diagnostics must be bit-identical to the local
    // lint of the same images.
    std::vector<std::vector<uint8_t>> LintBatch(Images.begin(),
                                                Images.begin() + 4);
    sendFrame(Fd, MsgKind::LintRequest,
              svc::proto::encodeImageBatch(LintBatch));
    std::vector<svc::proto::LintReport> Lints = svc::proto::decodeLintResponse(
        expectFrame(In, MsgKind::LintResponse).Body);
    if (Lints.size() != LintBatch.size())
      return Fail("lint report count mismatch");
    for (size_t I = 0; I < LintBatch.size(); ++I) {
      analysis::CfgLintResult L =
          analysis::lintImage(core::policyTables(), LintBatch[I]);
      if (Lints[I].Render != L.render() || Lints[I].Errors != L.Errors)
        return Fail("served lint diverged from one-shot lint");
    }
    std::printf("smoke: lint ok (%zu images)\n", LintBatch.size());

    // 3. audit — the live tables must pass the meta-verifier.
    sendFrame(Fd, MsgKind::AuditRequest, {});
    svc::proto::AuditVerdict Audit = svc::proto::decodeAuditResponse(
        expectFrame(In, MsgKind::AuditResponse).Body);
    if (!Audit.Pass)
      return Fail("server-side policy audit failed");
    std::printf("smoke: audit ok\n");

    // 4. tables — cold fetch must load bit-identical to the local build;
    // a warm fetch with the hash must short-circuit the transfer.
    sendFrame(Fd, MsgKind::TablesRequest, svc::proto::encodeTablesRequest(""));
    svc::proto::TablesReply Cold = svc::proto::decodeTablesResponse(
        expectFrame(In, MsgKind::TablesResponse).Body);
    if (Cold.HashMatched || Cold.Blob.empty())
      return Fail("cold tables fetch did not return a blob");
    core::PolicyTables Served = core::loadPolicyTables(Cold.Blob, Cold.HashHex);
    if (core::serializePolicyTables(Served) !=
        core::serializePolicyTables(core::policyTables()))
      return Fail("served tables are not bit-identical to the local build");
    sendFrame(Fd, MsgKind::TablesRequest,
              svc::proto::encodeTablesRequest(Cold.HashHex));
    svc::proto::TablesReply Warm = svc::proto::decodeTablesResponse(
        expectFrame(In, MsgKind::TablesResponse).Body);
    if (!Warm.HashMatched || !Warm.Blob.empty())
      return Fail("hash negotiation did not short-circuit the transfer");
    std::printf("smoke: tables ok (%zu-byte blob, hash %.16s…)\n",
                Cold.Blob.size(), Cold.HashHex.c_str());

    // 4b. multi-ISA table negotiation — the server registered its MIPS
    // entry at startup, so the selector must serve a mips-tagged blob
    // (distinct hash), a warm selector fetch must short-circuit, the
    // *old* wire shape carrying the mips hash must still be confirmed
    // by hash, and an ISA nobody registered must be an error.
    sendFrame(Fd, MsgKind::TablesRequest,
              svc::proto::encodeTablesRequest("", "mips"));
    svc::proto::TablesReply MipsCold = svc::proto::decodeTablesResponse(
        expectFrame(In, MsgKind::TablesResponse).Body);
    if (MipsCold.HashMatched || MipsCold.Blob.empty())
      return Fail("cold mips tables fetch did not return a blob");
    if (MipsCold.HashHex == Cold.HashHex)
      return Fail("mips tables hash collides with the x86 hash");
    core::PolicyTables MipsServed = core::loadPolicyTables(
        MipsCold.Blob, MipsCold.HashHex, core::IsaMips, core::PolicySetNacl);
    (void)MipsServed;
    bool X86LoadRejected = false;
    try {
      core::loadPolicyTables(MipsCold.Blob, MipsCold.HashHex);
    } catch (const std::exception &) {
      X86LoadRejected = true;
    }
    if (!X86LoadRejected)
      return Fail("an x86 load accepted the mips-tagged blob");
    sendFrame(Fd, MsgKind::TablesRequest,
              svc::proto::encodeTablesRequest(MipsCold.HashHex, "mips"));
    svc::proto::TablesReply MipsWarm = svc::proto::decodeTablesResponse(
        expectFrame(In, MsgKind::TablesResponse).Body);
    if (!MipsWarm.HashMatched || !MipsWarm.Blob.empty())
      return Fail("mips hash negotiation did not short-circuit");
    sendFrame(Fd, MsgKind::TablesRequest,
              svc::proto::encodeTablesRequest(MipsCold.HashHex));
    svc::proto::TablesReply OldWire = svc::proto::decodeTablesResponse(
        expectFrame(In, MsgKind::TablesResponse).Body);
    if (!OldWire.HashMatched || OldWire.HashHex != MipsCold.HashHex)
      return Fail("old wire shape did not resolve the mips hash by content");
    sendFrame(Fd, MsgKind::TablesRequest,
              svc::proto::encodeTablesRequest("", "sparc"));
    if (In.next().Kind != MsgKind::ErrorResponse)
      return Fail("an unregistered ISA was not answered with an error");
    sendFrame(Fd, MsgKind::AuditRequest, {});
    expectFrame(In, MsgKind::AuditResponse);
    std::printf("smoke: multi-isa tables ok (mips hash %.16s…)\n",
                MipsCold.HashHex.c_str());

    // 5. incremental patch with want-lint — open a compliant image,
    // patch it twice asking for the lint report, and require each
    // served report to be byte-identical to a fresh local lint of the
    // patched bytes (the first request seeds the session's lint state,
    // the second takes the incremental relint path).
    {
      std::vector<uint8_t> Mut = Images[0];
      sendFrame(Fd, MsgKind::ImageOpenRequest,
                svc::proto::encodeImageOpenRequest(Mut));
      svc::proto::ImageOpenReply Open = svc::proto::decodeImageOpenResponse(
          expectFrame(In, MsgKind::ImageOpenResponse).Body);
      if (!Open.V.Ok)
        return Fail("compliant image was rejected at image-open");
      for (uint32_t Step = 0; Step < 2; ++Step) {
        svc::proto::PatchRequestBody B;
        B.Image = Open.Image;
        B.Offset = 32 + 16 * Step;
        B.Bytes = {0x90, 0x90, 0x90, 0x90};
        B.WantLint = true;
        for (size_t K = 0; K < B.Bytes.size(); ++K)
          Mut[B.Offset + K] = B.Bytes[K];
        sendFrame(Fd, MsgKind::PatchRequest,
                  svc::proto::encodePatchRequest(B));
        svc::proto::PatchReply PR = svc::proto::decodePatchResponse(
            expectFrame(In, MsgKind::PatchResponse).Body);
        analysis::CfgLintResult L =
            analysis::lintImage(core::policyTables(), Mut);
        if (!PR.HasLint || PR.Lint.Render != L.render() ||
            PR.Lint.Errors != L.Errors || PR.Lint.Warnings != L.Warnings ||
            PR.Lint.Notes != L.Notes)
          return Fail("served patch lint diverged from a fresh local lint");
        // The machine-readable rendering must stay one line per diag.
        std::string Json = lintJsonLines(L);
        if (size_t(std::count(Json.begin(), Json.end(), '\n')) !=
            L.Diags.size())
          return Fail("lint-json line count diverged from the diagnostics");
      }
      sendFrame(Fd, MsgKind::ImageCloseRequest,
                svc::proto::encodeImageCloseRequest(Open.Image));
      expectFrame(In, MsgKind::ImageCloseResponse);
      std::printf("smoke: patch lint ok (2 patches, reports identical)\n");
    }

    // 6. malformed body — answered with an error, session survives.
    sendFrame(Fd, MsgKind::VerifyRequest, {0xFF, 0xFF});
    if (In.next().Kind != MsgKind::ErrorResponse)
      return Fail("malformed body was not answered with ErrorResponse");
    sendFrame(Fd, MsgKind::AuditRequest, {});
    expectFrame(In, MsgKind::AuditResponse);
    std::printf("smoke: malformed-body error path ok\n");

    // 7. a second concurrent session — must be answered while the first
    // session is still open (the sequential accept loop would park it
    // until this session closed, and this phase would hang).
    int Fd2 = connectUnix(Sock);
    if (Fd2 < 0)
      return Fail("second concurrent connection refused");
    {
      FrameReader In2(Fd2);
      sendFrame(Fd2, MsgKind::VerifyRequest,
                svc::proto::encodeImageBatch({Images[0]}));
      std::vector<svc::proto::VerifyVerdict> V2 =
          svc::proto::decodeVerifyResponse(
              expectFrame(In2, MsgKind::VerifyResponse).Body);
      core::CheckResult CR = Local.check(Images[0]);
      if (V2.size() != 1 || V2[0].Ok != CR.Ok)
        return Fail("second session's verdict diverged");
    }
    ::close(Fd2);
    std::printf("smoke: concurrent second session ok\n");

    // 8. a client that dies between request and reply — the old server
    // took a SIGPIPE writing the reply and the whole process died; now
    // only that session drops and everyone else keeps being served.
    int Fd3 = connectUnix(Sock);
    if (Fd3 < 0)
      return Fail("third connection refused");
    sendFrame(Fd3, MsgKind::VerifyRequest,
              svc::proto::encodeImageBatch(Images));
    ::close(Fd3); // gone before the reply: the server's send sees EPIPE
    sendFrame(Fd, MsgKind::AuditRequest, {});
    expectFrame(In, MsgKind::AuditResponse);
    std::printf("smoke: client-killed-mid-reply survived\n");

    // 9. metrics scrape — the counters this very session bumped must be
    // visible in the exposition.
    sendFrame(Fd, MsgKind::MetricsRequest, {});
    std::string Expo = svc::proto::decodeMetricsResponse(
        expectFrame(In, MsgKind::MetricsResponse).Body);
    for (const char *Want :
         {"svc_verify_requests", "svc_sessions_active", "svc_bytes_in"})
      if (Expo.find(Want) == std::string::npos)
        return Fail("metrics exposition is missing an expected metric");
    if (Expo.find("svc_verify_requests 0\n") != std::string::npos)
      return Fail("metrics exposition did not count this session's verifies");
    std::printf("smoke: metrics scrape ok (%zu bytes)\n", Expo.size());

    // 10. clean shutdown.
    sendFrame(Fd, MsgKind::ShutdownRequest, {});
    expectFrame(In, MsgKind::ShutdownResponse);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "serve-smoke exception: %s\n", E.what());
    Rc = 1;
  }
  ::close(Fd);

  int Status = 0;
  if (::waitpid(Child, &Status, 0) != Child ||
      !WIFEXITED(Status) || WEXITSTATUS(Status) != 0) {
    std::fprintf(stderr, "serve-smoke FAILED: server exit status %d\n",
                 Status);
    Rc = 1;
  }
  ::unlink(Sock.c_str());
  ::rmdir(Dir);
  if (Rc == 0)
    std::printf("smoke: clean shutdown — all service paths agree\n");
  return Rc;
}

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s <image.bin>... [--disassemble] [--explain] "
               "[--lint] [--lint-json] [--jobs N] [--stats]"
               "\n       %s <image.bin>... --patch OFF:HEX "
               "[--patch OFF:HEX...] [--lint] [--stats]"
               "\n       %s --selftest [--lint] [--jobs N] [--stats]"
               "\n       %s --audit [--isa x86|mips]"
               "\n       %s --dump-tables [--isa x86|mips] [--raw] "
               "[--tables-out FILE] [--expect-hash HEX]"
               "\n       %s --serve [--socket PATH] [--jobs N] [--stats]"
               "\n       %s --connect PATH [<image.bin>...] [--lint] "
               "[--audit] [--metrics] [--shutdown]"
               "\n       %s --tables-from PATH|FILE [--isa x86|mips] "
               "[--tables-cache FILE] [--expect-hash HEX] [<image.bin>...]"
               "\n       %s --serve-smoke\n",
               Prog, Prog, Prog, Prog, Prog, Prog, Prog, Prog, Prog);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  CliOptions Opts;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--selftest") == 0) {
      Opts.Selftest = true;
    } else if (std::strcmp(argv[I], "--disassemble") == 0) {
      Opts.Disasm = true;
    } else if (std::strcmp(argv[I], "--explain") == 0) {
      Opts.Explain = true;
    } else if (std::strcmp(argv[I], "--lint") == 0) {
      Opts.Lint = true;
    } else if (std::strcmp(argv[I], "--lint-json") == 0) {
      Opts.LintJson = true;
    } else if (std::strcmp(argv[I], "--audit") == 0) {
      Opts.Audit = true;
    } else if (std::strcmp(argv[I], "--isa") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      Opts.Isa = argv[++I];
      if (Opts.Isa != core::IsaX86 && Opts.Isa != core::IsaMips) {
        std::fprintf(stderr, "error: unknown --isa %s (want x86 or mips)\n",
                     Opts.Isa.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[I], "--dump-tables") == 0) {
      Opts.DumpTables = true;
    } else if (std::strcmp(argv[I], "--raw") == 0) {
      Opts.RawTables = true;
    } else if (std::strcmp(argv[I], "--tables-out") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      Opts.TablesOut = argv[++I];
    } else if (std::strcmp(argv[I], "--expect-hash") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      Opts.ExpectHash = argv[++I];
    } else if (std::strcmp(argv[I], "--stats") == 0) {
      Opts.Stats = true;
    } else if (std::strcmp(argv[I], "--jobs") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      long N = std::strtol(argv[++I], nullptr, 10);
      if (N < 1)
        return usage(argv[0]);
      Opts.Jobs = unsigned(N);
    } else if (std::strcmp(argv[I], "--serve") == 0) {
      Opts.Serve = true;
    } else if (std::strcmp(argv[I], "--socket") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      Opts.SocketPath = argv[++I];
    } else if (std::strcmp(argv[I], "--connect") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      Opts.ConnectPath = argv[++I];
    } else if (std::strcmp(argv[I], "--metrics") == 0) {
      Opts.MetricsReq = true;
    } else if (std::strcmp(argv[I], "--shutdown") == 0) {
      Opts.ShutdownServer = true;
    } else if (std::strcmp(argv[I], "--tables-from") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      Opts.TablesFrom = argv[++I];
    } else if (std::strcmp(argv[I], "--tables-cache") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      Opts.TablesCache = argv[++I];
    } else if (std::strcmp(argv[I], "--serve-smoke") == 0) {
      Opts.ServeSmoke = true;
    } else if (std::strcmp(argv[I], "--patch") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      Opts.PatchSpecs.push_back(argv[++I]);
    } else if (argv[I][0] == '-') {
      return usage(argv[0]);
    } else {
      Opts.Files.push_back(argv[I]);
    }
  }
  // Test hook for the late-adoption regression gate: force the default
  // tables into use before any --tables-from adoption runs, so adopting
  // a different table set must hard-fail (registry conflict) instead of
  // silently losing the race the old singleton allowed.
  if (const char *Env = std::getenv("ROCKSALT_EARLY_TABLES"))
    if (Env[0] == '1')
      (void)core::policyTables();
  if (Opts.ServeSmoke)
    return serveSmoke();
  if (Opts.Serve)
    return runServer(Opts);
  if (!Opts.ConnectPath.empty())
    return runClient(Opts);
  if (!Opts.TablesFrom.empty()) {
    // Fetch + adopt, then fall through to the normal validation modes
    // (which now reuse the adopted tables instead of rebuilding).
    int Rc = fetchTables(Opts);
    if (Rc >= 0)
      return Rc;
    Opts.ExpectHash.clear(); // consumed by the fetch, not dump-tables
    if (Opts.Files.empty() && !Opts.Selftest && !Opts.Audit &&
        !Opts.DumpTables)
      return 0;
  }
  if (Opts.Audit) {
    analysis::AuditReport R = Opts.Isa == core::IsaMips
                                  ? analysis::auditMipsPolicy()
                                  : analysis::auditShippedPolicy();
    std::printf("%s", R.render().c_str());
    return R.Pass ? 0 : 1;
  }
  if (Opts.DumpTables)
    return dumpTables(Opts);
  if (!Opts.Selftest && Opts.Files.empty())
    return usage(argv[0]);

  if (Opts.Isa == core::IsaMips) {
    if (Opts.Disasm || Opts.Explain || Opts.Lint || Opts.LintJson ||
        Opts.Selftest || !Opts.PatchSpecs.empty() || Opts.Jobs) {
      std::fprintf(stderr,
                   "error: --isa mips supports plain image checks only "
                   "(the requested mode is x86-specific)\n");
      return 2;
    }
    int Rc = 0;
    for (const std::string &Path : Opts.Files) {
      std::vector<uint8_t> Code;
      if (!readFile(Path, Code)) {
        std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
        return 2;
      }
      Rc |= validateMips(Code);
    }
    return Rc;
  }

  if (!Opts.PatchSpecs.empty()) {
    // Local incremental mode: every verdict is cross-checked against a
    // full re-check inside runPatchesLocal.
    std::vector<PatchSpec> Specs(Opts.PatchSpecs.size());
    for (size_t I = 0; I < Opts.PatchSpecs.size(); ++I)
      if (!parsePatchSpec(Opts.PatchSpecs[I], Specs[I])) {
        std::fprintf(stderr, "error: bad --patch spec %s (want OFF:HEX)\n",
                     Opts.PatchSpecs[I].c_str());
        return 2;
      }
    svc::Metrics M;
    int Rc = 0;
    for (const std::string &Path : Opts.Files) {
      std::vector<uint8_t> Code;
      if (!readFile(Path, Code)) {
        std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
        return 2;
      }
      Rc |= runPatchesLocal(Path, std::move(Code), Specs, Opts.Lint, &M);
    }
    if (Opts.Stats)
      std::printf("\n--- service metrics ---\n%s", M.dump().c_str());
    return Rc;
  }

  svc::Metrics Metrics;
  std::unique_ptr<svc::VerifierPool> Pool;
  std::unique_ptr<svc::ParallelVerifier> PV;
  if (Opts.Jobs) {
    Pool = std::make_unique<svc::VerifierPool>(
        svc::VerifierPool::Options{Opts.Jobs}, &Metrics);
    PV = std::make_unique<svc::ParallelVerifier>(*Pool);
  }

  int Rc;
  if (Opts.Selftest) {
    Rc = selftest(Opts, Pool.get(), PV.get(), &Metrics);
  } else if (Pool && Opts.Files.size() > 1 && !Opts.Disasm && !Opts.Lint) {
    // Whole-batch mode: all images in flight at once.
    std::vector<std::vector<uint8_t>> Images;
    for (const std::string &Path : Opts.Files) {
      std::ifstream In(Path, std::ios::binary);
      if (!In) {
        std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
        return 2;
      }
      Images.emplace_back((std::istreambuf_iterator<char>(In)),
                          std::istreambuf_iterator<char>());
    }
    auto Futures = Pool->submit(Images);
    Rc = 0;
    for (size_t I = 0; I < Futures.size(); ++I) {
      core::CheckResult R = Futures[I].get();
      std::printf("%-40s %s%s%s  (%zu bytes)\n", Opts.Files[I].c_str(),
                  R.Ok ? "ACCEPT" : "REJECT",
                  R.Ok ? "" : "  reason: ",
                  R.Ok ? "" : core::rejectReasonName(R.Reason),
                  Images[I].size());
      Rc |= R.Ok ? 0 : 1;
    }
  } else {
    Rc = 0;
    for (const std::string &Path : Opts.Files) {
      std::ifstream In(Path, std::ios::binary);
      if (!In) {
        std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
        return 2;
      }
      std::vector<uint8_t> Code((std::istreambuf_iterator<char>(In)),
                                std::istreambuf_iterator<char>());
      Rc |= validate(Code, Opts, PV.get(), &Metrics);
    }
  }

  if (Opts.Stats) {
    std::printf("\n--- service metrics ---\n%s", Metrics.dump().c_str());
    if (!Opts.Jobs)
      std::printf("(sequential run: pass --jobs N to exercise the service "
                  "layer)\n");
  }
  return Rc;
}
