//===- examples/validator_cli.cpp ------------------------------*- C++ -*-===//
//
// An ncval-style command-line validator — the form RockSalt ships in
// for the NaCl runtime (paper section 3.3 modified the ncval tool to
// call RockSalt's verifier). Reads raw code images and reports the
// verdicts of the verifiers in this repository, with optional
// disassembly of the checker's parse.
//
// With --jobs N the verification routes through the service layer: a
// VerifierPool of N workers batch-verifies multiple images, and a
// single image is chunk-parallelized by ParallelVerifier. --stats dumps
// the service metrics (counters and histograms) after the run.
//
// --explain shrinks a rejected image to the minimal byte sequence that
// is still rejected for the same reason (the fuzz harness's
// delta-debugging minimizer) and prints it — the offending construct on
// a nop sled instead of a needle in a 4 KB image.
//
// --lint recovers the control-flow graph the policy implies for each
// image and prints severity-graded diagnostics (see analysis/CfgLint.h);
// --audit runs the policy meta-verifier over the shipped DFA tables
// (disjointness, decoder inclusion, health, minimization) and exits
// nonzero if any obligation fails.
//
// --dump-tables serializes the shipped tables into the versioned "RSTB"
// format (regex/TableIO.h), verifies the in-process round-trip is
// bit-identical, and prints per-table stats plus the content hash.
// --tables-out FILE also writes the blob; --expect-hash HEX exits
// nonzero unless the content hash matches — the CI drift gate.
//
// Usage:
//   validator_cli <image.bin>... [--disassemble] [--explain] [--lint]
//                                [--jobs N] [--stats]
//   validator_cli --selftest [--lint] [--jobs N] [--stats]
//   validator_cli --audit
//   validator_cli --dump-tables [--tables-out FILE] [--expect-hash HEX]
//
//===----------------------------------------------------------------------===//

#include "analysis/CfgLint.h"
#include "analysis/PolicyAudit.h"
#include "core/BaselineChecker.h"
#include "core/Verifier.h"
#include "regex/TableIO.h"
#include "fuzz/Minimizer.h"
#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"
#include "svc/ParallelVerifier.h"
#include "svc/VerifierPool.h"
#include "x86/FastDecoder.h"
#include "x86/Printer.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace rocksalt;

namespace {

struct CliOptions {
  std::vector<std::string> Files;
  unsigned Jobs = 0; ///< 0: sequential; >= 1: route through VerifierPool
  bool Stats = false;
  bool Disasm = false;
  bool Explain = false; ///< minimize rejected images to their core
  bool Lint = false;    ///< recover + lint the implied CFG per image
  bool Audit = false;   ///< meta-verify the shipped policy tables
  bool DumpTables = false; ///< serialize + round-trip the shipped tables
  std::string TablesOut;   ///< optional output path for the blob
  std::string ExpectHash;  ///< optional pinned content hash (CI gate)
  bool Selftest = false;
};

/// Serializes the shipped tables, proves the round-trip is bit-identical
/// in-process, prints stats + content hash, optionally writes the blob
/// and enforces a pinned hash. Returns a process exit code.
int dumpTables(const CliOptions &Opts) {
  const core::PolicyTables &T = core::policyTables();
  std::vector<uint8_t> Blob = core::serializePolicyTables(T);

  core::PolicyTables Back = core::deserializePolicyTables(Blob);
  std::vector<uint8_t> Blob2 = core::serializePolicyTables(Back);
  if (Blob != Blob2) {
    std::fprintf(stderr,
                 "error: serialize/deserialize round-trip is not "
                 "bit-identical (%zu vs %zu bytes)\n",
                 Blob.size(), Blob2.size());
    return 1;
  }

  std::string Hash = re::blobHashHex(Blob);
  std::printf("format:  RSTB v%u, %zu bytes\n", re::TableFormatVersion,
              Blob.size());
  std::printf("tables:  NoControlFlow %zu states, DirectJump %zu states, "
              "MaskedJump %zu states\n",
              T.NoControlFlow.numStates(), T.DirectJump.numStates(),
              T.MaskedJump.numStates());
  std::printf("hash:    %s\n", Hash.c_str());
  std::printf("roundtrip: bit-identical\n");

  if (!Opts.TablesOut.empty()) {
    std::ofstream Out(Opts.TablesOut, std::ios::binary);
    if (!Out ||
        !Out.write(reinterpret_cast<const char *>(Blob.data()), Blob.size())) {
      std::fprintf(stderr, "error: cannot write %s\n", Opts.TablesOut.c_str());
      return 1;
    }
    std::printf("wrote:   %s\n", Opts.TablesOut.c_str());
  }

  if (!Opts.ExpectHash.empty() && Opts.ExpectHash != Hash) {
    std::fprintf(stderr,
                 "error: content hash drift\n  expected %s\n  actual   %s\n"
                 "(intentional grammar/format change? refresh the pinned "
                 "hash in tests/CMakeLists.txt and "
                 "tests/policy_table_format_test.cpp)\n",
                 Opts.ExpectHash.c_str(), Hash.c_str());
    return 1;
  }
  return 0;
}

void disassemble(const std::vector<uint8_t> &Code,
                 const core::CheckResult &R) {
  uint32_t Pos = 0;
  while (Pos < Code.size()) {
    if (R.PairJmp.size() > Pos && R.PairJmp[Pos])
      std::printf("        %04x:   (jump half of the masked pair)\n", Pos);
    auto D = x86::fastDecode(Code.data() + Pos, Code.size() - Pos);
    const char *Mark = (Pos % core::BundleSize == 0) ? "|" : " ";
    if (!D) {
      std::printf("      %s %04x:   .byte 0x%02x   <- not decodable\n",
                  Mark, Pos, Code[Pos]);
      Pos += 1;
      continue;
    }
    std::printf("      %s %04x:   %s\n", Mark, Pos,
                x86::printInstr(D->I).c_str());
    Pos += D->Length;
  }
}

/// Shrinks a rejected image to the smallest byte sequence RockSalt still
/// rejects for the same reason, and shows it.
void explainRejection(const std::vector<uint8_t> &Code,
                      const core::CheckResult &Full) {
  core::RockSalt V;
  fuzz::MinimizeResult MR = fuzz::minimizeImage(
      Code, [&](const std::vector<uint8_t> &C) {
        core::CheckResult R = V.check(C);
        return !R.Ok && R.Reason == Full.Reason;
      });
  std::printf("  minimal %s reproducer (%zu bytes, from %zu; %llu checks):\n",
              core::rejectReasonName(Full.Reason), MR.Image.size(),
              Code.size(), static_cast<unsigned long long>(MR.Evals));
  std::printf("   ");
  for (uint8_t B : MR.Image)
    std::printf(" %02x", B);
  std::printf("\n");
  disassemble(MR.Image, V.check(MR.Image));
}

/// One image through RockSalt (sequential or chunk-parallel) plus the
/// ncval-style baseline, with timings.
int validate(const std::vector<uint8_t> &Code, const CliOptions &Opts,
             svc::ParallelVerifier *PV, svc::Metrics *M) {
  auto T0 = std::chrono::steady_clock::now();
  core::CheckResult R;
  if (PV) {
    R = PV->check(Code);
  } else {
    core::RockSalt V;
    R = V.check(Code);
  }
  auto T1 = std::chrono::steady_clock::now();
  bool Baseline = core::baselineVerify(Code);
  auto T2 = std::chrono::steady_clock::now();

  double RockMs = std::chrono::duration<double, std::milli>(T1 - T0).count();
  double BaseMs = std::chrono::duration<double, std::milli>(T2 - T1).count();

  std::printf("image: %zu bytes (%zu bundles)\n", Code.size(),
              Code.size() / core::BundleSize);
  std::printf("  rocksalt%s:  %s  (%.3f ms)%s%s\n", PV ? " (parallel)" : "",
              R.Ok ? "ACCEPT" : "REJECT", RockMs,
              R.Ok ? "" : "  reason: ",
              R.Ok ? "" : core::rejectReasonName(R.Reason));
  std::printf("  baseline:  %s  (%.3f ms)\n",
              Baseline ? "ACCEPT" : "REJECT", BaseMs);
  if (R.Ok != Baseline)
    std::printf("  *** CHECKER DISAGREEMENT — please report ***\n");
  if (Opts.Disasm && !Code.empty())
    disassemble(Code, R);
  if (Opts.Explain && !R.Ok && !Code.empty())
    explainRejection(Code, R);
  if (Opts.Lint && !Code.empty()) {
    analysis::CfgLintResult L =
        analysis::lintImage(core::policyTables(), Code, M);
    std::printf("%s", L.render().c_str());
  }
  return R.Ok ? 0 : 1;
}

int selftest(const CliOptions &Opts, svc::VerifierPool *Pool,
             svc::ParallelVerifier *PV, svc::Metrics *M) {
  nacl::WorkloadOptions WOpts;
  WOpts.TargetBytes = 512;
  WOpts.Seed = 42;
  std::vector<uint8_t> Code = nacl::generateWorkload(WOpts);
  std::printf("== generated compliant workload ==\n");
  CliOptions Inner = Opts;
  Inner.Disasm = true;
  int Rc = validate(Code, Inner, PV, M);

  Rng R(7);
  auto Bad = nacl::applyAttack(Code, nacl::Attack::InsertRet, R);
  if (Bad) {
    std::printf("\n== after inserting a RET ==\n");
    Inner.Disasm = false;
    validate(*Bad, Inner, PV, M);
  }

  if (Pool) {
    // Exercise the batch path too: a mixed accept/reject batch.
    std::printf("\n== pool batch: 16 generated + mutated images ==\n");
    std::vector<std::vector<uint8_t>> Batch;
    for (uint32_t I = 0; I < 16; ++I) {
      WOpts.Seed = 100 + I;
      Batch.push_back(nacl::generateWorkload(WOpts));
      if (I & 1)
        Batch.back() = nacl::mutateRandom(Batch.back(), R);
    }
    auto Futures = Pool->submit(Batch);
    uint32_t Accepted = 0;
    for (auto &F : Futures)
      Accepted += F.get().Ok ? 1 : 0;
    std::printf("accepted %u / 16\n", Accepted);
  }
  return Rc;
}

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s <image.bin>... [--disassemble] [--explain] "
               "[--lint] [--jobs N] [--stats]"
               "\n       %s --selftest [--lint] [--jobs N] [--stats]"
               "\n       %s --audit"
               "\n       %s --dump-tables [--tables-out FILE] "
               "[--expect-hash HEX]\n",
               Prog, Prog, Prog, Prog);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  CliOptions Opts;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--selftest") == 0) {
      Opts.Selftest = true;
    } else if (std::strcmp(argv[I], "--disassemble") == 0) {
      Opts.Disasm = true;
    } else if (std::strcmp(argv[I], "--explain") == 0) {
      Opts.Explain = true;
    } else if (std::strcmp(argv[I], "--lint") == 0) {
      Opts.Lint = true;
    } else if (std::strcmp(argv[I], "--audit") == 0) {
      Opts.Audit = true;
    } else if (std::strcmp(argv[I], "--dump-tables") == 0) {
      Opts.DumpTables = true;
    } else if (std::strcmp(argv[I], "--tables-out") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      Opts.TablesOut = argv[++I];
    } else if (std::strcmp(argv[I], "--expect-hash") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      Opts.ExpectHash = argv[++I];
    } else if (std::strcmp(argv[I], "--stats") == 0) {
      Opts.Stats = true;
    } else if (std::strcmp(argv[I], "--jobs") == 0) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      long N = std::strtol(argv[++I], nullptr, 10);
      if (N < 1)
        return usage(argv[0]);
      Opts.Jobs = unsigned(N);
    } else if (argv[I][0] == '-') {
      return usage(argv[0]);
    } else {
      Opts.Files.push_back(argv[I]);
    }
  }
  if (Opts.Audit) {
    analysis::AuditReport R = analysis::auditShippedPolicy();
    std::printf("%s", R.render().c_str());
    return R.Pass ? 0 : 1;
  }
  if (Opts.DumpTables)
    return dumpTables(Opts);
  if (!Opts.Selftest && Opts.Files.empty())
    return usage(argv[0]);

  svc::Metrics Metrics;
  std::unique_ptr<svc::VerifierPool> Pool;
  std::unique_ptr<svc::ParallelVerifier> PV;
  if (Opts.Jobs) {
    Pool = std::make_unique<svc::VerifierPool>(
        svc::VerifierPool::Options{Opts.Jobs}, &Metrics);
    PV = std::make_unique<svc::ParallelVerifier>(*Pool);
  }

  int Rc;
  if (Opts.Selftest) {
    Rc = selftest(Opts, Pool.get(), PV.get(), &Metrics);
  } else if (Pool && Opts.Files.size() > 1 && !Opts.Disasm && !Opts.Lint) {
    // Whole-batch mode: all images in flight at once.
    std::vector<std::vector<uint8_t>> Images;
    for (const std::string &Path : Opts.Files) {
      std::ifstream In(Path, std::ios::binary);
      if (!In) {
        std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
        return 2;
      }
      Images.emplace_back((std::istreambuf_iterator<char>(In)),
                          std::istreambuf_iterator<char>());
    }
    auto Futures = Pool->submit(Images);
    Rc = 0;
    for (size_t I = 0; I < Futures.size(); ++I) {
      core::CheckResult R = Futures[I].get();
      std::printf("%-40s %s%s%s  (%zu bytes)\n", Opts.Files[I].c_str(),
                  R.Ok ? "ACCEPT" : "REJECT",
                  R.Ok ? "" : "  reason: ",
                  R.Ok ? "" : core::rejectReasonName(R.Reason),
                  Images[I].size());
      Rc |= R.Ok ? 0 : 1;
    }
  } else {
    Rc = 0;
    for (const std::string &Path : Opts.Files) {
      std::ifstream In(Path, std::ios::binary);
      if (!In) {
        std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
        return 2;
      }
      std::vector<uint8_t> Code((std::istreambuf_iterator<char>(In)),
                                std::istreambuf_iterator<char>());
      Rc |= validate(Code, Opts, PV.get(), &Metrics);
    }
  }

  if (Opts.Stats) {
    std::printf("\n--- service metrics ---\n%s", Metrics.dump().c_str());
    if (!Opts.Jobs)
      std::printf("(sequential run: pass --jobs N to exercise the service "
                  "layer)\n");
  }
  return Rc;
}
