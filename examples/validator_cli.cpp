//===- examples/validator_cli.cpp ------------------------------*- C++ -*-===//
//
// An ncval-style command-line validator — the form RockSalt ships in
// for the NaCl runtime (paper section 3.3 modified the ncval tool to
// call RockSalt's verifier). Reads a raw code image and reports the
// verdicts of all three verifiers in this repository, with optional
// disassembly of the checker's parse.
//
// Usage:
//   validator_cli <image.bin> [--disassemble]
//   validator_cli --selftest          # generate, verify, mutate, verify
//
//===----------------------------------------------------------------------===//

#include "core/BaselineChecker.h"
#include "core/Verifier.h"
#include "nacl/Mutator.h"
#include "nacl/WorkloadGen.h"
#include "x86/FastDecoder.h"
#include "x86/Printer.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

using namespace rocksalt;

namespace {

void disassemble(const std::vector<uint8_t> &Code,
                 const core::CheckResult &R) {
  uint32_t Pos = 0;
  while (Pos < Code.size()) {
    if (R.PairJmp.size() > Pos && R.PairJmp[Pos])
      std::printf("        %04x:   (jump half of the masked pair)\n", Pos);
    auto D = x86::fastDecode(Code.data() + Pos, Code.size() - Pos);
    const char *Mark = (Pos % core::BundleSize == 0) ? "|" : " ";
    if (!D) {
      std::printf("      %s %04x:   .byte 0x%02x   <- not decodable\n",
                  Mark, Pos, Code[Pos]);
      Pos += 1;
      continue;
    }
    std::printf("      %s %04x:   %s\n", Mark, Pos,
                x86::printInstr(D->I).c_str());
    Pos += D->Length;
  }
}

int validate(const std::vector<uint8_t> &Code, bool Disasm) {
  core::RockSalt V;
  auto T0 = std::chrono::steady_clock::now();
  core::CheckResult R = V.check(Code);
  auto T1 = std::chrono::steady_clock::now();
  bool Baseline = core::baselineVerify(Code);
  auto T2 = std::chrono::steady_clock::now();

  double RockMs = std::chrono::duration<double, std::milli>(T1 - T0).count();
  double BaseMs = std::chrono::duration<double, std::milli>(T2 - T1).count();

  std::printf("image: %zu bytes (%zu bundles)\n", Code.size(),
              Code.size() / core::BundleSize);
  std::printf("  rocksalt:  %s  (%.3f ms)\n", R.Ok ? "ACCEPT" : "REJECT",
              RockMs);
  std::printf("  baseline:  %s  (%.3f ms)\n",
              Baseline ? "ACCEPT" : "REJECT", BaseMs);
  if (R.Ok != Baseline)
    std::printf("  *** CHECKER DISAGREEMENT — please report ***\n");
  if (Disasm && !Code.empty())
    disassemble(Code, R);
  return R.Ok ? 0 : 1;
}

int selftest() {
  nacl::WorkloadOptions Opts;
  Opts.TargetBytes = 512;
  Opts.Seed = 42;
  std::vector<uint8_t> Code = nacl::generateWorkload(Opts);
  std::printf("== generated compliant workload ==\n");
  int Rc = validate(Code, /*Disasm=*/true);

  Rng R(7);
  auto Bad = nacl::applyAttack(Code, nacl::Attack::InsertRet, R);
  if (Bad) {
    std::printf("\n== after inserting a RET ==\n");
    validate(*Bad, /*Disasm=*/false);
  }
  return Rc;
}

} // namespace

int main(int argc, char **argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--selftest") == 0)
    return selftest();
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <image.bin> [--disassemble] | --selftest\n",
                 argv[0]);
    return 2;
  }

  std::ifstream In(argv[1], std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 2;
  }
  std::vector<uint8_t> Code((std::istreambuf_iterator<char>(In)),
                            std::istreambuf_iterator<char>());
  bool Disasm = argc >= 3 && std::strcmp(argv[2], "--disassemble") == 0;
  return validate(Code, Disasm);
}
