//===- examples/jump_table.cpp ---------------------------------*- C++ -*-===//
//
// The scenario the nacljmp exists for (paper section 3): compiled
// switch statements and function pointers become *computed* jumps, which
// the policy only admits through the mask+jump pair. This example builds
// a dispatcher that:
//
//   1. reads a selector from data memory,
//   2. computes handler = base + selector * 32 (handlers are one bundle
//      each, so targets are bundle-aligned by construction),
//   3. transfers control with a masked jump — the AND makes the transfer
//      safe even for out-of-range selectors: a hostile selector can only
//      reach some 32-byte boundary inside the code segment, never the
//      middle of an instruction, and beyond-limit targets fault.
//
// The program dispatches over selectors 0..2 (+ one hostile selector)
// and reports what each handler printed.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "nacl/Assembler.h"
#include "nacl/TrustedRuntime.h"
#include "sem/Cpu.h"

#include <cstdio>

using namespace rocksalt;
using x86::Addr;
using x86::Instr;
using x86::Opcode;
using x86::Operand;
using x86::Reg;

namespace {

Instr movImm(Reg R, uint32_t V) {
  Instr I;
  I.Op = Opcode::MOV;
  I.Op1 = Operand::reg(R);
  I.Op2 = Operand::imm(V);
  return I;
}

Instr movRegMem(Reg R, Addr A) {
  Instr I;
  I.Op = Opcode::MOV;
  I.Op1 = Operand::reg(R);
  I.Op2 = Operand::mem(A);
  return I;
}

void emitPutChar(nacl::Assembler &A, char C) {
  A.emit(movImm(Reg::EAX, nacl::TrustedRuntime::SvcPutChar));
  A.emit(movImm(Reg::EBX, static_cast<uint8_t>(C)));
  A.hlt();
}

} // namespace

int main() {
  nacl::Assembler A;
  constexpr uint32_t SelectorSlot = 0x200; // data offset of the selector
  constexpr uint32_t HandlerBase = 0x80;   // code offset of handler 0

  // Dispatcher: ebx = HandlerBase + 32 * mem[SelectorSlot]; nacljmp ebx.
  A.emit(movRegMem(Reg::EBX, Addr::disp(SelectorSlot)));
  {
    Instr Shl;
    Shl.Op = Opcode::SHL;
    Shl.Op1 = Operand::reg(Reg::EBX);
    Shl.Op2 = Operand::imm(5); // * 32
    A.emit(Shl);
    Instr AddBase;
    AddBase.Op = Opcode::ADD;
    AddBase.Op1 = Operand::reg(Reg::EBX);
    AddBase.Op2 = Operand::imm(HandlerBase);
    A.emit(AddBase);
  }
  A.maskedJump(Reg::EBX);

  // Handlers: one bundle each starting at HandlerBase.
  while (A.here() < HandlerBase)
    A.emit(Instr{}); // nop padding

  // Handler 0 prints 'A' and exits 0; handler 1 prints 'B'; handler 2
  // prints 'C'. Each must fit one 32-byte bundle.
  for (int H = 0; H < 3; ++H) {
    A.padToBundle();
    emitPutChar(A, static_cast<char>('A' + H));
    A.emit(movImm(Reg::EBX, static_cast<uint32_t>(H)));
    A.emit(movImm(Reg::EAX, nacl::TrustedRuntime::SvcExit));
    A.hlt();
  }
  std::vector<uint8_t> Code = A.finish();

  core::RockSalt Checker;
  if (!Checker.verify(Code)) {
    std::printf("checker rejected the dispatcher (bug!)\n");
    return 1;
  }
  std::printf("dispatcher verified: %zu bytes\n\n", Code.size());

  // Drive it with each selector, including a hostile one.
  const uint32_t Selectors[] = {0, 1, 2, 0xDEADBEEF};
  for (uint32_t Sel : Selectors) {
    sem::Cpu Cpu;
    Cpu.configureSandbox(0x10000, static_cast<uint32_t>(Code.size()),
                         0x400000, 0x10000, Code);
    Cpu.M.Mem.store(0x400000 + SelectorSlot, 4, Sel);

    nacl::TrustedRuntime Runtime;
    auto R = Runtime.run(Cpu, 10000);
    if (R.Exited)
      std::printf("selector 0x%08x -> handler output \"%s\", exit %u\n",
                  Sel, R.Output.c_str(), R.ExitCode);
    else
      std::printf("selector 0x%08x -> contained by the sandbox "
                  "(status: %s)\n",
                  Sel,
                  R.Final == rtl::Status::Fault ? "segment fault"
                                                : "stopped");
  }
  std::printf("\nthe hostile selector cannot escape: the mask aligns it "
              "and the CS limit bounds it.\n");
  return 0;
}
