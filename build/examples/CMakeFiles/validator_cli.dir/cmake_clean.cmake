file(REMOVE_RECURSE
  "CMakeFiles/validator_cli.dir/validator_cli.cpp.o"
  "CMakeFiles/validator_cli.dir/validator_cli.cpp.o.d"
  "validator_cli"
  "validator_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validator_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
