# Empty dependencies file for validator_cli.
# This may be replaced when dependencies are built.
