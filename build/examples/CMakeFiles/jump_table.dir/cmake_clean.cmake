file(REMOVE_RECURSE
  "CMakeFiles/jump_table.dir/jump_table.cpp.o"
  "CMakeFiles/jump_table.dir/jump_table.cpp.o.d"
  "jump_table"
  "jump_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jump_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
