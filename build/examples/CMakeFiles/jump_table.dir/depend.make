# Empty dependencies file for jump_table.
# This may be replaced when dependencies are built.
