# Empty dependencies file for x86_decode_test.
# This may be replaced when dependencies are built.
