file(REMOVE_RECURSE
  "CMakeFiles/x86_decode_test.dir/x86_decode_test.cpp.o"
  "CMakeFiles/x86_decode_test.dir/x86_decode_test.cpp.o.d"
  "x86_decode_test"
  "x86_decode_test.pdb"
  "x86_decode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x86_decode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
