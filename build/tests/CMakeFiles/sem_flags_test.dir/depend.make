# Empty dependencies file for sem_flags_test.
# This may be replaced when dependencies are built.
