file(REMOVE_RECURSE
  "CMakeFiles/sem_flags_test.dir/sem_flags_test.cpp.o"
  "CMakeFiles/sem_flags_test.dir/sem_flags_test.cpp.o.d"
  "sem_flags_test"
  "sem_flags_test.pdb"
  "sem_flags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sem_flags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
