# Empty dependencies file for sem_differential_test.
# This may be replaced when dependencies are built.
