file(REMOVE_RECURSE
  "CMakeFiles/sem_differential_test.dir/sem_differential_test.cpp.o"
  "CMakeFiles/sem_differential_test.dir/sem_differential_test.cpp.o.d"
  "sem_differential_test"
  "sem_differential_test.pdb"
  "sem_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sem_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
