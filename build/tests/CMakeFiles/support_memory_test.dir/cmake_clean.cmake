file(REMOVE_RECURSE
  "CMakeFiles/support_memory_test.dir/support_memory_test.cpp.o"
  "CMakeFiles/support_memory_test.dir/support_memory_test.cpp.o.d"
  "support_memory_test"
  "support_memory_test.pdb"
  "support_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
