file(REMOVE_RECURSE
  "CMakeFiles/x86_ambiguity_test.dir/x86_ambiguity_test.cpp.o"
  "CMakeFiles/x86_ambiguity_test.dir/x86_ambiguity_test.cpp.o.d"
  "x86_ambiguity_test"
  "x86_ambiguity_test.pdb"
  "x86_ambiguity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x86_ambiguity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
