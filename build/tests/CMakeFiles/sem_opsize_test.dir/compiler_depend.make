# Empty compiler generated dependencies file for sem_opsize_test.
# This may be replaced when dependencies are built.
