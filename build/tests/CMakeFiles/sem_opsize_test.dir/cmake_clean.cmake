file(REMOVE_RECURSE
  "CMakeFiles/sem_opsize_test.dir/sem_opsize_test.cpp.o"
  "CMakeFiles/sem_opsize_test.dir/sem_opsize_test.cpp.o.d"
  "sem_opsize_test"
  "sem_opsize_test.pdb"
  "sem_opsize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sem_opsize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
