file(REMOVE_RECURSE
  "CMakeFiles/grammar_fuzz_test.dir/grammar_fuzz_test.cpp.o"
  "CMakeFiles/grammar_fuzz_test.dir/grammar_fuzz_test.cpp.o.d"
  "grammar_fuzz_test"
  "grammar_fuzz_test.pdb"
  "grammar_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grammar_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
