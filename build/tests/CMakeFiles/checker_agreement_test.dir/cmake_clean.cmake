file(REMOVE_RECURSE
  "CMakeFiles/checker_agreement_test.dir/checker_agreement_test.cpp.o"
  "CMakeFiles/checker_agreement_test.dir/checker_agreement_test.cpp.o.d"
  "checker_agreement_test"
  "checker_agreement_test.pdb"
  "checker_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
