# Empty dependencies file for checker_agreement_test.
# This may be replaced when dependencies are built.
