file(REMOVE_RECURSE
  "CMakeFiles/integration_programs_test.dir/integration_programs_test.cpp.o"
  "CMakeFiles/integration_programs_test.dir/integration_programs_test.cpp.o.d"
  "integration_programs_test"
  "integration_programs_test.pdb"
  "integration_programs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
