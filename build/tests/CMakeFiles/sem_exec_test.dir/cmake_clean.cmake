file(REMOVE_RECURSE
  "CMakeFiles/sem_exec_test.dir/sem_exec_test.cpp.o"
  "CMakeFiles/sem_exec_test.dir/sem_exec_test.cpp.o.d"
  "sem_exec_test"
  "sem_exec_test.pdb"
  "sem_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sem_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
