# Empty dependencies file for sem_exec_test.
# This may be replaced when dependencies are built.
