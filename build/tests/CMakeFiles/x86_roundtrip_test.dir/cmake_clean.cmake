file(REMOVE_RECURSE
  "CMakeFiles/x86_roundtrip_test.dir/x86_roundtrip_test.cpp.o"
  "CMakeFiles/x86_roundtrip_test.dir/x86_roundtrip_test.cpp.o.d"
  "x86_roundtrip_test"
  "x86_roundtrip_test.pdb"
  "x86_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x86_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
