file(REMOVE_RECURSE
  "CMakeFiles/regex_dfa_test.dir/regex_dfa_test.cpp.o"
  "CMakeFiles/regex_dfa_test.dir/regex_dfa_test.cpp.o.d"
  "regex_dfa_test"
  "regex_dfa_test.pdb"
  "regex_dfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_dfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
