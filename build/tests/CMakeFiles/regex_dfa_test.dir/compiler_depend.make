# Empty compiler generated dependencies file for regex_dfa_test.
# This may be replaced when dependencies are built.
