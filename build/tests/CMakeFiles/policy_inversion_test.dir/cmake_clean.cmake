file(REMOVE_RECURSE
  "CMakeFiles/policy_inversion_test.dir/policy_inversion_test.cpp.o"
  "CMakeFiles/policy_inversion_test.dir/policy_inversion_test.cpp.o.d"
  "policy_inversion_test"
  "policy_inversion_test.pdb"
  "policy_inversion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_inversion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
