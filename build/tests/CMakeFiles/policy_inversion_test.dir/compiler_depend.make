# Empty compiler generated dependencies file for policy_inversion_test.
# This may be replaced when dependencies are built.
