file(REMOVE_RECURSE
  "CMakeFiles/mips_test.dir/mips_test.cpp.o"
  "CMakeFiles/mips_test.dir/mips_test.cpp.o.d"
  "mips_test"
  "mips_test.pdb"
  "mips_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mips_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
