# Empty dependencies file for mips_test.
# This may be replaced when dependencies are built.
