# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_bitvec_test[1]_include.cmake")
include("/root/repo/build/tests/support_memory_test[1]_include.cmake")
include("/root/repo/build/tests/regex_test[1]_include.cmake")
include("/root/repo/build/tests/regex_dfa_test[1]_include.cmake")
include("/root/repo/build/tests/grammar_test[1]_include.cmake")
include("/root/repo/build/tests/x86_decode_test[1]_include.cmake")
include("/root/repo/build/tests/x86_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/x86_ambiguity_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/sem_exec_test[1]_include.cmake")
include("/root/repo/build/tests/sem_differential_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/checker_agreement_test[1]_include.cmake")
include("/root/repo/build/tests/safety_property_test[1]_include.cmake")
include("/root/repo/build/tests/policy_inversion_test[1]_include.cmake")
include("/root/repo/build/tests/grammar_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/sem_flags_test[1]_include.cmake")
include("/root/repo/build/tests/sem_opsize_test[1]_include.cmake")
include("/root/repo/build/tests/core_units_test[1]_include.cmake")
include("/root/repo/build/tests/mips_test[1]_include.cmake")
include("/root/repo/build/tests/integration_programs_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_sweep_test[1]_include.cmake")
