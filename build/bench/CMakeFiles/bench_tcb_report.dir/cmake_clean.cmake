file(REMOVE_RECURSE
  "CMakeFiles/bench_tcb_report.dir/bench_tcb_report.cpp.o"
  "CMakeFiles/bench_tcb_report.dir/bench_tcb_report.cpp.o.d"
  "bench_tcb_report"
  "bench_tcb_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcb_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
