# Empty compiler generated dependencies file for bench_tcb_report.
# This may be replaced when dependencies are built.
