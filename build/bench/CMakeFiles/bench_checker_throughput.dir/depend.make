# Empty dependencies file for bench_checker_throughput.
# This may be replaced when dependencies are built.
