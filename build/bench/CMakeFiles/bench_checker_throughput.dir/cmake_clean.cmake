file(REMOVE_RECURSE
  "CMakeFiles/bench_checker_throughput.dir/bench_checker_throughput.cpp.o"
  "CMakeFiles/bench_checker_throughput.dir/bench_checker_throughput.cpp.o.d"
  "bench_checker_throughput"
  "bench_checker_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checker_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
