file(REMOVE_RECURSE
  "CMakeFiles/bench_decoder.dir/bench_decoder.cpp.o"
  "CMakeFiles/bench_decoder.dir/bench_decoder.cpp.o.d"
  "bench_decoder"
  "bench_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
