# Empty dependencies file for bench_decoder.
# This may be replaced when dependencies are built.
