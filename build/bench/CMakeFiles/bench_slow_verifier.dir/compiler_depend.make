# Empty compiler generated dependencies file for bench_slow_verifier.
# This may be replaced when dependencies are built.
