file(REMOVE_RECURSE
  "CMakeFiles/bench_slow_verifier.dir/bench_slow_verifier.cpp.o"
  "CMakeFiles/bench_slow_verifier.dir/bench_slow_verifier.cpp.o.d"
  "bench_slow_verifier"
  "bench_slow_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slow_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
