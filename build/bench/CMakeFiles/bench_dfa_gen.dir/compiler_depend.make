# Empty compiler generated dependencies file for bench_dfa_gen.
# This may be replaced when dependencies are built.
