file(REMOVE_RECURSE
  "CMakeFiles/bench_dfa_gen.dir/bench_dfa_gen.cpp.o"
  "CMakeFiles/bench_dfa_gen.dir/bench_dfa_gen.cpp.o.d"
  "bench_dfa_gen"
  "bench_dfa_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dfa_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
