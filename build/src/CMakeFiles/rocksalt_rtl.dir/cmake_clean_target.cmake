file(REMOVE_RECURSE
  "librocksalt_rtl.a"
)
