# Empty compiler generated dependencies file for rocksalt_rtl.
# This may be replaced when dependencies are built.
