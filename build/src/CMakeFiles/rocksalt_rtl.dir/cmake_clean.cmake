file(REMOVE_RECURSE
  "CMakeFiles/rocksalt_rtl.dir/rtl/Interp.cpp.o"
  "CMakeFiles/rocksalt_rtl.dir/rtl/Interp.cpp.o.d"
  "CMakeFiles/rocksalt_rtl.dir/rtl/Rtl.cpp.o"
  "CMakeFiles/rocksalt_rtl.dir/rtl/Rtl.cpp.o.d"
  "librocksalt_rtl.a"
  "librocksalt_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksalt_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
