file(REMOVE_RECURSE
  "librocksalt_nacl.a"
)
