# Empty compiler generated dependencies file for rocksalt_nacl.
# This may be replaced when dependencies are built.
