file(REMOVE_RECURSE
  "CMakeFiles/rocksalt_nacl.dir/nacl/Assembler.cpp.o"
  "CMakeFiles/rocksalt_nacl.dir/nacl/Assembler.cpp.o.d"
  "CMakeFiles/rocksalt_nacl.dir/nacl/Mutator.cpp.o"
  "CMakeFiles/rocksalt_nacl.dir/nacl/Mutator.cpp.o.d"
  "CMakeFiles/rocksalt_nacl.dir/nacl/TrustedRuntime.cpp.o"
  "CMakeFiles/rocksalt_nacl.dir/nacl/TrustedRuntime.cpp.o.d"
  "CMakeFiles/rocksalt_nacl.dir/nacl/WorkloadGen.cpp.o"
  "CMakeFiles/rocksalt_nacl.dir/nacl/WorkloadGen.cpp.o.d"
  "librocksalt_nacl.a"
  "librocksalt_nacl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksalt_nacl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
