file(REMOVE_RECURSE
  "librocksalt_mips.a"
)
