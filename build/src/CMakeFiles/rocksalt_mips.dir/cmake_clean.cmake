file(REMOVE_RECURSE
  "CMakeFiles/rocksalt_mips.dir/mips/Mips.cpp.o"
  "CMakeFiles/rocksalt_mips.dir/mips/Mips.cpp.o.d"
  "librocksalt_mips.a"
  "librocksalt_mips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksalt_mips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
