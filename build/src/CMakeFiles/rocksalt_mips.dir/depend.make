# Empty dependencies file for rocksalt_mips.
# This may be replaced when dependencies are built.
