file(REMOVE_RECURSE
  "librocksalt_x86.a"
)
