
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/Encoder.cpp" "src/CMakeFiles/rocksalt_x86.dir/x86/Encoder.cpp.o" "gcc" "src/CMakeFiles/rocksalt_x86.dir/x86/Encoder.cpp.o.d"
  "/root/repo/src/x86/FastDecoder.cpp" "src/CMakeFiles/rocksalt_x86.dir/x86/FastDecoder.cpp.o" "gcc" "src/CMakeFiles/rocksalt_x86.dir/x86/FastDecoder.cpp.o.d"
  "/root/repo/src/x86/GrammarDecoder.cpp" "src/CMakeFiles/rocksalt_x86.dir/x86/GrammarDecoder.cpp.o" "gcc" "src/CMakeFiles/rocksalt_x86.dir/x86/GrammarDecoder.cpp.o.d"
  "/root/repo/src/x86/Grammars.cpp" "src/CMakeFiles/rocksalt_x86.dir/x86/Grammars.cpp.o" "gcc" "src/CMakeFiles/rocksalt_x86.dir/x86/Grammars.cpp.o.d"
  "/root/repo/src/x86/Instr.cpp" "src/CMakeFiles/rocksalt_x86.dir/x86/Instr.cpp.o" "gcc" "src/CMakeFiles/rocksalt_x86.dir/x86/Instr.cpp.o.d"
  "/root/repo/src/x86/InstrGen.cpp" "src/CMakeFiles/rocksalt_x86.dir/x86/InstrGen.cpp.o" "gcc" "src/CMakeFiles/rocksalt_x86.dir/x86/InstrGen.cpp.o.d"
  "/root/repo/src/x86/Printer.cpp" "src/CMakeFiles/rocksalt_x86.dir/x86/Printer.cpp.o" "gcc" "src/CMakeFiles/rocksalt_x86.dir/x86/Printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rocksalt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rocksalt_regex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
