# Empty compiler generated dependencies file for rocksalt_x86.
# This may be replaced when dependencies are built.
