file(REMOVE_RECURSE
  "CMakeFiles/rocksalt_x86.dir/x86/Encoder.cpp.o"
  "CMakeFiles/rocksalt_x86.dir/x86/Encoder.cpp.o.d"
  "CMakeFiles/rocksalt_x86.dir/x86/FastDecoder.cpp.o"
  "CMakeFiles/rocksalt_x86.dir/x86/FastDecoder.cpp.o.d"
  "CMakeFiles/rocksalt_x86.dir/x86/GrammarDecoder.cpp.o"
  "CMakeFiles/rocksalt_x86.dir/x86/GrammarDecoder.cpp.o.d"
  "CMakeFiles/rocksalt_x86.dir/x86/Grammars.cpp.o"
  "CMakeFiles/rocksalt_x86.dir/x86/Grammars.cpp.o.d"
  "CMakeFiles/rocksalt_x86.dir/x86/Instr.cpp.o"
  "CMakeFiles/rocksalt_x86.dir/x86/Instr.cpp.o.d"
  "CMakeFiles/rocksalt_x86.dir/x86/InstrGen.cpp.o"
  "CMakeFiles/rocksalt_x86.dir/x86/InstrGen.cpp.o.d"
  "CMakeFiles/rocksalt_x86.dir/x86/Printer.cpp.o"
  "CMakeFiles/rocksalt_x86.dir/x86/Printer.cpp.o.d"
  "librocksalt_x86.a"
  "librocksalt_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksalt_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
