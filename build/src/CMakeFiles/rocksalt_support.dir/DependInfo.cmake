
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/Bitvec.cpp" "src/CMakeFiles/rocksalt_support.dir/support/Bitvec.cpp.o" "gcc" "src/CMakeFiles/rocksalt_support.dir/support/Bitvec.cpp.o.d"
  "/root/repo/src/support/Memory.cpp" "src/CMakeFiles/rocksalt_support.dir/support/Memory.cpp.o" "gcc" "src/CMakeFiles/rocksalt_support.dir/support/Memory.cpp.o.d"
  "/root/repo/src/support/Oracle.cpp" "src/CMakeFiles/rocksalt_support.dir/support/Oracle.cpp.o" "gcc" "src/CMakeFiles/rocksalt_support.dir/support/Oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
