file(REMOVE_RECURSE
  "librocksalt_support.a"
)
