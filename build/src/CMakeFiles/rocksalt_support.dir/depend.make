# Empty dependencies file for rocksalt_support.
# This may be replaced when dependencies are built.
