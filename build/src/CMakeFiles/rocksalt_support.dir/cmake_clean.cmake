file(REMOVE_RECURSE
  "CMakeFiles/rocksalt_support.dir/support/Bitvec.cpp.o"
  "CMakeFiles/rocksalt_support.dir/support/Bitvec.cpp.o.d"
  "CMakeFiles/rocksalt_support.dir/support/Memory.cpp.o"
  "CMakeFiles/rocksalt_support.dir/support/Memory.cpp.o.d"
  "CMakeFiles/rocksalt_support.dir/support/Oracle.cpp.o"
  "CMakeFiles/rocksalt_support.dir/support/Oracle.cpp.o.d"
  "librocksalt_support.a"
  "librocksalt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksalt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
