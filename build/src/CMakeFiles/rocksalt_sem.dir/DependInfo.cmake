
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sem/Cpu.cpp" "src/CMakeFiles/rocksalt_sem.dir/sem/Cpu.cpp.o" "gcc" "src/CMakeFiles/rocksalt_sem.dir/sem/Cpu.cpp.o.d"
  "/root/repo/src/sem/Differential.cpp" "src/CMakeFiles/rocksalt_sem.dir/sem/Differential.cpp.o" "gcc" "src/CMakeFiles/rocksalt_sem.dir/sem/Differential.cpp.o.d"
  "/root/repo/src/sem/FastInterp.cpp" "src/CMakeFiles/rocksalt_sem.dir/sem/FastInterp.cpp.o" "gcc" "src/CMakeFiles/rocksalt_sem.dir/sem/FastInterp.cpp.o.d"
  "/root/repo/src/sem/Translate.cpp" "src/CMakeFiles/rocksalt_sem.dir/sem/Translate.cpp.o" "gcc" "src/CMakeFiles/rocksalt_sem.dir/sem/Translate.cpp.o.d"
  "/root/repo/src/sem/TranslateArith.cpp" "src/CMakeFiles/rocksalt_sem.dir/sem/TranslateArith.cpp.o" "gcc" "src/CMakeFiles/rocksalt_sem.dir/sem/TranslateArith.cpp.o.d"
  "/root/repo/src/sem/TranslateFlow.cpp" "src/CMakeFiles/rocksalt_sem.dir/sem/TranslateFlow.cpp.o" "gcc" "src/CMakeFiles/rocksalt_sem.dir/sem/TranslateFlow.cpp.o.d"
  "/root/repo/src/sem/TranslateString.cpp" "src/CMakeFiles/rocksalt_sem.dir/sem/TranslateString.cpp.o" "gcc" "src/CMakeFiles/rocksalt_sem.dir/sem/TranslateString.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rocksalt_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rocksalt_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rocksalt_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rocksalt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
