file(REMOVE_RECURSE
  "librocksalt_sem.a"
)
