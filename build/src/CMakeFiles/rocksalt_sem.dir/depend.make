# Empty dependencies file for rocksalt_sem.
# This may be replaced when dependencies are built.
