file(REMOVE_RECURSE
  "CMakeFiles/rocksalt_sem.dir/sem/Cpu.cpp.o"
  "CMakeFiles/rocksalt_sem.dir/sem/Cpu.cpp.o.d"
  "CMakeFiles/rocksalt_sem.dir/sem/Differential.cpp.o"
  "CMakeFiles/rocksalt_sem.dir/sem/Differential.cpp.o.d"
  "CMakeFiles/rocksalt_sem.dir/sem/FastInterp.cpp.o"
  "CMakeFiles/rocksalt_sem.dir/sem/FastInterp.cpp.o.d"
  "CMakeFiles/rocksalt_sem.dir/sem/Translate.cpp.o"
  "CMakeFiles/rocksalt_sem.dir/sem/Translate.cpp.o.d"
  "CMakeFiles/rocksalt_sem.dir/sem/TranslateArith.cpp.o"
  "CMakeFiles/rocksalt_sem.dir/sem/TranslateArith.cpp.o.d"
  "CMakeFiles/rocksalt_sem.dir/sem/TranslateFlow.cpp.o"
  "CMakeFiles/rocksalt_sem.dir/sem/TranslateFlow.cpp.o.d"
  "CMakeFiles/rocksalt_sem.dir/sem/TranslateString.cpp.o"
  "CMakeFiles/rocksalt_sem.dir/sem/TranslateString.cpp.o.d"
  "librocksalt_sem.a"
  "librocksalt_sem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksalt_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
