file(REMOVE_RECURSE
  "librocksalt_core.a"
)
