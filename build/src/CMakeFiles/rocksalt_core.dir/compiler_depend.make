# Empty compiler generated dependencies file for rocksalt_core.
# This may be replaced when dependencies are built.
