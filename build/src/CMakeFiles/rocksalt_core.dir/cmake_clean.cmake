file(REMOVE_RECURSE
  "CMakeFiles/rocksalt_core.dir/core/BaselineChecker.cpp.o"
  "CMakeFiles/rocksalt_core.dir/core/BaselineChecker.cpp.o.d"
  "CMakeFiles/rocksalt_core.dir/core/Policy.cpp.o"
  "CMakeFiles/rocksalt_core.dir/core/Policy.cpp.o.d"
  "CMakeFiles/rocksalt_core.dir/core/SandboxMonitor.cpp.o"
  "CMakeFiles/rocksalt_core.dir/core/SandboxMonitor.cpp.o.d"
  "CMakeFiles/rocksalt_core.dir/core/SlowVerifier.cpp.o"
  "CMakeFiles/rocksalt_core.dir/core/SlowVerifier.cpp.o.d"
  "CMakeFiles/rocksalt_core.dir/core/Verifier.cpp.o"
  "CMakeFiles/rocksalt_core.dir/core/Verifier.cpp.o.d"
  "librocksalt_core.a"
  "librocksalt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksalt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
