# Empty dependencies file for rocksalt_regex.
# This may be replaced when dependencies are built.
