file(REMOVE_RECURSE
  "librocksalt_regex.a"
)
