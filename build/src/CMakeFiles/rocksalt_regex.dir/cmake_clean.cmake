file(REMOVE_RECURSE
  "CMakeFiles/rocksalt_regex.dir/regex/Dfa.cpp.o"
  "CMakeFiles/rocksalt_regex.dir/regex/Dfa.cpp.o.d"
  "CMakeFiles/rocksalt_regex.dir/regex/Regex.cpp.o"
  "CMakeFiles/rocksalt_regex.dir/regex/Regex.cpp.o.d"
  "librocksalt_regex.a"
  "librocksalt_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksalt_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
