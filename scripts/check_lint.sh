#!/bin/sh
# Style + static-analysis gate over the analysis subsystem (and the DFA
# algebra it builds on) plus the service layer's protocol and server.
# Runs clang-format in dry-run mode against .clang-format and clang-tidy
# against .clang-tidy, over src/analysis/, regex/Algebra.*,
# regex/FusedTables.* and regex/TableIO.*, the svc/Service +
# svc/Protocol pair, src/incr/, the core/TableRegistry, and the MIPS
# policy layer.
#
# The gate degrades gracefully: on machines without the clang tooling
# (the CI container ships only gcc) it reports what it skipped and exits
# 0, so `ctest` stays green while developer machines with the tools get
# the full check. Pass a build dir with compile_commands.json as $1
# (default: build).
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

FILES="
$ROOT/src/analysis/PolicyAudit.h
$ROOT/src/analysis/PolicyAudit.cpp
$ROOT/src/analysis/CfgLint.h
$ROOT/src/analysis/CfgLint.cpp
$ROOT/src/analysis/Dataflow.h
$ROOT/src/analysis/Dataflow.cpp
$ROOT/src/regex/Algebra.h
$ROOT/src/regex/Algebra.cpp
$ROOT/src/regex/FusedTables.h
$ROOT/src/regex/FusedTables.cpp
$ROOT/src/regex/TableIO.h
$ROOT/src/regex/TableIO.cpp
$ROOT/src/core/TableRegistry.h
$ROOT/src/core/TableRegistry.cpp
$ROOT/src/mips/MipsPolicy.h
$ROOT/src/mips/MipsPolicy.cpp
$ROOT/src/svc/Protocol.h
$ROOT/src/svc/Protocol.cpp
$ROOT/src/svc/Service.h
$ROOT/src/svc/Service.cpp
$ROOT/src/svc/SessionConn.h
$ROOT/src/svc/SessionConn.cpp
$ROOT/src/svc/EventLoop.h
$ROOT/src/svc/EventLoop.cpp
$ROOT/src/incr/ChunkCache.h
$ROOT/src/incr/ChunkCache.cpp
$ROOT/src/incr/ImageStore.h
$ROOT/src/incr/ImageStore.cpp
$ROOT/src/incr/IncrementalVerifier.h
$ROOT/src/incr/IncrementalVerifier.cpp
"

STATUS=0
RAN_ANY=0

echo "== file list =="
# Every FILES entry must exist: a rename that leaves a stale path here
# would silently shrink the gate's coverage. Needs no tooling, but does
# not count toward RAN_ANY — it checks this script, not the sources.
for F in $FILES; do
  if [ ! -f "$F" ]; then
    echo "check_lint: listed file does not exist: $F"
    STATUS=1
  fi
done
if [ "$STATUS" = 0 ]; then
  echo "all listed files exist"
fi

if command -v clang-format >/dev/null 2>&1; then
  RAN_ANY=1
  echo "== clang-format (dry run) =="
  # shellcheck disable=SC2086
  if ! clang-format --dry-run -Werror $FILES; then
    STATUS=1
  fi
else
  echo "check_lint: clang-format not found; format check skipped"
fi

if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "$BUILD/compile_commands.json" ]; then
    RAN_ANY=1
    echo "== clang-tidy =="
    for F in $FILES; do
      case "$F" in
      *.cpp)
        if ! clang-tidy -p "$BUILD" --quiet "$F"; then
          STATUS=1
        fi
        ;;
      esac
    done
  else
    echo "check_lint: no compile_commands.json in $BUILD" \
         "(configure with cmake first); clang-tidy skipped"
  fi
else
  echo "check_lint: clang-tidy not found; static-analysis check skipped"
fi

echo "== ARCHITECTURE.md coverage =="
# Every directory under src/ must be mentioned in ARCHITECTURE.md, so
# the subsystem map cannot silently rot as the tree grows. This check
# needs no external tooling, so it always runs.
if [ ! -f "$ROOT/ARCHITECTURE.md" ]; then
  echo "check_lint: ARCHITECTURE.md is missing"
  STATUS=1
else
  for D in "$ROOT"/src/*/; do
    NAME="$(basename "$D")"
    if ! grep -q "$NAME/" "$ROOT/ARCHITECTURE.md"; then
      echo "check_lint: ARCHITECTURE.md does not mention src/$NAME/"
      STATUS=1
    fi
  done
  if [ "$STATUS" = 0 ]; then
    echo "ARCHITECTURE.md mentions every directory under src/"
  fi
fi

# RAN_ANY distinguishes "the source checks passed" from "no source check
# ran": a toolless container still exits 0 (graceful degradation), but
# the log now says so instead of reading like a clean bill of health.
if [ "$RAN_ANY" = 0 ]; then
  echo "check_lint: NO source check ran (clang tooling not installed);" \
       "structural checks only — do not read this pass as a style pass"
else
  echo "check_lint: source checks ran"
fi

exit $STATUS
