//===- analysis/CfgLint.cpp - Sandbox CFG recovery and lint ---------------===//

#include "analysis/CfgLint.h"

#include <algorithm>
#include <cstdio>

using namespace rocksalt;
using namespace rocksalt::analysis;
using core::StepKind;

const char *analysis::lintSeverityName(LintSeverity S) {
  switch (S) {
  case LintSeverity::Note:
    return "note";
  case LintSeverity::Warning:
    return "warning";
  case LintSeverity::Error:
    return "error";
  }
  return "?";
}

const char *analysis::lintKindName(LintKind K) {
  switch (K) {
  case LintKind::ParseStuck:
    return "parse-stuck";
  case LintKind::UnalignedBundleStart:
    return "unaligned-bundle-start";
  case LintKind::BranchIntoMaskedPair:
    return "branch-into-masked-pair";
  case LintKind::BranchIntoInterior:
    return "branch-into-interior";
  case LintKind::CallRetNotSeam:
    return "call-ret-not-seam";
  case LintKind::DeadMaskedPair:
    return "dead-masked-pair";
  case LintKind::UnreachableBundle:
    return "unreachable-bundle";
  }
  return "?";
}

LintSeverity analysis::lintKindSeverity(LintKind K) {
  switch (K) {
  case LintKind::ParseStuck:
  case LintKind::UnalignedBundleStart:
  case LintKind::BranchIntoMaskedPair:
  case LintKind::BranchIntoInterior:
    return LintSeverity::Error;
  case LintKind::CallRetNotSeam:
  case LintKind::DeadMaskedPair:
    return LintSeverity::Warning;
  case LintKind::UnreachableBundle:
    return LintSeverity::Note;
  }
  return LintSeverity::Note;
}

namespace {

/// Classifies a just-matched step into its CFG edge shape.
void classifyNode(CfgNode &N, const uint8_t *Code) {
  switch (N.Kind) {
  case StepKind::NoControlFlow:
    N.Fallthrough = true;
    break;
  case StepKind::DirectJump: {
    uint8_t B0 = Code[N.Begin];
    if (B0 == 0xEB || B0 == 0xE9) {
      // JMP rel8/rel32: unconditional, no fallthrough.
    } else if (B0 == 0xE8) {
      N.IsCall = true;
      N.Fallthrough = true; // the return point
    } else {
      // Jcc rel8 (70..7F) or 0F 8x rel32.
      N.Fallthrough = true;
    }
    break;
  }
  case StepKind::MaskedJump: {
    // The jump half is the last two bytes: FF /4 (jmp) or FF /2 (call).
    uint8_t ModRM = Code[N.End - 1];
    unsigned RegField = (ModRM >> 3) & 7;
    N.IndirectOut = true;
    if (RegField == 2) {
      N.IsCall = true;
      N.Fallthrough = true; // the return point
    }
    break;
  }
  case StepKind::Fail:
    break;
  }
}

} // namespace

std::string CfgLintResult::render() const {
  std::string Out;
  char Buf[320];
  for (const LintDiag &D : Diags) {
    std::snprintf(Buf, sizeof(Buf), "  %-7s @%04x %s: %s\n",
                  lintSeverityName(D.Sev), D.Offset, lintKindName(D.Kind),
                  D.Detail.c_str());
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "  lint: %zu nodes (%u reachable by direct flow), "
                "%u errors, %u warnings, %u notes%s\n",
                Nodes.size(), ReachableNodes, Errors, Warnings, Notes,
                ParseComplete ? "" : " [parse incomplete]");
  Out += Buf;
  return Out;
}

CfgLintResult analysis::lintImage(const core::PolicyTables &T,
                                  const uint8_t *Code, uint32_t Size,
                                  svc::Metrics *M) {
  CfgLintResult R;

  //===------------------------------------------------------------------===//
  // 1. Recover nodes by re-running the Figure-5 match chain.
  //===------------------------------------------------------------------===//
  uint32_t Pos = 0;
  uint32_t ParsedEnd = Size;
  R.ParseComplete = true;
  while (Pos < Size) {
    CfgNode N;
    N.Begin = Pos;
    uint32_t Dest = 0;
    N.Kind = core::verifyStep(T, Code, &Pos, Size, &Dest);
    if (N.Kind == StepKind::Fail) {
      R.ParseComplete = false;
      ParsedEnd = N.Begin;
      R.Diags.push_back({LintSeverity::Error, LintKind::ParseStuck, N.Begin,
                         "no policy grammar matches at this offset; "
                         "the image tail is unanalyzed"});
      break;
    }
    N.End = Pos;
    if (N.Kind == StepKind::DirectJump) {
      N.HasTarget = true;
      N.Target = Dest;
    }
    classifyNode(N, Code);
    R.Nodes.push_back(N);
  }

  //===------------------------------------------------------------------===//
  // 2. Node lookup and direct-flow reachability (fallthrough + direct
  //    branch edges; indirect transfers contribute no edges — any
  //    bundle start is a potential indirect entry, which is exactly why
  //    unreachability is only a Note).
  //===------------------------------------------------------------------===//
  std::vector<uint32_t> NodeAt(Size, UINT32_MAX);
  for (uint32_t I = 0; I < R.Nodes.size(); ++I)
    NodeAt[R.Nodes[I].Begin] = I;

  R.Reachable.assign(R.Nodes.size(), 0);
  if (!R.Nodes.empty()) {
    std::vector<uint32_t> Stack{0};
    R.Reachable[0] = 1;
    while (!Stack.empty()) {
      uint32_t I = Stack.back();
      Stack.pop_back();
      const CfgNode &N = R.Nodes[I];
      if (N.Fallthrough && I + 1 < R.Nodes.size() && !R.Reachable[I + 1]) {
        R.Reachable[I + 1] = 1;
        Stack.push_back(I + 1);
      }
      if (N.HasTarget && N.Target < Size && NodeAt[N.Target] != UINT32_MAX) {
        uint32_t J = NodeAt[N.Target];
        if (!R.Reachable[J]) {
          R.Reachable[J] = 1;
          Stack.push_back(J);
        }
      }
    }
  }
  for (uint8_t Rch : R.Reachable)
    R.ReachableNodes += Rch;

  //===------------------------------------------------------------------===//
  // 3. Diagnostics.
  //===------------------------------------------------------------------===//
  char Buf[192];

  // Bundle boundaries must be instruction starts (Error), and should be
  // reachable (Note) — each within the parsed region.
  for (uint32_t B = 0; B < ParsedEnd; B += core::BundleSize) {
    if (NodeAt[B] == UINT32_MAX) {
      std::snprintf(Buf, sizeof(Buf),
                    "bundle %u starts inside an instruction — every 32-byte "
                    "boundary must be an instruction start",
                    B / core::BundleSize);
      R.Diags.push_back(
          {LintSeverity::Error, LintKind::UnalignedBundleStart, B, Buf});
    } else if (!R.Reachable[NodeAt[B]]) {
      std::snprintf(Buf, sizeof(Buf),
                    "bundle %u is unreachable by direct flow (it remains an "
                    "indirect-entry candidate, as every bundle start is)",
                    B / core::BundleSize);
      R.Diags.push_back(
          {LintSeverity::Note, LintKind::UnreachableBundle, B, Buf});
    }
  }

  // Direct-branch targets must land on node starts; landing inside a
  // masked pair is the sharpest hazard (it bypasses or splits the mask).
  for (const CfgNode &N : R.Nodes) {
    if (!N.HasTarget)
      continue;
    uint32_t Tgt = N.Target;
    if (Tgt < Size && NodeAt[Tgt] != UINT32_MAX)
      continue; // a well-formed edge
    // Find the node containing the target, if any.
    const CfgNode *Container = nullptr;
    if (Tgt < ParsedEnd && !R.Nodes.empty()) {
      auto It = std::upper_bound(
          R.Nodes.begin(), R.Nodes.end(), Tgt,
          [](uint32_t V, const CfgNode &Node) { return V < Node.Begin; });
      if (It != R.Nodes.begin())
        Container = &*--It;
    }
    if (Container && Container->Kind == StepKind::MaskedJump &&
        Tgt > Container->Begin && Tgt < Container->End) {
      std::snprintf(Buf, sizeof(Buf),
                    "direct branch targets %04x, inside the masked pair "
                    "[%04x,%04x) — entering there bypasses the mask",
                    Tgt, Container->Begin, Container->End);
      R.Diags.push_back({LintSeverity::Error, LintKind::BranchIntoMaskedPair,
                         N.Begin, Buf});
    } else {
      std::snprintf(Buf, sizeof(Buf),
                    "direct branch targets %04x, which is not an "
                    "instruction start",
                    Tgt);
      R.Diags.push_back(
          {LintSeverity::Error, LintKind::BranchIntoInterior, N.Begin, Buf});
    }
  }

  // Call discipline and dead masked pairs.
  for (uint32_t I = 0; I < R.Nodes.size(); ++I) {
    const CfgNode &N = R.Nodes[I];
    if (N.IsCall && (N.End % core::BundleSize) != 0) {
      std::snprintf(Buf, sizeof(Buf),
                    "call returns to %04x, which is not bundle-aligned — a "
                    "policy-compliant masked return cannot come back here",
                    N.End);
      R.Diags.push_back(
          {LintSeverity::Warning, LintKind::CallRetNotSeam, N.Begin, Buf});
    }
    if (N.Kind == StepKind::MaskedJump && !R.Reachable[I]) {
      std::snprintf(Buf, sizeof(Buf),
                    "masked pair [%04x,%04x) lies in direct-flow-unreachable "
                    "code — the indirect transfer protects nothing live",
                    N.Begin, N.End);
      R.Diags.push_back(
          {LintSeverity::Warning, LintKind::DeadMaskedPair, N.Begin, Buf});
    }
  }

  std::stable_sort(
      R.Diags.begin(), R.Diags.end(),
      [](const LintDiag &A, const LintDiag &B) { return A.Offset < B.Offset; });

  for (const LintDiag &D : R.Diags) {
    switch (D.Sev) {
    case LintSeverity::Error:
      R.Errors++;
      break;
    case LintSeverity::Warning:
      R.Warnings++;
      break;
    case LintSeverity::Note:
      R.Notes++;
      break;
    }
  }

  if (M) {
    M->LintImages.add();
    M->LintErrors.add(R.Errors);
    M->LintWarnings.add(R.Warnings);
    M->LintNotes.add(R.Notes);
  }
  return R;
}
