//===- analysis/CfgLint.cpp - Sandbox CFG recovery and lint ---------------===//
//
// Naming, severity grading, and rendering for the lint diagnostics. The
// recovery and analysis itself lives in analysis/Dataflow.cpp: lintImage
// here is the sequential front end (chain re-scan) feeding the shared
// lintCfg back half.
//
//===----------------------------------------------------------------------===//

#include "analysis/CfgLint.h"

#include "analysis/Dataflow.h"

#include <cstdio>

using namespace rocksalt;
using namespace rocksalt::analysis;

const char *analysis::lintSeverityName(LintSeverity S) {
  switch (S) {
  case LintSeverity::Note:
    return "note";
  case LintSeverity::Warning:
    return "warning";
  case LintSeverity::Error:
    return "error";
  }
  return "?";
}

const char *analysis::lintKindName(LintKind K) {
  switch (K) {
  case LintKind::ParseStuck:
    return "parse-stuck";
  case LintKind::UnalignedBundleStart:
    return "unaligned-bundle-start";
  case LintKind::BranchIntoMaskedPair:
    return "branch-into-masked-pair";
  case LintKind::BranchIntoInterior:
    return "branch-into-interior";
  case LintKind::CallRetNotSeam:
    return "call-ret-not-seam";
  case LintKind::DeadMaskedPair:
    return "dead-masked-pair";
  case LintKind::UnreachableBundle:
    return "unreachable-bundle";
  }
  return "?";
}

LintSeverity analysis::lintKindSeverity(LintKind K) {
  switch (K) {
  case LintKind::ParseStuck:
  case LintKind::UnalignedBundleStart:
  case LintKind::BranchIntoMaskedPair:
  case LintKind::BranchIntoInterior:
    return LintSeverity::Error;
  case LintKind::CallRetNotSeam:
  case LintKind::DeadMaskedPair:
    return LintSeverity::Warning;
  case LintKind::UnreachableBundle:
    return LintSeverity::Note;
  }
  return LintSeverity::Note;
}

void analysis::renderLintDiagLine(std::string &Out, const LintDiag &D) {
  char Buf[320];
  std::snprintf(Buf, sizeof(Buf), "  %-7s @%04x %s: %s\n",
                lintSeverityName(D.Sev), D.Offset, lintKindName(D.Kind),
                D.Detail.c_str());
  Out += Buf;
}

void analysis::renderLintSummaryLine(std::string &Out, size_t Nodes,
                                     uint32_t Reachable, uint32_t ExtReachable,
                                     uint32_t ReachableProcs, uint32_t Procs,
                                     uint32_t Errors, uint32_t Warnings,
                                     uint32_t Notes, bool ParseComplete) {
  char Buf[320];
  std::snprintf(Buf, sizeof(Buf),
                "  lint: %zu nodes (%u direct-reachable, %u ext-reachable), "
                "%u/%u procs live, %u errors, %u warnings, %u notes%s\n",
                Nodes, Reachable, ExtReachable, ReachableProcs, Procs, Errors,
                Warnings, Notes, ParseComplete ? "" : " [parse incomplete]");
  Out += Buf;
}

std::string CfgLintResult::render() const {
  std::string Out;
  for (const LintDiag &D : Diags)
    renderLintDiagLine(Out, D);
  renderLintSummaryLine(Out, Nodes.size(), ReachableNodes, ExtReachableNodes,
                        ReachableProcs, Procs, Errors, Warnings, Notes,
                        ParseComplete);
  return Out;
}

CfgLintResult analysis::lintImage(const core::PolicyTables &T,
                                  const uint8_t *Code, uint32_t Size,
                                  svc::Metrics *M) {
  return lintCfg(recoverCfg(T, Code, Size), Size, M);
}
