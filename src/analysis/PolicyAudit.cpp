//===- analysis/PolicyAudit.cpp - Meta-verification of the checker --------===//

#include "analysis/PolicyAudit.h"

#include "mips/MipsPolicy.h"
#include "x86/Grammars.h"

#include <chrono>
#include <cstdio>

using namespace rocksalt;
using namespace rocksalt::analysis;

std::string analysis::hexBytes(const std::vector<uint8_t> &Bytes) {
  std::string Out;
  char Buf[4];
  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf), "%02x", Bytes[I]);
    if (I)
      Out += ' ';
    Out += Buf;
  }
  return Out;
}

DecoderDfas analysis::buildDecoderDfas() {
  re::Factory F;
  re::Regex One = x86::x86Grammars().Full.strip(F);
  DecoderDfas X;
  X.One = re::buildDfa(F, One);
  X.Pair = re::buildDfa(F, F.cat(One, One));
  return X;
}

DecoderDfas analysis::buildMipsDecoderDfas() {
  re::Factory F;
  re::Regex One = mips::mipsDecoderRegex(F);
  DecoderDfas X;
  X.One = re::buildDfa(F, One);
  X.Pair = re::buildDfa(F, F.cat(One, One));
  return X;
}

namespace {

/// The three tables with stable names, in match-chain order.
struct NamedDfa {
  const char *Name;
  const re::Dfa *D;
};

/// Attaches the counterexample family to a failed finding: the 3
/// shortest members of the offending product language (the violation
/// class, not just its least member), both as raw strings in F.Family
/// and as a rendered "family:" tail on F.Detail.
void attachFamily(AuditFinding &F, const re::Dfa &A, const re::Dfa &B,
                  re::SetOp Op) {
  F.Family = re::kShortestAccepted(re::productDfa(A, B, Op), 3);
  F.Detail += "; family:";
  for (size_t I = 0; I < F.Family.size(); ++I)
    F.Detail += (I ? " | " : " ") + hexBytes(F.Family[I]);
}

AuditFinding disjointCheck(const NamedDfa &A, const NamedDfa &B) {
  AuditFinding F;
  F.Check = std::string("disjoint(") + A.Name + "," + B.Name + ")";
  std::optional<std::vector<uint8_t>> W = re::intersectionWitness(*A.D, *B.D);
  if (!W) {
    F.Pass = true;
    F.Detail = "languages are disjoint";
  } else {
    F.Pass = false;
    F.Witness = std::move(*W);
    F.Detail = "both languages accept the " +
               std::to_string(F.Witness.size()) +
               "-byte string: " + hexBytes(F.Witness);
    attachFamily(F, *A.D, *B.D, re::SetOp::Intersect);
  }
  return F;
}

AuditFinding inclusionCheck(const NamedDfa &A, const re::Dfa &Decoder,
                            const char *DecoderName) {
  AuditFinding F;
  F.Check = std::string("decodes(") + A.Name + ")";
  std::optional<std::vector<uint8_t>> W = re::inclusionWitness(*A.D, Decoder);
  if (!W) {
    F.Pass = true;
    F.Detail = std::string("every accepted string is in the ") + DecoderName +
               " language";
  } else {
    F.Pass = false;
    F.Witness = std::move(*W);
    F.Detail = std::string("policy accepts a string outside the ") +
               DecoderName + " language: " + hexBytes(F.Witness);
    attachFamily(F, *A.D, Decoder, re::SetOp::Difference);
  }
  return F;
}

AuditFinding healthCheck(const NamedDfa &A, const re::DfaHealth &H) {
  AuditFinding F;
  F.Check = std::string("health(") + A.Name + ")";
  F.Pass = H.ok();
  if (F.Pass) {
    F.Detail = "all states reachable; accept/reject classification exact (" +
               std::to_string(H.NumDead) + " dead state(s), all flagged)";
  } else {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "unreachable=%u dead-unflagged=%u live-flagged-reject=%u "
                  "accept-reject-overlap=%u reject-escapes=%u",
                  H.Unreachable, H.DeadUnflagged, H.LiveFlaggedReject,
                  H.AcceptRejectOverlap, H.RejectEscapes);
    F.Detail = Buf;
  }
  return F;
}

AuditFinding minimizeCheck(const NamedDfa &A, const re::Dfa &Min) {
  AuditFinding F;
  F.Check = std::string("minimize-preserves(") + A.Name + ")";
  std::optional<std::vector<uint8_t>> W = re::equivalenceWitness(*A.D, Min);
  if (!W) {
    F.Pass = true;
    F.Detail = std::to_string(A.D->numStates()) + " -> " +
               std::to_string(Min.numStates()) + " states, same language";
  } else {
    F.Pass = false;
    F.Witness = std::move(*W);
    F.Detail = "minimized table disagrees on: " + hexBytes(F.Witness);
    attachFamily(F, *A.D, Min, re::SetOp::SymmetricDiff);
  }
  return F;
}

} // namespace

const AuditFinding *AuditReport::find(std::string_view Check) const {
  for (const AuditFinding &F : Findings)
    if (F.Check == Check)
      return &F;
  return nullptr;
}

std::string AuditReport::render() const {
  std::string Out;
  char Buf[256];
  Out += "=== policy meta-audit ===\n";
  std::snprintf(Buf, sizeof(Buf), "%-16s %8s %8s %6s %6s %8s\n", "table",
                "states", "minimal", "accept", "dead", "health");
  Out += Buf;
  for (const TableStats &S : Tables) {
    std::snprintf(Buf, sizeof(Buf), "%-16s %8u %8u %6u %6u %8s\n",
                  S.Name.c_str(), S.RawStates, S.MinStates,
                  S.Health.NumAccepting, S.Health.NumDead,
                  S.Health.ok() ? "ok" : "BROKEN");
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "largest minimized policy DFA: %u states (paper claims <= %u)\n",
                LargestMinimized, PaperMaxPolicyStates);
  Out += Buf;
  for (const AuditFinding &F : Findings) {
    std::snprintf(Buf, sizeof(Buf), "%-44s %s  %s\n", F.Check.c_str(),
                  F.Pass ? "PASS" : "FAIL", F.Detail.c_str());
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "audit: %s (%.1f ms)\n",
                Pass ? "PASS" : "FAIL", WallMs);
  Out += Buf;
  return Out;
}

AuditReport analysis::auditPolicy(const core::PolicyTables &T,
                                  const DecoderDfas &X) {
  auto T0 = std::chrono::steady_clock::now();
  AuditReport R;

  const NamedDfa Tables[3] = {{"MaskedJump", &T.MaskedJump},
                              {"NoControlFlow", &T.NoControlFlow},
                              {"DirectJump", &T.DirectJump}};

  // Pairwise disjointness (the try-order side condition).
  for (int I = 0; I < 3; ++I)
    for (int J = I + 1; J < 3; ++J)
      R.Findings.push_back(disjointCheck(Tables[I], Tables[J]));

  // Decoder inclusion: single-instruction policies against the
  // one-instruction language, the two-instruction MaskedJump pair
  // against the two-instruction language.
  R.Findings.push_back(inclusionCheck(Tables[1], X.One, "one-instruction"));
  R.Findings.push_back(inclusionCheck(Tables[2], X.One, "one-instruction"));
  R.Findings.push_back(inclusionCheck(Tables[0], X.Pair, "two-instruction"));

  // Structural health + minimization per table.
  for (const NamedDfa &N : Tables) {
    TableStats S;
    S.Name = N.Name;
    S.RawStates = static_cast<uint32_t>(N.D->numStates());
    S.Health = re::auditDfa(*N.D);
    re::Dfa Min = re::minimizeDfa(*N.D);
    S.MinStates = static_cast<uint32_t>(Min.numStates());
    R.LargestMinimized = std::max(R.LargestMinimized, S.MinStates);
    R.Findings.push_back(healthCheck(N, S.Health));
    R.Findings.push_back(minimizeCheck(N, Min));
    R.Tables.push_back(std::move(S));
  }

  {
    AuditFinding F;
    F.Check = "state-bound";
    F.Pass = R.LargestMinimized <= PaperMaxPolicyStates;
    F.Detail = "largest minimized policy DFA has " +
               std::to_string(R.LargestMinimized) + " states (bound " +
               std::to_string(PaperMaxPolicyStates) + ")";
    R.Findings.push_back(std::move(F));
  }

  R.Pass = true;
  for (const AuditFinding &F : R.Findings)
    R.Pass = R.Pass && F.Pass;
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
  return R;
}

AuditReport analysis::auditShippedPolicy() {
  return auditPolicy(core::policyTables(), buildDecoderDfas());
}

AuditReport analysis::auditMipsPolicy() {
  return auditPolicy(*mips::mipsTableEntry().Tables, buildMipsDecoderDfas());
}
