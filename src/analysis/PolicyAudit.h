//===- analysis/PolicyAudit.h - Meta-verification of the checker -*- C++ -*-===//
///
/// \file
/// Static analysis of the checker's own artifacts: the properties the
/// paper proves in Coq *about* the three policy grammars (sections 3.2
/// and 4.1), re-verified here as executable, counterexample-producing
/// decision procedures over the shipped DFA tables. Where a Coq lemma
/// certifies the construction, this audit certifies the artifact — a
/// regenerated, hand-patched, or bit-rotted table fails with a concrete
/// byte string, not a proof obligation.
///
/// Obligations (each maps to a finding by name):
///
///  * disjoint(X, Y)      — the three policy languages are pairwise
///                          disjoint, so the Figure-5 match chain's
///                          try-order (MaskedJump, NoControlFlow,
///                          DirectJump) can never silently reclassify a
///                          whole match (the paper's grammar-disjointness
///                          side condition);
///  * decodes(X)          — every string a policy DFA accepts lies inside
///                          the decodable x86 language (the stripped full
///                          decoder grammar; MaskedJump, which spans two
///                          instructions, is checked against the
///                          two-instruction language). Catches
///                          policy/decoder drift when either side is
///                          edited alone;
///  * health(X)           — the table's accept/reject classification is
///                          exact: every state reachable, every dead
///                          state flagged (dfaMatch bails as early as
///                          possible), no live state flagged (no viable
///                          prefix abandoned), reject states closed;
///  * minimize-preserves(X) — Hopcroft minimization of the table is
///                          language-equivalent to it (certifies the
///                          minimized state counts reported below);
///  * state-bound         — the largest minimized policy DFA stays within
///                          the paper's 61-state claim.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_ANALYSIS_POLICYAUDIT_H
#define ROCKSALT_ANALYSIS_POLICYAUDIT_H

#include "core/Policy.h"
#include "regex/Algebra.h"

#include <string>
#include <string_view>
#include <vector>

namespace rocksalt {
namespace analysis {

/// The paper's reported ceiling on policy DFA size (section 3.2: "the
/// largest DFA has 61 states").
constexpr uint32_t PaperMaxPolicyStates = 61;

/// Reference DFAs for a decodable instruction language, built from a
/// stripped top-level decoder grammar (prefixes included for x86).
struct DecoderDfas {
  re::Dfa One;  ///< exactly one instruction
  re::Dfa Pair; ///< exactly two instructions (masked-jump shape)
};

/// Builds both reference DFAs from x86::x86Grammars().Full.
DecoderDfas buildDecoderDfas();

/// Builds both reference DFAs from the MIPS decoder grammar
/// (mips::mipsDecoderRegex) — the audit itself is ISA-generic, only
/// the decoder references differ.
DecoderDfas buildMipsDecoderDfas();

/// One audit obligation's outcome.
struct AuditFinding {
  std::string Check;            ///< e.g. "disjoint(NoControlFlow,DirectJump)"
  bool Pass = false;
  std::string Detail;           ///< human-readable explanation
  std::vector<uint8_t> Witness; ///< counterexample byte string (on failure)
  /// The counterexample *family*: up to 3 shortest members of the
  /// offending product language in length-then-lex order (the first, when
  /// present, equals Witness). One witness shows that an obligation
  /// fails; the family shows the shape of the violation class.
  std::vector<std::vector<uint8_t>> Family;
};

/// Per-table structural statistics.
struct TableStats {
  std::string Name;
  uint32_t RawStates = 0;
  uint32_t MinStates = 0;
  re::DfaHealth Health;
};

struct AuditReport {
  bool Pass = false; ///< conjunction of all findings
  std::vector<AuditFinding> Findings;
  std::vector<TableStats> Tables;
  uint32_t LargestMinimized = 0;
  double WallMs = 0;

  /// Finding lookup by check name (nullptr when absent).
  const AuditFinding *find(std::string_view Check) const;

  /// Renders the full report (stats table + one line per finding).
  std::string render() const;
};

/// Audits an arbitrary set of policy tables against the given decoder
/// references. Tests feed deliberately corrupted tables through this to
/// prove the analyses produce correct witnesses.
AuditReport auditPolicy(const core::PolicyTables &T, const DecoderDfas &X);

/// Audits the shipped tables (core::policyTables()) against freshly
/// built decoder references. This is the CI gate.
AuditReport auditShippedPolicy();

/// Audits the registry's MIPS tables (mips::mipsTableEntry()) against
/// the MIPS decoder references — the same 13 obligations as x86
/// (`mips_meta_audit` gate).
AuditReport auditMipsPolicy();

/// Hex rendering of a witness byte string ("70 00").
std::string hexBytes(const std::vector<uint8_t> &Bytes);

} // namespace analysis
} // namespace rocksalt

#endif // ROCKSALT_ANALYSIS_POLICYAUDIT_H
