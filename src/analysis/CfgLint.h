//===- analysis/CfgLint.h - Sandbox CFG recovery and lint ------*- C++ -*-===//
///
/// \file
/// Static analysis of a verified image beyond the checker's binary
/// verdict: recovers the instruction-level control-flow graph the policy
/// implies (nodes from the Figure-5 match chain, edges from fallthrough,
/// direct-branch targets, and masked-pair semantics) and emits
/// severity-graded structured diagnostics. Follows the x86isa line of
/// work where the ISA model doubles as a static-analysis engine for
/// binaries: the same tables that accept the image also explain it.
///
/// The lint runs on any image whose match chain completes — accepted
/// images, and rejected-for-BadTarget/UnalignedBundle images, where the
/// error-severity diagnostics localize exactly *why* Figure 5 said no
/// (the binary verdict, upgraded to a diagnostic with an offset).
///
/// Severity grading:
///  * Error   — violates the sandbox policy (never fires on an accepted
///              image; pinpoints the reject cause otherwise): a direct
///              branch into a masked pair's interior, a direct branch
///              into any instruction interior, a bundle boundary that is
///              not an instruction start, a stuck parse.
///  * Warning — policy-compliant but hazardous: a call whose return
///              point is not bundle-aligned (a policy-compliant masked
///              return in the callee cannot come back to it — the NaCl
///              call discipline the assembler's callToAligned enforces),
///              and a masked pair in direct-flow-unreachable code (an
///              indirect transfer that protects nothing live).
///  * Note    — informational: bundles unreachable by direct flow (they
///              remain indirect-entry candidates, every bundle start is).
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_ANALYSIS_CFGLINT_H
#define ROCKSALT_ANALYSIS_CFGLINT_H

#include "core/Verifier.h"
#include "svc/Metrics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rocksalt {
namespace analysis {

enum class LintSeverity : uint8_t { Note, Warning, Error };

enum class LintKind : uint8_t {
  ParseStuck,            ///< Error: match chain failed mid-image
  UnalignedBundleStart,  ///< Error: bundle boundary not an instr start
  BranchIntoMaskedPair,  ///< Error: direct branch into a pair's interior
  BranchIntoInterior,    ///< Error: direct branch into an instr interior
  CallRetNotSeam,        ///< Warning: call return point off the seam
  DeadMaskedPair,        ///< Warning: masked pair in unreachable code
  UnreachableBundle,     ///< Note: bundle unreachable by direct flow
};

const char *lintSeverityName(LintSeverity S);
const char *lintKindName(LintKind K);
LintSeverity lintKindSeverity(LintKind K);

struct LintDiag {
  LintSeverity Sev;
  LintKind Kind;
  uint32_t Offset = 0; ///< byte offset the diagnostic anchors to
  std::string Detail;
};

/// One recovered CFG node: a policy step (one instruction, or a whole
/// masked pair) spanning [Begin, End).
struct CfgNode {
  uint32_t Begin = 0;
  uint32_t End = 0;
  core::StepKind Kind = core::StepKind::Fail;
  bool Fallthrough = false; ///< edge to the next node in address order
  bool HasTarget = false;   ///< direct-branch edge
  uint32_t Target = 0;      ///< destination when HasTarget
  bool IndirectOut = false; ///< masked jmp/call: computed transfer out
  bool IsCall = false;      ///< direct CALL or masked-call pair
};

struct CfgLintResult {
  bool ParseComplete = false;     ///< chain scan covered the whole image
  std::vector<CfgNode> Nodes;     ///< in address order
  std::vector<uint8_t> Reachable; ///< per node: direct-flow reachable from 0
  /// Per node: reachable once computed transfers are closed over (any
  /// live indirect transfer makes every bundle start a live target).
  std::vector<uint8_t> ExtReachable;
  /// Per node: the reaching-mask analysis value in force after the node
  /// (a masked-pair Begin offset, or one of the kGuard* lattice points
  /// declared in analysis/Dataflow.h).
  std::vector<uint32_t> Guard;
  std::vector<LintDiag> Diags;    ///< severity-graded, address-ordered
  uint32_t Errors = 0, Warnings = 0, Notes = 0;
  uint32_t ReachableNodes = 0;
  uint32_t ExtReachableNodes = 0;
  uint32_t LiveIndirectOuts = 0;  ///< ext-reachable computed transfers
  uint32_t Procs = 0;             ///< recovered call-graph procedures
  uint32_t ReachableProcs = 0;    ///< ... interprocedurally reachable

  /// Renders "severity @offset: kind: detail" lines plus a summary.
  std::string render() const;
};

/// Rendering primitives shared by `CfgLintResult::render` and the
/// incremental linter's O(diagnostics) render, so the two stay
/// byte-identical: one diagnostic line, and the trailing summary line.
void renderLintDiagLine(std::string &Out, const LintDiag &D);
void renderLintSummaryLine(std::string &Out, size_t Nodes, uint32_t Reachable,
                           uint32_t ExtReachable, uint32_t ReachableProcs,
                           uint32_t Procs, uint32_t Errors, uint32_t Warnings,
                           uint32_t Notes, bool ParseComplete);

/// Recovers the CFG of \p Code under tables \p T and lints it. When \p M
/// is non-null the diagnostic counts are added to the service metrics
/// (lint_images / lint_errors / lint_warnings / lint_notes).
CfgLintResult lintImage(const core::PolicyTables &T, const uint8_t *Code,
                        uint32_t Size, svc::Metrics *M = nullptr);

inline CfgLintResult lintImage(const core::PolicyTables &T,
                               const std::vector<uint8_t> &Code,
                               svc::Metrics *M = nullptr) {
  return lintImage(T, Code.data(), static_cast<uint32_t>(Code.size()), M);
}

} // namespace analysis
} // namespace rocksalt

#endif // ROCKSALT_ANALYSIS_CFGLINT_H
