//===- analysis/Dataflow.h - Whole-image dataflow over the CFG -*- C++ -*-===//
///
/// \file
/// A worklist fixpoint engine over the CFG that `analysis/CfgLint.h`
/// recovers from the Figure-5 match chain, plus the concrete passes that
/// turn the lint from single-pass heuristics into real static analysis:
///
///  * **extended reachability** — direct flow from the image entry plus
///    the computed-transfer closure (once any reachable node performs a
///    masked indirect transfer, every bundle start is a live target, so
///    reachability must be iterated through that "hub" to a fixpoint);
///  * **indirect-target liveness** — how many live computed transfers
///    exist, which decides whether a direct-flow-unreachable bundle is
///    still enterable or genuinely dead;
///  * **reaching-mask analysis** — a forward must-analysis computing, per
///    node, the masked-pair guard that dominates it (or that no single
///    guard does), meeting in the unguarded indirect entry at every
///    bundle start whenever a live indirect transfer exists;
///  * **call-graph recovery** — procedures from direct-call targets,
///    SCC-condensed call edges, and interprocedural reachability.
///
/// The same passes run over nodes recovered three ways — the sequential
/// chain re-scan, the chunk-parallel `core::Shard` bitmaps, and the
/// incremental verifier's spliced match chain — and the three paths are
/// held bit-identical by the `fuzz_differential --lint` gate. The
/// incremental path (`IncrementalLinter`) re-lints a patched image in
/// O(patch window): lint state is kept chunked alongside the verifier's
/// chunk geometry, and an accepted splice whose windows are pure
/// straight-line corridors (no control flow in or out, before or after)
/// updates only those chunks' nodes and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_ANALYSIS_DATAFLOW_H
#define ROCKSALT_ANALYSIS_DATAFLOW_H

#include "analysis/CfgLint.h"
#include "incr/IncrementalVerifier.h"

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace rocksalt {
namespace analysis {

//===----------------------------------------------------------------------===//
// CFG adjacency
//===----------------------------------------------------------------------===//

/// Successor/predecessor structure over recovered nodes. Edges are the
/// direct-flow edges of the lint CFG: fallthrough to the next node in
/// address order, and the direct-branch edge when the target is a node
/// start. Computed transfers contribute no edges here — the passes model
/// them through the bundle-start hub instead.
class CfgGraph {
public:
  static constexpr uint32_t kNoNode = UINT32_MAX;

  CfgGraph(const std::vector<CfgNode> &Nodes, uint32_t Size);

  uint32_t numNodes() const { return uint32_t(NodesRef->size()); }
  const std::vector<CfgNode> &nodes() const { return *NodesRef; }

  /// Node index starting at \p Offset, or kNoNode.
  uint32_t nodeAt(uint32_t Offset) const {
    return Offset < NodeAt.size() ? NodeAt[Offset] : kNoNode;
  }

  /// Writes the successors of node \p I into \p Out (at most 2) and
  /// returns how many there are.
  unsigned succs(uint32_t I, uint32_t Out[2]) const;

  /// Predecessors of node \p I (CSR form, built on construction).
  std::pair<const uint32_t *, const uint32_t *> preds(uint32_t I) const {
    return {PredLst.data() + PredOff[I], PredLst.data() + PredOff[I + 1]};
  }

private:
  const std::vector<CfgNode> *NodesRef;
  std::vector<uint32_t> NodeAt;  ///< offset -> node index
  std::vector<uint32_t> PredOff; ///< CSR offsets, numNodes()+1
  std::vector<uint32_t> PredLst; ///< CSR predecessor lists
};

//===----------------------------------------------------------------------===//
// The generic worklist engine
//===----------------------------------------------------------------------===//

enum class DataflowDir : uint8_t { Forward, Backward };

/// Fixpoint solution: per-node In/Out values and the number of transfer
/// evaluations the worklist performed (an effort metric for tests).
template <typename Lattice> struct DataflowResult {
  std::vector<typename Lattice::Value> In, Out;
  uint64_t Steps = 0;
};

/// Solves a dataflow problem over \p G to fixpoint. The lattice supplies
///   Value   bottom()                     — the identity of join
///   Value   boundary(uint32_t Node)      — extra In contribution (the
///                                          entry seed / indirect entry)
///   bool    join(Value &Dst, Value Src)  — Dst ⊔= Src, true iff changed
///   Value   transfer(uint32_t N, Value)  — the node transfer function
/// Direction selects which adjacency feeds In: predecessors' Out for
/// Forward, successors' Out for Backward. Join may be a meet — the
/// engine only requires monotonicity over a finite-height order.
template <typename Lattice>
DataflowResult<Lattice> runDataflow(const CfgGraph &G, Lattice &L,
                                    DataflowDir Dir) {
  const uint32_t N = G.numNodes();
  DataflowResult<Lattice> R;
  R.In.assign(N, L.bottom());
  R.Out.assign(N, L.bottom());
  if (!N)
    return R;

  std::deque<uint32_t> Work;
  std::vector<uint8_t> Queued(N, 1);
  for (uint32_t I = 0; I < N; ++I)
    Work.push_back(Dir == DataflowDir::Forward ? I : N - 1 - I);

  uint32_t Fan[2];
  while (!Work.empty()) {
    uint32_t I = Work.front();
    Work.pop_front();
    Queued[I] = 0;

    typename Lattice::Value In = L.boundary(I);
    if (Dir == DataflowDir::Forward) {
      auto [P, E] = G.preds(I);
      for (; P != E; ++P)
        L.join(In, R.Out[*P]);
    } else {
      unsigned NS = G.succs(I, Fan);
      for (unsigned S = 0; S < NS; ++S)
        L.join(In, R.Out[Fan[S]]);
    }
    R.In[I] = In;
    typename Lattice::Value Out = L.transfer(I, In);
    ++R.Steps;
    if (!L.join(R.Out[I], Out))
      continue;
    R.Out[I] = Out;

    if (Dir == DataflowDir::Forward) {
      unsigned NS = G.succs(I, Fan);
      for (unsigned S = 0; S < NS; ++S)
        if (!Queued[Fan[S]]) {
          Queued[Fan[S]] = 1;
          Work.push_back(Fan[S]);
        }
    } else {
      auto [P, E] = G.preds(I);
      for (; P != E; ++P)
        if (!Queued[*P]) {
          Queued[*P] = 1;
          Work.push_back(*P);
        }
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Concrete passes
//===----------------------------------------------------------------------===//

/// Extended reachability: Direct is the classic direct-flow DFS from
/// node 0; Ext adds the computed-transfer closure (every bundle-start
/// node becomes reachable once any ext-reachable node has an indirect
/// out, iterated to fixpoint — one extra engine run suffices, since the
/// hub fires at most once). LiveIndirectOuts counts the ext-reachable
/// indirect transfers: the image's live computed-transfer sources.
struct ReachInfo {
  std::vector<uint8_t> Direct;
  std::vector<uint8_t> Ext;
  uint32_t DirectCount = 0;
  uint32_t ExtCount = 0;
  uint32_t LiveIndirectOuts = 0;
};

ReachInfo reachability(const CfgGraph &G);

/// Reaching-mask lattice points that are not guard offsets.
constexpr uint32_t kGuardUnknown = 0xFFFFFFFFu; ///< no path reaches the node
constexpr uint32_t kGuardNone = 0xFFFFFFFEu;    ///< an unguarded path reaches
constexpr uint32_t kGuardMany = 0xFFFFFFFDu;    ///< conflicting guards meet

/// Forward must-analysis: for each node, the Begin offset of the masked
/// pair whose guard is in force after the node executes (a masked pair
/// installs its own Begin; everything else propagates), met across all
/// paths. Whenever the image has a live indirect transfer, every bundle
/// start additionally meets in kGuardNone — the unguarded computed
/// entry. Every masked pair's own jump is guarded by its own mask by
/// construction; the value is per-node metadata (surfaced through
/// --lint-json) rather than a new diagnostic.
std::vector<uint32_t> reachingMasks(const CfgGraph &G, const ReachInfo &R);

/// Recovered call graph: procedures are the address partition induced by
/// direct-call targets (plus the entry at offset 0); edges are direct
/// calls and intraprocedural flow that crosses a procedure boundary
/// (fallthrough or branch into another procedure's body). SCC
/// condensation makes interprocedural reachability a DAG walk seeded at
/// the entry procedure and at every procedure whose entry node is
/// ext-reachable (computed transfers can enter any aligned procedure).
struct CallGraphInfo {
  std::vector<uint32_t> ProcEntryNode; ///< per proc: entry node index
  std::vector<uint32_t> ProcOf;        ///< per node: owning proc
  std::vector<uint32_t> SccOf;         ///< per proc: condensation id
  std::vector<uint8_t> ProcReachable;  ///< per proc: interprocedurally live
  uint32_t NumSccs = 0;
  uint32_t ReachableProcs = 0;
};

CallGraphInfo recoverCallGraph(const CfgGraph &G, const ReachInfo &R);

//===----------------------------------------------------------------------===//
// Shared lint back half
//===----------------------------------------------------------------------===//

/// Nodes recovered by one of the three front ends, before analysis.
struct RecoveredCfg {
  std::vector<CfgNode> Nodes; ///< address order, tiling [0, ParsedEnd)
  bool ParseComplete = true;
  uint32_t ParsedEnd = 0; ///< where the chain stopped (Size when complete)
};

/// Fills the edge-shape fields of a just-matched node from its bytes
/// (fallthrough / call / indirect-out), shared by every node-recovery
/// front end.
void classifyCfgNode(CfgNode &N, const uint8_t *Code);

/// Sequential front end: re-runs the Figure-5 match chain.
RecoveredCfg recoverCfg(const core::PolicyTables &T, const uint8_t *Code,
                        uint32_t Size);

/// Shard front end: node boundaries from the Valid bitmap of a
/// chunk-parallel scan/merge, pair detection from PairJmp, kinds and
/// branch targets re-derived from the bytes alone — an independent
/// re-derivation the differential lint gate compares against the
/// sequential front end.
RecoveredCfg cfgFromCheck(const uint8_t *Code, uint32_t Size,
                          const core::CheckResult &C);

/// The shared back half of every lint path: runs the passes above over
/// \p Cfg and emits the severity-graded diagnostics. All three lint
/// front ends funnel here, which is what makes their results comparable
/// bit-for-bit. Timing of the pass pipeline is recorded into
/// \p M->AnalysisDataflowNanos when \p M is non-null.
CfgLintResult lintCfg(RecoveredCfg &&Cfg, uint32_t Size, svc::Metrics *M);

/// Whole-image lint derived from the chunk-parallel scan/merge of
/// core/Shard (\p NumShards fresh shard scans, seam-aware join), then
/// the shared back half. Bit-identical to `lintImage` on every input.
CfgLintResult lintImageFromShards(const core::PolicyTables &T,
                                  const uint8_t *Code, uint32_t Size,
                                  uint32_t NumShards,
                                  svc::Metrics *M = nullptr);

//===----------------------------------------------------------------------===//
// Incremental lint
//===----------------------------------------------------------------------===//

/// O(patch-window) re-lint of images maintained by an
/// `incr::IncrementalVerifier`. Lint state is chunked on the verifier's
/// chunk geometry: per chunk, the nodes beginning inside it, their
/// reachability / guard metadata, and the diagnostics anchored inside
/// it. After an accepted spliced re-verification, each splice window is
/// examined:
///
///  * **fast path** — the window was a pure straight-line corridor both
///    before and after the patch (every replaced and replacement node is
///    NoControlFlow, and no direct branch targets the window interior on
///    either side). Then nothing outside the window can change: the
///    corridor's entry reachability and guard propagate unchanged
///    through it, the only in-window diagnostics are unreachable-bundle
///    notes, and the update is O(window).
///  * **middle path** — some window has control flow: the maintained
///    nodes are spliced and the full pass pipeline re-runs over them
///    (no chain re-scan, so still cheaper than a fresh lint).
///  * **full path** — no maintained state or a rejected verdict: fresh
///    `lintImage`, state rebuilt from its result.
///
/// Every path produces verdicts (diags, counts, render) bit-identical
/// to a fresh `lintImage` on the image's current bytes — the
/// `lint_differential` gate holds all three to that.
///
/// Not thread-safe; one instance per session, beside its verifier.
class IncrementalLinter {
public:
  explicit IncrementalLinter(const core::PolicyTables &T,
                             svc::Metrics *M = nullptr)
      : Tables(T), Met(M) {}

  IncrementalLinter(const IncrementalLinter &) = delete;
  IncrementalLinter &operator=(const IncrementalLinter &) = delete;

  /// Summary of one (re-)lint, O(1) to return; the full result is
  /// materialized on demand by `snapshot` and `render`.
  struct Summary {
    bool ParseComplete = false;
    bool FastPath = false; ///< all windows took the O(window) path
    uint32_t Errors = 0, Warnings = 0, Notes = 0;
  };

  /// Full lint of a freshly opened image; captures chunked state.
  /// \p ChunkBytes must match the verifier's geometry for the image.
  Summary open(incr::ImageId Id, const uint8_t *Code, uint32_t Size,
               uint32_t ChunkBytes);

  /// Re-lints after a patch, given the verifier's result for it.
  Summary relint(incr::ImageId Id, const uint8_t *Code, uint32_t Size,
                 const incr::IncrResult &R);

  /// Renders exactly what `lintImage(...).render()` would print for the
  /// image's current bytes — O(diagnostics), not O(image).
  std::string render(incr::ImageId Id) const;

  /// Materializes the maintained state as a full CfgLintResult
  /// (O(image); the differential gate's comparison form).
  CfgLintResult snapshot(incr::ImageId Id) const;

  void close(incr::ImageId Id);
  bool tracks(incr::ImageId Id) const { return States.count(Id) != 0; }

private:
  struct ChunkLint {
    std::vector<CfgNode> Nodes;  ///< nodes with Begin inside the chunk
    std::vector<uint8_t> Reach;  ///< per node: direct-flow reachable
    std::vector<uint8_t> Ext;    ///< per node: ext-reachable
    std::vector<uint32_t> Guard; ///< per node: reaching-mask Out value
    std::vector<LintDiag> Diags; ///< diags with Offset inside the chunk
  };
  struct State {
    bool Valid = false; ///< chunked state mirrors an accepted image
    uint32_t Size = 0, ChunkBytes = 0;
    std::vector<ChunkLint> Chunks;
    // Maintained aggregate counts (the summary line's inputs).
    uint64_t NodeCount = 0;
    uint32_t Errors = 0, Warnings = 0, Notes = 0;
    uint32_t ReachableNodes = 0, ExtReachableNodes = 0;
    uint32_t LiveIndirectOuts = 0;
    uint32_t Procs = 0, ReachableProcs = 0;
    bool ParseComplete = false;
  };

  Summary fullRelint(State &S, incr::ImageId Id, const uint8_t *Code,
                     uint32_t Size, bool Accepted);
  void rebuildState(State &S, const CfgLintResult &R, uint32_t Size,
                    uint32_t ChunkBytes);
  Summary summaryOf(const State &S, bool Fast) const;

  const core::PolicyTables &Tables;
  svc::Metrics *Met;
  std::unordered_map<incr::ImageId, State> States;
};

} // namespace analysis
} // namespace rocksalt

#endif // ROCKSALT_ANALYSIS_DATAFLOW_H
