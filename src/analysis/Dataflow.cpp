//===- analysis/Dataflow.cpp - Whole-image dataflow over the CFG ----------===//
//
// The worklist engine's concrete passes and the three lint front ends.
// Everything funnels into lintCfg, which is what keeps the sequential,
// shard-derived, and incremental lint paths bit-identical: they may
// recover the nodes differently, but the analysis and the diagnostics
// are one code path.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "core/Shard.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

using namespace rocksalt;
using namespace rocksalt::analysis;
using core::StepKind;

//===----------------------------------------------------------------------===//
// CfgGraph
//===----------------------------------------------------------------------===//

CfgGraph::CfgGraph(const std::vector<CfgNode> &Nodes, uint32_t Size)
    : NodesRef(&Nodes) {
  const uint32_t N = uint32_t(Nodes.size());
  NodeAt.assign(Size, kNoNode);
  for (uint32_t I = 0; I < N; ++I)
    NodeAt[Nodes[I].Begin] = I;

  PredOff.assign(N + 1, 0);
  uint32_t Fan[2];
  for (uint32_t I = 0; I < N; ++I) {
    unsigned NS = succs(I, Fan);
    for (unsigned S = 0; S < NS; ++S)
      ++PredOff[Fan[S] + 1];
  }
  for (uint32_t I = 0; I < N; ++I)
    PredOff[I + 1] += PredOff[I];
  PredLst.assign(PredOff[N], 0);
  std::vector<uint32_t> Fill(PredOff.begin(), PredOff.end() - 1);
  for (uint32_t I = 0; I < N; ++I) {
    unsigned NS = succs(I, Fan);
    for (unsigned S = 0; S < NS; ++S)
      PredLst[Fill[Fan[S]]++] = I;
  }
}

unsigned CfgGraph::succs(uint32_t I, uint32_t Out[2]) const {
  const std::vector<CfgNode> &Nodes = *NodesRef;
  const CfgNode &N = Nodes[I];
  unsigned K = 0;
  if (N.Fallthrough && I + 1 < Nodes.size())
    Out[K++] = I + 1;
  if (N.HasTarget) {
    uint32_t J = nodeAt(N.Target);
    if (J != kNoNode && (K == 0 || Out[0] != J))
      Out[K++] = J;
  }
  return K;
}

//===----------------------------------------------------------------------===//
// Lattices
//===----------------------------------------------------------------------===//

namespace {

/// May-reachability: 0/1, join is OR. With HubLive set, every
/// bundle-start node is an additional boundary seed (the computed-entry
/// hub).
struct ReachLattice {
  using Value = uint8_t;
  const std::vector<CfgNode> *Nodes;
  bool HubLive = false;

  Value bottom() const { return 0; }
  Value boundary(uint32_t I) const {
    if (I == 0)
      return 1;
    return HubLive && (*Nodes)[I].Begin % core::BundleSize == 0 ? 1 : 0;
  }
  bool join(Value &D, Value S) const {
    if (S && !D) {
      D = 1;
      return true;
    }
    return false;
  }
  Value transfer(uint32_t, Value In) const { return In; }
};

/// Reaching-mask must-analysis. The "join" is a meet over the
/// finite-height order  kGuardUnknown ⊒ {guards, kGuardNone} ⊒
/// kGuardMany; a masked pair installs its own Begin, everything else
/// propagates. With HubLive set, every bundle start additionally meets
/// in kGuardNone (the unguarded computed entry).
struct GuardLattice {
  using Value = uint32_t;
  const std::vector<CfgNode> *Nodes;
  bool HubLive = false;

  Value bottom() const { return kGuardUnknown; }
  Value boundary(uint32_t I) const {
    if (I == 0)
      return kGuardNone;
    return HubLive && (*Nodes)[I].Begin % core::BundleSize == 0 ? kGuardNone
                                                                : kGuardUnknown;
  }
  static Value meet(Value A, Value B) {
    if (A == kGuardUnknown)
      return B;
    if (B == kGuardUnknown)
      return A;
    return A == B ? A : kGuardMany;
  }
  bool join(Value &D, Value S) const {
    Value M = meet(D, S);
    if (M == D)
      return false;
    D = M;
    return true;
  }
  Value transfer(uint32_t I, Value In) const {
    const CfgNode &N = (*Nodes)[I];
    return N.Kind == StepKind::MaskedJump ? N.Begin : In;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Passes
//===----------------------------------------------------------------------===//

ReachInfo analysis::reachability(const CfgGraph &G) {
  ReachInfo R;
  const std::vector<CfgNode> &Nodes = G.nodes();
  const uint32_t N = G.numNodes();
  R.Direct.assign(N, 0);
  R.Ext.assign(N, 0);
  if (!N)
    return R;

  ReachLattice L{&Nodes, false};
  auto Direct = runDataflow(G, L, DataflowDir::Forward);
  for (uint32_t I = 0; I < N; ++I)
    if (Direct.Out[I]) {
      R.Direct[I] = 1;
      ++R.DirectCount;
    }

  // The hub fires at most once: if no direct-reachable node performs a
  // computed transfer, the least fixpoint has no live indirect out at
  // all (liveness of the hub is itself defined through reachability).
  bool Hub = false;
  for (uint32_t I = 0; I < N && !Hub; ++I)
    Hub = R.Direct[I] && Nodes[I].IndirectOut;
  if (!Hub) {
    R.Ext = R.Direct;
    R.ExtCount = R.DirectCount;
    return R;
  }

  L.HubLive = true;
  auto Ext = runDataflow(G, L, DataflowDir::Forward);
  for (uint32_t I = 0; I < N; ++I)
    if (Ext.Out[I]) {
      R.Ext[I] = 1;
      ++R.ExtCount;
      if (Nodes[I].IndirectOut)
        ++R.LiveIndirectOuts;
    }
  return R;
}

std::vector<uint32_t> analysis::reachingMasks(const CfgGraph &G,
                                              const ReachInfo &R) {
  GuardLattice L{&G.nodes(), R.LiveIndirectOuts > 0};
  auto Res = runDataflow(G, L, DataflowDir::Forward);
  return std::move(Res.Out);
}

CallGraphInfo analysis::recoverCallGraph(const CfgGraph &G,
                                         const ReachInfo &R) {
  CallGraphInfo CG;
  const std::vector<CfgNode> &Nodes = G.nodes();
  const uint32_t N = G.numNodes();
  if (!N)
    return CG;

  // Procedure entries: the image entry plus every direct-call target
  // that is a node start, as an address partition.
  std::vector<uint32_t> Entries{0};
  for (const CfgNode &Nd : Nodes)
    if (Nd.IsCall && Nd.HasTarget) {
      uint32_t T = G.nodeAt(Nd.Target);
      if (T != CfgGraph::kNoNode)
        Entries.push_back(T);
    }
  std::sort(Entries.begin(), Entries.end());
  Entries.erase(std::unique(Entries.begin(), Entries.end()), Entries.end());
  const uint32_t P = uint32_t(Entries.size());
  CG.ProcEntryNode = Entries;
  CG.ProcOf.assign(N, 0);
  for (uint32_t Pi = 0, I = 0; I < N; ++I) {
    while (Pi + 1 < P && I >= Entries[Pi + 1])
      ++Pi;
    CG.ProcOf[I] = Pi;
  }

  // Proc-level edges: every CFG edge that crosses a procedure boundary
  // (direct calls are target edges, so they are included).
  std::vector<std::vector<uint32_t>> Adj(P);
  uint32_t Fan[2];
  for (uint32_t I = 0; I < N; ++I) {
    unsigned NS = G.succs(I, Fan);
    for (unsigned S = 0; S < NS; ++S)
      if (CG.ProcOf[I] != CG.ProcOf[Fan[S]])
        Adj[CG.ProcOf[I]].push_back(CG.ProcOf[Fan[S]]);
  }

  // Iterative Tarjan SCC over the proc graph.
  CG.SccOf.assign(P, UINT32_MAX);
  std::vector<uint32_t> Index(P, UINT32_MAX), Low(P, 0);
  std::vector<uint8_t> OnStack(P, 0);
  std::vector<uint32_t> Stack;
  struct Frame {
    uint32_t V;
    uint32_t Edge;
  };
  std::vector<Frame> Frames;
  uint32_t NextIdx = 0;
  for (uint32_t Root = 0; Root < P; ++Root) {
    if (Index[Root] != UINT32_MAX)
      continue;
    Index[Root] = Low[Root] = NextIdx++;
    Stack.push_back(Root);
    OnStack[Root] = 1;
    Frames.push_back({Root, 0});
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      if (F.Edge < Adj[F.V].size()) {
        uint32_t W = Adj[F.V][F.Edge++];
        if (Index[W] == UINT32_MAX) {
          Index[W] = Low[W] = NextIdx++;
          Stack.push_back(W);
          OnStack[W] = 1;
          Frames.push_back({W, 0});
        } else if (OnStack[W] && Index[W] < Low[F.V]) {
          Low[F.V] = Index[W];
        }
      } else {
        uint32_t V = F.V;
        Frames.pop_back();
        if (!Frames.empty() && Low[V] < Low[Frames.back().V])
          Low[Frames.back().V] = Low[V];
        if (Low[V] == Index[V]) {
          uint32_t Scc = CG.NumSccs++;
          for (;;) {
            uint32_t W = Stack.back();
            Stack.pop_back();
            OnStack[W] = 0;
            CG.SccOf[W] = Scc;
            if (W == V)
              break;
          }
        }
      }
    }
  }

  // Interprocedural reachability over the condensation. Tarjan numbers
  // SCCs in reverse topological order (cross-SCC edges go from a higher
  // id to a lower one), so one descending sweep propagates everything.
  std::vector<uint8_t> SccLive(CG.NumSccs, 0);
  SccLive[CG.SccOf[CG.ProcOf[0]]] = 1;
  for (uint32_t Pi = 0; Pi < P; ++Pi)
    if (R.Ext[CG.ProcEntryNode[Pi]])
      SccLive[CG.SccOf[Pi]] = 1;
  std::vector<uint32_t> Order(P);
  for (uint32_t Pi = 0; Pi < P; ++Pi)
    Order[Pi] = Pi;
  std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    return CG.SccOf[A] > CG.SccOf[B];
  });
  for (uint32_t V : Order)
    if (SccLive[CG.SccOf[V]])
      for (uint32_t W : Adj[V])
        SccLive[CG.SccOf[W]] = 1;

  CG.ProcReachable.assign(P, 0);
  for (uint32_t Pi = 0; Pi < P; ++Pi)
    if (SccLive[CG.SccOf[Pi]]) {
      CG.ProcReachable[Pi] = 1;
      ++CG.ReachableProcs;
    }
  return CG;
}

//===----------------------------------------------------------------------===//
// Node recovery front ends
//===----------------------------------------------------------------------===//

void analysis::classifyCfgNode(CfgNode &N, const uint8_t *Code) {
  switch (N.Kind) {
  case StepKind::NoControlFlow:
    N.Fallthrough = true;
    break;
  case StepKind::DirectJump: {
    uint8_t B0 = Code[N.Begin];
    if (B0 == 0xEB || B0 == 0xE9) {
      // JMP rel8/rel32: unconditional, no fallthrough.
    } else if (B0 == 0xE8) {
      N.IsCall = true;
      N.Fallthrough = true; // the return point
    } else {
      // Jcc rel8 (70..7F) or 0F 8x rel32.
      N.Fallthrough = true;
    }
    break;
  }
  case StepKind::MaskedJump: {
    // The jump half is the last two bytes: FF /4 (jmp) or FF /2 (call).
    uint8_t ModRM = Code[N.End - 1];
    unsigned RegField = (ModRM >> 3) & 7;
    N.IndirectOut = true;
    if (RegField == 2) {
      N.IsCall = true;
      N.Fallthrough = true; // the return point
    }
    break;
  }
  case StepKind::Fail:
    break;
  }
}

RecoveredCfg analysis::recoverCfg(const core::PolicyTables &T,
                                  const uint8_t *Code, uint32_t Size) {
  RecoveredCfg R;
  R.ParseComplete = true;
  R.ParsedEnd = Size;
  uint32_t Pos = 0;
  while (Pos < Size) {
    CfgNode N;
    N.Begin = Pos;
    uint32_t Dest = 0;
    N.Kind = core::verifyStep(T, Code, &Pos, Size, &Dest);
    if (N.Kind == StepKind::Fail) {
      R.ParseComplete = false;
      R.ParsedEnd = N.Begin;
      break;
    }
    N.End = Pos;
    if (N.Kind == StepKind::DirectJump) {
      N.HasTarget = true;
      N.Target = Dest;
    }
    classifyCfgNode(N, Code);
    R.Nodes.push_back(N);
  }
  return R;
}

namespace {

int32_t rel32At(const uint8_t *Code, uint32_t Pos) {
  return int32_t(uint32_t(Code[Pos]) | (uint32_t(Code[Pos + 1]) << 8) |
                 (uint32_t(Code[Pos + 2]) << 16) |
                 (uint32_t(Code[Pos + 3]) << 24));
}

} // namespace

RecoveredCfg analysis::cfgFromCheck(const uint8_t *Code, uint32_t Size,
                                    const core::CheckResult &C) {
  RecoveredCfg R;
  R.ParseComplete = C.Reason != core::RejectReason::NoParse;
  std::vector<uint32_t> Pos;
  Pos.reserve(Size / 4 + 1);
  for (uint32_t I = 0; I < Size; ++I)
    if (C.Valid[I])
      Pos.push_back(I);

  size_t NumNodes = Pos.size();
  if (!R.ParseComplete) {
    // On NoParse the failing position is Valid-marked but matched no
    // grammar: it is the parse horizon, not a node.
    R.ParsedEnd = Pos.empty() ? 0 : Pos.back();
    if (NumNodes)
      --NumNodes;
  } else {
    R.ParsedEnd = Size;
  }

  R.Nodes.reserve(NumNodes);
  for (size_t I = 0; I < NumNodes; ++I) {
    CfgNode N;
    N.Begin = Pos[I];
    N.End = I + 1 < Pos.size() ? Pos[I + 1] : Size;
    uint32_t Len = N.End - N.Begin;
    uint8_t B0 = Code[N.Begin];
    // Kind re-derivation from the bitmaps and bytes alone — deliberately
    // independent of verifyStep's target extraction, which is what the
    // differential lint gate cross-checks. The policy grammars are
    // audited pairwise-disjoint, so byte-shape dispatch is unambiguous.
    if (Len >= core::MaskedJumpHalfLen &&
        C.PairJmp[N.End - core::MaskedJumpHalfLen]) {
      N.Kind = StepKind::MaskedJump;
    } else if (B0 == 0xEB || (B0 >= 0x70 && B0 <= 0x7F)) {
      N.Kind = StepKind::DirectJump;
      N.HasTarget = true;
      N.Target = N.End + uint32_t(int32_t(int8_t(Code[N.Begin + 1])));
    } else if (B0 == 0xE9 || B0 == 0xE8) {
      N.Kind = StepKind::DirectJump;
      N.HasTarget = true;
      N.Target = N.End + uint32_t(rel32At(Code, N.Begin + 1));
    } else if (B0 == 0x0F && Len >= 2 && Code[N.Begin + 1] >= 0x80 &&
               Code[N.Begin + 1] <= 0x8F) {
      N.Kind = StepKind::DirectJump;
      N.HasTarget = true;
      N.Target = N.End + uint32_t(rel32At(Code, N.Begin + 2));
    } else {
      N.Kind = StepKind::NoControlFlow;
    }
    classifyCfgNode(N, Code);
    R.Nodes.push_back(N);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// lintCfg — the shared back half
//===----------------------------------------------------------------------===//

namespace {

/// The one diagnostic kind the incremental fast path regenerates, so
/// its text lives in a helper both emitters share.
LintDiag unreachableBundleDiag(uint32_t B, uint32_t LiveOuts) {
  char Buf[192];
  if (LiveOuts)
    std::snprintf(Buf, sizeof(Buf),
                  "bundle %u is unreachable by direct flow; %u live computed "
                  "transfer(s) may still enter at this bundle start",
                  B / core::BundleSize, LiveOuts);
  else
    std::snprintf(Buf, sizeof(Buf),
                  "bundle %u is unreachable by direct flow and the image has "
                  "no live computed transfer — dead code",
                  B / core::BundleSize);
  return {LintSeverity::Note, LintKind::UnreachableBundle, B, Buf};
}

} // namespace

CfgLintResult analysis::lintCfg(RecoveredCfg &&Cfg, uint32_t Size,
                                svc::Metrics *M) {
  CfgLintResult R;
  R.ParseComplete = Cfg.ParseComplete;
  R.Nodes = std::move(Cfg.Nodes);
  const uint32_t ParsedEnd = Cfg.ParsedEnd;

  // The pass pipeline (graph + reachability + guards + call graph).
  auto T0 = std::chrono::steady_clock::now();
  CfgGraph G(R.Nodes, Size);
  ReachInfo Reach = reachability(G);
  R.Guard = reachingMasks(G, Reach);
  CallGraphInfo CG = recoverCallGraph(G, Reach);
  if (M)
    M->AnalysisDataflowNanos.record(uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count()));

  R.ReachableNodes = Reach.DirectCount;
  R.ExtReachableNodes = Reach.ExtCount;
  R.LiveIndirectOuts = Reach.LiveIndirectOuts;
  R.Procs = uint32_t(CG.ProcEntryNode.size());
  R.ReachableProcs = CG.ReachableProcs;
  R.Reachable = std::move(Reach.Direct);
  R.ExtReachable = std::move(Reach.Ext);

  if (!R.ParseComplete)
    R.Diags.push_back({LintSeverity::Error, LintKind::ParseStuck, ParsedEnd,
                       "no policy grammar matches at this offset; "
                       "the image tail is unanalyzed"});

  char Buf[192];

  // Bundle boundaries must be instruction starts (Error), and should be
  // reachable (Note) — each within the parsed region. The note's detail
  // reports whether any live computed transfer can still enter.
  for (uint32_t B = 0; B < ParsedEnd; B += core::BundleSize) {
    uint32_t NI = G.nodeAt(B);
    if (NI == CfgGraph::kNoNode) {
      std::snprintf(Buf, sizeof(Buf),
                    "bundle %u starts inside an instruction — every 32-byte "
                    "boundary must be an instruction start",
                    B / core::BundleSize);
      R.Diags.push_back(
          {LintSeverity::Error, LintKind::UnalignedBundleStart, B, Buf});
    } else if (!R.Reachable[NI]) {
      R.Diags.push_back(unreachableBundleDiag(B, R.LiveIndirectOuts));
    }
  }

  // Direct-branch targets must land on node starts; landing inside a
  // masked pair is the sharpest hazard (it bypasses or splits the mask).
  for (const CfgNode &N : R.Nodes) {
    if (!N.HasTarget)
      continue;
    uint32_t Tgt = N.Target;
    if (G.nodeAt(Tgt) != CfgGraph::kNoNode)
      continue; // a well-formed edge
    const CfgNode *Container = nullptr;
    if (Tgt < ParsedEnd && !R.Nodes.empty()) {
      auto It = std::upper_bound(
          R.Nodes.begin(), R.Nodes.end(), Tgt,
          [](uint32_t V, const CfgNode &Node) { return V < Node.Begin; });
      if (It != R.Nodes.begin())
        Container = &*--It;
    }
    if (Container && Container->Kind == StepKind::MaskedJump &&
        Tgt > Container->Begin && Tgt < Container->End) {
      std::snprintf(Buf, sizeof(Buf),
                    "direct branch targets %04x, inside the masked pair "
                    "[%04x,%04x) — entering there bypasses the mask",
                    Tgt, Container->Begin, Container->End);
      R.Diags.push_back(
          {LintSeverity::Error, LintKind::BranchIntoMaskedPair, N.Begin, Buf});
    } else {
      std::snprintf(Buf, sizeof(Buf),
                    "direct branch targets %04x, which is not an "
                    "instruction start",
                    Tgt);
      R.Diags.push_back(
          {LintSeverity::Error, LintKind::BranchIntoInterior, N.Begin, Buf});
    }
  }

  // Call discipline and dead masked pairs, both now path-sensitive:
  // gated on extended reachability rather than raw address presence.
  for (uint32_t I = 0; I < R.Nodes.size(); ++I) {
    const CfgNode &N = R.Nodes[I];
    if (N.IsCall && (N.End % core::BundleSize) != 0 && R.ExtReachable[I]) {
      std::snprintf(Buf, sizeof(Buf),
                    "reachable call returns to %04x, which is not "
                    "bundle-aligned — a policy-compliant masked return "
                    "cannot come back here",
                    N.End);
      R.Diags.push_back(
          {LintSeverity::Warning, LintKind::CallRetNotSeam, N.Begin, Buf});
    }
    if (N.Kind == StepKind::MaskedJump && !R.ExtReachable[I]) {
      std::snprintf(Buf, sizeof(Buf),
                    "masked pair [%04x,%04x) is not live: neither direct flow "
                    "nor any live computed transfer reaches it — the "
                    "indirect transfer protects nothing",
                    N.Begin, N.End);
      R.Diags.push_back(
          {LintSeverity::Warning, LintKind::DeadMaskedPair, N.Begin, Buf});
    }
  }

  std::stable_sort(
      R.Diags.begin(), R.Diags.end(),
      [](const LintDiag &A, const LintDiag &B) { return A.Offset < B.Offset; });

  uint32_t DeadPairs = 0, OffSeamCalls = 0;
  for (const LintDiag &D : R.Diags) {
    switch (D.Sev) {
    case LintSeverity::Error:
      R.Errors++;
      break;
    case LintSeverity::Warning:
      R.Warnings++;
      break;
    case LintSeverity::Note:
      R.Notes++;
      break;
    }
    DeadPairs += D.Kind == LintKind::DeadMaskedPair;
    OffSeamCalls += D.Kind == LintKind::CallRetNotSeam;
  }

  if (M) {
    M->LintImages.add();
    M->LintErrors.add(R.Errors);
    M->LintWarnings.add(R.Warnings);
    M->LintNotes.add(R.Notes);
    M->LintDeadPairs.add(DeadPairs);
    M->LintOffSeamCalls.add(OffSeamCalls);
    M->LintLiveIndirectOuts.add(R.LiveIndirectOuts);
  }
  return R;
}

CfgLintResult analysis::lintImageFromShards(const core::PolicyTables &T,
                                            const uint8_t *Code, uint32_t Size,
                                            uint32_t NumShards,
                                            svc::Metrics *M) {
  std::vector<core::ShardScan> Shards;
  core::partitionShards(Size, NumShards, Shards);
  for (core::ShardScan &S : Shards)
    core::scanShard(T, Code, Size, S);
  core::CheckResult C = core::mergeShardScans(T, Code, Size, Shards);
  return lintCfg(cfgFromCheck(Code, Size, C), Size, M);
}

//===----------------------------------------------------------------------===//
// IncrementalLinter
//===----------------------------------------------------------------------===//

void IncrementalLinter::rebuildState(State &S, const CfgLintResult &R,
                                     uint32_t Size, uint32_t ChunkBytes) {
  S.Size = Size;
  S.ChunkBytes = ChunkBytes;
  uint32_t NC = ChunkBytes ? (Size + ChunkBytes - 1) / ChunkBytes : 0;
  S.Chunks.assign(NC, {});
  for (uint32_t I = 0; I < R.Nodes.size(); ++I) {
    ChunkLint &Ch = S.Chunks[R.Nodes[I].Begin / ChunkBytes];
    Ch.Nodes.push_back(R.Nodes[I]);
    Ch.Reach.push_back(R.Reachable[I]);
    Ch.Ext.push_back(R.ExtReachable[I]);
    Ch.Guard.push_back(R.Guard[I]);
  }
  for (const LintDiag &D : R.Diags)
    S.Chunks[D.Offset / ChunkBytes].Diags.push_back(D);
  S.NodeCount = R.Nodes.size();
  S.Errors = R.Errors;
  S.Warnings = R.Warnings;
  S.Notes = R.Notes;
  S.ReachableNodes = R.ReachableNodes;
  S.ExtReachableNodes = R.ExtReachableNodes;
  S.LiveIndirectOuts = R.LiveIndirectOuts;
  S.Procs = R.Procs;
  S.ReachableProcs = R.ReachableProcs;
  S.ParseComplete = R.ParseComplete;
}

IncrementalLinter::Summary IncrementalLinter::summaryOf(const State &S,
                                                        bool Fast) const {
  Summary Sum;
  Sum.ParseComplete = S.ParseComplete;
  Sum.FastPath = Fast;
  Sum.Errors = S.Errors;
  Sum.Warnings = S.Warnings;
  Sum.Notes = S.Notes;
  return Sum;
}

IncrementalLinter::Summary IncrementalLinter::open(incr::ImageId Id,
                                                   const uint8_t *Code,
                                                   uint32_t Size,
                                                   uint32_t ChunkBytes) {
  if (ChunkBytes == 0 || ChunkBytes % core::BundleSize != 0)
    throw std::invalid_argument("lint chunk granularity must be a nonzero "
                                "multiple of the bundle size");
  CfgLintResult R = lintImage(Tables, Code, Size, Met);
  State &S = States[Id];
  rebuildState(S, R, Size, ChunkBytes);
  S.Valid = R.ParseComplete && R.Errors == 0;
  return summaryOf(S, false);
}

IncrementalLinter::Summary IncrementalLinter::fullRelint(State &S,
                                                         incr::ImageId,
                                                         const uint8_t *Code,
                                                         uint32_t Size,
                                                         bool Accepted) {
  CfgLintResult R = lintImage(Tables, Code, Size, Met);
  rebuildState(S, R, Size, S.ChunkBytes);
  S.Valid = Accepted && R.ParseComplete && R.Errors == 0;
  return summaryOf(S, false);
}

IncrementalLinter::Summary
IncrementalLinter::relint(incr::ImageId Id, const uint8_t *Code, uint32_t Size,
                          const incr::IncrResult &R) {
  auto It = States.find(Id);
  if (It == States.end())
    throw std::invalid_argument("unknown image handle");
  State &S = It->second;
  if (Met)
    Met->LintIncrRelints.add();
  if (!R.Ok || !R.Spliced || !S.Valid || Size != S.Size)
    return fullRelint(S, Id, Code, Size, R.Ok);

  const uint32_t CB = S.ChunkBytes;

  // Plan every window before touching any state: re-derive its nodes
  // from the new bytes, locate what it replaces, and decide fast-path
  // eligibility. Any surprise (the maintained chain out of step with a
  // window edge) falls back to the full path with the state untouched.
  struct WinPlan {
    uint32_t Begin = 0, End = 0;
    std::vector<CfgNode> NewNodes;
    uint8_t EntryReach = 0, EntryExt = 0;
    uint32_t EntryGuard = kGuardUnknown;
    uint32_t OldNodes = 0, OldReach = 0, OldExt = 0, OldDiags = 0;
    bool Fast = false;
  };
  std::vector<WinPlan> Plans;
  Plans.reserve(R.Windows.size());
  bool AllFast = true;

  for (const incr::SpliceWindow &W : R.Windows) {
    if (W.Begin >= W.End)
      continue;
    WinPlan P;
    P.Begin = W.Begin;
    P.End = W.End;

    bool NewNcf = true;
    uint32_t Pos = W.Begin;
    while (Pos < W.End) {
      CfgNode N;
      N.Begin = Pos;
      uint32_t Dest = 0;
      N.Kind = core::verifyStep(Tables, Code, &Pos, Size, &Dest);
      if (N.Kind == StepKind::Fail)
        return fullRelint(S, Id, Code, Size, true);
      N.End = Pos;
      if (N.Kind == StepKind::DirectJump) {
        N.HasTarget = true;
        N.Target = Dest;
      }
      classifyCfgNode(N, Code);
      if (N.Kind != StepKind::NoControlFlow)
        NewNcf = false;
      P.NewNodes.push_back(N);
    }
    if (Pos != W.End)
      return fullRelint(S, Id, Code, Size, true); // overshot the window

    // Walk the replaced old nodes/diags, capturing the entry values
    // (the first replaced node's stored analysis results — valid as
    // entry values because everything feeding the window is unchanged).
    uint32_t FirstC = W.Begin / CB;
    uint32_t LastC = (W.End - 1) / CB;
    bool OldNcf = true, DiagsAllNotes = true, First = true;
    for (uint32_t C = FirstC; C <= LastC && C < S.Chunks.size(); ++C) {
      const ChunkLint &Ch = S.Chunks[C];
      for (size_t I = 0; I < Ch.Nodes.size(); ++I) {
        const CfgNode &N = Ch.Nodes[I];
        if (N.Begin < W.Begin)
          continue;
        if (N.Begin >= W.End)
          break;
        if (First) {
          if (N.Begin != W.Begin)
            return fullRelint(S, Id, Code, Size, true);
          P.EntryReach = Ch.Reach[I];
          P.EntryExt = Ch.Ext[I];
          P.EntryGuard = Ch.Guard[I];
          First = false;
        }
        if (N.Kind != StepKind::NoControlFlow)
          OldNcf = false;
        ++P.OldNodes;
        P.OldReach += Ch.Reach[I];
        P.OldExt += Ch.Ext[I];
      }
      for (const LintDiag &D : Ch.Diags) {
        if (D.Offset < W.Begin)
          continue;
        if (D.Offset >= W.End)
          break;
        if (D.Sev != LintSeverity::Note)
          DiagsAllNotes = false;
        ++P.OldDiags;
      }
    }
    if (First)
      return fullRelint(S, Id, Code, Size, true); // no node at window start

    P.Fast = NewNcf && OldNcf && DiagsAllNotes && !W.InteriorTargetsBefore &&
             !W.InteriorTargetsAfter;
    if (!P.Fast)
      AllFast = false;
    Plans.push_back(std::move(P));
  }

  if (!AllFast) {
    // Middle path: splice the maintained node list (no chain re-scan of
    // untouched regions) and re-run the full pass pipeline over it.
    RecoveredCfg Cfg;
    Cfg.ParseComplete = true;
    Cfg.ParsedEnd = Size;
    Cfg.Nodes.reserve(size_t(S.NodeCount));
    size_t Wi = 0;
    for (const ChunkLint &Ch : S.Chunks)
      for (const CfgNode &N : Ch.Nodes) {
        while (Wi < Plans.size() && Plans[Wi].End <= N.Begin) {
          for (const CfgNode &NN : Plans[Wi].NewNodes)
            Cfg.Nodes.push_back(NN);
          ++Wi;
        }
        if (Wi < Plans.size() && N.Begin >= Plans[Wi].Begin &&
            N.Begin < Plans[Wi].End)
          continue; // replaced by the window
        Cfg.Nodes.push_back(N);
      }
    while (Wi < Plans.size()) {
      for (const CfgNode &NN : Plans[Wi].NewNodes)
        Cfg.Nodes.push_back(NN);
      ++Wi;
    }
    CfgLintResult Full = lintCfg(std::move(Cfg), Size, Met);
    rebuildState(S, Full, Size, CB);
    S.Valid = true;
    return summaryOf(S, false);
  }

  // Fast path: every window is a straight-line corridor on both sides
  // with no branches in. Entry values propagate unchanged through it
  // (the only In contributions are the fallthrough and, at bundle
  // starts when a live indirect out exists, the computed-entry hub),
  // and the only window-owned diagnostics are unreachable-bundle notes.
  for (WinPlan &P : Plans) {
    const bool LiveHub = S.LiveIndirectOuts > 0;
    const size_t NN = P.NewNodes.size();
    std::vector<uint8_t> NewExt(NN);
    std::vector<uint32_t> NewGuard(NN);
    uint8_t Ext = P.EntryExt;
    uint32_t Gd = P.EntryGuard;
    uint32_t NewExtSum = 0;
    for (size_t I = 0; I < NN; ++I) {
      if (I && LiveHub && P.NewNodes[I].Begin % core::BundleSize == 0) {
        Ext = 1;
        Gd = GuardLattice::meet(Gd, kGuardNone);
      }
      NewExt[I] = Ext;
      NewGuard[I] = Gd;
      NewExtSum += Ext;
    }
    const uint32_t NewReachSum = P.EntryReach ? uint32_t(NN) : 0;

    std::vector<LintDiag> NewDiags;
    if (!P.EntryReach)
      for (uint32_t B = (P.Begin + core::BundleSize - 1) &
                        ~uint32_t(core::BundleSize - 1);
           B < P.End; B += core::BundleSize)
        NewDiags.push_back(unreachableBundleDiag(B, S.LiveIndirectOuts));

    // Swap the window's contribution into the chunked state.
    uint32_t FirstC = P.Begin / CB;
    uint32_t LastC = (P.End - 1) / CB;
    size_t NI = 0, DI = 0;
    for (uint32_t C = FirstC; C <= LastC && C < S.Chunks.size(); ++C) {
      ChunkLint &Ch = S.Chunks[C];
      ChunkLint Next;
      size_t Keep = 0;
      while (Keep < Ch.Nodes.size() && Ch.Nodes[Keep].Begin < P.Begin)
        ++Keep;
      Next.Nodes.assign(Ch.Nodes.begin(), Ch.Nodes.begin() + Keep);
      Next.Reach.assign(Ch.Reach.begin(), Ch.Reach.begin() + Keep);
      Next.Ext.assign(Ch.Ext.begin(), Ch.Ext.begin() + Keep);
      Next.Guard.assign(Ch.Guard.begin(), Ch.Guard.begin() + Keep);
      uint64_t ChunkEnd = uint64_t(C + 1) * CB;
      while (NI < NN && P.NewNodes[NI].Begin < ChunkEnd) {
        Next.Nodes.push_back(P.NewNodes[NI]);
        Next.Reach.push_back(P.EntryReach);
        Next.Ext.push_back(NewExt[NI]);
        Next.Guard.push_back(NewGuard[NI]);
        ++NI;
      }
      for (size_t I = Keep; I < Ch.Nodes.size(); ++I)
        if (Ch.Nodes[I].Begin >= P.End) {
          Next.Nodes.push_back(Ch.Nodes[I]);
          Next.Reach.push_back(Ch.Reach[I]);
          Next.Ext.push_back(Ch.Ext[I]);
          Next.Guard.push_back(Ch.Guard[I]);
        }
      size_t KeepD = 0;
      while (KeepD < Ch.Diags.size() && Ch.Diags[KeepD].Offset < P.Begin)
        ++KeepD;
      Next.Diags.assign(Ch.Diags.begin(), Ch.Diags.begin() + KeepD);
      while (DI < NewDiags.size() && NewDiags[DI].Offset < ChunkEnd)
        Next.Diags.push_back(std::move(NewDiags[DI++]));
      for (size_t I = KeepD; I < Ch.Diags.size(); ++I)
        if (Ch.Diags[I].Offset >= P.End)
          Next.Diags.push_back(Ch.Diags[I]);
      Ch = std::move(Next);
    }

    S.NodeCount = S.NodeCount + NN - P.OldNodes;
    S.ReachableNodes = S.ReachableNodes - P.OldReach + NewReachSum;
    S.ExtReachableNodes = S.ExtReachableNodes - P.OldExt + NewExtSum;
    S.Notes = S.Notes - P.OldDiags + uint32_t(NewDiags.size());
  }
  if (Met)
    Met->LintIncrFastPath.add();
  return summaryOf(S, true);
}

std::string IncrementalLinter::render(incr::ImageId Id) const {
  auto It = States.find(Id);
  if (It == States.end())
    throw std::invalid_argument("unknown image handle");
  const State &S = It->second;
  std::string Out;
  for (const ChunkLint &Ch : S.Chunks)
    for (const LintDiag &D : Ch.Diags)
      renderLintDiagLine(Out, D);
  renderLintSummaryLine(Out, size_t(S.NodeCount), S.ReachableNodes,
                        S.ExtReachableNodes, S.ReachableProcs, S.Procs,
                        S.Errors, S.Warnings, S.Notes, S.ParseComplete);
  return Out;
}

CfgLintResult IncrementalLinter::snapshot(incr::ImageId Id) const {
  auto It = States.find(Id);
  if (It == States.end())
    throw std::invalid_argument("unknown image handle");
  const State &S = It->second;
  CfgLintResult R;
  R.ParseComplete = S.ParseComplete;
  R.Nodes.reserve(size_t(S.NodeCount));
  for (const ChunkLint &Ch : S.Chunks) {
    R.Nodes.insert(R.Nodes.end(), Ch.Nodes.begin(), Ch.Nodes.end());
    R.Reachable.insert(R.Reachable.end(), Ch.Reach.begin(), Ch.Reach.end());
    R.ExtReachable.insert(R.ExtReachable.end(), Ch.Ext.begin(), Ch.Ext.end());
    R.Guard.insert(R.Guard.end(), Ch.Guard.begin(), Ch.Guard.end());
    R.Diags.insert(R.Diags.end(), Ch.Diags.begin(), Ch.Diags.end());
  }
  R.Errors = S.Errors;
  R.Warnings = S.Warnings;
  R.Notes = S.Notes;
  R.ReachableNodes = S.ReachableNodes;
  R.ExtReachableNodes = S.ExtReachableNodes;
  R.LiveIndirectOuts = S.LiveIndirectOuts;
  R.Procs = S.Procs;
  R.ReachableProcs = S.ReachableProcs;
  return R;
}

void IncrementalLinter::close(incr::ImageId Id) { States.erase(Id); }
