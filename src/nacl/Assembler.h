//===- nacl/Assembler.h - NaCl-izing assembler -----------------*- C++ -*-===//
///
/// \file
/// Emits machine code that respects the aligned sandbox policy — the
/// role the modified NaCl GCC plays in the paper (section 3: inserting
/// mask instructions before computed jumps and no-ops so that potential
/// jump targets are 32-byte aligned). Guarantees, by construction:
///
///  * no instruction straddles a 32-byte bundle boundary (NOP padding is
///    inserted first), so every 32nd byte is an instruction start;
///  * every indirect transfer is emitted as the nacljmp pair (AND r,$-32
///    directly followed by JMP/CALL *r), never split across bundles;
///  * labels resolve to instruction starts; direct jumps are rel32/rel8
///    pc-relative fixups against them.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_NACL_ASSEMBLER_H
#define ROCKSALT_NACL_ASSEMBLER_H

#include "core/Policy.h"
#include "x86/Encoder.h"

#include <map>
#include <string>
#include <vector>

namespace rocksalt {
namespace nacl {

class Assembler {
  std::vector<uint8_t> Code;

  struct Fixup {
    uint32_t DispPos;  ///< where the rel32 field lives
    uint32_t NextAddr; ///< address after the branch instruction
    std::string Label;
  };
  std::map<std::string, uint32_t> Labels;
  std::vector<Fixup> Fixups;
  bool Finished = false;

  void raw(const std::vector<uint8_t> &Bytes);

public:
  /// Current emit position (== size so far).
  uint32_t here() const { return static_cast<uint32_t>(Code.size()); }

  /// Pads with NOPs so the next \p Len bytes fit inside one bundle.
  void fit(uint32_t Len);

  /// Pads with NOPs to the next bundle boundary (no-op when aligned).
  void padToBundle();

  /// Encodes and appends one straight-line instruction, bundle-fitted.
  void emit(const x86::Instr &I);

  /// Binds \p Name to the current position.
  void label(const std::string &Name);

  /// Binds \p Name to the current position after aligning it to a bundle
  /// boundary (required for targets of indirect jumps).
  void alignedLabel(const std::string &Name);

  /// Direct jump / conditional jump / call to a label (rel32, fixed up at
  /// finish()).
  void jmpTo(const std::string &Label);
  void jccTo(x86::Cond CC, const std::string &Label);
  void callTo(const std::string &Label);

  /// Call padded so the instruction *ends* on a bundle boundary — the
  /// NaCl discipline that makes return addresses bundle-aligned, so the
  /// callee's masked return (pop r; nacljmp r) comes back exactly.
  void callToAligned(const std::string &Label);

  /// The nacljmp pseudo-instruction: AND r, $-32 ; JMP/CALL *r — kept
  /// within one bundle. \p R must not be ESP.
  void maskedJump(x86::Reg R);
  void maskedCall(x86::Reg R);

  /// Stops execution safely (HLT), typically used as a bundle filler at
  /// the end of a function.
  void hlt();

  /// Resolves fixups, pads the image to a whole number of bundles, and
  /// returns the code. The assembler must not be reused afterwards.
  std::vector<uint8_t> finish();
};

} // namespace nacl
} // namespace rocksalt

#endif // ROCKSALT_NACL_ASSEMBLER_H
