//===- nacl/Mutator.cpp ---------------------------------------*- C++ -*-===//

#include "nacl/Mutator.h"

using namespace rocksalt;
using namespace rocksalt::nacl;

std::optional<std::vector<uint8_t>>
nacl::applyAttack(const std::vector<uint8_t> &Code, Attack Kind, Rng &R) {
  if (Code.size() < 8)
    return std::nullopt;
  std::vector<uint8_t> Out = Code;
  uint32_t Pos = static_cast<uint32_t>(R.below(Out.size() - 4));

  switch (Kind) {
  case Attack::BareIndirectJump:
    Out[Pos] = 0xFF;
    Out[Pos + 1] = 0xE0; // jmp *eax
    return Out;
  case Attack::InsertRet:
    Out[Pos] = 0xC3;
    return Out;
  case Attack::InsertInt:
    Out[Pos] = 0xCD;
    Out[Pos + 1] = 0x80; // int 0x80
    return Out;
  case Attack::StripMask: {
    // Find a masked-jump pair (83 Ex E0 FF Ex|Dx) and erase the mask.
    for (size_t I = 0; I + 4 < Out.size(); ++I) {
      if (Out[I] != 0x83 || (Out[I + 1] & 0xF8) != 0xE0 ||
          Out[I + 2] != 0xE0 || Out[I + 3] != 0xFF)
        continue;
      Out[I] = 0x90;
      Out[I + 1] = 0x90;
      Out[I + 2] = 0x90;
      return Out;
    }
    return std::nullopt;
  }
  case Attack::SegmentOverride: {
    static const uint8_t SegBytes[] = {0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65};
    Out[Pos] = SegBytes[R.below(6)];
    return Out;
  }
  case Attack::FarCall:
    Out[Pos] = 0x9A;
    return Out;
  case Attack::WriteSegReg:
    Out[Pos] = 0x8E;
    Out[Pos + 1] = 0xD8; // mov ds, eax
    return Out;
  case Attack::PrefixedBranch:
    // A 0x66 operand-size prefix on a direct branch makes the immediate
    // rel16, truncating EIP — the policy grammars must refuse the prefix
    // outright instead of mis-sizing the displacement.
    Out[Pos] = 0x66;
    if (R.flip()) {
      Out[Pos + 1] = 0xE9; // jmp rel16
    } else {
      Out[Pos + 1] = 0x0F; // jcc rel16
      Out[Pos + 2] = static_cast<uint8_t>(0x80 + R.below(16));
    }
    return Out;
  }
  return std::nullopt;
}

std::vector<uint8_t> nacl::mutateRandom(const std::vector<uint8_t> &Code,
                                        Rng &R) {
  std::vector<uint8_t> Out = Code;
  if (Out.empty())
    return Out;
  uint32_t Pos = static_cast<uint32_t>(R.below(Out.size()));
  if (R.flip())
    Out[Pos] ^= static_cast<uint8_t>(1u << R.below(8));
  else
    Out[Pos] = static_cast<uint8_t>(R.next());
  return Out;
}
