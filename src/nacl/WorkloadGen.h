//===- nacl/WorkloadGen.h - Compliant program generation -------*- C++ -*-===//
///
/// \file
/// Generates random sandbox-compliant binaries — the role Csmith + the
/// NaCl GCC play in the paper's evaluation (sections 2.5 and 3.3): large
/// positive corpora for checker agreement and throughput measurements,
/// with a realistic mix of straight-line code, direct branches, calls,
/// and masked indirect jumps.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_NACL_WORKLOADGEN_H
#define ROCKSALT_NACL_WORKLOADGEN_H

#include "support/Oracle.h"
#include "x86/InstrGen.h"

#include <cstdint>
#include <vector>

namespace rocksalt {
namespace nacl {

struct WorkloadOptions {
  uint32_t TargetBytes = 4096; ///< approximate image size
  uint64_t Seed = 1;
  /// Per-mille rates of the non-straight-line constructs.
  uint32_t DirectJumpRate = 40;
  uint32_t CallRate = 20;
  uint32_t MaskedJumpRate = 15;
  bool EndWithHlt = true;
};

/// Generates a policy-compliant image of roughly TargetBytes bytes.
std::vector<uint8_t> generateWorkload(const WorkloadOptions &Opts);

/// A random instruction drawn from the policy's NoControlFlow set (used
/// by the generator and by tests needing single legal instructions).
x86::Instr randomSafeInstr(Rng &R);

} // namespace nacl
} // namespace rocksalt

#endif // ROCKSALT_NACL_WORKLOADGEN_H
