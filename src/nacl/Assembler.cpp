//===- nacl/Assembler.cpp -------------------------------------*- C++ -*-===//

#include "nacl/Assembler.h"

#include <cassert>

using namespace rocksalt;
using namespace rocksalt::nacl;
using core::BundleSize;
using x86::Instr;
using x86::Reg;

void Assembler::raw(const std::vector<uint8_t> &Bytes) {
  assert(!Finished && "assembler already finished");
  Code.insert(Code.end(), Bytes.begin(), Bytes.end());
}

void Assembler::fit(uint32_t Len) {
  assert(Len <= BundleSize && "instruction longer than a bundle");
  uint32_t Used = here() % BundleSize;
  if (Used + Len > BundleSize)
    padToBundle();
}

void Assembler::padToBundle() {
  while (here() % BundleSize != 0)
    Code.push_back(0x90); // NOP
}

void Assembler::emit(const Instr &I) {
  std::vector<uint8_t> Bytes = x86::encodeOrDie(I);
  fit(static_cast<uint32_t>(Bytes.size()));
  raw(Bytes);
}

void Assembler::label(const std::string &Name) {
  assert(!Labels.count(Name) && "duplicate label");
  Labels[Name] = here();
}

void Assembler::alignedLabel(const std::string &Name) {
  padToBundle();
  label(Name);
}

void Assembler::jmpTo(const std::string &Label) {
  fit(5);
  Code.push_back(0xE9);
  Fixups.push_back({here(), here() + 4, Label});
  Code.insert(Code.end(), 4, 0);
}

void Assembler::jccTo(x86::Cond CC, const std::string &Label) {
  fit(6);
  Code.push_back(0x0F);
  Code.push_back(static_cast<uint8_t>(0x80 + x86::encodingOf(CC)));
  Fixups.push_back({here(), here() + 4, Label});
  Code.insert(Code.end(), 4, 0);
}

void Assembler::callTo(const std::string &Label) {
  fit(5);
  Code.push_back(0xE8);
  Fixups.push_back({here(), here() + 4, Label});
  Code.insert(Code.end(), 4, 0);
}

void Assembler::callToAligned(const std::string &Label) {
  while ((here() + 5) % BundleSize != 0)
    Code.push_back(0x90);
  callTo(Label);
}

void Assembler::maskedJump(Reg R) {
  assert(R != Reg::ESP && "nacljmp through ESP is not expressible");
  fit(5);
  uint8_t Enc = x86::encodingOf(R);
  // and r, $-32 ; jmp *r
  raw({0x83, static_cast<uint8_t>(0xE0 | Enc), core::SafeMaskByte, 0xFF,
       static_cast<uint8_t>(0xE0 | Enc)});
}

void Assembler::maskedCall(Reg R) {
  assert(R != Reg::ESP && "nacljmp through ESP is not expressible");
  fit(5);
  uint8_t Enc = x86::encodingOf(R);
  // and r, $-32 ; call *r
  raw({0x83, static_cast<uint8_t>(0xE0 | Enc), core::SafeMaskByte, 0xFF,
       static_cast<uint8_t>(0xD0 | Enc)});
}

void Assembler::hlt() {
  fit(1);
  Code.push_back(0xF4);
}

std::vector<uint8_t> Assembler::finish() {
  assert(!Finished && "finish called twice");
  Finished = true;
  padToBundle();
  for (const Fixup &F : Fixups) {
    auto It = Labels.find(F.Label);
    assert(It != Labels.end() && "undefined label");
    (void)It;
    uint32_t Disp = It->second - F.NextAddr;
    for (int I = 0; I < 4; ++I)
      Code[F.DispPos + I] = static_cast<uint8_t>(Disp >> (8 * I));
  }
  return std::move(Code);
}
