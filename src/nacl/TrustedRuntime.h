//===- nacl/TrustedRuntime.h - Trusted service interface -------*- C++ -*-===//
///
/// \file
/// The "well-defined set of entry points" of the sandbox policy (paper
/// section 1, item d), modeled as a hypercall interface: untrusted code
/// executes HLT (a safe, policy-legal trap) with a service number in EAX;
/// the trusted runtime performs the service and resumes execution. This
/// plays the role of NaCl's trampolines for the examples and tests.
///
/// Services:
///   EAX=0: exit(EBX)           — stop the program
///   EAX=1: putchar(EBX)        — append a character to the output
///   EAX=2: write(EBX=data-segment offset, ECX=length)
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_NACL_TRUSTEDRUNTIME_H
#define ROCKSALT_NACL_TRUSTEDRUNTIME_H

#include "sem/Cpu.h"

#include <string>

namespace rocksalt {
namespace nacl {

class TrustedRuntime {
public:
  enum Service : uint32_t { SvcExit = 0, SvcPutChar = 1, SvcWrite = 2 };

  struct RunResult {
    bool Exited = false;      ///< program called exit
    uint32_t ExitCode = 0;
    std::string Output;       ///< bytes written via the services
    rtl::Status Final = rtl::Status::Running;
    uint64_t Steps = 0;
  };

  /// Runs the sandboxed program, servicing hypercalls, until exit, a
  /// fault, or \p MaxSteps.
  RunResult run(sem::Cpu &C, uint64_t MaxSteps);
};

} // namespace nacl
} // namespace rocksalt

#endif // ROCKSALT_NACL_TRUSTEDRUNTIME_H
