//===- nacl/TrustedRuntime.cpp --------------------------------*- C++ -*-===//

#include "nacl/TrustedRuntime.h"

using namespace rocksalt;
using namespace rocksalt::nacl;
using rtl::Status;

TrustedRuntime::RunResult TrustedRuntime::run(sem::Cpu &C,
                                              uint64_t MaxSteps) {
  RunResult R;
  while (R.Steps < MaxSteps) {
    if (C.M.St == Status::Running) {
      C.step();
      ++R.Steps;
      continue;
    }
    if (C.M.St != Status::Halted)
      break; // fault or error: stop

    // Hypercall dispatch.
    uint32_t Svc = C.M.Regs[0];
    uint32_t Arg = C.M.Regs[3]; // EBX
    switch (Svc) {
    case SvcExit:
      R.Exited = true;
      R.ExitCode = Arg;
      R.Final = Status::Halted;
      return R;
    case SvcPutChar:
      R.Output.push_back(static_cast<char>(Arg));
      break;
    case SvcWrite: {
      uint32_t Len = C.M.Regs[1]; // ECX
      uint8_t Ds = static_cast<uint8_t>(x86::SegReg::DS);
      for (uint32_t I = 0; I < Len && I < 65536; ++I) {
        if (!C.M.inSegment(Ds, Arg + I))
          break;
        R.Output.push_back(
            static_cast<char>(C.M.Mem.load8(C.M.physAddr(Ds, Arg + I))));
      }
      break;
    }
    default:
      // Unknown service: treat as abnormal exit.
      R.Exited = true;
      R.ExitCode = 0xFFFFFFFF;
      R.Final = Status::Halted;
      return R;
    }
    C.M.St = Status::Running; // resume after the hypercall
  }
  R.Final = C.M.St;
  return R;
}
