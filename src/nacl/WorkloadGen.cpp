//===- nacl/WorkloadGen.cpp -----------------------------------*- C++ -*-===//

#include "nacl/WorkloadGen.h"

#include "nacl/Assembler.h"

#include <deque>

using namespace rocksalt;
using namespace rocksalt::nacl;
using x86::Instr;
using x86::Opcode;
using x86::Reg;

x86::Instr nacl::randomSafeInstr(Rng &R) {
  x86::GenOptions Opts;
  Opts.AllowControlFlow = false;
  Opts.AllowPrivileged = false;
  Opts.AllowSegmentOps = false;
  Instr I = x86::randomInstr(R, Opts);
  // ENTER's nesting levels are outside both the policy and the model.
  while (I.Op == Opcode::ENTER)
    I = x86::randomInstr(R, Opts);

  // The policy's prefix discipline: rep only on plain-width string ops.
  bool IsString = I.Op == Opcode::MOVS || I.Op == Opcode::CMPS ||
                  I.Op == Opcode::STOS || I.Op == Opcode::LODS ||
                  I.Op == Opcode::SCAS;
  if (IsString && I.Pfx.Rep != x86::Prefix::RepKind::None)
    I.Pfx.OpSize = false;

  // Sprinkle lock prefixes over the lockable read-modify-write family.
  if (I.Op1.isMem() && R.chance(1, 12)) {
    switch (I.Op) {
    case Opcode::ADD: case Opcode::OR: case Opcode::ADC: case Opcode::SBB:
    case Opcode::AND: case Opcode::SUB: case Opcode::XOR: case Opcode::INC:
    case Opcode::DEC: case Opcode::NOT: case Opcode::NEG: case Opcode::XCHG:
    case Opcode::XADD: case Opcode::CMPXCHG: case Opcode::BTS:
    case Opcode::BTR: case Opcode::BTC:
      if (!I.Op2.isMem() && !I.Pfx.OpSize)
        I.Pfx.Lock = true;
      break;
    default:
      break;
    }
  }
  return I;
}

std::vector<uint8_t> nacl::generateWorkload(const WorkloadOptions &Opts) {
  Rng R(Opts.Seed);
  Assembler A;

  unsigned NextLabel = 0;
  std::deque<std::string> Pending;   // issued, not yet bound
  std::vector<std::string> Bound;    // usable as backward targets

  auto FreshLabel = [&] {
    std::string L = "L" + std::to_string(NextLabel++);
    Pending.push_back(L);
    return L;
  };
  auto PickTarget = [&]() -> std::string {
    // Forward by default; occasionally a backward target.
    if (!Bound.empty() && R.chance(1, 4))
      return Bound[R.below(Bound.size())];
    return FreshLabel();
  };

  while (A.here() < Opts.TargetBytes) {
    // Bind a pending label with some probability so forward jumps stay
    // short and plentiful.
    if (!Pending.empty() && R.chance(1, 6)) {
      A.label(Pending.front());
      Bound.push_back(Pending.front());
      Pending.pop_front();
    }

    uint32_t Roll = static_cast<uint32_t>(R.below(1000));
    if (Roll < Opts.DirectJumpRate) {
      if (R.flip())
        A.jmpTo(PickTarget());
      else
        A.jccTo(x86::condFromEncoding(uint8_t(R.below(16))), PickTarget());
    } else if (Roll < Opts.DirectJumpRate + Opts.CallRate) {
      A.callTo(PickTarget());
    } else if (Roll <
               Opts.DirectJumpRate + Opts.CallRate + Opts.MaskedJumpRate) {
      static const Reg Regs[] = {Reg::EAX, Reg::ECX, Reg::EDX, Reg::EBX,
                                 Reg::EBP, Reg::ESI, Reg::EDI};
      Reg Target = Regs[R.below(7)];
      if (R.flip())
        A.maskedJump(Target);
      else
        A.maskedCall(Target);
    } else {
      A.emit(randomSafeInstr(R));
    }
  }

  // Bind any labels still outstanding.
  while (!Pending.empty()) {
    A.label(Pending.front());
    Pending.pop_front();
    A.emit(Instr{}); // NOP
  }
  if (Opts.EndWithHlt)
    A.hlt();
  return A.finish();
}
