//===- nacl/Mutator.h - Adversarial corpus generation ----------*- C++ -*-===//
///
/// \file
/// Produces corrupted variants of compliant binaries, standing in for the
/// paper's hand-crafted unsafe programs (section 3.3). Targeted
/// mutations introduce specific policy violations (a bare indirect jump,
/// a RET, an INT, a stripped mask); random mutations flip bytes anywhere,
/// producing a mix of still-valid and invalid images for checker
/// agreement testing.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_NACL_MUTATOR_H
#define ROCKSALT_NACL_MUTATOR_H

#include "support/Oracle.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace rocksalt {
namespace nacl {

/// Targeted, guaranteed-violation mutations.
enum class Attack {
  BareIndirectJump, ///< overwrite two bytes with FF E0 (jmp *eax)
  InsertRet,        ///< overwrite one byte with C3
  InsertInt,        ///< overwrite two bytes with CD 80 (int 0x80)
  StripMask,        ///< NOP out the AND of a masked-jump pair
  SegmentOverride,  ///< overwrite one byte with a segment prefix
  FarCall,          ///< overwrite one byte with 9A (far call)
  WriteSegReg,      ///< overwrite two bytes with 8E D8 (mov ds, eax)
  PrefixedBranch    ///< overwrite with 66 E9 / 66 0F 8x (rel16 branch)
};

/// Applies \p Kind at a random position. Returns std::nullopt when the
/// attack does not apply (e.g. StripMask on an image with no masked
/// jump).
std::optional<std::vector<uint8_t>>
applyAttack(const std::vector<uint8_t> &Code, Attack Kind, Rng &R);

/// Random single-site corruption (bit flip or byte rewrite); the result
/// may or may not still satisfy the policy.
std::vector<uint8_t> mutateRandom(const std::vector<uint8_t> &Code, Rng &R);

} // namespace nacl
} // namespace rocksalt

#endif // ROCKSALT_NACL_MUTATOR_H
