//===- regex/Algebra.h - DFA algebra over checker tables -------*- C++ -*-===//
///
/// \file
/// Boolean algebra, minimization, and decision procedures over the
/// table-form DFAs of regex/Dfa.h. These are the executable analogues of
/// the meta-lemmas the paper discharges in Coq about the checker's own
/// artifacts (sections 3.2 and 4.1): language disjointness of the policy
/// grammars, inclusion of each policy language in the decodable x86
/// language, and exactness of the accept/reject classification baked
/// into the shipped tables.
///
/// Everything here operates on the *tables*, not on regexes, so the
/// analyses certify exactly what the trusted matcher executes — two DFAs
/// need not come from the same Factory (or from a Factory at all). All
/// decision procedures are constructive: a failed check comes back as a
/// shortest (and, among shortest, byte-lexicographically least) witness
/// string, ready to be replayed through `dfaMatch` or a disassembler.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_REGEX_ALGEBRA_H
#define ROCKSALT_REGEX_ALGEBRA_H

#include "regex/Dfa.h"

#include <optional>
#include <vector>

namespace rocksalt {
namespace re {

/// Boolean combinator applied to acceptance in a product construction.
enum class SetOp : uint8_t {
  Union,         ///< L(A) ∪ L(B)
  Intersect,     ///< L(A) ∩ L(B)
  Difference,    ///< L(A) \ L(B)
  SymmetricDiff, ///< (L(A) \ L(B)) ∪ (L(B) \ L(A))
};

/// Classic product construction restricted to the reachable pair space:
/// states are reachable pairs (a, b), transitions are componentwise, and
/// acceptance is \p Op applied to the component acceptances. The result's
/// Rejects vector is recomputed exactly (a state is flagged iff no
/// accepting state is reachable from it), so the product is a well-formed
/// Dfa in this repository's sense and can itself be fed back into any
/// analysis here or into `dfaMatch`. Throws std::length_error if the
/// reachable product exceeds the 16-bit state id range.
Dfa productDfa(const Dfa &A, const Dfa &B, SetOp Op);

/// Per-state mask of states reachable from Start (1 = reachable).
std::vector<uint8_t> reachableMask(const Dfa &D);

/// Per-state mask of *live* states: states from which some accepting
/// state is reachable. Dead states (the complement) are exactly the
/// states a correct Rejects vector must flag.
std::vector<uint8_t> liveMask(const Dfa &D);

/// Emptiness with witness extraction: the shortest string in L(D)
/// (byte-lexicographically least among shortest), or std::nullopt when
/// L(D) is empty. The empty vector means D accepts the empty string.
std::optional<std::vector<uint8_t>> shortestAccepted(const Dfa &D);

/// The \p K shortest members of L(D), ordered by length and then
/// byte-lexicographically (so the first entry, when present, equals
/// `shortestAccepted`). Returns fewer than \p K strings when |L(D)| < K
/// (in particular an empty vector for the empty language), and the
/// strings are pairwise distinct — a DFA walk is a string, so the
/// best-first enumeration below never produces duplicates. This is the
/// counterexample-*family* extractor: where a failed obligation used to
/// come back as one witness, enumerating the k nearest members of the
/// offending product language shows the shape of the violation class.
std::vector<std::vector<uint8_t>> kShortestAccepted(const Dfa &D, unsigned K);

/// True iff L(D) is empty.
bool languageEmpty(const Dfa &D);

/// A string in L(A) ∩ L(B), or std::nullopt when the languages are
/// disjoint. This is the checker's policy-disjointness obligation.
std::optional<std::vector<uint8_t>> intersectionWitness(const Dfa &A,
                                                        const Dfa &B);

/// A string in L(A) \ L(B) — a witness that L(A) ⊆ L(B) FAILS — or
/// std::nullopt when the inclusion holds. This is the policy/decoder
/// drift obligation: every policy-accepted string must stay inside the
/// decodable language.
std::optional<std::vector<uint8_t>> inclusionWitness(const Dfa &A,
                                                     const Dfa &B);

/// A string on which A and B disagree, or std::nullopt when
/// L(A) = L(B). Used to certify that minimization preserved the
/// language.
std::optional<std::vector<uint8_t>> equivalenceWitness(const Dfa &A,
                                                       const Dfa &B);

/// Hopcroft partition-refinement minimization. The result accepts
/// exactly L(D), is restricted to reachable states, merges all
/// language-equivalent states (in particular every dead state collapses
/// into at most one flagged reject sink), and is canonically numbered by
/// breadth-first order from the start state so that equal inputs produce
/// bit-identical tables.
Dfa minimizeDfa(const Dfa &D);

/// Structural health of a shipped table. The derivative construction
/// produces at most one dead state (canonical Void) and flags it; this
/// audit re-derives both properties from the table alone, so a
/// hand-edited, truncated, or bit-rotted table cannot claim them by
/// construction.
struct DfaHealth {
  uint32_t NumStates = 0;
  uint32_t NumAccepting = 0;
  uint32_t NumDead = 0;            ///< states that cannot reach an accept
  uint32_t Unreachable = 0;        ///< states unreachable from Start
  uint32_t DeadUnflagged = 0;      ///< dead but Rejects[s] == 0: the
                                   ///< matcher would keep scanning a
                                   ///< hopeless prefix
  uint32_t LiveFlaggedReject = 0;  ///< live but Rejects[s] == 1: the
                                   ///< matcher would abandon a viable
                                   ///< prefix — an acceptance bug
  uint32_t AcceptRejectOverlap = 0;///< Accepts[s] && Rejects[s]
  uint32_t RejectEscapes = 0;      ///< transitions leaving a flagged
                                   ///< reject state for a non-reject one

  bool ok() const {
    return Unreachable == 0 && DeadUnflagged == 0 && LiveFlaggedReject == 0 &&
           AcceptRejectOverlap == 0 && RejectEscapes == 0;
  }
};

DfaHealth auditDfa(const Dfa &D);

} // namespace re
} // namespace rocksalt

#endif // ROCKSALT_REGEX_ALGEBRA_H
