//===- regex/Dfa.cpp ------------------------------------------*- C++ -*-===//

#include "regex/Dfa.h"

#include <cassert>
#include <deque>
#include <unordered_map>

using namespace rocksalt;
using namespace rocksalt::re;

Dfa re::buildDfa(Factory &F, Regex Root, [[maybe_unused]] size_t MaxStates) {
  Dfa D;
  std::unordered_map<Regex, uint16_t> StateOf;
  std::deque<Regex> Worklist;

  auto StateFor = [&](Regex R) -> uint16_t {
    auto It = StateOf.find(R);
    if (It != StateOf.end())
      return It->second;
    assert(StateOf.size() < MaxStates && "DFA state explosion");
    assert(StateOf.size() < 65535 && "DFA state id overflows uint16_t");
    uint16_t Id = static_cast<uint16_t>(StateOf.size());
    StateOf.emplace(R, Id);
    D.Table.emplace_back();
    D.Accepts.push_back(F.nullable(R));
    D.Rejects.push_back(R == F.voidRe());
    Worklist.push_back(R);
    return Id;
  };

  D.Start = StateFor(Root);
  while (!Worklist.empty()) {
    Regex R = Worklist.front();
    Worklist.pop_front();
    uint16_t Id = StateOf.at(R);
    for (unsigned Byte = 0; Byte < 256; ++Byte) {
      Regex Next = F.derivByte(R, static_cast<uint8_t>(Byte));
      D.Table[Id][Byte] = StateFor(Next);
    }
  }
  return D;
}
