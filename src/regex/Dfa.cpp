//===- regex/Dfa.cpp ------------------------------------------*- C++ -*-===//

#include "regex/Dfa.h"

#include <deque>
#include <stdexcept>
#include <unordered_map>

using namespace rocksalt;
using namespace rocksalt::re;

Dfa re::buildDfa(Factory &F, Regex Root, size_t MaxStates) {
  Dfa D;
  std::unordered_map<Regex, uint16_t> StateOf;
  std::deque<Regex> Worklist;

  // These are hard errors, not asserts: the verifier's match loop indexes
  // the transition table with 16-bit state ids, so a table that silently
  // grew past the id range would make it walk the wrong rows in release
  // builds (where asserts compile away).
  if (MaxStates > MaxDfaStates)
    MaxStates = MaxDfaStates;

  auto StateFor = [&](Regex R) -> uint16_t {
    auto It = StateOf.find(R);
    if (It != StateOf.end())
      return It->second;
    if (StateOf.size() >= MaxStates)
      throw std::length_error(
          "buildDfa: DFA state count exceeds the 16-bit state id range "
          "(or the caller's MaxStates bound)");
    uint16_t Id = static_cast<uint16_t>(StateOf.size());
    StateOf.emplace(R, Id);
    D.Table.emplace_back();
    D.Accepts.push_back(F.nullable(R));
    D.Rejects.push_back(R == F.voidRe());
    Worklist.push_back(R);
    return Id;
  };

  D.Start = StateFor(Root);
  while (!Worklist.empty()) {
    Regex R = Worklist.front();
    Worklist.pop_front();
    uint16_t Id = StateOf.at(R);
    for (unsigned Byte = 0; Byte < 256; ++Byte) {
      Regex Next = F.derivByte(R, static_cast<uint8_t>(Byte));
      D.Table[Id][Byte] = StateFor(Next);
    }
  }
  return D;
}
