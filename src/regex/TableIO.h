//===- regex/TableIO.h - Versioned binary DFA table format -----*- C++ -*-===//
///
/// \file
/// Serialization of DFA table bundles into a versioned, content-addressed
/// binary format ("RSTB"). Because the shipped tables are Hopcroft-
/// minimized and canonically BFS-numbered (regex/Algebra.h), identical
/// grammars always serialize to byte-identical blobs, so the embedded
/// SHA-256 doubles as a cache key and a drift detector: CI pins the hash
/// and fails when a grammar edit changes the accepted language.
///
/// Format v2 layout (all integers little-endian; see DESIGN.md
/// section 16):
///
///   offset  size  field
///   0       4     magic "RSTB"
///   4       4     format version (currently 2)
///   8       4     table count N
///   12      32    SHA-256 over every byte after this field
///   44      ...   u32 ISA tag length, ISA tag bytes ("x86", "mips", ...)
///                 u32 policy-set tag length, policy-set tag bytes
///   ...     ...   N table records, each:
///                   u32 name length, name bytes (no terminator)
///                   u32 start state
///                   u32 state count S
///                   S*256 u16 transition targets, row-major by state
///                   S u8 accept flags (0/1)
///                   S u8 reject flags (0/1)
///
/// The ISA and policy-set tags live INSIDE the hashed region: two table
/// sets that differ only in their tag have different content addresses,
/// so a MIPS blob can never be cache-confused with an x86 one. Format
/// v1 (no tags) is still read for compatibility — every v1 blob
/// predates the multi-ISA registry, so a v1 read reports the implied
/// "x86"/"nacl" tags (pinned by a golden-blob test).
///
/// Deserialization re-verifies the magic, version, hash, tags, flag
/// values, and that every transition target is < S; any mismatch throws
/// at the first divergent byte — a truncated, bit-flipped, or
/// wrong-ISA blob never silently yields a table.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_REGEX_TABLEIO_H
#define ROCKSALT_REGEX_TABLEIO_H

#include "regex/Dfa.h"

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rocksalt {
namespace re {

/// The current serialization format version. Bump on any layout change;
/// readers reject versions they do not understand.
constexpr uint32_t TableFormatVersion = 2;

/// The legacy tagless format, still accepted on read (its blobs all
/// predate the multi-ISA registry and are implied "x86"/"nacl").
constexpr uint32_t TableFormatV1 = 1;

/// Tags implied by a v1 blob, and the longest tag a v2 header may carry
/// (a hostile length cannot balloon the reader).
constexpr const char *TableV1ImpliedIsa = "x86";
constexpr const char *TableV1ImpliedPolicySet = "nacl";
constexpr uint32_t MaxTableTagLen = 32;

/// A deserialized bundle: the format version it was written with, the
/// identity tags (implied for v1 blobs), the content hash carried in
/// the header (hex), and the named tables in file order.
struct TableBundle {
  uint32_t Version = 0;
  std::string Isa;
  std::string PolicySet;
  std::string HashHex;
  std::vector<std::pair<std::string, Dfa>> Tables;
};

/// Serializes the named tables under the given identity tags (current
/// format). Deterministic: the same tables and tags in the same order
/// always produce the same bytes (and therefore hash). Tags must be
/// nonempty and at most MaxTableTagLen bytes of [a-z0-9_-].
std::vector<uint8_t>
serializeTables(const std::vector<std::pair<std::string, const Dfa *>> &Tables,
                std::string_view Isa, std::string_view PolicySet);

/// Parses and fully validates a blob (v2, or v1 with implied tags).
/// When \p ExpectIsa / \p ExpectPolicySet are nonempty the blob's tags
/// must equal them — the check runs before any table payload is read,
/// so a wrong-ISA blob is rejected at the header. Throws
/// std::runtime_error with a specific message on bad magic, unsupported
/// version, hash mismatch, tag mismatch, truncation, out-of-range
/// transition targets, or non-boolean flags.
TableBundle deserializeTables(const std::vector<uint8_t> &Blob,
                              std::string_view ExpectIsa = {},
                              std::string_view ExpectPolicySet = {});

/// The content hash of a serialized blob, as carried in its header
/// (does not re-verify it; use deserializeTables for that).
std::string blobHashHex(const std::vector<uint8_t> &Blob);

/// Recomputes the payload hash and checks it against the header without
/// materializing any table — the cheap integrity check a transport runs
/// before caching or re-serving a blob. Throws std::runtime_error on
/// truncation, bad magic, unsupported version, or hash mismatch;
/// returns the verified hash in lowercase hex.
std::string verifyBlobHashHex(const std::vector<uint8_t> &Blob);

} // namespace re
} // namespace rocksalt

#endif // ROCKSALT_REGEX_TABLEIO_H
