//===- regex/TableIO.h - Versioned binary DFA table format -----*- C++ -*-===//
///
/// \file
/// Serialization of DFA table bundles into a versioned, content-addressed
/// binary format ("RSTB"). Because the shipped tables are Hopcroft-
/// minimized and canonically BFS-numbered (regex/Algebra.h), identical
/// grammars always serialize to byte-identical blobs, so the embedded
/// SHA-256 doubles as a cache key and a drift detector: CI pins the hash
/// and fails when a grammar edit changes the accepted language.
///
/// Layout (all integers little-endian; see DESIGN.md section 10):
///
///   offset  size  field
///   0       4     magic "RSTB"
///   4       4     format version (currently 1)
///   8       4     table count N
///   12      32    SHA-256 over every byte after this field
///   44      ...   N table records, each:
///                   u32 name length, name bytes (no terminator)
///                   u32 start state
///                   u32 state count S
///                   S*256 u16 transition targets, row-major by state
///                   S u8 accept flags (0/1)
///                   S u8 reject flags (0/1)
///
/// Deserialization re-verifies the magic, version, hash, flag values,
/// and that every transition target is < S; any mismatch throws — a
/// truncated or bit-flipped blob never silently yields a table.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_REGEX_TABLEIO_H
#define ROCKSALT_REGEX_TABLEIO_H

#include "regex/Dfa.h"

#include <string>
#include <utility>
#include <vector>

namespace rocksalt {
namespace re {

/// The current serialization format version. Bump on any layout change;
/// readers reject versions they do not understand.
constexpr uint32_t TableFormatVersion = 1;

/// A deserialized bundle: the format version it was written with, the
/// content hash carried in the header (hex), and the named tables in
/// file order.
struct TableBundle {
  uint32_t Version = 0;
  std::string HashHex;
  std::vector<std::pair<std::string, Dfa>> Tables;
};

/// Serializes the named tables. Deterministic: the same tables in the
/// same order always produce the same bytes (and therefore hash).
std::vector<uint8_t>
serializeTables(const std::vector<std::pair<std::string, const Dfa *>> &Tables);

/// Parses and fully validates a blob. Throws std::runtime_error with a
/// specific message on bad magic, unsupported version, hash mismatch,
/// truncation, out-of-range transition targets, or non-boolean flags.
TableBundle deserializeTables(const std::vector<uint8_t> &Blob);

/// The content hash of a serialized blob, as carried in its header
/// (does not re-verify it; use deserializeTables for that).
std::string blobHashHex(const std::vector<uint8_t> &Blob);

/// Recomputes the payload hash and checks it against the header without
/// materializing any table — the cheap integrity check a transport runs
/// before caching or re-serving a blob. Throws std::runtime_error on
/// truncation, bad magic, unsupported version, or hash mismatch;
/// returns the verified hash in lowercase hex.
std::string verifyBlobHashHex(const std::vector<uint8_t> &Blob);

} // namespace re
} // namespace rocksalt

#endif // ROCKSALT_REGEX_TABLEIO_H
