//===- regex/Dfa.h - Derivative-based DFA construction ---------*- C++ -*-===//
///
/// \file
/// Offline DFA table generation from a regex (paper section 3.2): the
/// start state is the regex itself; transitions are iterated Brzozowski
/// derivatives with respect to all 256 input bytes; states are the
/// distinct canonical derivatives. A state accepts iff its regex is
/// nullable, and rejects iff its regex is the (canonical) Void — i.e.
/// denotes the empty language, so no extension can ever match.
///
/// Brzozowski proved the number of derivatives is finite up to the
/// reductions our smart constructors perform, so construction terminates.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_REGEX_DFA_H
#define ROCKSALT_REGEX_DFA_H

#include "regex/Regex.h"

#include <array>
#include <cstdint>
#include <vector>

namespace rocksalt {
namespace re {

/// The table representation consumed by the verifier's match routine
/// (paper Figure 6): a start state, a transition table indexed by
/// [state][byte], and boolean accept/reject vectors.
struct Dfa {
  uint32_t Start = 0;
  std::vector<std::array<uint16_t, 256>> Table;
  std::vector<uint8_t> Accepts;
  std::vector<uint8_t> Rejects;

  size_t numStates() const { return Table.size(); }

  /// Executes one transition.
  uint16_t step(uint16_t State, uint8_t Byte) const {
    return Table[State][Byte];
  }
};

/// The hard ceiling on DFA states: state ids live in uint16_t transition
/// table cells, so a table past this bound cannot be represented (ids
/// 0..65534, with 65535 kept unused as a guard).
constexpr size_t MaxDfaStates = 65535;

/// Builds the DFA for \p Root by derivative closure. Throws
/// std::length_error if more than min(\p MaxStates, MaxDfaStates) states
/// are generated — a real check, not an assert, so oversized tables are
/// rejected in release builds too (the paper's policy DFAs have at most
/// 61 states, so the default bound is generous).
Dfa buildDfa(Factory &F, Regex Root, size_t MaxStates = 65000);

} // namespace re
} // namespace rocksalt

#endif // ROCKSALT_REGEX_DFA_H
