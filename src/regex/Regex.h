//===- regex/Regex.h - Bit-level regular expressions -----------*- C++ -*-===//
///
/// \file
/// Untyped regular expressions over the binary alphabet {0,1}, obtained
/// from the decoder grammars by stripping semantic actions (paper
/// section 3.2). These are the objects the checker's DFAs are generated
/// from, and the objects the determinism/ambiguity analysis of section
/// 4.1 operates on.
///
/// Nodes are hash-consed through a Factory so that structural equality is
/// pointer equality. The smart constructors perform the local reductions
/// listed in section 2.2:
///
///   Cat g Eps -> g        Cat Eps g -> g
///   Cat g Void -> Void    Cat Void g -> Void
///   Alt g Void -> g       Alt Void g -> g
///   Star (Star g) -> Star g    Alt g g -> g
///
/// plus flattening/sorting of Alt and right-nesting of Cat, so that
/// canonical forms are unique. A consequence used by the DFA builder: a
/// canonical regex denotes the empty language iff it is the Void node.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_REGEX_REGEX_H
#define ROCKSALT_REGEX_REGEX_H

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rocksalt {
namespace re {

enum class Kind : uint8_t {
  Void, ///< matches nothing
  Eps,  ///< matches the empty string
  Bit,  ///< matches a single literal bit
  Any,  ///< matches any single bit
  Cat,  ///< concatenation (right-nested in canonical form)
  Alt,  ///< n-ary alternation (flattened, sorted, deduplicated)
  Star  ///< Kleene star
};

class Factory;

/// A single hash-consed regex node. Instances are created and owned by a
/// Factory; clients hold `Regex` (= const Node *) handles and compare them
/// with pointer equality.
class Node {
  friend class Factory;

  Kind K;
  bool BitVal = false;              // for Kind::Bit
  const Node *L = nullptr;          // Cat lhs / Star body
  const Node *R = nullptr;          // Cat rhs
  std::vector<const Node *> Alts;   // for Kind::Alt
  uint32_t Id;                      // creation index, used for ordering

  // Lazily computed, cached analyses.
  mutable int8_t NullableCache = -1;
  mutable const Node *DerivCache[2] = {nullptr, nullptr};

  Node(Kind K, uint32_t Id) : K(K), Id(Id) {}

public:
  Kind kind() const { return K; }
  bool bitValue() const { return BitVal; }
  const Node *lhs() const { return L; }
  const Node *rhs() const { return R; }
  const Node *body() const { return L; }
  const std::vector<const Node *> &alternatives() const { return Alts; }
  uint32_t id() const { return Id; }
};

using Regex = const Node *;

/// Creates, interns, and analyzes regexes. All regexes combined together
/// must come from the same Factory.
class Factory {
  /// Structural hash-consing key: a node is identified by its kind and
  /// the identities of its (already-interned) children, so equality is
  /// pointer comparison on subterms — no string rendering involved.
  struct NodeKey {
    Kind K;
    bool BitVal;
    Regex L;
    Regex R;
    std::vector<Regex> Alts;
    bool operator==(const NodeKey &) const = default;
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey &K) const;
  };

  std::deque<Node> Arena;
  std::unordered_map<NodeKey, Regex, NodeKeyHash> Interned;
  Regex VoidRe_ = nullptr;
  Regex EpsRe_ = nullptr;
  Regex BitRe_[2] = {nullptr, nullptr};
  Regex AnyRe_ = nullptr;
  std::unordered_map<uint64_t, Regex> DerivPairMemo;
  /// Byte-level derivative memo, keyed by (node id << 8) | byte. The
  /// per-(node, bit) caches on the nodes remain the workhorse of the
  /// bit-level recursion; this table sits above them so repeat queries
  /// for the same (state, byte) pair — rebuilds, audits, equivalence
  /// checks against the same factory — cost one lookup, not eight.
  std::unordered_map<uint64_t, Regex> DerivByteMemo;
  /// Type-erased strip cache used by the grammar layer
  /// (gram::Grammar<T>::strip): grammar node address -> stripped regex
  /// in *this* factory. The owning shared_ptr pins the grammar node so
  /// an address can never be recycled while the cache entry lives —
  /// a stale-pointer hit would silently produce the wrong regex.
  std::unordered_map<const void *,
                     std::pair<std::shared_ptr<const void>, Regex>>
      StripCache;

  Regex intern(Kind K, bool BitVal, Regex L, Regex R,
               std::vector<Regex> Alts);

public:
  Factory();

  Regex voidRe() const { return VoidRe_; }
  Regex epsRe() const { return EpsRe_; }
  Regex bit(bool B) const { return BitRe_[B]; }
  Regex any() const { return AnyRe_; }

  /// Smart concatenation (performs the Void/Eps reductions and
  /// right-nests).
  Regex cat(Regex A, Regex B);

  /// Smart alternation (flattens, drops Void, dedups, sorts).
  Regex alt(Regex A, Regex B);
  Regex altN(std::vector<Regex> Rs);

  /// Smart star.
  Regex star(Regex A);

  //===--------------------------------------------------------------------===//
  // Convenience constructors for the bit patterns the decoder grammars use.
  //===--------------------------------------------------------------------===//

  /// A literal bit string such as "1110"; bits are consumed most
  /// significant first within a byte.
  Regex bits(std::string_view Pattern);

  /// Exactly \p N arbitrary bits.
  Regex anyBits(unsigned N);

  /// A full literal byte, MSB-first.
  Regex byteLit(uint8_t Byte);

  /// Any single byte (8 arbitrary bits).
  Regex anyByte();

  /// Concatenation of a sequence.
  Regex seq(std::initializer_list<Regex> Rs);

  //===--------------------------------------------------------------------===//
  // Analyses.
  //===--------------------------------------------------------------------===//

  /// Does \p A accept the empty string?
  bool nullable(Regex A);

  /// Brzozowski derivative with respect to one bit.
  Regex deriv(Regex A, bool Bit);

  /// Derivative with respect to the 8 bits of \p Byte, MSB-first.
  /// Memoized per (node, byte), so repeated byte-level queries (DFA
  /// rebuilds, equivalence walks, audits over the same factory) resolve
  /// in one hash lookup instead of eight bit derivatives.
  Regex derivByte(Regex A, uint8_t Byte);

  //===--------------------------------------------------------------------===//
  // Strip cache (used by gram::Grammar<T>::strip).
  //===--------------------------------------------------------------------===//

  /// Stripped-regex lookup for a (type-erased) grammar node previously
  /// stored with stripCacheStore. Returns nullptr when absent.
  Regex stripCacheLookup(const void *Key) const {
    auto It = StripCache.find(Key);
    return It == StripCache.end() ? nullptr : It->second.second;
  }

  /// Records the stripped form of a grammar node. \p Owner must own the
  /// storage \p Key points at; it is retained so the address stays valid
  /// (and unique) for the life of this factory.
  void stripCacheStore(const void *Key, std::shared_ptr<const void> Owner,
                       Regex R) {
    StripCache.emplace(Key, std::make_pair(std::move(Owner), R));
  }

  /// The generalized derivative of section 4.1: the set of suffixes s2
  /// such that some s1 in \p By has s1++s2 in \p A. Defined only when
  /// \p By is star-free; returns std::nullopt otherwise.
  std::optional<Regex> derivRe(Regex A, Regex By);

  /// True iff no string of \p B is a prefix of (or equal to) a string of
  /// \p A and vice versa. This is the unambiguity obligation the paper
  /// discharges at each Alt node. Requires both star-free.
  std::optional<bool> prefixDisjoint(Regex A, Regex B);

  /// Recursively verifies that every Alt node inside \p A has pairwise
  /// prefix-disjoint children. On failure returns the pair of child
  /// indices of the offending Alt (found during a preorder walk).
  struct AmbiguityReport {
    bool Unambiguous;
    std::string Detail; // empty when unambiguous
  };
  AmbiguityReport checkUnambiguous(Regex A);

  /// Renders the regex for diagnostics.
  static std::string print(Regex A);

  /// Samples a random member of [[A]] by walking derivatives: at each
  /// step, a random non-Void branch is taken; at nullable states the walk
  /// stops with probability \p StopNum/StopDen (always stopping once
  /// \p MaxBits is reached, and always continuing while not nullable).
  /// Returns std::nullopt if the walk gets stuck (empty language) or
  /// exceeds MaxBits without acceptance. This powers the paper's
  /// generative fuzzing (section 2.5): sampling the instruction grammars
  /// yields byte sequences for exactly the encodings they specify.
  std::optional<std::vector<bool>> sampleBits(Regex A, uint64_t &RngState,
                                              unsigned MaxBits = 160,
                                              unsigned StopNum = 1,
                                              unsigned StopDen = 2);

  /// sampleBits packed MSB-first into bytes; fails (nullopt) unless the
  /// sampled string is byte-aligned, as instruction encodings are.
  std::optional<std::vector<uint8_t>> sampleBytes(Regex A,
                                                  uint64_t &RngState,
                                                  unsigned MaxBytes = 20);

  size_t numNodes() const { return Arena.size(); }
};

} // namespace re
} // namespace rocksalt

#endif // ROCKSALT_REGEX_REGEX_H
