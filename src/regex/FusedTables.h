//===- regex/FusedTables.h - Fused cache-resident DFA tables ---*- C++ -*-===//
///
/// \file
/// Flattens a family of small DFAs (the three policy tables: 42 + 8 + 25
/// = 75 states) into ONE contiguous, cache-resident transition array
/// with 8-bit state ids. The verifier's per-byte inner loop then walks a
/// single 256-byte row per state instead of chasing a
/// `vector<array<uint16_t,256>>` per table: the whole fused transition
/// array is 75 x 256 = 18.75 KiB — it fits in L1 — where the legacy
/// layout spends 37.5 KiB across three separately-allocated vectors.
///
/// The fusion is a *renumbering plus layout* change only. Every sub-DFA
/// keeps its own start state and its exact transition/accept/reject
/// structure under the id map (`id(sub, local)`); a fused match from
/// sub-DFA k's start is certified bit-identical to `core::dfaMatch`
/// over the source table (tests/fused_tables_test.cpp and the fuzz
/// harness's fused-vs-legacy differential).
///
/// Four precomputed acceleration structures ride on the fused form,
/// all exact (never heuristic):
///
///  * **class-ordered ids**: fused states are numbered continue states
///    first, then accepting states, then rejecting states, so the
///    per-byte accept/reject test is a register compare against
///    `AcceptBase`/`RejectBase` instead of a second dependent load from
///    a flags array — the inner loop's serial chain is exactly one L1
///    load per byte;
///
///  * **restart rows**: no matcher ever steps OUT of an accept or
///    reject state (dfaMatch and fusedMatch both return the moment they
///    land in one), so accepting states' rows are semantically dead —
///    each is rewritten into a copy of its sub-DFA's start row. A
///    streaming scanner (the verifier's NoControlFlow sweep) then walks
///    straight through instruction boundaries: the load from an accept
///    state's row IS the restart, with no select or branch on the
///    loop-carried path. Reject rows keep their source mirror;
///
///  * per-state **constant-payload skip chains** (`SkipLen`/`SkipNext`):
///    a state whose 256 row entries all name the same successor is
///    "row-constant" — it consumes one byte without looking at it
///    (immediate/displacement payload bytes compile to exactly such
///    states). A maximal chain of row-constant pure-continue states is
///    collapsed offline, so matching an instruction with an imm32
///    payload steps the chain once instead of walking four rows;
///
///  * callers (core/Verifier.h) derive per-byte chain classes from the
///    start-state rows — see `core::FusedPolicy`'s safe-byte class.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_REGEX_FUSEDTABLES_H
#define ROCKSALT_REGEX_FUSEDTABLES_H

#include "regex/Dfa.h"

#include <cstdint>
#include <vector>

namespace rocksalt {
namespace re {

/// Fused per-state flags (mirrors Dfa::Accepts / Dfa::Rejects).
constexpr uint8_t FusedAccept = 1;
constexpr uint8_t FusedReject = 2;

/// The hard ceiling on fused states: ids live in uint8_t cells.
constexpr uint32_t MaxFusedStates = 256;

/// A family of DFAs flattened into one transition array. State ids are
/// globally renumbered by behavioral class — ids in [0, AcceptBase) are
/// continue states, [AcceptBase, RejectBase) accepting, and
/// [RejectBase, NumStates) rejecting (a state carrying both source
/// flags classifies as rejecting, matching dfaMatch's reject-first
/// check order). Sub-DFA k's local state s maps to fused id
/// `Ids[Offsets[k] + s]`.
struct FusedTables {
  /// Row-major transitions: Trans[state * 256 + byte] -> next fused id.
  /// Continue and reject rows mirror the source tables under the id
  /// map; each ACCEPT state's row is a copy of its sub-DFA's start row
  /// (the "restart row" — its source row is unreachable by any matcher,
  /// which return on accept before ever stepping again).
  std::vector<uint8_t> Trans;
  /// FusedAccept / FusedReject bits per fused state — the raw source
  /// mirror, kept for derivations and validation; the hot path uses the
  /// id ranges instead.
  std::vector<uint8_t> Flags;
  /// Constant-payload skip chains: SkipLen[s] > 0 means states
  /// s, C(s), ..., C^(SkipLen-1)(s) are all row-constant, the
  /// intermediates (after s) are pure-continue, and consuming
  /// SkipLen[s] bytes from s lands on SkipNext[s] regardless of the
  /// bytes' values. 0 means "step normally". Only continue states
  /// carry chains (the matcher never consults them elsewhere).
  std::vector<uint8_t> SkipLen;
  std::vector<uint8_t> SkipNext;
  /// Fused start id of each source DFA, in fusion order.
  std::vector<uint8_t> Starts;
  /// Index of sub-DFA k's block within Ids: fused id of local state s
  /// is Ids[Offsets[k] + s].
  std::vector<uint32_t> Offsets;
  /// Local-to-fused id map, all sub-DFAs concatenated in fusion order.
  std::vector<uint8_t> Ids;
  /// First accepting id / first rejecting id (class boundaries).
  uint32_t AcceptBase = 0;
  uint32_t RejectBase = 0;
  uint32_t NumStates = 0;

  uint8_t id(unsigned Sub, uint32_t Local) const {
    return Ids[Offsets[Sub] + Local];
  }
  uint8_t step(uint8_t State, uint8_t Byte) const {
    return Trans[(uint32_t(State) << 8) | Byte];
  }
  /// Behavioral accept: true iff dfaMatch would return success in this
  /// state (accepting and not rejecting — reject wins ties).
  bool accepts(uint8_t State) const {
    return State >= AcceptBase && State < RejectBase;
  }
  bool rejects(uint8_t State) const { return State >= RejectBase; }
};

/// Fuses \p Dfas (in order) into one flat table. Validates that every
/// transition target is in range and that the combined state count fits
/// 8-bit ids; throws std::length_error / std::invalid_argument
/// otherwise. Deterministic: identical inputs produce identical arrays.
FusedTables fuseDfas(const std::vector<const Dfa *> &Dfas);

/// Figure-6 `dfaMatch` over the fused layout, from sub-DFA \p Sub's
/// start: executes transitions over Code[*Pos..Size); on an accept
/// advances *Pos past the shortest accepted prefix and returns true; on
/// a reject state or exhaustion leaves *Pos unchanged and returns
/// false. Bit-identical decisions to core::dfaMatch on the source
/// table. The serial dependence per byte is the single Trans load —
/// accept/reject resolve by comparing the id against the class bases —
/// and constant-payload chains are skipped in one step when the
/// remaining input covers them (an exact transform: the skipped states
/// are pure-continue and byte-independent).
inline bool fusedMatch(const FusedTables &F, unsigned Sub,
                       const uint8_t *Code, uint32_t *Pos, uint32_t Size) {
  const uint8_t *Tr = F.Trans.data();
  const uint8_t *SkL = F.SkipLen.data();
  const uint8_t *SkN = F.SkipNext.data();
  const uint32_t AB = F.AcceptBase, RB = F.RejectBase;
  uint32_t S = F.Starts[Sub];
  uint32_t P = *Pos;
  uint32_t Off = 0;

  while (P + Off < Size) {
    S = Tr[(S << 8) | Code[P + Off]];
    ++Off;
    if (S >= AB) {
      if (S >= RB)
        return false;
      *Pos = P + Off;
      return true;
    }
    uint32_t K = SkL[S];
    if (K && uint64_t(P) + Off + K <= Size) {
      Off += K;
      S = SkN[S];
      if (S >= AB) {
        if (S >= RB)
          return false;
        *Pos = P + Off;
        return true;
      }
    }
  }
  return false;
}

} // namespace re
} // namespace rocksalt

#endif // ROCKSALT_REGEX_FUSEDTABLES_H
