//===- regex/Algebra.cpp - DFA algebra over checker tables ----------------===//

#include "regex/Algebra.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <queue>
#include <stdexcept>
#include <unordered_map>

using namespace rocksalt;
using namespace rocksalt::re;

namespace {

bool applyOp(SetOp Op, bool A, bool B) {
  switch (Op) {
  case SetOp::Union:
    return A || B;
  case SetOp::Intersect:
    return A && B;
  case SetOp::Difference:
    return A && !B;
  case SetOp::SymmetricDiff:
    return A != B;
  }
  return false;
}

/// Flat inverse transition relation: for each symbol c, the list of
/// sources s with Table[s][c] == t, grouped by target t (counting sort).
/// Off[c * (N + 1) + t] .. Off[c * (N + 1) + t + 1] indexes into Lst.
struct InverseEdges {
  uint32_t N = 0;
  std::vector<uint32_t> Off; // 256 * (N + 1)
  std::vector<uint32_t> Lst; // 256 * N

  explicit InverseEdges(const Dfa &D) : N(static_cast<uint32_t>(D.numStates())) {
    Off.assign(size_t(256) * (N + 1), 0);
    Lst.assign(size_t(256) * N, 0);
    for (unsigned C = 0; C < 256; ++C) {
      uint32_t *O = &Off[size_t(C) * (N + 1)];
      for (uint32_t S = 0; S < N; ++S)
        O[D.Table[S][C] + 1]++;
      for (uint32_t T = 0; T < N; ++T)
        O[T + 1] += O[T];
      uint32_t *L = &Lst[size_t(C) * N];
      std::vector<uint32_t> Fill(O, O + N);
      for (uint32_t S = 0; S < N; ++S)
        L[Fill[D.Table[S][C]]++] = S;
    }
  }

  /// Sources reaching \p T under symbol \p C.
  std::pair<const uint32_t *, const uint32_t *> pre(unsigned C,
                                                    uint32_t T) const {
    const uint32_t *O = &Off[size_t(C) * (N + 1)];
    const uint32_t *L = &Lst[size_t(C) * N];
    return {L + O[T], L + O[T + 1]};
  }
};

/// Shared BFS-with-parents used by every witness extractor: returns the
/// byte string labeling the shortest path from Start to the first state
/// satisfying \p Accepting (bytes tried in ascending order, so the
/// result is also lexicographically least among shortest).
template <typename Pred>
std::optional<std::vector<uint8_t>> shortestTo(const Dfa &D, Pred Accepting) {
  if (D.numStates() == 0)
    return std::nullopt;
  uint32_t N = static_cast<uint32_t>(D.numStates());
  std::vector<uint8_t> Seen(N, 0);
  std::vector<std::pair<uint32_t, uint8_t>> Parent(N, {0, 0});
  std::deque<uint32_t> Queue;

  Seen[D.Start] = 1;
  if (Accepting(D.Start))
    return std::vector<uint8_t>{};
  Queue.push_back(D.Start);
  while (!Queue.empty()) {
    uint32_t S = Queue.front();
    Queue.pop_front();
    for (unsigned C = 0; C < 256; ++C) {
      uint32_t T = D.Table[S][C];
      if (Seen[T])
        continue;
      Seen[T] = 1;
      Parent[T] = {S, static_cast<uint8_t>(C)};
      if (Accepting(T)) {
        // Parent chains are acyclic (assigned on first visit) and end at
        // Start, which is never re-entered as a newly seen state.
        std::vector<uint8_t> Out;
        for (uint32_t Cur = T; Cur != D.Start; Cur = Parent[Cur].first)
          Out.push_back(Parent[Cur].second);
        std::reverse(Out.begin(), Out.end());
        return Out;
      }
      Queue.push_back(T);
    }
  }
  return std::nullopt;
}

} // namespace

std::vector<uint8_t> re::reachableMask(const Dfa &D) {
  std::vector<uint8_t> Seen(D.numStates(), 0);
  if (D.numStates() == 0)
    return Seen;
  std::deque<uint32_t> Queue{D.Start};
  Seen[D.Start] = 1;
  while (!Queue.empty()) {
    uint32_t S = Queue.front();
    Queue.pop_front();
    for (unsigned C = 0; C < 256; ++C) {
      uint32_t T = D.Table[S][C];
      if (!Seen[T]) {
        Seen[T] = 1;
        Queue.push_back(T);
      }
    }
  }
  return Seen;
}

std::vector<uint8_t> re::liveMask(const Dfa &D) {
  uint32_t N = static_cast<uint32_t>(D.numStates());
  std::vector<uint8_t> Live(N, 0);
  if (!N)
    return Live;
  InverseEdges Inv(D);
  std::deque<uint32_t> Queue;
  for (uint32_t S = 0; S < N; ++S)
    if (D.Accepts[S]) {
      Live[S] = 1;
      Queue.push_back(S);
    }
  while (!Queue.empty()) {
    uint32_t T = Queue.front();
    Queue.pop_front();
    for (unsigned C = 0; C < 256; ++C) {
      auto [B, E] = Inv.pre(C, T);
      for (const uint32_t *P = B; P != E; ++P)
        if (!Live[*P]) {
          Live[*P] = 1;
          Queue.push_back(*P);
        }
    }
  }
  return Live;
}

Dfa re::productDfa(const Dfa &A, const Dfa &B, SetOp Op) {
  Dfa Out;
  if (A.numStates() == 0 || B.numStates() == 0)
    throw std::invalid_argument("productDfa: empty operand table");

  std::unordered_map<uint64_t, uint32_t> StateOf;
  std::deque<uint64_t> Worklist;

  auto Key = [](uint32_t SA, uint32_t SB) {
    return (uint64_t(SA) << 32) | SB;
  };
  auto StateFor = [&](uint32_t SA, uint32_t SB) -> uint32_t {
    uint64_t K = Key(SA, SB);
    auto It = StateOf.find(K);
    if (It != StateOf.end())
      return It->second;
    if (StateOf.size() >= MaxDfaStates)
      throw std::length_error(
          "productDfa: reachable product exceeds the 16-bit state id range");
    uint32_t Id = static_cast<uint32_t>(StateOf.size());
    StateOf.emplace(K, Id);
    Out.Table.emplace_back();
    Out.Accepts.push_back(applyOp(Op, A.Accepts[SA], B.Accepts[SB]));
    Out.Rejects.push_back(0); // recomputed exactly below
    Worklist.push_back(K);
    return Id;
  };

  Out.Start = StateFor(A.Start, B.Start);
  while (!Worklist.empty()) {
    uint64_t K = Worklist.front();
    Worklist.pop_front();
    uint32_t SA = static_cast<uint32_t>(K >> 32);
    uint32_t SB = static_cast<uint32_t>(K & 0xFFFFFFFFu);
    uint32_t Id = StateOf.at(K);
    for (unsigned C = 0; C < 256; ++C)
      Out.Table[Id][C] = static_cast<uint16_t>(
          StateFor(A.Table[SA][C], B.Table[SB][C]));
  }

  std::vector<uint8_t> Live = liveMask(Out);
  for (size_t S = 0; S < Out.numStates(); ++S)
    Out.Rejects[S] = !Live[S];
  return Out;
}

std::optional<std::vector<uint8_t>> re::shortestAccepted(const Dfa &D) {
  return shortestTo(D, [&D](uint32_t S) { return D.Accepts[S] != 0; });
}

std::vector<std::vector<uint8_t>> re::kShortestAccepted(const Dfa &D,
                                                        unsigned K) {
  std::vector<std::vector<uint8_t>> Out;
  if (K == 0 || D.numStates() == 0)
    return Out;
  uint32_t N = static_cast<uint32_t>(D.numStates());

  // Best-first enumeration of prefixes: a heap entry is (string, state
  // the string drives the DFA to), ordered by length then bytes. The
  // DFA is deterministic, so string -> walk is a bijection and every
  // string is generated at most once (by extending its unique proper
  // prefix); popping in (length, lex) order therefore yields exactly
  // the k shortest members, distinct and ordered. Standard k-shortest-
  // walks bound: each state needs at most K pops, so the frontier stays
  // O(K * N * 256) even on cyclic (infinite-language) DFAs; pruning to
  // live states makes the heap drain on finite languages instead of
  // wandering dead regions forever.
  struct Entry {
    std::vector<uint8_t> Str;
    uint32_t State;
  };
  auto Later = [](const Entry &A, const Entry &B) {
    if (A.Str.size() != B.Str.size())
      return A.Str.size() > B.Str.size();
    return A.Str > B.Str; // max-heap: "worse" = lexicographically larger
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(Later)> Heap(Later);
  std::vector<uint8_t> Live = liveMask(D);
  std::vector<uint32_t> Pops(N, 0);

  if (Live[D.Start])
    Heap.push({{}, D.Start});
  while (!Heap.empty() && Out.size() < K) {
    Entry E = Heap.top();
    Heap.pop();
    if (Pops[E.State]++ >= K)
      continue;
    if (D.Accepts[E.State])
      Out.push_back(E.Str);
    for (unsigned C = 0; C < 256; ++C) {
      uint32_t T = D.Table[E.State][C];
      if (!Live[T] || Pops[T] >= K)
        continue;
      Entry Next{E.Str, T};
      Next.Str.push_back(static_cast<uint8_t>(C));
      Heap.push(std::move(Next));
    }
  }
  return Out;
}

bool re::languageEmpty(const Dfa &D) { return !shortestAccepted(D); }

std::optional<std::vector<uint8_t>> re::intersectionWitness(const Dfa &A,
                                                            const Dfa &B) {
  return shortestAccepted(productDfa(A, B, SetOp::Intersect));
}

std::optional<std::vector<uint8_t>> re::inclusionWitness(const Dfa &A,
                                                         const Dfa &B) {
  return shortestAccepted(productDfa(A, B, SetOp::Difference));
}

std::optional<std::vector<uint8_t>> re::equivalenceWitness(const Dfa &A,
                                                           const Dfa &B) {
  return shortestAccepted(productDfa(A, B, SetOp::SymmetricDiff));
}

Dfa re::minimizeDfa(const Dfa &D) {
  if (D.numStates() == 0)
    return D;

  //===------------------------------------------------------------------===//
  // 1. Restrict to reachable states, renumbered in BFS order (start = 0).
  //===------------------------------------------------------------------===//
  uint32_t N0 = static_cast<uint32_t>(D.numStates());
  std::vector<uint32_t> Old2New(N0, UINT32_MAX);
  std::vector<uint32_t> New2Old;
  {
    std::deque<uint32_t> Queue{D.Start};
    Old2New[D.Start] = 0;
    New2Old.push_back(D.Start);
    while (!Queue.empty()) {
      uint32_t S = Queue.front();
      Queue.pop_front();
      for (unsigned C = 0; C < 256; ++C) {
        uint32_t T = D.Table[S][C];
        if (Old2New[T] == UINT32_MAX) {
          Old2New[T] = static_cast<uint32_t>(New2Old.size());
          New2Old.push_back(T);
          Queue.push_back(T);
        }
      }
    }
  }
  uint32_t N = static_cast<uint32_t>(New2Old.size());

  Dfa R; // reachable-restricted copy, still unminimized
  R.Start = 0;
  R.Table.resize(N);
  R.Accepts.resize(N);
  R.Rejects.resize(N, 0);
  for (uint32_t S = 0; S < N; ++S) {
    uint32_t Old = New2Old[S];
    R.Accepts[S] = D.Accepts[Old];
    for (unsigned C = 0; C < 256; ++C)
      R.Table[S][C] = static_cast<uint16_t>(Old2New[D.Table[Old][C]]);
  }

  //===------------------------------------------------------------------===//
  // 2. Hopcroft partition refinement. Initial partition: accepting vs
  //    non-accepting; worklist seeded with the smaller side.
  //===------------------------------------------------------------------===//
  std::vector<uint32_t> Elems(N), Loc(N), BlockOf(N);
  std::vector<uint32_t> Begin, End;

  {
    uint32_t NumAcc = 0;
    for (uint32_t S = 0; S < N; ++S)
      NumAcc += R.Accepts[S] ? 1 : 0;
    uint32_t AccAt = 0, NonAt = NumAcc; // accepting first, then the rest
    for (uint32_t S = 0; S < N; ++S) {
      uint32_t Pos = R.Accepts[S] ? AccAt++ : NonAt++;
      Elems[Pos] = S;
      Loc[S] = Pos;
    }
    if (NumAcc == 0 || NumAcc == N) {
      Begin = {0};
      End = {N};
      for (uint32_t S = 0; S < N; ++S)
        BlockOf[S] = 0;
    } else {
      Begin = {0, NumAcc};
      End = {NumAcc, N};
      for (uint32_t S = 0; S < N; ++S)
        BlockOf[S] = R.Accepts[S] ? 0 : 1;
    }
  }

  InverseEdges Inv(R);
  std::vector<std::pair<uint32_t, uint8_t>> W;
  std::vector<uint8_t> InW(size_t(Begin.size()) * 256, 0);
  auto PushW = [&](uint32_t B, unsigned C) {
    if (InW[size_t(B) * 256 + C])
      return;
    InW[size_t(B) * 256 + C] = 1;
    W.emplace_back(B, static_cast<uint8_t>(C));
  };
  if (Begin.size() == 2) {
    uint32_t Smaller =
        (End[0] - Begin[0]) <= (End[1] - Begin[1]) ? 0 : 1;
    for (unsigned C = 0; C < 256; ++C)
      PushW(Smaller, C);
  }

  std::vector<uint32_t> X;        // predecessors of the splitter
  std::vector<uint32_t> Touched;  // blocks intersecting X this round
  std::vector<uint32_t> Mark(Begin.size(), 0);

  while (!W.empty()) {
    auto [SB, C] = W.back();
    W.pop_back();
    InW[size_t(SB) * 256 + C] = 0;

    X.clear();
    for (uint32_t I = Begin[SB]; I < End[SB]; ++I) {
      auto [PB, PE] = Inv.pre(C, Elems[I]);
      X.insert(X.end(), PB, PE);
    }

    Touched.clear();
    for (uint32_t S : X) {
      uint32_t B = BlockOf[S];
      if (Mark[B] == 0)
        Touched.push_back(B);
      uint32_t Dest = Begin[B] + Mark[B];
      uint32_t Pos = Loc[S];
      uint32_t Other = Elems[Dest];
      Elems[Dest] = S;
      Elems[Pos] = Other;
      Loc[S] = Dest;
      Loc[Other] = Pos;
      Mark[B]++;
    }

    for (uint32_t B : Touched) {
      uint32_t M = Mark[B];
      Mark[B] = 0;
      if (M == End[B] - Begin[B])
        continue; // whole block marked: no split
      uint32_t NB = static_cast<uint32_t>(Begin.size());
      Begin.push_back(Begin[B]);
      End.push_back(Begin[B] + M);
      Begin[B] += M;
      for (uint32_t I = Begin[NB]; I < End[NB]; ++I)
        BlockOf[Elems[I]] = NB;
      InW.resize(size_t(Begin.size()) * 256, 0);
      Mark.push_back(0);
      uint32_t SizeNB = End[NB] - Begin[NB];
      uint32_t SizeB = End[B] - Begin[B];
      for (unsigned D2 = 0; D2 < 256; ++D2) {
        if (InW[size_t(B) * 256 + D2])
          PushW(NB, D2); // (B, D2) stays queued for the shrunk half
        else
          PushW(SizeNB <= SizeB ? NB : B, D2);
      }
    }
  }

  //===------------------------------------------------------------------===//
  // 3. Quotient automaton, canonically renumbered by BFS from the start
  //    block; Rejects recomputed exactly from liveness.
  //===------------------------------------------------------------------===//
  uint32_t NumBlocks = static_cast<uint32_t>(Begin.size());
  std::vector<uint32_t> BlockRank(NumBlocks, UINT32_MAX);
  std::vector<uint32_t> RankBlock;
  {
    std::deque<uint32_t> Queue{BlockOf[0]};
    BlockRank[BlockOf[0]] = 0;
    RankBlock.push_back(BlockOf[0]);
    while (!Queue.empty()) {
      uint32_t B = Queue.front();
      Queue.pop_front();
      uint32_t Rep = Elems[Begin[B]];
      for (unsigned C = 0; C < 256; ++C) {
        uint32_t TB = BlockOf[R.Table[Rep][C]];
        if (BlockRank[TB] == UINT32_MAX) {
          BlockRank[TB] = static_cast<uint32_t>(RankBlock.size());
          RankBlock.push_back(TB);
          Queue.push_back(TB);
        }
      }
    }
  }

  Dfa Out;
  Out.Start = 0;
  Out.Table.resize(RankBlock.size());
  Out.Accepts.resize(RankBlock.size());
  Out.Rejects.resize(RankBlock.size(), 0);
  for (uint32_t Rank = 0; Rank < RankBlock.size(); ++Rank) {
    uint32_t B = RankBlock[Rank];
    uint32_t Rep = Elems[Begin[B]];
    Out.Accepts[Rank] = R.Accepts[Rep];
    for (unsigned C = 0; C < 256; ++C)
      Out.Table[Rank][C] =
          static_cast<uint16_t>(BlockRank[BlockOf[R.Table[Rep][C]]]);
  }
  std::vector<uint8_t> Live = liveMask(Out);
  for (size_t S = 0; S < Out.numStates(); ++S)
    Out.Rejects[S] = !Live[S];
  return Out;
}

DfaHealth re::auditDfa(const Dfa &D) {
  DfaHealth H;
  H.NumStates = static_cast<uint32_t>(D.numStates());
  if (!H.NumStates)
    return H;
  std::vector<uint8_t> Reach = reachableMask(D);
  std::vector<uint8_t> Live = liveMask(D);
  for (uint32_t S = 0; S < H.NumStates; ++S) {
    if (D.Accepts[S])
      H.NumAccepting++;
    if (!Live[S])
      H.NumDead++;
    if (!Reach[S])
      H.Unreachable++;
    if (!Live[S] && !D.Rejects[S])
      H.DeadUnflagged++;
    if (Live[S] && D.Rejects[S])
      H.LiveFlaggedReject++;
    if (D.Accepts[S] && D.Rejects[S])
      H.AcceptRejectOverlap++;
    if (D.Rejects[S]) {
      for (unsigned C = 0; C < 256; ++C)
        if (!D.Rejects[D.Table[S][C]]) {
          H.RejectEscapes++;
          break;
        }
    }
  }
  return H;
}
