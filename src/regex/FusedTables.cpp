//===- regex/FusedTables.cpp - Fused cache-resident DFA tables ------------===//
//
// Offline construction of the fused layout: classify every source state
// (continue / accepting / rejecting, reject winning ties to match
// dfaMatch's check order), assign class-ordered 8-bit ids, rewrite the
// rows under the id map, mirror the accept/reject flags, then derive
// the constant-payload skip chains by following row-constant
// pure-continue states to their first "interesting" successor.
// Everything here is table preprocessing — the verify-time code is the
// header-inline fusedMatch.
//
//===----------------------------------------------------------------------===//

#include "regex/FusedTables.h"

#include <stdexcept>

using namespace rocksalt;
using namespace rocksalt::re;

FusedTables re::fuseDfas(const std::vector<const Dfa *> &Dfas) {
  FusedTables F;

  uint32_t Total = 0;
  for (const Dfa *D : Dfas) {
    if (!D)
      throw std::invalid_argument("fuseDfas: null DFA");
    Total += uint32_t(D->numStates());
  }
  if (Total == 0)
    throw std::invalid_argument("fuseDfas: no states to fuse");
  if (Total > MaxFusedStates)
    throw std::length_error(
        "fuseDfas: combined state count does not fit 8-bit fused ids");

  // Pass 1: class census. Rejecting states classify as rejecting even
  // when the source also marks them accepting — dfaMatch checks reject
  // first, so that is the behavioral class.
  uint32_t NumContinue = 0, NumAccept = 0;
  for (const Dfa *D : Dfas) {
    uint32_t N = uint32_t(D->numStates());
    for (uint32_t S = 0; S < N; ++S) {
      if (D->Rejects[S])
        continue;
      if (D->Accepts[S])
        ++NumAccept;
      else
        ++NumContinue;
    }
  }
  F.AcceptBase = NumContinue;
  F.RejectBase = NumContinue + NumAccept;
  F.NumStates = Total;

  // Pass 2: assign class-ordered ids, in fusion order within a class.
  F.Ids.assign(Total, 0);
  uint32_t NextContinue = 0, NextAccept = F.AcceptBase,
           NextReject = F.RejectBase;
  uint32_t Base = 0;
  for (const Dfa *D : Dfas) {
    uint32_t N = uint32_t(D->numStates());
    F.Offsets.push_back(Base);
    if (D->Start >= N)
      throw std::invalid_argument("fuseDfas: start state out of range");
    for (uint32_t S = 0; S < N; ++S) {
      uint32_t Fid = D->Rejects[S]   ? NextReject++
                     : D->Accepts[S] ? NextAccept++
                                     : NextContinue++;
      F.Ids[Base + S] = uint8_t(Fid);
    }
    F.Starts.push_back(F.Ids[Base + D->Start]);
    Base += N;
  }

  // Pass 3: rewrite rows and mirror flags under the id map.
  F.Trans.assign(size_t(Total) * 256, 0);
  F.Flags.assign(Total, 0);
  F.SkipLen.assign(Total, 0);
  F.SkipNext.assign(Total, 0);
  Base = 0;
  for (const Dfa *D : Dfas) {
    uint32_t N = uint32_t(D->numStates());
    for (uint32_t S = 0; S < N; ++S) {
      uint8_t Fid = F.Ids[Base + S];
      uint8_t *Row = &F.Trans[size_t(Fid) * 256];
      for (uint32_t B = 0; B < 256; ++B) {
        uint16_t T = D->Table[S][B];
        if (T >= N)
          throw std::invalid_argument(
              "fuseDfas: transition target out of range");
        Row[B] = F.Ids[Base + T];
      }
      F.Flags[Fid] = uint8_t((D->Accepts[S] ? FusedAccept : 0) |
                             (D->Rejects[S] ? FusedReject : 0));
    }
    Base += N;
  }

  // Pass 4: restart rows. Neither matcher ever steps OUT of an accept
  // or reject state (dfaMatch and fusedMatch return at both), so those
  // rows are semantically dead — and the verifier's branchless sweep
  // exploits that: each accepting state's row becomes a copy of its
  // sub-DFA's start row, so walking straight through an instruction
  // boundary IS the restart, with no reset on the serial path. Reject
  // rows keep their (unused) source mirror.
  Base = 0;
  for (const Dfa *D : Dfas) {
    uint32_t N = uint32_t(D->numStates());
    uint8_t StartFid = F.Ids[Base + D->Start];
    for (uint32_t S = 0; S < N; ++S) {
      if (!D->Accepts[S] || D->Rejects[S])
        continue;
      uint8_t Fid = F.Ids[Base + S];
      if (Fid == StartFid)
        continue;
      const uint8_t *StartRow = &F.Trans[size_t(StartFid) * 256];
      std::copy(StartRow, StartRow + 256, &F.Trans[size_t(Fid) * 256]);
    }
    Base += N;
  }

  // Constant-payload skip chains, over pure-continue states only (the
  // matcher resolves accept/reject before ever consulting a chain).
  // RowConst[s] = the unique successor when every byte agrees, else the
  // sentinel Total.
  std::vector<uint32_t> RowConst(Total, Total);
  for (uint32_t S = 0; S < F.AcceptBase; ++S) {
    const uint8_t *Row = &F.Trans[size_t(S) * 256];
    uint8_t T0 = Row[0];
    bool Const = true;
    for (uint32_t B = 1; B < 256; ++B)
      if (Row[B] != T0) {
        Const = false;
        break;
      }
    if (Const)
      RowConst[S] = T0;
  }
  for (uint32_t S = 0; S < F.AcceptBase; ++S) {
    if (RowConst[S] == Total)
      continue;
    // From a row-constant state, extend the chain while the landing
    // state is itself row-constant AND pure-continue (an accept/reject
    // landing must be observed by the matcher, so the chain stops just
    // before stepping past it). The 255 cap both fits the uint8_t
    // fields and bounds row-constant cycles (a liveness-trimmed DFA has
    // none, but the fused form must not rely on that).
    uint32_t K = 1;
    uint32_t Land = RowConst[S];
    while (K < 255 && Land < F.AcceptBase && RowConst[Land] != Total) {
      Land = RowConst[Land];
      ++K;
    }
    F.SkipLen[S] = uint8_t(K);
    F.SkipNext[S] = uint8_t(Land);
  }

  return F;
}
