//===- regex/TableIO.cpp --------------------------------------*- C++ -*-===//

#include "regex/TableIO.h"

#include "support/Sha256.h"

#include <cstring>
#include <stdexcept>

using namespace rocksalt;
using namespace rocksalt::re;

namespace {

constexpr char Magic[4] = {'R', 'S', 'T', 'B'};
constexpr size_t HashOffset = 12;
constexpr size_t PayloadOffset = HashOffset + 32;

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(uint8_t(V));
  Out.push_back(uint8_t(V >> 8));
  Out.push_back(uint8_t(V >> 16));
  Out.push_back(uint8_t(V >> 24));
}

void putU16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back(uint8_t(V));
  Out.push_back(uint8_t(V >> 8));
}

bool validTag(std::string_view Tag) {
  if (Tag.empty() || Tag.size() > MaxTableTagLen)
    return false;
  for (char C : Tag)
    if (!((C >= 'a' && C <= 'z') || (C >= '0' && C <= '9') || C == '_' ||
          C == '-'))
      return false;
  return true;
}

/// Bounds-checked little-endian reader over the blob.
class Reader {
public:
  Reader(const std::vector<uint8_t> &Blob, size_t Pos)
      : Blob(Blob), Pos(Pos) {}

  uint32_t u32() {
    need(4);
    uint32_t V = uint32_t(Blob[Pos]) | (uint32_t(Blob[Pos + 1]) << 8) |
                 (uint32_t(Blob[Pos + 2]) << 16) |
                 (uint32_t(Blob[Pos + 3]) << 24);
    Pos += 4;
    return V;
  }

  uint16_t u16() {
    need(2);
    uint16_t V = uint16_t(Blob[Pos] | (Blob[Pos + 1] << 8));
    Pos += 2;
    return V;
  }

  uint8_t u8() {
    need(1);
    return Blob[Pos++];
  }

  std::string str(size_t Len) {
    need(Len);
    std::string S(reinterpret_cast<const char *>(Blob.data() + Pos), Len);
    Pos += Len;
    return S;
  }

  bool atEnd() const { return Pos == Blob.size(); }

private:
  void need(size_t N) {
    if (Blob.size() - Pos < N)
      throw std::runtime_error("table blob truncated");
  }

  const std::vector<uint8_t> &Blob;
  size_t Pos;
};

/// Reads one identity tag (u32 length + bytes) with the same charset
/// and length discipline the writer enforces.
std::string readTag(Reader &R, const char *What) {
  uint32_t Len = R.u32();
  if (Len == 0 || Len > MaxTableTagLen)
    throw std::runtime_error(std::string("table blob ") + What +
                             " tag has bad length");
  std::string Tag = R.str(Len);
  if (!validTag(Tag))
    throw std::runtime_error(std::string("table blob ") + What +
                             " tag has bad characters");
  return Tag;
}

} // namespace

std::vector<uint8_t> re::serializeTables(
    const std::vector<std::pair<std::string, const Dfa *>> &Tables,
    std::string_view Isa, std::string_view PolicySet) {
  if (!validTag(Isa))
    throw std::runtime_error("bad ISA tag for table serialization");
  if (!validTag(PolicySet))
    throw std::runtime_error("bad policy-set tag for table serialization");

  std::vector<uint8_t> Out;
  Out.insert(Out.end(), Magic, Magic + 4);
  putU32(Out, TableFormatVersion);
  putU32(Out, uint32_t(Tables.size()));
  Out.resize(PayloadOffset); // hash placeholder, filled below

  putU32(Out, uint32_t(Isa.size()));
  Out.insert(Out.end(), Isa.begin(), Isa.end());
  putU32(Out, uint32_t(PolicySet.size()));
  Out.insert(Out.end(), PolicySet.begin(), PolicySet.end());

  for (const auto &[Name, D] : Tables) {
    putU32(Out, uint32_t(Name.size()));
    Out.insert(Out.end(), Name.begin(), Name.end());
    putU32(Out, D->Start);
    putU32(Out, uint32_t(D->numStates()));
    for (const auto &Row : D->Table)
      for (uint16_t Target : Row)
        putU16(Out, Target);
    for (uint8_t A : D->Accepts)
      Out.push_back(A ? 1 : 0);
    for (uint8_t R : D->Rejects)
      Out.push_back(R ? 1 : 0);
  }

  auto Digest = support::Sha256::hash(Out.data() + PayloadOffset,
                                      Out.size() - PayloadOffset);
  std::memcpy(Out.data() + HashOffset, Digest.data(), Digest.size());
  return Out;
}

TableBundle re::deserializeTables(const std::vector<uint8_t> &Blob,
                                  std::string_view ExpectIsa,
                                  std::string_view ExpectPolicySet) {
  if (Blob.size() < PayloadOffset)
    throw std::runtime_error("table blob truncated");
  if (std::memcmp(Blob.data(), Magic, 4) != 0)
    throw std::runtime_error("table blob has bad magic");

  Reader R(Blob, 4);
  TableBundle Bundle;
  Bundle.Version = R.u32();
  if (Bundle.Version != TableFormatVersion && Bundle.Version != TableFormatV1)
    throw std::runtime_error("unsupported table format version");
  uint32_t Count = R.u32();

  std::array<uint8_t, 32> Stored;
  for (auto &B : Stored)
    B = R.u8();
  auto Actual = support::Sha256::hash(Blob.data() + PayloadOffset,
                                      Blob.size() - PayloadOffset);
  if (Stored != Actual)
    throw std::runtime_error("table blob content hash mismatch");
  Bundle.HashHex = support::Sha256::hex(Stored);

  // Identity tags: explicit in v2, implied for legacy v1 blobs (which
  // all predate the multi-ISA registry). Checked before any table
  // payload is read so a wrong-ISA blob is rejected at the header.
  if (Bundle.Version == TableFormatV1) {
    Bundle.Isa = TableV1ImpliedIsa;
    Bundle.PolicySet = TableV1ImpliedPolicySet;
  } else {
    Bundle.Isa = readTag(R, "ISA");
    Bundle.PolicySet = readTag(R, "policy-set");
  }
  if (!ExpectIsa.empty() && Bundle.Isa != ExpectIsa)
    throw std::runtime_error("table blob is tagged for ISA '" + Bundle.Isa +
                             "' but '" + std::string(ExpectIsa) +
                             "' tables were expected");
  if (!ExpectPolicySet.empty() && Bundle.PolicySet != ExpectPolicySet)
    throw std::runtime_error(
        "table blob is tagged for policy set '" + Bundle.PolicySet +
        "' but '" + std::string(ExpectPolicySet) + "' was expected");

  for (uint32_t T = 0; T < Count; ++T) {
    uint32_t NameLen = R.u32();
    std::string Name = R.str(NameLen);
    Dfa D;
    D.Start = R.u32();
    uint32_t NumStates = R.u32();
    if (NumStates > MaxDfaStates)
      throw std::runtime_error("table state count exceeds MaxDfaStates");
    if (D.Start >= NumStates)
      throw std::runtime_error("table start state out of range");
    D.Table.resize(NumStates);
    for (auto &Row : D.Table)
      for (uint16_t &Target : Row) {
        Target = R.u16();
        if (Target >= NumStates)
          throw std::runtime_error("table transition target out of range");
      }
    D.Accepts.resize(NumStates);
    D.Rejects.resize(NumStates);
    for (uint8_t &A : D.Accepts)
      if ((A = R.u8()) > 1)
        throw std::runtime_error("table accept flag is not boolean");
    for (uint8_t &Rej : D.Rejects)
      if ((Rej = R.u8()) > 1)
        throw std::runtime_error("table reject flag is not boolean");
    Bundle.Tables.emplace_back(std::move(Name), std::move(D));
  }

  if (!R.atEnd())
    throw std::runtime_error("table blob has trailing bytes");
  return Bundle;
}

std::string re::blobHashHex(const std::vector<uint8_t> &Blob) {
  if (Blob.size() < PayloadOffset)
    throw std::runtime_error("table blob truncated");
  std::array<uint8_t, 32> Stored;
  std::memcpy(Stored.data(), Blob.data() + HashOffset, 32);
  return support::Sha256::hex(Stored);
}

std::string re::verifyBlobHashHex(const std::vector<uint8_t> &Blob) {
  if (Blob.size() < PayloadOffset)
    throw std::runtime_error("table blob truncated");
  if (std::memcmp(Blob.data(), Magic, 4) != 0)
    throw std::runtime_error("table blob has bad magic");
  Reader R(Blob, 4);
  uint32_t Version = R.u32();
  if (Version != TableFormatVersion && Version != TableFormatV1)
    throw std::runtime_error("unsupported table format version");
  std::array<uint8_t, 32> Stored;
  std::memcpy(Stored.data(), Blob.data() + HashOffset, 32);
  auto Actual = support::Sha256::hash(Blob.data() + PayloadOffset,
                                      Blob.size() - PayloadOffset);
  if (Stored != Actual)
    throw std::runtime_error("table blob content hash mismatch");
  return support::Sha256::hex(Stored);
}
