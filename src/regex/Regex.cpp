//===- regex/Regex.cpp ----------------------------------------*- C++ -*-===//

#include "regex/Regex.h"

#include <algorithm>
#include <cassert>

using namespace rocksalt;
using namespace rocksalt::re;

size_t Factory::NodeKeyHash::operator()(const NodeKey &K) const {
  // FNV-1a over the kind, the bit value, and the child ids. Children are
  // themselves interned, so their ids fully determine their structure.
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    H = (H ^ V) * 0x100000001b3ull;
  };
  Mix(static_cast<uint64_t>(K.K));
  Mix(K.BitVal);
  Mix(K.L ? K.L->id() : ~0ull);
  Mix(K.R ? K.R->id() : ~0ull);
  for (Regex A : K.Alts)
    Mix(A->id());
  return static_cast<size_t>(H);
}

Regex Factory::intern(Kind K, bool BitVal, Regex L, Regex R,
                      std::vector<Regex> Alts) {
  NodeKey Key{K, BitVal, L, R, std::move(Alts)};
  auto It = Interned.find(Key);
  if (It != Interned.end())
    return It->second;

  Arena.emplace_back(Node(K, static_cast<uint32_t>(Arena.size())));
  Node &N = Arena.back();
  N.BitVal = BitVal;
  N.L = L;
  N.R = R;
  N.Alts = Key.Alts; // the key keeps its own copy
  Interned.emplace(std::move(Key), &N);
  return &N;
}

Factory::Factory() {
  VoidRe_ = intern(Kind::Void, false, nullptr, nullptr, {});
  EpsRe_ = intern(Kind::Eps, false, nullptr, nullptr, {});
  BitRe_[0] = intern(Kind::Bit, false, nullptr, nullptr, {});
  BitRe_[1] = intern(Kind::Bit, true, nullptr, nullptr, {});
  AnyRe_ = intern(Kind::Any, false, nullptr, nullptr, {});
}

Regex Factory::cat(Regex A, Regex B) {
  assert(A && B && "null regex");
  if (A == VoidRe_ || B == VoidRe_)
    return VoidRe_;
  if (A == EpsRe_)
    return B;
  if (B == EpsRe_)
    return A;
  // Right-nest so that canonical forms are unique.
  if (A->kind() == Kind::Cat)
    return cat(A->lhs(), cat(A->rhs(), B));
  return intern(Kind::Cat, false, A, B, {});
}

Regex Factory::alt(Regex A, Regex B) { return altN({A, B}); }

Regex Factory::altN(std::vector<Regex> Rs) {
  std::vector<Regex> Leaves;
  Leaves.reserve(Rs.size());
  // Flatten nested Alts and drop Void.
  for (Regex R : Rs) {
    assert(R && "null regex");
    if (R == VoidRe_)
      continue;
    if (R->kind() == Kind::Alt) {
      for (Regex C : R->alternatives())
        Leaves.push_back(C);
      continue;
    }
    Leaves.push_back(R);
  }
  std::sort(Leaves.begin(), Leaves.end(),
            [](Regex X, Regex Y) { return X->id() < Y->id(); });
  Leaves.erase(std::unique(Leaves.begin(), Leaves.end()), Leaves.end());
  if (Leaves.empty())
    return VoidRe_;
  if (Leaves.size() == 1)
    return Leaves.front();
  return intern(Kind::Alt, false, nullptr, nullptr, std::move(Leaves));
}

Regex Factory::star(Regex A) {
  assert(A && "null regex");
  if (A == VoidRe_ || A == EpsRe_)
    return EpsRe_;
  if (A->kind() == Kind::Star)
    return A;
  return intern(Kind::Star, false, A, nullptr, {});
}

Regex Factory::bits(std::string_view Pattern) {
  Regex Out = EpsRe_;
  // Build right-to-left so cat right-nests without re-association.
  for (size_t I = Pattern.size(); I > 0; --I) {
    char C = Pattern[I - 1];
    assert((C == '0' || C == '1') && "bit pattern must be 0s and 1s");
    Out = cat(bit(C == '1'), Out);
  }
  return Out;
}

Regex Factory::anyBits(unsigned N) {
  Regex Out = EpsRe_;
  for (unsigned I = 0; I < N; ++I)
    Out = cat(AnyRe_, Out);
  return Out;
}

Regex Factory::byteLit(uint8_t Byte) {
  Regex Out = EpsRe_;
  for (unsigned I = 0; I < 8; ++I)
    Out = cat(bit((Byte >> I) & 1), Out); // LSB appended last => MSB first
  return Out;
}

Regex Factory::anyByte() { return anyBits(8); }

Regex Factory::seq(std::initializer_list<Regex> Rs) {
  std::vector<Regex> V(Rs);
  Regex Out = EpsRe_;
  for (size_t I = V.size(); I > 0; --I)
    Out = cat(V[I - 1], Out);
  return Out;
}

bool Factory::nullable(Regex A) {
  if (A->NullableCache >= 0)
    return A->NullableCache != 0;
  bool Result = false;
  switch (A->kind()) {
  case Kind::Void:
  case Kind::Bit:
  case Kind::Any:
    Result = false;
    break;
  case Kind::Eps:
  case Kind::Star:
    Result = true;
    break;
  case Kind::Cat:
    Result = nullable(A->lhs()) && nullable(A->rhs());
    break;
  case Kind::Alt:
    for (Regex C : A->alternatives())
      if (nullable(C)) {
        Result = true;
        break;
      }
    break;
  }
  A->NullableCache = Result;
  return Result;
}

Regex Factory::deriv(Regex A, bool Bit) {
  if (Regex Cached = A->DerivCache[Bit])
    return Cached;
  Regex Result = VoidRe_;
  switch (A->kind()) {
  case Kind::Void:
  case Kind::Eps:
    Result = VoidRe_;
    break;
  case Kind::Bit:
    Result = A->bitValue() == Bit ? EpsRe_ : VoidRe_;
    break;
  case Kind::Any:
    Result = EpsRe_;
    break;
  case Kind::Cat: {
    Regex FromL = cat(deriv(A->lhs(), Bit), A->rhs());
    if (nullable(A->lhs()))
      Result = alt(FromL, deriv(A->rhs(), Bit));
    else
      Result = FromL;
    break;
  }
  case Kind::Alt: {
    std::vector<Regex> Ds;
    Ds.reserve(A->alternatives().size());
    for (Regex C : A->alternatives())
      Ds.push_back(deriv(C, Bit));
    Result = altN(std::move(Ds));
    break;
  }
  case Kind::Star:
    Result = cat(deriv(A->body(), Bit), A);
    break;
  }
  A->DerivCache[Bit] = Result;
  return Result;
}

Regex Factory::derivByte(Regex A, uint8_t Byte) {
  uint64_t Key = (uint64_t(A->id()) << 8) | Byte;
  auto It = DerivByteMemo.find(Key);
  if (It != DerivByteMemo.end())
    return It->second;

  // Miss: expand the full byte trie of A in one pass and memoize all 256
  // byte derivatives. The trie shares every bit-prefix, so this costs
  // 2 * 255 bit derivatives instead of the 8 * 256 chained walks of
  // per-byte computation — and the DFA builder, which always asks for
  // all 256 bytes of each state, gets the other 255 answers for free.
  // Each level folds through the canonical smart constructors, so the
  // working nodes stay merged and their per-(node, bit) caches stay
  // shared across states. (Distributing the byte over Alt children
  // instead re-runs the 8-bit chain per child and measures ~10x slower
  // on the shipped grammars.)
  Regex Level[256];
  Level[0] = A;
  for (int Depth = 0; Depth < 8; ++Depth) {
    size_t Width = size_t(1) << Depth;
    for (size_t I = Width; I-- > 0;) {
      Regex N = Level[I];
      Level[2 * I] = deriv(N, 0);
      Level[2 * I + 1] = deriv(N, 1);
    }
  }
  for (unsigned B = 0; B < 256; ++B)
    DerivByteMemo.emplace((uint64_t(A->id()) << 8) | B, Level[B]);
  return Level[Byte];
}

static bool isStarFree(Regex A) {
  switch (A->kind()) {
  case Kind::Star:
    return false;
  case Kind::Cat:
    return isStarFree(A->lhs()) && isStarFree(A->rhs());
  case Kind::Alt:
    for (Regex C : A->alternatives())
      if (!isStarFree(C))
        return false;
    return true;
  default:
    return true;
  }
}

std::optional<Regex> Factory::derivRe(Regex A, Regex By) {
  if (!isStarFree(By))
    return std::nullopt;

  // Inner worker; By is known star-free from here on.
  struct Worker {
    Factory &F;
    Regex run(Regex A, Regex By) {
      uint64_t Key = (uint64_t(A->id()) << 32) | By->id();
      auto It = F.DerivPairMemo.find(Key);
      if (It != F.DerivPairMemo.end())
        return It->second;
      Regex Result = F.voidRe();
      switch (By->kind()) {
      case Kind::Eps:
        Result = A;
        break;
      case Kind::Void:
        Result = F.voidRe();
        break;
      case Kind::Bit:
        Result = F.deriv(A, By->bitValue());
        break;
      case Kind::Any:
        Result = F.alt(F.deriv(A, false), F.deriv(A, true));
        break;
      case Kind::Alt: {
        std::vector<Regex> Ds;
        Ds.reserve(By->alternatives().size());
        for (Regex C : By->alternatives())
          Ds.push_back(run(A, C));
        Result = F.altN(std::move(Ds));
        break;
      }
      case Kind::Cat:
        Result = run(run(A, By->lhs()), By->rhs());
        break;
      case Kind::Star:
        assert(false && "star checked above");
        break;
      }
      F.DerivPairMemo.emplace(Key, Result);
      return Result;
    }
  };
  return Worker{*this}.run(A, By);
}

std::optional<bool> Factory::prefixDisjoint(Regex A, Regex B) {
  std::optional<Regex> DA = derivRe(A, B);
  if (!DA)
    return std::nullopt;
  if (*DA != VoidRe_)
    return false;
  std::optional<Regex> DB = derivRe(B, A);
  if (!DB)
    return std::nullopt;
  return *DB == VoidRe_;
}

Factory::AmbiguityReport Factory::checkUnambiguous(Regex A) {
  struct Walker {
    Factory &F;
    std::string Failure;

    bool walk(Regex N) {
      switch (N->kind()) {
      case Kind::Void:
      case Kind::Eps:
      case Kind::Bit:
      case Kind::Any:
        return true;
      case Kind::Star:
        return walk(N->body());
      case Kind::Cat:
        return walk(N->lhs()) && walk(N->rhs());
      case Kind::Alt: {
        const auto &Cs = N->alternatives();
        for (size_t I = 0; I < Cs.size(); ++I)
          for (size_t J = I + 1; J < Cs.size(); ++J) {
            std::optional<bool> Ok = F.prefixDisjoint(Cs[I], Cs[J]);
            if (!Ok) {
              Failure = "star-containing alternative; Deriv undefined";
              return false;
            }
            if (!*Ok) {
              Failure = "overlapping alternatives: " + print(Cs[I]) +
                        "  vs  " + print(Cs[J]);
              return false;
            }
          }
        for (Regex C : Cs)
          if (!walk(C))
            return false;
        return true;
      }
      }
      return true;
    }
  };
  Walker W{*this, {}};
  bool Ok = W.walk(A);
  return AmbiguityReport{Ok, std::move(W.Failure)};
}

std::optional<std::vector<bool>>
Factory::sampleBits(Regex A, uint64_t &RngState, unsigned MaxBits,
                    unsigned StopNum, unsigned StopDen) {
  auto Next = [&RngState] {
    RngState ^= RngState >> 12;
    RngState ^= RngState << 25;
    RngState ^= RngState >> 27;
    return RngState * 0x2545F4914F6CDD1Dull;
  };
  std::vector<bool> Out;
  Regex Cur = A;
  for (unsigned Step = 0; Step <= MaxBits; ++Step) {
    if (nullable(Cur)) {
      Regex D0 = deriv(Cur, false);
      Regex D1 = deriv(Cur, true);
      bool CanContinue = D0 != voidRe() || D1 != voidRe();
      if (!CanContinue || Next() % StopDen < StopNum)
        return Out;
    }
    if (Out.size() >= MaxBits)
      return std::nullopt;
    Regex D0 = deriv(Cur, false);
    Regex D1 = deriv(Cur, true);
    if (D0 == voidRe() && D1 == voidRe())
      return std::nullopt; // stuck (only possible on Void itself)
    bool Bit;
    if (D0 == voidRe())
      Bit = true;
    else if (D1 == voidRe())
      Bit = false;
    else
      Bit = Next() & 1;
    Out.push_back(Bit);
    Cur = Bit ? D1 : D0;
  }
  return std::nullopt;
}

std::optional<std::vector<uint8_t>>
Factory::sampleBytes(Regex A, uint64_t &RngState, unsigned MaxBytes) {
  std::optional<std::vector<bool>> Bits =
      sampleBits(A, RngState, MaxBytes * 8);
  if (!Bits || Bits->size() % 8 != 0)
    return std::nullopt;
  std::vector<uint8_t> Out(Bits->size() / 8, 0);
  for (size_t I = 0; I < Bits->size(); ++I)
    if ((*Bits)[I])
      Out[I / 8] |= uint8_t(1u << (7 - I % 8));
  return Out;
}

std::string Factory::print(Regex A) {
  switch (A->kind()) {
  case Kind::Void:
    return "0";
  case Kind::Eps:
    return "e";
  case Kind::Any:
    return ".";
  case Kind::Bit:
    return A->bitValue() ? "1" : "0b";
  case Kind::Star:
    return "(" + print(A->body()) + ")*";
  case Kind::Cat: {
    // Compress runs of literal bits for readability.
    std::string Out;
    Regex N = A;
    while (N->kind() == Kind::Cat) {
      Out += print(N->lhs());
      N = N->rhs();
    }
    Out += print(N);
    return Out;
  }
  case Kind::Alt: {
    std::string Out = "(";
    bool First = true;
    for (Regex C : A->alternatives()) {
      if (!First)
        Out += "|";
      First = false;
      Out += print(C);
    }
    Out += ")";
    return Out;
  }
  }
  return "?";
}
