//===- sem/TranslateString.cpp - String operations & XLAT ------*- C++ -*-===//
//
// MOVS/CMPS/STOS/LODS/SCAS with REP/REPNE, and XLAT. A rep-prefixed
// instruction is modeled as a single guarded iteration that leaves the PC
// on itself while it should continue — the standard way to keep the RTL
// straight-line (hardware restarts rep instructions the same way across
// interrupts).
//
//===----------------------------------------------------------------------===//

#include "sem/TranslateImpl.h"

using namespace rocksalt;
using namespace rocksalt::sem;
using x86::Instr;
using x86::Opcode;
using x86::Prefix;

namespace {

/// Segment for the ESI-side access (DS unless overridden); the EDI side
/// always uses ES.
uint8_t siSegment(const Instr &I) {
  if (I.Pfx.SegOverride)
    return x86::encodingOf(*I.Pfx.SegOverride);
  return x86::encodingOf(x86::SegReg::DS);
}

/// delta = DF ? -size : +size.
Var stringDelta(Ctx &C, uint32_t Bits) {
  Builder &B = C.B;
  Var Df = getFlag(C, Flag::DF);
  Var Fwd = B.imm(32, Bits / 8);
  Var Bwd = B.imm(32, static_cast<uint32_t>(-(int32_t)(Bits / 8)));
  return B.select(Df, Bwd, Fwd);
}

/// Flags exactly as CMP A, B2 at the given width.
void cmpFlags(Ctx &C, Var A, Var B2, uint32_t Bits) {
  Builder &B = C.B;
  Var R = B.sub(A, B2);
  setFlag(C, Flag::CF, B.ltu(A, B2));
  Var Of = B.castU(1, B.shru(B.band(B.bxor(A, B2), B.bxor(A, R)),
                             B.imm(Bits, Bits - 1)));
  setFlag(C, Flag::OF, Of);
  Var Af =
      B.castU(1, B.shru(B.bxor(B.bxor(A, B2), R), B.imm(Bits, 4)));
  setFlag(C, Flag::AF, Af);
  setSZP(C, R, Bits);
}

} // namespace

void sem::convString(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;
  uint32_t Bits = C.Bits;
  uint8_t EsSeg = x86::encodingOf(x86::SegReg::ES);
  bool Rep = I.Pfx.Rep != Prefix::RepKind::None;
  bool CondRep = I.Op == Opcode::CMPS || I.Op == Opcode::SCAS;

  // When rep-prefixed, every effect below is guarded on ECX != 0.
  Var Guard = NoVar;
  Var EcxNonZero = NoVar;
  if (Rep) {
    Var Ecx = B.getLoc(Loc::reg(1));
    EcxNonZero = B.notBit(B.eq(Ecx, B.imm(32, 0)));
    Guard = EcxNonZero;
  }

  {
    std::optional<Builder::GuardScope> G;
    if (Rep)
      G.emplace(B, Guard);

    Var Delta = stringDelta(C, Bits);
    Var Esi = B.getLoc(Loc::reg(6));
    Var Edi = B.getLoc(Loc::reg(7));

    switch (I.Op) {
    case Opcode::MOVS: {
      Var V = loadMem(C, siSegment(I), Esi, Bits);
      storeMem(C, EsSeg, Edi, V, Bits);
      B.setLoc(Loc::reg(6), B.add(Esi, Delta));
      B.setLoc(Loc::reg(7), B.add(Edi, Delta));
      break;
    }
    case Opcode::STOS: {
      Var V = loadReg(C, x86::Reg::EAX, Bits);
      storeMem(C, EsSeg, Edi, V, Bits);
      B.setLoc(Loc::reg(7), B.add(Edi, Delta));
      break;
    }
    case Opcode::LODS: {
      Var V = loadMem(C, siSegment(I), Esi, Bits);
      storeReg(C, x86::Reg::EAX, V, Bits);
      B.setLoc(Loc::reg(6), B.add(Esi, Delta));
      break;
    }
    case Opcode::SCAS: {
      Var Acc = loadReg(C, x86::Reg::EAX, Bits);
      Var V = loadMem(C, EsSeg, Edi, Bits);
      cmpFlags(C, Acc, V, Bits);
      B.setLoc(Loc::reg(7), B.add(Edi, Delta));
      break;
    }
    case Opcode::CMPS: {
      Var A = loadMem(C, siSegment(I), Esi, Bits);
      Var V = loadMem(C, EsSeg, Edi, Bits);
      cmpFlags(C, A, V, Bits);
      B.setLoc(Loc::reg(6), B.add(Esi, Delta));
      B.setLoc(Loc::reg(7), B.add(Edi, Delta));
      break;
    }
    default:
      B.error();
      return;
    }

    if (Rep) {
      // Decrement the count inside the guarded region.
      Var Ecx = B.getLoc(Loc::reg(1));
      B.setLoc(Loc::reg(1), B.sub(Ecx, B.imm(32, 1)));
    }
  }

  if (!Rep)
    return; // default PC advance applies

  C.PcHandled = true;
  // Continue while the new count is nonzero, and for CMPS/SCAS while the
  // termination condition has not fired.
  Var NewEcx = B.getLoc(Loc::reg(1));
  Var Cont = B.band(EcxNonZero, B.notBit(B.eq(NewEcx, B.imm(32, 0))));
  if (CondRep) {
    Var Zf = getFlag(C, Flag::ZF);
    Var Want = I.Pfx.Rep == Prefix::RepKind::Rep ? Zf : B.notBit(Zf);
    Cont = B.band(Cont, Want);
  }
  Var Pc = B.getLoc(Loc::pc());
  Var Next = nextPc(C);
  B.setLoc(Loc::pc(), B.select(Cont, Pc, Next));
}

void sem::convXlat(Ctx &C) {
  Builder &B = C.B;
  // AL := seg:[EBX + zext(AL)].
  uint8_t Seg = C.I.Pfx.SegOverride
                    ? x86::encodingOf(*C.I.Pfx.SegOverride)
                    : x86::encodingOf(x86::SegReg::DS);
  Var Ebx = B.getLoc(Loc::reg(3));
  Var Al = B.castU(32, loadReg(C, x86::Reg::EAX, 8));
  Var V = B.getByte(Seg, B.add(Ebx, Al));
  storeReg(C, x86::Reg::EAX, V, 8);
}
