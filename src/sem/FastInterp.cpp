//===- sem/FastInterp.cpp -------------------------------------*- C++ -*-===//

#include "sem/FastInterp.h"

#include "sem/Translate.h"
#include "x86/FastDecoder.h"

#include <cassert>

using namespace rocksalt;
using namespace rocksalt::sem;
using rtl::Flag;
using rtl::MachineState;
using rtl::Status;
using x86::Instr;
using x86::Opcode;
using x86::Operand;

namespace {

uint32_t maskOf(uint32_t Bits) {
  return Bits == 32 ? 0xFFFFFFFFu : ((1u << Bits) - 1);
}

uint32_t signBit(uint32_t Bits) { return 1u << (Bits - 1); }

/// Sign-extends a Bits-wide value to 32 bits.
uint32_t sext32(uint32_t V, uint32_t Bits) {
  if (Bits == 32)
    return V;
  uint32_t M = maskOf(Bits);
  V &= M;
  if (V & signBit(Bits))
    V |= ~M;
  return V;
}

/// The whole interpreter for one instruction; `Failed` latches faults.
class Exec {
public:
  MachineState &M;
  const Instr &I;
  uint8_t Len;
  uint32_t Bits;
  bool Fault = false;

  Exec(MachineState &M_, const Instr &I_, uint8_t Len_)
      : M(M_), I(I_), Len(Len_), Bits(x86::operandBits(I_.Pfx, I_.W)) {}

  // --- flags ----------------------------------------------------------------
  bool flag(Flag F) const { return M.Flags[static_cast<unsigned>(F)]; }
  void setF(Flag F, bool V) { M.Flags[static_cast<unsigned>(F)] = V; }

  void setSZP(uint32_t R, uint32_t W) {
    R &= maskOf(W);
    setF(Flag::SF, (R & signBit(W)) != 0);
    setF(Flag::ZF, R == 0);
    uint32_t X = R & 0xFF;
    X ^= X >> 4;
    X ^= X >> 2;
    X ^= X >> 1;
    setF(Flag::PF, (X & 1) == 0);
  }

  bool evalCond(x86::Cond CC) const {
    using x86::Cond;
    bool V = false;
    switch (CC) {
    case Cond::O: case Cond::NO: V = flag(Flag::OF); break;
    case Cond::B: case Cond::NB: V = flag(Flag::CF); break;
    case Cond::E: case Cond::NE: V = flag(Flag::ZF); break;
    case Cond::BE: case Cond::NBE:
      V = flag(Flag::CF) || flag(Flag::ZF);
      break;
    case Cond::S: case Cond::NS: V = flag(Flag::SF); break;
    case Cond::P: case Cond::NP: V = flag(Flag::PF); break;
    case Cond::L: case Cond::NL:
      V = flag(Flag::SF) != flag(Flag::OF);
      break;
    case Cond::LE: case Cond::NLE:
      V = flag(Flag::ZF) || (flag(Flag::SF) != flag(Flag::OF));
      break;
    }
    return (x86::encodingOf(CC) & 1) ? !V : V;
  }

  // --- registers (with the AH/CH/DH/BH rule) --------------------------------
  uint32_t readReg(x86::Reg R, uint32_t W) const {
    uint8_t E = x86::encodingOf(R);
    if (W == 8 && E >= 4)
      return (M.Regs[E - 4] >> 8) & 0xFF;
    return M.Regs[E] & maskOf(W);
  }
  void writeReg(x86::Reg R, uint32_t V, uint32_t W) {
    uint8_t E = x86::encodingOf(R);
    if (W == 32) {
      M.Regs[E] = V;
      return;
    }
    if (W == 8 && E >= 4) {
      M.Regs[E - 4] = (M.Regs[E - 4] & 0xFFFF00FF) | ((V & 0xFF) << 8);
      return;
    }
    uint32_t Mask = maskOf(W);
    M.Regs[E] = (M.Regs[E] & ~Mask) | (V & Mask);
  }

  // --- memory through segments -----------------------------------------------
  uint8_t segFor(const x86::Addr &A) const {
    if (I.Pfx.SegOverride)
      return x86::encodingOf(*I.Pfx.SegOverride);
    if (A.Base && (*A.Base == x86::Reg::EBP || *A.Base == x86::Reg::ESP))
      return x86::encodingOf(x86::SegReg::SS);
    return x86::encodingOf(x86::SegReg::DS);
  }

  uint32_t effAddr(const x86::Addr &A) const {
    uint32_t V = A.Disp;
    if (A.Base)
      V += M.Regs[x86::encodingOf(*A.Base)];
    if (A.Index)
      V += M.Regs[x86::encodingOf(A.Index->second)]
           << static_cast<uint32_t>(A.Index->first);
    return V;
  }

  uint32_t loadMem(uint8_t Seg, uint32_t Off, uint32_t W) {
    uint32_t V = 0;
    for (uint32_t B = 0; B < W / 8; ++B) {
      if (!M.inSegment(Seg, Off + B)) {
        Fault = true;
        return 0;
      }
      V |= uint32_t(M.Mem.load8(M.physAddr(Seg, Off + B))) << (8 * B);
    }
    return V;
  }
  void storeMem(uint8_t Seg, uint32_t Off, uint32_t V, uint32_t W) {
    for (uint32_t B = 0; B < W / 8; ++B) {
      if (!M.inSegment(Seg, Off + B)) {
        Fault = true;
        return;
      }
      M.Mem.store8(M.physAddr(Seg, Off + B),
                   static_cast<uint8_t>(V >> (8 * B)));
    }
  }

  // --- operands ---------------------------------------------------------------
  uint32_t load(const Operand &O, uint32_t W) {
    switch (O.K) {
    case Operand::Kind::Imm:
      return O.ImmVal & maskOf(W);
    case Operand::Kind::Reg:
      return readReg(O.R, W);
    case Operand::Kind::Mem:
      return loadMem(segFor(O.A), effAddr(O.A), W);
    case Operand::Kind::None:
      break;
    }
    assert(false && "load of None operand");
    return 0;
  }
  void store(const Operand &O, uint32_t V, uint32_t W) {
    if (O.isReg()) {
      writeReg(O.R, V, W);
      return;
    }
    assert(O.isMem() && "store to non-location");
    storeMem(segFor(O.A), effAddr(O.A), V, W);
  }

  // --- stack -------------------------------------------------------------------
  void push(uint32_t V, uint32_t W) {
    uint8_t SS = x86::encodingOf(x86::SegReg::SS);
    uint32_t NewEsp = M.Regs[4] - W / 8;
    storeMem(SS, NewEsp, V, W);
    if (Fault)
      return;
    M.Regs[4] = NewEsp;
  }
  uint32_t pop(uint32_t W) {
    uint8_t SS = x86::encodingOf(x86::SegReg::SS);
    uint32_t V = loadMem(SS, M.Regs[4], W);
    if (Fault)
      return 0;
    M.Regs[4] += W / 8;
    return V;
  }

  void loadSegment(uint8_t SegIdx, uint16_t Sel) {
    M.SegVal[SegIdx] = Sel;
    M.SegBase[SegIdx] = 0;
    M.SegLimit[SegIdx] = 0xFFFFFFFF;
  }

  uint32_t nextPc() const { return M.Pc + Len; }
  void advance() { M.Pc = nextPc(); }

  // --- flag recipes --------------------------------------------------------------
  void addFlags(uint32_t A, uint32_t B, uint32_t R, bool Cin) {
    uint64_t Wide = uint64_t(A & maskOf(Bits)) + (B & maskOf(Bits)) + Cin;
    setF(Flag::CF, (Wide >> Bits) & 1);
    setF(Flag::OF, ((A ^ R) & (B ^ R) & signBit(Bits)) != 0);
    setF(Flag::AF, ((A ^ B ^ R) & 0x10) != 0);
    setSZP(R, Bits);
  }
  void subFlags(uint32_t A, uint32_t B, uint32_t R, bool Borrow) {
    setF(Flag::CF, Borrow);
    setF(Flag::OF, ((A ^ B) & (A ^ R) & signBit(Bits)) != 0);
    setF(Flag::AF, ((A ^ B ^ R) & 0x10) != 0);
    setSZP(R, Bits);
  }
  void cmpFlagsAt(uint32_t A, uint32_t B, uint32_t W) {
    uint32_t R = (A - B) & maskOf(W);
    setF(Flag::CF, (A & maskOf(W)) < (B & maskOf(W)));
    setF(Flag::OF, ((A ^ B) & (A ^ R) & signBit(W)) != 0);
    setF(Flag::AF, ((A ^ B ^ R) & 0x10) != 0);
    setSZP(R, W);
  }

  // --- execution dispatch ----------------------------------------------------------
  void exec();
  void flow();
  void stringOp();

private:
  void aluBinop();
  void mulDiv();
  void shiftRotate();
  void doubleShift();
  void bitOps();
  void bcd();
  void widen();
  void pushPop();
  void flagOps();
  void movFamily();
  void segmentOps();
};

void Exec::aluBinop() {
  uint32_t A = load(I.Op1, Bits);
  if (Fault)
    return;
  uint32_t B = load(I.Op2, Bits);
  if (Fault)
    return;
  uint32_t Mask = maskOf(Bits);
  uint32_t R = 0;
  switch (I.Op) {
  case Opcode::ADD:
  case Opcode::ADC: {
    bool Cin = I.Op == Opcode::ADC && flag(Flag::CF);
    R = (A + B + Cin) & Mask;
    addFlags(A, B, R, Cin);
    store(I.Op1, R, Bits);
    return;
  }
  case Opcode::SUB:
  case Opcode::SBB:
  case Opcode::CMP: {
    bool Cin = I.Op == Opcode::SBB && flag(Flag::CF);
    R = (A - B - Cin) & Mask;
    bool Borrow = uint64_t(A & Mask) < uint64_t(B & Mask) + Cin;
    subFlags(A, B, R, Borrow);
    if (I.Op != Opcode::CMP)
      store(I.Op1, R, Bits);
    return;
  }
  case Opcode::AND:
  case Opcode::TEST:
    R = A & B;
    break;
  case Opcode::OR:
    R = A | B;
    break;
  case Opcode::XOR:
    R = A ^ B;
    break;
  default:
    assert(false);
  }
  setF(Flag::CF, false);
  setF(Flag::OF, false);
  setF(Flag::AF, false);
  setSZP(R, Bits);
  if (I.Op != Opcode::TEST)
    store(I.Op1, R, Bits);
}

void Exec::mulDiv() {
  uint32_t Mask = maskOf(Bits);

  if (I.Op == Opcode::IMUL && !I.Op2.isNone()) {
    // Two/three-operand IMUL.
    int64_t A, B;
    if (I.Op3.isImm()) {
      A = int64_t(int32_t(sext32(load(I.Op2, Bits), Bits)));
      if (Fault)
        return;
      B = int64_t(int32_t(sext32(I.Op3.ImmVal & Mask, Bits)));
    } else {
      B = int64_t(int32_t(sext32(load(I.Op2, Bits), Bits)));
      if (Fault)
        return;
      A = int64_t(int32_t(sext32(readReg(I.Op1.R, Bits), Bits)));
    }
    int64_t P = A * B;
    uint32_t R = uint32_t(P) & Mask;
    bool Ovf = P != int64_t(int32_t(sext32(R, Bits)));
    setF(Flag::CF, Ovf);
    setF(Flag::OF, Ovf);
    setF(Flag::AF, false);
    setSZP(R, Bits);
    writeReg(I.Op1.R, R, Bits);
    return;
  }

  switch (I.Op) {
  case Opcode::MUL:
  case Opcode::IMUL: {
    bool Signed = I.Op == Opcode::IMUL;
    uint32_t Src = load(I.Op1, Bits);
    if (Fault)
      return;
    uint32_t Acc = readReg(x86::Reg::EAX, Bits);
    uint64_t P;
    if (Signed)
      P = uint64_t(int64_t(int32_t(sext32(Acc, Bits))) *
                   int64_t(int32_t(sext32(Src, Bits))));
    else
      P = uint64_t(Acc) * Src;
    uint64_t WideMask =
        Bits == 32 ? ~uint64_t(0) : ((uint64_t(1) << (2 * Bits)) - 1);
    P &= WideMask;
    uint32_t Lo = uint32_t(P) & Mask;
    uint32_t Hi = uint32_t(P >> Bits) & Mask;
    if (Bits == 8) {
      writeReg(x86::Reg::EAX, uint32_t(P) & 0xFFFF, 16);
    } else {
      writeReg(x86::Reg::EAX, Lo, Bits);
      writeReg(x86::Reg::EDX, Hi, Bits);
    }
    bool Ovf;
    if (Signed) {
      uint64_t SextLo =
          uint64_t(int64_t(int32_t(sext32(Lo, Bits)))) & WideMask;
      Ovf = P != SextLo;
    } else {
      Ovf = Hi != 0;
    }
    setF(Flag::CF, Ovf);
    setF(Flag::OF, Ovf);
    setF(Flag::AF, false);
    setSZP(Lo, Bits);
    return;
  }
  case Opcode::DIV:
  case Opcode::IDIV: {
    bool Signed = I.Op == Opcode::IDIV;
    uint32_t Src = load(I.Op1, Bits);
    if (Fault)
      return;
    if ((Src & Mask) == 0) {
      Fault = true; // #DE
      return;
    }
    uint64_t Dividend;
    if (Bits == 8)
      Dividend = readReg(x86::Reg::EAX, 16);
    else
      Dividend = uint64_t(readReg(x86::Reg::EDX, Bits)) << Bits |
                 readReg(x86::Reg::EAX, Bits);
    uint64_t Q, Rem;
    uint32_t WideBits = 2 * Bits;
    if (Signed) {
      int64_t D = int64_t(Dividend << (64 - WideBits)) >> (64 - WideBits);
      int64_t V = int64_t(int32_t(sext32(Src, Bits)));
      int64_t Qs = D / V, Rs = D % V;
      // Quotient must fit the signed destination width.
      int64_t QTrunc = int64_t(int32_t(sext32(uint32_t(Qs) & Mask, Bits)));
      if (Qs != QTrunc) {
        Fault = true;
        return;
      }
      Q = uint64_t(Qs);
      Rem = uint64_t(Rs);
    } else {
      Q = Dividend / (Src & Mask);
      Rem = Dividend % (Src & Mask);
      if (Q > Mask) {
        Fault = true;
        return;
      }
    }
    if (Bits == 8) {
      uint32_t Ax = (uint32_t(Q) & 0xFF) | ((uint32_t(Rem) & 0xFF) << 8);
      writeReg(x86::Reg::EAX, Ax, 16);
    } else {
      writeReg(x86::Reg::EAX, uint32_t(Q) & Mask, Bits);
      writeReg(x86::Reg::EDX, uint32_t(Rem) & Mask, Bits);
    }
    return;
  }
  default:
    assert(false);
  }
}

void Exec::shiftRotate() {
  uint32_t Mask = maskOf(Bits);
  uint32_t Val = load(I.Op1, Bits);
  if (Fault)
    return;
  uint32_t Cnt = I.Op2.isImm() ? (I.Op2.ImmVal & 31) : (M.Regs[1] & 31);
  if (Cnt == 0)
    return; // nothing changes, not even flags

  uint64_t V64 = Val;
  uint32_t Res = 0;
  bool Cf = false, Of = false;
  bool IsRotate = false;

  switch (I.Op) {
  case Opcode::SHL: {
    uint64_t Sh = V64 << Cnt;
    Res = uint32_t(Sh) & Mask;
    Cf = (Sh >> Bits) & 1;
    Of = ((Res >> (Bits - 1)) & 1) != Cf;
    break;
  }
  case Opcode::SHR: {
    Cf = (V64 >> (Cnt - 1)) & 1;
    Res = uint32_t(V64 >> Cnt) & Mask;
    Of = (Val >> (Bits - 1)) & 1;
    break;
  }
  case Opcode::SAR: {
    int64_t S = int64_t(int32_t(sext32(Val, Bits)));
    Cf = (uint64_t(S) >> (Cnt - 1)) & 1;
    Res = uint32_t(S >> Cnt) & Mask;
    Of = false;
    break;
  }
  case Opcode::ROL: {
    IsRotate = true;
    uint32_t K = Cnt % Bits;
    Res = K == 0 ? Val
                 : (((Val << K) | (Val >> (Bits - K))) & Mask);
    Cf = Res & 1;
    Of = ((Res >> (Bits - 1)) & 1) != Cf;
    break;
  }
  case Opcode::ROR: {
    IsRotate = true;
    uint32_t K = Cnt % Bits;
    Res = K == 0 ? Val
                 : (((Val >> K) | (Val << (Bits - K))) & Mask);
    bool Msb = (Res >> (Bits - 1)) & 1;
    bool Msb2 = (Res >> (Bits - 2)) & 1;
    Cf = Msb;
    Of = Msb != Msb2;
    break;
  }
  case Opcode::RCL:
  case Opcode::RCR: {
    IsRotate = true;
    uint32_t W1 = Bits + 1;
    uint32_t K = Cnt % W1;
    uint64_t Ext = V64 | (uint64_t(flag(Flag::CF)) << Bits);
    uint64_t Rot;
    if (K == 0)
      Rot = Ext;
    else if (I.Op == Opcode::RCL)
      Rot = ((Ext << K) | (Ext >> (W1 - K))) & ((uint64_t(1) << W1) - 1);
    else
      Rot = ((Ext >> K) | (Ext << (W1 - K))) & ((uint64_t(1) << W1) - 1);
    Res = uint32_t(Rot) & Mask;
    Cf = (Rot >> Bits) & 1;
    bool Msb = (Res >> (Bits - 1)) & 1;
    if (I.Op == Opcode::RCL)
      Of = Msb != Cf;
    else {
      bool Msb2 = (Res >> (Bits - 2)) & 1;
      Of = Msb != Msb2;
    }
    break;
  }
  default:
    assert(false);
  }

  store(I.Op1, Res, Bits);
  if (Fault)
    return;
  setF(Flag::CF, Cf);
  setF(Flag::OF, Of);
  if (!IsRotate)
    setSZP(Res, Bits);
}

void Exec::doubleShift() {
  uint32_t Mask = maskOf(Bits);
  uint32_t Dst = load(I.Op1, Bits);
  if (Fault)
    return;
  uint32_t Src = load(I.Op2, Bits);
  uint32_t Cnt = I.Op3.isImm() ? (I.Op3.ImmVal & 31) : (M.Regs[1] & 31);
  if (Cnt == 0)
    return;

  uint32_t Res;
  bool Cf;
  if (I.Op == Opcode::SHLD) {
    uint64_t Comb = (uint64_t(Dst) << Bits) | Src;
    uint64_t Sh = Comb << Cnt;
    Res = uint32_t(Sh >> Bits) & Mask;
    Cf = (Sh >> (2 * Bits)) & 1;
  } else {
    uint64_t Comb = (uint64_t(Src) << Bits) | Dst;
    Cf = (Comb >> (Cnt - 1)) & 1;
    Res = uint32_t(Comb >> Cnt) & Mask;
  }
  bool Of = ((Res >> (Bits - 1)) & 1) != ((Dst >> (Bits - 1)) & 1);
  store(I.Op1, Res, Bits);
  if (Fault)
    return;
  setF(Flag::CF, Cf);
  setF(Flag::OF, Of);
  setSZP(Res, Bits);
}

void Exec::bitOps() {
  uint32_t Mask = maskOf(Bits);
  switch (I.Op) {
  case Opcode::BSWAP: {
    uint32_t V = M.Regs[x86::encodingOf(I.Op1.R)];
    M.Regs[x86::encodingOf(I.Op1.R)] = __builtin_bswap32(V);
    return;
  }
  case Opcode::BSF:
  case Opcode::BSR: {
    uint32_t Src = load(I.Op2, Bits);
    if (Fault)
      return;
    Src &= Mask;
    setF(Flag::ZF, Src == 0);
    if (Src == 0)
      return; // destination unchanged
    uint32_t Idx = I.Op == Opcode::BSF
                       ? uint32_t(__builtin_ctz(Src))
                       : 31 - uint32_t(__builtin_clz(Src));
    writeReg(I.Op1.R, Idx, Bits);
    return;
  }
  case Opcode::BT:
  case Opcode::BTS:
  case Opcode::BTR:
  case Opcode::BTC: {
    uint32_t Val = load(I.Op1, Bits);
    if (Fault)
      return;
    uint32_t Idx = I.Op2.isImm() ? (I.Op2.ImmVal % Bits)
                                 : (readReg(I.Op2.R, Bits) % Bits);
    bool Bit = (Val >> Idx) & 1;
    setF(Flag::CF, Bit);
    if (I.Op == Opcode::BT)
      return;
    uint32_t M2 = 1u << Idx;
    uint32_t R = I.Op == Opcode::BTS   ? (Val | M2)
                 : I.Op == Opcode::BTR ? (Val & ~M2)
                                       : (Val ^ M2);
    store(I.Op1, R & Mask, Bits);
    return;
  }
  default:
    assert(false);
  }
}

void Exec::bcd() {
  uint32_t Al = readReg(x86::Reg::EAX, 8);
  switch (I.Op) {
  case Opcode::AAM: {
    uint32_t Imm = I.Op1.ImmVal & 0xFF;
    if (Imm == 0) {
      Fault = true;
      return;
    }
    uint32_t Ah = Al / Imm, NewAl = Al % Imm;
    writeReg(x86::Reg::EAX, (Ah << 8) | NewAl, 16);
    setSZP(NewAl, 8);
    setF(Flag::CF, false);
    setF(Flag::OF, false);
    setF(Flag::AF, false);
    return;
  }
  case Opcode::AAD: {
    uint32_t Imm = I.Op1.ImmVal & 0xFF;
    uint32_t Ah = readReg(x86::regFromEncoding(4), 8);
    uint32_t NewAl = (Al + ((Ah * Imm) & 0xFF)) & 0xFF;
    writeReg(x86::Reg::EAX, NewAl, 16); // AH = 0
    setSZP(NewAl, 8);
    setF(Flag::CF, false);
    setF(Flag::OF, false);
    setF(Flag::AF, false);
    return;
  }
  case Opcode::AAA:
  case Opcode::AAS: {
    bool Cond = ((Al & 0x0F) > 9) || flag(Flag::AF);
    uint32_t Ax = readReg(x86::Reg::EAX, 16);
    uint32_t NewAx =
        Cond ? (I.Op == Opcode::AAA ? Ax + 0x106 : Ax - 0x106) : Ax;
    writeReg(x86::Reg::EAX, NewAx & 0xFF0F, 16);
    setF(Flag::AF, Cond);
    setF(Flag::CF, Cond);
    setSZP(NewAx & 0x0F, 8);
    setF(Flag::OF, false);
    return;
  }
  case Opcode::DAA:
  case Opcode::DAS: {
    bool IsAdd = I.Op == Opcode::DAA;
    bool OldCf = flag(Flag::CF);
    bool CondLow = ((Al & 0x0F) > 9) || flag(Flag::AF);
    uint32_t Al1 =
        CondLow ? ((IsAdd ? Al + 6 : Al - 6) & 0xFF) : Al;
    bool CondHigh = (Al > 0x99) || OldCf;
    uint32_t Al2 =
        CondHigh ? ((IsAdd ? Al1 + 0x60 : Al1 - 0x60) & 0xFF) : Al1;
    writeReg(x86::Reg::EAX, Al2, 8);
    setF(Flag::AF, CondLow);
    setF(Flag::CF, CondHigh);
    setSZP(Al2, 8);
    setF(Flag::OF, false);
    return;
  }
  default:
    assert(false);
  }
}

void Exec::widen() {
  switch (I.Op) {
  case Opcode::CWDE:
    if (I.Pfx.OpSize)
      writeReg(x86::Reg::EAX, sext32(readReg(x86::Reg::EAX, 8), 8) & 0xFFFF,
               16);
    else
      writeReg(x86::Reg::EAX, sext32(readReg(x86::Reg::EAX, 16), 16), 32);
    return;
  case Opcode::CDQ: {
    uint32_t W = I.Pfx.OpSize ? 16 : 32;
    uint32_t Acc = readReg(x86::Reg::EAX, W);
    bool Neg = (Acc & signBit(W)) != 0;
    writeReg(x86::Reg::EDX, Neg ? maskOf(W) : 0, W);
    return;
  }
  case Opcode::MOVSX:
  case Opcode::MOVZX: {
    uint32_t SrcBits = I.W ? 16 : 8;
    uint32_t DstBits = I.Pfx.OpSize ? 16 : 32;
    uint32_t V = load(I.Op2, SrcBits);
    if (Fault)
      return;
    if (I.Op == Opcode::MOVSX)
      V = sext32(V, SrcBits) & maskOf(DstBits);
    writeReg(I.Op1.R, V, DstBits);
    return;
  }
  default:
    assert(false);
  }
}

void Exec::flow() {
  switch (I.Op) {
  case Opcode::CALL:
  case Opcode::JMP: {
    uint32_t Target;
    if (I.Absolute) {
      Target = load(I.Op1, 32);
      if (Fault)
        return;
    } else {
      Target = nextPc() + I.Op1.ImmVal;
    }
    if (I.Op == Opcode::CALL) {
      push(nextPc(), 32);
      if (Fault)
        return;
    }
    M.Pc = Target;
    return;
  }
  case Opcode::Jcc:
    M.Pc = evalCond(I.CC) ? nextPc() + I.Op1.ImmVal : nextPc();
    return;
  case Opcode::JCXZ:
    M.Pc = M.Regs[1] == 0 ? nextPc() + I.Op1.ImmVal : nextPc();
    return;
  case Opcode::LOOP:
  case Opcode::LOOPZ:
  case Opcode::LOOPNZ: {
    M.Regs[1] -= 1;
    bool Cond = M.Regs[1] != 0;
    if (I.Op == Opcode::LOOPZ)
      Cond = Cond && flag(Flag::ZF);
    else if (I.Op == Opcode::LOOPNZ)
      Cond = Cond && !flag(Flag::ZF);
    M.Pc = Cond ? nextPc() + I.Op1.ImmVal : nextPc();
    return;
  }
  case Opcode::RET: {
    uint32_t Ret = pop(32);
    if (Fault)
      return;
    if (I.Op1.isImm())
      M.Regs[4] += I.Op1.ImmVal & 0xFFFF;
    M.Pc = Ret;
    return;
  }
  default:
    assert(false);
  }
}

void Exec::pushPop() {
  uint32_t W = I.Pfx.OpSize ? 16 : 32;
  switch (I.Op) {
  case Opcode::PUSH: {
    uint32_t V = load(I.Op1, W);
    if (Fault)
      return;
    push(V, W);
    return;
  }
  case Opcode::POP: {
    uint32_t V = pop(W);
    if (Fault)
      return;
    store(I.Op1, V, W);
    return;
  }
  case Opcode::PUSHA: {
    uint32_t OrigEsp = M.Regs[4];
    for (uint8_t R = 0; R < 8; ++R) {
      uint32_t V = R == 4 ? OrigEsp : M.Regs[R];
      push(V & maskOf(W), W);
      if (Fault)
        return;
    }
    return;
  }
  case Opcode::POPA: {
    for (int R = 7; R >= 0; --R) {
      uint32_t V = pop(W);
      if (Fault)
        return;
      if (R == 4)
        continue;
      writeReg(x86::regFromEncoding(uint8_t(R)), V, W);
    }
    return;
  }
  case Opcode::PUSHF: {
    uint32_t V = 0x2;
    auto Put = [&](Flag F, uint32_t Pos) {
      V |= uint32_t(flag(F)) << Pos;
    };
    Put(Flag::CF, 0);
    Put(Flag::PF, 2);
    Put(Flag::AF, 4);
    Put(Flag::ZF, 6);
    Put(Flag::SF, 7);
    Put(Flag::TF, 8);
    Put(Flag::IF, 9);
    Put(Flag::DF, 10);
    Put(Flag::OF, 11);
    push(V & maskOf(W), W);
    return;
  }
  case Opcode::POPF: {
    uint32_t V = pop(W);
    if (Fault)
      return;
    auto Take = [&](Flag F, uint32_t Pos) { setF(F, (V >> Pos) & 1); };
    Take(Flag::CF, 0);
    Take(Flag::PF, 2);
    Take(Flag::AF, 4);
    Take(Flag::ZF, 6);
    Take(Flag::SF, 7);
    Take(Flag::TF, 8);
    Take(Flag::IF, 9);
    Take(Flag::DF, 10);
    Take(Flag::OF, 11);
    return;
  }
  case Opcode::ENTER: {
    push(M.Regs[5], 32);
    if (Fault)
      return;
    uint32_t NewEbp = M.Regs[4];
    M.Regs[5] = NewEbp;
    M.Regs[4] = NewEbp - (I.Op1.ImmVal & 0xFFFF);
    return;
  }
  case Opcode::LEAVE: {
    M.Regs[4] = M.Regs[5];
    uint32_t V = pop(32);
    if (Fault)
      return;
    M.Regs[5] = V;
    return;
  }
  default:
    assert(false);
  }
}

void Exec::flagOps() {
  switch (I.Op) {
  case Opcode::CLC: setF(Flag::CF, false); return;
  case Opcode::STC: setF(Flag::CF, true); return;
  case Opcode::CMC: setF(Flag::CF, !flag(Flag::CF)); return;
  case Opcode::CLD: setF(Flag::DF, false); return;
  case Opcode::STD: setF(Flag::DF, true); return;
  case Opcode::CLI: setF(Flag::IF, false); return;
  case Opcode::STI: setF(Flag::IF, true); return;
  case Opcode::LAHF: {
    uint32_t V = 0x02;
    V |= uint32_t(flag(Flag::CF)) << 0;
    V |= uint32_t(flag(Flag::PF)) << 2;
    V |= uint32_t(flag(Flag::AF)) << 4;
    V |= uint32_t(flag(Flag::ZF)) << 6;
    V |= uint32_t(flag(Flag::SF)) << 7;
    writeReg(x86::regFromEncoding(4), V, 8);
    return;
  }
  case Opcode::SAHF: {
    uint32_t Ah = readReg(x86::regFromEncoding(4), 8);
    setF(Flag::CF, (Ah >> 0) & 1);
    setF(Flag::PF, (Ah >> 2) & 1);
    setF(Flag::AF, (Ah >> 4) & 1);
    setF(Flag::ZF, (Ah >> 6) & 1);
    setF(Flag::SF, (Ah >> 7) & 1);
    return;
  }
  default:
    assert(false);
  }
}

void Exec::stringOp() {
  uint8_t Es = x86::encodingOf(x86::SegReg::ES);
  uint8_t Si = I.Pfx.SegOverride
                   ? x86::encodingOf(*I.Pfx.SegOverride)
                   : x86::encodingOf(x86::SegReg::DS);
  bool Rep = I.Pfx.Rep != x86::Prefix::RepKind::None;
  bool CondRep = I.Op == Opcode::CMPS || I.Op == Opcode::SCAS;

  bool EcxNonZero = M.Regs[1] != 0;
  bool DoIter = !Rep || EcxNonZero;
  uint32_t Delta =
      M.Flags[static_cast<unsigned>(Flag::DF)] ? uint32_t(-(int32_t)(Bits / 8))
                                               : Bits / 8;

  if (DoIter) {
    switch (I.Op) {
    case Opcode::MOVS: {
      uint32_t V = loadMem(Si, M.Regs[6], Bits);
      if (Fault)
        return;
      storeMem(Es, M.Regs[7], V, Bits);
      if (Fault)
        return;
      M.Regs[6] += Delta;
      M.Regs[7] += Delta;
      break;
    }
    case Opcode::STOS: {
      storeMem(Es, M.Regs[7], readReg(x86::Reg::EAX, Bits), Bits);
      if (Fault)
        return;
      M.Regs[7] += Delta;
      break;
    }
    case Opcode::LODS: {
      uint32_t V = loadMem(Si, M.Regs[6], Bits);
      if (Fault)
        return;
      writeReg(x86::Reg::EAX, V, Bits);
      M.Regs[6] += Delta;
      break;
    }
    case Opcode::SCAS: {
      uint32_t V = loadMem(Es, M.Regs[7], Bits);
      if (Fault)
        return;
      cmpFlagsAt(readReg(x86::Reg::EAX, Bits), V, Bits);
      M.Regs[7] += Delta;
      break;
    }
    case Opcode::CMPS: {
      uint32_t A = loadMem(Si, M.Regs[6], Bits);
      if (Fault)
        return;
      uint32_t V = loadMem(Es, M.Regs[7], Bits);
      if (Fault)
        return;
      cmpFlagsAt(A, V, Bits);
      M.Regs[6] += Delta;
      M.Regs[7] += Delta;
      break;
    }
    default:
      assert(false);
    }
    if (Rep)
      M.Regs[1] -= 1;
  }

  if (!Rep) {
    advance();
    return;
  }
  bool Cont = EcxNonZero && M.Regs[1] != 0;
  if (CondRep) {
    bool Zf = flag(Flag::ZF);
    bool Want = I.Pfx.Rep == x86::Prefix::RepKind::Rep ? Zf : !Zf;
    Cont = Cont && Want;
  }
  M.Pc = Cont ? M.Pc : nextPc();
}

void Exec::movFamily() {
  switch (I.Op) {
  case Opcode::MOV: {
    uint32_t V = load(I.Op2, Bits);
    if (Fault)
      return;
    store(I.Op1, V, Bits);
    return;
  }
  case Opcode::LEA: {
    uint32_t DstBits = I.Pfx.OpSize ? 16 : 32;
    writeReg(I.Op1.R, effAddr(I.Op2.A) & maskOf(DstBits), DstBits);
    return;
  }
  case Opcode::XCHG: {
    uint32_t A = load(I.Op1, Bits);
    if (Fault)
      return;
    uint32_t B = load(I.Op2, Bits);
    if (Fault)
      return;
    store(I.Op1, B, Bits);
    if (Fault)
      return;
    store(I.Op2, A, Bits);
    return;
  }
  case Opcode::XADD: {
    uint32_t Dst = load(I.Op1, Bits);
    if (Fault)
      return;
    uint32_t Src = load(I.Op2, Bits);
    uint32_t Sum = (Dst + Src) & maskOf(Bits);
    addFlags(Dst, Src, Sum, false);
    store(I.Op2, Dst, Bits);
    store(I.Op1, Sum, Bits);
    return;
  }
  case Opcode::CMPXCHG: {
    uint32_t Dst = load(I.Op1, Bits);
    if (Fault)
      return;
    uint32_t Acc = readReg(x86::Reg::EAX, Bits);
    uint32_t Src = load(I.Op2, Bits);
    cmpFlagsAt(Acc, Dst, Bits);
    bool Equal = Acc == Dst;
    store(I.Op1, Equal ? Src : Dst, Bits);
    if (Fault)
      return;
    writeReg(x86::Reg::EAX, Equal ? Acc : Dst, Bits);
    return;
  }
  case Opcode::XLAT: {
    uint8_t Seg = I.Pfx.SegOverride
                      ? x86::encodingOf(*I.Pfx.SegOverride)
                      : x86::encodingOf(x86::SegReg::DS);
    uint32_t A = M.Regs[3] + readReg(x86::Reg::EAX, 8);
    uint32_t V = loadMem(Seg, A, 8);
    if (Fault)
      return;
    writeReg(x86::Reg::EAX, V, 8);
    return;
  }
  default:
    assert(false);
  }
}

void Exec::segmentOps() {
  uint8_t SegIdx = x86::encodingOf(I.Seg);
  switch (I.Op) {
  case Opcode::MOVSR:
    if (!I.Op1.isNone()) {
      store(I.Op1, M.SegVal[SegIdx], 16);
      return;
    }
    {
      uint32_t V = load(I.Op2, 16);
      if (Fault)
        return;
      loadSegment(SegIdx, static_cast<uint16_t>(V));
    }
    return;
  case Opcode::PUSHSR:
    push(M.SegVal[SegIdx], 32);
    return;
  case Opcode::POPSR: {
    uint32_t V = pop(32);
    if (Fault)
      return;
    loadSegment(SegIdx, static_cast<uint16_t>(V));
    return;
  }
  case Opcode::LDS:
  case Opcode::LES:
  case Opcode::LSS:
  case Opcode::LFS:
  case Opcode::LGS: {
    uint8_t Target;
    switch (I.Op) {
    case Opcode::LDS: Target = 3; break;
    case Opcode::LES: Target = 0; break;
    case Opcode::LSS: Target = 2; break;
    case Opcode::LFS: Target = 4; break;
    default: Target = 5; break;
    }
    uint8_t Seg = segFor(I.Op2.A);
    uint32_t A = effAddr(I.Op2.A);
    uint32_t Off = loadMem(Seg, A, 32);
    if (Fault)
      return;
    uint32_t Sel = loadMem(Seg, A + 4, 16);
    if (Fault)
      return;
    writeReg(I.Op1.R, Off, 32);
    loadSegment(Target, static_cast<uint16_t>(Sel));
    return;
  }
  default:
    assert(false);
  }
}

void Exec::exec() {
  switch (I.Op) {
  case Opcode::ADD: case Opcode::ADC: case Opcode::SUB: case Opcode::SBB:
  case Opcode::AND: case Opcode::OR: case Opcode::XOR: case Opcode::CMP:
  case Opcode::TEST:
    aluBinop();
    break;
  case Opcode::INC:
  case Opcode::DEC: {
    uint32_t A = load(I.Op1, Bits);
    if (Fault)
      break;
    uint32_t One = 1;
    uint32_t R = (I.Op == Opcode::INC ? A + 1 : A - 1) & maskOf(Bits);
    if (I.Op == Opcode::INC)
      setF(Flag::OF, ((A ^ R) & (One ^ R) & signBit(Bits)) != 0);
    else
      setF(Flag::OF, ((A ^ One) & (A ^ R) & signBit(Bits)) != 0);
    setF(Flag::AF, ((A ^ One ^ R) & 0x10) != 0);
    setSZP(R, Bits);
    store(I.Op1, R, Bits);
    break;
  }
  case Opcode::NOT: {
    uint32_t A = load(I.Op1, Bits);
    if (Fault)
      break;
    store(I.Op1, ~A & maskOf(Bits), Bits);
    break;
  }
  case Opcode::NEG: {
    uint32_t A = load(I.Op1, Bits);
    if (Fault)
      break;
    uint32_t R = (0 - A) & maskOf(Bits);
    setF(Flag::CF, (A & maskOf(Bits)) != 0);
    setF(Flag::OF, ((0 ^ A) & (0 ^ R) & signBit(Bits)) != 0);
    setF(Flag::AF, ((0 ^ A ^ R) & 0x10) != 0);
    setSZP(R, Bits);
    store(I.Op1, R, Bits);
    break;
  }
  case Opcode::MUL: case Opcode::IMUL: case Opcode::DIV: case Opcode::IDIV:
    mulDiv();
    break;
  case Opcode::SHL: case Opcode::SHR: case Opcode::SAR: case Opcode::ROL:
  case Opcode::ROR: case Opcode::RCL: case Opcode::RCR:
    shiftRotate();
    break;
  case Opcode::SHLD:
  case Opcode::SHRD:
    doubleShift();
    break;
  case Opcode::BT: case Opcode::BTS: case Opcode::BTR: case Opcode::BTC:
  case Opcode::BSF: case Opcode::BSR: case Opcode::BSWAP:
    bitOps();
    break;
  case Opcode::AAA: case Opcode::AAS: case Opcode::AAM: case Opcode::AAD:
  case Opcode::DAA: case Opcode::DAS:
    bcd();
    break;
  case Opcode::CWDE: case Opcode::CDQ: case Opcode::MOVSX:
  case Opcode::MOVZX:
    widen();
    break;
  case Opcode::SETcc:
    store(I.Op1, evalCond(I.CC) ? 1 : 0, 8);
    break;
  case Opcode::CMOVcc: {
    uint32_t W = I.Pfx.OpSize ? 16 : 32;
    uint32_t Src = load(I.Op2, W);
    if (Fault)
      break;
    if (evalCond(I.CC))
      writeReg(I.Op1.R, Src, W);
    break;
  }
  case Opcode::MOV: case Opcode::LEA: case Opcode::XCHG: case Opcode::XADD:
  case Opcode::CMPXCHG: case Opcode::XLAT:
    movFamily();
    break;
  case Opcode::MOVSR: case Opcode::PUSHSR: case Opcode::POPSR:
  case Opcode::LDS: case Opcode::LES: case Opcode::LSS: case Opcode::LFS:
  case Opcode::LGS:
    segmentOps();
    break;
  case Opcode::PUSH: case Opcode::POP: case Opcode::PUSHA: case Opcode::POPA:
  case Opcode::PUSHF: case Opcode::POPF: case Opcode::ENTER:
  case Opcode::LEAVE:
    pushPop();
    break;
  case Opcode::CLC: case Opcode::STC: case Opcode::CMC: case Opcode::CLD:
  case Opcode::STD: case Opcode::CLI: case Opcode::STI: case Opcode::LAHF:
  case Opcode::SAHF:
    flagOps();
    break;
  case Opcode::NOP:
    break;
  default:
    assert(false && "unreachable: filtered by hasSemantics");
  }
}

} // namespace

Status sem::fastStep(MachineState &M, const Instr &I, uint8_t Len) {
  if (!M.running())
    return M.St;

  if (!sem::hasSemantics(I)) {
    M.St = Status::Error;
    return M.St;
  }

  if (I.Op == Opcode::HLT) {
    M.Pc += Len;
    M.St = Status::Halted;
    return M.St;
  }

  Exec E(M, I, Len);
  if (I.Op == Opcode::CALL || I.Op == Opcode::JMP || I.Op == Opcode::Jcc ||
      I.Op == Opcode::JCXZ || I.Op == Opcode::LOOP ||
      I.Op == Opcode::LOOPZ || I.Op == Opcode::LOOPNZ ||
      I.Op == Opcode::RET) {
    E.flow();
  } else if (I.Op == Opcode::MOVS || I.Op == Opcode::CMPS ||
             I.Op == Opcode::STOS || I.Op == Opcode::LODS ||
             I.Op == Opcode::SCAS) {
    E.stringOp();
  } else {
    E.exec();
    if (!E.Fault)
      M.Pc += Len;
  }

  if (E.Fault)
    M.St = Status::Fault;
  return M.St;
}

Status sem::fastStepFetch(MachineState &M) {
  if (!M.running())
    return M.St;
  uint8_t CS = static_cast<uint8_t>(x86::SegReg::CS);
  if (!M.inSegment(CS, M.Pc)) {
    M.St = Status::Fault;
    return M.St;
  }
  uint8_t Window[15];
  size_t Avail = 0;
  for (; Avail < 15; ++Avail) {
    uint32_t Off = M.Pc + static_cast<uint32_t>(Avail);
    if (!M.inSegment(CS, Off))
      break;
    Window[Avail] = M.Mem.load8(M.physAddr(CS, Off));
  }
  std::optional<x86::Decoded> D = x86::fastDecode(Window, Avail);
  if (!D) {
    M.St = Status::Fault; // #UD
    return M.St;
  }
  return fastStep(M, D->I, D->Length);
}
