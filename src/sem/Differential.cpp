//===- sem/Differential.cpp -----------------------------------*- C++ -*-===//

#include "sem/Differential.h"

#include "sem/Cpu.h"
#include "sem/FastInterp.h"
#include "x86/Encoder.h"
#include "x86/Printer.h"

#include <cstdio>

using namespace rocksalt;
using namespace rocksalt::sem;
using rtl::MachineState;

namespace {

constexpr uint32_t CodeBase = 0x10000;
constexpr uint32_t CodeLimit = 0x0FFF;   // 4 KiB code window
constexpr uint32_t DataBase = 0x200000;
constexpr uint32_t DataLimit = 0xFFFF;   // 64 KiB data window

const char *statusName(rtl::Status S) {
  switch (S) {
  case rtl::Status::Running: return "running";
  case rtl::Status::Fault: return "fault";
  case rtl::Status::Halted: return "halted";
  case rtl::Status::Error: return "error";
  }
  return "?";
}

} // namespace

std::string sem::diffStates(const MachineState &A, const MachineState &B) {
  char Buf[128];
  if (A.St != B.St) {
    std::snprintf(Buf, sizeof(Buf), "status: %s vs %s", statusName(A.St),
                  statusName(B.St));
    return Buf;
  }
  if (A.Pc != B.Pc) {
    std::snprintf(Buf, sizeof(Buf), "pc: 0x%x vs 0x%x", A.Pc, B.Pc);
    return Buf;
  }
  static const char *RegNames[] = {"eax", "ecx", "edx", "ebx",
                                   "esp", "ebp", "esi", "edi"};
  for (int R = 0; R < 8; ++R)
    if (A.Regs[R] != B.Regs[R]) {
      std::snprintf(Buf, sizeof(Buf), "%s: 0x%x vs 0x%x", RegNames[R],
                    A.Regs[R], B.Regs[R]);
      return Buf;
    }
  static const char *FlagNames[] = {"CF", "PF", "AF", "ZF", "SF",
                                    "TF", "IF", "DF", "OF"};
  for (unsigned F = 0; F < rtl::NumFlags; ++F)
    if (A.Flags[F] != B.Flags[F]) {
      std::snprintf(Buf, sizeof(Buf), "%s: %d vs %d", FlagNames[F],
                    A.Flags[F], B.Flags[F]);
      return Buf;
    }
  for (int S = 0; S < 6; ++S) {
    if (A.SegVal[S] != B.SegVal[S] || A.SegBase[S] != B.SegBase[S] ||
        A.SegLimit[S] != B.SegLimit[S]) {
      std::snprintf(Buf, sizeof(Buf), "segment %d differs", S);
      return Buf;
    }
  }
  if (!(A.Mem == B.Mem))
    return "memory contents differ";
  return {};
}

void sem::randomizeState(MachineState &M, Rng &R) {
  using x86::SegReg;
  auto Idx = [](SegReg S) { return static_cast<uint8_t>(S); };
  M.SegBase[Idx(SegReg::CS)] = CodeBase;
  M.SegLimit[Idx(SegReg::CS)] = CodeLimit;
  for (SegReg S :
       {SegReg::DS, SegReg::SS, SegReg::ES, SegReg::FS, SegReg::GS}) {
    M.SegBase[Idx(S)] = DataBase;
    M.SegLimit[Idx(S)] = DataLimit;
  }
  for (uint8_t S = 0; S < 6; ++S)
    M.SegVal[S] = static_cast<uint16_t>(0x10 + 8 * S);

  // Registers: biased toward in-segment offsets so memory operands
  // usually hit, with occasional wild values to exercise faulting.
  for (int I = 0; I < 8; ++I)
    M.Regs[I] = R.chance(3, 4)
                    ? static_cast<uint32_t>(R.below(DataLimit - 0x200))
                    : static_cast<uint32_t>(R.next());
  M.Regs[4] = static_cast<uint32_t>(R.range(0x400, DataLimit - 0x400)) & ~3u;

  for (unsigned F = 0; F < rtl::NumFlags; ++F)
    M.Flags[F] = R.flip();

  // Seed some data so loads see nonzero bytes.
  for (int I = 0; I < 64; ++I)
    M.Mem.store8(DataBase + static_cast<uint32_t>(R.below(DataLimit)),
                 static_cast<uint8_t>(R.next()));
  M.Pc = 0;
  M.St = rtl::Status::Running;
}

DiffReport sem::runDifferential(uint64_t Instances, uint64_t Seed,
                                const x86::GenOptions &Opts) {
  Rng R(Seed);
  DiffReport Rep;

  while (Rep.Instances < Instances) {
    x86::Instr I = x86::randomInstr(R, Opts);
    std::optional<std::vector<uint8_t>> Bytes = x86::encode(I);
    if (!Bytes || Bytes->size() > CodeLimit)
      continue;

    MachineState Proto;
    randomizeState(Proto, R);
    Proto.Mem.storeBytes(CodeBase, *Bytes);

    Cpu Rtl;
    Rtl.M = Proto;
    Rtl.step();

    MachineState Direct = Proto;
    fastStepFetch(Direct);

    ++Rep.Instances;
    std::string Diff = diffStates(Rtl.M, Direct);
    if (!Diff.empty()) {
      ++Rep.Mismatches;
      if (Rep.FirstMismatch.empty())
        Rep.FirstMismatch = x86::printInstr(I) + ": " + Diff;
    }
  }
  return Rep;
}
