//===- sem/Translate.h - x86 to RTL translation ----------------*- C++ -*-===//
///
/// \file
/// Gives meaning to x86 instructions by compiling their abstract syntax
/// into RTL sequences (paper section 2.3, Figure 4). Each conv_* function
/// corresponds to one instruction family; the translation is pure and the
/// resulting straight-line RTL program is executed by rtl::execProgram.
///
/// Fidelity notes (deviations documented in DESIGN.md):
///  * Flags Intel leaves undefined are pinned to the behavior of common
///    hardware instead of `choose`, so that differential validation
///    against the independent FastInterp is exact (the paper's oracle
///    produced false positives; ours produces none).
///  * Writing a segment register (MOV/POP to sreg, LDS family) models the
///    sandbox-escape danger directly: the segment's base becomes 0 and
///    its limit 2^32-1. A checker that wrongly admits such code is caught
///    by the SandboxMonitor.
///  * IN/OUT/INT/INTO/IRET and far control transfers parse but translate
///    to the RTL `error` instruction (outside the modeled semantics).
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SEM_TRANSLATE_H
#define ROCKSALT_SEM_TRANSLATE_H

#include "rtl/Rtl.h"
#include "x86/Instr.h"

namespace rocksalt {
namespace sem {

/// A translated instruction body.
struct Translation {
  rtl::RtlProgram Prog;
  uint32_t NumVars = 0;
};

/// Translates one decoded instruction (of encoded length \p Len, needed
/// to compute the fall-through PC) into RTL. Instructions outside the
/// modeled semantics yield a program that raises the RTL error.
Translation translate(const x86::Instr &I, uint8_t Len);

/// True iff the instruction family has full RTL semantics (rather than
/// the error stub).
bool hasSemantics(const x86::Instr &I);

} // namespace sem
} // namespace rocksalt

#endif // ROCKSALT_SEM_TRANSLATE_H
