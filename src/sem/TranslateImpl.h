//===- sem/TranslateImpl.h - Translation internals -------------*- C++ -*-===//
///
/// \file
/// Private helpers shared by the Translate*.cpp files: the RTL builder
/// (the paper's translation monad, section 2.3), operand load/store, the
/// segment-selection rule, and the flag-computation utilities.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SEM_TRANSLATEIMPL_H
#define ROCKSALT_SEM_TRANSLATEIMPL_H

#include "sem/Translate.h"

#include <cassert>

namespace rocksalt {
namespace sem {

using rtl::ArithOp;
using rtl::Flag;
using rtl::Loc;
using rtl::NoVar;
using rtl::RtlInstr;
using rtl::TestOp;
using rtl::Var;

/// Emits RTL instructions, allocating fresh locals; plays the role of the
/// paper's translation monad. A current guard can be installed so that a
/// whole region executes conditionally.
class Builder {
  rtl::RtlProgram Prog;
  Var Next = 0;
  Var CurGuard = NoVar;

  RtlInstr &emit(RtlInstr I) {
    if (CurGuard != NoVar && I.Guard == NoVar)
      I.Guard = CurGuard;
    Prog.push_back(I);
    return Prog.back();
  }

public:
  Var fresh() { return Next++; }

  Var imm(uint32_t Width, uint64_t V) {
    Var D = fresh();
    emit(RtlInstr::imm(D, Width, V));
    return D;
  }
  Var arith(ArithOp Op, Var A, Var B) {
    Var D = fresh();
    emit(RtlInstr::arith(Op, D, A, B));
    return D;
  }
  Var test(TestOp Op, Var A, Var B) {
    Var D = fresh();
    emit(RtlInstr::test(Op, D, A, B));
    return D;
  }
  Var getLoc(Loc L) {
    Var D = fresh();
    emit(RtlInstr::getLoc(D, L));
    return D;
  }
  void setLoc(Loc L, Var V) { emit(RtlInstr::setLoc(L, V)); }
  Var getByte(uint8_t Seg, Var Addr) {
    Var D = fresh();
    emit(RtlInstr::getByte(D, Seg, Addr));
    return D;
  }
  void setByte(uint8_t Seg, Var Addr, Var Val) {
    emit(RtlInstr::setByte(Seg, Addr, Val));
  }
  Var castU(uint32_t Width, Var V) {
    Var D = fresh();
    emit(RtlInstr::castU(D, Width, V));
    return D;
  }
  Var castS(uint32_t Width, Var V) {
    Var D = fresh();
    emit(RtlInstr::castS(D, Width, V));
    return D;
  }
  Var select(Var C, Var A, Var B) {
    Var D = fresh();
    emit(RtlInstr::select(D, C, A, B));
    return D;
  }
  Var choose(uint32_t Width) {
    Var D = fresh();
    emit(RtlInstr::choose(D, Width));
    return D;
  }
  void error() { emit(RtlInstr::error()); }
  void fault() { emit(RtlInstr::fault()); }
  void trap() { emit(RtlInstr::trap()); }

  /// Installs \p G (ANDed with any enclosing guard) for the lifetime of
  /// the returned scope object.
  class GuardScope {
    Builder &B;
    Var Saved;

  public:
    GuardScope(Builder &B_, Var G) : B(B_), Saved(B_.CurGuard) {
      if (Saved != NoVar)
        G = B.arith(ArithOp::And, Saved, G);
      B.CurGuard = G;
    }
    ~GuardScope() { B.CurGuard = Saved; }
  };

  // --- small conveniences ---------------------------------------------------
  Var add(Var A, Var B) { return arith(ArithOp::Add, A, B); }
  Var sub(Var A, Var B) { return arith(ArithOp::Sub, A, B); }
  Var band(Var A, Var B) { return arith(ArithOp::And, A, B); }
  Var bor(Var A, Var B) { return arith(ArithOp::Or, A, B); }
  Var bxor(Var A, Var B) { return arith(ArithOp::Xor, A, B); }
  Var shl(Var A, Var B) { return arith(ArithOp::Shl, A, B); }
  Var shru(Var A, Var B) { return arith(ArithOp::Shru, A, B); }
  Var eq(Var A, Var B) { return test(TestOp::Eq, A, B); }
  Var ltu(Var A, Var B) { return test(TestOp::Ltu, A, B); }
  Var lts(Var A, Var B) { return test(TestOp::Lts, A, B); }
  Var notBit(Var A) { return bxor(A, imm(1, 1)); }

  Translation take() {
    Translation T;
    T.Prog = std::move(Prog);
    T.NumVars = Next;
    return T;
  }
};

/// Per-instruction translation context.
struct Ctx {
  Builder B;
  const x86::Instr &I;
  uint8_t Len;
  uint32_t Bits;          ///< effective operand size in bits (8/16/32)
  bool PcHandled = false; ///< conv set the PC itself (control flow)

  explicit Ctx(const x86::Instr &I_, uint8_t Len_)
      : I(I_), Len(Len_), Bits(x86::operandBits(I_.Pfx, I_.W)) {}
};

//===----------------------------------------------------------------------===//
// Segment selection, effective addresses, operand access (Translate.cpp).
//===----------------------------------------------------------------------===//

/// Segment index for a memory operand: the override if present, SS when
/// the base register is EBP or ESP, DS otherwise (the paper's
/// get_segment_op rule).
uint8_t segmentFor(const x86::Instr &I, const x86::Addr &A);

/// Computes the 32-bit effective address of \p A.
Var effAddr(Ctx &C, const x86::Addr &A);

/// Loads Bits-wide little-endian data at segment offset \p Addr.
Var loadMem(Ctx &C, uint8_t Seg, Var Addr, uint32_t Bits);

/// Stores Bits-wide \p Val at segment offset \p Addr.
void storeMem(Ctx &C, uint8_t Seg, Var Addr, Var Val, uint32_t Bits);

/// Reads a register operand at the given width. For 8-bit widths the x86
/// sub-register rule applies (encodings 4-7 are AH/CH/DH/BH).
Var loadReg(Ctx &C, x86::Reg R, uint32_t Bits);
void storeReg(Ctx &C, x86::Reg R, Var V, uint32_t Bits);

/// Loads/stores a full operand (the paper's load_op / set_op specialized
/// to the prefix and mode).
Var loadOperand(Ctx &C, const x86::Operand &O, uint32_t Bits);
void storeOperand(Ctx &C, const x86::Operand &O, Var V, uint32_t Bits);

/// Push/pop through SS at the current operand size.
void pushValue(Ctx &C, Var V, uint32_t Bits);
Var popValue(Ctx &C, uint32_t Bits);

//===----------------------------------------------------------------------===//
// Flags (Translate.cpp).
//===----------------------------------------------------------------------===//

Var getFlag(Ctx &C, Flag F);
void setFlag(Ctx &C, Flag F, Var V);
void setFlagConst(Ctx &C, Flag F, bool V);

/// SF/ZF/PF from a result of width \p Bits.
void setSZP(Ctx &C, Var Res, uint32_t Bits);

/// Evaluates an x86 condition code from the flags (1-bit result).
Var evalCond(Ctx &C, x86::Cond CC);

/// Fall-through PC (start PC + instruction length).
Var nextPc(Ctx &C);

//===----------------------------------------------------------------------===//
// Family translators.
//===----------------------------------------------------------------------===//

// TranslateArith.cpp
void convAluBinop(Ctx &C);   // ADD/ADC/SUB/SBB/AND/OR/XOR/CMP/TEST
void convIncDec(Ctx &C);
void convNotNeg(Ctx &C);
void convMulDiv(Ctx &C);     // MUL/IMUL/DIV/IDIV
void convShiftRotate(Ctx &C); // SHL/SHR/SAR/ROL/ROR/RCL/RCR
void convDoubleShift(Ctx &C); // SHLD/SHRD
void convBitOps(Ctx &C);     // BT/BTS/BTR/BTC/BSF/BSR/BSWAP
void convBcd(Ctx &C);        // AAA/AAS/AAM/AAD/DAA/DAS
void convWiden(Ctx &C);      // CWDE/CDQ/MOVSX/MOVZX

// TranslateFlow.cpp
void convJmpCall(Ctx &C);
void convJcc(Ctx &C);
void convLoopJcxz(Ctx &C);
void convRet(Ctx &C);
void convSetCmov(Ctx &C);
void convPushPop(Ctx &C);    // incl. PUSHA/POPA/PUSHF/POPF/ENTER/LEAVE
void convFlagOps(Ctx &C);    // CLC/STC/CMC/CLD/STD/CLI/STI/LAHF/SAHF

// TranslateString.cpp
void convString(Ctx &C);     // MOVS/CMPS/STOS/LODS/SCAS (+REP)
void convXlat(Ctx &C);

// Translate.cpp
void convMov(Ctx &C);        // MOV/LEA/XCHG/XADD/CMPXCHG
void convSegment(Ctx &C);    // MOVSR/PUSHSR/POPSR/LDS family

} // namespace sem
} // namespace rocksalt

#endif // ROCKSALT_SEM_TRANSLATEIMPL_H
