//===- sem/Differential.h - Model validation harness -----------*- C++ -*-===//
///
/// \file
/// The validation harness of paper section 2.5, with the substitution
/// described in DESIGN.md: instead of comparing the extracted simulator
/// against real hardware through Pin, we compare the RTL pipeline
/// (decode → translate → interpret) against the independently written
/// direct interpreter (FastInterp), instruction instance by instruction
/// instance, over generatively fuzzed encodings.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SEM_DIFFERENTIAL_H
#define ROCKSALT_SEM_DIFFERENTIAL_H

#include "rtl/Machine.h"
#include "x86/InstrGen.h"

#include <string>

namespace rocksalt {
namespace sem {

/// Result of one differential campaign.
struct DiffReport {
  uint64_t Instances = 0;   ///< instruction instances executed
  uint64_t Mismatches = 0;  ///< state disagreements found
  std::string FirstMismatch; ///< human-readable description of the first
};

/// Compares two machine states; returns an empty string when equal, or a
/// description of the first difference.
std::string diffStates(const rtl::MachineState &A,
                       const rtl::MachineState &B);

/// Runs \p Instances random instruction instances (drawn with \p Opts)
/// through both implementations, starting each from a randomized but
/// identical machine state, and compares the resulting states.
DiffReport runDifferential(uint64_t Instances, uint64_t Seed,
                           const x86::GenOptions &Opts = {});

/// Randomizes registers/flags and the sandbox layout of \p M; both
/// engines start from a copy of this state.
void randomizeState(rtl::MachineState &M, Rng &R);

} // namespace sem
} // namespace rocksalt

#endif // ROCKSALT_SEM_DIFFERENTIAL_H
