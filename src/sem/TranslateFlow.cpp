//===- sem/TranslateFlow.cpp - Control flow, stack, flags ------*- C++ -*-===//
//
// Control transfers (near only — far transfers are outside the model),
// conditional data operations, stack instructions, and flag management.
//
//===----------------------------------------------------------------------===//

#include "sem/TranslateImpl.h"

using namespace rocksalt;
using namespace rocksalt::sem;
using x86::Instr;
using x86::Opcode;

//===----------------------------------------------------------------------===//
// Jumps and calls.
//===----------------------------------------------------------------------===//

void sem::convJmpCall(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;
  C.PcHandled = true;

  Var Next = nextPc(C);
  Var Target;
  if (I.Absolute) {
    // Through a register or memory: the operand holds the target offset.
    Target = loadOperand(C, I.Op1, 32);
  } else {
    // PC-relative: displacement from the fall-through address.
    Target = B.add(Next, B.imm(32, I.Op1.ImmVal));
  }
  if (I.Op == Opcode::CALL)
    pushValue(C, Next, 32);
  B.setLoc(Loc::pc(), Target);
}

void sem::convJcc(Ctx &C) {
  Builder &B = C.B;
  C.PcHandled = true;
  Var Next = nextPc(C);
  Var Target = B.add(Next, B.imm(32, C.I.Op1.ImmVal));
  Var Cond = evalCond(C, C.I.CC);
  B.setLoc(Loc::pc(), B.select(Cond, Target, Next));
}

void sem::convLoopJcxz(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;
  C.PcHandled = true;

  Var Next = nextPc(C);
  Var Target = B.add(Next, B.imm(32, I.Op1.ImmVal));
  Var Ecx = B.getLoc(Loc::reg(1));

  Var Cond;
  if (I.Op == Opcode::JCXZ) {
    Cond = B.eq(Ecx, B.imm(32, 0));
  } else {
    Var NewEcx = B.sub(Ecx, B.imm(32, 1));
    B.setLoc(Loc::reg(1), NewEcx);
    Cond = B.notBit(B.eq(NewEcx, B.imm(32, 0)));
    if (I.Op == Opcode::LOOPZ)
      Cond = B.band(Cond, getFlag(C, Flag::ZF));
    else if (I.Op == Opcode::LOOPNZ)
      Cond = B.band(Cond, B.notBit(getFlag(C, Flag::ZF)));
  }
  B.setLoc(Loc::pc(), B.select(Cond, Target, Next));
}

void sem::convRet(Ctx &C) {
  Builder &B = C.B;
  C.PcHandled = true;
  Var Ret = popValue(C, 32);
  if (C.I.Op1.isImm()) {
    Var Esp = B.getLoc(Loc::reg(4));
    B.setLoc(Loc::reg(4), B.add(Esp, B.imm(32, C.I.Op1.ImmVal & 0xFFFF)));
  }
  B.setLoc(Loc::pc(), Ret);
}

//===----------------------------------------------------------------------===//
// SETcc / CMOVcc.
//===----------------------------------------------------------------------===//

void sem::convSetCmov(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;
  Var Cond = evalCond(C, I.CC);
  if (I.Op == Opcode::SETcc) {
    storeOperand(C, I.Op1, B.castU(8, Cond), 8);
    return;
  }
  // CMOVcc: the load happens unconditionally (as on hardware); only the
  // register write is conditional.
  uint32_t Bits = I.Pfx.OpSize ? 16 : 32;
  Var Src = loadOperand(C, I.Op2, Bits);
  Var Old = loadReg(C, I.Op1.R, Bits);
  storeReg(C, I.Op1.R, B.select(Cond, Src, Old), Bits);
}

//===----------------------------------------------------------------------===//
// Stack operations.
//===----------------------------------------------------------------------===//

namespace {

/// Flag layout in EFLAGS bit positions.
struct FlagBit {
  Flag F;
  uint32_t Pos;
};
constexpr FlagBit EflagsLayout[] = {
    {Flag::CF, 0}, {Flag::PF, 2},  {Flag::AF, 4},  {Flag::ZF, 6},
    {Flag::SF, 7}, {Flag::TF, 8},  {Flag::IF, 9},  {Flag::DF, 10},
    {Flag::OF, 11}};

Var composeEflags(Ctx &C) {
  Builder &B = C.B;
  Var V = B.imm(32, 0x2); // bit 1 is always set
  for (const FlagBit &FB : EflagsLayout) {
    Var Bit = B.castU(32, getFlag(C, FB.F));
    V = B.bor(V, B.shl(Bit, B.imm(32, FB.Pos)));
  }
  return V;
}

void decomposeEflags(Ctx &C, Var V) {
  Builder &B = C.B;
  for (const FlagBit &FB : EflagsLayout) {
    Var Bit = B.castU(1, B.shru(V, B.imm(32, FB.Pos)));
    setFlag(C, FB.F, Bit);
  }
}

} // namespace

void sem::convPushPop(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;
  uint32_t Bits = I.Pfx.OpSize ? 16 : 32;

  switch (I.Op) {
  case Opcode::PUSH: {
    Var V = loadOperand(C, I.Op1, Bits);
    pushValue(C, V, Bits);
    return;
  }
  case Opcode::POP: {
    Var V = popValue(C, Bits);
    storeOperand(C, I.Op1, V, Bits);
    return;
  }
  case Opcode::PUSHA: {
    // Push eax, ecx, edx, ebx, original esp, ebp, esi, edi.
    Var OrigEsp = B.getLoc(Loc::reg(4));
    for (uint8_t R = 0; R < 8; ++R) {
      Var V = R == 4 ? OrigEsp : B.getLoc(Loc::reg(R));
      pushValue(C, Bits == 32 ? V : B.castU(16, V), Bits);
    }
    return;
  }
  case Opcode::POPA: {
    // Pop edi..eax, skipping the esp slot.
    for (int R = 7; R >= 0; --R) {
      Var V = popValue(C, Bits);
      if (R == 4)
        continue; // discard the saved esp
      storeReg(C, x86::regFromEncoding(uint8_t(R)), V, Bits);
    }
    return;
  }
  case Opcode::PUSHF: {
    Var V = composeEflags(C);
    pushValue(C, Bits == 32 ? V : B.castU(16, V), Bits);
    return;
  }
  case Opcode::POPF: {
    Var V = popValue(C, Bits);
    decomposeEflags(C, B.castU(32, V));
    return;
  }
  case Opcode::ENTER: {
    // Only nesting level 0 is modeled (checked by hasSemantics).
    Var Ebp = B.getLoc(Loc::reg(5));
    pushValue(C, Ebp, 32);
    Var NewEbp = B.getLoc(Loc::reg(4));
    B.setLoc(Loc::reg(5), NewEbp);
    Var Frame = B.imm(32, I.Op1.ImmVal & 0xFFFF);
    B.setLoc(Loc::reg(4), B.sub(NewEbp, Frame));
    return;
  }
  case Opcode::LEAVE: {
    B.setLoc(Loc::reg(4), B.getLoc(Loc::reg(5)));
    Var V = popValue(C, 32);
    B.setLoc(Loc::reg(5), V);
    return;
  }
  default:
    B.error();
  }
}

//===----------------------------------------------------------------------===//
// Direct flag manipulation.
//===----------------------------------------------------------------------===//

void sem::convFlagOps(Ctx &C) {
  Builder &B = C.B;
  switch (C.I.Op) {
  case Opcode::CLC: setFlagConst(C, Flag::CF, false); return;
  case Opcode::STC: setFlagConst(C, Flag::CF, true); return;
  case Opcode::CMC: setFlag(C, Flag::CF, B.notBit(getFlag(C, Flag::CF))); return;
  case Opcode::CLD: setFlagConst(C, Flag::DF, false); return;
  case Opcode::STD: setFlagConst(C, Flag::DF, true); return;
  case Opcode::CLI: setFlagConst(C, Flag::IF, false); return;
  case Opcode::STI: setFlagConst(C, Flag::IF, true); return;
  case Opcode::LAHF: {
    // AH := SF:ZF:0:AF:0:PF:1:CF.
    Var V = B.imm(8, 0x02);
    auto Put = [&](Flag F, uint32_t Pos) {
      V = B.bor(V, B.shl(B.castU(8, getFlag(C, F)), B.imm(8, Pos)));
    };
    Put(Flag::CF, 0);
    Put(Flag::PF, 2);
    Put(Flag::AF, 4);
    Put(Flag::ZF, 6);
    Put(Flag::SF, 7);
    storeReg(C, x86::regFromEncoding(4) /* AH */, V, 8);
    return;
  }
  case Opcode::SAHF: {
    Var Ah = loadReg(C, x86::regFromEncoding(4) /* AH */, 8);
    auto Take = [&](Flag F, uint32_t Pos) {
      setFlag(C, F, B.castU(1, B.shru(Ah, B.imm(8, Pos))));
    };
    Take(Flag::CF, 0);
    Take(Flag::PF, 2);
    Take(Flag::AF, 4);
    Take(Flag::ZF, 6);
    Take(Flag::SF, 7);
    return;
  }
  default:
    B.error();
  }
}
