//===- sem/Cpu.h - Decode/translate/execute simulator ----------*- C++ -*-===//
///
/// \file
/// The executable x86 model: fetches bytes at CS:PC, decodes them
/// (grammar or fast decoder), translates to RTL, and runs the RTL
/// interpreter — the extracted-simulator role of paper section 2.5.
///
/// The PC held in the machine state is a *code-segment offset*; fetch
/// checks it against the CS limit, so control transfers outside the
/// sandboxed code region fault exactly as segmented hardware would.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SEM_CPU_H
#define ROCKSALT_SEM_CPU_H

#include "rtl/Interp.h"
#include "rtl/Machine.h"
#include "x86/FastDecoder.h"
#include "x86/GrammarDecoder.h"

#include <optional>

namespace rocksalt {
namespace sem {

/// Which decoder drives the simulator.
enum class DecoderKind {
  Fast,   ///< table-driven production decoder
  Grammar ///< derivative-based reference decoder (slow, for validation)
};

class Cpu {
public:
  rtl::MachineState M;
  DecoderKind Decoder = DecoderKind::Fast;
  rtl::AccessHooks Hooks;

  /// The most recent successfully decoded instruction (diagnostics and
  /// the sandbox monitor read this).
  std::optional<x86::Decoded> LastDecoded;

  Cpu() = default;
  explicit Cpu(uint64_t OracleSeed) : M(OracleSeed) {}

  /// Executes one instruction. Returns the machine status afterwards; an
  /// undecodable byte sequence faults (#UD).
  rtl::Status step();

  /// Runs until a non-Running status or \p MaxSteps instructions.
  /// Returns the number of instructions retired.
  uint64_t run(uint64_t MaxSteps);

  /// Loads \p Code at the physical base of CS and configures CS/DS/SS/ES
  /// limits for a flat [CodeBase, CodeBase+CodeSize) code sandbox and
  /// [DataBase, DataBase+DataSize) data sandbox. A convenience used by
  /// examples and tests; production setups configure M directly.
  void configureSandbox(uint32_t CodeBase, uint32_t CodeSize,
                        uint32_t DataBase, uint32_t DataSize,
                        const std::vector<uint8_t> &Code);
};

} // namespace sem
} // namespace rocksalt

#endif // ROCKSALT_SEM_CPU_H
