//===- sem/Cpu.cpp --------------------------------------------*- C++ -*-===//

#include "sem/Cpu.h"

#include "sem/Translate.h"

using namespace rocksalt;
using namespace rocksalt::sem;
using rtl::Status;

Status Cpu::step() {
  if (!M.running())
    return M.St;

  uint8_t CS = static_cast<uint8_t>(x86::SegReg::CS);
  uint32_t Pc = M.Pc;
  if (!M.inSegment(CS, Pc)) {
    M.St = Status::Fault;
    return M.St;
  }

  // Fetch up to 15 bytes, stopping at the segment limit.
  uint8_t Window[15];
  size_t Avail = 0;
  for (; Avail < 15; ++Avail) {
    uint32_t Off = Pc + static_cast<uint32_t>(Avail);
    if (!M.inSegment(CS, Off))
      break;
    Window[Avail] = M.Mem.load8(M.physAddr(CS, Off));
  }

  std::optional<x86::Decoded> D = Decoder == DecoderKind::Fast
                                      ? x86::fastDecode(Window, Avail)
                                      : x86::grammarDecode(Window, Avail);
  if (!D) {
    LastDecoded.reset();
    M.St = Status::Fault; // #UD
    return M.St;
  }
  LastDecoded = D;

  Translation T = translate(D->I, D->Length);
  return rtl::execProgram(M, T.Prog, T.NumVars, Hooks);
}

uint64_t Cpu::run(uint64_t MaxSteps) {
  uint64_t Steps = 0;
  while (Steps < MaxSteps && M.running()) {
    step();
    ++Steps;
  }
  return Steps;
}

void Cpu::configureSandbox(uint32_t CodeBase, uint32_t CodeSize,
                           uint32_t DataBase, uint32_t DataSize,
                           const std::vector<uint8_t> &Code) {
  using x86::SegReg;
  auto Idx = [](SegReg S) { return static_cast<uint8_t>(S); };
  M.SegBase[Idx(SegReg::CS)] = CodeBase;
  M.SegLimit[Idx(SegReg::CS)] = CodeSize ? CodeSize - 1 : 0;
  for (SegReg S : {SegReg::DS, SegReg::SS, SegReg::ES, SegReg::FS,
                   SegReg::GS}) {
    M.SegBase[Idx(S)] = DataBase;
    M.SegLimit[Idx(S)] = DataSize ? DataSize - 1 : 0;
  }
  // Distinct selector values so tests can observe clobbering.
  for (uint8_t S = 0; S < 6; ++S)
    M.SegVal[S] = static_cast<uint16_t>(0x10 + 8 * S);
  M.Mem.storeBytes(CodeBase, Code);
  M.Pc = 0;
  M.Regs[4] = DataSize; // ESP at the top of the data region
  M.St = Status::Running;
}
