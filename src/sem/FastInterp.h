//===- sem/FastInterp.h - Independent direct interpreter -------*- C++ -*-===//
///
/// \file
/// A second, directly coded interpreter for the modeled instruction
/// subset, operating on the same machine-state type as the RTL pipeline
/// but sharing none of its semantic code. It is the validation
/// counterpart the paper obtains from real hardware via Pin (section
/// 2.5): the differential harness (sem/Differential.h) runs both
/// implementations on generatively fuzzed instruction streams and
/// compares the full machine state after every step.
///
/// Effect ordering (which partial effects precede a mid-instruction
/// fault) deliberately mirrors the RTL translation so that traces agree
/// byte for byte.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SEM_FASTINTERP_H
#define ROCKSALT_SEM_FASTINTERP_H

#include "rtl/Machine.h"
#include "x86/GrammarDecoder.h"

namespace rocksalt {
namespace sem {

/// Executes one already-decoded instruction directly against \p M.
/// Returns the machine status afterwards.
rtl::Status fastStep(rtl::MachineState &M, const x86::Instr &I,
                     uint8_t Len);

/// Fetch + fastDecode + fastStep. Faults on undecodable bytes (#UD).
rtl::Status fastStepFetch(rtl::MachineState &M);

} // namespace sem
} // namespace rocksalt

#endif // ROCKSALT_SEM_FASTINTERP_H
