//===- sem/Translate.cpp - Core translation machinery ----------*- C++ -*-===//
//
// Operand access, segment selection, flag helpers, the top-level
// dispatcher, and the move/exchange and segment-register families.
//
//===----------------------------------------------------------------------===//

#include "sem/TranslateImpl.h"

using namespace rocksalt;
using namespace rocksalt::sem;
using x86::Instr;
using x86::Opcode;
using x86::Operand;

//===----------------------------------------------------------------------===//
// Segments and addresses.
//===----------------------------------------------------------------------===//

uint8_t sem::segmentFor(const Instr &I, const x86::Addr &A) {
  if (I.Pfx.SegOverride)
    return x86::encodingOf(*I.Pfx.SegOverride);
  if (A.Base && (*A.Base == x86::Reg::EBP || *A.Base == x86::Reg::ESP))
    return x86::encodingOf(x86::SegReg::SS);
  return x86::encodingOf(x86::SegReg::DS);
}

Var sem::effAddr(Ctx &C, const x86::Addr &A) {
  Builder &B = C.B;
  Var Sum = B.imm(32, A.Disp);
  if (A.Base)
    Sum = B.add(Sum, B.getLoc(Loc::reg(x86::encodingOf(*A.Base))));
  if (A.Index) {
    Var Idx = B.getLoc(Loc::reg(x86::encodingOf(A.Index->second)));
    Var Sh = B.imm(32, static_cast<uint32_t>(A.Index->first));
    Sum = B.add(Sum, B.shl(Idx, Sh));
  }
  return Sum;
}

Var sem::loadMem(Ctx &C, uint8_t Seg, Var Addr, uint32_t Bits) {
  Builder &B = C.B;
  assert(Bits % 8 == 0 && "byte-granular loads only");
  Var Out = B.castU(Bits, B.getByte(Seg, Addr));
  for (uint32_t Off = 1; Off < Bits / 8; ++Off) {
    Var A = B.add(Addr, B.imm(32, Off));
    Var Byte = B.castU(Bits, B.getByte(Seg, A));
    Out = B.bor(Out, B.shl(Byte, B.imm(Bits, 8 * Off)));
  }
  return Out;
}

void sem::storeMem(Ctx &C, uint8_t Seg, Var Addr, Var Val, uint32_t Bits) {
  Builder &B = C.B;
  assert(Bits % 8 == 0 && "byte-granular stores only");
  for (uint32_t Off = 0; Off < Bits / 8; ++Off) {
    Var A = Off == 0 ? Addr : B.add(Addr, B.imm(32, Off));
    Var Byte = B.castU(8, B.shru(Val, B.imm(Bits, 8 * Off)));
    B.setByte(Seg, A, Byte);
  }
}

//===----------------------------------------------------------------------===//
// Registers (including the 8-bit AH/CH/DH/BH sub-register rule).
//===----------------------------------------------------------------------===//

Var sem::loadReg(Ctx &C, x86::Reg R, uint32_t Bits) {
  Builder &B = C.B;
  uint8_t Enc = x86::encodingOf(R);
  if (Bits == 8 && Enc >= 4) {
    // Encodings 4-7 address AH/CH/DH/BH: bits 8..15 of regs 0-3.
    Var Full = B.getLoc(Loc::reg(Enc - 4));
    return B.castU(8, B.shru(Full, B.imm(32, 8)));
  }
  Var Full = B.getLoc(Loc::reg(Enc));
  return Bits == 32 ? Full : B.castU(Bits, Full);
}

void sem::storeReg(Ctx &C, x86::Reg R, Var V, uint32_t Bits) {
  Builder &B = C.B;
  uint8_t Enc = x86::encodingOf(R);
  if (Bits == 32) {
    B.setLoc(Loc::reg(Enc), V);
    return;
  }
  if (Bits == 8 && Enc >= 4) {
    Var Full = B.getLoc(Loc::reg(Enc - 4));
    Var Cleared = B.band(Full, B.imm(32, 0xFFFF00FF));
    Var Ins = B.shl(B.castU(32, V), B.imm(32, 8));
    B.setLoc(Loc::reg(Enc - 4), B.bor(Cleared, Ins));
    return;
  }
  uint32_t Mask = Bits == 8 ? 0xFFFFFF00 : 0xFFFF0000;
  Var Full = B.getLoc(Loc::reg(Enc));
  Var Cleared = B.band(Full, B.imm(32, Mask));
  B.setLoc(Loc::reg(Enc), B.bor(Cleared, B.castU(32, V)));
}

Var sem::loadOperand(Ctx &C, const Operand &O, uint32_t Bits) {
  Builder &B = C.B;
  switch (O.K) {
  case Operand::Kind::Imm:
    return B.imm(Bits, O.ImmVal);
  case Operand::Kind::Reg:
    return loadReg(C, O.R, Bits);
  case Operand::Kind::Mem:
    return loadMem(C, segmentFor(C.I, O.A), effAddr(C, O.A), Bits);
  case Operand::Kind::None:
    break;
  }
  assert(false && "loadOperand on None");
  return B.imm(Bits, 0);
}

void sem::storeOperand(Ctx &C, const Operand &O, Var V, uint32_t Bits) {
  switch (O.K) {
  case Operand::Kind::Reg:
    storeReg(C, O.R, V, Bits);
    return;
  case Operand::Kind::Mem:
    storeMem(C, segmentFor(C.I, O.A), effAddr(C, O.A), V, Bits);
    return;
  default:
    assert(false && "storeOperand on non-location");
  }
}

//===----------------------------------------------------------------------===//
// Stack.
//===----------------------------------------------------------------------===//

void sem::pushValue(Ctx &C, Var V, uint32_t Bits) {
  Builder &B = C.B;
  uint8_t SS = x86::encodingOf(x86::SegReg::SS);
  Var Esp = B.getLoc(Loc::reg(4));
  Var NewEsp = B.sub(Esp, B.imm(32, Bits / 8));
  storeMem(C, SS, NewEsp, V, Bits);
  B.setLoc(Loc::reg(4), NewEsp);
}

Var sem::popValue(Ctx &C, uint32_t Bits) {
  Builder &B = C.B;
  uint8_t SS = x86::encodingOf(x86::SegReg::SS);
  Var Esp = B.getLoc(Loc::reg(4));
  Var V = loadMem(C, SS, Esp, Bits);
  B.setLoc(Loc::reg(4), B.add(Esp, B.imm(32, Bits / 8)));
  return V;
}

//===----------------------------------------------------------------------===//
// Flags.
//===----------------------------------------------------------------------===//

Var sem::getFlag(Ctx &C, Flag F) { return C.B.getLoc(Loc::flag(F)); }
void sem::setFlag(Ctx &C, Flag F, Var V) { C.B.setLoc(Loc::flag(F), V); }
void sem::setFlagConst(Ctx &C, Flag F, bool V) {
  setFlag(C, F, C.B.imm(1, V));
}

void sem::setSZP(Ctx &C, Var Res, uint32_t Bits) {
  Builder &B = C.B;
  // SF: most significant bit of the result.
  Var Sf = B.castU(1, B.shru(Res, B.imm(Bits, Bits - 1)));
  setFlag(C, Flag::SF, Sf);
  // ZF.
  setFlag(C, Flag::ZF, B.eq(Res, B.imm(Bits, 0)));
  // PF: even parity of the low 8 bits.
  Var Low = B.castU(8, Res);
  Var X = B.bxor(Low, B.shru(Low, B.imm(8, 4)));
  X = B.bxor(X, B.shru(X, B.imm(8, 2)));
  X = B.bxor(X, B.shru(X, B.imm(8, 1)));
  setFlag(C, Flag::PF, B.notBit(B.castU(1, X)));
}

Var sem::evalCond(Ctx &C, x86::Cond CC) {
  Builder &B = C.B;
  using x86::Cond;
  auto F = [&](Flag Fl) { return getFlag(C, Fl); };
  Var V = NoVar;
  switch (CC) {
  case Cond::O: case Cond::NO: V = F(Flag::OF); break;
  case Cond::B: case Cond::NB: V = F(Flag::CF); break;
  case Cond::E: case Cond::NE: V = F(Flag::ZF); break;
  case Cond::BE: case Cond::NBE: V = B.bor(F(Flag::CF), F(Flag::ZF)); break;
  case Cond::S: case Cond::NS: V = F(Flag::SF); break;
  case Cond::P: case Cond::NP: V = F(Flag::PF); break;
  case Cond::L: case Cond::NL: V = B.bxor(F(Flag::SF), F(Flag::OF)); break;
  case Cond::LE: case Cond::NLE:
    V = B.bor(B.bxor(F(Flag::SF), F(Flag::OF)), F(Flag::ZF));
    break;
  }
  // Odd encodings are the negated conditions.
  if (x86::encodingOf(CC) & 1)
    V = B.notBit(V);
  return V;
}

Var sem::nextPc(Ctx &C) {
  return C.B.add(C.B.getLoc(Loc::pc()), C.B.imm(32, C.Len));
}

//===----------------------------------------------------------------------===//
// Moves, exchanges, LEA, XADD, CMPXCHG.
//===----------------------------------------------------------------------===//

void sem::convMov(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;
  switch (I.Op) {
  case Opcode::MOV: {
    Var V = loadOperand(C, I.Op2, C.Bits);
    storeOperand(C, I.Op1, V, C.Bits);
    return;
  }
  case Opcode::LEA: {
    // Effective address of the source, truncated to the operand size; no
    // memory access and no segment involvement.
    Var A = effAddr(C, I.Op2.A);
    uint32_t DestBits = I.Pfx.OpSize ? 16 : 32;
    storeReg(C, I.Op1.R, DestBits == 32 ? A : B.castU(16, A), DestBits);
    return;
  }
  case Opcode::XCHG: {
    Var A = loadOperand(C, I.Op1, C.Bits);
    Var V2 = loadOperand(C, I.Op2, C.Bits);
    storeOperand(C, I.Op1, V2, C.Bits);
    storeOperand(C, I.Op2, A, C.Bits);
    return;
  }
  case Opcode::XADD: {
    Var Dst = loadOperand(C, I.Op1, C.Bits);
    Var Src = loadOperand(C, I.Op2, C.Bits);
    // Flags exactly as ADD.
    uint32_t W1 = C.Bits + 1;
    Var Sum = B.castU(C.Bits,
                      B.add(B.castU(W1, Dst), B.castU(W1, Src)));
    setFlag(C, Flag::CF,
            B.castU(1, B.shru(B.add(B.castU(W1, Dst), B.castU(W1, Src)),
                              B.imm(W1, C.Bits))));
    Var Xor1 = B.bxor(Dst, Sum);
    Var Xor2 = B.bxor(Src, Sum);
    Var Of = B.castU(1, B.shru(B.band(Xor1, Xor2), B.imm(C.Bits, C.Bits - 1)));
    setFlag(C, Flag::OF, Of);
    Var Af = B.castU(1, B.shru(B.bxor(B.bxor(Dst, Src), Sum),
                               B.imm(C.Bits, 4)));
    setFlag(C, Flag::AF, Af);
    setSZP(C, Sum, C.Bits);
    storeOperand(C, I.Op2, Dst, C.Bits);
    storeOperand(C, I.Op1, Sum, C.Bits);
    return;
  }
  case Opcode::CMPXCHG: {
    Var Dst = loadOperand(C, I.Op1, C.Bits);
    Var Acc = loadReg(C, x86::Reg::EAX, C.Bits);
    Var Src = loadOperand(C, I.Op2, C.Bits);
    // Flags as CMP acc, dst.
    Var Diff = B.sub(Acc, Dst);
    setFlag(C, Flag::CF, B.ltu(Acc, Dst));
    Var Of = B.castU(
        1, B.shru(B.band(B.bxor(Acc, Dst), B.bxor(Acc, Diff)),
                  B.imm(C.Bits, C.Bits - 1)));
    setFlag(C, Flag::OF, Of);
    Var Af = B.castU(1, B.shru(B.bxor(B.bxor(Acc, Dst), Diff),
                               B.imm(C.Bits, 4)));
    setFlag(C, Flag::AF, Af);
    setSZP(C, Diff, C.Bits);
    Var Equal = B.eq(Acc, Dst);
    // dest := equal ? src : dest ; acc := equal ? acc : dest.
    storeOperand(C, I.Op1, B.select(Equal, Src, Dst), C.Bits);
    storeReg(C, x86::Reg::EAX, B.select(Equal, Acc, Dst), C.Bits);
    return;
  }
  default:
    B.error();
    return;
  }
}

//===----------------------------------------------------------------------===//
// Segment-register moves. Loading a segment register models the sandbox
// escape directly: base 0, limit 2^32-1 (see Translate.h).
//===----------------------------------------------------------------------===//

static void loadSegmentRegister(Ctx &C, uint8_t SegIdx, Var Selector16) {
  Builder &B = C.B;
  B.setLoc(Loc::segVal(SegIdx), Selector16);
  B.setLoc(Loc::segBase(SegIdx), B.imm(32, 0));
  B.setLoc(Loc::segLimit(SegIdx), B.imm(32, 0xFFFFFFFF));
}

void sem::convSegment(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;
  uint8_t SegIdx = x86::encodingOf(I.Seg);
  switch (I.Op) {
  case Opcode::MOVSR:
    if (!I.Op1.isNone()) {
      // mov r/m16, sreg — a harmless read; stored at 16 bits.
      Var V = B.getLoc(Loc::segVal(SegIdx));
      storeOperand(C, I.Op1, V, 16);
      return;
    }
    // mov sreg, r/m16.
    loadSegmentRegister(C, SegIdx, loadOperand(C, I.Op2, 16));
    return;
  case Opcode::PUSHSR: {
    // Pushed as a 32-bit slot with the selector in the low half.
    Var V = B.castU(32, B.getLoc(Loc::segVal(SegIdx)));
    pushValue(C, V, 32);
    return;
  }
  case Opcode::POPSR: {
    Var V = popValue(C, 32);
    loadSegmentRegister(C, SegIdx, B.castU(16, V));
    return;
  }
  case Opcode::LDS:
  case Opcode::LES:
  case Opcode::LSS:
  case Opcode::LFS:
  case Opcode::LGS: {
    uint8_t Target;
    switch (I.Op) {
    case Opcode::LDS: Target = x86::encodingOf(x86::SegReg::DS); break;
    case Opcode::LES: Target = x86::encodingOf(x86::SegReg::ES); break;
    case Opcode::LSS: Target = x86::encodingOf(x86::SegReg::SS); break;
    case Opcode::LFS: Target = x86::encodingOf(x86::SegReg::FS); break;
    default: Target = x86::encodingOf(x86::SegReg::GS); break;
    }
    uint8_t Seg = segmentFor(C.I, I.Op2.A);
    Var A = effAddr(C, I.Op2.A);
    Var Off = loadMem(C, Seg, A, 32);
    Var Sel = loadMem(C, Seg, B.add(A, B.imm(32, 4)), 16);
    storeReg(C, I.Op1.R, Off, 32);
    loadSegmentRegister(C, Target, Sel);
    return;
  }
  default:
    B.error();
    return;
  }
}

//===----------------------------------------------------------------------===//
// Dispatch.
//===----------------------------------------------------------------------===//

bool sem::hasSemantics(const Instr &I) {
  switch (I.Op) {
  case Opcode::IN:
  case Opcode::OUT:
  case Opcode::INT:
  case Opcode::INT3:
  case Opcode::INTO:
  case Opcode::IRET:
    return false;
  case Opcode::CALL:
  case Opcode::JMP:
    return I.Near; // far transfers are outside the model
  case Opcode::RET:
    return I.Near;
  case Opcode::ENTER:
    return I.Op2.ImmVal == 0; // nesting levels are not modeled
  default:
    break;
  }
  // A rep prefix is only meaningful on string instructions.
  if (I.Pfx.Rep != x86::Prefix::RepKind::None) {
    switch (I.Op) {
    case Opcode::MOVS:
    case Opcode::CMPS:
    case Opcode::STOS:
    case Opcode::LODS:
    case Opcode::SCAS:
      break;
    default:
      return false;
    }
  }
  return true;
}

Translation sem::translate(const Instr &I, uint8_t Len) {
  Ctx C(I, Len);
  Builder &B = C.B;

  if (!hasSemantics(I)) {
    B.error();
    return C.B.take();
  }

  switch (I.Op) {
  case Opcode::MOV:
  case Opcode::LEA:
  case Opcode::XCHG:
  case Opcode::XADD:
  case Opcode::CMPXCHG:
    convMov(C);
    break;
  case Opcode::MOVSR:
  case Opcode::PUSHSR:
  case Opcode::POPSR:
  case Opcode::LDS:
  case Opcode::LES:
  case Opcode::LSS:
  case Opcode::LFS:
  case Opcode::LGS:
    convSegment(C);
    break;
  case Opcode::ADD:
  case Opcode::ADC:
  case Opcode::SUB:
  case Opcode::SBB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::CMP:
  case Opcode::TEST:
    convAluBinop(C);
    break;
  case Opcode::INC:
  case Opcode::DEC:
    convIncDec(C);
    break;
  case Opcode::NOT:
  case Opcode::NEG:
    convNotNeg(C);
    break;
  case Opcode::MUL:
  case Opcode::IMUL:
  case Opcode::DIV:
  case Opcode::IDIV:
    convMulDiv(C);
    break;
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::SAR:
  case Opcode::ROL:
  case Opcode::ROR:
  case Opcode::RCL:
  case Opcode::RCR:
    convShiftRotate(C);
    break;
  case Opcode::SHLD:
  case Opcode::SHRD:
    convDoubleShift(C);
    break;
  case Opcode::BT:
  case Opcode::BTS:
  case Opcode::BTR:
  case Opcode::BTC:
  case Opcode::BSF:
  case Opcode::BSR:
  case Opcode::BSWAP:
    convBitOps(C);
    break;
  case Opcode::AAA:
  case Opcode::AAS:
  case Opcode::AAM:
  case Opcode::AAD:
  case Opcode::DAA:
  case Opcode::DAS:
    convBcd(C);
    break;
  case Opcode::CWDE:
  case Opcode::CDQ:
  case Opcode::MOVSX:
  case Opcode::MOVZX:
    convWiden(C);
    break;
  case Opcode::CALL:
  case Opcode::JMP:
    convJmpCall(C);
    break;
  case Opcode::Jcc:
    convJcc(C);
    break;
  case Opcode::JCXZ:
  case Opcode::LOOP:
  case Opcode::LOOPZ:
  case Opcode::LOOPNZ:
    convLoopJcxz(C);
    break;
  case Opcode::RET:
    convRet(C);
    break;
  case Opcode::SETcc:
  case Opcode::CMOVcc:
    convSetCmov(C);
    break;
  case Opcode::PUSH:
  case Opcode::POP:
  case Opcode::PUSHA:
  case Opcode::POPA:
  case Opcode::PUSHF:
  case Opcode::POPF:
  case Opcode::ENTER:
  case Opcode::LEAVE:
    convPushPop(C);
    break;
  case Opcode::CLC:
  case Opcode::STC:
  case Opcode::CMC:
  case Opcode::CLD:
  case Opcode::STD:
  case Opcode::CLI:
  case Opcode::STI:
  case Opcode::LAHF:
  case Opcode::SAHF:
    convFlagOps(C);
    break;
  case Opcode::MOVS:
  case Opcode::CMPS:
  case Opcode::STOS:
  case Opcode::LODS:
  case Opcode::SCAS:
    convString(C);
    break;
  case Opcode::XLAT:
    convXlat(C);
    break;
  case Opcode::NOP:
    break;
  case Opcode::HLT:
    // Advance past the instruction, then stop safely.
    B.setLoc(Loc::pc(), nextPc(C));
    B.trap();
    C.PcHandled = true;
    break;
  default:
    B.error();
    break;
  }

  if (!C.PcHandled)
    B.setLoc(Loc::pc(), nextPc(C));
  return C.B.take();
}
