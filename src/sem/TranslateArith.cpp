//===- sem/TranslateArith.cpp - ALU, mul/div, shifts, bits, BCD -*- C++ -*-===//
//
// The arithmetic conv_* translations, in the style of the paper's
// Figure 4 (conv_ADD). Flag formulas follow the Intel manual; see
// Translate.h for how undefined flag cases are pinned.
//
//===----------------------------------------------------------------------===//

#include "sem/TranslateImpl.h"

using namespace rocksalt;
using namespace rocksalt::sem;
using x86::Instr;
using x86::Opcode;

namespace {

/// Carry-out of A op B (+Cin) computed in width+1 arithmetic.
Var carryOutAdd(Ctx &C, Var A, Var B_, Var Cin, uint32_t Bits) {
  Builder &B = C.B;
  uint32_t W1 = Bits + 1;
  Var Wide = B.add(B.castU(W1, A), B.castU(W1, B_));
  if (Cin != NoVar)
    Wide = B.add(Wide, B.castU(W1, Cin));
  return B.castU(1, B.shru(Wide, B.imm(W1, Bits)));
}

/// OF for addition: msb((a^r) & (b^r)).
Var overflowAdd(Ctx &C, Var A, Var B_, Var R, uint32_t Bits) {
  Builder &B = C.B;
  return B.castU(1, B.shru(B.band(B.bxor(A, R), B.bxor(B_, R)),
                           B.imm(Bits, Bits - 1)));
}

/// OF for subtraction a-b: msb((a^b) & (a^r)).
Var overflowSub(Ctx &C, Var A, Var B_, Var R, uint32_t Bits) {
  Builder &B = C.B;
  return B.castU(1, B.shru(B.band(B.bxor(A, B_), B.bxor(A, R)),
                           B.imm(Bits, Bits - 1)));
}

/// AF: bit 4 of a ^ b ^ r.
Var adjustFlag(Ctx &C, Var A, Var B_, Var R, uint32_t Bits) {
  Builder &B = C.B;
  return B.castU(1, B.shru(B.bxor(B.bxor(A, B_), R), B.imm(Bits, 4)));
}

} // namespace

//===----------------------------------------------------------------------===//
// Two-operand ALU group (paper Figure 4 generalizes to this family).
//===----------------------------------------------------------------------===//

void sem::convAluBinop(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;
  uint32_t Bits = C.Bits;

  Var A = loadOperand(C, I.Op1, Bits);
  Var Src = loadOperand(C, I.Op2, Bits);

  switch (I.Op) {
  case Opcode::ADD:
  case Opcode::ADC: {
    Var Cin = NoVar;
    Var R = B.add(A, Src);
    if (I.Op == Opcode::ADC) {
      Cin = getFlag(C, Flag::CF);
      R = B.add(R, B.castU(Bits, Cin));
    }
    setFlag(C, Flag::CF, carryOutAdd(C, A, Src, Cin, Bits));
    setFlag(C, Flag::OF, overflowAdd(C, A, Src, R, Bits));
    setFlag(C, Flag::AF, adjustFlag(C, A, Src, R, Bits));
    setSZP(C, R, Bits);
    storeOperand(C, I.Op1, R, Bits);
    return;
  }
  case Opcode::SUB:
  case Opcode::SBB:
  case Opcode::CMP: {
    Var R = B.sub(A, Src);
    Var Borrow;
    if (I.Op == Opcode::SBB) {
      Var Cin = getFlag(C, Flag::CF);
      R = B.sub(R, B.castU(Bits, Cin));
      // Borrow = a < b + cin computed in width+1 arithmetic.
      uint32_t W1 = Bits + 1;
      Var Rhs = B.add(B.castU(W1, Src), B.castU(W1, Cin));
      Borrow = B.ltu(B.castU(W1, A), Rhs);
    } else {
      Borrow = B.ltu(A, Src);
    }
    setFlag(C, Flag::CF, Borrow);
    setFlag(C, Flag::OF, overflowSub(C, A, Src, R, Bits));
    setFlag(C, Flag::AF, adjustFlag(C, A, Src, R, Bits));
    setSZP(C, R, Bits);
    if (I.Op != Opcode::CMP)
      storeOperand(C, I.Op1, R, Bits);
    return;
  }
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::TEST: {
    Var R;
    if (I.Op == Opcode::OR)
      R = B.bor(A, Src);
    else if (I.Op == Opcode::XOR)
      R = B.bxor(A, Src);
    else
      R = B.band(A, Src); // AND and TEST
    setFlagConst(C, Flag::CF, false);
    setFlagConst(C, Flag::OF, false);
    setFlagConst(C, Flag::AF, false); // undefined on hw; pinned to 0
    setSZP(C, R, Bits);
    if (I.Op != Opcode::TEST)
      storeOperand(C, I.Op1, R, Bits);
    return;
  }
  default:
    B.error();
  }
}

void sem::convIncDec(Ctx &C) {
  Builder &B = C.B;
  uint32_t Bits = C.Bits;
  Var A = loadOperand(C, C.I.Op1, Bits);
  Var One = B.imm(Bits, 1);
  bool IsInc = C.I.Op == Opcode::INC;
  Var R = IsInc ? B.add(A, One) : B.sub(A, One);
  // CF is preserved; all other arithmetic flags are set.
  if (IsInc)
    setFlag(C, Flag::OF, overflowAdd(C, A, One, R, Bits));
  else
    setFlag(C, Flag::OF, overflowSub(C, A, One, R, Bits));
  setFlag(C, Flag::AF, adjustFlag(C, A, One, R, Bits));
  setSZP(C, R, Bits);
  storeOperand(C, C.I.Op1, R, Bits);
}

void sem::convNotNeg(Ctx &C) {
  Builder &B = C.B;
  uint32_t Bits = C.Bits;
  Var A = loadOperand(C, C.I.Op1, Bits);
  if (C.I.Op == Opcode::NOT) {
    Var R = B.bxor(A, B.imm(Bits, ~uint64_t(0)));
    storeOperand(C, C.I.Op1, R, Bits); // NOT sets no flags
    return;
  }
  // NEG: 0 - a.
  Var Zero = B.imm(Bits, 0);
  Var R = B.sub(Zero, A);
  setFlag(C, Flag::CF, B.notBit(B.eq(A, Zero)));
  setFlag(C, Flag::OF, overflowSub(C, Zero, A, R, Bits));
  setFlag(C, Flag::AF, adjustFlag(C, Zero, A, R, Bits));
  setSZP(C, R, Bits);
  storeOperand(C, C.I.Op1, R, Bits);
}

//===----------------------------------------------------------------------===//
// Multiplication and division.
//===----------------------------------------------------------------------===//

void sem::convMulDiv(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;
  uint32_t Bits = C.Bits;
  uint32_t Wide = Bits * 2;

  // Multi-operand IMUL (two- and three-operand forms).
  if (I.Op == Opcode::IMUL && !I.Op2.isNone()) {
    Var A = loadOperand(C, I.Op2, Bits);
    Var Bv = I.Op3.isImm() ? B.imm(Bits, I.Op3.ImmVal)
                           : loadOperand(C, I.Op2, Bits);
    if (!I.Op3.isNone() && !I.Op3.isImm())
      Bv = loadOperand(C, I.Op3, Bits);
    if (I.Op3.isNone()) {
      // Two-operand form: dst := dst * src.
      Bv = A;
      A = loadReg(C, I.Op1.R, Bits);
    }
    Var P = B.arith(ArithOp::Mul, B.castS(Wide, A), B.castS(Wide, Bv));
    Var R = B.castU(Bits, P);
    // CF=OF= (product does not fit the destination).
    Var Fits = B.eq(P, B.castS(Wide, R));
    Var Ovf = B.notBit(Fits);
    setFlag(C, Flag::CF, Ovf);
    setFlag(C, Flag::OF, Ovf);
    setSZP(C, R, Bits); // SF/ZF/PF undefined on hw; pinned to the result
    setFlagConst(C, Flag::AF, false);
    storeReg(C, I.Op1.R, R, Bits);
    return;
  }

  switch (I.Op) {
  case Opcode::MUL:
  case Opcode::IMUL: {
    bool Signed = I.Op == Opcode::IMUL;
    Var Src = loadOperand(C, I.Op1, Bits);
    Var Acc = loadReg(C, x86::Reg::EAX, Bits);
    Var A64 = Signed ? B.castS(Wide, Acc) : B.castU(Wide, Acc);
    Var B64 = Signed ? B.castS(Wide, Src) : B.castU(Wide, Src);
    Var P = B.arith(ArithOp::Mul, A64, B64);
    Var Lo = B.castU(Bits, P);
    Var Hi = B.castU(Bits, B.shru(P, B.imm(Wide, Bits)));
    if (Bits == 8) {
      storeReg(C, x86::Reg::EAX, B.castU(16, P), 16); // AX = product
    } else {
      storeReg(C, x86::Reg::EAX, Lo, Bits);
      storeReg(C, x86::Reg::EDX, Hi, Bits);
    }
    Var Ovf;
    if (Signed)
      Ovf = B.notBit(B.eq(P, B.castS(Wide, Lo)));
    else
      Ovf = B.notBit(B.eq(Hi, B.imm(Bits, 0)));
    setFlag(C, Flag::CF, Ovf);
    setFlag(C, Flag::OF, Ovf);
    setFlagConst(C, Flag::AF, false);
    setSZP(C, Lo, Bits); // undefined on hw; pinned
    return;
  }
  case Opcode::DIV:
  case Opcode::IDIV: {
    bool Signed = I.Op == Opcode::IDIV;
    Var Src = loadOperand(C, I.Op1, Bits);
    // #DE on division by zero.
    Var IsZero = B.eq(Src, B.imm(Bits, 0));
    {
      Builder::GuardScope G(B, IsZero);
      B.fault();
    }
    // Dividend: EDX:EAX / DX:AX / AX.
    Var Dividend;
    if (Bits == 8) {
      Dividend = loadReg(C, x86::Reg::EAX, 16);
    } else {
      Var Lo = B.castU(Wide, loadReg(C, x86::Reg::EAX, Bits));
      Var Hi = B.castU(Wide, loadReg(C, x86::Reg::EDX, Bits));
      Dividend = B.bor(Lo, B.shl(Hi, B.imm(Wide, Bits)));
    }
    Var Divisor = Signed ? B.castS(Wide, Src) : B.castU(Wide, Src);
    Var Q = B.arith(Signed ? ArithOp::Divs : ArithOp::Divu, Dividend,
                    Divisor);
    Var Rem = B.arith(Signed ? ArithOp::Mods : ArithOp::Modu, Dividend,
                      Divisor);
    // #DE when the quotient does not fit the destination.
    Var QTrunc = B.castU(Bits, Q);
    Var Fits = Signed ? B.eq(Q, B.castS(Wide, QTrunc))
                      : B.eq(Q, B.castU(Wide, QTrunc));
    {
      Builder::GuardScope G(B, B.notBit(Fits));
      B.fault();
    }
    Var RemTrunc = B.castU(Bits, Rem);
    if (Bits == 8) {
      // AL = quotient, AH = remainder.
      Var Ax = B.bor(B.castU(16, QTrunc),
                     B.shl(B.castU(16, RemTrunc), B.imm(16, 8)));
      storeReg(C, x86::Reg::EAX, Ax, 16);
    } else {
      storeReg(C, x86::Reg::EAX, QTrunc, Bits);
      storeReg(C, x86::Reg::EDX, RemTrunc, Bits);
    }
    // All flags undefined on hw; pinned to unchanged (no writes).
    return;
  }
  default:
    B.error();
  }
}

//===----------------------------------------------------------------------===//
// Shifts and rotates.
//===----------------------------------------------------------------------===//

void sem::convShiftRotate(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;
  uint32_t Bits = C.Bits;

  Var Val = loadOperand(C, I.Op1, Bits);
  Var CntRaw = I.Op2.isImm() ? B.imm(32, I.Op2.ImmVal & 31)
                             : B.band(loadReg(C, x86::Reg::ECX, 32),
                                      B.imm(32, 31));
  Var Cnt = CntRaw;
  Var CntNonZero = B.notBit(B.eq(Cnt, B.imm(32, 0)));

  // All computation is done in 64-bit so shifted-out bits stay visible.
  Var V64 = B.castU(64, Val);
  Var C64 = B.castU(64, Cnt);

  Var Res = NoVar, Cf = NoVar, Of = NoVar;
  bool IsRotate = false;

  switch (I.Op) {
  case Opcode::SHL: {
    Var Sh = B.shl(V64, C64);
    Res = B.castU(Bits, Sh);
    Cf = B.castU(1, B.shru(Sh, B.imm(64, Bits)));
    Var Msb = B.castU(1, B.shru(Res, B.imm(Bits, Bits - 1)));
    Of = B.bxor(Msb, Cf);
    break;
  }
  case Opcode::SHR: {
    Var Cm1 = B.sub(C64, B.imm(64, 1));
    Cf = B.castU(1, B.shru(V64, Cm1));
    Res = B.castU(Bits, B.shru(V64, C64));
    Of = B.castU(1, B.shru(Val, B.imm(Bits, Bits - 1))); // msb of original
    break;
  }
  case Opcode::SAR: {
    Var VS64 = B.castS(64, B.castS(Bits, Val));
    Var Cm1 = B.sub(C64, B.imm(64, 1));
    Cf = B.castU(1, B.arith(ArithOp::Shrs, VS64, Cm1));
    Res = B.castU(Bits, B.arith(ArithOp::Shrs, VS64, C64));
    Of = B.imm(1, 0);
    break;
  }
  case Opcode::ROL: {
    IsRotate = true;
    Var CntMod = B.arith(ArithOp::Modu, Cnt, B.imm(32, Bits));
    Res = B.arith(ArithOp::Rol, Val, B.castU(Bits, CntMod));
    Cf = B.castU(1, Res); // low bit of result
    Var Msb = B.castU(1, B.shru(Res, B.imm(Bits, Bits - 1)));
    Of = B.bxor(Msb, Cf);
    break;
  }
  case Opcode::ROR: {
    IsRotate = true;
    Var CntMod = B.arith(ArithOp::Modu, Cnt, B.imm(32, Bits));
    Res = B.arith(ArithOp::Ror, Val, B.castU(Bits, CntMod));
    Var Msb = B.castU(1, B.shru(Res, B.imm(Bits, Bits - 1)));
    Cf = Msb;
    Var Msb2 = B.castU(1, B.shru(Res, B.imm(Bits, Bits - 2)));
    Of = B.bxor(Msb, Msb2);
    break;
  }
  case Opcode::RCL:
  case Opcode::RCR: {
    IsRotate = true;
    // Rotate through carry: width+1 rotation of CF:value.
    uint32_t W1 = Bits + 1;
    Var CntMod = B.arith(ArithOp::Modu, Cnt, B.imm(32, W1));
    Var CfIn = getFlag(C, Flag::CF);
    Var Ext = B.bor(B.castU(W1, Val),
                    B.shl(B.castU(W1, CfIn), B.imm(W1, Bits)));
    Var Rot = B.arith(I.Op == Opcode::RCL ? ArithOp::Rol : ArithOp::Ror,
                      Ext, B.castU(W1, CntMod));
    Res = B.castU(Bits, Rot);
    Cf = B.castU(1, B.shru(Rot, B.imm(W1, Bits)));
    Var Msb = B.castU(1, B.shru(Res, B.imm(Bits, Bits - 1)));
    if (I.Op == Opcode::RCL)
      Of = B.bxor(Msb, Cf);
    else {
      Var Msb2 = B.castU(1, B.shru(Res, B.imm(Bits, Bits - 2)));
      Of = B.bxor(Msb, Msb2);
    }
    break;
  }
  default:
    B.error();
    return;
  }

  // When the masked count is zero nothing changes at all (no result
  // write, no flag update).
  {
    Builder::GuardScope G(B, CntNonZero);
    storeOperand(C, I.Op1, Res, Bits);
    setFlag(C, Flag::CF, Cf);
    setFlag(C, Flag::OF, Of);
    if (!IsRotate)
      setSZP(C, Res, Bits);
  }
}

void sem::convDoubleShift(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;
  uint32_t Bits = C.Bits;

  Var Dst = loadOperand(C, I.Op1, Bits);
  Var Src = loadOperand(C, I.Op2, Bits);
  Var Cnt = I.Op3.isImm() ? B.imm(32, I.Op3.ImmVal & 31)
                          : B.band(loadReg(C, x86::Reg::ECX, 32),
                                   B.imm(32, 31));
  Var CntNonZero = B.notBit(B.eq(Cnt, B.imm(32, 0)));
  Var C64 = B.castU(64, Cnt);

  // Build the 2w-bit combined value and shift in 64-bit arithmetic.
  Var Res, Cf;
  if (I.Op == Opcode::SHLD) {
    // dst:src shifted left; bits of src fill from the right.
    Var Comb = B.bor(B.shl(B.castU(64, Dst), B.imm(64, Bits)),
                     B.castU(64, Src));
    Var Sh = B.shl(Comb, C64);
    Res = B.castU(Bits, B.shru(Sh, B.imm(64, Bits)));
    Cf = B.castU(1, B.shru(Sh, B.imm(64, 2 * Bits)));
  } else {
    // src:dst shifted right; bits of src fill from the left.
    Var Comb = B.bor(B.shl(B.castU(64, Src), B.imm(64, Bits)),
                     B.castU(64, Dst));
    Var Cm1 = B.sub(C64, B.imm(64, 1));
    Cf = B.castU(1, B.shru(Comb, Cm1));
    Res = B.castU(Bits, B.shru(Comb, C64));
  }
  Var Msb = B.castU(1, B.shru(Res, B.imm(Bits, Bits - 1)));
  Var MsbOld = B.castU(1, B.shru(Dst, B.imm(Bits, Bits - 1)));
  Var Of = B.bxor(Msb, MsbOld); // "sign changed"; defined for count==1

  Builder::GuardScope G(B, CntNonZero);
  storeOperand(C, I.Op1, Res, Bits);
  setFlag(C, Flag::CF, Cf);
  setFlag(C, Flag::OF, Of);
  setSZP(C, Res, Bits);
}

//===----------------------------------------------------------------------===//
// Bit tests, scans, swaps.
//===----------------------------------------------------------------------===//

void sem::convBitOps(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;
  uint32_t Bits = C.Bits;

  switch (I.Op) {
  case Opcode::BSWAP: {
    Var V = loadReg(C, I.Op1.R, 32);
    Var B0 = B.band(V, B.imm(32, 0xFF));
    Var B1 = B.band(B.shru(V, B.imm(32, 8)), B.imm(32, 0xFF));
    Var B2 = B.band(B.shru(V, B.imm(32, 16)), B.imm(32, 0xFF));
    Var B3 = B.shru(V, B.imm(32, 24));
    Var R = B.bor(B.bor(B.shl(B0, B.imm(32, 24)), B.shl(B1, B.imm(32, 16))),
                  B.bor(B.shl(B2, B.imm(32, 8)), B3));
    storeReg(C, I.Op1.R, R, 32);
    return;
  }
  case Opcode::BSF:
  case Opcode::BSR: {
    Var Src = loadOperand(C, I.Op2, Bits);
    Var Zero = B.eq(Src, B.imm(Bits, 0));
    setFlag(C, Flag::ZF, Zero);
    // Unrolled scan; BSF takes the first match from the top of the loop
    // running downward, BSR runs upward (each later assignment wins).
    Var Idx = B.imm(32, 0);
    for (uint32_t Step = 0; Step < Bits; ++Step) {
      uint32_t Bit = I.Op == Opcode::BSF ? Bits - 1 - Step : Step;
      Var Set = B.castU(1, B.shru(Src, B.imm(Bits, Bit)));
      Idx = B.select(Set, B.imm(32, Bit), Idx);
    }
    // Destination written only when the source is nonzero.
    Builder::GuardScope G(B, B.notBit(Zero));
    storeReg(C, I.Op1.R, Bits == 32 ? Idx : B.castU(Bits, Idx), Bits);
    return;
  }
  case Opcode::BT:
  case Opcode::BTS:
  case Opcode::BTR:
  case Opcode::BTC: {
    Var Val = loadOperand(C, I.Op1, Bits);
    Var BitIdx;
    if (I.Op2.isImm())
      BitIdx = B.imm(Bits, I.Op2.ImmVal % Bits);
    else
      BitIdx = B.arith(ArithOp::Modu, loadReg(C, I.Op2.R, Bits),
                       B.imm(Bits, Bits));
    Var Bit = B.castU(1, B.shru(Val, BitIdx));
    setFlag(C, Flag::CF, Bit);
    if (I.Op == Opcode::BT)
      return;
    Var Mask = B.shl(B.imm(Bits, 1), BitIdx);
    Var R;
    if (I.Op == Opcode::BTS)
      R = B.bor(Val, Mask);
    else if (I.Op == Opcode::BTR)
      R = B.band(Val, B.bxor(Mask, B.imm(Bits, ~uint64_t(0))));
    else
      R = B.bxor(Val, Mask);
    storeOperand(C, I.Op1, R, Bits);
    return;
  }
  default:
    B.error();
  }
}

//===----------------------------------------------------------------------===//
// BCD adjustments.
//===----------------------------------------------------------------------===//

void sem::convBcd(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;

  Var Al = loadReg(C, x86::Reg::EAX, 8);
  switch (I.Op) {
  case Opcode::AAM: {
    uint32_t Imm = I.Op1.ImmVal & 0xFF;
    if (Imm == 0) {
      B.fault(); // #DE
      return;
    }
    Var Base = B.imm(8, Imm);
    Var Ah = B.arith(ArithOp::Divu, Al, Base);
    Var NewAl = B.arith(ArithOp::Modu, Al, Base);
    Var Ax = B.bor(B.castU(16, NewAl), B.shl(B.castU(16, Ah), B.imm(16, 8)));
    storeReg(C, x86::Reg::EAX, Ax, 16);
    setSZP(C, NewAl, 8);
    setFlagConst(C, Flag::CF, false);
    setFlagConst(C, Flag::OF, false);
    setFlagConst(C, Flag::AF, false);
    return;
  }
  case Opcode::AAD: {
    uint32_t Imm = I.Op1.ImmVal & 0xFF;
    Var Ah = loadReg(C,
                     x86::regFromEncoding(4) /* AH */, 8);
    Var NewAl = B.add(Al, B.arith(ArithOp::Mul, Ah, B.imm(8, Imm)));
    Var Ax = B.castU(16, NewAl); // AH = 0
    storeReg(C, x86::Reg::EAX, Ax, 16);
    setSZP(C, NewAl, 8);
    setFlagConst(C, Flag::CF, false);
    setFlagConst(C, Flag::OF, false);
    setFlagConst(C, Flag::AF, false);
    return;
  }
  case Opcode::AAA:
  case Opcode::AAS: {
    bool IsAdd = I.Op == Opcode::AAA;
    Var LowNibble = B.band(Al, B.imm(8, 0x0F));
    Var Cond = B.bor(B.ltu(B.imm(8, 9), LowNibble), getFlag(C, Flag::AF));
    Var Ax = loadReg(C, x86::Reg::EAX, 16);
    Var Adj = B.imm(16, IsAdd ? 0x106 : 0x106);
    Var NewAx =
        IsAdd ? B.add(Ax, Adj) : B.sub(Ax, Adj);
    Var Sel = B.select(Cond, NewAx, Ax);
    // AL &= 0x0F in both branches.
    Var Masked = B.band(Sel, B.imm(16, 0xFF0F));
    storeReg(C, x86::Reg::EAX, Masked, 16);
    setFlag(C, Flag::AF, Cond);
    setFlag(C, Flag::CF, Cond);
    // OF/SF/ZF/PF undefined; pinned from the resulting AL.
    setSZP(C, B.castU(8, Masked), 8);
    setFlagConst(C, Flag::OF, false);
    return;
  }
  case Opcode::DAA:
  case Opcode::DAS: {
    bool IsAdd = I.Op == Opcode::DAA;
    Var OldCf = getFlag(C, Flag::CF);
    Var LowNibble = B.band(Al, B.imm(8, 0x0F));
    Var CondLow =
        B.bor(B.ltu(B.imm(8, 9), LowNibble), getFlag(C, Flag::AF));
    Var Step1 = IsAdd ? B.add(Al, B.imm(8, 6)) : B.sub(Al, B.imm(8, 6));
    Var Al1 = B.select(CondLow, Step1, Al);
    Var CondHigh = B.bor(B.ltu(B.imm(8, 0x99), Al), OldCf);
    Var Step2 =
        IsAdd ? B.add(Al1, B.imm(8, 0x60)) : B.sub(Al1, B.imm(8, 0x60));
    Var Al2 = B.select(CondHigh, Step2, Al1);
    storeReg(C, x86::Reg::EAX, Al2, 8);
    setFlag(C, Flag::AF, CondLow);
    setFlag(C, Flag::CF, CondHigh);
    setSZP(C, Al2, 8);
    setFlagConst(C, Flag::OF, false); // undefined; pinned
    return;
  }
  default:
    B.error();
  }
}

//===----------------------------------------------------------------------===//
// Width conversions.
//===----------------------------------------------------------------------===//

void sem::convWiden(Ctx &C) {
  Builder &B = C.B;
  const Instr &I = C.I;
  switch (I.Op) {
  case Opcode::CWDE: {
    // 66-prefixed: CBW (AX := sext AL); otherwise CWDE (EAX := sext AX).
    if (I.Pfx.OpSize) {
      Var Al = loadReg(C, x86::Reg::EAX, 8);
      storeReg(C, x86::Reg::EAX, B.castS(16, Al), 16);
    } else {
      Var Ax = loadReg(C, x86::Reg::EAX, 16);
      storeReg(C, x86::Reg::EAX, B.castS(32, Ax), 32);
    }
    return;
  }
  case Opcode::CDQ: {
    // 66-prefixed: CWD (DX:AX); otherwise CDQ (EDX:EAX).
    uint32_t Bits = I.Pfx.OpSize ? 16 : 32;
    Var Acc = loadReg(C, x86::Reg::EAX, Bits);
    Var Wide = B.castS(2 * Bits, Acc);
    Var Hi = B.castU(Bits, B.shru(Wide, B.imm(2 * Bits, Bits)));
    storeReg(C, x86::Reg::EDX, Hi, Bits);
    return;
  }
  case Opcode::MOVSX:
  case Opcode::MOVZX: {
    uint32_t SrcBits = I.W ? 16 : 8;
    uint32_t DstBits = I.Pfx.OpSize ? 16 : 32;
    Var Src = loadOperand(C, I.Op2, SrcBits);
    Var R = I.Op == Opcode::MOVSX ? B.castS(DstBits, Src)
                                  : B.castU(DstBits, Src);
    storeReg(C, I.Op1.R, R, DstBits);
    return;
  }
  default:
    B.error();
  }
}
