//===- svc/Metrics.h - Lock-free service metrics ---------------*- C++ -*-===//
///
/// \file
/// A small lock-free counter/histogram layer for the verification
/// service: plain atomics, no locks anywhere on the record path, so the
/// pool's hot loop can count events without serializing. Counters are
/// cache-line padded to keep unrelated counters from false-sharing.
///
/// `Histogram` is a power-of-two-bucketed log histogram (bucket i holds
/// values whose bit width is i), which is enough resolution for latency
/// and imbalance distributions at zero contention cost.
///
/// `Metrics::dump()` renders a plain-text exposition (one `name value`
/// line per scalar, `name_bucket{le=...}` lines per histogram) consumed
/// by `validator_cli --stats` and the benches.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SVC_METRICS_H
#define ROCKSALT_SVC_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>

namespace rocksalt {
namespace svc {

/// A monotonically increasing counter (relaxed atomics: totals matter,
/// inter-counter ordering does not).
class alignas(64) Counter {
  std::atomic<uint64_t> V{0};

public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t get() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }
};

/// An instantaneous up/down gauge (queue depth, in-flight jobs).
class alignas(64) Gauge {
  std::atomic<int64_t> V{0};

public:
  void add(int64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  void sub(int64_t N = 1) { V.fetch_sub(N, std::memory_order_relaxed); }
  int64_t get() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }
};

/// Log2-bucketed histogram: bucket i counts values v with bit_width(v)
/// == i, i.e. v in [2^(i-1), 2^i). The last bucket doubles as the
/// overflow bucket (values with bit_width 64 are clamped into it), so it
/// has no finite upper edge. Tracks count/sum/max alongside.
class alignas(64) Histogram {
public:
  static constexpr unsigned NumBuckets = 64;

private:
  std::atomic<uint64_t> Buckets[NumBuckets];
  std::atomic<uint64_t> Count{0}, Sum{0}, Max{0};

public:
  Histogram() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
  }

  void record(uint64_t V);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t C = count();
    return C ? double(sum()) / double(C) : 0.0;
  }
  uint64_t bucket(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  /// Upper-bound estimate of the \p Q quantile. Domain (0, 1]:
  /// out-of-domain Q is clamped into it (Q <= 0 reports the minimum
  /// observation's bucket edge, Q > 1 the maximum's); NaN asserts in
  /// debug builds and returns 0 in release.
  uint64_t quantile(double Q) const;

  void reset();
};

/// Every metric the verification service exports.
struct Metrics {
  // Image-level outcomes.
  Counter ImagesSubmitted;  ///< entered a pool queue
  Counter ImagesVerified;   ///< finished (accepted + rejected)
  Counter ImagesAccepted;
  Counter ImagesRejected;
  Counter RejectNoParse;    ///< reject: no grammar matched
  Counter RejectBadTarget;  ///< reject: direct jump into mid-instruction
  Counter RejectUnaligned;  ///< reject: bundle boundary not instr start
  Counter BytesVerified;

  // Chunk-parallel internals.
  Counter ShardsScanned;
  Counter SeamRescans;      ///< verifySteps replayed at shard seams

  // Pool internals.
  Counter TasksRun;
  Counter TasksStolen;      ///< tasks taken from another worker's deque
  Gauge QueueDepth;         ///< tasks enqueued but not yet started

  // Differential-fuzzing internals (src/fuzz).
  Counter OracleRuns;          ///< images run through the full oracle
  Counter OracleDisagreements; ///< images on which any verdict path diverged
  Counter ShrinkSteps;         ///< minimizer predicate evaluations

  // CFG lint (src/analysis).
  Counter LintImages;   ///< images run through lintImage
  Counter LintErrors;   ///< error-severity diagnostics emitted
  Counter LintWarnings; ///< warning-severity diagnostics emitted
  Counter LintNotes;    ///< note-severity diagnostics emitted

  // Whole-image dataflow lint (src/analysis/Dataflow).
  Counter LintLiveIndirectOuts; ///< ext-reachable computed transfers seen
  Counter LintDeadPairs;        ///< dead-masked-pair diagnostics emitted
  Counter LintOffSeamCalls;     ///< call-ret-not-seam diagnostics emitted
  Counter LintIncrRelints;      ///< incremental re-lints performed
  Counter LintIncrFastPath;     ///< ... that took the O(window) fast path

  // Verification service (src/svc/Service).
  Counter SvcVerifyRequests; ///< verify request frames handled
  Counter SvcLintRequests;   ///< lint request frames handled
  Counter SvcAuditRequests;  ///< audit request frames handled
  Counter SvcTablesRequests; ///< tables request frames handled
  Counter SvcTablesHashHits; ///< tables requests short-circuited by hash
  Counter SvcErrors;         ///< malformed bodies answered with an error
  Counter SvcSessions;       ///< serve-loop sessions completed
  Counter SvcMetricsRequests; ///< metrics scrape frames handled

  // Event-driven multi-session serving (src/svc/EventLoop).
  Gauge SvcSessionsActive;       ///< sessions currently multiplexed
  Counter SvcBytesIn;            ///< request bytes read off session fds
  Counter SvcBytesOut;           ///< response bytes written to session fds
  Counter SvcAcceptErrors;       ///< accept() failures (all non-EINTR errnos)
  Counter SvcAcceptBackoffs;     ///< EMFILE/ENFILE backoff periods entered
  Counter SvcBackpressurePauses; ///< sessions whose reads paused on budget
  Counter SvcPeerDrops;          ///< sessions dropped on EPIPE/ECONNRESET

  // Incremental re-verification (src/incr + the service's patch path).
  Counter IncrChunkHits;      ///< chunk-cache lookups satisfied
  Counter IncrChunkMisses;    ///< chunk-cache lookups that re-scanned
  Counter IncrChunkEvictions; ///< LRU evictions from the chunk cache
  Counter SvcImageOpenRequests;  ///< image-open request frames handled
  Counter SvcPatchRequests;      ///< patch request frames handled
  Counter SvcImageCloseRequests; ///< image-close request frames handled

  // Distributions.
  Histogram VerifyNanos;          ///< wall time per image verification
  Histogram ShardImbalancePermille; ///< 1000 * max shard ns / mean shard ns
  Histogram BatchImages;          ///< images per submit() call
  Histogram SvcRequestNanos;      ///< wall time per service request frame
  Histogram SvcPatchNanos;        ///< wall time per patch re-verification
  Histogram AnalysisDataflowNanos; ///< wall time per dataflow pass pipeline

  /// Plain-text exposition of every metric: one `name value` line per
  /// scalar, Prometheus-style cumulative `name_bucket{le="..."}` lines
  /// per histogram — the scrape format served by the MetricsRequest
  /// frame kind and `validator_cli --connect --metrics`.
  std::string exposition() const;

  /// Back-compat alias for exposition() (--stats, benches, tests).
  std::string dump() const { return exposition(); }

  /// Zeroes everything (tests and benches between phases).
  void reset();
};

/// The process-wide default instance (services can own private ones).
Metrics &globalMetrics();

} // namespace svc
} // namespace rocksalt

#endif // ROCKSALT_SVC_METRICS_H
