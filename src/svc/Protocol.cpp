//===- svc/Protocol.cpp - Framed verification service protocol ------------===//

#include "svc/Protocol.h"

#include "regex/TableIO.h"

#include <cstring>

using namespace rocksalt;
using namespace rocksalt::svc;
using namespace rocksalt::svc::proto;

namespace {

constexpr char Magic[4] = {'R', 'S', 'V', 'C'};

bool knownKind(uint8_t K) {
  switch (MsgKind(K)) {
  case MsgKind::VerifyRequest:
  case MsgKind::LintRequest:
  case MsgKind::AuditRequest:
  case MsgKind::TablesRequest:
  case MsgKind::ShutdownRequest:
  case MsgKind::ImageOpenRequest:
  case MsgKind::PatchRequest:
  case MsgKind::ImageCloseRequest:
  case MsgKind::MetricsRequest:
  case MsgKind::VerifyResponse:
  case MsgKind::LintResponse:
  case MsgKind::AuditResponse:
  case MsgKind::TablesResponse:
  case MsgKind::ShutdownResponse:
  case MsgKind::ImageOpenResponse:
  case MsgKind::PatchResponse:
  case MsgKind::ImageCloseResponse:
  case MsgKind::MetricsResponse:
  case MsgKind::ErrorResponse:
    return true;
  }
  return false;
}

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(uint8_t(V));
  Out.push_back(uint8_t(V >> 8));
  Out.push_back(uint8_t(V >> 16));
  Out.push_back(uint8_t(V >> 24));
}

void putBytes(std::vector<uint8_t> &Out, const void *Data, size_t Len) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  Out.insert(Out.end(), P, P + Len);
}

/// Bounds-checked little-endian reader over a body; every decoder ends
/// with done() so trailing bytes are rejected like truncation.
class Reader {
public:
  explicit Reader(const std::vector<uint8_t> &Body) : Body(Body) {}

  uint32_t u32() {
    need(4);
    uint32_t V = uint32_t(Body[Pos]) | (uint32_t(Body[Pos + 1]) << 8) |
                 (uint32_t(Body[Pos + 2]) << 16) |
                 (uint32_t(Body[Pos + 3]) << 24);
    Pos += 4;
    return V;
  }

  uint8_t u8() {
    need(1);
    return Body[Pos++];
  }

  uint8_t flag() {
    uint8_t V = u8();
    if (V > 1)
      throw ProtocolError("frame body flag is not boolean");
    return V;
  }

  std::string str(size_t Len) {
    need(Len);
    std::string S(reinterpret_cast<const char *>(Body.data() + Pos), Len);
    Pos += Len;
    return S;
  }

  std::vector<uint8_t> bytes(size_t Len) {
    need(Len);
    std::vector<uint8_t> V(Body.begin() + long(Pos),
                           Body.begin() + long(Pos + Len));
    Pos += Len;
    return V;
  }

  void done() const {
    if (Pos != Body.size())
      throw ProtocolError("frame body has trailing bytes");
  }

  bool atEnd() const { return Pos == Body.size(); }

private:
  void need(size_t N) {
    if (Body.size() - Pos < N)
      throw ProtocolError("frame body truncated");
  }

  const std::vector<uint8_t> &Body;
  size_t Pos = 0;
};

} // namespace

const char *proto::msgKindName(MsgKind K) {
  switch (K) {
  case MsgKind::VerifyRequest:
    return "VerifyRequest";
  case MsgKind::LintRequest:
    return "LintRequest";
  case MsgKind::AuditRequest:
    return "AuditRequest";
  case MsgKind::TablesRequest:
    return "TablesRequest";
  case MsgKind::ShutdownRequest:
    return "ShutdownRequest";
  case MsgKind::ImageOpenRequest:
    return "ImageOpenRequest";
  case MsgKind::PatchRequest:
    return "PatchRequest";
  case MsgKind::ImageCloseRequest:
    return "ImageCloseRequest";
  case MsgKind::MetricsRequest:
    return "MetricsRequest";
  case MsgKind::VerifyResponse:
    return "VerifyResponse";
  case MsgKind::LintResponse:
    return "LintResponse";
  case MsgKind::AuditResponse:
    return "AuditResponse";
  case MsgKind::TablesResponse:
    return "TablesResponse";
  case MsgKind::ShutdownResponse:
    return "ShutdownResponse";
  case MsgKind::ImageOpenResponse:
    return "ImageOpenResponse";
  case MsgKind::PatchResponse:
    return "PatchResponse";
  case MsgKind::ImageCloseResponse:
    return "ImageCloseResponse";
  case MsgKind::MetricsResponse:
    return "MetricsResponse";
  case MsgKind::ErrorResponse:
    return "ErrorResponse";
  }
  return "unknown";
}

void proto::appendFrame(std::vector<uint8_t> &Out, MsgKind Kind,
                        const std::vector<uint8_t> &Body) {
  if (Body.size() > MaxFrameBody)
    throw ProtocolError("frame body exceeds MaxFrameBody");
  Out.reserve(Out.size() + FrameHeaderSize + Body.size());
  putBytes(Out, Magic, 4);
  Out.push_back(ProtocolVersion);
  Out.push_back(uint8_t(Kind));
  putU32(Out, uint32_t(Body.size()));
  putBytes(Out, Body.data(), Body.size());
}

bool proto::parseFrame(const uint8_t *Data, size_t Size, size_t *Pos,
                       Frame *Out) {
  size_t P = *Pos;
  size_t Avail = Size - P;
  // Validate the header prefix byte-by-byte so garbage is rejected as
  // soon as it can be told apart from a short read.
  size_t HeadAvail = Avail < 6 ? Avail : 6;
  for (size_t I = 0; I < HeadAvail; ++I) {
    uint8_t B = Data[P + I];
    if (I < 4 && B != uint8_t(Magic[I]))
      throw ProtocolError("frame has bad magic");
    if (I == 4 && B != ProtocolVersion)
      throw ProtocolError("unsupported protocol version");
    if (I == 5 && !knownKind(B))
      throw ProtocolError("unknown message kind");
  }
  if (Avail < FrameHeaderSize)
    return false;
  uint32_t Len = uint32_t(Data[P + 6]) | (uint32_t(Data[P + 7]) << 8) |
                 (uint32_t(Data[P + 8]) << 16) | (uint32_t(Data[P + 9]) << 24);
  if (Len > MaxFrameBody)
    throw ProtocolError("frame body length exceeds MaxFrameBody");
  if (Avail - FrameHeaderSize < Len)
    return false;
  Out->Kind = MsgKind(Data[P + 5]);
  Out->Body.assign(Data + P + FrameHeaderSize,
                   Data + P + FrameHeaderSize + Len);
  *Pos = P + FrameHeaderSize + Len;
  return true;
}

std::vector<uint8_t>
proto::encodeImageBatch(const std::vector<std::vector<uint8_t>> &Images) {
  std::vector<uint8_t> Out;
  putU32(Out, uint32_t(Images.size()));
  for (const std::vector<uint8_t> &Img : Images) {
    putU32(Out, uint32_t(Img.size()));
    putBytes(Out, Img.data(), Img.size());
  }
  return Out;
}

std::vector<std::vector<uint8_t>>
proto::decodeImageBatch(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  uint32_t Count = R.u32();
  // Each image record is at least 4 bytes; a hostile count cannot force
  // an allocation larger than the body that carries it.
  if (Count > Body.size() / 4)
    throw ProtocolError("image batch count exceeds body size");
  std::vector<std::vector<uint8_t>> Images;
  Images.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t Size = R.u32();
    Images.push_back(R.bytes(Size));
  }
  R.done();
  return Images;
}

std::vector<uint8_t>
proto::encodeVerifyResponse(const std::vector<VerifyVerdict> &Verdicts) {
  std::vector<uint8_t> Out;
  putU32(Out, uint32_t(Verdicts.size()));
  for (const VerifyVerdict &V : Verdicts) {
    Out.push_back(V.Ok ? 1 : 0);
    Out.push_back(uint8_t(V.Reason));
  }
  return Out;
}

std::vector<VerifyVerdict>
proto::decodeVerifyResponse(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  uint32_t Count = R.u32();
  if (Count > Body.size() / 2)
    throw ProtocolError("verify response count exceeds body size");
  std::vector<VerifyVerdict> Verdicts;
  Verdicts.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    VerifyVerdict V;
    V.Ok = R.flag() != 0;
    uint8_t Reason = R.u8();
    if (Reason > uint8_t(core::RejectReason::UnalignedBundle))
      throw ProtocolError("verify response carries unknown reject reason");
    V.Reason = core::RejectReason(Reason);
    Verdicts.push_back(V);
  }
  R.done();
  return Verdicts;
}

std::vector<uint8_t>
proto::encodeLintResponse(const std::vector<LintReport> &Reports) {
  std::vector<uint8_t> Out;
  putU32(Out, uint32_t(Reports.size()));
  for (const LintReport &L : Reports) {
    Out.push_back(L.ParseComplete ? 1 : 0);
    putU32(Out, L.Errors);
    putU32(Out, L.Warnings);
    putU32(Out, L.Notes);
    putU32(Out, uint32_t(L.Render.size()));
    putBytes(Out, L.Render.data(), L.Render.size());
  }
  return Out;
}

std::vector<LintReport>
proto::decodeLintResponse(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  uint32_t Count = R.u32();
  if (Count > Body.size() / 17) // fixed fields per record
    throw ProtocolError("lint response count exceeds body size");
  std::vector<LintReport> Reports;
  Reports.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    LintReport L;
    L.ParseComplete = R.flag() != 0;
    L.Errors = R.u32();
    L.Warnings = R.u32();
    L.Notes = R.u32();
    L.Render = R.str(R.u32());
    Reports.push_back(std::move(L));
  }
  R.done();
  return Reports;
}

std::vector<uint8_t> proto::encodeAuditResponse(const AuditVerdict &V) {
  std::vector<uint8_t> Out;
  Out.push_back(V.Pass ? 1 : 0);
  putU32(Out, uint32_t(V.Render.size()));
  putBytes(Out, V.Render.data(), V.Render.size());
  return Out;
}

AuditVerdict proto::decodeAuditResponse(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  AuditVerdict V;
  V.Pass = R.flag() != 0;
  V.Render = R.str(R.u32());
  R.done();
  return V;
}

std::vector<uint8_t>
proto::encodeTablesRequest(const std::string &ExpectHashHex,
                           const std::string &Isa) {
  std::vector<uint8_t> Out;
  putU32(Out, uint32_t(ExpectHashHex.size()));
  putBytes(Out, ExpectHashHex.data(), ExpectHashHex.size());
  // The ISA selector is an appended extension: omitted entirely for the
  // default entry, so the no-selector encoding is byte-identical to the
  // original wire shape.
  if (!Isa.empty()) {
    putU32(Out, uint32_t(Isa.size()));
    putBytes(Out, Isa.data(), Isa.size());
  }
  return Out;
}

TablesRequestBody proto::decodeTablesRequest(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  uint32_t Len = R.u32();
  if (Len != 0 && Len != 64)
    throw ProtocolError("tables request hash must be empty or 64 hex chars");
  TablesRequestBody T;
  T.ExpectHashHex = R.str(Len);
  for (char C : T.ExpectHashHex)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')))
      throw ProtocolError("tables request hash is not lowercase hex");
  if (!R.atEnd()) {
    uint32_t IsaLen = R.u32();
    if (IsaLen == 0 || IsaLen > re::MaxTableTagLen)
      throw ProtocolError("tables request ISA selector has bad length");
    T.Isa = R.str(IsaLen);
    for (char C : T.Isa)
      if (!((C >= 'a' && C <= 'z') || (C >= '0' && C <= '9') || C == '_' ||
            C == '-'))
        throw ProtocolError("tables request ISA selector has bad characters");
  }
  R.done();
  return T;
}

std::vector<uint8_t> proto::encodeTablesResponse(const TablesReply &T) {
  std::vector<uint8_t> Out;
  Out.push_back(T.HashMatched ? 1 : 0);
  putU32(Out, uint32_t(T.HashHex.size()));
  putBytes(Out, T.HashHex.data(), T.HashHex.size());
  putU32(Out, uint32_t(T.Blob.size()));
  putBytes(Out, T.Blob.data(), T.Blob.size());
  return Out;
}

TablesReply proto::decodeTablesResponse(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  TablesReply T;
  T.HashMatched = R.flag() != 0;
  T.HashHex = R.str(R.u32());
  T.Blob = R.bytes(R.u32());
  R.done();
  if (T.HashMatched && !T.Blob.empty())
    throw ProtocolError("tables response carries a blob despite a hash match");
  return T;
}

namespace {

uint8_t decodeReason(Reader &R) {
  uint8_t Reason = R.u8();
  if (Reason > uint8_t(core::RejectReason::UnalignedBundle))
    throw ProtocolError("response carries unknown reject reason");
  return Reason;
}

uint32_t decodeImageHandle(Reader &R) {
  uint32_t Image = R.u32();
  if (Image == 0)
    throw ProtocolError("image handle must be nonzero");
  return Image;
}

} // namespace

std::vector<uint8_t>
proto::encodeImageOpenRequest(const std::vector<uint8_t> &Image) {
  std::vector<uint8_t> Out;
  putU32(Out, uint32_t(Image.size()));
  putBytes(Out, Image.data(), Image.size());
  return Out;
}

std::vector<uint8_t>
proto::decodeImageOpenRequest(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  std::vector<uint8_t> Image = R.bytes(R.u32());
  R.done();
  return Image;
}

std::vector<uint8_t> proto::encodeImageOpenResponse(const ImageOpenReply &O) {
  std::vector<uint8_t> Out;
  putU32(Out, O.Image);
  Out.push_back(O.V.Ok ? 1 : 0);
  Out.push_back(uint8_t(O.V.Reason));
  return Out;
}

ImageOpenReply proto::decodeImageOpenResponse(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  ImageOpenReply O;
  O.Image = decodeImageHandle(R);
  O.V.Ok = R.flag() != 0;
  O.V.Reason = core::RejectReason(decodeReason(R));
  R.done();
  return O;
}

std::vector<uint8_t> proto::encodePatchRequest(const PatchRequestBody &P) {
  std::vector<uint8_t> Out;
  putU32(Out, P.Image);
  putU32(Out, P.Offset);
  putU32(Out, uint32_t(P.Bytes.size()));
  putBytes(Out, P.Bytes.data(), P.Bytes.size());
  Out.push_back(P.WantLint ? 1 : 0);
  return Out;
}

PatchRequestBody proto::decodePatchRequest(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  PatchRequestBody P;
  P.Image = decodeImageHandle(R);
  P.Offset = R.u32();
  uint32_t Len = R.u32();
  if (Len == 0)
    throw ProtocolError("patch length must be nonzero");
  if (uint64_t(P.Offset) + Len > uint64_t(UINT32_MAX))
    throw ProtocolError("patch range overflows the 32-bit image space");
  P.Bytes = R.bytes(Len);
  P.WantLint = R.flag() != 0;
  R.done();
  return P;
}

std::vector<uint8_t> proto::encodePatchResponse(const PatchReply &P) {
  std::vector<uint8_t> Out;
  Out.push_back(P.V.Ok ? 1 : 0);
  Out.push_back(uint8_t(P.V.Reason));
  putU32(Out, P.ChunksRescanned);
  putU32(Out, P.ChunkCacheHits);
  Out.push_back(P.HasLint ? 1 : 0);
  if (P.HasLint) {
    Out.push_back(P.Lint.ParseComplete ? 1 : 0);
    putU32(Out, P.Lint.Errors);
    putU32(Out, P.Lint.Warnings);
    putU32(Out, P.Lint.Notes);
    putU32(Out, uint32_t(P.Lint.Render.size()));
    putBytes(Out, P.Lint.Render.data(), P.Lint.Render.size());
  }
  return Out;
}

PatchReply proto::decodePatchResponse(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  PatchReply P;
  P.V.Ok = R.flag() != 0;
  P.V.Reason = core::RejectReason(decodeReason(R));
  P.ChunksRescanned = R.u32();
  P.ChunkCacheHits = R.u32();
  P.HasLint = R.flag() != 0;
  if (P.HasLint) {
    P.Lint.ParseComplete = R.flag() != 0;
    P.Lint.Errors = R.u32();
    P.Lint.Warnings = R.u32();
    P.Lint.Notes = R.u32();
    P.Lint.Render = R.str(R.u32());
  }
  R.done();
  return P;
}

std::vector<uint8_t> proto::encodeImageCloseRequest(uint32_t Image) {
  std::vector<uint8_t> Out;
  putU32(Out, Image);
  return Out;
}

uint32_t proto::decodeImageCloseRequest(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  uint32_t Image = decodeImageHandle(R);
  R.done();
  return Image;
}

std::vector<uint8_t>
proto::encodeMetricsResponse(const std::string &Exposition) {
  std::vector<uint8_t> Out;
  putU32(Out, uint32_t(Exposition.size()));
  putBytes(Out, Exposition.data(), Exposition.size());
  return Out;
}

std::string proto::decodeMetricsResponse(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  std::string Text = R.str(R.u32());
  R.done();
  return Text;
}

std::vector<uint8_t> proto::encodeErrorResponse(const std::string &Message) {
  std::vector<uint8_t> Out;
  putU32(Out, uint32_t(Message.size()));
  putBytes(Out, Message.data(), Message.size());
  return Out;
}

std::string proto::decodeErrorResponse(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  std::string Msg = R.str(R.u32());
  R.done();
  return Msg;
}
