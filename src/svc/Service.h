//===- svc/Service.h - Long-running verification service -------*- C++ -*-===//
///
/// \file
/// The production shape of the checker: a long-lived, multi-session
/// verification server in the style of NaCl's validator-in-the-runtime
/// deployment (Yee et al., Oakland 2009) — the tables are built once,
/// the pool's workers stay warm, and clients submit request batches over
/// the framed protocol (svc/Protocol.h) instead of paying per-process
/// startup. Four request kinds:
///
///  * verify — batch verification on the VerifierPool; each image's
///    buffer is *owned* by the submitted task (submitOne's owned-buffer
///    overload), so the session's receive buffers can be reused or
///    freed the moment the request is decoded;
///  * lint   — per-image CFG recovery + diagnostics (analysis/CfgLint),
///    fanned out on the pool, counted in the Metrics lint_* family;
///  * audit  — the policy meta-verifier (analysis/PolicyAudit) run
///    against the server's *live* tables on demand (a bit-rotted table
///    fails with a witness while the server is still up);
///  * tables — the serialized RSTB blob, content-addressed: a client
///    sends the hash it already has and a match short-circuits the
///    transfer (hash-only response), so remote checkers skip both the
///    transfer and the per-process table rebuild.
///
/// The in-process API (verify/lint/audit/tables) is the source of
/// truth; handleFrame and the serveFd loop are a thin codec shell over
/// it, so transports (socket, pipe, test harness) share one behavior.
/// Malformed request *bodies* are answered with an ErrorResponse frame
/// and the session continues; malformed *framing* (bad magic, hostile
/// length) aborts the session — the stream can no longer be trusted.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SVC_SERVICE_H
#define ROCKSALT_SVC_SERVICE_H

#include "svc/Protocol.h"
#include "svc/VerifierPool.h"

#include <memory>
#include <string>

namespace rocksalt {

namespace analysis {
struct DecoderDfas;
}

namespace svc {

struct ServiceOptions {
  unsigned Threads = 0;   ///< pool size; 0 → hardware_concurrency()
  Metrics *Met = nullptr; ///< external sink; null → service-owned instance
};

class Service {
public:
  explicit Service(ServiceOptions O = {});
  ~Service();

  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  // --- In-process request API ------------------------------------------

  /// Batch verification. Takes the images by value: ownership moves into
  /// the pool tasks, so the caller's buffers (e.g. a session's receive
  /// buffer) carry no lifetime obligation past this call.
  std::vector<proto::VerifyVerdict>
  verify(std::vector<std::vector<uint8_t>> Images);

  /// Batch lint. Borrows the images only until return (the fan-out is
  /// joined inside).
  std::vector<proto::LintReport>
  lint(const std::vector<std::vector<uint8_t>> &Images);

  /// Runs the policy meta-verifier against the live tables.
  proto::AuditVerdict audit();

  /// Content-addressed table distribution: when \p ExpectHashHex equals
  /// the live tables' hash the reply is hash-only (no blob).
  proto::TablesReply tables(const std::string &ExpectHashHex);

  // --- Framed transport shell ------------------------------------------

  /// Dispatches one decoded request frame and returns the encoded
  /// response frame. A malformed body or a non-request kind yields an
  /// ErrorResponse frame (counted in svc_errors). Sets \p *ShutdownOut
  /// when the frame was a ShutdownRequest.
  std::vector<uint8_t> handleFrame(const proto::Frame &F, bool *ShutdownOut);

  /// Why a serve loop returned.
  enum class ServeStatus {
    PeerClosed, ///< EOF at a frame boundary: session over, server lives
    Shutdown,   ///< peer sent ShutdownRequest: stop the server
  };

  /// Serves one session over a byte-stream fd pair (a connected socket:
  /// pass the same fd twice; stdin/stdout framing: pass 0 and 1).
  /// Returns on clean EOF or shutdown; throws proto::ProtocolError on
  /// malformed framing or mid-frame EOF.
  ServeStatus serveFd(int InFd, int OutFd);

  // --- Introspection ----------------------------------------------------

  Metrics &metrics() { return *Met; }
  VerifierPool &pool() { return Pool; }
  const core::PolicyTables &policyTables() const { return Tables; }
  /// The serialized live tables (built once at construction).
  const std::vector<uint8_t> &tablesBlob() const { return Blob; }
  /// Their content address (lowercase hex SHA-256).
  const std::string &tablesHashHex() const { return BlobHashHex; }

private:
  std::unique_ptr<Metrics> OwnedMet; ///< when no external sink was given
  Metrics *Met;
  VerifierPool Pool;
  const core::PolicyTables &Tables;
  std::vector<uint8_t> Blob;
  std::string BlobHashHex;
  /// Decoder reference DFAs for audit, built on first audit request
  /// (they are an order of magnitude more expensive than the policy
  /// tables and most sessions never audit).
  std::unique_ptr<analysis::DecoderDfas> AuditRefs;
  std::mutex AuditM; ///< guards AuditRefs construction
};

} // namespace svc
} // namespace rocksalt

#endif // ROCKSALT_SVC_SERVICE_H
