//===- svc/Service.h - Long-running verification service -------*- C++ -*-===//
///
/// \file
/// The production shape of the checker: a long-lived, multi-session
/// verification server in the style of NaCl's validator-in-the-runtime
/// deployment (Yee et al., Oakland 2009) — the tables are built once,
/// the pool's workers stay warm, and clients submit request batches over
/// the framed protocol (svc/Protocol.h) instead of paying per-process
/// startup. Seven request kinds:
///
///  * verify — batch verification on the VerifierPool; each image's
///    buffer is *owned* by the submitted task (submitOne's owned-buffer
///    overload), so the session's receive buffers can be reused or
///    freed the moment the request is decoded;
///  * lint   — per-image CFG recovery + diagnostics (analysis/CfgLint),
///    fanned out on the pool, counted in the Metrics lint_* family;
///  * audit  — the policy meta-verifier (analysis/PolicyAudit) run
///    against the server's *live* tables on demand (a bit-rotted table
///    fails with a witness while the server is still up);
///  * tables — the serialized RSTB blob, content-addressed: a client
///    sends the hash it already has and a match short-circuits the
///    transfer (hash-only response), so remote checkers skip both the
///    transfer and the per-process table rebuild;
///  * image-open / patch / image-close — the incremental path for
///    mutating images (src/incr): open registers an image and returns a
///    handle plus its initial verdict, each patch overwrites bytes in
///    place and re-verifies only the chunks the patch invalidated
///    (verdict bit-identical to a full re-check), close drops the
///    handle. Handles are *session-scoped*: each serveFd session owns
///    its own incremental verifier, so a handle can never leak into
///    another client's session, and the stateful kinds are rejected
///    with an ErrorResponse when no session state exists (the 2-arg
///    handleFrame overload used by stateless harnesses);
///  * metrics — the live counter/histogram exposition
///    (Metrics::exposition()), one metric per line, for scrapers and
///    `validator_cli --connect --metrics`.
///
/// The in-process API (verify/lint/audit/tables/imageOpen/patch/
/// imageClose/metricsText) is the source of truth; handleFrame and the
/// serveFd loop are a thin codec shell over it, so transports (socket,
/// pipe, test harness) share one behavior. handleFrame is safe to call
/// concurrently for *different* sessions (the event-driven serve layer,
/// svc/EventLoop.h, dispatches many sessions onto the pool at once);
/// frames of one session must stay serialized by the caller.
/// Malformed request *bodies* are answered with an ErrorResponse frame
/// and the session continues; malformed *framing* (bad magic, hostile
/// length) aborts the session — the stream can no longer be trusted.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SVC_SERVICE_H
#define ROCKSALT_SVC_SERVICE_H

#include "analysis/Dataflow.h"
#include "incr/IncrementalVerifier.h"
#include "svc/Protocol.h"
#include "svc/VerifierPool.h"

#include <memory>
#include <string>

namespace rocksalt {

namespace analysis {
struct DecoderDfas;
}

namespace svc {

struct ServiceOptions {
  unsigned Threads = 0;   ///< pool size; 0 → hardware_concurrency()
  Metrics *Met = nullptr; ///< external sink; null → service-owned instance
  /// listen(2) backlog for socket transports; 0 → SOMAXCONN. The old
  /// hardcoded backlog of 8 refused connections the moment a handful of
  /// clients arrived together.
  int Backlog = 0;
};

class Service {
public:
  explicit Service(ServiceOptions O = {});
  ~Service();

  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  // --- In-process request API ------------------------------------------

  /// Batch verification. Takes the images by value: ownership moves into
  /// the pool tasks, so the caller's buffers (e.g. a session's receive
  /// buffer) carry no lifetime obligation past this call.
  std::vector<proto::VerifyVerdict>
  verify(std::vector<std::vector<uint8_t>> Images);

  /// Batch lint. Borrows the images only until return (the fan-out is
  /// joined inside).
  std::vector<proto::LintReport>
  lint(const std::vector<std::vector<uint8_t>> &Images);

  /// Runs the policy meta-verifier against the live tables.
  proto::AuditVerdict audit();

  /// Content-addressed table distribution over the whole table registry
  /// (core/TableRegistry.h). With an empty \p Isa the behavior is the
  /// original wire contract: the reply names the default x86 entry, and
  /// a matching \p ExpectHashHex — against the x86 hash *or* any other
  /// registered entry's hash — short-circuits to a hash-only reply (no
  /// blob). A non-empty \p Isa selects that ISA's nacl-policy entry
  /// explicitly; an ISA nobody registered with the server yields a
  /// ProtocolError (an ErrorResponse on the wire, session survives).
  proto::TablesReply tables(const std::string &ExpectHashHex,
                            const std::string &Isa = {});

  /// The scrapeable metrics exposition (one metric per line).
  std::string metricsText() const { return Met->exposition(); }

  /// Per-session state for the stateful image-handle requests. One per
  /// serveFd session (stack-allocated there); harnesses exercising the
  /// in-process API construct their own.
  class Session {
  public:
    explicit Session(Service &S);
    incr::IncrementalVerifier &incremental() { return Incr; }
    analysis::IncrementalLinter &linter() { return Lint; }

  private:
    incr::IncrementalVerifier Incr;
    /// Lint state maintained beside the verifier, populated lazily per
    /// image on the first patch that asks for a lint report.
    analysis::IncrementalLinter Lint;
  };

  /// Registers \p Image with the session's incremental verifier and
  /// returns the handle plus the initial verdict.
  proto::ImageOpenReply imageOpen(Session &Sess, std::vector<uint8_t> Image);

  /// Overwrites [Offset, Offset+Bytes.size()) of the session image and
  /// re-verifies incrementally. With \p WantLint the session's
  /// incremental linter re-lints in O(patch window) (first request per
  /// image pays a full lint to seed the state) and the reply carries
  /// the report. Throws std::invalid_argument on an unknown handle or
  /// an out-of-range patch (the frame shell answers those with an
  /// ErrorResponse and keeps the session).
  proto::PatchReply patch(Session &Sess, uint32_t Image, uint32_t Offset,
                          const std::vector<uint8_t> &Bytes,
                          bool WantLint = false);

  /// Drops the session image. Throws std::invalid_argument on an
  /// unknown handle.
  void imageClose(Session &Sess, uint32_t Image);

  // --- Framed transport shell ------------------------------------------

  /// Dispatches one decoded request frame and returns the encoded
  /// response frame. A malformed body, a non-request kind, or a bad
  /// image handle yields an ErrorResponse frame (counted in svc_errors)
  /// and the session survives. Sets \p *ShutdownOut when the frame was
  /// a ShutdownRequest. \p Sess may be null: the stateful kinds then
  /// answer with an ErrorResponse.
  std::vector<uint8_t> handleFrame(const proto::Frame &F, Session *Sess,
                                   bool *ShutdownOut);

  /// Stateless shell (pre-incremental shape, kept for harnesses that
  /// never open images): identical, with no session state.
  std::vector<uint8_t> handleFrame(const proto::Frame &F, bool *ShutdownOut);

  /// Why a serve loop returned.
  enum class ServeStatus {
    PeerClosed, ///< EOF at a frame boundary: session over, server lives
    Shutdown,   ///< peer sent ShutdownRequest: stop the server
  };

  /// Serves one session over a byte-stream fd pair (a connected socket:
  /// pass the same fd twice; stdin/stdout framing: pass 0 and 1).
  /// Returns on clean EOF or shutdown; throws proto::ProtocolError on
  /// malformed framing or mid-frame EOF.
  ServeStatus serveFd(int InFd, int OutFd);

  // --- Introspection ----------------------------------------------------

  Metrics &metrics() { return *Met; }
  VerifierPool &pool() { return Pool; }
  const ServiceOptions &options() const { return Opts; }
  const core::PolicyTables &policyTables() const { return Tables; }
  /// The serialized live tables (built once at construction).
  const std::vector<uint8_t> &tablesBlob() const { return Blob; }
  /// Their content address (lowercase hex SHA-256).
  const std::string &tablesHashHex() const { return BlobHashHex; }

private:
  ServiceOptions Opts;
  std::unique_ptr<Metrics> OwnedMet; ///< when no external sink was given
  Metrics *Met;
  VerifierPool Pool;
  const core::PolicyTables &Tables;
  /// The fused verify fast path the verify endpoint drives (the legacy
  /// Tables stay for blob serving, lint, and audit, which consume the
  /// per-table form).
  const core::FusedPolicy &Fused;
  std::vector<uint8_t> Blob;
  std::string BlobHashHex;
  /// Decoder reference DFAs for audit, built on first audit request
  /// (they are an order of magnitude more expensive than the policy
  /// tables and most sessions never audit).
  std::unique_ptr<analysis::DecoderDfas> AuditRefs;
  std::mutex AuditM; ///< guards AuditRefs construction
};

} // namespace svc
} // namespace rocksalt

#endif // ROCKSALT_SVC_SERVICE_H
