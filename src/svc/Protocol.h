//===- svc/Protocol.h - Framed verification service protocol ---*- C++ -*-===//
///
/// \file
/// The wire format of the long-running verification service
/// (svc/Service.h): length-prefixed frames carrying one request or
/// response each, over any byte stream (a Unix-domain socket, a pipe
/// pair, or stdin/stdout). The framing is deliberately dumb — no
/// pipelining, no compression — so the trusted surface stays a few
/// dozen lines of bounds-checked parsing.
///
/// Frame layout (all integers little-endian):
///
///   offset  size  field
///   0       4     magic "RSVC"
///   4       1     protocol version (currently 1)
///   5       1     message kind (MsgKind)
///   6       4     body length N (<= MaxFrameBody)
///   10      N     body, encoding per kind (see the codec functions)
///
/// Request bodies:
///   Verify/Lint — u32 image count; per image u32 size + bytes
///   Audit       — empty
///   Tables      — u32 hash length + lowercase-hex hash chars (empty
///                 hash: unconditionally send the blob)
///   Shutdown    — empty
///   ImageOpen   — u32 image size + bytes (registers a mutable image
///                 with the session's incremental verifier)
///   Patch       — u32 image handle, u32 offset, u32 length + bytes
///                 (overwrite-in-place; zero-length and u32-overflowing
///                 ranges are rejected at the decoder)
///   ImageClose  — u32 image handle
///   Metrics     — empty (scrape the server's live counters)
///
/// Response bodies:
///   Verify     — u32 count; per image u8 ok + u8 reject reason
///   Lint       — u32 count; per image u8 parse-complete, u32 errors,
///                u32 warnings, u32 notes, u32 render length + text
///   Audit      — u8 pass, u32 render length + text
///   Tables     — u8 hash-matched, u32 hash length + hex chars,
///                u32 blob length + RSTB blob (length 0 when the hash
///                matched: the negotiation short-circuit)
///   Shutdown   — empty
///   ImageOpen  — u32 image handle (nonzero), u8 ok + u8 reject reason
///   Patch      — u8 ok + u8 reject reason, u32 chunks re-scanned,
///                u32 chunk-cache hits (the re-verified verdict after
///                the patch, bit-identical to a full re-check)
///   ImageClose — empty
///   Metrics    — u32 text length + the one-metric-per-line exposition
///                (svc/Metrics.h, Metrics::exposition())
///   Error      — u32 message length + text
///
/// Every decoder is strict: truncation, trailing bytes, out-of-range
/// lengths, and non-boolean flags all throw ProtocolError — a malformed
/// frame never silently yields a request (mirroring regex/TableIO's
/// corruption discipline).
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SVC_PROTOCOL_H
#define ROCKSALT_SVC_PROTOCOL_H

#include "core/Verifier.h"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rocksalt {
namespace svc {
namespace proto {

/// The current protocol version. Readers reject frames carrying any
/// other value.
constexpr uint8_t ProtocolVersion = 1;

/// Frames larger than this are rejected at the transport layer before
/// any allocation (a hostile length field cannot balloon the server).
constexpr uint32_t MaxFrameBody = 256u * 1024 * 1024;

/// Size of the fixed frame header preceding every body.
constexpr size_t FrameHeaderSize = 10;

enum class MsgKind : uint8_t {
  // Requests.
  VerifyRequest = 1,
  LintRequest = 2,
  AuditRequest = 3,
  TablesRequest = 4,
  ShutdownRequest = 5,
  ImageOpenRequest = 6,
  PatchRequest = 7,
  ImageCloseRequest = 8,
  MetricsRequest = 9,
  // Responses (request kind | 0x40).
  VerifyResponse = 65,
  LintResponse = 66,
  AuditResponse = 67,
  TablesResponse = 68,
  ShutdownResponse = 69,
  ImageOpenResponse = 70,
  PatchResponse = 71,
  ImageCloseResponse = 72,
  MetricsResponse = 73,
  ErrorResponse = 127,
};

const char *msgKindName(MsgKind K);

/// Thrown on any malformed frame or body.
class ProtocolError : public std::runtime_error {
public:
  explicit ProtocolError(const std::string &What)
      : std::runtime_error(What) {}
};

/// One decoded frame: the kind plus its raw body.
struct Frame {
  MsgKind Kind = MsgKind::ErrorResponse;
  std::vector<uint8_t> Body;
};

/// Appends the framed encoding of (\p Kind, \p Body) to \p Out.
void appendFrame(std::vector<uint8_t> &Out, MsgKind Kind,
                 const std::vector<uint8_t> &Body);

/// Attempts to parse one frame starting at \p *Pos. On success advances
/// \p *Pos past the frame and returns true. Returns false when the
/// bytes from *Pos form a valid but incomplete prefix (read more and
/// retry). Throws ProtocolError on bad magic, wrong version, unknown
/// kind, or an oversized body length — byte streams that can never
/// become a frame.
bool parseFrame(const uint8_t *Data, size_t Size, size_t *Pos, Frame *Out);

// --- Body codecs --------------------------------------------------------

/// Per-image verify verdict (the instrumented arrays stay server-side;
/// the wire carries the decision the sandbox loader needs).
struct VerifyVerdict {
  bool Ok = false;
  core::RejectReason Reason = core::RejectReason::None;
};

/// Per-image lint report: the diagnostic counts plus the rendered text,
/// bit-identical to analysis::CfgLintResult::render().
struct LintReport {
  bool ParseComplete = false;
  uint32_t Errors = 0, Warnings = 0, Notes = 0;
  std::string Render;
};

/// Audit outcome: overall verdict plus the rendered report.
struct AuditVerdict {
  bool Pass = false;
  std::string Render;
};

/// Tables response: the server's content hash always; the RSTB blob
/// only when the client's expected hash did not match (HashMatched
/// false) or was absent.
struct TablesReply {
  bool HashMatched = false;
  std::string HashHex;
  std::vector<uint8_t> Blob;
};

/// Tables request: the client's cached content hash (empty when it has
/// none) plus an optional ISA selector naming which registry entry it
/// wants. The selector is an appended extension field — a request
/// without one is the original v1 wire shape and resolves to the
/// default x86 entry (or, when the hash names any registered entry, to
/// that entry), so old clients keep working unchanged against a
/// multi-ISA server and old servers reject ISA-bearing requests
/// loudly (trailing bytes) rather than mis-serving them.
struct TablesRequestBody {
  std::string ExpectHashHex;
  std::string Isa;
};

std::vector<uint8_t>
encodeImageBatch(const std::vector<std::vector<uint8_t>> &Images);
std::vector<std::vector<uint8_t>>
decodeImageBatch(const std::vector<uint8_t> &Body);

std::vector<uint8_t>
encodeVerifyResponse(const std::vector<VerifyVerdict> &Verdicts);
std::vector<VerifyVerdict>
decodeVerifyResponse(const std::vector<uint8_t> &Body);

std::vector<uint8_t>
encodeLintResponse(const std::vector<LintReport> &Reports);
std::vector<LintReport> decodeLintResponse(const std::vector<uint8_t> &Body);

std::vector<uint8_t> encodeAuditResponse(const AuditVerdict &V);
AuditVerdict decodeAuditResponse(const std::vector<uint8_t> &Body);

std::vector<uint8_t> encodeTablesRequest(const std::string &ExpectHashHex,
                                         const std::string &Isa = {});
TablesRequestBody decodeTablesRequest(const std::vector<uint8_t> &Body);

std::vector<uint8_t> encodeTablesResponse(const TablesReply &R);
TablesReply decodeTablesResponse(const std::vector<uint8_t> &Body);

std::vector<uint8_t> encodeErrorResponse(const std::string &Message);
std::string decodeErrorResponse(const std::vector<uint8_t> &Body);

// --- Incremental (image-handle) codecs ---------------------------------

/// Image-open outcome: the session-scoped handle plus the initial
/// verdict on the image as opened.
struct ImageOpenReply {
  uint32_t Image = 0; ///< server-assigned handle, never 0
  VerifyVerdict V;
};

/// A decoded patch request: overwrite [Offset, Offset+Bytes.size()) of
/// the session image \p Image. The decoder rejects a zero handle, a
/// zero-length patch, and an offset+length that overflows u32 — those
/// can never name a valid range, so they die before touching state.
struct PatchRequestBody {
  uint32_t Image = 0;
  uint32_t Offset = 0;
  std::vector<uint8_t> Bytes;
  /// Ask the server to re-lint the patched image incrementally and
  /// attach the report to the reply (a trailing flag byte on the wire).
  bool WantLint = false;
};

/// Patch outcome: the re-verified verdict plus what the incremental
/// pass did (the client-visible half of the incr_* metrics). When the
/// request set WantLint, HasLint is true and Lint carries the
/// incrementally maintained report — bit-identical to a fresh
/// `lintImage` of the image's current bytes.
struct PatchReply {
  VerifyVerdict V;
  uint32_t ChunksRescanned = 0;
  uint32_t ChunkCacheHits = 0;
  bool HasLint = false;
  LintReport Lint;
};

std::vector<uint8_t> encodeImageOpenRequest(const std::vector<uint8_t> &Image);
std::vector<uint8_t> decodeImageOpenRequest(const std::vector<uint8_t> &Body);

std::vector<uint8_t> encodeImageOpenResponse(const ImageOpenReply &R);
ImageOpenReply decodeImageOpenResponse(const std::vector<uint8_t> &Body);

std::vector<uint8_t> encodePatchRequest(const PatchRequestBody &P);
PatchRequestBody decodePatchRequest(const std::vector<uint8_t> &Body);

std::vector<uint8_t> encodePatchResponse(const PatchReply &R);
PatchReply decodePatchResponse(const std::vector<uint8_t> &Body);

std::vector<uint8_t> encodeImageCloseRequest(uint32_t Image);
uint32_t decodeImageCloseRequest(const std::vector<uint8_t> &Body);

/// Metrics scrape: the response body is the plain-text exposition, one
/// metric per line (the request body is empty).
std::vector<uint8_t> encodeMetricsResponse(const std::string &Exposition);
std::string decodeMetricsResponse(const std::vector<uint8_t> &Body);

} // namespace proto
} // namespace svc
} // namespace rocksalt

#endif // ROCKSALT_SVC_PROTOCOL_H
