//===- svc/SessionConn.cpp - One multiplexed RSVC session -----------------===//

#include "svc/SessionConn.h"

#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace rocksalt;
using namespace rocksalt::svc;

SessionConn::SessionConn(Service &Svc, int Fd, size_t BudgetBytes,
                         std::function<void()> Wake)
    : Svc(Svc), Met(Svc.metrics()), Fd(Fd), Budget(BudgetBytes),
      Wake(std::move(Wake)), Sess(Svc) {}

SessionConn::~SessionConn() { ::close(Fd); }

void SessionConn::markDead(bool PeerDrop) {
  if (Dead)
    return;
  Dead = true;
  if (PeerDrop)
    Met.SvcPeerDrops.add();
}

short SessionConn::events(bool Draining) {
  bool HaveOut;
  size_t Queued;
  {
    std::lock_guard<std::mutex> L(M);
    HaveOut = !OutQ.empty();
    Queued = OutBytes;
  }
  short E = 0;
  if (Dead)
    return E;
  if (HaveOut)
    E |= POLLOUT;
  if (Draining || ReadEof)
    return E;
  // Backpressure: a session whose queued responses exceed the budget
  // stops being read (and, via tryDispatch, stops being served) until
  // the client drains its end. One pause event is counted per edge.
  if (Queued > Budget || HasPending) {
    if (Queued > Budget && !Paused) {
      Paused = true;
      Met.SvcBackpressurePauses.add();
    }
    return E;
  }
  Paused = false;
  return E | POLLIN;
}

void SessionConn::onReadable() {
  if (Dead || ReadEof)
    return;
  uint8_t Buf[64 * 1024];
  ssize_t N;
  do {
    N = ::recv(Fd, Buf, sizeof(Buf), 0);
  } while (N < 0 && errno == EINTR);
  if (N < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    markDead(errno == ECONNRESET);
    return;
  }
  if (N == 0) {
    ReadEof = true;
    return;
  }
  Met.SvcBytesIn.add(uint64_t(N));
  In.insert(In.end(), Buf, Buf + N);
}

void SessionConn::parsePending() {
  if (HasPending || Dead)
    return;
  size_t Pos = 0;
  try {
    HasPending = proto::parseFrame(In.data(), In.size(), &Pos, &Pending);
  } catch (const proto::ProtocolError &) {
    // Malformed framing: the stream can no longer be trusted — same
    // policy as serveFd, except only this session dies, not the loop.
    markDead(false);
    return;
  }
  if (HasPending)
    In.erase(In.begin(), In.begin() + long(Pos));
  else if (ReadEof && !In.empty())
    markDead(false); // EOF inside a frame: the peer walked away mid-send
}

void SessionConn::tryDispatch(VerifierPool &Pool, VerifierPool::TaskGroup &G,
                              bool Allow) {
  parsePending();
  if (Dead || !HasPending || !Allow)
    return;
  {
    std::lock_guard<std::mutex> L(M);
    if (InFlightFlag)
      return;
    if (OutBytes > Budget)
      return; // backpressure also gates dispatch, not just reads
    InFlightFlag = true;
  }
  HasPending = false;
  // The task's last touch of `this` happens under M with InFlightFlag
  // still observable; the wake runs on a by-value copy so the loop may
  // reap the connection the moment it sees the flag drop.
  Pool.run(G, [this, F = std::move(Pending),
               WakeCopy = Wake]() mutable {
    std::vector<uint8_t> Resp;
    bool Shutdown = false;
    bool Failed = false;
    try {
      Resp = Svc.handleFrame(F, &Sess, &Shutdown);
    } catch (...) {
      Failed = true; // handleFrame's own catches answer protocol errors;
                     // anything past them (OOM) forfeits the session
    }
    {
      std::lock_guard<std::mutex> L(M);
      if (Failed) {
        TaskFailed = true;
      } else {
        OutBytes += Resp.size();
        OutQ.push_back(std::move(Resp));
        ShutdownFlag |= Shutdown;
      }
      InFlightFlag = false;
    }
    WakeCopy();
  });
  Pending = proto::Frame{};
}

void SessionConn::onWritable() {
  if (Dead)
    return;
  std::unique_lock<std::mutex> L(M);
  while (!OutQ.empty()) {
    const std::vector<uint8_t> &Front = OutQ.front();
    ssize_t N = ::send(Fd, Front.data() + OutHead, Front.size() - OutHead,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return;
      L.unlock();
      // EPIPE here is the client that died between request and reply —
      // the bug that used to SIGPIPE the whole server.
      markDead(errno == EPIPE || errno == ECONNRESET);
      return;
    }
    Met.SvcBytesOut.add(uint64_t(N));
    OutHead += size_t(N);
    OutBytes -= size_t(N);
    if (OutHead == Front.size()) {
      OutQ.pop_front();
      OutHead = 0;
    }
  }
}

bool SessionConn::shutdownSeen() {
  std::lock_guard<std::mutex> L(M);
  return ShutdownFlag;
}

bool SessionConn::inFlight() {
  std::lock_guard<std::mutex> L(M);
  return InFlightFlag;
}

bool SessionConn::reapable(bool Draining) {
  std::lock_guard<std::mutex> L(M);
  if (InFlightFlag)
    return false; // the pool task still references this object
  if (TaskFailed)
    Dead = true;
  if (Dead)
    return true;
  if (!OutQ.empty())
    return false;
  if (Draining)
    return true; // flushed and idle: drain does not wait for peer EOF
  return ReadEof && !HasPending && In.empty();
}
