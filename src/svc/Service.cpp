//===- svc/Service.cpp - Long-running verification service ----------------===//

#include "svc/Service.h"

#include "analysis/CfgLint.h"
#include "analysis/PolicyAudit.h"
#include "core/TableRegistry.h"
#include "regex/TableIO.h"

#include <cerrno>
#include <chrono>
#include <sys/socket.h>
#include <unistd.h>

using namespace rocksalt;
using namespace rocksalt::svc;

namespace {

uint64_t nowNanos() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

void writeAll(int Fd, const std::vector<uint8_t> &Data) {
  // send(MSG_NOSIGNAL) so a client that closed its socket mid-reply
  // yields EPIPE here instead of a process-killing SIGPIPE. Non-socket
  // fds (the stdio transport) report ENOTSOCK and fall back to write();
  // that path relies on the caller ignoring SIGPIPE (runServer does).
  bool Socket = true;
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N =
        Socket ? ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL)
               : ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Socket && errno == ENOTSOCK) {
        Socket = false;
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET)
        throw proto::ProtocolError("peer closed the stream mid-reply");
      throw proto::ProtocolError("write error on session stream");
    }
    Off += size_t(N);
  }
}

} // namespace

Service::Service(ServiceOptions O)
    : Opts(O), OwnedMet(O.Met ? nullptr : std::make_unique<Metrics>()),
      Met(O.Met ? O.Met : OwnedMet.get()),
      Pool(VerifierPool::Options{O.Threads}, Met),
      Tables(core::policyTables()), Fused(core::fusedPolicyTables()),
      Blob(core::serializePolicyTables(Tables)),
      BlobHashHex(re::verifyBlobHashHex(Blob)) {}

Service::~Service() = default;

std::vector<proto::VerifyVerdict>
Service::verify(std::vector<std::vector<uint8_t>> Images) {
  // TaskGroup + wait() instead of futures: wait() *helps* (the waiter
  // drains queued tasks), so a pool worker that is itself executing a
  // session's handleFrame — the event loop dispatches whole frames onto
  // the pool — makes progress on its own fan-out instead of blocking a
  // worker slot. With future::get() here, N sessions' verify frames on
  // an N-thread pool would deadlock: every worker parked on a future
  // whose task sits behind it in a queue. The images live on this
  // frame's stack until wait() returns, so borrowing is safe.
  Met->BatchImages.record(Images.size());
  std::vector<core::CheckResult> Results(Images.size());
  VerifierPool::TaskGroup G;
  for (size_t I = 0; I < Images.size(); ++I) {
    Met->ImagesSubmitted.add();
    Pool.run(G, [this, &Images, &Results, I] {
      uint64_t T0 = nowNanos();
      core::RockSalt V(Fused);
      Results[I] = V.check(Images[I].data(), uint32_t(Images[I].size()));
      recordOutcome(*Met, Results[I], Images[I].size(), nowNanos() - T0);
    });
  }
  Pool.wait(G);
  std::vector<proto::VerifyVerdict> Verdicts;
  Verdicts.reserve(Results.size());
  for (const core::CheckResult &R : Results)
    Verdicts.push_back({R.Ok, R.Reason});
  return Verdicts;
}

std::vector<proto::LintReport>
Service::lint(const std::vector<std::vector<uint8_t>> &Images) {
  std::vector<analysis::CfgLintResult> Results(Images.size());
  VerifierPool::TaskGroup G;
  for (size_t I = 0; I < Images.size(); ++I)
    Pool.run(G, [this, &Images, &Results, I] {
      Results[I] = analysis::lintImage(Tables, Images[I], Met);
    });
  Pool.wait(G);

  std::vector<proto::LintReport> Reports;
  Reports.reserve(Results.size());
  for (const analysis::CfgLintResult &L : Results) {
    proto::LintReport R;
    R.ParseComplete = L.ParseComplete;
    R.Errors = L.Errors;
    R.Warnings = L.Warnings;
    R.Notes = L.Notes;
    R.Render = L.render();
    Reports.push_back(std::move(R));
  }
  return Reports;
}

proto::AuditVerdict Service::audit() {
  {
    std::lock_guard<std::mutex> L(AuditM);
    if (!AuditRefs)
      AuditRefs =
          std::make_unique<analysis::DecoderDfas>(analysis::buildDecoderDfas());
  }
  analysis::AuditReport R = analysis::auditPolicy(Tables, *AuditRefs);
  return {R.Pass, R.render()};
}

proto::TablesReply Service::tables(const std::string &ExpectHashHex,
                                   const std::string &Isa) {
  proto::TablesReply R;
  if (!Isa.empty()) {
    // Explicit selector: serve that ISA's registry entry or fail loudly
    // (a ProtocolError becomes an ErrorResponse; the session survives).
    const core::TableEntry *E =
        core::TableRegistry::instance().byKey(Isa, core::PolicySetNacl);
    if (!E)
      throw proto::ProtocolError("no policy tables registered for ISA '" +
                                 Isa + "'");
    R.HashHex = E->HashHex;
    if (!ExpectHashHex.empty() && ExpectHashHex == E->HashHex) {
      R.HashMatched = true;
      Met->SvcTablesHashHits.add();
    } else {
      R.Blob = E->Blob;
    }
    return R;
  }
  R.HashHex = BlobHashHex;
  if (!ExpectHashHex.empty() && ExpectHashHex == BlobHashHex) {
    R.HashMatched = true; // negotiation short-circuit: no blob on the wire
    Met->SvcTablesHashHits.add();
  } else if (const core::TableEntry *E =
                 ExpectHashHex.empty()
                     ? nullptr
                     : core::TableRegistry::instance().byHash(ExpectHashHex)) {
    // Old wire shape, but the client's cached hash names *some* other
    // registered entry — confirm it by hash instead of force-feeding the
    // x86 blob (multi-ISA clients pre-dating the selector field).
    R.HashHex = E->HashHex;
    R.HashMatched = true;
    Met->SvcTablesHashHits.add();
  } else {
    R.Blob = Blob;
  }
  return R;
}

Service::Session::Session(Service &S)
    : Incr(S.policyTables(), incr::IncrementalOptions{}, &S.metrics()),
      Lint(S.policyTables(), &S.metrics()) {}

proto::ImageOpenReply Service::imageOpen(Session &Sess,
                                         std::vector<uint8_t> Image) {
  incr::IncrResult R;
  incr::ImageId Id = Sess.incremental().open(std::move(Image), &R);
  return {Id, {R.Ok, R.Reason}};
}

proto::PatchReply Service::patch(Session &Sess, uint32_t Image,
                                 uint32_t Offset,
                                 const std::vector<uint8_t> &Bytes,
                                 bool WantLint) {
  incr::IncrResult R = Sess.incremental().patch(Image, Offset, Bytes.data(),
                                                uint32_t(Bytes.size()));
  proto::PatchReply P;
  P.V = {R.Ok, R.Reason};
  P.ChunksRescanned = R.ChunksRescanned;
  P.ChunkCacheHits = R.ChunkCacheHits;
  if (WantLint) {
    const incr::ImageEntry *E = Sess.incremental().store().get(Image);
    analysis::IncrementalLinter &L = Sess.linter();
    analysis::IncrementalLinter::Summary S =
        L.tracks(Image)
            ? L.relint(Image, E->Bytes.data(), E->size(), R)
            : L.open(Image, E->Bytes.data(), E->size(), E->ChunkBytes);
    P.HasLint = true;
    P.Lint.ParseComplete = S.ParseComplete;
    P.Lint.Errors = S.Errors;
    P.Lint.Warnings = S.Warnings;
    P.Lint.Notes = S.Notes;
    P.Lint.Render = L.render(Image);
  }
  return P;
}

void Service::imageClose(Session &Sess, uint32_t Image) {
  Sess.incremental().close(Image);
  Sess.linter().close(Image); // no-op when lint was never requested
}

std::vector<uint8_t> Service::handleFrame(const proto::Frame &F,
                                          bool *ShutdownOut) {
  return handleFrame(F, nullptr, ShutdownOut);
}

std::vector<uint8_t> Service::handleFrame(const proto::Frame &F, Session *Sess,
                                          bool *ShutdownOut) {
  using proto::MsgKind;
  if (ShutdownOut)
    *ShutdownOut = false;
  uint64_t T0 = nowNanos();
  std::vector<uint8_t> Out;
  try {
    switch (F.Kind) {
    case MsgKind::VerifyRequest: {
      Met->SvcVerifyRequests.add();
      std::vector<proto::VerifyVerdict> V =
          verify(proto::decodeImageBatch(F.Body));
      proto::appendFrame(Out, MsgKind::VerifyResponse,
                         proto::encodeVerifyResponse(V));
      break;
    }
    case MsgKind::LintRequest: {
      Met->SvcLintRequests.add();
      std::vector<std::vector<uint8_t>> Images =
          proto::decodeImageBatch(F.Body);
      proto::appendFrame(Out, MsgKind::LintResponse,
                         proto::encodeLintResponse(lint(Images)));
      break;
    }
    case MsgKind::AuditRequest: {
      Met->SvcAuditRequests.add();
      if (!F.Body.empty())
        throw proto::ProtocolError("audit request body must be empty");
      proto::appendFrame(Out, MsgKind::AuditResponse,
                         proto::encodeAuditResponse(audit()));
      break;
    }
    case MsgKind::TablesRequest: {
      Met->SvcTablesRequests.add();
      proto::TablesRequestBody TR = proto::decodeTablesRequest(F.Body);
      proto::TablesReply R = tables(TR.ExpectHashHex, TR.Isa);
      proto::appendFrame(Out, MsgKind::TablesResponse,
                         proto::encodeTablesResponse(R));
      break;
    }
    case MsgKind::MetricsRequest: {
      Met->SvcMetricsRequests.add();
      if (!F.Body.empty())
        throw proto::ProtocolError("metrics request body must be empty");
      proto::appendFrame(Out, MsgKind::MetricsResponse,
                         proto::encodeMetricsResponse(metricsText()));
      break;
    }
    case MsgKind::ShutdownRequest: {
      if (!F.Body.empty())
        throw proto::ProtocolError("shutdown request body must be empty");
      if (ShutdownOut)
        *ShutdownOut = true;
      proto::appendFrame(Out, MsgKind::ShutdownResponse, {});
      break;
    }
    case MsgKind::ImageOpenRequest: {
      Met->SvcImageOpenRequests.add();
      if (!Sess)
        throw proto::ProtocolError(
            "image-handle requests require a stateful session");
      proto::ImageOpenReply R =
          imageOpen(*Sess, proto::decodeImageOpenRequest(F.Body));
      proto::appendFrame(Out, MsgKind::ImageOpenResponse,
                         proto::encodeImageOpenResponse(R));
      break;
    }
    case MsgKind::PatchRequest: {
      Met->SvcPatchRequests.add();
      if (!Sess)
        throw proto::ProtocolError(
            "image-handle requests require a stateful session");
      proto::PatchRequestBody B = proto::decodePatchRequest(F.Body);
      proto::PatchReply R =
          patch(*Sess, B.Image, B.Offset, B.Bytes, B.WantLint);
      proto::appendFrame(Out, MsgKind::PatchResponse,
                         proto::encodePatchResponse(R));
      Met->SvcPatchNanos.record(nowNanos() - T0);
      break;
    }
    case MsgKind::ImageCloseRequest: {
      Met->SvcImageCloseRequests.add();
      if (!Sess)
        throw proto::ProtocolError(
            "image-handle requests require a stateful session");
      imageClose(*Sess, proto::decodeImageCloseRequest(F.Body));
      proto::appendFrame(Out, MsgKind::ImageCloseResponse, {});
      break;
    }
    default:
      throw proto::ProtocolError(std::string("frame kind ") +
                                 proto::msgKindName(F.Kind) +
                                 " is not a request");
    }
  } catch (const proto::ProtocolError &E) {
    // A decodable frame with a malformed body: answer and keep the
    // session; only transport-level garbage (parseFrame throws) kills it.
    Met->SvcErrors.add();
    Out.clear();
    proto::appendFrame(Out, MsgKind::ErrorResponse,
                       proto::encodeErrorResponse(E.what()));
  } catch (const std::invalid_argument &E) {
    // Well-formed request naming a bad image handle or patch range:
    // same recovery — the session's other handles stay live.
    Met->SvcErrors.add();
    Out.clear();
    proto::appendFrame(Out, MsgKind::ErrorResponse,
                       proto::encodeErrorResponse(E.what()));
  }
  Met->SvcRequestNanos.record(nowNanos() - T0);
  return Out;
}

Service::ServeStatus Service::serveFd(int InFd, int OutFd) {
  std::vector<uint8_t> In;
  size_t Pos = 0;
  uint8_t Buf[64 * 1024];
  proto::Frame F;
  bool Shutdown = false;
  Session Sess(*this); // image handles live and die with this session
  while (true) {
    while (proto::parseFrame(In.data(), In.size(), &Pos, &F)) {
      writeAll(OutFd, handleFrame(F, &Sess, &Shutdown));
      if (Shutdown) {
        Met->SvcSessions.add();
        return ServeStatus::Shutdown;
      }
    }
    if (Pos) { // drop consumed frames before the next read grows the buffer
      In.erase(In.begin(), In.begin() + long(Pos));
      Pos = 0;
    }
    ssize_t N = ::read(InFd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      throw proto::ProtocolError("read error on session stream");
    }
    if (N == 0) {
      if (!In.empty())
        throw proto::ProtocolError("EOF inside a frame");
      Met->SvcSessions.add();
      return ServeStatus::PeerClosed;
    }
    In.insert(In.end(), Buf, Buf + N);
  }
}
