//===- svc/EventLoop.cpp - Event-driven multi-session serve loop ----------===//

#include "svc/EventLoop.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace rocksalt;
using namespace rocksalt::svc;

namespace {

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void setNonblocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

} // namespace

EventLoop::EventLoop(Service &Svc, int ListenFd, EventLoopOptions O)
    : Svc(Svc), Met(Svc.metrics()), Opts(O), ListenFd(ListenFd) {
  setNonblocking(ListenFd);
  int P[2];
  if (::pipe2(P, O_NONBLOCK | O_CLOEXEC) != 0)
    throw std::runtime_error("event loop: pipe2 failed");
  WakeRd = P[0];
  WakeWr = P[1];
}

EventLoop::~EventLoop() {
  // In-flight pool tasks reference their SessionConn and the wake pipe;
  // join them before either goes away.
  Svc.pool().wait(DispatchG);
  Conns.clear();
  if (ListenFd >= 0)
    ::close(ListenFd);
  ::close(WakeRd);
  ::close(WakeWr);
}

void EventLoop::requestStop() {
  StopFlag.store(true, std::memory_order_release);
  // Self-pipe write is async-signal-safe; EAGAIN (pipe full) still wakes.
  uint8_t B = 1;
  (void)!::write(WakeWr, &B, 1);
}

void EventLoop::beginDrain() {
  if (Draining)
    return;
  Draining = true;
  DrainDeadlineNs = nowNs() + int64_t(Opts.DrainTimeoutMs) * 1000000;
  if (ListenFd >= 0) {
    ::close(ListenFd); // stop accepting; queued SYNs get RST, which is
    ListenFd = -1;     // the documented drain contract
  }
}

void EventLoop::acceptSome() {
  while (Conns.size() < Opts.MaxSessions) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd >= 0) {
      int WakeFd = WakeWr;
      Conns.push_back(std::make_unique<SessionConn>(
          Svc, Fd, Opts.SessionBudgetBytes, [WakeFd] {
            uint8_t B = 1;
            (void)!::write(WakeFd, &B, 1);
          }));
      Met.SvcSessionsActive.add();
      continue;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    Met.SvcAcceptErrors.add();
    if (errno == ECONNABORTED || errno == EPROTO)
      continue; // the peer gave up while queued; nothing to serve
    // Resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) and anything
    // unexpected: keep the server alive. The listen fd stays readable
    // while the backlog holds connections we cannot accept, so it must
    // leave the poll set until the backoff expires or poll() spins hot.
    std::fprintf(stderr, "rsvc: accept: %s; backing off %ums\n",
                 std::strerror(errno), Opts.AcceptBackoffMs);
    Met.SvcAcceptBackoffs.add();
    BackoffUntilNs = nowNs() + int64_t(Opts.AcceptBackoffMs) * 1000000;
    return;
  }
}

EventLoop::Status EventLoop::run() {
  std::vector<pollfd> Pfds;
  while (true) {
    if (StopFlag.load(std::memory_order_acquire))
      beginDrain();

    // Reap first so Conns.size() reflects live sessions before the
    // MaxSessions/accept decision below.
    for (size_t I = 0; I < Conns.size();) {
      if (Conns[I]->reapable(Draining)) {
        Met.SvcSessions.add();
        Met.SvcSessionsActive.sub();
        Conns.erase(Conns.begin() + long(I));
      } else {
        ++I;
      }
    }

    if (Draining && Conns.empty())
      return SawShutdown ? Status::Shutdown : Status::Stopped;

    int64_t Now = nowNs();
    if (Draining && Now >= DrainDeadlineNs) {
      // Overdue: finish what is running (the conns are referenced by
      // their tasks), then cut every straggler regardless of unflushed
      // responses.
      Svc.pool().wait(DispatchG);
      for (size_t I = 0; I < Conns.size(); ++I) {
        Met.SvcSessions.add();
        Met.SvcSessionsActive.sub();
      }
      Conns.clear();
      return SawShutdown ? Status::Shutdown : Status::Stopped;
    }

    Pfds.clear();
    Pfds.push_back({WakeRd, POLLIN, 0});
    bool InBackoff = BackoffUntilNs > Now;
    size_t ListenSlot = size_t(-1);
    if (!Draining && ListenFd >= 0 && !InBackoff &&
        Conns.size() < Opts.MaxSessions) {
      ListenSlot = Pfds.size();
      Pfds.push_back({ListenFd, POLLIN, 0});
    }
    size_t ConnBase = Pfds.size();
    for (auto &C : Conns)
      Pfds.push_back({C->fd(), C->events(Draining), 0});

    int TimeoutMs = -1;
    if (InBackoff)
      TimeoutMs = int((BackoffUntilNs - Now) / 1000000) + 1;
    if (Draining) {
      int DrainMs = int((DrainDeadlineNs - Now) / 1000000) + 1;
      if (TimeoutMs < 0 || DrainMs < TimeoutMs)
        TimeoutMs = DrainMs;
    }

    int N = ::poll(Pfds.data(), nfds_t(Pfds.size()), TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      throw std::runtime_error("event loop: poll failed");
    }

    if (Pfds[0].revents & POLLIN) {
      uint8_t Buf[256];
      while (::read(WakeRd, Buf, sizeof(Buf)) > 0)
        ;
    }

    if (ListenSlot != size_t(-1) && (Pfds[ListenSlot].revents & POLLIN))
      acceptSome();

    for (size_t I = 0; I < Conns.size() && ConnBase + I < Pfds.size(); ++I) {
      short Re = Pfds[ConnBase + I].revents;
      if (Re & POLLOUT)
        Conns[I]->onWritable();
      // POLLHUP surfaces as recv()==0 and POLLERR as a recv error, so
      // both route through the ordinary read path.
      if (Re & (POLLIN | POLLHUP | POLLERR))
        Conns[I]->onReadable();
    }

    bool ShutdownSeen = false;
    for (auto &C : Conns) {
      C->tryDispatch(Svc.pool(), DispatchG, !Draining);
      ShutdownSeen |= C->shutdownSeen();
    }
    if (ShutdownSeen && !Draining) {
      SawShutdown = true;
      beginDrain();
    }
  }
}

int svc::listenUnixSocket(const std::string &Path, int Backlog) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    throw std::runtime_error("socket path too long: " + Path);
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    throw std::runtime_error("cannot create socket");
  ::unlink(Path.c_str()); // replace a stale socket from a dead server
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    throw std::runtime_error("cannot bind " + Path);
  }
  if (::listen(Fd, Backlog > 0 ? Backlog : SOMAXCONN) != 0) {
    ::close(Fd);
    throw std::runtime_error("cannot listen on " + Path);
  }
  return Fd;
}

int svc::connectUnixSocket(const std::string &Path) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    throw std::runtime_error("socket path too long: " + Path);
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    throw std::runtime_error("cannot create socket");
  while (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
         0) {
    if (errno == EINTR)
      continue;
    ::close(Fd);
    throw std::runtime_error("cannot connect to " + Path);
  }
  return Fd;
}
