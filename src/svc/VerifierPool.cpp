//===- svc/VerifierPool.cpp - Work-stealing verification pool -------------===//

#include "svc/VerifierPool.h"

#include <chrono>

using namespace rocksalt;
using namespace rocksalt::svc;

namespace {

/// Which pool (if any) the current thread is a worker of, and its index.
thread_local const VerifierPool *TlsPool = nullptr;
thread_local unsigned TlsWorker = 0;

uint64_t nowNanos() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

} // namespace

void svc::recordOutcome(Metrics &M, const core::CheckResult &R, uint64_t Bytes,
                        uint64_t Nanos) {
  M.ImagesVerified.add();
  M.BytesVerified.add(Bytes);
  M.VerifyNanos.record(Nanos);
  if (R.Ok) {
    M.ImagesAccepted.add();
    return;
  }
  M.ImagesRejected.add();
  switch (R.Reason) {
  case core::RejectReason::NoParse:
    M.RejectNoParse.add();
    break;
  case core::RejectReason::BadTarget:
    M.RejectBadTarget.add();
    break;
  case core::RejectReason::UnalignedBundle:
    M.RejectUnaligned.add();
    break;
  case core::RejectReason::None:
    break;
  }
}

VerifierPool::VerifierPool() : VerifierPool(Options()) {}

VerifierPool::VerifierPool(Options O, Metrics *M)
    : Met(M ? M : &globalMetrics()), Fused(core::fusedPolicyTables()) {
  unsigned N = O.Threads ? O.Threads : std::thread::hardware_concurrency();
  if (N < 1)
    N = 1;
  Deques.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Deques.push_back(std::make_unique<Worker>());
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

VerifierPool::~VerifierPool() {
  Stop.store(true, std::memory_order_release);
  SleepCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void VerifierPool::push(Task T) {
  unsigned Victim;
  if (TlsPool == this) {
    Victim = TlsWorker; // worker-local push: LIFO locality, no contention
  } else {
    Victim = RoundRobin.fetch_add(1, std::memory_order_relaxed) %
             unsigned(Deques.size());
  }
  {
    std::lock_guard<std::mutex> L(Deques[Victim]->M);
    Deques[Victim]->Dq.push_back(std::move(T));
  }
  Queued.fetch_add(1, std::memory_order_release);
  Met->QueueDepth.add();
  SleepCv.notify_one();
}

bool VerifierPool::tryGet(unsigned Self, Task &Out) {
  unsigned N = unsigned(Deques.size());
  // Own deque first, newest task first (cache-warm).
  if (Self < N) {
    Worker &W = *Deques[Self];
    std::lock_guard<std::mutex> L(W.M);
    if (!W.Dq.empty()) {
      Out = std::move(W.Dq.back());
      W.Dq.pop_back();
      Queued.fetch_sub(1, std::memory_order_relaxed);
      Met->QueueDepth.sub();
      return true;
    }
  }
  // Steal oldest task from someone else.
  for (unsigned I = 1; I <= N; ++I) {
    unsigned V = (Self + I) % N;
    if (V == Self)
      continue;
    Worker &W = *Deques[V];
    std::lock_guard<std::mutex> L(W.M);
    if (!W.Dq.empty()) {
      Out = std::move(W.Dq.front());
      W.Dq.pop_front();
      Queued.fetch_sub(1, std::memory_order_relaxed);
      Met->QueueDepth.sub();
      if (Self < N)
        Met->TasksStolen.add();
      return true;
    }
  }
  return false;
}

void VerifierPool::runTask(Task &T) {
  T.Work();
  Met->TasksRun.add();
  if (T.Group &&
      T.Group->Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the group: wake blocked waiters. Taking DoneM orders
    // this notify against a waiter's Pending re-check under the same
    // lock, so a wakeup cannot slip between its check and its wait.
    std::lock_guard<std::mutex> L(DoneM);
    DoneCv.notify_all();
  }
}

void VerifierPool::workerLoop(unsigned Id) {
  TlsPool = this;
  TlsWorker = Id;
  Task T;
  while (true) {
    if (tryGet(Id, T)) {
      runTask(T);
      continue;
    }
    if (Stop.load(std::memory_order_acquire))
      return;
    std::unique_lock<std::mutex> L(SleepM);
    if (Queued.load(std::memory_order_acquire) > 0 ||
        Stop.load(std::memory_order_acquire))
      continue;
    // wait_for (not wait) so a notify racing ahead of this wait cannot
    // strand a worker; 500us bounds the worst-case wake latency.
    SleepCv.wait_for(L, std::chrono::microseconds(500));
  }
}

void VerifierPool::post(TaskGroup &G, void (*Fn)(void *), void *Ctx) {
  G.Pending.fetch_add(1, std::memory_order_relaxed);
  Task T;
  T.Work = [Fn, Ctx] { Fn(Ctx); }; // 16-byte capture: stays in SBO
  T.Group = &G;
  push(std::move(T));
}

void VerifierPool::run(TaskGroup &G, std::function<void()> Fn) {
  G.Pending.fetch_add(1, std::memory_order_relaxed);
  Task T;
  T.Work = std::move(Fn);
  T.Group = &G;
  push(std::move(T));
}

void VerifierPool::wait(TaskGroup &G) {
  unsigned Self = TlsPool == this ? TlsWorker : threadCount();
  Task T;
  while (G.Pending.load(std::memory_order_acquire) != 0) {
    if (tryGet(Self, T)) {
      runTask(T);
      continue;
    }
    // Nothing queued but the group is still pending: its tasks are
    // running on other threads. Block on the completion cv instead of
    // spinning on yield() — on a 1-CPU host the spin steals the core
    // from the thread actually finishing the task. The bounded wait is
    // a safety net for wakeups raced by new work; correctness comes
    // from re-checking Pending under DoneM (runTask notifies under it).
    std::unique_lock<std::mutex> L(DoneM);
    if (G.Pending.load(std::memory_order_acquire) == 0)
      break;
    if (Queued.load(std::memory_order_acquire) > 0)
      continue; // new work appeared: go help instead of sleeping
    DoneCv.wait_for(L, std::chrono::milliseconds(1));
  }
}

std::vector<std::future<core::CheckResult>>
VerifierPool::submit(const std::vector<std::vector<uint8_t>> &Images) {
  Met->BatchImages.record(Images.size());
  std::vector<std::future<core::CheckResult>> Futures;
  Futures.reserve(Images.size());
  for (const std::vector<uint8_t> &Img : Images)
    Futures.push_back(submitOne(Img.data(), uint32_t(Img.size())));
  return Futures;
}

std::vector<std::future<core::CheckResult>>
VerifierPool::submitOwned(std::vector<std::vector<uint8_t>> Images) {
  Met->BatchImages.record(Images.size());
  std::vector<std::future<core::CheckResult>> Futures;
  Futures.reserve(Images.size());
  for (std::vector<uint8_t> &Img : Images)
    Futures.push_back(submitOne(std::move(Img)));
  return Futures;
}

std::future<core::CheckResult> VerifierPool::submitOne(const uint8_t *Code,
                                                       uint32_t Size) {
  return submitImpl(nullptr, Code, Size);
}

std::future<core::CheckResult>
VerifierPool::submitOne(std::vector<uint8_t> Image) {
  return submitOne(
      std::make_shared<const std::vector<uint8_t>>(std::move(Image)));
}

std::future<core::CheckResult>
VerifierPool::submitOne(std::shared_ptr<const std::vector<uint8_t>> Image) {
  const uint8_t *Code = Image->data();
  uint32_t Size = uint32_t(Image->size());
  return submitImpl(std::move(Image), Code, Size);
}

std::future<core::CheckResult>
VerifierPool::submitImpl(std::shared_ptr<const std::vector<uint8_t>> Owner,
                         const uint8_t *Code, uint32_t Size) {
  Met->ImagesSubmitted.add();
  auto Promise = std::make_shared<std::promise<core::CheckResult>>();
  std::future<core::CheckResult> F = Promise->get_future();
  const core::FusedPolicy *T = &Fused;
  Metrics *M = Met;
  Task Job;
  // Owner (when non-null) pins the payload until the task has run: the
  // capture is the whole lifetime guarantee of the owned path. On the
  // borrow path Owner is null and the caller's contract (see header)
  // keeps [Code, Code+Size) alive instead.
  Job.Work = [Owner = std::move(Owner), Promise, Code, Size, T, M] {
    uint64_t T0 = nowNanos();
    core::RockSalt V(*T);
    core::CheckResult R = V.check(Code, Size);
    recordOutcome(*M, R, Size, nowNanos() - T0);
    Promise->set_value(std::move(R));
  };
  push(std::move(Job));
  return F;
}
