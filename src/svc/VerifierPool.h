//===- svc/VerifierPool.h - Work-stealing verification pool ----*- C++ -*-===//
///
/// \file
/// The service's executor: a work-stealing thread pool with a
/// batch-submit verification API. Two layers:
///
///  * a generic task layer — `post` (allocation-free, function pointer +
///    context) and `run` (std::function convenience) enqueue work into
///    per-worker deques; idle workers pop their own deque LIFO and steal
///    FIFO from others. `wait` on a TaskGroup *helps*: the waiter drains
///    tasks while the group is outstanding, so nested fan-out (a pool
///    job that itself shards an image across the pool) cannot deadlock;
///
///  * a verification layer — `submit` takes a batch of images and
///    returns one future per image; each job runs the sequential
///    RockSalt check and records outcome metrics. Use ParallelVerifier
///    on top of the task layer when a *single* image should be
///    chunk-parallel.
///
/// All bookkeeping is mutex-per-deque plus atomics; the pool never holds
/// a lock while running user work.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SVC_VERIFIERPOOL_H
#define ROCKSALT_SVC_VERIFIERPOOL_H

#include "core/Verifier.h"
#include "svc/Metrics.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rocksalt {
namespace svc {

/// Counts an image verification outcome into \p M (shared by the pool's
/// batch jobs, ParallelVerifier, and the CLI's sequential path).
void recordOutcome(Metrics &M, const core::CheckResult &R, uint64_t Bytes,
                   uint64_t Nanos);

class VerifierPool {
public:
  struct Options {
    unsigned Threads = 0; ///< 0 → std::thread::hardware_concurrency()
  };

  /// A join handle for a set of posted tasks.
  class TaskGroup {
    friend class VerifierPool;
    std::atomic<uint32_t> Pending{0};

  public:
    bool done() const { return Pending.load(std::memory_order_acquire) == 0; }
  };

  VerifierPool(); ///< default options, global metrics
  explicit VerifierPool(Options O, Metrics *M = nullptr);
  ~VerifierPool();

  VerifierPool(const VerifierPool &) = delete;
  VerifierPool &operator=(const VerifierPool &) = delete;

  unsigned threadCount() const { return unsigned(Threads.size()); }
  Metrics &metrics() { return *Met; }

  /// Enqueues Fn(Ctx) — allocation-free (the hot path for shard
  /// fan-out). \p Ctx must outlive the task; completion is observed via
  /// wait(G).
  void post(TaskGroup &G, void (*Fn)(void *), void *Ctx);

  /// Enqueues an arbitrary callable (may allocate for large captures).
  void run(TaskGroup &G, std::function<void()> Fn);

  /// Blocks until every task posted to \p G has finished. The waiting
  /// thread executes queued tasks (any group's) while work is available;
  /// once the queues are empty it blocks on a completion condition
  /// variable (it does NOT spin) until the group's tasks, running on
  /// other threads, finish.
  void wait(TaskGroup &G);

  /// Batch verification over *borrowed* buffers: one future per image,
  /// resolved with the full instrumented CheckResult.
  ///
  /// Borrow contract: every image buffer must stay alive and unmodified
  /// until its future resolves — the futures borrow, they do not copy.
  /// Callers whose buffers may die first (session receive buffers,
  /// arena-backed decoders) must use submitOwned instead.
  std::vector<std::future<core::CheckResult>>
  submit(const std::vector<std::vector<uint8_t>> &Images);

  /// Batch verification taking ownership: each image moves into its
  /// pool task, which keeps it alive until the future resolves. The
  /// service's request path uses this — its receive buffers are reused
  /// as soon as a request is decoded.
  std::vector<std::future<core::CheckResult>>
  submitOwned(std::vector<std::vector<uint8_t>> Images);

  /// Single-image borrow path. Borrow contract as for submit():
  /// [Code, Code+Size) must outlive the future's resolution; the task
  /// reads the buffer on a worker thread at an arbitrary later time.
  std::future<core::CheckResult> submitOne(const uint8_t *Code, uint32_t Size);

  /// Single-image owned path: the task owns the buffer.
  std::future<core::CheckResult> submitOne(std::vector<uint8_t> Image);

  /// Single-image shared-ownership path: the task holds a reference
  /// until it resolves; callers can keep sharing the same payload.
  std::future<core::CheckResult>
  submitOne(std::shared_ptr<const std::vector<uint8_t>> Image);

private:
  struct Task {
    std::function<void()> Work; ///< small captures stay in SBO
    TaskGroup *Group = nullptr;
  };

  struct alignas(64) Worker {
    std::mutex M;
    std::deque<Task> Dq;
  };

  void push(Task T);
  bool tryGet(unsigned Self, Task &Out); ///< Self == threadCount(): outsider
  void runTask(Task &T);
  void workerLoop(unsigned Id);
  /// Shared verify-job body: when \p Owner is non-null the task keeps
  /// the payload alive; when null, [Code, Code+Size) is borrowed.
  std::future<core::CheckResult>
  submitImpl(std::shared_ptr<const std::vector<uint8_t>> Owner,
             const uint8_t *Code, uint32_t Size);

  std::vector<std::unique_ptr<Worker>> Deques;
  std::vector<std::thread> Threads;
  std::atomic<uint64_t> Queued{0};
  std::atomic<uint32_t> RoundRobin{0};
  std::atomic<bool> Stop{false};
  std::mutex SleepM;
  std::condition_variable SleepCv;
  std::mutex DoneM;            ///< with DoneCv: group-completion wakeups
  std::condition_variable DoneCv;
  Metrics *Met;
  /// The fused verify fast path: built once process-wide; every batch
  /// verify job borrows it (never fusing per task).
  const core::FusedPolicy &Fused;
};

} // namespace svc
} // namespace rocksalt

#endif // ROCKSALT_SVC_VERIFIERPOOL_H
