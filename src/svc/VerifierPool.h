//===- svc/VerifierPool.h - Work-stealing verification pool ----*- C++ -*-===//
///
/// \file
/// The service's executor: a work-stealing thread pool with a
/// batch-submit verification API. Two layers:
///
///  * a generic task layer — `post` (allocation-free, function pointer +
///    context) and `run` (std::function convenience) enqueue work into
///    per-worker deques; idle workers pop their own deque LIFO and steal
///    FIFO from others. `wait` on a TaskGroup *helps*: the waiter drains
///    tasks while the group is outstanding, so nested fan-out (a pool
///    job that itself shards an image across the pool) cannot deadlock;
///
///  * a verification layer — `submit` takes a batch of images and
///    returns one future per image; each job runs the sequential
///    RockSalt check and records outcome metrics. Use ParallelVerifier
///    on top of the task layer when a *single* image should be
///    chunk-parallel.
///
/// All bookkeeping is mutex-per-deque plus atomics; the pool never holds
/// a lock while running user work.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SVC_VERIFIERPOOL_H
#define ROCKSALT_SVC_VERIFIERPOOL_H

#include "core/Verifier.h"
#include "svc/Metrics.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace rocksalt {
namespace svc {

/// Counts an image verification outcome into \p M (shared by the pool's
/// batch jobs, ParallelVerifier, and the CLI's sequential path).
void recordOutcome(Metrics &M, const core::CheckResult &R, uint64_t Bytes,
                   uint64_t Nanos);

class VerifierPool {
public:
  struct Options {
    unsigned Threads = 0; ///< 0 → std::thread::hardware_concurrency()
  };

  /// A join handle for a set of posted tasks.
  class TaskGroup {
    friend class VerifierPool;
    std::atomic<uint32_t> Pending{0};

  public:
    bool done() const { return Pending.load(std::memory_order_acquire) == 0; }
  };

  VerifierPool(); ///< default options, global metrics
  explicit VerifierPool(Options O, Metrics *M = nullptr);
  ~VerifierPool();

  VerifierPool(const VerifierPool &) = delete;
  VerifierPool &operator=(const VerifierPool &) = delete;

  unsigned threadCount() const { return unsigned(Threads.size()); }
  Metrics &metrics() { return *Met; }

  /// Enqueues Fn(Ctx) — allocation-free (the hot path for shard
  /// fan-out). \p Ctx must outlive the task; completion is observed via
  /// wait(G).
  void post(TaskGroup &G, void (*Fn)(void *), void *Ctx);

  /// Enqueues an arbitrary callable (may allocate for large captures).
  void run(TaskGroup &G, std::function<void()> Fn);

  /// Blocks until every task posted to \p G has finished. The waiting
  /// thread executes queued tasks (any group's) while it waits.
  void wait(TaskGroup &G);

  /// Batch verification: one future per image, resolved with the full
  /// instrumented CheckResult. The images must outlive the futures'
  /// resolution.
  std::vector<std::future<core::CheckResult>>
  submit(const std::vector<std::vector<uint8_t>> &Images);

  /// Single-image convenience (same lifetime rule).
  std::future<core::CheckResult> submitOne(const uint8_t *Code, uint32_t Size);

private:
  struct Task {
    std::function<void()> Work; ///< small captures stay in SBO
    TaskGroup *Group = nullptr;
  };

  struct alignas(64) Worker {
    std::mutex M;
    std::deque<Task> Dq;
  };

  void push(Task T);
  bool tryGet(unsigned Self, Task &Out); ///< Self == threadCount(): outsider
  void runTask(Task &T);
  void workerLoop(unsigned Id);

  std::vector<std::unique_ptr<Worker>> Deques;
  std::vector<std::thread> Threads;
  std::atomic<uint64_t> Queued{0};
  std::atomic<uint32_t> RoundRobin{0};
  std::atomic<bool> Stop{false};
  std::mutex SleepM;
  std::condition_variable SleepCv;
  Metrics *Met;
  const core::PolicyTables &Tables;
};

} // namespace svc
} // namespace rocksalt

#endif // ROCKSALT_SVC_VERIFIERPOOL_H
