//===- svc/EventLoop.h - Event-driven multi-session serve loop -*- C++ -*-===//
///
/// \file
/// The concurrent serve loop: one thread poll(2)s the listen fd plus
/// every live session fd and multiplexes the sessions onto the
/// service's VerifierPool. `Service::serveFd` handles exactly one
/// connection at a time — a slow client parks the whole server — so
/// this layer lifts each connection into a svc/SessionConn.h object and
/// keeps them all in flight:
///
///  * accept: nonblocking accept4 with errno triage. EINTR retries,
///    ECONNABORTED/EPROTO skip the half-dead connection (counted in
///    svc_accept_errors), and resource exhaustion (EMFILE/ENFILE/
///    ENOBUFS/ENOMEM) logs once, stops polling the listen fd for
///    AcceptBackoffMs, and resumes — the old loop treated every one of
///    these as fatal and stopped serving;
///  * dispatch: each session's parsed frame becomes a pool task running
///    `Service::handleFrame`; per-session frames stay serial (image
///    handles need no locks, responses stay ordered), cross-session
///    frames run concurrently;
///  * backpressure: a session whose queued responses exceed
///    SessionBudgetBytes is neither read nor dispatched until its
///    client drains (svc_backpressure_pauses), so one stalled reader
///    bounds its own memory instead of the server's;
///  * drain: a ShutdownRequest closes the listen fd, lets in-flight
///    frames finish and write queues flush, then reaps every session —
///    bounded by DrainTimeoutMs, after which stragglers are cut.
///
/// The loop wakes on fd readiness and on a self-pipe kicked by
/// completing pool tasks, so responses computed on worker threads are
/// flushed without polling timeouts doing the work.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SVC_EVENTLOOP_H
#define ROCKSALT_SVC_EVENTLOOP_H

#include "svc/SessionConn.h"

#include <memory>
#include <string>

namespace rocksalt {
namespace svc {

struct EventLoopOptions {
  /// Per-session outbound byte budget; reads pause above it.
  size_t SessionBudgetBytes = 1 << 20;
  /// Accepted connections beyond this park in the listen backlog.
  unsigned MaxSessions = 1024;
  /// How long the listen fd sits out of the poll set after EMFILE-class
  /// accept failures.
  unsigned AcceptBackoffMs = 50;
  /// Upper bound on the graceful drain after a ShutdownRequest; overdue
  /// sessions are force-closed.
  unsigned DrainTimeoutMs = 5000;
};

class EventLoop {
public:
  /// Takes ownership of \p ListenFd (a bound, listening socket; made
  /// nonblocking here). Sessions dispatch onto \p Svc's pool.
  EventLoop(Service &Svc, int ListenFd, EventLoopOptions O = {});
  ~EventLoop();

  EventLoop(const EventLoop &) = delete;
  EventLoop &operator=(const EventLoop &) = delete;

  /// Why run() returned.
  enum class Status {
    Shutdown, ///< a session sent ShutdownRequest; drain completed
    Stopped,  ///< requestStop() was called; drain completed
  };

  /// Serves until a ShutdownRequest or requestStop(), then drains.
  Status run();

  /// Async-signal- and cross-thread-safe stop request: the loop wakes,
  /// stops accepting, drains, and run() returns Status::Stopped.
  void requestStop();

private:
  void acceptSome();
  void beginDrain();

  Service &Svc;
  Metrics &Met;
  EventLoopOptions Opts;
  int ListenFd;
  int WakeRd = -1, WakeWr = -1; ///< self-pipe: pool tasks kick the loop
  std::vector<std::unique_ptr<SessionConn>> Conns;
  VerifierPool::TaskGroup DispatchG; ///< joined before destruction
  bool Draining = false;
  bool SawShutdown = false;
  int64_t DrainDeadlineNs = 0;
  int64_t BackoffUntilNs = 0; ///< listen fd excluded from poll until then
  std::atomic<bool> StopFlag{false};
};

/// Binds and listens on a unix-domain socket at \p Path (unlinking any
/// stale socket first). \p Backlog 0 means SOMAXCONN. Returns the fd;
/// throws std::runtime_error on failure.
int listenUnixSocket(const std::string &Path, int Backlog = 0);

/// Connects to the unix-domain socket at \p Path. Returns the fd;
/// throws std::runtime_error on failure.
int connectUnixSocket(const std::string &Path);

} // namespace svc
} // namespace rocksalt

#endif // ROCKSALT_SVC_EVENTLOOP_H
