//===- svc/Metrics.cpp - Lock-free service metrics ------------------------===//

#include "svc/Metrics.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>

using namespace rocksalt;
using namespace rocksalt::svc;

void Histogram::record(uint64_t V) {
  unsigned B = static_cast<unsigned>(std::bit_width(V)); // 0 for V == 0
  Buckets[B >= NumBuckets ? NumBuckets - 1 : B].fetch_add(
      1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(V, std::memory_order_relaxed);
  uint64_t Prev = Max.load(std::memory_order_relaxed);
  while (Prev < V &&
         !Max.compare_exchange_weak(Prev, V, std::memory_order_relaxed))
    ;
}

uint64_t Histogram::quantile(double Q) const {
  // The documented domain is (0, 1]. NaN has no defensible answer (it
  // used to fall through every comparison and report max()); Q outside
  // the domain is clamped, so Q <= 0 asks for the minimum observation
  // instead of fabricating an answer from bucket 0's edge.
  assert(!std::isnan(Q) && "Histogram::quantile(NaN)");
  if (std::isnan(Q))
    return 0;
  uint64_t C = count();
  if (!C)
    return 0;
  if (Q > 1.0)
    Q = 1.0;
  double Want = Q * double(C);
  if (Want < 1.0)
    Want = 1.0; // clamp Q <= 0 (and tiny Q) to the first observation
  uint64_t Seen = 0;
  for (unsigned I = 0; I < NumBuckets; ++I) {
    Seen += bucket(I);
    if (double(Seen) < Want)
      continue;
    // The last bucket is the overflow bucket (it also holds clamped
    // bit_width-64 values), so its finite power-of-two edge would
    // under-report; the observed max is the tight upper bound there.
    if (I == NumBuckets - 1)
      return max();
    return I ? (uint64_t(1) << I) - 1 : 0; // upper edge of bucket I
  }
  return max();
}

void Histogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

namespace {

void dumpScalar(std::string &Out, const char *Name, uint64_t V) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "%s %llu\n", Name,
                static_cast<unsigned long long>(V));
  Out += Buf;
}

void dumpHistogram(std::string &Out, const char *Name, const Histogram &H) {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "%s_count %llu\n%s_sum %llu\n%s_max %llu\n%s_p50 %llu\n"
                "%s_p99 %llu\n",
                Name, static_cast<unsigned long long>(H.count()), Name,
                static_cast<unsigned long long>(H.sum()), Name,
                static_cast<unsigned long long>(H.max()), Name,
                static_cast<unsigned long long>(H.quantile(0.50)), Name,
                static_cast<unsigned long long>(H.quantile(0.99)));
  Out += Buf;
  // Prometheus-style cumulative buckets: each `le` line carries the count
  // of values at or below that edge, terminated by the mandatory +Inf
  // bucket. The last bucket is the overflow bucket (clamped bit_width-64
  // values land there too), so it has no finite edge: its count appears
  // only in the +Inf line.
  uint64_t Cum = 0;
  for (unsigned I = 0; I + 1 < Histogram::NumBuckets; ++I) {
    uint64_t B = H.bucket(I);
    if (!B)
      continue;
    Cum += B;
    std::snprintf(Buf, sizeof(Buf), "%s_bucket{le=\"%llu\"} %llu\n", Name,
                  static_cast<unsigned long long>(
                      I ? (uint64_t(1) << I) - 1 : 0),
                  static_cast<unsigned long long>(Cum));
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%s_bucket{le=\"+Inf\"} %llu\n", Name,
                static_cast<unsigned long long>(H.count()));
  Out += Buf;
}

} // namespace

std::string Metrics::exposition() const {
  std::string Out;
  Out.reserve(2048);
  dumpScalar(Out, "images_submitted", ImagesSubmitted.get());
  dumpScalar(Out, "images_verified", ImagesVerified.get());
  dumpScalar(Out, "images_accepted", ImagesAccepted.get());
  dumpScalar(Out, "images_rejected", ImagesRejected.get());
  dumpScalar(Out, "reject_no_parse", RejectNoParse.get());
  dumpScalar(Out, "reject_bad_target", RejectBadTarget.get());
  dumpScalar(Out, "reject_unaligned_bundle", RejectUnaligned.get());
  dumpScalar(Out, "bytes_verified", BytesVerified.get());
  dumpScalar(Out, "shards_scanned", ShardsScanned.get());
  dumpScalar(Out, "seam_rescans", SeamRescans.get());
  dumpScalar(Out, "tasks_run", TasksRun.get());
  dumpScalar(Out, "tasks_stolen", TasksStolen.get());
  dumpScalar(Out, "fuzz_oracle_runs", OracleRuns.get());
  dumpScalar(Out, "fuzz_disagreements", OracleDisagreements.get());
  dumpScalar(Out, "fuzz_shrink_steps", ShrinkSteps.get());
  dumpScalar(Out, "lint_images", LintImages.get());
  dumpScalar(Out, "lint_errors", LintErrors.get());
  dumpScalar(Out, "lint_warnings", LintWarnings.get());
  dumpScalar(Out, "lint_notes", LintNotes.get());
  dumpScalar(Out, "lint_live_indirect_outs", LintLiveIndirectOuts.get());
  dumpScalar(Out, "lint_dead_pairs", LintDeadPairs.get());
  dumpScalar(Out, "lint_offseam_calls", LintOffSeamCalls.get());
  dumpScalar(Out, "lint_incr_relints", LintIncrRelints.get());
  dumpScalar(Out, "lint_incr_fastpath", LintIncrFastPath.get());
  dumpScalar(Out, "svc_verify_requests", SvcVerifyRequests.get());
  dumpScalar(Out, "svc_lint_requests", SvcLintRequests.get());
  dumpScalar(Out, "svc_audit_requests", SvcAuditRequests.get());
  dumpScalar(Out, "svc_tables_requests", SvcTablesRequests.get());
  dumpScalar(Out, "svc_tables_hash_hits", SvcTablesHashHits.get());
  dumpScalar(Out, "svc_errors", SvcErrors.get());
  dumpScalar(Out, "svc_sessions", SvcSessions.get());
  dumpScalar(Out, "svc_metrics_requests", SvcMetricsRequests.get());
  dumpScalar(Out, "svc_sessions_active",
             static_cast<uint64_t>(SvcSessionsActive.get() < 0
                                       ? 0
                                       : SvcSessionsActive.get()));
  dumpScalar(Out, "svc_bytes_in", SvcBytesIn.get());
  dumpScalar(Out, "svc_bytes_out", SvcBytesOut.get());
  dumpScalar(Out, "svc_accept_errors", SvcAcceptErrors.get());
  dumpScalar(Out, "svc_accept_backoffs", SvcAcceptBackoffs.get());
  dumpScalar(Out, "svc_backpressure_pauses", SvcBackpressurePauses.get());
  dumpScalar(Out, "svc_peer_drops", SvcPeerDrops.get());
  dumpScalar(Out, "incr_chunk_hits", IncrChunkHits.get());
  dumpScalar(Out, "incr_chunk_misses", IncrChunkMisses.get());
  dumpScalar(Out, "incr_chunk_evictions", IncrChunkEvictions.get());
  dumpScalar(Out, "svc_image_open_requests", SvcImageOpenRequests.get());
  dumpScalar(Out, "svc_patch_requests", SvcPatchRequests.get());
  dumpScalar(Out, "svc_image_close_requests", SvcImageCloseRequests.get());
  dumpScalar(Out, "queue_depth", static_cast<uint64_t>(
                                     QueueDepth.get() < 0 ? 0
                                                          : QueueDepth.get()));
  dumpHistogram(Out, "verify_nanos", VerifyNanos);
  dumpHistogram(Out, "shard_imbalance_permille", ShardImbalancePermille);
  dumpHistogram(Out, "batch_images", BatchImages);
  dumpHistogram(Out, "svc_request_nanos", SvcRequestNanos);
  dumpHistogram(Out, "svc_patch_nanos", SvcPatchNanos);
  dumpHistogram(Out, "analysis_dataflow_nanos", AnalysisDataflowNanos);
  return Out;
}

void Metrics::reset() {
  ImagesSubmitted.reset();
  ImagesVerified.reset();
  ImagesAccepted.reset();
  ImagesRejected.reset();
  RejectNoParse.reset();
  RejectBadTarget.reset();
  RejectUnaligned.reset();
  BytesVerified.reset();
  ShardsScanned.reset();
  SeamRescans.reset();
  TasksRun.reset();
  TasksStolen.reset();
  QueueDepth.reset();
  OracleRuns.reset();
  OracleDisagreements.reset();
  ShrinkSteps.reset();
  LintImages.reset();
  LintErrors.reset();
  LintWarnings.reset();
  LintNotes.reset();
  LintLiveIndirectOuts.reset();
  LintDeadPairs.reset();
  LintOffSeamCalls.reset();
  LintIncrRelints.reset();
  LintIncrFastPath.reset();
  SvcVerifyRequests.reset();
  SvcLintRequests.reset();
  SvcAuditRequests.reset();
  SvcTablesRequests.reset();
  SvcTablesHashHits.reset();
  SvcErrors.reset();
  SvcSessions.reset();
  SvcMetricsRequests.reset();
  SvcSessionsActive.reset();
  SvcBytesIn.reset();
  SvcBytesOut.reset();
  SvcAcceptErrors.reset();
  SvcAcceptBackoffs.reset();
  SvcBackpressurePauses.reset();
  SvcPeerDrops.reset();
  IncrChunkHits.reset();
  IncrChunkMisses.reset();
  IncrChunkEvictions.reset();
  SvcImageOpenRequests.reset();
  SvcPatchRequests.reset();
  SvcImageCloseRequests.reset();
  VerifyNanos.reset();
  ShardImbalancePermille.reset();
  BatchImages.reset();
  SvcRequestNanos.reset();
  SvcPatchNanos.reset();
  AnalysisDataflowNanos.reset();
}

Metrics &svc::globalMetrics() {
  static Metrics M;
  return M;
}
