//===- svc/SessionConn.h - One multiplexed RSVC session --------*- C++ -*-===//
///
/// \file
/// The per-connection half of the event-driven serve layer
/// (svc/EventLoop.h): everything `Service::serveFd` kept on its stack —
/// the inbound parse buffer, the image-handle `Service::Session`, and
/// the response stream — lifted into an object so one thread can
/// multiplex many of them. Each connection owns:
///
///  * an inbound buffer + at most one parsed-but-undispatched frame
///    (inbound memory is bounded by one frame plus a read chunk);
///  * a `Service::Session` (image handles stay session-scoped exactly
///    as in the sequential loop);
///  * an outbound write queue drained on POLLOUT, with a byte budget:
///    when queued responses exceed the budget the session's reads pause
///    (backpressure) until the client drains its side.
///
/// Frames dispatch onto the service's VerifierPool one-at-a-time per
/// session: the loop thread parses and enqueues a pool task, the task
/// runs `Service::handleFrame` and appends the encoded response to the
/// write queue, and only then may the next frame of the same session
/// dispatch. Sessions are serialized with themselves (the image-handle
/// state needs no locks) and concurrent with each other.
///
/// Threading: the loop thread owns the fd, the inbound buffer, and the
/// pending frame. The write queue, the in-flight flag, and the shutdown
/// flag are shared with the completing pool task under `M`. All sends
/// use MSG_NOSIGNAL, so a client that vanishes mid-reply yields EPIPE
/// (the session dies, counted in svc_peer_drops) instead of SIGPIPE
/// (the process dies).
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SVC_SESSIONCONN_H
#define ROCKSALT_SVC_SESSIONCONN_H

#include "svc/Service.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace rocksalt {
namespace svc {

class SessionConn {
public:
  /// Takes ownership of \p Fd (nonblocking). \p Wake is invoked (from a
  /// pool thread) after a dispatched frame's response is queued, so the
  /// event loop re-polls; it must outlive the loop, not the connection —
  /// the completing task calls a by-value copy.
  SessionConn(Service &Svc, int Fd, size_t BudgetBytes,
              std::function<void()> Wake);
  ~SessionConn(); ///< closes the fd

  SessionConn(const SessionConn &) = delete;
  SessionConn &operator=(const SessionConn &) = delete;

  int fd() const { return Fd; }

  /// poll(2) events this session currently wants. Draining sessions
  /// only flush (no reads, no new dispatches).
  short events(bool Draining);

  /// Drains the socket into the inbound buffer (single bounded read per
  /// wakeup; level-triggered poll re-signals leftover bytes).
  void onReadable();

  /// Flushes the outbound queue until EAGAIN or empty.
  void onWritable();

  /// Dispatches the pending frame onto \p Pool if the session has no
  /// frame in flight and its write queue is under budget. \p Allow
  /// false (draining) parks pending frames forever.
  void tryDispatch(VerifierPool &Pool, VerifierPool::TaskGroup &G,
                   bool Allow);

  /// True once a handled frame was a ShutdownRequest.
  bool shutdownSeen();

  /// True while a dispatched frame has not yet completed; the loop must
  /// not destroy an in-flight connection.
  bool inFlight();

  /// True when the session is over and the object can be destroyed.
  /// Normal completion needs peer EOF + empty queues; under \p Draining
  /// a flushed, idle session is reaped without waiting for the peer.
  bool reapable(bool Draining);

  /// True when the session ended abnormally (protocol garbage, peer
  /// reset, EPIPE mid-reply).
  bool dead() const { return Dead; }

private:
  void markDead(bool PeerDrop);
  void parsePending(); ///< In → Pending (at most one frame buffered)

  Service &Svc;
  Metrics &Met;
  int Fd;
  size_t Budget;
  std::function<void()> Wake;

  // Loop-thread-only state.
  Service::Session Sess;  ///< image handles live and die with this conn
  std::vector<uint8_t> In;
  proto::Frame Pending;
  bool HasPending = false;
  bool ReadEof = false;
  bool Dead = false;
  bool Paused = false; ///< reads currently paused on the byte budget

  // Shared with the completing pool task.
  std::mutex M;
  std::deque<std::vector<uint8_t>> OutQ;
  size_t OutHead = 0;  ///< bytes of OutQ.front() already written
  size_t OutBytes = 0; ///< total queued outbound bytes (backpressure)
  bool InFlightFlag = false;
  bool ShutdownFlag = false;
  bool TaskFailed = false; ///< handleFrame threw past its own catches
};

} // namespace svc
} // namespace rocksalt

#endif // ROCKSALT_SVC_SESSIONCONN_H
