//===- svc/ParallelVerifier.cpp - Chunk-parallel RockSalt checker ---------===//

#include "svc/ParallelVerifier.h"

#include <chrono>

using namespace rocksalt;
using namespace rocksalt::svc;

namespace {

uint64_t nowNanos() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

} // namespace

ParallelVerifier::ParallelVerifier(VerifierPool &P, ParallelVerifierOptions O)
    : Pool(P), Opts(O), Fused(core::fusedPolicyTables()) {}

uint32_t ParallelVerifier::shardCountFor(uint32_t Size) const {
  uint32_t Max = Opts.MaxShards ? Opts.MaxShards
                                : Pool.threadCount() * Opts.ShardsPerThread;
  if (Max < 1)
    Max = 1;
  uint32_t Min = Opts.MinShardBytes ? Opts.MinShardBytes : 1;
  uint32_t BySize = Size / Min;
  if (BySize < 1)
    BySize = 1;
  return BySize < Max ? BySize : Max;
}

void ParallelVerifier::runShardJob(void *Ctx) {
  ShardJob &J = *static_cast<ShardJob *>(Ctx);
  uint64_t T0 = nowNanos();
  core::scanShard(*J.T, J.Code, J.Size, *J.Scan);
  J.Nanos = nowNanos() - T0;
}

core::CheckResult ParallelVerifier::check(const uint8_t *Code, uint32_t Size) {
  Metrics &M = Pool.metrics();
  uint64_t T0 = nowNanos();

  core::partitionShards(Size, shardCountFor(Size), Shards);
  uint32_t N = uint32_t(Shards.size());

  if (N > 1) {
    Jobs.resize(N);
    VerifierPool::TaskGroup G;
    for (uint32_t I = 0; I < N; ++I) {
      Jobs[I].T = &Fused;
      Jobs[I].Code = Code;
      Jobs[I].Size = Size;
      Jobs[I].Scan = &Shards[I];
      Jobs[I].Nanos = 0;
      if (I) // shard 0 runs on the calling thread below
        Pool.post(G, &runShardJob, &Jobs[I]);
    }
    runShardJob(&Jobs[0]);
    Pool.wait(G);

    // Shard imbalance: max scan time over mean, in permille.
    uint64_t Max = 0, Sum = 0;
    for (uint32_t I = 0; I < N; ++I) {
      Sum += Jobs[I].Nanos;
      if (Jobs[I].Nanos > Max)
        Max = Jobs[I].Nanos;
    }
    if (Sum)
      M.ShardImbalancePermille.record(Max * 1000 * N / Sum);
  } else if (N == 1) {
    core::scanShard(Fused, Code, Size, Shards[0]);
  }
  M.ShardsScanned.add(N);

  core::CheckResult R;
  if (N > 1 && shardsSynced(Size)) {
    // Accept-path common case: the shard chains splice exactly, so the
    // bitmap merge itself can run on the workers (disjoint ranges).
    R = spliceParallel(Size);
  } else {
    uint64_t Rescans = 0;
    R = core::mergeShardScans(Fused, Code, Size, Shards, &Rescans);
    M.SeamRescans.add(Rescans);
  }
  recordOutcome(M, R, Size, nowNanos() - T0);
  return R;
}

bool ParallelVerifier::shardsSynced(uint32_t Size) const {
  for (size_t I = 0; I < Shards.size(); ++I) {
    if (Shards[I].Failed)
      return false;
    uint32_t Next = I + 1 < Shards.size() ? Shards[I + 1].Begin : Size;
    if (Shards[I].StopPos != Next)
      return false;
  }
  return true;
}

void ParallelVerifier::runSpliceJob(void *Ctx) {
  SpliceJob &J = *static_cast<SpliceJob *>(Ctx);
  const core::ShardScan &S = *J.Scan;
  core::CheckResult &R = *J.R;
  for (uint32_t P : S.ValidPos)
    R.Valid[P] = 1;
  for (uint32_t P : S.PairJmpPos) // always inside [Begin, StopPos)
    R.PairJmp[P] = 1;
  // First bundle boundary in [Begin, StopPos) that is not a chain
  // position: merge-walk the (ascending) chain against the boundaries.
  J.FirstUnaligned = UINT32_MAX;
  size_t Idx = 0;
  for (uint32_t B = S.Begin; B < S.StopPos; B += core::BundleSize) {
    while (Idx < S.ValidPos.size() && S.ValidPos[Idx] < B)
      ++Idx;
    if (Idx >= S.ValidPos.size() || S.ValidPos[Idx] != B) {
      J.FirstUnaligned = B;
      break;
    }
  }
}

core::CheckResult ParallelVerifier::spliceParallel(uint32_t Size) {
  core::CheckResult R;
  R.Valid.assign(Size, 0);
  R.Target.assign(Size, 0);
  R.PairJmp.assign(Size, 0);

  uint32_t N = uint32_t(Shards.size());
  SpliceJobs.resize(N);
  VerifierPool::TaskGroup G;
  for (uint32_t I = 0; I < N; ++I) {
    SpliceJobs[I].Scan = &Shards[I];
    SpliceJobs[I].R = &R;
    if (I)
      Pool.post(G, &runSpliceJob, &SpliceJobs[I]);
  }
  // The caller scatters the (globally targeted) jump destinations while
  // the workers scatter their disjoint Valid/PairJmp ranges.
  for (const core::ShardScan &S : Shards)
    for (uint32_t P : S.TargetPos)
      R.Target[P] = 1;
  runSpliceJob(&SpliceJobs[0]);
  Pool.wait(G);

  // The final Figure-5 pass, decomposed: each shard reported the first
  // unaligned bundle boundary on its own chain; the first direct jump
  // into a non-instruction-start needs the merged Valid bitmap.
  uint32_t FirstUnaligned = UINT32_MAX;
  for (const SpliceJob &J : SpliceJobs)
    if (J.FirstUnaligned < FirstUnaligned)
      FirstUnaligned = J.FirstUnaligned;
  uint32_t FirstBadTarget = UINT32_MAX;
  for (const core::ShardScan &S : Shards)
    for (uint32_t P : S.TargetPos)
      if (!R.Valid[P] && P < FirstBadTarget)
        FirstBadTarget = P;

  // Same verdict and reason the sequential final loop produces: first
  // failing position wins; at a tie the target check is evaluated first.
  if (FirstUnaligned == UINT32_MAX && FirstBadTarget == UINT32_MAX) {
    R.Ok = true;
    R.Reason = core::RejectReason::None;
  } else {
    R.Ok = false;
    R.Reason = FirstBadTarget <= FirstUnaligned
                   ? core::RejectReason::BadTarget
                   : core::RejectReason::UnalignedBundle;
  }
  return R;
}
