//===- svc/ParallelVerifier.h - Chunk-parallel RockSalt checker *- C++ -*-===//
///
/// \file
/// Verifies one image by sharding it at 32-byte chunk boundaries, running
/// the Figure-6 DFA scan per shard on the pool's workers, and joining the
/// shard results sequentially (bitmap merge + seam re-check + the final
/// target/alignment pass) — see core/Shard.h for the equivalence
/// argument. Returns results bit-identical to `core::RockSalt::check`.
///
/// The caller's thread participates in the fan-out (it scans shard 0 and
/// then helps drain the pool), so a ParallelVerifier works from both
/// outside the pool and from inside a pool job. Shard descriptors and
/// their position buffers are instance scratch reused across calls: the
/// steady-state scan path performs no allocation. An instance is
/// consequently NOT thread-safe — use one per thread.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SVC_PARALLELVERIFIER_H
#define ROCKSALT_SVC_PARALLELVERIFIER_H

#include "core/Shard.h"
#include "svc/VerifierPool.h"

namespace rocksalt {
namespace svc {

struct ParallelVerifierOptions {
  /// Shards per pool thread (over-decomposition smooths imbalance from
  /// uneven shard scan costs).
  uint32_t ShardsPerThread = 4;
  /// Hard cap on shard count; 0 → threads * ShardsPerThread.
  uint32_t MaxShards = 0;
  /// Images smaller than ~2 shards of this size are scanned inline:
  /// below this, fan-out overhead dwarfs the scan.
  uint32_t MinShardBytes = 4096;
};

class ParallelVerifier {
public:
  explicit ParallelVerifier(VerifierPool &P, ParallelVerifierOptions O = {});

  /// Instrumented verification, bit-identical to RockSalt::check.
  core::CheckResult check(const uint8_t *Code, uint32_t Size);
  core::CheckResult check(const std::vector<uint8_t> &Code) {
    return check(Code.data(), uint32_t(Code.size()));
  }

  /// Boolean verdict (same decision procedure).
  bool verify(const uint8_t *Code, uint32_t Size) {
    return check(Code, Size).Ok;
  }
  bool verify(const std::vector<uint8_t> &Code) {
    return verify(Code.data(), uint32_t(Code.size()));
  }

private:
  struct ShardJob {
    const core::FusedPolicy *T = nullptr;
    const uint8_t *Code = nullptr;
    uint32_t Size = 0;
    core::ShardScan *Scan = nullptr;
    uint64_t Nanos = 0;
  };
  static void runShardJob(void *Ctx);

  /// One shard's slice of the parallel splice (see check()).
  struct SpliceJob {
    const core::ShardScan *Scan = nullptr;
    core::CheckResult *R = nullptr;
    uint32_t FirstUnaligned = 0; ///< UINT32_MAX when every boundary is valid
  };
  static void runSpliceJob(void *Ctx);

  /// True when every shard chain spliced exactly onto the next shard's
  /// base (the accept-path common case): shard results can be merged in
  /// parallel because their bit ranges are disjoint.
  bool shardsSynced(uint32_t Size) const;
  core::CheckResult spliceParallel(uint32_t Size);

  uint32_t shardCountFor(uint32_t Size) const;

  VerifierPool &Pool;
  ParallelVerifierOptions Opts;
  /// The fused verify fast path (the process-wide singleton): every
  /// shard scan and seam re-check drives the L1-resident fused array.
  const core::FusedPolicy &Fused;
  std::vector<core::ShardScan> Shards; ///< reused scratch
  std::vector<ShardJob> Jobs;          ///< reused scratch
  std::vector<SpliceJob> SpliceJobs;   ///< reused scratch
};

} // namespace svc
} // namespace rocksalt

#endif // ROCKSALT_SVC_PARALLELVERIFIER_H
