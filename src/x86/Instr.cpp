//===- x86/Instr.cpp ------------------------------------------*- C++ -*-===//

#include "x86/Instr.h"

#include <cassert>

using namespace rocksalt;
using namespace rocksalt::x86;

Reg x86::regFromEncoding(uint8_t Enc) {
  assert(Enc < NumRegs && "register encoding out of range");
  return static_cast<Reg>(Enc);
}

SegReg x86::segFromEncoding(uint8_t Enc) {
  assert(Enc < NumSegRegs && "segment register encoding out of range");
  return static_cast<SegReg>(Enc);
}

Cond x86::condFromEncoding(uint8_t Enc) {
  assert(Enc < NumConds && "condition encoding out of range");
  return static_cast<Cond>(Enc);
}

const char *x86::regName(Reg R) {
  static const char *Names[] = {"eax", "ecx", "edx", "ebx",
                                "esp", "ebp", "esi", "edi"};
  return Names[encodingOf(R)];
}

const char *x86::seg16Name(SegReg S) {
  static const char *Names[] = {"es", "cs", "ss", "ds", "fs", "gs"};
  return Names[encodingOf(S)];
}

const char *x86::condName(Cond C) {
  static const char *Names[] = {"o",  "no", "b",  "nb", "e",  "ne",
                                "be", "nbe", "s", "ns", "p",  "np",
                                "l",  "nl", "le", "nle"};
  return Names[encodingOf(C)];
}

const char *x86::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::AAA: return "aaa";
  case Opcode::AAD: return "aad";
  case Opcode::AAM: return "aam";
  case Opcode::AAS: return "aas";
  case Opcode::ADC: return "adc";
  case Opcode::ADD: return "add";
  case Opcode::AND: return "and";
  case Opcode::BSF: return "bsf";
  case Opcode::BSR: return "bsr";
  case Opcode::BSWAP: return "bswap";
  case Opcode::BT: return "bt";
  case Opcode::BTC: return "btc";
  case Opcode::BTR: return "btr";
  case Opcode::BTS: return "bts";
  case Opcode::CALL: return "call";
  case Opcode::CDQ: return "cdq";
  case Opcode::CLC: return "clc";
  case Opcode::CLD: return "cld";
  case Opcode::CLI: return "cli";
  case Opcode::CMC: return "cmc";
  case Opcode::CMOVcc: return "cmov";
  case Opcode::CMP: return "cmp";
  case Opcode::CMPS: return "cmps";
  case Opcode::CMPXCHG: return "cmpxchg";
  case Opcode::CWDE: return "cwde";
  case Opcode::DAA: return "daa";
  case Opcode::DAS: return "das";
  case Opcode::DEC: return "dec";
  case Opcode::DIV: return "div";
  case Opcode::ENTER: return "enter";
  case Opcode::HLT: return "hlt";
  case Opcode::IDIV: return "idiv";
  case Opcode::IMUL: return "imul";
  case Opcode::IN: return "in";
  case Opcode::INC: return "inc";
  case Opcode::INT3: return "int3";
  case Opcode::INT: return "int";
  case Opcode::INTO: return "into";
  case Opcode::IRET: return "iret";
  case Opcode::Jcc: return "j";
  case Opcode::JCXZ: return "jecxz";
  case Opcode::JMP: return "jmp";
  case Opcode::LAHF: return "lahf";
  case Opcode::LDS: return "lds";
  case Opcode::LEA: return "lea";
  case Opcode::LEAVE: return "leave";
  case Opcode::LES: return "les";
  case Opcode::LFS: return "lfs";
  case Opcode::LGS: return "lgs";
  case Opcode::LSS: return "lss";
  case Opcode::LODS: return "lods";
  case Opcode::LOOP: return "loop";
  case Opcode::LOOPNZ: return "loopnz";
  case Opcode::LOOPZ: return "loopz";
  case Opcode::MOV: return "mov";
  case Opcode::MOVSR: return "movsr";
  case Opcode::MOVS: return "movs";
  case Opcode::MOVSX: return "movsx";
  case Opcode::MOVZX: return "movzx";
  case Opcode::MUL: return "mul";
  case Opcode::NEG: return "neg";
  case Opcode::NOP: return "nop";
  case Opcode::NOT: return "not";
  case Opcode::OR: return "or";
  case Opcode::OUT: return "out";
  case Opcode::POP: return "pop";
  case Opcode::POPA: return "popa";
  case Opcode::POPF: return "popf";
  case Opcode::POPSR: return "popsr";
  case Opcode::PUSH: return "push";
  case Opcode::PUSHA: return "pusha";
  case Opcode::PUSHF: return "pushf";
  case Opcode::PUSHSR: return "pushsr";
  case Opcode::RCL: return "rcl";
  case Opcode::RCR: return "rcr";
  case Opcode::RET: return "ret";
  case Opcode::ROL: return "rol";
  case Opcode::ROR: return "ror";
  case Opcode::SAHF: return "sahf";
  case Opcode::SAR: return "sar";
  case Opcode::SBB: return "sbb";
  case Opcode::SCAS: return "scas";
  case Opcode::SETcc: return "set";
  case Opcode::SHL: return "shl";
  case Opcode::SHLD: return "shld";
  case Opcode::SHR: return "shr";
  case Opcode::SHRD: return "shrd";
  case Opcode::STC: return "stc";
  case Opcode::STD: return "std";
  case Opcode::STI: return "sti";
  case Opcode::STOS: return "stos";
  case Opcode::SUB: return "sub";
  case Opcode::TEST: return "test";
  case Opcode::XADD: return "xadd";
  case Opcode::XCHG: return "xchg";
  case Opcode::XLAT: return "xlat";
  case Opcode::XOR: return "xor";
  }
  return "?";
}

bool x86::isPrefixByte(uint8_t B) {
  switch (B) {
  case 0xF0: // lock
  case 0xF2: // repne
  case 0xF3: // rep
  case 0x26: // es
  case 0x2E: // cs
  case 0x36: // ss
  case 0x3E: // ds
  case 0x64: // fs
  case 0x65: // gs
  case 0x66: // operand size
    return true;
  default:
    return false;
  }
}
